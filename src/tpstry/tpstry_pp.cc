#include "tpstry/tpstry_pp.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "motif/canonical.h"
#include "motif/subgraph_enum.h"

namespace loom {

TpstryPP::TpstryPP(uint32_t num_labels) : scheme_(num_labels) {}

Result<TpstryNodeId> TpstryPP::InternMotif(const LabeledGraph& motif) {
  const GraphSignature sig = scheme_.SignatureOf(motif);
  LOOM_ASSIGN_OR_RETURN(std::string canonical, CanonicalForm(motif));

  auto& bucket = by_signature_[sig.Hash()];
  for (const TpstryNodeId id : bucket) {
    if (nodes_[id].signature == sig && nodes_[id].canonical == canonical) {
      return id;
    }
  }

  const TpstryNodeId id = static_cast<TpstryNodeId>(nodes_.size());
  TpstryNode node;
  node.motif = motif;
  node.signature = sig;
  node.canonical = std::move(canonical);
  node.num_vertices = motif.NumVertices();
  node.num_edges = motif.NumEdges();
  nodes_.push_back(std::move(node));
  bucket.push_back(id);
  max_motif_edges_ = std::max(max_motif_edges_, motif.NumEdges());
  return id;
}

void TpstryPP::LinkParentChild(TpstryNodeId parent, TpstryNodeId child) {
  auto& kids = nodes_[parent].children;
  if (std::find(kids.begin(), kids.end(), child) == kids.end()) {
    kids.push_back(child);
    nodes_[child].parents.push_back(parent);
  }
}

namespace {

/// A connected sub-graph is a simple path iff it is a tree of max degree 2.
bool IsSimplePath(const LabeledGraph& g) {
  if (g.NumEdges() + 1 != g.NumVertices()) return false;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > 2) return false;
  }
  return true;
}

}  // namespace

Status TpstryPP::AddQuery(const LabeledGraph& q, double frequency,
                          bool paths_only,
                          std::vector<TpstryNodeId>* touched_out) {
  std::unordered_set<TpstryNodeId> touched;
  LOOM_RETURN_IF_ERROR(WeaveQuery(q, frequency, paths_only, &touched));
  for (const TpstryNodeId id : touched) nodes_[id].support += frequency;
  total_frequency_ += frequency;
  if (touched_out != nullptr) {
    touched_out->assign(touched.begin(), touched.end());
    std::sort(touched_out->begin(), touched_out->end());
  }
  return Status::OK();
}

void TpstryPP::ApplySupportDelta(const std::vector<TpstryNodeId>& nodes,
                                 double delta) {
  for (const TpstryNodeId id : nodes) {
    assert(id < nodes_.size());
    nodes_[id].support = std::max(0.0, nodes_[id].support + delta);
  }
  total_frequency_ = std::max(0.0, total_frequency_ + delta);
}

Status TpstryPP::RemoveQuery(const LabeledGraph& q, double frequency,
                             bool paths_only) {
  std::unordered_set<TpstryNodeId> touched;
  LOOM_RETURN_IF_ERROR(WeaveQuery(q, frequency, paths_only, &touched));
  for (const TpstryNodeId id : touched) {
    nodes_[id].support = std::max(0.0, nodes_[id].support - frequency);
  }
  total_frequency_ = std::max(0.0, total_frequency_ - frequency);
  return Status::OK();
}

Status TpstryPP::WeaveQuery(const LabeledGraph& q, double frequency,
                            bool paths_only,
                            std::unordered_set<TpstryNodeId>* touched_out) {
  if (q.NumVertices() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  if (frequency <= 0.0) {
    return Status::InvalidArgument("query frequency must be positive");
  }
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    if (q.LabelOf(v) >= scheme_.num_labels()) {
      return Status::InvalidArgument("query label outside trie alphabet");
    }
  }

  // Motifs contained in this query, each counted once regardless of how many
  // embeddings the query graph holds (support is per-query probability mass).
  std::unordered_set<TpstryNodeId>& touched = *touched_out;

  // Single-vertex motifs: the DAG's roots, one per distinct label (§4.2
  // "multiple possible root nodes: one for each vertex with a distinct
  // label").
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    LabeledGraph single;
    single.AddVertex(q.LabelOf(v));
    LOOM_ASSIGN_OR_RETURN(TpstryNodeId id, InternMotif(single));
    roots_.emplace(q.LabelOf(v), id);
    touched.insert(id);
  }

  // Edge-grown motifs, smallest-first so parents always pre-exist.
  Status enum_status = Status::OK();
  const Status s = EnumerateConnectedEdgeSubgraphs(
      q, [&](const std::vector<Edge>& edges) {
        if (!enum_status.ok()) return;
        const LabeledGraph motif = EdgeSubgraph(q, edges);
        if (paths_only && !IsSimplePath(motif)) return;
        auto interned = InternMotif(motif);
        if (!interned.ok()) {
          enum_status = interned.status();
          return;
        }
        const TpstryNodeId id = interned.value();
        touched.insert(id);

        if (edges.size() == 1) {
          // Parents of a single-edge motif: the single-vertex roots of its
          // endpoint labels.
          const auto ru = roots_.find(q.LabelOf(edges[0].u));
          const auto rv = roots_.find(q.LabelOf(edges[0].v));
          assert(ru != roots_.end() && rv != roots_.end());
          LinkParentChild(ru->second, id);
          if (rv->second != ru->second) LinkParentChild(rv->second, id);
          return;
        }
        // Parents: remove one edge; keep the subsets that stay connected.
        std::vector<Edge> sub;
        sub.reserve(edges.size() - 1);
        for (size_t skip = 0; skip < edges.size(); ++skip) {
          sub.clear();
          for (size_t i = 0; i < edges.size(); ++i) {
            if (i != skip) sub.push_back(edges[i]);
          }
          const LabeledGraph parent_motif = EdgeSubgraph(q, sub);
          if (!IsConnected(parent_motif)) continue;
          auto parent = InternMotif(parent_motif);
          if (!parent.ok()) {
            enum_status = parent.status();
            return;
          }
          LinkParentChild(parent.value(), id);
        }
      });
  LOOM_RETURN_IF_ERROR(s);
  LOOM_RETURN_IF_ERROR(enum_status);
  return Status::OK();
}

void TpstryPP::Normalize() {
  if (total_frequency_ <= 0.0) return;
  for (auto& node : nodes_) node.support /= total_frequency_;
  total_frequency_ = 1.0;
}

std::vector<TpstryNodeId> TpstryPP::FrequentNodes(double threshold) const {
  std::vector<TpstryNodeId> out;
  for (TpstryNodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].support >= threshold) out.push_back(id);
  }
  return out;
}

std::vector<bool> TpstryPP::FrequentBitmap(double threshold) const {
  std::vector<bool> out(nodes_.size(), false);
  for (TpstryNodeId id = 0; id < nodes_.size(); ++id) {
    out[id] = nodes_[id].support >= threshold;
  }
  return out;
}

std::vector<bool> TpstryPP::UsefulBitmap(double threshold) const {
  std::vector<bool> useful = FrequentBitmap(threshold);
  // Children always have one more edge than their parents, so processing
  // nodes in decreasing edge count is a reverse topological order of the DAG.
  std::vector<TpstryNodeId> order(nodes_.size());
  for (TpstryNodeId id = 0; id < nodes_.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [this](TpstryNodeId a, TpstryNodeId b) {
    return nodes_[a].num_edges > nodes_[b].num_edges;
  });
  for (const TpstryNodeId id : order) {
    if (useful[id]) continue;
    for (const TpstryNodeId child : nodes_[id].children) {
      if (useful[child]) {
        useful[id] = true;
        break;
      }
    }
  }
  return useful;
}

std::optional<TpstryNodeId> TpstryPP::FindBySignature(
    const GraphSignature& sig, const std::string* canonical) const {
  const auto it = by_signature_.find(sig.Hash());
  if (it == by_signature_.end()) return std::nullopt;
  for (const TpstryNodeId id : it->second) {
    if (!(nodes_[id].signature == sig)) continue;
    if (canonical != nullptr && nodes_[id].canonical != *canonical) continue;
    return id;
  }
  return std::nullopt;
}

bool TpstryPP::SignatureKnown(const GraphSignature& sig) const {
  return FindBySignature(sig).has_value();
}

std::optional<TpstryNodeId> TpstryPP::RootFor(Label label) const {
  const auto it = roots_.find(label);
  if (it == roots_.end()) return std::nullopt;
  return it->second;
}

size_t TpstryPP::NumDagEdges() const {
  size_t count = 0;
  for (const auto& node : nodes_) count += node.children.size();
  return count;
}

std::string TpstryPP::ToString() const {
  std::string out = "TPSTry++ (" + std::to_string(nodes_.size()) + " nodes, " +
                    std::to_string(NumDagEdges()) + " dag-edges)\n";
  for (TpstryNodeId id = 0; id < nodes_.size(); ++id) {
    const TpstryNode& n = nodes_[id];
    out += "  [" + std::to_string(id) + "] v=" +
           std::to_string(n.num_vertices) + " e=" +
           std::to_string(n.num_edges) + " p=" +
           std::to_string(n.support) + " children={";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(n.children[i]);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace loom
