#include "tpstry/workload_tracker.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace loom {

MotifDistribution MotifDistributionOf(const TpstryPP& trie) {
  MotifDistribution dist;
  dist.reserve(trie.NumNodes());
  double total = 0.0;
  for (TpstryNodeId id = 0; id < trie.NumNodes(); ++id) {
    const TpstryNode& node = trie.node(id);
    if (node.support <= 0.0) continue;
    dist.push_back({Fnv1a64(node.canonical), node.support});
    total += node.support;
  }
  if (total <= 0.0) return {};
  for (MotifSupport& m : dist) m.probability /= total;
  std::sort(dist.begin(), dist.end(),
            [](const MotifSupport& a, const MotifSupport& b) {
              return a.canonical_hash < b.canonical_hash;
            });
  return dist;
}

WorkloadTracker::WorkloadTracker(uint32_t num_labels,
                                 const WorkloadTrackerOptions& options)
    : options_(options), trie_(num_labels) {
  if (options_.window_queries == 0) options_.window_queries = 1;
}

Status WorkloadTracker::Observe(const LabeledGraph& query) {
  std::vector<TpstryNodeId> touched;
  LOOM_RETURN_IF_ERROR(
      trie_.AddQuery(query, 1.0, options_.paths_only, &touched));
  window_.push_back(std::move(touched));
  ++num_observed_;
  while (window_.size() > options_.window_queries) {
    trie_.ApplySupportDelta(window_.front(), -1.0);
    window_.pop_front();
  }
  return Status::OK();
}

TpstryPP WorkloadTracker::Snapshot() const {
  TpstryPP copy = trie_;
  copy.Normalize();
  return copy;
}

MotifDistribution WorkloadTracker::SupportDistribution() const {
  return MotifDistributionOf(trie_);
}

}  // namespace loom
