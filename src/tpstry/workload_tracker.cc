#include "tpstry/workload_tracker.h"

#include <utility>

namespace loom {

WorkloadTracker::WorkloadTracker(uint32_t num_labels,
                                 const WorkloadTrackerOptions& options)
    : options_(options), trie_(num_labels) {
  if (options_.window_queries == 0) options_.window_queries = 1;
}

Status WorkloadTracker::Observe(const LabeledGraph& query) {
  std::vector<TpstryNodeId> touched;
  LOOM_RETURN_IF_ERROR(
      trie_.AddQuery(query, 1.0, options_.paths_only, &touched));
  window_.push_back(std::move(touched));
  ++num_observed_;
  while (window_.size() > options_.window_queries) {
    trie_.ApplySupportDelta(window_.front(), -1.0);
    window_.pop_front();
  }
  return Status::OK();
}

TpstryPP WorkloadTracker::Snapshot() const {
  TpstryPP copy = trie_;
  copy.Normalize();
  return copy;
}

}  // namespace loom
