#ifndef LOOM_TPSTRY_WORKLOAD_TRACKER_H_
#define LOOM_TPSTRY_WORKLOAD_TRACKER_H_

/// \file
/// Continuous workload summarisation (paper §4.2 / abstract: "We are able to
/// continuously summarise the traversal patterns caused by queries within a
/// window over Q"): the query workload is itself a stream. The tracker
/// maintains a TPSTry++ over the most recent `window_queries` observed
/// queries, so the motif supports follow workload drift; snapshots feed a
/// (re)build of the LOOM partitioner's matcher (experiment E12 measures the
/// value of refreshing).
///
/// The window does not buffer the query graphs themselves: per observed
/// query it keeps only the trie nodes the query touched, so expiry is an
/// O(|touched|) support subtraction instead of a full re-enumeration of the
/// expiring query's sub-graphs (and the per-query copy of a `LabeledGraph`
/// is gone).

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "tpstry/tpstry_pp.h"

namespace loom {

/// One motif class's share of a workload summary's support mass, keyed by a
/// platform-stable hash of the motif's exact canonical form. Canonical keys
/// make distributions from *different* tries comparable (the live tracker
/// summary vs. the trie a partitioner was built for) without any node-id
/// alignment between the DAGs.
struct MotifSupport {
  uint64_t canonical_hash = 0;
  /// Normalised share in [0, 1]; a distribution's entries sum to 1.
  double probability = 0.0;
};

/// A motif-support distribution: entries sorted ascending by
/// `canonical_hash`, probabilities summing to 1. Empty iff the summary holds
/// no support mass. This is the reduced form the drift detector compares —
/// O(nodes) to extract, no motif graphs copied.
using MotifDistribution = std::vector<MotifSupport>;

/// Reduces `trie` to its motif-support distribution (zero-support nodes are
/// dropped; supports need not be normalised beforehand).
MotifDistribution MotifDistributionOf(const TpstryPP& trie);

/// Tuning for the query-stream window.
struct WorkloadTrackerOptions {
  /// Number of most-recent queries summarised (count-based window over Q).
  size_t window_queries = 256;
  /// Summarise path motifs only (TPSTry regime).
  bool paths_only = false;
};

/// Sliding-window TPSTry++ over an observed query stream.
class WorkloadTracker {
 public:
  /// \param num_labels label alphabet shared with the data graph.
  WorkloadTracker(uint32_t num_labels, const WorkloadTrackerOptions& options);

  /// Observes one executed query (frequency 1 in the window). Expired
  /// queries leave the summary automatically.
  Status Observe(const LabeledGraph& query);

  /// The live (un-normalised) summary: supports are counts within the
  /// window.
  const TpstryPP& trie() const { return trie_; }

  /// A normalised copy of the summary (supports as p-values), suitable for
  /// constructing a `Loom` matcher.
  TpstryPP Snapshot() const;

  /// The summary reduced to its motif-support distribution — the cheap
  /// periodic observable for drift detection. Unlike `Snapshot()` this
  /// copies no motif graphs and builds no trie: one O(nodes) pass over the
  /// live supports (which the sliding window already maintains via
  /// ApplySupportDelta), so a controller can poll it every tick.
  MotifDistribution SupportDistribution() const;

  /// Queries currently inside the window.
  size_t WindowSize() const { return window_.size(); }

  /// Total queries ever observed.
  uint64_t NumObserved() const { return num_observed_; }

 private:
  WorkloadTrackerOptions options_;
  TpstryPP trie_;
  /// Per in-window query: the trie nodes it contributed support to.
  std::deque<std::vector<TpstryNodeId>> window_;
  uint64_t num_observed_ = 0;
};

}  // namespace loom

#endif  // LOOM_TPSTRY_WORKLOAD_TRACKER_H_
