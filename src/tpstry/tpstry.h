#ifndef LOOM_TPSTRY_TPSTRY_H_
#define LOOM_TPSTRY_TPSTRY_H_

/// \file
/// The original TPSTry (paper §4.2, from the authors' earlier work): a trie
/// over vertex-*label paths* that summarises the frequent traversal paths of
/// a workload of path queries. TPSTry++ generalises it to arbitrary motifs;
/// the plain trie is kept for the paths-only ablation (experiment E8c) and
/// for structure-size comparisons.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/small_vector.h"
#include "common/status.h"
#include "graph/graph.h"

namespace loom {

/// Trie over label sequences with per-node support (p-values).
class Tpstry {
 public:
  Tpstry() = default;

  /// Enumerates every simple path of `q` (as a label sequence, up to
  /// `max_path_vertices` vertices, direction-deduplicated) and adds
  /// `frequency` support to each distinct sequence, counted once per query.
  Status AddQuery(const LabeledGraph& q, double frequency,
                  size_t max_path_vertices = 8);

  /// Divides all supports by the total added frequency. Call once.
  void Normalize();

  /// Label paths whose support is >= threshold, longest first.
  std::vector<std::vector<Label>> FrequentPaths(double threshold) const;

  /// Support of an exact label path (0 when absent).
  double SupportOf(const std::vector<Label>& path) const;

  /// Number of trie nodes (excluding the synthetic root).
  size_t NumNodes() const { return nodes_.size() - 1; }

  /// Total frequency mass added (pre-normalisation).
  double TotalFrequency() const { return total_frequency_; }

 private:
  struct Node {
    Label label = 0;
    double support = 0.0;
    /// Children as (label, node index) pairs, sorted by label — binary
    /// search replaces the tree walk, inline storage the per-node
    /// allocations, and label-ordered traversal is preserved.
    SmallVector<std::pair<Label, uint32_t>, 4> children;

    /// Child for `label`, or nullptr. (Sorted lookup.)
    const uint32_t* FindChild(Label l) const;
  };

  /// Walks/creates the path and returns the final node index.
  uint32_t Intern(const std::vector<Label>& path);

  void CollectFrequent(uint32_t node, std::vector<Label>* prefix,
                       double threshold,
                       std::vector<std::vector<Label>>* out) const;

  /// nodes_[0] is the synthetic root (empty path).
  std::vector<Node> nodes_ = {Node{}};
  double total_frequency_ = 0.0;
};

}  // namespace loom

#endif  // LOOM_TPSTRY_TPSTRY_H_
