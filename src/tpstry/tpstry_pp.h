#ifndef LOOM_TPSTRY_TPSTRY_PP_H_
#define LOOM_TPSTRY_TPSTRY_PP_H_

/// \file
/// TPSTry++ (paper §4.2): a directed acyclic graph that intensionally encodes
/// the motifs — connected sub-graphs — occurring in a workload of pattern
/// matching queries, together with the probability that a random query
/// traverses each motif.
///
/// Structure:
///  * one node per isomorphism class of connected sub-graph occurring in any
///    query graph (plus one root per distinct vertex label);
///  * a DAG edge parent -> child whenever child = parent + one edge
///    (possibly introducing one new vertex);
///  * each node carries a support value: the total relative frequency of the
///    queries containing the motif. Nodes with support >= threshold `T` are
///    *frequent*, and their motifs are what LOOM keeps within partitions.
///
/// Node identity follows the paper: the Song-et-al-style signature keyed
/// first (fast, non-authoritative), verified by an exact labelled canonical
/// form (loom's strictly-more-accurate refinement; see DESIGN.md §6).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/result.h"
#include "common/small_vector.h"
#include "graph/graph.h"
#include "motif/signature.h"

namespace loom {

/// Identifier of a TPSTry++ node (dense, 0-based).
using TpstryNodeId = uint32_t;

inline constexpr TpstryNodeId kInvalidTpstryNode = ~TpstryNodeId{0};

/// One motif node of the TPSTry++.
struct TpstryNode {
  /// Representative sub-graph of the isomorphism class.
  LabeledGraph motif;
  /// Signature of `motif` under the trie's scheme.
  GraphSignature signature;
  /// Exact canonical form of `motif` (node identity verification).
  std::string canonical;
  /// Total relative frequency of queries containing this motif; after
  /// `Normalize()` this is the p-value in [0, 1].
  double support = 0.0;
  /// Children: motifs formed by adding exactly one edge.
  SmallVector<TpstryNodeId, 4> children;
  /// Parents: motifs this one extends by one edge.
  SmallVector<TpstryNodeId, 4> parents;
  size_t num_vertices = 0;
  size_t num_edges = 0;
};

/// The TPSTry++ DAG for a query workload.
class TpstryPP {
 public:
  /// \param num_labels label alphabet size shared with the graph stream.
  explicit TpstryPP(uint32_t num_labels);

  /// Algorithm 1: weaves every connected sub-graph of query graph `q` into
  /// the DAG, adding `frequency` support to each distinct motif (counted
  /// once per query, not once per embedding). Fails if `q` exceeds the
  /// small-query budgets. With `paths_only` the weave is restricted to
  /// simple-path motifs — the original TPSTry's expressiveness, kept as the
  /// E8c ablation. When `touched_out` is non-null it receives the distinct
  /// node ids this query contributed support to (sorted), which lets a
  /// sliding-window caller expire the query later via `ApplySupportDelta`
  /// without re-enumerating its sub-graphs (or retaining the graph at all).
  Status AddQuery(const LabeledGraph& q, double frequency,
                  bool paths_only = false,
                  std::vector<TpstryNodeId>* touched_out = nullptr);

  /// Inverse of `AddQuery` for the same (q, frequency, paths_only) triple:
  /// subtracts the query's support contribution, enabling the sliding
  /// window over the query stream Q that §4.2 describes ("continuously
  /// summarise the traversal patterns ... within a window over Q"). Nodes
  /// whose support reaches zero are kept (they simply stop being frequent);
  /// the DAG structure is monotone.
  Status RemoveQuery(const LabeledGraph& q, double frequency,
                     bool paths_only = false);

  /// Applies a signed support delta to exactly the given nodes (clamped at
  /// zero, like `RemoveQuery`), and the same delta to the total frequency.
  /// With the `touched_out` list captured at `AddQuery` time this is the
  /// O(|touched|) inverse of that call — the weave enumeration is skipped
  /// entirely, which is what makes the workload tracker's sliding window
  /// cheap.
  void ApplySupportDelta(const std::vector<TpstryNodeId>& nodes, double delta);

  /// Rescales supports so they sum the way p-values should: divides every
  /// node's support by the total frequency added so far. Call once after all
  /// `AddQuery` calls.
  void Normalize();

  /// Nodes with support >= threshold; these are the workload's motifs.
  std::vector<TpstryNodeId> FrequentNodes(double threshold) const;

  /// Marks which nodes are frequent at `threshold` into a dense bitmap
  /// (index = node id). Convenience for the stream matcher's hot path.
  std::vector<bool> FrequentBitmap(double threshold) const;

  /// Marks the nodes from which a frequent node is reachable (including the
  /// node itself) in the child direction. A tracked sub-graph whose node is
  /// not "useful" can never grow into a motif match, so the stream matcher
  /// prunes it immediately.
  std::vector<bool> UsefulBitmap(double threshold) const;

  /// Exact-match lookup: the node whose motif is isomorphic to a sub-graph
  /// with this signature, if any. Signature buckets are verified by
  /// canonical form when `canonical` is supplied.
  std::optional<TpstryNodeId> FindBySignature(
      const GraphSignature& sig, const std::string* canonical = nullptr) const;

  /// True iff some node's signature equals `sig` — the stream matcher's
  /// fast-path test mirroring the paper's "signature is a match for a node".
  bool SignatureKnown(const GraphSignature& sig) const;

  /// Root node for a vertex label, if that label occurs in any query.
  std::optional<TpstryNodeId> RootFor(Label label) const;

  const TpstryNode& node(TpstryNodeId id) const { return nodes_[id]; }
  size_t NumNodes() const { return nodes_.size(); }
  size_t NumDagEdges() const;

  /// Largest motif size (edges) over all nodes; bounds the stream matcher's
  /// growth.
  size_t MaxMotifEdges() const { return max_motif_edges_; }

  const SignatureScheme& scheme() const { return scheme_; }

  /// Total frequency mass added via `AddQuery` (pre-normalisation).
  double TotalFrequency() const { return total_frequency_; }

  /// Multiline diagnostic dump (small tries only).
  std::string ToString() const;

 private:
  /// Shared weave of Algorithm 1: interns every connected sub-graph of `q`
  /// (creating nodes and DAG edges as needed) and reports the distinct node
  /// ids into `touched_out`. Support is NOT modified — Add/RemoveQuery apply
  /// the signed delta.
  Status WeaveQuery(const LabeledGraph& q, double frequency, bool paths_only,
                    std::unordered_set<TpstryNodeId>* touched_out);

  /// Returns the node for the given motif, creating it if necessary.
  Result<TpstryNodeId> InternMotif(const LabeledGraph& motif);

  /// Adds a parent->child DAG edge once.
  void LinkParentChild(TpstryNodeId parent, TpstryNodeId child);

  SignatureScheme scheme_;
  std::vector<TpstryNode> nodes_;
  /// Signature hash -> candidate node ids (collisions resolved by canonical).
  FlatMap<uint64_t, SmallVector<TpstryNodeId, 2>> by_signature_;
  FlatMap<Label, TpstryNodeId> roots_;
  double total_frequency_ = 0.0;
  size_t max_motif_edges_ = 0;
};

}  // namespace loom

#endif  // LOOM_TPSTRY_TPSTRY_PP_H_
