#include "tpstry/tpstry.h"

#include <algorithm>
#include <set>

namespace loom {
namespace {

/// DFS enumeration of simple paths (vertex-distinct) starting at `v`.
void ExtendPaths(const LabeledGraph& q, std::vector<VertexId>* path,
                 std::vector<bool>* on_path, size_t max_vertices,
                 std::set<std::vector<Label>>* sequences) {
  // Record the label sequence, deduplicated by direction: a path and its
  // reverse describe the same traversal pattern.
  std::vector<Label> fwd;
  fwd.reserve(path->size());
  for (const VertexId v : *path) fwd.push_back(q.LabelOf(v));
  std::vector<Label> rev(fwd.rbegin(), fwd.rend());
  sequences->insert(std::min(fwd, rev));

  if (path->size() >= max_vertices) return;
  const VertexId tail = path->back();
  for (const VertexId w : q.Neighbors(tail)) {
    if ((*on_path)[w]) continue;
    path->push_back(w);
    (*on_path)[w] = true;
    ExtendPaths(q, path, on_path, max_vertices, sequences);
    (*on_path)[w] = false;
    path->pop_back();
  }
}

}  // namespace

const uint32_t* Tpstry::Node::FindChild(Label l) const {
  const auto it = std::lower_bound(
      children.begin(), children.end(), l,
      [](const std::pair<Label, uint32_t>& c, Label want) {
        return c.first < want;
      });
  return it != children.end() && it->first == l ? &it->second : nullptr;
}

uint32_t Tpstry::Intern(const std::vector<Label>& path) {
  uint32_t node = 0;
  for (const Label l : path) {
    if (const uint32_t* child = nodes_[node].FindChild(l)) {
      node = *child;
      continue;
    }
    const uint32_t next = static_cast<uint32_t>(nodes_.size());
    Node fresh;
    fresh.label = l;
    nodes_.push_back(fresh);
    auto& children = nodes_[node].children;
    const auto pos = std::lower_bound(
        children.begin(), children.end(), l,
        [](const std::pair<Label, uint32_t>& c, Label want) {
          return c.first < want;
        });
    children.insert(pos, std::make_pair(l, next));
    node = next;
  }
  return node;
}

Status Tpstry::AddQuery(const LabeledGraph& q, double frequency,
                        size_t max_path_vertices) {
  if (q.NumVertices() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  if (frequency <= 0.0) {
    return Status::InvalidArgument("query frequency must be positive");
  }

  std::set<std::vector<Label>> sequences;
  std::vector<bool> on_path(q.NumVertices(), false);
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    std::vector<VertexId> path = {v};
    on_path[v] = true;
    ExtendPaths(q, &path, &on_path, max_path_vertices, &sequences);
    on_path[v] = false;
  }

  for (const auto& seq : sequences) {
    nodes_[Intern(seq)].support += frequency;
  }
  total_frequency_ += frequency;
  return Status::OK();
}

void Tpstry::Normalize() {
  if (total_frequency_ <= 0.0) return;
  for (auto& node : nodes_) node.support /= total_frequency_;
  total_frequency_ = 1.0;
}

void Tpstry::CollectFrequent(uint32_t node, std::vector<Label>* prefix,
                             double threshold,
                             std::vector<std::vector<Label>>* out) const {
  if (node != 0 && nodes_[node].support >= threshold) out->push_back(*prefix);
  for (const auto& [label, child] : nodes_[node].children) {
    prefix->push_back(label);
    CollectFrequent(child, prefix, threshold, out);
    prefix->pop_back();
  }
}

std::vector<std::vector<Label>> Tpstry::FrequentPaths(double threshold) const {
  std::vector<std::vector<Label>> out;
  std::vector<Label> prefix;
  CollectFrequent(0, &prefix, threshold, &out);
  std::sort(out.begin(), out.end(),
            [](const std::vector<Label>& a, const std::vector<Label>& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  return out;
}

double Tpstry::SupportOf(const std::vector<Label>& path) const {
  uint32_t node = 0;
  for (const Label l : path) {
    const uint32_t* child = nodes_[node].FindChild(l);
    if (child == nullptr) return 0.0;
    node = *child;
  }
  return node == 0 ? 0.0 : nodes_[node].support;
}

}  // namespace loom
