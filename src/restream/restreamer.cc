#include "restream/restreamer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"

namespace loom {

std::string RestreamOrderName(RestreamOrder order) {
  switch (order) {
    case RestreamOrder::kOriginal:
      return "original";
    case RestreamOrder::kRandom:
      return "random";
    case RestreamOrder::kGain:
      return "gain";
    case RestreamOrder::kAmbivalence:
      return "ambivalence";
    case RestreamOrder::kDecisive:
      return "decisive";
  }
  return "unknown";
}

uint64_t MigrationBudgetMoves(const PartitionAssignment& prior,
                              double max_migration_fraction) {
  if (max_migration_fraction >= 1.0) return Restreamer::kUnlimitedMoves;
  if (max_migration_fraction <= 0.0) return 0;
  return static_cast<uint64_t>(max_migration_fraction *
                               static_cast<double>(prior.NumAssigned()));
}

Restreamer::Restreamer(const GraphStream& stream,
                       const RestreamOptions& options)
    : stream_(stream), graph_(GraphFromStream(stream)), options_(options) {}

std::vector<VertexId> Restreamer::PassOrder(RestreamOrder order,
                                            const PartitionAssignment& prior,
                                            Rng& rng) const {
  std::vector<VertexId> perm;
  perm.reserve(stream_.NumVertices());
  for (const VertexArrival& a : stream_.arrivals()) perm.push_back(a.vertex);

  switch (order) {
    case RestreamOrder::kOriginal:
      return perm;
    case RestreamOrder::kRandom:
      rng.Shuffle(&perm);
      return perm;
    case RestreamOrder::kGain:
    case RestreamOrder::kAmbivalence:
    case RestreamOrder::kDecisive:
      break;
  }

  // Prioritized restreaming: gain(v) = edges to v's prior partition minus
  // edges to its best alternative, over the full (known) neighbourhood.
  const uint32_t k = prior.k();
  std::vector<double> key(graph_.NumVertices(), 0.0);
  std::vector<uint32_t> counts(k, 0);
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    std::fill(counts.begin(), counts.end(), 0);
    for (const VertexId w : graph_.Neighbors(v)) {
      const int32_t p = prior.PartOf(w);
      if (p >= 0) ++counts[static_cast<uint32_t>(p)];
    }
    const int32_t home = prior.PartOf(v);
    uint32_t stay = 0;
    uint32_t best_other = 0;
    for (uint32_t p = 0; p < k; ++p) {
      if (static_cast<int32_t>(p) == home) {
        stay = counts[p];
      } else {
        best_other = std::max(best_other, counts[p]);
      }
    }
    const double gain =
        static_cast<double>(stay) - static_cast<double>(best_other);
    // Sort key ascending: descending gain, ascending ambivalence, or
    // descending decisiveness (= |gain|).
    switch (order) {
      case RestreamOrder::kGain:
        key[v] = -gain;
        break;
      case RestreamOrder::kAmbivalence:
        key[v] = std::fabs(gain);
        break;
      case RestreamOrder::kDecisive:
        key[v] = -std::fabs(gain);
        break;
      case RestreamOrder::kOriginal:
      case RestreamOrder::kRandom:
        break;  // unreachable: both returned above
    }
  }
  std::stable_sort(perm.begin(), perm.end(), [&key](VertexId a, VertexId b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return a < b;
  });
  return perm;
}

GraphStream Restreamer::ReplayStream(RestreamOrder order,
                                     const PartitionAssignment& prior,
                                     Rng& rng) const {
  const std::vector<VertexId> perm = PassOrder(order, prior, rng);
  std::vector<VertexArrival> arrivals;
  arrivals.reserve(perm.size());
  for (const VertexId v : perm) {
    VertexArrival a;
    a.vertex = v;
    a.label = graph_.LabelOf(v);
    // Restream passes know the whole graph: the arrival carries the full
    // neighbourhood, and scores fall through to the prior for neighbours
    // not yet re-assigned this pass.
    a.back_edges = graph_.Neighbors(v);
    arrivals.push_back(std::move(a));
  }
  return GraphStream(std::move(arrivals));
}

RestreamPassStats Restreamer::RunIncrementalPass(
    StreamingPartitioner* partitioner, const PartitionAssignment& prior,
    uint64_t max_moves) const {
  Rng rng(options_.seed);
  WallTimer timer;
  // The replay build is part of the reaction latency: an incremental pass is
  // judged end-to-end, ordering included.
  const GraphStream replay = ReplayStream(options_.order, prior, rng);
  partitioner->BeginPass(&prior);
  partitioner->SetMigrationBudget(max_moves);
  partitioner->Run(replay);
  partitioner->ClearPrior();

  RestreamPassStats s;
  s.pass = 1;
  s.seconds = timer.ElapsedSeconds();
  s.edge_cut_fraction = EdgeCutFraction(graph_, partitioner->assignment());
  s.best_edge_cut_fraction = s.edge_cut_fraction;
  s.balance = BalanceMaxOverAvg(partitioner->assignment());
  s.migration_fraction = MigrationFraction(prior, partitioner->assignment());
  s.overflow_fallbacks = partitioner->stats().overflow_fallbacks;
  s.forced_placements = partitioner->stats().forced_placements;
  s.assign_errors = partitioner->stats().assign_errors;
  s.budget_denied_moves = partitioner->stats().budget_denied_moves;
  return s;
}

RestreamResult Restreamer::Run(StreamingPartitioner* partitioner) const {
  Rng rng(options_.seed);
  RestreamResult result;

  PartitionAssignment prior{1, 0};
  PartitionAssignment best{1, 0};
  double best_cut = std::numeric_limits<double>::infinity();

  const uint32_t passes = std::max<uint32_t>(1, options_.num_passes);
  for (uint32_t pass = 1; pass <= passes; ++pass) {
    GraphStream replay;
    const GraphStream* current = &stream_;
    if (pass == 1) {
      partitioner->BeginPass(nullptr);
    } else {
      replay = ReplayStream(options_.order, prior, rng);
      current = &replay;
      partitioner->BeginPass(&prior);
      partitioner->SetMigrationBudget(
          MigrationBudgetMoves(prior, options_.max_migration_fraction));
    }

    WallTimer timer;
    partitioner->Run(*current);

    RestreamPassStats s;
    s.pass = pass;
    s.seconds = timer.ElapsedSeconds();
    s.edge_cut_fraction = EdgeCutFraction(graph_, partitioner->assignment());
    s.balance = BalanceMaxOverAvg(partitioner->assignment());
    s.migration_fraction =
        pass == 1 ? 0.0 : MigrationFraction(prior, partitioner->assignment());
    s.overflow_fallbacks = partitioner->stats().overflow_fallbacks;
    s.forced_placements = partitioner->stats().forced_placements;
    s.assign_errors = partitioner->stats().assign_errors;
    s.budget_denied_moves = partitioner->stats().budget_denied_moves;

    if (s.edge_cut_fraction <= best_cut) {
      best_cut = s.edge_cut_fraction;
      best = partitioner->assignment();
    }
    s.best_edge_cut_fraction = best_cut;
    result.passes.push_back(s);

    prior = options_.keep_best ? best : partitioner->assignment();
  }
  // `prior` dies with this call; the partitioner must not keep pointing
  // at it.
  partitioner->ClearPrior();

  if (options_.keep_best) {
    result.assignment = best;
    result.edge_cut_fraction = best_cut;
  } else {
    result.assignment = partitioner->assignment();
    result.edge_cut_fraction = result.passes.back().edge_cut_fraction;
  }
  return result;
}

}  // namespace loom
