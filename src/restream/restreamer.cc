#include "restream/restreamer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "restream/shard_plan.h"
#include "stream/cluster_log.h"

namespace loom {

std::string RestreamOrderName(RestreamOrder order) {
  switch (order) {
    case RestreamOrder::kOriginal:
      return "original";
    case RestreamOrder::kRandom:
      return "random";
    case RestreamOrder::kGain:
      return "gain";
    case RestreamOrder::kAmbivalence:
      return "ambivalence";
    case RestreamOrder::kDecisive:
      return "decisive";
  }
  return "unknown";
}

Status ValidateRestreamOptions(const RestreamOptions& options) {
  if (options.num_passes == 0) {
    return Status::InvalidArgument("RestreamOptions.num_passes must be >= 1");
  }
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    return Status::InvalidArgument(
        "RestreamOptions.max_migration_fraction must be a non-negative "
        "number");
  }
  return Status::OK();
}

RestreamOptions SanitizeRestreamOptions(RestreamOptions options) {
  if (options.num_passes < 1) options.num_passes = 1;
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    options.max_migration_fraction = 0.0;
  }
  return options;
}

uint64_t MigrationBudgetMoves(const PartitionAssignment& prior,
                              double max_migration_fraction) {
  // NaN fails every comparison: without the explicit test it would fall
  // through to the cast below (undefined behaviour). Invalid input maps to
  // the conservative end — zero moves — never to an unbudgeted pass.
  if (std::isnan(max_migration_fraction)) return 0;
  if (max_migration_fraction >= 1.0) return Restreamer::kUnlimitedMoves;
  if (max_migration_fraction <= 0.0) return 0;
  return static_cast<uint64_t>(max_migration_fraction *
                               static_cast<double>(prior.NumAssigned()));
}

Restreamer::Restreamer(const GraphStream& stream,
                       const RestreamOptions& options)
    : stream_(&stream),
      graph_(GraphFromStream(stream)),
      options_(SanitizeRestreamOptions(options)),
      materializations_(1) {}  // the construction-time GraphFromStream

Restreamer::Restreamer(FileArrivalSource* file, const RestreamOptions& options)
    : file_(file), options_(SanitizeRestreamOptions(options)) {
  assert(file != nullptr);
  assert(file->info().has_full_neighborhoods &&
         "out-of-core restreaming needs a full-neighbourhood stream file");
}

namespace {

// Pass-one view of a stream file: sequential back-edge arrivals, owning its
// own cursor position so concurrent Restreamer drivers never fight over the
// file's. Also the exactly-once edge sweep behind the out-of-core cut.
class FileBackCursor : public ArrivalSource {
 public:
  explicit FileBackCursor(const FileArrivalSource& file) : file_(&file) {}

  bool Next(ArrivalView* out) override {
    if (pos_ >= file_->NumVertices()) return false;
    const FileArrivalSource::Record record = file_->At(pos_++);
    out->vertex = record.vertex;
    out->label = record.label;
    out->back_edges = record.back_edges;
    return true;
  }
  void Reset() override { pos_ = 0; }
  uint64_t NumVertices() const override { return file_->NumVertices(); }
  uint64_t NumEdges() const override { return file_->NumEdges(); }

 private:
  const FileArrivalSource* file_;
  uint64_t pos_ = 0;
};

// Pass >= 2 replay over the materialised adjacency: yields `perm`'s vertices
// with their full neighbourhoods straight out of the graph — the borrowing
// cursor that replaced the per-pass GraphStream copy.
class GraphReplayCursor : public ArrivalSource {
 public:
  GraphReplayCursor(const LabeledGraph& graph,
                    const std::vector<VertexId>& perm, uint64_t num_edges)
      : graph_(&graph), perm_(&perm), num_edges_(num_edges) {}

  bool Next(ArrivalView* out) override {
    if (pos_ >= perm_->size()) return false;
    const VertexId v = (*perm_)[pos_++];
    out->vertex = v;
    out->label = graph_->LabelOf(v);
    out->back_edges = Span<const VertexId>(graph_->Neighbors(v).data(),
                                           graph_->Neighbors(v).size());
    return true;
  }
  void Reset() override { pos_ = 0; }
  uint64_t NumVertices() const override { return perm_->size(); }
  uint64_t NumEdges() const override { return num_edges_; }

 private:
  const LabeledGraph* graph_;
  const std::vector<VertexId>* perm_;
  uint64_t num_edges_;
  uint64_t pos_ = 0;
};

// Pass >= 2 replay straight out of the mapping: `perm`'s vertices with their
// full on-disk neighbourhoods, located through the vertex -> arrival-index
// map. O(1) state; the file's madvise budget bounds residency.
class FileReplayCursor : public ArrivalSource {
 public:
  FileReplayCursor(const FileArrivalSource& file,
                   const std::vector<VertexId>& perm,
                   const std::vector<uint32_t>& index_of_vertex)
      : file_(&file), perm_(&perm), index_of_vertex_(&index_of_vertex) {}

  bool Next(ArrivalView* out) override {
    if (pos_ >= perm_->size()) return false;
    const VertexId v = (*perm_)[pos_++];
    const FileArrivalSource::Record record =
        file_->At((*index_of_vertex_)[v]);
    out->vertex = record.vertex;
    out->label = record.label;
    out->back_edges = record.full_edges;
    return true;
  }
  void Reset() override { pos_ = 0; }
  uint64_t NumVertices() const override { return perm_->size(); }
  uint64_t NumEdges() const override { return file_->NumEdges(); }

 private:
  const FileArrivalSource* file_;
  const std::vector<VertexId>* perm_;
  const std::vector<uint32_t>* index_of_vertex_;
  uint64_t pos_ = 0;
};

// Runs fn(begin, end) over `n` items in `chunks` ranges on `pool` and
// returns the LPT makespan model of the stage: max(slowest chunk, total
// chunk CPU / workers) — the stage latency on a machine with the pool's
// worker count in free cores. Chunk CPU is thread CPU time, so the model
// holds even when the bench machine has fewer cores than workers.
template <typename F>
double TimedParallelChunks(ThreadPool& pool, size_t n, const F& fn) {
  const size_t chunks = pool.NumThreads() * 4;
  std::vector<double> chunk_cpu(chunks, 0.0);
  ParallelFor(pool, chunks, [&](size_t c) {
    ThreadCpuTimer cpu;
    fn(c * n / chunks, (c + 1) * n / chunks);
    chunk_cpu[c] = cpu.ElapsedSeconds();
  });
  double max_chunk = 0.0;
  double total = 0.0;
  for (const double s : chunk_cpu) {
    max_chunk = std::max(max_chunk, s);
    total += s;
  }
  return std::max(max_chunk,
                  total / static_cast<double>(pool.NumThreads()));
}

}  // namespace

std::vector<VertexId> Restreamer::PassOrder(RestreamOrder order,
                                            const PartitionAssignment& prior,
                                            Rng& rng, ThreadPool* pool,
                                            double* critical_seconds_out)
    const {
  // Calling-thread CPU covers every serial portion; the fanned-out scoring
  // stage is modelled separately (the calling thread sleeps in the join).
  ThreadCpuTimer self_cpu;
  double parallel_seconds = 0.0;
  const auto account = [&] {
    if (critical_seconds_out != nullptr) {
      *critical_seconds_out += self_cpu.ElapsedSeconds() + parallel_seconds;
    }
  };

  std::vector<VertexId> perm;
  if (OutOfCore()) {
    perm.reserve(file_->NumVertices());
    for (uint64_t i = 0; i < file_->NumVertices(); ++i) {
      perm.push_back(file_->At(i).vertex);
    }
  } else {
    perm.reserve(stream_->NumVertices());
    for (const VertexArrival& a : stream_->arrivals()) {
      perm.push_back(a.vertex);
    }
  }

  switch (order) {
    case RestreamOrder::kOriginal:
      account();
      return perm;
    case RestreamOrder::kRandom:
      rng.Shuffle(&perm);
      account();
      return perm;
    case RestreamOrder::kGain:
    case RestreamOrder::kAmbivalence:
    case RestreamOrder::kDecisive:
      break;
  }

  // Prioritized restreaming: gain(v) = edges to v's prior partition minus
  // edges to its best alternative, over the full (known) neighbourhood.
  const uint32_t k = prior.k();
  const auto gain_key = [order](double gain) {
    // Sort key ascending: descending gain, ascending ambivalence, or
    // descending decisiveness (= |gain|).
    switch (order) {
      case RestreamOrder::kGain:
        return -gain;
      case RestreamOrder::kAmbivalence:
        return std::fabs(gain);
      case RestreamOrder::kDecisive:
        return -std::fabs(gain);
      case RestreamOrder::kOriginal:
      case RestreamOrder::kRandom:
        break;  // unreachable: both returned above
    }
    return 0.0;
  };
  const auto scored_gain = [&prior, k](VertexId v,
                                       Span<const VertexId> neighbors,
                                       std::vector<uint32_t>& counts) {
    std::fill(counts.begin(), counts.end(), 0);
    for (const VertexId w : neighbors) {
      const int32_t p = prior.PartOf(w);
      if (p >= 0) ++counts[static_cast<uint32_t>(p)];
    }
    const int32_t home = prior.PartOf(v);
    uint32_t stay = 0;
    uint32_t best_other = 0;
    for (uint32_t p = 0; p < k; ++p) {
      if (static_cast<int32_t>(p) == home) {
        stay = counts[p];
      } else {
        best_other = std::max(best_other, counts[p]);
      }
    }
    return static_cast<double>(stay) - static_cast<double>(best_other);
  };

  std::vector<double> key;
  if (OutOfCore()) {
    // One sequential sweep of the full-neighbourhood records; O(V) keys and
    // O(k) scratch, never the adjacency. Kept serial: the file cursor's
    // residency accounting is single-consumer.
    key.assign(file_->IdBound(), 0.0);
    std::vector<uint32_t> counts(k, 0);
    for (uint64_t i = 0; i < file_->NumVertices(); ++i) {
      const FileArrivalSource::Record record = file_->At(i);
      key[record.vertex] =
          gain_key(scored_gain(record.vertex, record.full_edges, counts));
    }
  } else {
    key.assign(graph_.NumVertices(), 0.0);
    // Pure per-vertex scoring: a chunk writes only key[v] for its own range,
    // so the parallel fan-out below is bit-identical to the serial loop.
    const auto score_range = [&](VertexId begin, VertexId end) {
      std::vector<uint32_t> counts(k, 0);
      for (VertexId v = begin; v < end; ++v) {
        const std::vector<VertexId>& neighbors = graph_.Neighbors(v);
        key[v] = gain_key(scored_gain(
            v, Span<const VertexId>(neighbors.data(), neighbors.size()),
            counts));
      }
    };
    const VertexId n = graph_.NumVertices();
    if (pool == nullptr || n < 1024) {
      score_range(0, n);
    } else {
      parallel_seconds += TimedParallelChunks(
          *pool, n, [&](size_t begin, size_t end) {
            score_range(static_cast<VertexId>(begin),
                        static_cast<VertexId>(end));
          });
    }
  }
  std::stable_sort(perm.begin(), perm.end(), [&key](VertexId a, VertexId b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return a < b;
  });
  account();
  return perm;
}

const std::vector<uint32_t>& Restreamer::FileIndexOfVertex() const {
  if (file_index_of_vertex_.empty() && file_->NumVertices() > 0) {
    file_index_of_vertex_.assign(file_->IdBound(), ~uint32_t{0});
    for (uint64_t i = 0; i < file_->NumVertices(); ++i) {
      file_index_of_vertex_[file_->At(i).vertex] = static_cast<uint32_t>(i);
    }
  }
  return file_index_of_vertex_;
}

double Restreamer::CutFraction(const PartitionAssignment& a) const {
  if (!OutOfCore()) return EdgeCutFraction(graph_, a);
  FileBackCursor cursor(*file_);
  return EdgeCutFraction(cursor, a);
}

GraphStream Restreamer::ReplayStream(RestreamOrder order,
                                     const PartitionAssignment& prior,
                                     Rng& rng, ThreadPool* pool,
                                     double* critical_seconds_out) const {
  const std::vector<VertexId> perm =
      PassOrder(order, prior, rng, pool, critical_seconds_out);
  ThreadCpuTimer self_cpu;
  double parallel_seconds = 0.0;
  std::vector<VertexArrival> arrivals(perm.size());
  ++materializations_;
  // Restream passes know the whole graph: each arrival carries the full
  // neighbourhood, and scores fall through to the prior for neighbours not
  // yet re-assigned this pass.
  if (OutOfCore()) {
    // Serial by design: the file cursor's residency accounting is
    // single-consumer, and the sharded pass is the only caller anyway —
    // its shards own the parallelism.
    const std::vector<uint32_t>& index_of = FileIndexOfVertex();
    for (size_t i = 0; i < perm.size(); ++i) {
      const FileArrivalSource::Record record = file_->At(index_of[perm[i]]);
      arrivals[i].vertex = record.vertex;
      arrivals[i].label = record.label;
      arrivals[i].back_edges.assign(record.full_edges.begin(),
                                    record.full_edges.end());
    }
  } else {
    // Each slot is written exactly once, so the parallel build is
    // bit-identical to the serial one.
    const auto build_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const VertexId v = perm[i];
        arrivals[i].vertex = v;
        arrivals[i].label = graph_.LabelOf(v);
        arrivals[i].back_edges = graph_.Neighbors(v);
      }
    };
    if (pool == nullptr || perm.size() < 1024) {
      build_range(0, perm.size());
    } else {
      parallel_seconds += TimedParallelChunks(*pool, perm.size(), build_range);
    }
  }
  if (critical_seconds_out != nullptr) {
    *critical_seconds_out += self_cpu.ElapsedSeconds() + parallel_seconds;
  }
  return GraphStream(std::move(arrivals));
}

RestreamPassStats Restreamer::RunIncrementalPass(
    StreamingPartitioner* partitioner, const PartitionAssignment& prior,
    uint64_t max_moves) const {
  Rng rng(options_.seed);
  WallTimer timer;
  // The replay ordering is part of the reaction latency: an incremental pass
  // is judged end-to-end, ordering included. The replay itself goes through
  // a borrowing cursor — no stream copy in either mode.
  const std::vector<VertexId> perm =
      PassOrder(options_.order, prior, rng, nullptr, nullptr);
  partitioner->BeginPass(&prior);
  partitioner->SetMigrationBudget(max_moves);
  if (OutOfCore()) {
    FileReplayCursor cursor(*file_, perm, FileIndexOfVertex());
    partitioner->Run(cursor);
  } else {
    GraphReplayCursor cursor(graph_, perm, graph_.NumEdges());
    partitioner->Run(cursor);
  }
  partitioner->ClearPrior();

  RestreamPassStats s;
  s.pass = 1;
  s.seconds = timer.ElapsedSeconds();
  s.edge_cut_fraction = CutFraction(partitioner->assignment());
  s.best_edge_cut_fraction = s.edge_cut_fraction;
  s.balance = BalanceMaxOverAvg(partitioner->assignment());
  s.migration_fraction = MigrationFraction(prior, partitioner->assignment());
  s.overflow_fallbacks = partitioner->stats().overflow_fallbacks;
  s.forced_placements = partitioner->stats().forced_placements;
  s.assign_errors = partitioner->stats().assign_errors;
  s.budget_denied_moves = partitioner->stats().budget_denied_moves;
  return s;
}

RestreamPassStats Restreamer::RunShardedIncrementalPass(
    StreamingPartitioner* partitioner, const PartitionAssignment& prior,
    uint64_t max_moves, uint32_t num_shards, ThreadPool* pool) const {
  num_shards = std::max<uint32_t>(1, num_shards);

  // Clones must agree with the prior's partition count (BeginPass would
  // discard a mismatched prior) and the partitioner must support cloning;
  // otherwise the serial pass is the correct degenerate form.
  std::vector<std::unique_ptr<StreamingPartitioner>> clones;
  clones.reserve(num_shards);
  bool cloneable = prior.k() == partitioner->options().k;
  for (uint32_t s = 0; cloneable && s < num_shards; ++s) {
    clones.push_back(partitioner->CloneForShard());
    if (clones.back() == nullptr) cloneable = false;
  }
  if (!cloneable) {
    return RunIncrementalPass(partitioner, prior, max_moves);
  }

  Rng rng(options_.seed);
  WallTimer timer;
  // Reuse the caller's persistent pool when given one; otherwise own a
  // pass-local pool (the degenerate single-call form).
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(num_shards);
    pool = owned_pool.get();
  }
  // The global replay (ordering included) is shared: each shard keeps the
  // global order restricted to its own vertices, so the decomposition is a
  // pure function of (stream, prior, order, seed, num_shards). The replay
  // build and the shard split fan out over the same pool — they would
  // otherwise dominate the critical path of a budgeted pass, whose
  // streaming phase early-stops once the budget is spent. `setup_seconds`
  // is their accumulated share-nothing critical path.
  double setup_seconds = 0.0;
  const GraphStream replay =
      ReplayStream(options_.order, prior, rng, pool, &setup_seconds);
  const PartitionerOptions& popts = partitioner->options();
  const size_t capacity = ComputeCapacity(
      popts.k, popts.num_vertices_hint, popts.capacity_slack);
  const ShardPlan plan = BuildShardPlan(replay, prior, num_shards, max_moves,
                                        capacity, pool, &setup_seconds);

  // Share-nothing execution: every clone owns its mutable state and reads
  // only the shared prior (and, for LOOM, the immutable trie). Futures are
  // joined in shard order; scheduling cannot leak into any result.
  std::vector<double> shard_seconds(num_shards, 0.0);
  {
    std::vector<std::future<void>> done;
    done.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      StreamingPartitioner* clone = clones[s].get();
      const RestreamShard& shard = plan.shards[s];
      double* seconds_out = &shard_seconds[s];
      done.push_back(pool->Submit([clone, &shard, &prior, seconds_out] {
        ThreadCpuTimer cpu;
        clone->BeginPass(&prior);
        clone->SetShardCapacities(shard.capacities);
        clone->SetMigrationBudget(shard.migration_budget, shard.home_claims);
        clone->Run(shard.stream);
        clone->ClearPrior();
        *seconds_out = cpu.ElapsedSeconds();
      }));
    }
    for (std::future<void>& f : done) f.get();
  }

  // Merge: shard vertex sets are disjoint (every vertex replays in exactly
  // one shard), so composition is a union. The per-shard capacity slices
  // sum to exactly C per partition, so Assign stays within the bound;
  // ForceAssign is a belt-and-braces escape hatch mirroring the serial
  // overflow path (a shard itself force-places only when its whole slice
  // set is exhausted).
  ThreadCpuTimer merge_cpu;
  PartitionAssignment merged(popts.k, capacity);
  PartitionerStats folded;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const PartitionAssignment& shard_result = clones[s]->assignment();
    for (VertexId v = 0; v < shard_result.IdBound(); ++v) {
      const int32_t p = shard_result.PartOf(v);
      if (p < 0) continue;
      Status status = merged.Assign(v, static_cast<uint32_t>(p));
      if (!status.ok() && status.code() == StatusCode::kCapacityExceeded) {
        status = merged.ForceAssign(v, static_cast<uint32_t>(p));
      }
      if (!status.ok()) ++folded.assign_errors;
    }
    const PartitionerStats& shard_stats = clones[s]->stats();
    folded.overflow_fallbacks += shard_stats.overflow_fallbacks;
    folded.forced_placements += shard_stats.forced_placements;
    folded.assign_errors += shard_stats.assign_errors;
    folded.prior_moves += shard_stats.prior_moves;
    folded.budget_denied_moves += shard_stats.budget_denied_moves;
  }
  partitioner->AdoptAssignment(std::move(merged), folded);
  const double merge_seconds = merge_cpu.ElapsedSeconds();

  RestreamPassStats s;
  s.pass = 1;
  s.seconds = timer.ElapsedSeconds();
  s.num_shards = num_shards;
  s.shard_seconds = shard_seconds;
  s.critical_path_seconds =
      setup_seconds +
      *std::max_element(shard_seconds.begin(), shard_seconds.end()) +
      merge_seconds;
  s.edge_cut_fraction = CutFraction(partitioner->assignment());
  s.best_edge_cut_fraction = s.edge_cut_fraction;
  s.balance = BalanceMaxOverAvg(partitioner->assignment());
  s.migration_fraction = MigrationFraction(prior, partitioner->assignment());
  s.overflow_fallbacks = folded.overflow_fallbacks;
  s.forced_placements = folded.forced_placements;
  s.assign_errors = folded.assign_errors;
  s.budget_denied_moves = folded.budget_denied_moves;
  return s;
}

RestreamResult Restreamer::Run(StreamingPartitioner* partitioner) const {
  Rng rng(options_.seed);
  RestreamResult result;

  PartitionAssignment prior{1, 0};
  PartitionAssignment best{1, 0};
  double best_cut = std::numeric_limits<double>::infinity();

  const uint32_t passes = std::max<uint32_t>(1, options_.num_passes);
  // Cluster memoization: ask the partitioner to log its unit decomposition;
  // partitioners without the hook return no log and the whole feature
  // degrades to a no-op. Logging stays off for single-pass runs — the hot
  // path pays nothing.
  const bool want_memo = options_.memoize_clusters && passes > 1;
  if (want_memo) partitioner->SetClusterLogging(true);
  const bool memoize = want_memo && partitioner->cluster_log() != nullptr;
  // The previous pass's log (copied out before BeginPass resets the live
  // one) and the memo over it; both must outlive the pass that replays them.
  ClusterLog prev_log;
  ClusterMemo memo;

  for (uint32_t pass = 1; pass <= passes; ++pass) {
    std::vector<VertexId> perm;
    if (pass == 1) {
      partitioner->BeginPass(nullptr);
    } else {
      perm = PassOrder(options_.order, prior, rng, nullptr, nullptr);
      if (memoize) {
        partitioner->TakeClusterLog(&prev_log);
        // The final pass's log has no consumer — skip recording it, which
        // keeps the peak at one retained log plus one being recorded.
        partitioner->SetClusterLogging(pass < passes);
      }
      partitioner->BeginPass(&prior);
      if (memoize && prev_log.NumUnits() > 0) {
        memo = ClusterMemo(&prev_log);
        // Hoist each recalled unit's members to its first member's stream
        // position, so the unit arrives contiguously and can be scored as
        // one buffered group.
        perm = GroupPermByUnits(perm, memo);
        partitioner->SetClusterMemo(&memo);
      }
      partitioner->SetMigrationBudget(
          MigrationBudgetMoves(prior, options_.max_migration_fraction));
    }

    WallTimer timer;
    // Pass one streams the recorded arrivals (back edges only); later
    // passes replay full neighbourhoods through borrowing cursors — no
    // per-pass stream copy in either mode.
    if (pass == 1) {
      if (OutOfCore()) {
        FileBackCursor cursor(*file_);
        partitioner->Run(cursor);
      } else {
        partitioner->Run(*stream_);
      }
    } else if (OutOfCore()) {
      FileReplayCursor cursor(*file_, perm, FileIndexOfVertex());
      partitioner->Run(cursor);
    } else {
      GraphReplayCursor cursor(graph_, perm, graph_.NumEdges());
      partitioner->Run(cursor);
    }

    RestreamPassStats s;
    s.pass = pass;
    s.seconds = timer.ElapsedSeconds();
    s.edge_cut_fraction = CutFraction(partitioner->assignment());
    s.balance = BalanceMaxOverAvg(partitioner->assignment());
    s.migration_fraction =
        pass == 1 ? 0.0 : MigrationFraction(prior, partitioner->assignment());
    s.overflow_fallbacks = partitioner->stats().overflow_fallbacks;
    s.forced_placements = partitioner->stats().forced_placements;
    s.assign_errors = partitioner->stats().assign_errors;
    s.budget_denied_moves = partitioner->stats().budget_denied_moves;

    if (s.edge_cut_fraction <= best_cut) {
      best_cut = s.edge_cut_fraction;
      best = partitioner->assignment();
    }
    s.best_edge_cut_fraction = best_cut;
    result.passes.push_back(s);

    prior = options_.keep_best ? best : partitioner->assignment();
  }
  // `prior`, `prev_log` and `memo` die with this call; the partitioner must
  // not keep pointing at any of them, and logging is switched back off so
  // later single-pass uses pay nothing.
  partitioner->SetClusterMemo(nullptr);
  if (want_memo) partitioner->SetClusterLogging(false);
  partitioner->ClearPrior();

  if (options_.keep_best) {
    result.assignment = best;
    result.edge_cut_fraction = best_cut;
  } else {
    result.assignment = partitioner->assignment();
    result.edge_cut_fraction = result.passes.back().edge_cut_fraction;
  }
  return result;
}

}  // namespace loom
