#include "restream/shard_plan.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace loom {

ShardPlan BuildShardPlan(const GraphStream& replay,
                         const PartitionAssignment& prior,
                         uint32_t num_shards, uint64_t global_moves,
                         size_t capacity, ThreadPool* pool,
                         double* critical_seconds_out) {
  ThreadCpuTimer self_cpu;
  double parallel_seconds = 0.0;
  num_shards = std::max<uint32_t>(1, num_shards);
  const uint32_t k = prior.k();

  ShardPlan plan;
  plan.shards.resize(num_shards);

  // Deal the arrivals; each shard keeps the global replay order restricted
  // to its own vertices, so one shard replays the serial stream exactly.
  // Shard of one arrival — a pure function, so the parallel build below
  // (one task per shard, each collecting only its own arrivals) is
  // bit-identical to the serial one.
  const auto shard_of = [&](const VertexArrival& arrival) {
    const int32_t home = prior.PartOf(arrival.vertex);
    return home >= 0
               ? ShardOfPartition(static_cast<uint32_t>(home), num_shards)
               : static_cast<uint32_t>(arrival.vertex % num_shards);
  };
  const auto collect_shard = [&](uint32_t s) {
    std::vector<VertexArrival> mine;
    mine.reserve(replay.NumVertices() / num_shards + 1);
    for (const VertexArrival& arrival : replay.arrivals()) {
      if (shard_of(arrival) == s) mine.push_back(arrival);
    }
    plan.shards[s].stream = GraphStream(std::move(mine));
  };
  if (pool == nullptr || num_shards == 1) {
    for (uint32_t s = 0; s < num_shards; ++s) collect_shard(s);
  } else {
    // One concurrent collection task per shard; the stage's critical path
    // is the slowest task's thread-CPU time (scheduling-independent).
    std::vector<double> task_cpu(num_shards, 0.0);
    ParallelFor(*pool, num_shards, [&](size_t s) {
      ThreadCpuTimer cpu;
      collect_shard(static_cast<uint32_t>(s));
      task_cpu[s] = cpu.ElapsedSeconds();
    });
    parallel_seconds += *std::max_element(task_cpu.begin(), task_cpu.end());
  }

  const uint64_t total = prior.NumAssigned();
  for (uint32_t s = 0; s < num_shards; ++s) {
    RestreamShard& shard = plan.shards[s];

    // Home claims: the prior sizes of the partitions this shard owns. By
    // the split rule every vertex with a prior home in an owned partition
    // replays in this shard, so every claim settles here.
    shard.home_claims.assign(k, 0);
    for (uint32_t p = 0; p < k; ++p) {
      if (ShardOfPartition(p, num_shards) != s) continue;
      shard.home_claims[p] = prior.Sizes()[p];
      shard.prior_vertices += prior.Sizes()[p];
    }

    // Budget slice: floor-proportional to the shard's prior mass, so the
    // slices sum to at most the global allowance (one shard gets it all).
    if (global_moves == StreamingPartitioner::kUnlimitedMigrationBudget) {
      shard.migration_budget = global_moves;
    } else if (total == 0) {
      // No prior vertices: nothing counts as a move, the budget is moot.
      shard.migration_budget = global_moves;
    } else {
      shard.migration_budget = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(global_moves) *
           shard.prior_vertices) /
          total);
    }

    // Capacity slice: own members' prior size plus an even share of each
    // partition's slack beyond its prior size (remainder to low shards).
    // The own component is capped at C so the slices sum to exactly C:
    // when the prior itself overflowed C (forced placements on an
    // over-capacity stream), the owner's surplus stayers overflow-fallback
    // within their shard — the same treatment the serial pass gives them
    // under its scalar C, which keeps the 1-shard plan bit-identical to
    // the serial pass even for overfull priors.
    if (capacity == 0) continue;  // unconstrained pass: leave empty
    shard.capacities.assign(k, 0);
    for (uint32_t p = 0; p < k; ++p) {
      const size_t prior_p = prior.Sizes()[p];
      const size_t extra = capacity > prior_p ? capacity - prior_p : 0;
      const size_t share =
          extra / num_shards + (s < extra % num_shards ? 1 : 0);
      const size_t own = ShardOfPartition(p, num_shards) == s
                             ? std::min(prior_p, capacity)
                             : 0;
      shard.capacities[p] = own + share;
    }
  }
  if (critical_seconds_out != nullptr) {
    *critical_seconds_out += self_cpu.ElapsedSeconds() + parallel_seconds;
  }
  return plan;
}

}  // namespace loom
