#ifndef LOOM_RESTREAM_SHARD_PLAN_H_
#define LOOM_RESTREAM_SHARD_PLAN_H_

/// \file
/// Share-nothing sharding of a budgeted restream pass. The replay stream is
/// split by *prior partition* — every vertex whose previous home is
/// partition p lands in the shard that owns p — so each shard restreams its
/// own slice of the graph against the shared read-only prior, and the three
/// pieces of per-partition state a budgeted pass depends on split exactly
/// with it, with zero coordination between workers:
///
///  * **Migration budget.** Shard s gets
///    `floor(shard_prior_size_s / total * global_moves)`; the floors sum to
///    at most `global_moves`, so the global migration cap holds no matter
///    how each shard spends its allowance.
///  * **Home-slot reservation.** A shard replays *all* vertices whose prior
///    home is one of its partitions, so its home claims are exactly the
///    prior sizes of the partitions it owns (and zero elsewhere): every
///    claim settles within the shard and the reservation stays exact.
///  * **Capacity.** Shard s may fill partition p up to its own members'
///    prior size (capped at C) plus an even share of the partition's slack
///    (`C - prior_size_p`, remainder to the low shards); the slices sum to
///    exactly C, so the merged assignment always respects the global
///    bound. When the prior itself overflowed C (forced placements), the
///    owner's surplus stayers overflow-fallback within their shard — the
///    same treatment the serial pass gives them under its scalar C.
///
/// With one shard the plan degenerates to the serial pass exactly: full
/// stream, full budget, claims = prior sizes, capacity = C — which is what
/// makes `RunShardedIncrementalPass(num_shards=1)` bit-identical to
/// `RunIncrementalPass`.

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "stream/stream.h"

namespace loom {

class ThreadPool;

/// One worker's share of a sharded restream pass.
struct RestreamShard {
  /// This shard's arrivals, in global replay order.
  GraphStream stream;
  /// Per-partition home claims for SetMigrationBudget: the number of this
  /// shard's replayed vertices whose prior home is that partition.
  std::vector<uint32_t> home_claims;
  /// Per-partition capacity slice for SetShardCapacities; empty when the
  /// pass is unconstrained (capacity 0).
  std::vector<size_t> capacities;
  /// This shard's slice of the global migration budget.
  uint64_t migration_budget = StreamingPartitioner::kUnlimitedMigrationBudget;
  /// Replayed vertices with a prior home in this shard (the budget weight).
  uint64_t prior_vertices = 0;
};

/// The full pass decomposition: `shards[s]` is worker s's share.
struct ShardPlan {
  std::vector<RestreamShard> shards;
};

/// Owner shard of prior partition `partition` under `num_shards` shards
/// (deterministic round-robin).
inline uint32_t ShardOfPartition(uint32_t partition, uint32_t num_shards) {
  return partition % num_shards;
}

/// Splits `replay` into `num_shards` share-nothing shards against `prior`.
/// `global_moves` is the pass's total migration allowance
/// (StreamingPartitioner::kUnlimitedMigrationBudget to disable the split);
/// `capacity` the per-partition bound C the serial pass would run under
/// (0 = unconstrained). Vertices absent from the prior are dealt round-robin
/// by vertex id; they carry no home claim (the reservation does not cover
/// them, exactly as in the serial pass). With a non-null `pool` the shards
/// assemble their streams concurrently (each shard writes only its own
/// plan entry, so the result is bit-identical to the serial build). When
/// `critical_seconds_out` is non-null the build's share-nothing critical
/// path — calling-thread CPU plus the slowest concurrent collection task's
/// thread-CPU seconds — is added to it.
ShardPlan BuildShardPlan(const GraphStream& replay,
                         const PartitionAssignment& prior,
                         uint32_t num_shards, uint64_t global_moves,
                         size_t capacity, ThreadPool* pool = nullptr,
                         double* critical_seconds_out = nullptr);

}  // namespace loom

#endif  // LOOM_RESTREAM_SHARD_PLAN_H_
