#ifndef LOOM_RESTREAM_RESTREAMER_H_
#define LOOM_RESTREAM_RESTREAMER_H_

/// \file
/// Multi-pass restreaming / repartitioning over any StreamingPartitioner —
/// the literature's cure for single-pass fragility and the entry point for
/// adapting a partitioning after workload or graph drift (paper §5 future
/// work). Pass one consumes the recorded stream as-is; every later pass
/// replays the graph with *full* neighbourhoods (the graph is known after
/// pass one) under a pluggable inter-pass ordering, with the previous pass's
/// assignment installed as a scoring prior (ReLDG/ReFennel semantics:
/// balance counts this pass's placements, scores see last pass's
/// neighbourhoods). Prioritized orderings follow Awadelkarim & Ugander,
/// "Prioritized Restreaming Algorithms for Balanced Graph Partitioning"
/// (KDD 2020); the repartitioning framing follows Le Merrer & Liang,
/// "(Re)partitioning for stream-enabled computation" (2013). Running the
/// LOOM partitioner through the same driver restreams whole motif clusters
/// against the prior — the workload-aware mode the paper leaves open.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "metrics/metrics.h"
#include "partition/partitioner.h"
#include "stream/arrival_source.h"
#include "stream/stream.h"

namespace loom {

class ThreadPool;

/// How passes >= 2 order the replayed vertices.
enum class RestreamOrder {
  /// Replay the pass-one arrival order.
  kOriginal,
  /// Fresh uniform permutation per pass.
  kRandom,
  /// Prioritized restreaming: descending gain, where gain(v) = edges to v's
  /// prior partition minus edges to its best alternative. Confidently-placed
  /// vertices stream first and anchor their neighbourhoods.
  kGain,
  /// Prioritized restreaming: ascending |gain| — the most ambivalent
  /// vertices stream first, while both options still have room.
  kAmbivalence,
  /// Descending |gain| — the most *decided* vertices first: strong stayers
  /// anchor their neighbourhoods and strong movers spend the migration
  /// budget before the ambivalent tail can waste it. The right ordering for
  /// budgeted passes, where kGain would queue every mover at the stream
  /// tail in worst-value-first order.
  kDecisive,
};

/// Human-readable ordering name for tables.
std::string RestreamOrderName(RestreamOrder order);

struct RestreamOptions {
  /// Total passes including the initial stream (>= 1).
  uint32_t num_passes = 3;
  RestreamOrder order = RestreamOrder::kGain;
  /// Seed for the kRandom inter-pass permutations.
  uint64_t seed = 42;
  /// Anytime guarantee: use the best-cut assignment seen so far as the prior
  /// for later passes and as the final result, so the reported partitioning
  /// never regresses below the best pass. Off = plain last-pass semantics.
  bool keep_best = true;
  /// Bounded-migration budget for every pass that has a prior: at most
  /// floor(max_migration_fraction * prior.NumAssigned()) placements may land
  /// on a different partition than the prior assigned; once spent, further
  /// moves are clamped back to the vertex's prior partition and the pass
  /// early-stops its scoring (see StreamingPartitioner::SetMigrationBudget).
  /// >= 1.0 (the default) disables the budget — full-restream semantics.
  /// This is what makes a restream pass a cheap *incremental* re-partition:
  /// the drift controller runs one budgeted pass with the live assignment as
  /// prior instead of a cold multi-pass restream.
  double max_migration_fraction = 1.0;
  /// Cluster-memoized replay (stream/cluster_log.h): when the partitioner
  /// supports cluster logging (LOOM does), record the unit decomposition of
  /// every pass and feed it to the next as pre-grouped arrivals, so
  /// unchanged units skip the window/matcher pipeline and are re-scored
  /// straight off their buffered neighbourhoods. A per-member fingerprint
  /// gate invalidates recalled units whose label or neighbourhood changed —
  /// those members flow through the normal pipeline. Pass one is untouched.
  /// No-op for partitioners without the logging hook.
  bool memoize_clusters = true;
};

/// Uniform options contract (shared with `DriftControllerOptions` and
/// `ServiceOptions`): every options struct ships a `Validate*Options` that
/// *rejects* — returns InvalidArgument naming the first bad field, mutating
/// nothing — and a `Sanitize*Options` that *clamps* — a total function
/// mapping any input to a safe configuration, always towards the
/// conservative end. Facade entry points (`Service::Create`) validate so
/// callers hear about mistakes; internal constructors sanitize so garbage
/// can never reach the arithmetic.
///
/// Rejects: `num_passes == 0`, and a NaN or negative
/// `max_migration_fraction` (values > 1 are valid — they mean unbudgeted).
Status ValidateRestreamOptions(const RestreamOptions& options);

/// Sanitized copy of `options`: `num_passes` clamped to >= 1, and a NaN or
/// negative `max_migration_fraction` rejected by clamping it to 0.0 — the
/// conservative end (a garbage budget freezes migration; it must never
/// silently become an *unbudgeted* pass, nor feed NaN into the move
/// arithmetic). The Restreamer constructor applies this to everything it is
/// given.
RestreamOptions SanitizeRestreamOptions(RestreamOptions options);

/// Move allowance implied by a migration-fraction budget over `prior`:
/// floor(fraction * prior.NumAssigned()), saturating to unlimited for
/// fraction >= 1 and to zero for fraction <= 0 — or NaN, which is invalid
/// input and maps to the conservative end (zero moves), never to
/// unlimited.
uint64_t MigrationBudgetMoves(const PartitionAssignment& prior,
                              double max_migration_fraction);

/// Quality and cost of one restream pass.
struct RestreamPassStats {
  /// 1-based pass number.
  uint32_t pass = 0;
  /// Raw edge-cut fraction of this pass's assignment.
  double edge_cut_fraction = 0.0;
  /// Best edge-cut fraction over passes 1..pass (the anytime trajectory;
  /// non-increasing by construction).
  double best_edge_cut_fraction = 0.0;
  double balance = 0.0;
  /// Fraction of vertices whose partition changed from the previous pass's
  /// prior (0 for pass one) — the data-migration cost of adopting the pass.
  double migration_fraction = 0.0;
  /// Capacity-pressure counters from PartitionerStats, per pass: a non-zero
  /// value means placements were re-routed (or forced past C) because
  /// partitions filled up — quality numbers under pressure are suspect, so
  /// benches assert these stay zero during budgeted migration.
  uint64_t overflow_fallbacks = 0;
  uint64_t forced_placements = 0;
  /// Non-capacity Assign failures (always a logic error; see
  /// PartitionerStats::assign_errors). Surfaced per pass so Release-mode
  /// drivers can fail loudly instead of reading a silently-wrong cut.
  uint64_t assign_errors = 0;
  /// Would-be moves clamped back to the prior partition by the migration
  /// budget (0 on unbudgeted passes).
  uint64_t budget_denied_moves = 0;
  double seconds = 0.0;
  /// Share-nothing shards the pass ran on (1 = serial pass).
  uint32_t num_shards = 1;
  /// Sharded passes only: per-shard thread-CPU seconds (BeginPass through
  /// ClearPrior), index = shard. Empty for serial passes.
  std::vector<double> shard_seconds;
  /// Sharded passes only: serial setup (replay build + shard plan) plus the
  /// slowest shard's CPU seconds plus the merge — the pass latency on a
  /// machine with one free core per shard. 0 for serial passes (use
  /// `seconds`). On a machine with fewer cores than shards `seconds` (wall
  /// time) cannot shrink, but this number still measures the share-nothing
  /// critical path because the per-shard component is CPU time, not wall
  /// time.
  double critical_path_seconds = 0.0;
};

/// Outcome of a full restream run.
struct RestreamResult {
  std::vector<RestreamPassStats> passes;
  /// Final assignment: the best-cut pass under keep_best, else the last.
  PartitionAssignment assignment{1, 0};
  /// Edge-cut fraction of `assignment`.
  double edge_cut_fraction = 0.0;
};

/// Replays a recorded stream for N passes over one partitioner.
///
/// Two backing modes share every driver:
///
///  * **Materialised** — constructed from an in-memory GraphStream (which
///    must outlive the Restreamer). The adjacency needed for full
///    neighbourhoods and prioritized orderings is rebuilt from it exactly
///    once at construction (GraphFromStream); serial passes replay through
///    a borrowing cursor over that adjacency, so no per-pass stream copy is
///    ever made (`materializations()` counts the O(E) builds — a 3-pass
///    serial run performs exactly one).
///  * **Out-of-core** — constructed from an mmap-ed FileArrivalSource
///    written with full neighbourhoods. Pass one streams the file's back
///    edges; later passes replay full-neighbourhood records in prioritized
///    order through the mapping. Serial passes keep O(V) memory (ordering
///    keys, permutation, vertex index — never the edges); only the sharded
///    pass and ReplayStream still materialise, because share-nothing shards
///    need owned streams. `graph()` is empty in this mode.
class Restreamer {
 public:
  Restreamer(const GraphStream& stream, const RestreamOptions& options);

  /// Out-of-core mode over `file`, which is borrowed (must outlive the
  /// Restreamer, which owns its cursor positions: the file's own cursor is
  /// not used). The file must carry full neighbourhoods
  /// (`info().has_full_neighborhoods`) — replay passes need them.
  Restreamer(FileArrivalSource* file, const RestreamOptions& options);

  /// Runs `options.num_passes` passes of `partitioner` (reset via BeginPass,
  /// so a used partitioner is fine). After the call the partitioner holds
  /// the *last* pass's assignment; the returned result holds the final one.
  RestreamResult Run(StreamingPartitioner* partitioner) const;

  /// One bounded-migration pass against an externally-supplied prior —
  /// typically the *live* assignment, which is what turns a restream pass
  /// into an incremental drift reaction. Replays the stream under
  /// `options.order` with `prior` installed as the scoring prior and at most
  /// `max_moves` placements allowed to leave their prior partition
  /// (kUnlimitedMoves disables the cap). After the call the partitioner
  /// holds the resulting assignment and its prior is cleared. The returned
  /// stats carry pass = 1 and best = raw cut; callers chaining passes
  /// renumber and fold them.
  RestreamPassStats RunIncrementalPass(StreamingPartitioner* partitioner,
                                       const PartitionAssignment& prior,
                                       uint64_t max_moves) const;

  /// The sharded parallel form of RunIncrementalPass: splits the replay by
  /// prior partition into `num_shards` share-nothing shards (shard_plan.h),
  /// restreams them concurrently on a fixed worker pool — each worker
  /// driving its own `partitioner->CloneForShard()` against the shared
  /// read-only `prior` with a proportional slice of `max_moves` and of each
  /// partition's capacity — then merges the disjoint shard assignments and
  /// folds their stats into `partitioner` (AdoptAssignment), leaving it in
  /// the same logical state the serial pass would.
  ///
  /// Guarantees: the result is a pure function of (stream, prior, options,
  /// max_moves, num_shards) — worker scheduling never leaks into it;
  /// `num_shards == 1` is bit-identical to RunIncrementalPass (same
  /// assignment, same counters); and the merged result never migrates more
  /// than `max_moves` vertices nor exceeds the serial capacity bound C in
  /// any partition the prior respected it in. Falls back to the serial pass
  /// when the partitioner does not support cloning or the prior's k
  /// mismatches. The returned stats carry per-shard seconds and the
  /// share-nothing critical path.
  ///
  /// With a non-null `pool` the pass runs on the caller's worker pool
  /// instead of constructing its own — a drift loop chaining reaction
  /// passes pays the thread spin-up once instead of per pass (the
  /// wall-clock tax the parallel_restream wall_speedup rows exposed). A
  /// pool larger than `num_shards` is fine: determinism is input-only
  /// (futures join in shard order).
  RestreamPassStats RunShardedIncrementalPass(StreamingPartitioner* partitioner,
                                              const PartitionAssignment& prior,
                                              uint64_t max_moves,
                                              uint32_t num_shards,
                                              ThreadPool* pool = nullptr) const;

  /// `max_moves` value that disables the migration cap.
  static constexpr uint64_t kUnlimitedMoves =
      StreamingPartitioner::kUnlimitedMigrationBudget;

  /// The pass >= 2 stream for `order` given a prior assignment: arrivals in
  /// prioritized order, each carrying its full neighbourhood, materialised
  /// into an owned GraphStream (counted by `materializations()`). Exposed
  /// for tests and for drivers that schedule passes themselves — serial
  /// passes no longer use it; the sharded pass does, because share-nothing
  /// shards need owned streams. With a non-null `pool` the gain scoring and
  /// arrival construction fan out over it — bit-identical output (every
  /// chunk writes only its own slots), just built on more cores; the
  /// sharded pass reuses its worker pool here so the serial setup does not
  /// dominate its critical path. When `critical_seconds_out` is non-null
  /// the build's share-nothing critical path is *added* to it:
  /// calling-thread CPU seconds plus, per fanned-out stage, the LPT
  /// makespan model max(slowest chunk, total chunk CPU / workers) — i.e.
  /// the build latency on a machine with the pool's worker count in free
  /// cores, measured machine-independently.
  GraphStream ReplayStream(RestreamOrder order,
                           const PartitionAssignment& prior, Rng& rng,
                           ThreadPool* pool = nullptr,
                           double* critical_seconds_out = nullptr) const;

  /// The adjacency rebuilt from the recorded stream; empty in out-of-core
  /// mode (the whole point is never to build it).
  const LabeledGraph& graph() const { return graph_; }

  /// How many times this Restreamer has built O(E) neighbourhood state: the
  /// construction-time GraphFromStream (materialised mode) plus one per
  /// ReplayStream call. Serial multi-pass runs replay through borrowing
  /// cursors, so a 3-pass Run() reports exactly 1 in materialised mode and
  /// 0 out-of-core — the regression guard for the per-pass re-copying this
  /// class used to do.
  uint64_t materializations() const { return materializations_; }

 private:
  /// The vertex permutation for a pass >= 2. Accumulates its critical-path
  /// cost into `critical_seconds_out` (see ReplayStream) when non-null.
  std::vector<VertexId> PassOrder(RestreamOrder order,
                                  const PartitionAssignment& prior, Rng& rng,
                                  ThreadPool* pool,
                                  double* critical_seconds_out) const;

  /// True when backed by a FileArrivalSource instead of a GraphStream.
  bool OutOfCore() const { return file_ != nullptr; }

  /// Arrival index of each vertex id, built lazily on the first replay pass
  /// (out-of-core mode only; O(id_bound) once, then reused by every pass).
  const std::vector<uint32_t>& FileIndexOfVertex() const;

  /// Edge-cut fraction of `a` in whichever mode is active.
  double CutFraction(const PartitionAssignment& a) const;

  /// Exactly one of stream_/file_ is set (materialised vs out-of-core).
  const GraphStream* stream_ = nullptr;
  FileArrivalSource* file_ = nullptr;
  LabeledGraph graph_;
  RestreamOptions options_;
  /// O(E) neighbourhood-state builds so far (see materializations()).
  mutable uint64_t materializations_ = 0;
  /// Lazy cache behind FileIndexOfVertex().
  mutable std::vector<uint32_t> file_index_of_vertex_;
};

}  // namespace loom

#endif  // LOOM_RESTREAM_RESTREAMER_H_
