#include "replication/hotspot.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace loom {

ReplicaSet ComputeHotspotReplicas(const LabeledGraph& g,
                                  const PartitionAssignment& assignment,
                                  const Workload& workload,
                                  const ReplicationOptions& options,
                                  ReplicationStats* stats) {
  // Heat of a (target vertex, anchor partition) pair: frequency-weighted
  // rate of remote traversals into `target` from `partition`.
  std::unordered_map<uint64_t, double> heat;
  const double total_freq =
      workload.TotalFrequency() > 0 ? workload.TotalFrequency() : 1.0;

  for (const QuerySpec& q : workload.queries()) {
    std::unordered_map<uint64_t, uint64_t> per_query;
    uint64_t total_traversals = 0;
    const TraversalObserver observer = [&](VertexId from, VertexId to,
                                           bool cross) {
      ++total_traversals;
      if (!cross) return;
      const int32_t from_part = assignment.PartOf(from);
      if (from_part < 0) return;
      const uint64_t key = (static_cast<uint64_t>(to) << 32) |
                           static_cast<uint32_t>(from_part);
      ++per_query[key];
    };
    (void)ExecuteQuery(g, assignment, q.pattern,
                       options.max_embeddings_per_query, nullptr, observer);
    if (total_traversals == 0) continue;
    const double weight = q.frequency / total_freq /
                          static_cast<double>(total_traversals);
    for (const auto& [key, count] : per_query) {
      heat[key] += weight * static_cast<double>(count);
    }
  }

  // Rank hot pairs and place replicas within budget.
  std::vector<std::pair<double, uint64_t>> ranked;
  ranked.reserve(heat.size());
  for (const auto& [key, h] : heat) ranked.emplace_back(h, key);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic ties
  });

  const size_t budget = static_cast<size_t>(
      std::floor(options.budget_fraction * static_cast<double>(g.NumVertices())));
  ReplicaSet replicas;
  std::unordered_map<VertexId, uint32_t> per_vertex;
  for (const auto& [h, key] : ranked) {
    (void)h;
    if (replicas.NumReplicas() >= budget) break;
    const VertexId v = static_cast<VertexId>(key >> 32);
    const uint32_t part = static_cast<uint32_t>(key & 0xffffffffu);
    if (per_vertex[v] >= options.max_partitions_per_vertex) continue;
    replicas.Add(v, part);
    ++per_vertex[v];
  }

  if (stats != nullptr) {
    stats->hot_pairs_observed = heat.size();
    stats->replicas_placed = replicas.NumReplicas();
  }
  return replicas;
}

}  // namespace loom
