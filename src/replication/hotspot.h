#ifndef LOOM_REPLICATION_HOTSPOT_H_
#define LOOM_REPLICATION_HOTSPOT_H_

/// \file
/// Hotspot replication (paper §3.2, after Yang et al. [21]): analyse the
/// query workload over a partitioned graph, find the vertices whose remote
/// traversals cost the most ("clusters of vertices over 2 or more partitions
/// which are being frequently traversed"), and replicate them into the
/// partitions that traverse them. The paper argues LOOM "could effectively
/// complement many workload aware replication approaches" — the E11 bench
/// measures exactly that combination.

#include <cstdint>

#include "partition/partition_state.h"
#include "partition/replica_set.h"
#include "workload/query_engine.h"
#include "workload/workload.h"

namespace loom {

/// Tuning for hotspot replica selection.
struct ReplicationOptions {
  /// Replica budget as a fraction of |V| (total (vertex, partition) pairs).
  double budget_fraction = 0.05;
  /// At most this many secondary partitions per vertex.
  uint32_t max_partitions_per_vertex = 3;
  /// Embedding cap per query while profiling traversal heat.
  size_t max_embeddings_per_query = 20000;
};

/// Statistics of one replication round.
struct ReplicationStats {
  /// Distinct (vertex, partition) remote-traversal pairs observed.
  size_t hot_pairs_observed = 0;
  /// Replicas placed (= min(budget, hot pairs, per-vertex caps)).
  size_t replicas_placed = 0;
};

/// Profiles `workload` over the partitioned graph and returns the replica
/// placement that eliminates the hottest remote traversals within budget.
/// Heat is frequency-weighted per query (matching the ipt objective).
ReplicaSet ComputeHotspotReplicas(const LabeledGraph& g,
                                  const PartitionAssignment& assignment,
                                  const Workload& workload,
                                  const ReplicationOptions& options,
                                  ReplicationStats* stats = nullptr);

}  // namespace loom

#endif  // LOOM_REPLICATION_HOTSPOT_H_
