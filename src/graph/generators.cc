#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/hash.h"

namespace loom {
namespace {

/// Adds n labelled vertices to an empty graph.
LabeledGraph MakeVertices(uint32_t n, const LabelConfig& labels, Rng& rng) {
  LabeledGraph g;
  for (uint32_t i = 0; i < n; ++i) g.AddVertex(DrawLabel(labels, rng));
  return g;
}

uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Label DrawLabel(const LabelConfig& config, Rng& rng) {
  assert(config.num_labels >= 1);
  if (config.zipf_skew <= 0.0) {
    return static_cast<Label>(rng.UniformInt(0, config.num_labels - 1));
  }
  // Cache-free Zipf draw: rebuild is cheap for the small label counts used.
  const ZipfSampler sampler(config.num_labels, config.zipf_skew);
  return static_cast<Label>(sampler.Sample(rng));
}

LabeledGraph ErdosRenyiGnp(uint32_t n, double p, const LabelConfig& labels,
                           Rng& rng) {
  LabeledGraph g = MakeVertices(n, labels, rng);
  if (p <= 0.0 || n < 2) return g;
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) g.AddEdgeUnchecked(u, v);
    }
    return g;
  }
  // Geometric skipping over the implicit list of all vertex pairs.
  const double log1mp = std::log(1.0 - p);
  int64_t v = 1;
  int64_t w = -1;
  while (static_cast<uint64_t>(v) < n) {
    const double r = 1.0 - rng.UniformDouble();  // in (0, 1]
    w += 1 + static_cast<int64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && static_cast<uint64_t>(v) < n) {
      w -= v;
      ++v;
    }
    if (static_cast<uint64_t>(v) < n) {
      g.AddEdgeUnchecked(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return g;
}

LabeledGraph ErdosRenyiGnm(uint32_t n, uint64_t m, const LabelConfig& labels,
                           Rng& rng) {
  LabeledGraph g = MakeVertices(n, labels, rng);
  if (n < 2) return g;
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::unordered_set<uint64_t> used;
  used.reserve(m * 2);
  while (g.NumEdges() < m) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    const VertexId v = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    g.AddEdgeUnchecked(u, v);
  }
  return g;
}

LabeledGraph BarabasiAlbert(uint32_t n, uint32_t edges_per_vertex,
                            const LabelConfig& labels, Rng& rng) {
  const uint32_t m0 = std::max<uint32_t>(edges_per_vertex, 2);
  LabeledGraph g = MakeVertices(std::min(n, m0), labels, rng);
  // Repeated-endpoint list: sampling uniformly from it is degree-proportional.
  std::vector<VertexId> endpoint_pool;
  for (VertexId u = 0; u + 1 < g.NumVertices(); ++u) {
    g.AddEdgeUnchecked(u, u + 1);
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(u + 1);
  }
  for (uint32_t i = static_cast<uint32_t>(g.NumVertices()); i < n; ++i) {
    const VertexId v = g.AddVertex(DrawLabel(labels, rng));
    std::unordered_set<VertexId> targets;
    const uint32_t want = std::min<uint32_t>(edges_per_vertex, i);
    size_t attempts = 0;
    while (targets.size() < want && attempts < 64u * want) {
      ++attempts;
      const VertexId t = endpoint_pool.empty()
                             ? static_cast<VertexId>(rng.UniformInt(0, i - 1))
                             : rng.PickOne(endpoint_pool);
      if (t != v) targets.insert(t);
    }
    for (const VertexId t : targets) {
      g.AddEdgeUnchecked(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return g;
}

LabeledGraph WattsStrogatz(uint32_t n, uint32_t k_nearest, double beta,
                           const LabelConfig& labels, Rng& rng) {
  LabeledGraph g = MakeVertices(n, labels, rng);
  if (n < 3) return g;
  k_nearest = std::min(k_nearest, (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t d = 1; d <= k_nearest; ++d) {
      VertexId v = (u + d) % n;
      if (rng.Bernoulli(beta)) {
        // Rewire to a uniform non-neighbour (bounded retries keep it O(1)).
        for (int tries = 0; tries < 32; ++tries) {
          const VertexId w = static_cast<VertexId>(rng.UniformInt(0, n - 1));
          if (w != u && !g.HasEdge(u, w)) {
            v = w;
            break;
          }
        }
      }
      if (!g.HasEdge(u, v) && u != v) g.AddEdgeUnchecked(u, v);
    }
  }
  return g;
}

LabeledGraph RMat(uint32_t scale, uint32_t edge_factor, double a, double b,
                  double c, const LabelConfig& labels, Rng& rng) {
  const uint64_t n = 1ull << scale;
  LabeledGraph g = MakeVertices(static_cast<uint32_t>(n), labels, rng);
  const uint64_t target = edge_factor * n;
  std::unordered_set<uint64_t> used;
  used.reserve(target * 2);
  uint64_t attempts = 0;
  while (g.NumEdges() < target && attempts < target * 8) {
    ++attempts;
    uint64_t u = 0;
    uint64_t v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.UniformDouble();
      if (r < a) {
        // upper-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1ull << bit;
      } else if (r < a + b + c) {
        u |= 1ull << bit;
      } else {
        u |= 1ull << bit;
        v |= 1ull << bit;
      }
    }
    if (u == v) continue;
    if (!used.insert(EdgeKey(static_cast<VertexId>(u),
                             static_cast<VertexId>(v)))
             .second) {
      continue;
    }
    g.AddEdgeUnchecked(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return g;
}

LabeledGraph Grid2D(uint32_t rows, uint32_t cols, const LabelConfig& labels,
                    Rng& rng) {
  LabeledGraph g = MakeVertices(rows * cols, labels, rng);
  auto id = [cols](uint32_t r, uint32_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdgeUnchecked(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdgeUnchecked(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

LabeledGraph Ring(uint32_t n, const LabelConfig& labels, Rng& rng) {
  LabeledGraph g = MakeVertices(n, labels, rng);
  if (n < 2) return g;
  for (VertexId u = 0; u + 1 < n; ++u) g.AddEdgeUnchecked(u, u + 1);
  if (n > 2) g.AddEdgeUnchecked(n - 1, 0);
  return g;
}

LabeledGraph Complete(uint32_t n, const LabelConfig& labels, Rng& rng) {
  LabeledGraph g = MakeVertices(n, labels, rng);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.AddEdgeUnchecked(u, v);
  }
  return g;
}

LabeledGraph RandomTree(uint32_t n, const LabelConfig& labels, Rng& rng) {
  LabeledGraph g = MakeVertices(n, labels, rng);
  for (VertexId v = 1; v < n; ++v) {
    g.AddEdgeUnchecked(v, static_cast<VertexId>(rng.UniformInt(0, v - 1)));
  }
  return g;
}

std::vector<PlantedMotif> PlantMotifs(LabeledGraph* g,
                                      const LabeledGraph& motif, uint32_t count,
                                      Rng& rng, uint32_t locality_span) {
  std::vector<PlantedMotif> planted;
  const uint32_t mv_count = static_cast<uint32_t>(motif.NumVertices());
  if (mv_count == 0 || g->NumVertices() < mv_count) return planted;
  const uint32_t n = static_cast<uint32_t>(g->NumVertices());

  std::vector<bool> used(n, false);
  // Global shuffled pool for the scattered (span = 0) mode.
  std::vector<VertexId> candidates(n);
  for (VertexId v = 0; v < n; ++v) candidates[v] = v;
  rng.Shuffle(&candidates);

  const uint32_t span =
      locality_span == 0 ? 0 : std::max(locality_span, mv_count);
  size_t next = 0;
  uint32_t attempts = 0;
  for (uint32_t i = 0; i < count && attempts < 64u * count;) {
    ++attempts;
    PlantedMotif p;
    if (span == 0) {
      while (next < candidates.size() && used[candidates[next]]) ++next;
      if (next + mv_count > candidates.size()) break;
      p.embedding.assign(candidates.begin() + next,
                         candidates.begin() + next + mv_count);
      next += mv_count;
    } else {
      // Draw the instance from one window of consecutive ids.
      const VertexId start =
          static_cast<VertexId>(rng.UniformInt(0, n - span));
      std::vector<VertexId> free;
      for (VertexId v = start; v < start + span; ++v) {
        if (!used[v]) free.push_back(v);
      }
      if (free.size() < mv_count) continue;  // crowded window; redraw
      rng.Shuffle(&free);
      p.embedding.assign(free.begin(), free.begin() + mv_count);
    }
    bool clash = false;
    for (const VertexId v : p.embedding) clash = clash || used[v];
    if (clash) continue;
    for (const VertexId v : p.embedding) used[v] = true;
    ++i;
    for (VertexId mv = 0; mv < mv_count; ++mv) {
      g->SetLabel(p.embedding[mv], motif.LabelOf(mv));
    }
    motif.ForEachEdge([&](VertexId mu, VertexId mv) {
      const VertexId du = p.embedding[mu];
      const VertexId dv = p.embedding[mv];
      if (!g->HasEdge(du, dv)) g->AddEdgeUnchecked(du, dv);
    });
    planted.push_back(std::move(p));
  }
  return planted;
}

// ---------------------------------------------------------------------------
// Streaming arrival sources
// ---------------------------------------------------------------------------

ErdosRenyiArrivalSource::ErdosRenyiArrivalSource(uint32_t n, double p,
                                                const LabelConfig& labels,
                                                uint64_t seed)
    : n_(n), p_(p), labels_(labels), seed_(seed), rng_(seed) {}

void ErdosRenyiArrivalSource::Reset() {
  rng_.Seed(seed_);
  next_vertex_ = 0;
}

uint64_t ErdosRenyiArrivalSource::NumEdges() const {
  if (n_ < 2 || p_ <= 0.0) return 0;
  const double pairs = 0.5 * static_cast<double>(n_) *
                       static_cast<double>(n_ - 1);
  return static_cast<uint64_t>(std::min(p_, 1.0) * pairs);
}

bool ErdosRenyiArrivalSource::Next(ArrivalView* out) {
  if (next_vertex_ >= n_) return false;
  const VertexId v = next_vertex_++;
  out->vertex = v;
  out->label = DrawLabel(labels_, rng_);
  scratch_.clear();
  if (v > 0 && p_ > 0.0) {
    if (p_ >= 1.0) {
      for (VertexId u = 0; u < v; ++u) scratch_.push_back(u);
    } else {
      // Geometric skipping over the earlier vertices [0, v).
      const double log1mp = std::log(1.0 - p_);
      int64_t u = -1;
      for (;;) {
        const double r = 1.0 - rng_.UniformDouble();  // in (0, 1]
        u += 1 + static_cast<int64_t>(std::floor(std::log(r) / log1mp));
        if (u >= static_cast<int64_t>(v)) break;
        scratch_.push_back(static_cast<VertexId>(u));
      }
    }
  }
  out->back_edges = Span<const VertexId>(scratch_.data(), scratch_.size());
  return true;
}

BarabasiAlbertArrivalSource::BarabasiAlbertArrivalSource(
    uint32_t n, uint32_t edges_per_vertex, const LabelConfig& labels,
    uint64_t seed)
    : n_(n),
      edges_per_vertex_(edges_per_vertex),
      seed_size_(std::min(n, std::max<uint32_t>(edges_per_vertex, 2))),
      labels_(labels),
      seed_(seed),
      rng_(seed),
      fenwick_(static_cast<size_t>(n) + 1, 0) {}

void BarabasiAlbertArrivalSource::Reset() {
  rng_.Seed(seed_);
  next_vertex_ = 0;
  std::fill(fenwick_.begin(), fenwick_.end(), 0);
  total_degree_ = 0;
}

uint64_t BarabasiAlbertArrivalSource::NumEdges() const {
  uint64_t edges = seed_size_ > 0 ? seed_size_ - 1 : 0;
  for (uint64_t i = seed_size_; i < n_; ++i) {
    edges += std::min<uint64_t>(edges_per_vertex_, i);
  }
  return edges;
}

void BarabasiAlbertArrivalSource::FenwickAdd(uint32_t v, uint64_t delta) {
  for (uint32_t i = v + 1; i <= n_; i += i & (~i + 1)) fenwick_[i] += delta;
  total_degree_ += delta;
}

uint32_t BarabasiAlbertArrivalSource::FenwickFind(uint64_t r) const {
  // Binary lifting: descend the implicit tree, keeping the prefix below r.
  uint32_t pos = 0;
  uint32_t mask = 1;
  while ((mask << 1) != 0 && (mask << 1) <= n_) mask <<= 1;
  for (; mask != 0; mask >>= 1) {
    const uint32_t probe = pos + mask;
    if (probe <= n_ && fenwick_[probe] < r) {
      pos = probe;
      r -= fenwick_[probe];
    }
  }
  return pos;  // zero-based vertex id
}

bool BarabasiAlbertArrivalSource::Next(ArrivalView* out) {
  if (next_vertex_ >= n_) return false;
  const VertexId v = next_vertex_++;
  out->vertex = v;
  out->label = DrawLabel(labels_, rng_);
  scratch_.clear();
  if (v > 0 && v < seed_size_) {
    // Chain seed, mirroring BarabasiAlbert's connected start.
    scratch_.push_back(v - 1);
  } else if (v >= seed_size_) {
    const uint32_t want = std::min(edges_per_vertex_, v);
    size_t attempts = 0;
    while (scratch_.size() < want && attempts < 64u * want) {
      ++attempts;
      const VertexId t =
          total_degree_ == 0
              ? static_cast<VertexId>(rng_.UniformInt(0, v - 1))
              : FenwickFind(rng_.UniformInt(1, total_degree_));
      if (t == v) continue;
      if (std::find(scratch_.begin(), scratch_.end(), t) != scratch_.end()) {
        continue;
      }
      scratch_.push_back(t);
    }
  }
  for (const VertexId t : scratch_) FenwickAdd(t, 1);
  FenwickAdd(v, scratch_.size());
  out->back_edges = Span<const VertexId>(scratch_.data(), scratch_.size());
  return true;
}

}  // namespace loom
