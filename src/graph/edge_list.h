#ifndef LOOM_GRAPH_EDGE_LIST_H_
#define LOOM_GRAPH_EDGE_LIST_H_

/// \file
/// SNAP-style edge-list ingestion ("u v" per line), shared by loom_convert
/// and the corruption tests. The parser is deliberately strict about what
/// it *rejects* (malformed tokens, negative or overflowing ids — never a
/// crash, never a silently wrong graph) and explicit about what it
/// *normalises* (self-loops and duplicate edges dropped with counts,
/// trailing columns such as SNAP timestamps ignored, '#'/'%' comment and
/// blank lines skipped). Vertex ids are remapped to dense first-appearance
/// order, so dense id order IS the file's own temporal order.

#include <cstdint>
#include <string>

#include "common/result.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace loom {

struct EdgeListOptions {
  /// Labels are drawn uniformly from [0, num_labels) with this seed (edge
  /// lists carry no label column).
  uint32_t num_labels = 1;
  uint64_t seed = 42;
};

/// What ingestion normalised away, for "dropped N self-loops" reporting.
struct EdgeListStats {
  uint64_t self_loops = 0;
  uint64_t duplicate_edges = 0;
};

/// Parses the edge list at `path` into a dense-id LabeledGraph. Errors
/// with InvalidArgument (naming the line) on unreadable files, lines with
/// fewer than two tokens, non-numeric or negative ids, and ids past
/// uint64; drops self-loops and duplicate edges into `stats` (which may be
/// nullptr).
Result<LabeledGraph> LoadEdgeListGraph(const std::string& path,
                                       const EdgeListOptions& options,
                                       EdgeListStats* stats);

}  // namespace loom

#endif  // LOOM_GRAPH_EDGE_LIST_H_
