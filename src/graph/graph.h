#ifndef LOOM_GRAPH_GRAPH_H_
#define LOOM_GRAPH_GRAPH_H_

/// \file
/// The labelled graph G = (V, E, L_V, f_l) of the paper's §2: undirected,
/// vertex-labelled, dynamic (vertices and edges may be appended at any time,
/// matching the streaming setting).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace loom {

/// Dense vertex identifier; assigned contiguously from 0.
using VertexId = uint32_t;

/// Vertex label (the paper's L_V); dense small integers.
using Label = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

/// An undirected edge, stored with `u <= v` when normalized.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  /// Returns the edge with endpoints ordered ascending.
  Edge Normalized() const { return u <= v ? Edge{u, v} : Edge{v, u}; }

  bool operator==(const Edge& other) const {
    return u == other.u && v == other.v;
  }
};

/// An undirected, vertex-labelled multigraph-free graph.
///
/// Storage is adjacency lists indexed by dense `VertexId`; neighbour lists
/// are unsorted (insertion order) and `HasEdge` is O(min degree). Vertices
/// are append-only; edges are append-only; self-loops and parallel edges are
/// rejected. This is the shared substrate for data graphs, query graphs and
/// motifs alike.
class LabeledGraph {
 public:
  LabeledGraph() = default;

  /// Adds a vertex with the given label; returns its id (dense, increasing).
  VertexId AddVertex(Label label);

  /// Adds the undirected edge {u, v}.
  /// Fails with InvalidArgument on self-loops or unknown endpoints and with
  /// AlreadyExists on duplicates.
  Status AddEdge(VertexId u, VertexId v);

  /// Adds {u, v} asserting validity; convenient for fixtures/generators.
  void AddEdgeUnchecked(VertexId u, VertexId v);

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// The label of vertex `v`.
  Label LabelOf(VertexId v) const { return labels_[v]; }

  /// Overwrites the label of `v` (used by motif planting and fixtures).
  void SetLabel(VertexId v, Label label);

  /// Degree of `v`.
  size_t Degree(VertexId v) const { return adjacency_[v].size(); }

  /// Neighbours of `v` in insertion order.
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    return adjacency_[v];
  }

  /// True iff the undirected edge {u, v} is present. O(min degree).
  bool HasEdge(VertexId u, VertexId v) const;

  /// True iff `v` is a valid vertex id.
  bool HasVertex(VertexId v) const { return v < labels_.size(); }

  /// Number of distinct labels used (max label + 1; 0 when empty).
  size_t NumLabels() const { return num_labels_; }

  /// Calls `fn(u, v)` once per undirected edge, with u < v.
  void ForEachEdge(const std::function<void(VertexId, VertexId)>& fn) const;

  /// All edges, normalized (u < v), in adjacency order.
  std::vector<Edge> Edges() const;

  /// Sum of degrees == 2 * NumEdges (cheap self-check used by tests).
  size_t DegreeSum() const;

  /// Multiline diagnostic dump (small graphs only).
  std::string ToString() const;

 private:
  std::vector<Label> labels_;
  std::vector<std::vector<VertexId>> adjacency_;
  size_t num_edges_ = 0;
  size_t num_labels_ = 0;
};

/// The sub-graph of `g` induced by `vertices`.
///
/// Vertex i of the result corresponds to `vertices[i]`; labels are copied and
/// every edge of `g` with both endpoints in `vertices` is kept.
LabeledGraph InducedSubgraph(const LabeledGraph& g,
                             const std::vector<VertexId>& vertices);

/// The sub-graph of `g` consisting of exactly `edges` (plus their endpoints).
///
/// Unlike `InducedSubgraph` this keeps only the listed edges — the paper's
/// TPSTry++ nodes are edge-grown sub-graphs, not induced ones. `out_vertex_map`
/// (optional) receives, for each result vertex, the originating vertex of `g`.
LabeledGraph EdgeSubgraph(const LabeledGraph& g, const std::vector<Edge>& edges,
                          std::vector<VertexId>* out_vertex_map = nullptr);

/// True iff the graph is connected (empty graphs count as connected).
bool IsConnected(const LabeledGraph& g);

}  // namespace loom

#endif  // LOOM_GRAPH_GRAPH_H_
