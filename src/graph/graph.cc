#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>

namespace loom {

VertexId LabeledGraph::AddVertex(Label label) {
  const VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(label);
  adjacency_.emplace_back();
  num_labels_ = std::max(num_labels_, static_cast<size_t>(label) + 1);
  return id;
}

Status LabeledGraph::AddEdge(VertexId u, VertexId v) {
  if (!HasVertex(u) || !HasVertex(v)) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not allowed");
  if (HasEdge(u, v)) return Status::AlreadyExists("duplicate edge");
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return Status::OK();
}

void LabeledGraph::AddEdgeUnchecked(VertexId u, VertexId v) {
  const Status s = AddEdge(u, v);
  assert(s.ok());
  (void)s;
}

void LabeledGraph::SetLabel(VertexId v, Label label) {
  assert(HasVertex(v));
  labels_[v] = label;
  num_labels_ = std::max(num_labels_, static_cast<size_t>(label) + 1);
}

bool LabeledGraph::HasEdge(VertexId u, VertexId v) const {
  if (!HasVertex(u) || !HasVertex(v)) return false;
  const auto& a = adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                               : adjacency_[v];
  const VertexId needle = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), needle) != a.end();
}

void LabeledGraph::ForEachEdge(
    const std::function<void(VertexId, VertexId)>& fn) const {
  for (VertexId u = 0; u < labels_.size(); ++u) {
    for (const VertexId v : adjacency_[u]) {
      if (u < v) fn(u, v);
    }
  }
}

std::vector<Edge> LabeledGraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  ForEachEdge([&](VertexId u, VertexId v) { out.push_back(Edge{u, v}); });
  return out;
}

size_t LabeledGraph::DegreeSum() const {
  size_t sum = 0;
  for (const auto& a : adjacency_) sum += a.size();
  return sum;
}

std::string LabeledGraph::ToString() const {
  std::string out = "graph(n=" + std::to_string(NumVertices()) +
                    ", m=" + std::to_string(NumEdges()) + ")\n";
  for (VertexId v = 0; v < labels_.size(); ++v) {
    out += "  " + std::to_string(v) + ":" + std::to_string(labels_[v]) + " ->";
    for (const VertexId w : adjacency_[v]) out += " " + std::to_string(w);
    out += "\n";
  }
  return out;
}

LabeledGraph InducedSubgraph(const LabeledGraph& g,
                             const std::vector<VertexId>& vertices) {
  LabeledGraph sub;
  std::unordered_map<VertexId, VertexId> to_sub;
  to_sub.reserve(vertices.size());
  for (const VertexId v : vertices) {
    to_sub.emplace(v, sub.AddVertex(g.LabelOf(v)));
  }
  for (const VertexId v : vertices) {
    for (const VertexId w : g.Neighbors(v)) {
      if (v < w) {
        const auto it = to_sub.find(w);
        if (it != to_sub.end()) sub.AddEdgeUnchecked(to_sub.at(v), it->second);
      }
    }
  }
  return sub;
}

LabeledGraph EdgeSubgraph(const LabeledGraph& g, const std::vector<Edge>& edges,
                          std::vector<VertexId>* out_vertex_map) {
  LabeledGraph sub;
  std::unordered_map<VertexId, VertexId> to_sub;
  std::vector<VertexId> vertex_map;
  auto intern = [&](VertexId v) {
    const auto it = to_sub.find(v);
    if (it != to_sub.end()) return it->second;
    const VertexId id = sub.AddVertex(g.LabelOf(v));
    to_sub.emplace(v, id);
    vertex_map.push_back(v);
    return id;
  };
  for (const Edge& e : edges) {
    const VertexId su = intern(e.u);
    const VertexId sv = intern(e.v);
    sub.AddEdgeUnchecked(su, sv);
  }
  if (out_vertex_map != nullptr) *out_vertex_map = std::move(vertex_map);
  return sub;
}

bool IsConnected(const LabeledGraph& g) {
  if (g.NumVertices() == 0) return true;
  std::vector<bool> seen(g.NumVertices(), false);
  std::deque<VertexId> queue = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const VertexId w : g.Neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        queue.push_back(w);
      }
    }
  }
  return visited == g.NumVertices();
}

}  // namespace loom
