#ifndef LOOM_GRAPH_GENERATORS_H_
#define LOOM_GRAPH_GENERATORS_H_

/// \file
/// Synthetic graph generators used by tests, examples and the experiment
/// harness. The paper evaluates on "web hyperlinks, social network users,
/// protein interaction networks" — all power-law-ish; Barabási–Albert and
/// R-MAT stand in for those, Erdős–Rényi / Watts–Strogatz / grids provide
/// contrast, and `PlantMotifs` creates graphs with a controlled density of
/// workload motifs (the structures LOOM exists to keep intact).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "stream/arrival_source.h"

namespace loom {

/// How vertex labels are drawn.
struct LabelConfig {
  /// Number of distinct labels (>= 1).
  uint32_t num_labels = 4;
  /// Zipf skew across labels; 0 = uniform.
  double zipf_skew = 0.0;
};

/// Draws a label according to `config`.
Label DrawLabel(const LabelConfig& config, Rng& rng);

/// Erdős–Rényi G(n, p): each of the n(n-1)/2 edges present independently
/// with probability p. Uses geometric skipping, O(n + m).
LabeledGraph ErdosRenyiGnp(uint32_t n, double p, const LabelConfig& labels,
                           Rng& rng);

/// Erdős–Rényi G(n, m): exactly m distinct uniform edges.
LabeledGraph ErdosRenyiGnm(uint32_t n, uint64_t m, const LabelConfig& labels,
                           Rng& rng);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices chosen
/// proportionally to degree. Vertex ids are in arrival order, so id order is
/// the natural "stochastic" stream ordering (§3.1).
LabeledGraph BarabasiAlbert(uint32_t n, uint32_t edges_per_vertex,
                            const LabelConfig& labels, Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k_nearest` neighbours per
/// side, each edge rewired with probability `beta`.
LabeledGraph WattsStrogatz(uint32_t n, uint32_t k_nearest, double beta,
                           const LabelConfig& labels, Rng& rng);

/// R-MAT / Kronecker-style power-law generator: 2^scale vertices,
/// `edge_factor * 2^scale` sampled edges (duplicates and self-loops dropped),
/// with quadrant probabilities (a, b, c, implicit d).
LabeledGraph RMat(uint32_t scale, uint32_t edge_factor, double a, double b,
                  double c, const LabelConfig& labels, Rng& rng);

/// rows x cols 2D grid (4-neighbourhood).
LabeledGraph Grid2D(uint32_t rows, uint32_t cols, const LabelConfig& labels,
                    Rng& rng);

/// Simple ring over n vertices.
LabeledGraph Ring(uint32_t n, const LabelConfig& labels, Rng& rng);

/// Complete graph K_n.
LabeledGraph Complete(uint32_t n, const LabelConfig& labels, Rng& rng);

/// Random tree: vertex i attaches to a uniform earlier vertex.
LabeledGraph RandomTree(uint32_t n, const LabelConfig& labels, Rng& rng);

/// Streaming Erdős–Rényi G(n, p) arrival source: yields vertex v with each
/// back edge to [0, v) present independently with probability p, via
/// geometric skipping — O(1) state beyond the scratch neighbour buffer, so
/// arbitrarily large streams never materialise a graph. Arrivals are in
/// natural (id) order; `Reset()` re-seeds and reproduces the identical
/// sequence. `NumEdges()` reports the expectation `p·n(n-1)/2` (generators
/// only know their edge count once drained; the hint sizes Fennel's alpha).
class ErdosRenyiArrivalSource : public ArrivalSource {
 public:
  ErdosRenyiArrivalSource(uint32_t n, double p, const LabelConfig& labels,
                          uint64_t seed);

  bool Next(ArrivalView* out) override;
  void Reset() override;
  uint64_t NumVertices() const override { return n_; }
  uint64_t NumEdges() const override;

 private:
  uint32_t n_;
  double p_;
  LabelConfig labels_;
  uint64_t seed_;
  Rng rng_;
  uint32_t next_vertex_ = 0;
  std::vector<VertexId> scratch_;
};

/// Streaming Barabási–Albert arrival source: the first min(n, max(m, 2))
/// vertices form a chain seed, then each arriving vertex attaches to up to
/// `edges_per_vertex` distinct earlier vertices drawn proportionally to
/// their current degree. Degree-proportional sampling runs over a Fenwick
/// tree of degrees — O(n) state and O(log n) per draw instead of the
/// materialised generator's O(E) endpoint pool. Same process as
/// `BarabasiAlbert`, but an independent random sequence: the two are
/// distribution-equal, not sample-equal. `Reset()` reproduces the identical
/// stream; `NumEdges()` is the attachment-count upper bound (draws that
/// exhaust their attempt budget fall short, which is rare).
class BarabasiAlbertArrivalSource : public ArrivalSource {
 public:
  BarabasiAlbertArrivalSource(uint32_t n, uint32_t edges_per_vertex,
                              const LabelConfig& labels, uint64_t seed);

  bool Next(ArrivalView* out) override;
  void Reset() override;
  uint64_t NumVertices() const override { return n_; }
  uint64_t NumEdges() const override;

 private:
  /// Adds `delta` to vertex `v`'s degree weight.
  void FenwickAdd(uint32_t v, uint64_t delta);
  /// Smallest vertex whose cumulative degree weight reaches `r` (1-based
  /// target in [1, total_degree_]); only vertices with non-zero degree can
  /// be returned, so a not-yet-attached arrival is never drawn.
  uint32_t FenwickFind(uint64_t r) const;

  uint32_t n_;
  uint32_t edges_per_vertex_;
  uint32_t seed_size_;
  LabelConfig labels_;
  uint64_t seed_;
  Rng rng_;
  uint32_t next_vertex_ = 0;
  /// One-based Fenwick array over per-vertex degrees.
  std::vector<uint64_t> fenwick_;
  uint64_t total_degree_ = 0;
  std::vector<VertexId> scratch_;
};

/// One planted occurrence of `motif` in `g`.
struct PlantedMotif {
  /// For each motif vertex, the data-graph vertex realising it.
  std::vector<VertexId> embedding;
};

/// Plants `count` vertex-disjoint copies of `motif` into `g`: picks unused
/// vertices, overwrites their labels to match, and inserts the motif's edges
/// (existing extra edges are left in place; embeddings stay valid because
/// pattern matching is non-induced). Returns the embeddings actually planted
/// (fewer than `count` if `g` runs out of vertices).
///
/// `locality_span` controls temporal locality: 0 scatters instances over the
/// whole id range; a positive value draws each instance's vertices from a
/// random window of that many consecutive ids. Since generative models assign
/// ids in arrival order, id-local instances are *temporally* local in natural
/// or stochastic stream orderings — the regime the paper targets (motifs
/// created together, e.g. a fraud ring's transactions or a new user joining
/// their friends, fit inside LOOM's stream window).
std::vector<PlantedMotif> PlantMotifs(LabeledGraph* g,
                                      const LabeledGraph& motif, uint32_t count,
                                      Rng& rng, uint32_t locality_span = 0);

}  // namespace loom

#endif  // LOOM_GRAPH_GENERATORS_H_
