#include "graph/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace loom {

Status SaveGraph(const LabeledGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "loom-graph 1\n";
  out << "n " << g.NumVertices() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "l " << v << " " << g.LabelOf(v) << "\n";
  }
  g.ForEachEdge([&](VertexId u, VertexId v) {
    out << "e " << u << " " << v << "\n";
  });
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<LabeledGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::string line;
  if (!std::getline(in, line) || line.rfind("loom-graph", 0) != 0) {
    return Status::InvalidArgument("missing loom-graph header: " + path);
  }

  LabeledGraph g;
  size_t declared_n = 0;
  bool vertices_made = false;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    char kind = 0;
    ss >> kind;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + why);
    };
    if (kind == 'n') {
      if (!(ss >> declared_n)) return fail("bad vertex count");
      for (size_t i = 0; i < declared_n; ++i) g.AddVertex(0);
      vertices_made = true;
    } else if (kind == 'l') {
      VertexId v = 0;
      Label l = 0;
      if (!(ss >> v >> l)) return fail("bad label line");
      if (!vertices_made || !g.HasVertex(v)) return fail("label before n");
      g.SetLabel(v, l);
    } else if (kind == 'e') {
      VertexId u = 0;
      VertexId v = 0;
      if (!(ss >> u >> v)) return fail("bad edge line");
      const Status s = g.AddEdge(u, v);
      if (!s.ok()) return fail("edge rejected: " + s.ToString());
    } else {
      return fail("unknown record kind");
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// loom-stream: binary on-disk arrival streams
// ---------------------------------------------------------------------------

namespace {

// The format is little-endian; on an LE host in-memory structs match the
// on-disk bytes exactly and the reader is zero-copy. BE hosts are rejected
// at Open/Create (no silent byte-swapped files).
constexpr bool HostIsLittleEndian() {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
  return false;
#endif
}

// On-disk header, 64 bytes. Field order and widths are frozen for version 1;
// see docs/FORMATS.md before changing anything.
struct StreamFileHeader {
  uint64_t magic = kStreamFileMagic;
  uint32_t version = kStreamFileVersion;
  uint32_t flags = 0;
  uint64_t num_vertices = 0;
  uint64_t id_bound = 0;
  uint64_t num_edges = 0;
  uint64_t edge_slots = 0;
  uint64_t reserved[2] = {0, 0};
};
static_assert(sizeof(StreamFileHeader) == kStreamFileHeaderBytes,
              "frozen on-disk header size");

constexpr uint32_t kFlagFullNeighborhoods = 1u << 0;
constexpr uint32_t kKnownFlags = kFlagFullNeighborhoods;

// On-disk arrival directory record, 24 bytes.
struct StreamFileRecord {
  uint32_t vertex = 0;
  uint32_t label = 0;
  uint32_t back_degree = 0;
  uint32_t full_degree = 0;
  uint64_t edge_offset = 0;
};
static_assert(sizeof(StreamFileRecord) == kStreamFileRecordBytes,
              "frozen on-disk record size");

constexpr uint32_t kUnseen = ~uint32_t{0};

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + ": " + path + ": " + std::strerror(errno);
}

}  // namespace

// ----- StreamFileWriter -----

StreamFileWriter::StreamFileWriter(std::string path,
                                   const StreamFileOptions& options)
    : path_(std::move(path)), options_(options) {
  info_.has_full_neighborhoods = options_.full_neighborhoods;
}

Result<std::unique_ptr<StreamFileWriter>> StreamFileWriter::Create(
    const std::string& path, const StreamFileOptions& options) {
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "loom-stream files are little-endian; big-endian hosts unsupported");
  }
  std::unique_ptr<StreamFileWriter> w(new StreamFileWriter(path, options));
  w->log_ = std::fopen((path + ".log").c_str(), "wb");
  if (w->log_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create temp log", path));
  }
  return w;
}

StreamFileWriter::~StreamFileWriter() {
  if (log_ != nullptr) std::fclose(log_);
  if (!finished_) {
    // Abandoned writer: leave no partial outputs behind.
    std::remove((path_ + ".log").c_str());
    std::remove((path_ + ".tmp").c_str());
  }
}

Status StreamFileWriter::WriteLog(const void* data, size_t bytes) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, log_) != bytes) {
    failed_ = true;
    return Status::IOError(ErrnoMessage("temp log write failed", path_));
  }
  return Status::OK();
}

Status StreamFileWriter::Append(VertexId vertex, Label label,
                                Span<const VertexId> back_edges) {
  if (failed_ || finished_) {
    return Status::FailedPrecondition("Append on a failed/finished writer");
  }
  if (vertex == kInvalidVertex) {
    return Status::InvalidArgument("arrival with invalid vertex id");
  }
  if (vertex >= arrival_index_of_.size()) {
    arrival_index_of_.resize(vertex + 1, kUnseen);
    forward_degree_of_.resize(vertex + 1, 0);
  }
  if (arrival_index_of_[vertex] != kUnseen) {
    failed_ = true;
    return Status::InvalidArgument("vertex arrives twice: " +
                                   std::to_string(vertex));
  }
  // Stream invariants: back edges point at distinct earlier arrivals.
  dedup_scratch_.assign(back_edges.begin(), back_edges.end());
  std::sort(dedup_scratch_.begin(), dedup_scratch_.end());
  for (size_t i = 0; i < dedup_scratch_.size(); ++i) {
    const VertexId w = dedup_scratch_[i];
    const bool seen =
        w < arrival_index_of_.size() && arrival_index_of_[w] != kUnseen;
    if (w == vertex || !seen) {
      failed_ = true;
      return Status::InvalidArgument(
          "back edge to non-earlier vertex: " + std::to_string(vertex) +
          " -> " + std::to_string(w));
    }
    if (i > 0 && dedup_scratch_[i - 1] == w) {
      failed_ = true;
      return Status::InvalidArgument("duplicate edge: " +
                                     std::to_string(vertex) + " -> " +
                                     std::to_string(w));
    }
  }
  for (const VertexId w : back_edges) ++forward_degree_of_[w];

  const uint32_t record[3] = {vertex, label,
                              static_cast<uint32_t>(back_edges.size())};
  LOOM_RETURN_IF_ERROR(WriteLog(record, sizeof(record)));
  LOOM_RETURN_IF_ERROR(
      WriteLog(back_edges.data(), back_edges.size() * sizeof(VertexId)));

  arrival_index_of_[vertex] = static_cast<uint32_t>(vertex_by_index_.size());
  vertex_by_index_.push_back(vertex);
  back_degree_by_index_.push_back(static_cast<uint32_t>(back_edges.size()));
  info_.num_edges += back_edges.size();
  return Status::OK();
}

Status StreamFileWriter::AppendAll(ArrivalSource& source) {
  ArrivalView view;
  while (source.Next(&view)) {
    LOOM_RETURN_IF_ERROR(Append(view.vertex, view.label, view.back_edges));
  }
  return Status::OK();
}

Status StreamFileWriter::Finish() {
  const Status s = FinishImpl();
  if (!s.ok()) {
    failed_ = true;
    std::remove((path_ + ".tmp").c_str());
  }
  finished_ = true;  // either way, the temp log is gone and Append is over
  return s;
}

Status StreamFileWriter::FinishImpl() {
  if (failed_ || finished_) {
    return Status::FailedPrecondition("Finish on a failed/finished writer");
  }
  if (std::fflush(log_) != 0) {
    return Status::IOError(ErrnoMessage("temp log flush failed", path_));
  }
  std::fclose(log_);
  log_ = nullptr;

  const uint64_t num_vertices = vertex_by_index_.size();
  const bool full = options_.full_neighborhoods;

  // Edge-slot offsets per arrival (prefix sums of the stored degree).
  std::vector<uint64_t> offset_by_index(num_vertices + 1, 0);
  for (uint64_t i = 0; i < num_vertices; ++i) {
    uint64_t degree = back_degree_by_index_[i];
    if (full) degree += forward_degree_of_[vertex_by_index_[i]];
    offset_by_index[i + 1] = offset_by_index[i] + degree;
  }
  const uint64_t edge_slots = offset_by_index[num_vertices];

  StreamFileHeader header;
  header.flags = full ? kFlagFullNeighborhoods : 0;
  header.num_vertices = num_vertices;
  header.id_bound = arrival_index_of_.size();
  header.num_edges = info_.num_edges;
  header.edge_slots = edge_slots;

  const std::string tmp_path = path_ + ".tmp";
  const std::string log_path = path_ + ".log";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create", tmp_path));
  }
  auto fail = [&](const std::string& what) {
    const Status s = Status::IOError(ErrnoMessage(what, tmp_path));
    std::fclose(out);
    return s;
  };
  if (std::fwrite(&header, 1, sizeof(header), out) != sizeof(header)) {
    return fail("header write failed");
  }

  // Directory pass: one sequential sweep of the log emits the fixed records
  // (labels live only in the log, so this is where they surface).
  std::FILE* log = std::fopen(log_path.c_str(), "rb");
  if (log == nullptr) return fail("cannot reopen temp log");
  auto read_log = [&](void* dst, size_t bytes) {
    return std::fread(dst, 1, bytes, log) == bytes;
  };
  std::vector<VertexId> edge_scratch;
  for (uint64_t i = 0; i < num_vertices; ++i) {
    uint32_t head[3];
    if (!read_log(head, sizeof(head))) {
      std::fclose(log);
      return fail("temp log truncated");
    }
    if (std::fseek(log, static_cast<long>(head[2] * sizeof(VertexId)),
                   SEEK_CUR) != 0) {
      std::fclose(log);
      return fail("temp log seek failed");
    }
    StreamFileRecord record;
    record.vertex = head[0];
    record.label = head[1];
    record.back_degree = head[2];
    record.full_degree =
        static_cast<uint32_t>(offset_by_index[i + 1] - offset_by_index[i]);
    record.edge_offset = offset_by_index[i];
    if (std::fwrite(&record, 1, sizeof(record), out) != sizeof(record)) {
      std::fclose(log);
      return fail("directory write failed");
    }
  }

  // Edge-array fill in bounded-buffer chunks: each chunk covers a contiguous
  // arrival-index range whose edge slots fit the buffer; one sequential log
  // sweep per chunk copies back edges into place and scatters this range's
  // forward neighbours. Memory stays O(V + buffer) regardless of E.
  const uint64_t buffer_slots =
      std::max<uint64_t>(1024, options_.fill_buffer_bytes / sizeof(VertexId));
  const uint64_t edge_array_base =
      kStreamFileHeaderBytes + num_vertices * kStreamFileRecordBytes;
  std::vector<VertexId> buffer;
  std::vector<uint32_t> fill_pos;
  uint64_t chunk_begin = 0;
  while (chunk_begin < num_vertices) {
    uint64_t chunk_end = chunk_begin;
    while (chunk_end < num_vertices &&
           offset_by_index[chunk_end + 1] - offset_by_index[chunk_begin] <=
               buffer_slots) {
      ++chunk_end;
    }
    if (chunk_end == chunk_begin) ++chunk_end;  // one oversized arrival
    const uint64_t base_slot = offset_by_index[chunk_begin];
    const uint64_t chunk_slots = offset_by_index[chunk_end] - base_slot;
    buffer.assign(chunk_slots, 0);
    fill_pos.assign(chunk_end - chunk_begin, 0);
    for (uint64_t i = chunk_begin; i < chunk_end; ++i) {
      fill_pos[i - chunk_begin] = back_degree_by_index_[i];
    }
    if (std::fseek(log, 0, SEEK_SET) != 0) {
      std::fclose(log);
      return fail("temp log rewind failed");
    }
    for (uint64_t i = 0; i < num_vertices; ++i) {
      uint32_t head[3];
      if (!read_log(head, sizeof(head))) {
        std::fclose(log);
        return fail("temp log truncated");
      }
      edge_scratch.resize(head[2]);
      if (!read_log(edge_scratch.data(), head[2] * sizeof(VertexId))) {
        std::fclose(log);
        return fail("temp log truncated");
      }
      if (i >= chunk_begin && i < chunk_end) {
        std::copy(edge_scratch.begin(), edge_scratch.end(),
                  buffer.begin() + (offset_by_index[i] - base_slot));
      }
      if (!full) continue;
      for (const VertexId w : edge_scratch) {
        const uint32_t j = arrival_index_of_[w];
        if (j < chunk_begin || j >= chunk_end) continue;
        const uint64_t slot =
            offset_by_index[j] - base_slot + fill_pos[j - chunk_begin]++;
        buffer[slot] = head[0];
      }
    }
    if (std::fseek(out,
                   static_cast<long>(edge_array_base +
                                     base_slot * sizeof(VertexId)),
                   SEEK_SET) != 0) {
      std::fclose(log);
      return fail("output seek failed");
    }
    if (chunk_slots != 0 &&
        std::fwrite(buffer.data(), sizeof(VertexId), chunk_slots, out) !=
            chunk_slots) {
      std::fclose(log);
      return fail("edge array write failed");
    }
    chunk_begin = chunk_end;
  }
  std::fclose(log);
  std::remove(log_path.c_str());
  if (std::fflush(out) != 0 || std::fclose(out) != 0) {
    return Status::IOError(ErrnoMessage("finalize failed", tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename failed", path_));
  }

  info_.version = kStreamFileVersion;
  info_.num_vertices = num_vertices;
  info_.id_bound = header.id_bound;
  info_.file_bytes = edge_array_base + edge_slots * sizeof(VertexId);
  return Status::OK();
}

Status WriteStreamFile(const GraphStream& stream, const std::string& path,
                       const StreamFileOptions& options) {
  std::unique_ptr<StreamFileWriter> writer;
  LOOM_ASSIGN_OR_RETURN(writer, StreamFileWriter::Create(path, options));
  StreamCursor cursor(stream);
  LOOM_RETURN_IF_ERROR(writer->AppendAll(cursor));
  return writer->Finish();
}

// ----- FileArrivalSource -----

Result<std::unique_ptr<FileArrivalSource>> FileArrivalSource::Open(
    const std::string& path, const OpenOptions& options) {
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "loom-stream files are little-endian; big-endian hosts unsupported");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IOError(ErrnoMessage("fstat failed", path));
    ::close(fd);
    return s;
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  auto reject = [&](const std::string& why) {
    ::close(fd);
    return Status::InvalidArgument("not a loom-stream file: " + path + ": " +
                                   why);
  };
  if (file_bytes < kStreamFileHeaderBytes) return reject("truncated header");

  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("mmap failed", path));
  }
  const unsigned char* bytes = static_cast<const unsigned char*>(map);

  StreamFileHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  auto reject_mapped = [&](const std::string& why) {
    ::munmap(map, file_bytes);
    return reject(why);
  };
  if (header.magic != kStreamFileMagic) return reject_mapped("bad magic");
  if (header.version != kStreamFileVersion) {
    return reject_mapped("unsupported version " +
                         std::to_string(header.version));
  }
  if ((header.flags & ~kKnownFlags) != 0) return reject_mapped("unknown flags");
  const bool full = (header.flags & kFlagFullNeighborhoods) != 0;
  const uint64_t expected_slots =
      full ? 2 * header.num_edges : header.num_edges;
  if (header.edge_slots != expected_slots) {
    return reject_mapped("edge-slot count inconsistent with edge count");
  }
  if (header.id_bound > (uint64_t{1} << 32) ||
      header.num_vertices > header.id_bound) {
    return reject_mapped("implausible vertex counts");
  }
  const uint64_t expected_bytes = kStreamFileHeaderBytes +
                                  header.num_vertices * kStreamFileRecordBytes +
                                  header.edge_slots * sizeof(VertexId);
  if (file_bytes != expected_bytes) {
    return reject_mapped("file size inconsistent with header");
  }
  if (options.view == View::kFullNeighborhoods && !full) {
    ::munmap(map, file_bytes);
    return Status::FailedPrecondition(
        "file lacks full neighbourhoods; rewrite with full_neighborhoods");
  }

  // Directory validation: exact prefix-sum offsets and in-bound degrees.
  // After this sweep every At()/Next() access is provably in bounds.
  const unsigned char* directory = bytes + kStreamFileHeaderBytes;
  const uint32_t* edge_slots_base = reinterpret_cast<const uint32_t*>(
      directory + header.num_vertices * kStreamFileRecordBytes);
  uint64_t running_offset = 0;
  uint64_t back_edge_total = 0;
  for (uint64_t i = 0; i < header.num_vertices; ++i) {
    StreamFileRecord record;
    std::memcpy(&record, directory + i * kStreamFileRecordBytes,
                sizeof(record));
    if (record.vertex >= header.id_bound) {
      return reject_mapped("vertex id outside id bound");
    }
    if (record.back_degree > record.full_degree) {
      return reject_mapped("back degree exceeds full degree");
    }
    if (!full && record.back_degree != record.full_degree) {
      return reject_mapped("forward edges in a back-edge-only file");
    }
    if (record.edge_offset != running_offset) {
      return reject_mapped("edge offsets are not a prefix sum");
    }
    // Edge-value validation: every slot must name a real vertex (an
    // out-of-range id would make consumers size their tables off corrupt
    // data) and never the record's own vertex (self-loop).
    for (uint32_t j = 0; j < record.full_degree; ++j) {
      const uint32_t endpoint = edge_slots_base[record.edge_offset + j];
      if (endpoint >= header.id_bound) {
        return reject_mapped("edge endpoint outside id bound");
      }
      if (endpoint == record.vertex) {
        return reject_mapped("self-loop edge record");
      }
    }
    running_offset += record.full_degree;
    back_edge_total += record.back_degree;
  }
  if (running_offset != header.edge_slots) {
    return reject_mapped("degrees inconsistent with edge-slot count");
  }
  if (back_edge_total != header.num_edges) {
    return reject_mapped("back degrees inconsistent with edge count");
  }

  // The validation sweep faulted the whole file in; start cold when the
  // caller asked for bounded residency, so the sweep itself cannot blow
  // the budget's RSS contract.
  if (options.residency_budget_bytes != 0) {
    ::madvise(map, file_bytes, MADV_DONTNEED);
  }

  std::unique_ptr<FileArrivalSource> source(new FileArrivalSource());
  source->info_.version = header.version;
  source->info_.has_full_neighborhoods = full;
  source->info_.num_vertices = header.num_vertices;
  source->info_.id_bound = header.id_bound;
  source->info_.num_edges = header.num_edges;
  source->info_.file_bytes = file_bytes;
  source->options_ = options;
  source->map_ = bytes;
  source->map_bytes_ = file_bytes;
  source->directory_ = directory;
  source->edges_ = reinterpret_cast<const uint32_t*>(
      directory + header.num_vertices * kStreamFileRecordBytes);
  return source;
}

FileArrivalSource::~FileArrivalSource() {
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
  }
}

void FileArrivalSource::NoteTouched(size_t bytes) const {
  if (options_.residency_budget_bytes == 0) return;
  touched_bytes_ += bytes;
  if (touched_bytes_ < options_.residency_budget_bytes) return;
  // Drop the whole mapping's resident pages; the clean file-backed pages
  // re-fault from the page cache (or disk) on the next touch.
  ::madvise(const_cast<unsigned char*>(map_), map_bytes_, MADV_DONTNEED);
  touched_bytes_ = 0;
}

FileArrivalSource::Record FileArrivalSource::At(uint64_t index) const {
  StreamFileRecord record;
  std::memcpy(&record, directory_ + index * kStreamFileRecordBytes,
              sizeof(record));
  Record out;
  out.vertex = record.vertex;
  out.label = record.label;
  const uint32_t* slice = edges_ + record.edge_offset;
  out.back_edges = Span<const VertexId>(slice, record.back_degree);
  out.full_edges = Span<const VertexId>(slice, record.full_degree);
  NoteTouched(kStreamFileRecordBytes + record.full_degree * sizeof(VertexId));
  return out;
}

bool FileArrivalSource::Next(ArrivalView* out) {
  if (pos_ >= info_.num_vertices) return false;
  const Record record = At(pos_++);
  out->vertex = record.vertex;
  out->label = record.label;
  out->back_edges = options_.view == View::kFullNeighborhoods
                        ? record.full_edges
                        : record.back_edges;
  return true;
}

}  // namespace loom
