#include "graph/io.h"

#include <fstream>
#include <sstream>

namespace loom {

Status SaveGraph(const LabeledGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "loom-graph 1\n";
  out << "n " << g.NumVertices() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "l " << v << " " << g.LabelOf(v) << "\n";
  }
  g.ForEachEdge([&](VertexId u, VertexId v) {
    out << "e " << u << " " << v << "\n";
  });
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<LabeledGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::string line;
  if (!std::getline(in, line) || line.rfind("loom-graph", 0) != 0) {
    return Status::InvalidArgument("missing loom-graph header: " + path);
  }

  LabeledGraph g;
  size_t declared_n = 0;
  bool vertices_made = false;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    char kind = 0;
    ss >> kind;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + why);
    };
    if (kind == 'n') {
      if (!(ss >> declared_n)) return fail("bad vertex count");
      for (size_t i = 0; i < declared_n; ++i) g.AddVertex(0);
      vertices_made = true;
    } else if (kind == 'l') {
      VertexId v = 0;
      Label l = 0;
      if (!(ss >> v >> l)) return fail("bad label line");
      if (!vertices_made || !g.HasVertex(v)) return fail("label before n");
      g.SetLabel(v, l);
    } else if (kind == 'e') {
      VertexId u = 0;
      VertexId v = 0;
      if (!(ss >> u >> v)) return fail("bad edge line");
      const Status s = g.AddEdge(u, v);
      if (!s.ok()) return fail("edge rejected: " + s.ToString());
    } else {
      return fail("unknown record kind");
    }
  }
  return g;
}

}  // namespace loom
