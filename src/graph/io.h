#ifndef LOOM_GRAPH_IO_H_
#define LOOM_GRAPH_IO_H_

/// \file
/// Labelled edge-list serialization.
///
/// Format (text, line-oriented, '#' comments allowed):
///
///     loom-graph 1
///     n <num_vertices>
///     l <vertex> <label>        (one per vertex; default label 0)
///     e <u> <v>                 (one per undirected edge)

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace loom {

/// Writes `g` to `path` in the loom-graph format.
Status SaveGraph(const LabeledGraph& g, const std::string& path);

/// Reads a graph from `path`; fails with IOError / InvalidArgument on
/// malformed input.
Result<LabeledGraph> LoadGraph(const std::string& path);

}  // namespace loom

#endif  // LOOM_GRAPH_IO_H_
