#ifndef LOOM_GRAPH_IO_H_
#define LOOM_GRAPH_IO_H_

/// \file
/// Graph and stream serialization.
///
/// Two formats live here:
///
/// **loom-graph** (text, line-oriented, '#' comments allowed) — small
/// fixtures and interchange:
///
///     loom-graph 1
///     n <num_vertices>
///     l <vertex> <label>        (one per vertex; default label 0)
///     e <u> <v>                 (one per undirected edge)
///
/// **loom-stream** (binary, little-endian, mmap-able) — the out-of-core
/// arrival-stream format behind FileArrivalSource: a fixed 64-byte header, a
/// fixed-record arrival directory (one 24-byte record per arrival, in stream
/// order, carrying vertex id, label, degrees and the record's offset into
/// the edge array) and a flat `uint32` edge array. When written with
/// `full_neighborhoods` (the default) each arrival's edge slice holds its
/// back edges followed by its forward neighbours in *their* arrival order —
/// the layout restream replay needs to score any vertex without
/// materialising the graph. Byte-level layout and versioning rules are
/// specified in docs/FORMATS.md; tests/io_test.cc pins golden bytes.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "graph/graph.h"
#include "stream/arrival_source.h"
#include "stream/stream.h"

namespace loom {

/// Writes `g` to `path` in the loom-graph format.
Status SaveGraph(const LabeledGraph& g, const std::string& path);

/// Reads a graph from `path`; fails with IOError / InvalidArgument on
/// malformed input.
Result<LabeledGraph> LoadGraph(const std::string& path);

// ---------------------------------------------------------------------------
// loom-stream: binary on-disk arrival streams
// ---------------------------------------------------------------------------

/// First 8 file bytes: "LOOMSTRM" read as a little-endian uint64.
constexpr uint64_t kStreamFileMagic = 0x4D5254534D4F4F4CULL;
/// Current (and only) format version; see docs/FORMATS.md for the rules.
constexpr uint32_t kStreamFileVersion = 1;
/// Fixed header size in bytes.
constexpr size_t kStreamFileHeaderBytes = 64;
/// Fixed per-arrival directory record size in bytes.
constexpr size_t kStreamFileRecordBytes = 24;

/// Header facts of an open or freshly written stream file.
struct StreamFileInfo {
  uint32_t version = kStreamFileVersion;
  /// True when every arrival's edge slice also carries forward neighbours.
  bool has_full_neighborhoods = false;
  /// Arrival count (each vertex arrives exactly once).
  uint64_t num_vertices = 0;
  /// Max vertex id + 1 — sizes O(V) id-indexed consumer arrays; ids may be
  /// sparse, so this can exceed num_vertices.
  uint64_t id_bound = 0;
  /// Distinct undirected edges (== total back-edge entries).
  uint64_t num_edges = 0;
  uint64_t file_bytes = 0;
};

/// Writer knobs.
struct StreamFileOptions {
  /// Store full neighbourhoods (back + forward edges) per arrival. Required
  /// for out-of-core restream replay; costs 8 bytes/edge instead of 4.
  bool full_neighborhoods = true;
  /// Working-buffer bound for the forward-edge fill in Finish(); the writer
  /// makes ceil(edge_bytes / buffer) sequential sweeps of its temp log, so
  /// this trades peak memory against convert time. Minimum one page.
  size_t fill_buffer_bytes = 64ull << 20;
};

/// Incremental loom-stream writer with O(V) memory: arrivals are appended in
/// stream order to a temp log next to `path`, and `Finish()` assembles the
/// final file in bounded-buffer sweeps (it never holds the edge array in
/// memory). Enforces the stream invariants at append time: each vertex
/// arrives once, back edges point at earlier arrivals, no self-loops or
/// duplicate edges. The output file appears atomically at `path` (written as
/// `path.tmp`, then renamed); an unfinished writer leaves no final file.
class StreamFileWriter {
 public:
  /// Creates the temp files; fails with IOError when not writable and
  /// FailedPrecondition on big-endian hosts (the format is little-endian).
  static Result<std::unique_ptr<StreamFileWriter>> Create(
      const std::string& path, const StreamFileOptions& options = {});
  ~StreamFileWriter();

  StreamFileWriter(const StreamFileWriter&) = delete;
  StreamFileWriter& operator=(const StreamFileWriter&) = delete;

  /// Appends one arrival. InvalidArgument on invariant violations (repeat
  /// arrival, forward/self/duplicate edge); the writer is unusable after
  /// any error.
  Status Append(VertexId vertex, Label label, Span<const VertexId> back_edges);

  /// Drains `source` from its current position through Append.
  Status AppendAll(ArrivalSource& source);

  /// Assembles and renames the final file; call exactly once. info() is
  /// valid afterwards.
  Status Finish();

  /// Facts about the written file; meaningful once Finish() succeeded.
  const StreamFileInfo& info() const { return info_; }

 private:
  StreamFileWriter(std::string path, const StreamFileOptions& options);

  Status WriteLog(const void* data, size_t bytes);
  Status FinishImpl();

  std::string path_;
  StreamFileOptions options_;
  StreamFileInfo info_;
  /// Temp append log: per arrival `u32 vertex, u32 label, u32 back_degree,
  /// u32[back_degree] edges` — replayed sequentially by Finish's sweeps.
  std::FILE* log_ = nullptr;
  bool failed_ = false;
  bool finished_ = false;
  /// Arrival index of each seen vertex id (UINT32_MAX = unseen); O(id_bound).
  std::vector<uint32_t> arrival_index_of_;
  /// Forward-edge count per vertex id, accumulated as later arrivals carry
  /// edges back to it; O(id_bound).
  std::vector<uint32_t> forward_degree_of_;
  /// Per arrival index: vertex id and back degree; O(V).
  std::vector<uint32_t> vertex_by_index_;
  std::vector<uint32_t> back_degree_by_index_;
  /// Scratch for the duplicate-edge check.
  std::vector<VertexId> dedup_scratch_;
};

/// One-shot convenience: writes a materialised stream to `path`.
Status WriteStreamFile(const GraphStream& stream, const std::string& path,
                       const StreamFileOptions& options = {});

/// Which neighbourhood view a FileArrivalSource yields per arrival.
enum class StreamView {
  /// Edges to earlier arrivals only — the §3.1 arrival model every pass-one
  /// partitioner consumes. Works on every file.
  kBackEdges,
  /// Back then forward edges — restream replay. Requires a file written
  /// with `full_neighborhoods`.
  kFullNeighborhoods,
};

/// FileArrivalSource::Open knobs.
struct StreamOpenOptions {
  StreamView view = StreamView::kBackEdges;
  /// Mapped-resident bound (see FileArrivalSource); 0 disables the drops.
  size_t residency_budget_bytes = 64ull << 20;
};

/// Zero-copy cursor over an mmap-ed loom-stream file. `Next()` yields views
/// whose spans point straight into the mapping — no per-arrival allocation
/// or copy — and `Reset()` rewinds for replay. Open() validates the whole
/// file (magic, version, sizes, offset/degree consistency, plus every edge
/// slot: endpoints must be inside the id bound and never self-loops) so
/// that iteration and At() can trust every offset and edge value without
/// further checks.
///
/// Residency: consuming a mapped file faults its pages in, which would make
/// peak RSS O(file) and defeat the out-of-core design. The source therefore
/// tracks bytes touched since the last drop and `madvise(MADV_DONTNEED)`s
/// the mapping whenever that exceeds `residency_budget_bytes`, bounding the
/// mapping's resident contribution by the budget (pages re-fault on the
/// next pass).
class FileArrivalSource : public ArrivalSource {
 public:
  using View = StreamView;
  using OpenOptions = StreamOpenOptions;

  /// Maps and validates `path`. InvalidArgument on malformed or truncated
  /// files, IOError on filesystem failures, FailedPrecondition on
  /// big-endian hosts or when options request a view the file cannot serve.
  static Result<std::unique_ptr<FileArrivalSource>> Open(
      const std::string& path, const OpenOptions& options = OpenOptions());
  ~FileArrivalSource() override;

  FileArrivalSource(const FileArrivalSource&) = delete;
  FileArrivalSource& operator=(const FileArrivalSource&) = delete;

  bool Next(ArrivalView* out) override;
  void Reset() override { pos_ = 0; }
  uint64_t NumVertices() const override { return info_.num_vertices; }
  uint64_t NumEdges() const override { return info_.num_edges; }

  const StreamFileInfo& info() const { return info_; }
  /// Max vertex id + 1 (sizes id-indexed consumer arrays).
  uint64_t IdBound() const { return info_.id_bound; }

  /// Both neighbourhood views of one arrival, for random-access replay.
  /// Spans alias the mapping; on files without full neighbourhoods,
  /// `full_edges` == `back_edges`.
  struct Record {
    VertexId vertex = kInvalidVertex;
    Label label = 0;
    Span<const VertexId> back_edges;
    Span<const VertexId> full_edges;
  };

  /// Arrival record at `index` (< NumVertices()), independent of the cursor.
  Record At(uint64_t index) const;

 private:
  FileArrivalSource() = default;

  void NoteTouched(size_t bytes) const;

  StreamFileInfo info_;
  OpenOptions options_;
  const unsigned char* map_ = nullptr;
  size_t map_bytes_ = 0;
  /// Directory and edge-array base pointers into the mapping.
  const unsigned char* directory_ = nullptr;
  const uint32_t* edges_ = nullptr;
  uint64_t pos_ = 0;
  /// Bytes touched since the last MADV_DONTNEED drop (see class comment).
  mutable size_t touched_bytes_ = 0;
};

}  // namespace loom

#endif  // LOOM_GRAPH_IO_H_
