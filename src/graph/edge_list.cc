#include "graph/edge_list.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace loom {

namespace {

/// Strict uint64 token parse: digits only (rejects "-1", "1e5", "12abc"),
/// no overflow past uint64. Returns false instead of throwing so fuzzed
/// garbage costs nothing.
bool ParseVertexToken(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~uint64_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

Result<LabeledGraph> LoadEdgeListGraph(const std::string& path,
                                       const EdgeListOptions& options,
                                       EdgeListStats* stats) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open edge list: " + path);
  }
  LabeledGraph g;
  Rng label_rng(options.seed + 1);
  const LabelConfig label_config{options.num_labels, 0.0};
  std::unordered_map<uint64_t, VertexId> dense_id;
  EdgeListStats local;
  const auto intern = [&](uint64_t raw) {
    const auto it = dense_id.find(raw);
    if (it != dense_id.end()) return it->second;
    const VertexId v = g.AddVertex(DrawLabel(label_config, label_rng));
    dense_id.emplace(raw, v);
    return v;
  };
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::string token_u;
    std::string token_v;
    if (!(fields >> token_u)) continue;  // whitespace-only line
    if (!(fields >> token_v)) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) +
                                     ": expected 'u v'");
    }
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!ParseVertexToken(token_u, &raw_u) ||
        !ParseVertexToken(token_v, &raw_v)) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": vertex ids must be non-negative integers");
    }
    // Trailing columns (SNAP timestamps etc.) are ignored.
    if (raw_u == raw_v) {
      ++local.self_loops;
      continue;
    }
    const VertexId u = intern(raw_u);
    const VertexId v = intern(raw_v);
    const Status added = g.AddEdge(u, v);
    if (!added.ok()) {
      if (added.code() == StatusCode::kAlreadyExists) {
        ++local.duplicate_edges;
        continue;
      }
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) + ": " +
                                     added.ToString());
    }
  }
  if (stats != nullptr) *stats = local;
  return g;
}

}  // namespace loom
