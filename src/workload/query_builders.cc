#include "workload/query_builders.h"

#include <cassert>

namespace loom {

LabeledGraph PathQuery(const std::vector<Label>& labels) {
  assert(!labels.empty());
  LabeledGraph q;
  VertexId prev = kInvalidVertex;
  for (const Label l : labels) {
    const VertexId v = q.AddVertex(l);
    if (prev != kInvalidVertex) q.AddEdgeUnchecked(prev, v);
    prev = v;
  }
  return q;
}

LabeledGraph StarQuery(Label center, const std::vector<Label>& leaf_labels) {
  LabeledGraph q;
  const VertexId c = q.AddVertex(center);
  for (const Label l : leaf_labels) {
    q.AddEdgeUnchecked(c, q.AddVertex(l));
  }
  return q;
}

LabeledGraph CycleQuery(const std::vector<Label>& labels) {
  assert(labels.size() >= 3);
  LabeledGraph q = PathQuery(labels);
  q.AddEdgeUnchecked(static_cast<VertexId>(labels.size() - 1), 0);
  return q;
}

LabeledGraph CliqueQuery(const std::vector<Label>& labels) {
  assert(labels.size() >= 2);
  LabeledGraph q;
  for (const Label l : labels) q.AddVertex(l);
  for (VertexId u = 0; u < labels.size(); ++u) {
    for (VertexId v = u + 1; v < labels.size(); ++v) q.AddEdgeUnchecked(u, v);
  }
  return q;
}

LabeledGraph TriangleQuery(Label a, Label b, Label c) {
  return CycleQuery({a, b, c});
}

LabeledGraph RandomConnectedQuery(uint32_t num_vertices, uint32_t extra_edges,
                                  uint32_t num_labels, Rng& rng) {
  assert(num_vertices >= 1 && num_labels >= 1);
  LabeledGraph q;
  for (uint32_t i = 0; i < num_vertices; ++i) {
    q.AddVertex(static_cast<Label>(rng.UniformInt(0, num_labels - 1)));
  }
  for (VertexId v = 1; v < num_vertices; ++v) {
    q.AddEdgeUnchecked(v, static_cast<VertexId>(rng.UniformInt(0, v - 1)));
  }
  uint32_t added = 0;
  uint32_t attempts = 0;
  while (added < extra_edges && attempts < 16 * (extra_edges + 1) &&
         num_vertices >= 2) {
    ++attempts;
    const VertexId u =
        static_cast<VertexId>(rng.UniformInt(0, num_vertices - 1));
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(0, num_vertices - 1));
    if (u == v || q.HasEdge(u, v)) continue;
    q.AddEdgeUnchecked(u, v);
    ++added;
  }
  return q;
}

LabeledGraph PaperFigure1Graph() {
  LabeledGraph g;
  // ids:                 0        1        2        3
  g.AddVertex(kLabelA);  // paper vertex 1:a
  g.AddVertex(kLabelB);  // paper vertex 2:b
  g.AddVertex(kLabelC);  // paper vertex 3:c
  g.AddVertex(kLabelD);  // paper vertex 4:d
  // ids:                 4        5        6        7
  g.AddVertex(kLabelB);  // paper vertex 5:b
  g.AddVertex(kLabelA);  // paper vertex 6:a
  g.AddVertex(kLabelD);  // paper vertex 7:d
  g.AddVertex(kLabelC);  // paper vertex 8:c

  // The a-b-a-b square on paper vertices {1, 2, 5, 6}: 1-2, 2-6, 6-5, 5-1.
  g.AddEdgeUnchecked(0, 1);
  g.AddEdgeUnchecked(1, 5);
  g.AddEdgeUnchecked(5, 4);
  g.AddEdgeUnchecked(4, 0);
  // The bottom-row path 1:a - 2:b - 3:c - 4:d (q2 and q3 matches).
  g.AddEdgeUnchecked(1, 2);
  g.AddEdgeUnchecked(2, 3);
  // Top-row attachments: 6:a - 7:d and 7:d - 8:c, 5:b - 8:c (a second
  // a-b-c match via 6-5-8).
  g.AddEdgeUnchecked(5, 6);
  g.AddEdgeUnchecked(6, 7);
  g.AddEdgeUnchecked(4, 7);
  return g;
}

LabeledGraph PaperQ1() {
  return CycleQuery({kLabelA, kLabelB, kLabelA, kLabelB});
}

LabeledGraph PaperQ2() { return PathQuery({kLabelA, kLabelB, kLabelC}); }

LabeledGraph PaperQ3() {
  return PathQuery({kLabelA, kLabelB, kLabelC, kLabelD});
}

Workload PaperFigure1Workload() {
  Workload w;
  Status s = w.Add("q1", PaperQ1(), 1.0);
  assert(s.ok());
  s = w.Add("q2", PaperQ2(), 1.0);
  assert(s.ok());
  s = w.Add("q3", PaperQ3(), 1.0);
  assert(s.ok());
  (void)s;
  w.Normalize();
  return w;
}

}  // namespace loom
