#include "workload/workload_io.h"

#include <fstream>
#include <sstream>

namespace loom {

Status SaveWorkload(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "loom-workload 1\n";
  for (const QuerySpec& q : workload.queries()) {
    out << "query " << q.name << " " << q.frequency << " "
        << q.pattern.NumVertices() << "\n";
    for (VertexId v = 0; v < q.pattern.NumVertices(); ++v) {
      out << "l " << v << " " << q.pattern.LabelOf(v) << "\n";
    }
    q.pattern.ForEachEdge(
        [&](VertexId u, VertexId v) { out << "e " << u << " " << v << "\n"; });
    out << "end\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Workload> LoadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::string line;
  if (!std::getline(in, line) || line.rfind("loom-workload", 0) != 0) {
    return Status::InvalidArgument("missing loom-workload header: " + path);
  }

  Workload workload;
  size_t line_no = 1;
  std::string name;
  double frequency = 0.0;
  size_t declared_vertices = 0;
  LabeledGraph pattern;
  bool in_query = false;

  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                   ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "query") {
      if (in_query) return fail("nested query block");
      if (!(ss >> name >> frequency >> declared_vertices)) {
        return fail("bad query header");
      }
      pattern = LabeledGraph();
      for (size_t i = 0; i < declared_vertices; ++i) pattern.AddVertex(0);
      in_query = true;
    } else if (kind == "l") {
      if (!in_query) return fail("label outside query block");
      VertexId v = 0;
      Label l = 0;
      if (!(ss >> v >> l) || !pattern.HasVertex(v)) return fail("bad label");
      pattern.SetLabel(v, l);
    } else if (kind == "e") {
      if (!in_query) return fail("edge outside query block");
      VertexId u = 0;
      VertexId v = 0;
      if (!(ss >> u >> v)) return fail("bad edge");
      const Status s = pattern.AddEdge(u, v);
      if (!s.ok()) return fail("edge rejected: " + s.ToString());
    } else if (kind == "end") {
      if (!in_query) return fail("end outside query block");
      LOOM_RETURN_IF_ERROR(workload.Add(name, std::move(pattern), frequency));
      in_query = false;
    } else {
      return fail("unknown record kind: " + kind);
    }
  }
  if (in_query) {
    return Status::InvalidArgument(path + ": unterminated query block");
  }
  return workload;
}

}  // namespace loom
