#include "workload/workload.h"

#include <algorithm>

namespace loom {

Status Workload::Add(std::string name, LabeledGraph pattern, double frequency) {
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty query pattern: " + name);
  }
  if (!IsConnected(pattern)) {
    return Status::InvalidArgument("query pattern must be connected: " + name);
  }
  if (frequency <= 0.0) {
    return Status::InvalidArgument("query frequency must be positive: " + name);
  }
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    num_labels_ = std::max(num_labels_, pattern.LabelOf(v) + 1);
  }
  total_frequency_ += frequency;
  queries_.push_back(QuerySpec{std::move(name), std::move(pattern), frequency});
  return Status::OK();
}

void Workload::Normalize() {
  if (total_frequency_ <= 0.0) return;
  for (auto& q : queries_) q.frequency /= total_frequency_;
  total_frequency_ = 1.0;
}

size_t Workload::SampleIndex(Rng& rng) const {
  const double u = rng.UniformDouble() * total_frequency_;
  double acc = 0.0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    acc += queries_[i].frequency;
    if (u < acc) return i;
  }
  return queries_.empty() ? 0 : queries_.size() - 1;
}

}  // namespace loom
