#include "workload/query_engine.h"

#include <algorithm>
#include <cassert>

#include "motif/isomorphism.h"

namespace loom {
namespace {

struct InstrumentedMatcher {
  const LabeledGraph* g;
  const PartitionAssignment* assignment;
  const LabeledGraph* pattern;
  size_t max_embeddings;
  const ReplicaSet* replicas = nullptr;
  const TraversalObserver* observer = nullptr;

  std::vector<VertexId> order;
  std::vector<VertexId> mapping;
  std::vector<bool> used;
  QueryExecutionStats stats;

  /// A traversal from `from` to `to` is remote when their primaries differ
  /// and `to` has no replica in `from`'s partition.
  bool IsCross(VertexId from, VertexId to) const {
    const int32_t fp = assignment->PartOf(from);
    if (fp == assignment->PartOf(to)) return false;
    if (replicas != nullptr && fp >= 0 &&
        replicas->Has(to, static_cast<uint32_t>(fp))) {
      return false;
    }
    return true;
  }

  bool Feasible(VertexId pu, VertexId tv) const {
    if (pattern->LabelOf(pu) != g->LabelOf(tv)) return false;
    if (g->Degree(tv) < pattern->Degree(pu)) return false;
    for (const VertexId pw : pattern->Neighbors(pu)) {
      const VertexId tw = mapping[pw];
      if (tw != kInvalidVertex && !g->HasEdge(tv, tw)) return false;
    }
    return true;
  }

  void RecordEmbedding() {
    ++stats.num_embeddings;
    // Account the embedding's own edges against the partitioning.
    uint64_t cut = 0;
    uint64_t total = 0;
    bool single = true;
    const int32_t first_part = assignment->PartOf(mapping[0]);
    for (VertexId pv = 0; pv < pattern->NumVertices(); ++pv) {
      if (assignment->PartOf(mapping[pv]) != first_part) single = false;
      for (const VertexId pw : pattern->Neighbors(pv)) {
        if (pw < pv) continue;  // each pattern edge once
        ++total;
        // An answer edge is effectively cut only when NEITHER side can reach
        // the other locally (a replica on either end heals it).
        if (IsCross(mapping[pv], mapping[pw]) &&
            IsCross(mapping[pw], mapping[pv])) {
          ++cut;
        }
      }
    }
    stats.embedding_cut_edges += cut;
    stats.embedding_total_edges += total;
    if (single) ++stats.single_partition_embeddings;
  }

  void Recurse(size_t depth) {
    if (stats.num_embeddings >= max_embeddings) return;
    if (depth == order.size()) {
      RecordEmbedding();
      return;
    }
    const VertexId pu = order[depth];
    VertexId anchor_pattern = kInvalidVertex;
    for (const VertexId pw : pattern->Neighbors(pu)) {
      if (mapping[pw] != kInvalidVertex) {
        anchor_pattern = pw;
        break;
      }
    }
    if (anchor_pattern != kInvalidVertex) {
      const VertexId anchor = mapping[anchor_pattern];
      for (const VertexId tv : g->Neighbors(anchor)) {
        // A label-compatible expansion is a traversal the engine performs:
        // it ships the candidate (and its adjacency) to the coordinator,
        // remotely when partitions differ.
        if (g->LabelOf(tv) != pattern->LabelOf(pu)) continue;
        ++stats.total_traversals;
        const bool cross = IsCross(anchor, tv);
        if (cross) ++stats.cross_traversals;
        if (observer != nullptr && *observer) (*observer)(anchor, tv, cross);
        if (used[tv] || !Feasible(pu, tv)) continue;
        mapping[pu] = tv;
        used[tv] = true;
        Recurse(depth + 1);
        used[tv] = false;
        mapping[pu] = kInvalidVertex;
        if (stats.num_embeddings >= max_embeddings) return;
      }
    } else {
      // Root candidates come from a label index, not edge traversals.
      for (VertexId tv = 0; tv < g->NumVertices(); ++tv) {
        if (used[tv] || !Feasible(pu, tv)) continue;
        mapping[pu] = tv;
        used[tv] = true;
        Recurse(depth + 1);
        used[tv] = false;
        mapping[pu] = kInvalidVertex;
        if (stats.num_embeddings >= max_embeddings) return;
      }
    }
  }
};

}  // namespace

QueryExecutionStats ExecuteQuery(const LabeledGraph& g,
                                 const PartitionAssignment& assignment,
                                 const LabeledGraph& pattern,
                                 size_t max_embeddings,
                                 const ReplicaSet* replicas,
                                 const TraversalObserver& observer) {
  InstrumentedMatcher m;
  if (pattern.NumVertices() == 0 || g.NumVertices() == 0) return m.stats;
  m.g = &g;
  m.assignment = &assignment;
  m.pattern = &pattern;
  m.max_embeddings = max_embeddings;
  m.replicas = replicas;
  m.observer = &observer;
  m.order = MatchingOrder(pattern);
  m.mapping.assign(pattern.NumVertices(), kInvalidVertex);
  m.used.assign(g.NumVertices(), false);
  m.Recurse(0);
  return m.stats;
}

WorkloadIptStats EvaluateWorkloadIpt(const LabeledGraph& g,
                                     const PartitionAssignment& assignment,
                                     const Workload& workload,
                                     size_t max_embeddings_per_query,
                                     const ReplicaSet* replicas) {
  WorkloadIptStats out;
  const double total_freq =
      workload.TotalFrequency() > 0 ? workload.TotalFrequency() : 1.0;
  for (const QuerySpec& q : workload.queries()) {
    const QueryExecutionStats s = ExecuteQuery(
        g, assignment, q.pattern, max_embeddings_per_query, replicas);
    const double weight = q.frequency / total_freq;
    out.ipt_probability += weight * s.IptProbability();
    if (s.num_embeddings > 0) {
      out.single_partition_fraction +=
          weight * static_cast<double>(s.single_partition_embeddings) /
          static_cast<double>(s.num_embeddings);
    }
    if (s.embedding_total_edges > 0) {
      out.embedding_cut_fraction +=
          weight * static_cast<double>(s.embedding_cut_edges) /
          static_cast<double>(s.embedding_total_edges);
    }
    out.per_query.push_back(s);
  }
  return out;
}

}  // namespace loom
