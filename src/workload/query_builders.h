#ifndef LOOM_WORKLOAD_QUERY_BUILDERS_H_
#define LOOM_WORKLOAD_QUERY_BUILDERS_H_

/// \file
/// Builders for common pattern-graph shapes, plus the exact fixtures of the
/// paper's Figure 1 (example graph G and workload Q = {q1, q2, q3}).

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "workload/workload.h"

namespace loom {

/// Path query v0 - v1 - ... with the given labels (>= 1 label).
LabeledGraph PathQuery(const std::vector<Label>& labels);

/// Star: a centre with `leaf_labels.size()` leaves.
LabeledGraph StarQuery(Label center, const std::vector<Label>& leaf_labels);

/// Simple cycle through the given labels (>= 3 labels).
LabeledGraph CycleQuery(const std::vector<Label>& labels);

/// Clique over the given labels (>= 2 labels).
LabeledGraph CliqueQuery(const std::vector<Label>& labels);

/// Triangle shorthand.
LabeledGraph TriangleQuery(Label a, Label b, Label c);

/// Random connected pattern: a random tree over `num_vertices` plus
/// `extra_edges` random chords; labels uniform over `num_labels`.
LabeledGraph RandomConnectedQuery(uint32_t num_vertices, uint32_t extra_edges,
                                  uint32_t num_labels, Rng& rng);

// ---------------------------------------------------------------------------
// Paper Figure 1 fixtures. Labels: a=0, b=1, c=2, d=3. The figure's vertices
// "1:a 2:b 3:c 4:d / 5:b 6:a 7:d 8:c" map to ids 0..7 in that order.
// The graph realises the properties the paper states: the answer to q1 is
// exactly the sub-graph on {1, 2, 5, 6} (ids {0, 1, 4, 5}), and q2/q3 have
// path matches along 1-2-3(-4).
// ---------------------------------------------------------------------------

inline constexpr Label kLabelA = 0;
inline constexpr Label kLabelB = 1;
inline constexpr Label kLabelC = 2;
inline constexpr Label kLabelD = 3;

/// The example data graph G of Figure 1.
LabeledGraph PaperFigure1Graph();

/// q1: the 4-cycle a-b-a-b.
LabeledGraph PaperQ1();

/// q2: the path a-b-c.
LabeledGraph PaperQ2();

/// q3: the path a-b-c-d.
LabeledGraph PaperQ3();

/// The workload Q = {q1, q2, q3} with equal frequencies, normalized.
Workload PaperFigure1Workload();

}  // namespace loom

#endif  // LOOM_WORKLOAD_QUERY_BUILDERS_H_
