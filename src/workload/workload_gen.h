#ifndef LOOM_WORKLOAD_WORKLOAD_GEN_H_
#define LOOM_WORKLOAD_WORKLOAD_GEN_H_

/// \file
/// Workload generators for the experiment suite: parameterised mixes of the
/// shapes the paper motivates (paths for navigation, triangles/cycles for
/// fraud rings, stars for recommendation fan-out) with controllable skew.

#include <cstdint>

#include "common/rng.h"
#include "workload/workload.h"

namespace loom {

/// Knobs for synthetic workloads.
struct WorkloadGenOptions {
  uint32_t num_labels = 4;
  /// Number of distinct queries.
  uint32_t num_queries = 6;
  /// Zipf skew over query frequencies (0 = uniform; the paper's premise is
  /// a skewed workload, frequently traversing a limited edge subset).
  double frequency_skew = 1.0;
  /// Largest pattern size in vertices.
  uint32_t max_pattern_vertices = 4;
  uint64_t seed = 7;
};

/// Path-only workload (the original TPSTry's regime): random label paths of
/// 2..max_pattern_vertices vertices.
Workload PathWorkload(const WorkloadGenOptions& options);

/// Mixed motif workload: paths, triangles, stars and small cycles.
Workload MixedMotifWorkload(const WorkloadGenOptions& options);

/// Motif-free contrast workload: single-vertex lookups only (no edges to
/// keep local, so workload-awareness cannot help — the E2 control).
Workload LookupWorkload(const WorkloadGenOptions& options);

}  // namespace loom

#endif  // LOOM_WORKLOAD_WORKLOAD_GEN_H_
