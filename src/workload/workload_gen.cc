#include "workload/workload_gen.h"

#include <cassert>

#include "workload/query_builders.h"

namespace loom {
namespace {

std::vector<Label> RandomLabels(uint32_t count, uint32_t num_labels,
                                Rng& rng) {
  std::vector<Label> labels(count);
  for (auto& l : labels) {
    l = static_cast<Label>(rng.UniformInt(0, num_labels - 1));
  }
  return labels;
}

/// Zipf frequencies over the query ranks.
std::vector<double> Frequencies(uint32_t n, double skew) {
  const ZipfSampler sampler(n, skew);
  std::vector<double> out(n);
  for (uint32_t i = 0; i < n; ++i) out[i] = sampler.Probability(i);
  return out;
}

}  // namespace

Workload PathWorkload(const WorkloadGenOptions& options) {
  Rng rng(options.seed);
  Workload w;
  const auto freqs = Frequencies(options.num_queries, options.frequency_skew);
  for (uint32_t i = 0; i < options.num_queries; ++i) {
    const uint32_t len = static_cast<uint32_t>(
        rng.UniformInt(2, std::max<uint32_t>(2, options.max_pattern_vertices)));
    const Status s =
        w.Add("path" + std::to_string(i),
              PathQuery(RandomLabels(len, options.num_labels, rng)), freqs[i]);
    assert(s.ok());
    (void)s;
  }
  w.Normalize();
  return w;
}

Workload MixedMotifWorkload(const WorkloadGenOptions& options) {
  Rng rng(options.seed);
  Workload w;
  const auto freqs = Frequencies(options.num_queries, options.frequency_skew);
  for (uint32_t i = 0; i < options.num_queries; ++i) {
    const uint32_t shape = static_cast<uint32_t>(rng.UniformInt(0, 3));
    LabeledGraph pattern;
    std::string name;
    const uint32_t max_v = std::max<uint32_t>(3, options.max_pattern_vertices);
    switch (shape) {
      case 0: {
        const uint32_t len = static_cast<uint32_t>(rng.UniformInt(2, max_v));
        pattern = PathQuery(RandomLabels(len, options.num_labels, rng));
        name = "path";
        break;
      }
      case 1: {
        pattern = TriangleQuery(
            static_cast<Label>(rng.UniformInt(0, options.num_labels - 1)),
            static_cast<Label>(rng.UniformInt(0, options.num_labels - 1)),
            static_cast<Label>(rng.UniformInt(0, options.num_labels - 1)));
        name = "triangle";
        break;
      }
      case 2: {
        const uint32_t leaves =
            static_cast<uint32_t>(rng.UniformInt(2, max_v - 1));
        pattern = StarQuery(
            static_cast<Label>(rng.UniformInt(0, options.num_labels - 1)),
            RandomLabels(leaves, options.num_labels, rng));
        name = "star";
        break;
      }
      default: {
        const uint32_t len = static_cast<uint32_t>(rng.UniformInt(3, max_v));
        pattern = CycleQuery(RandomLabels(len, options.num_labels, rng));
        name = "cycle";
        break;
      }
    }
    const Status s =
        w.Add(name + std::to_string(i), std::move(pattern), freqs[i]);
    assert(s.ok());
    (void)s;
  }
  w.Normalize();
  return w;
}

Workload LookupWorkload(const WorkloadGenOptions& options) {
  Rng rng(options.seed);
  Workload w;
  const uint32_t n = std::min(options.num_queries, options.num_labels);
  const auto freqs = Frequencies(n, options.frequency_skew);
  for (uint32_t i = 0; i < n; ++i) {
    LabeledGraph pattern;
    pattern.AddVertex(static_cast<Label>(i));
    const Status s =
        w.Add("lookup" + std::to_string(i), std::move(pattern), freqs[i]);
    assert(s.ok());
    (void)s;
  }
  w.Normalize();
  return w;
}

}  // namespace loom
