#ifndef LOOM_WORKLOAD_QUERY_ENGINE_H_
#define LOOM_WORKLOAD_QUERY_ENGINE_H_

/// \file
/// Query execution over a *partitioned* graph, instrumented with the paper's
/// quality measure: the probability of inter-partition traversals (§1, "the
/// probability of inter-partition traversals ... given a workload Q").
///
/// The engine runs the same backtracking sub-graph matcher a GDBMS would
/// (anchored expansion along data edges, cf. motif/isomorphism.h) and charges
/// one *traversal* each time it follows a data edge from a mapped vertex to a
/// label-compatible candidate; the traversal is *inter-partition* when the
/// two endpoints live in different partitions, which in a distributed store
/// is a remote hop with communication latency.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "partition/partition_state.h"
#include "partition/replica_set.h"
#include "workload/workload.h"

namespace loom {

/// Callback invoked once per traversal the engine performs:
/// (from, to, crossed_partition). Used by the replication module to locate
/// hotspots.
using TraversalObserver =
    std::function<void(VertexId from, VertexId to, bool cross)>;

/// Instrumented result of executing one query.
struct QueryExecutionStats {
  /// Number of embeddings found (possibly capped).
  size_t num_embeddings = 0;
  /// Edge traversals performed during search (successful and failed probes).
  uint64_t total_traversals = 0;
  /// Traversals that crossed a partition boundary.
  uint64_t cross_traversals = 0;
  /// Embeddings entirely inside a single partition.
  size_t single_partition_embeddings = 0;
  /// Sum over embeddings of their cut pattern-edges.
  uint64_t embedding_cut_edges = 0;
  /// Sum over embeddings of their total pattern-edges.
  uint64_t embedding_total_edges = 0;

  /// Fraction of traversals that were inter-partition.
  double IptProbability() const {
    return total_traversals == 0
               ? 0.0
               : static_cast<double>(cross_traversals) /
                     static_cast<double>(total_traversals);
  }
};

/// Executes `pattern` over `g` and accounts traversals against `assignment`.
/// Enumeration stops after `max_embeddings` results (the traversal counters
/// reflect the work actually performed).
///
/// When `replicas` is supplied, a traversal into a vertex replicated in the
/// anchor's partition is local (§3.2 replication semantics). `observer`, if
/// set, sees every traversal (for hotspot detection).
QueryExecutionStats ExecuteQuery(const LabeledGraph& g,
                                 const PartitionAssignment& assignment,
                                 const LabeledGraph& pattern,
                                 size_t max_embeddings = SIZE_MAX,
                                 const ReplicaSet* replicas = nullptr,
                                 const TraversalObserver& observer = nullptr);

/// Frequency-weighted workload summary.
struct WorkloadIptStats {
  /// Σ_q freq(q) · ipt(q): the probability a random traversal of a random
  /// query crosses partitions — the paper's objective.
  double ipt_probability = 0.0;
  /// Σ_q freq(q) · (fraction of q's embeddings confined to one partition).
  double single_partition_fraction = 0.0;
  /// Σ_q freq(q) · (fraction of embedding edges that are cut).
  double embedding_cut_fraction = 0.0;
  /// Per-query detail rows, aligned with the workload's query order.
  std::vector<QueryExecutionStats> per_query;
};

/// Runs every workload query and combines by relative frequency.
WorkloadIptStats EvaluateWorkloadIpt(const LabeledGraph& g,
                                     const PartitionAssignment& assignment,
                                     const Workload& workload,
                                     size_t max_embeddings_per_query = 20000,
                                     const ReplicaSet* replicas = nullptr);

}  // namespace loom

#endif  // LOOM_WORKLOAD_QUERY_ENGINE_H_
