#ifndef LOOM_WORKLOAD_WORKLOAD_IO_H_
#define LOOM_WORKLOAD_WORKLOAD_IO_H_

/// \file
/// Workload serialization — lets deployments capture their live query mix
/// (pattern graphs + relative frequencies) and feed it to the partitioner
/// offline or via the loom_partition CLI tool.
///
/// Format (text, line-oriented, '#' comments allowed):
///
///     loom-workload 1
///     query <name> <frequency> <num_vertices>
///     l <vertex> <label>          (num_vertices lines)
///     e <u> <v>                   (edge lines)
///     end

#include <string>

#include "common/result.h"
#include "workload/workload.h"

namespace loom {

/// Writes `workload` to `path`.
Status SaveWorkload(const Workload& workload, const std::string& path);

/// Reads a workload from `path`; patterns are validated exactly as
/// `Workload::Add` does (connected, non-empty, positive frequency).
Result<Workload> LoadWorkload(const std::string& path);

}  // namespace loom

#endif  // LOOM_WORKLOAD_WORKLOAD_IO_H_
