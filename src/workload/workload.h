#ifndef LOOM_WORKLOAD_WORKLOAD_H_
#define LOOM_WORKLOAD_WORKLOAD_H_

/// \file
/// A query workload Q (paper §1.1): pattern matching queries over G "along
/// with the relative frequency of each query in Q".

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace loom {

/// One query of the workload: a small labelled pattern graph plus its
/// relative frequency.
struct QuerySpec {
  std::string name;
  LabeledGraph pattern;
  double frequency = 1.0;
};

/// An immutable-after-build set of queries with relative frequencies.
class Workload {
 public:
  Workload() = default;

  /// Adds a query. The pattern must be non-empty and connected (the paper's
  /// motifs are connected sub-graphs) and the frequency positive.
  Status Add(std::string name, LabeledGraph pattern, double frequency);

  /// Rescales frequencies to sum to 1.
  void Normalize();

  const std::vector<QuerySpec>& queries() const { return queries_; }
  size_t NumQueries() const { return queries_.size(); }

  /// Smallest label alphabet covering every pattern (max label + 1).
  uint32_t NumLabels() const { return num_labels_; }

  /// Total frequency mass (1 after `Normalize`).
  double TotalFrequency() const { return total_frequency_; }

  /// Samples a query index proportionally to frequency.
  size_t SampleIndex(Rng& rng) const;

 private:
  std::vector<QuerySpec> queries_;
  uint32_t num_labels_ = 0;
  double total_frequency_ = 0.0;
};

}  // namespace loom

#endif  // LOOM_WORKLOAD_WORKLOAD_H_
