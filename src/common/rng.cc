#include "common/rng.h"

#include <cmath>

namespace loom {

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t r) const {
  assert(r < cdf_.size());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace loom
