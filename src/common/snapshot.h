#ifndef LOOM_COMMON_SNAPSHOT_H_
#define LOOM_COMMON_SNAPSHOT_H_

/// \file
/// `SnapshotBoard<T>`: single-writer, many-reader publication of immutable
/// snapshots — the generalisation of the PrimeTable pattern in primes.cc to
/// arbitrary payloads. A writer publishes a fully built, immutable `T`; any
/// number of concurrent readers obtain a consistent pointer with one atomic
/// acquire load and may hold it for as long as they like.
///
/// Memory policy (identical to the prime table): every published snapshot is
/// retained for the board's lifetime, so a reader that loaded a stale
/// pointer arbitrarily long ago still dereferences live memory. No hazard
/// pointers, no RCU grace periods, no reference counts on the read path —
/// the read side is a single `memory_order_acquire` load and is genuinely
/// lock-free and wait-free. The cost is memory growth linear in the number
/// of publishes; boards are therefore suited to *coarse* publication
/// cadences (per ingest batch / per drift reaction), not per-item updates.
///
/// Thread-safety: `Publish` may be called from multiple threads (writers
/// serialise on an internal mutex, which readers never touch); `Read`,
/// `Epoch` and `NumPublished` are safe from any thread. The payload `T`
/// must not be mutated after publication — readers access it without any
/// synchronisation beyond the acquire load.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace loom {

/// Atomic publication point for immutable snapshots of type `T`.
template <typename T>
class SnapshotBoard {
 public:
  SnapshotBoard() = default;

  SnapshotBoard(const SnapshotBoard&) = delete;
  SnapshotBoard& operator=(const SnapshotBoard&) = delete;

  /// Publishes `snapshot` as the new current snapshot and returns its epoch
  /// (1 for the first publish, monotonically increasing). The board takes
  /// ownership and retains the snapshot until destruction; the previous
  /// snapshot stays valid for readers that already hold it.
  uint64_t Publish(std::unique_ptr<const T> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    const T* raw = snapshot.get();
    retained_.push_back(std::move(snapshot));
    const uint64_t e = epoch_.load(std::memory_order_relaxed) + 1;
    // Release order: a reader that acquires `current_` (or `epoch_`) sees
    // the fully constructed snapshot contents.
    current_.store(raw, std::memory_order_release);
    epoch_.store(e, std::memory_order_release);
    return e;
  }

  /// The current snapshot, or nullptr before the first publish. The pointer
  /// stays valid for the board's lifetime; callers may cache it across
  /// arbitrarily many reads.
  const T* Read() const { return current_.load(std::memory_order_acquire); }

  /// Epoch of the latest publish (0 before the first). Note that a
  /// `Read()`/`Epoch()` pair is not atomic — callers that need the epoch of
  /// the snapshot they hold should store it inside `T`.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Snapshots published (and retained) so far.
  size_t NumPublished() const {
    std::lock_guard<std::mutex> lock(mu_);
    return retained_.size();
  }

 private:
  std::atomic<const T*> current_{nullptr};
  std::atomic<uint64_t> epoch_{0};
  /// Writer-side state: guards `retained_` only; never touched by readers.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<const T>> retained_;
};

}  // namespace loom

#endif  // LOOM_COMMON_SNAPSHOT_H_
