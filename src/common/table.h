#ifndef LOOM_COMMON_TABLE_H_
#define LOOM_COMMON_TABLE_H_

/// \file
/// Fixed-width table rendering and CSV export for benchmark harnesses.
/// Every experiment binary prints its table/figure series through these.

#include <ostream>
#include <string>
#include <vector>

namespace loom {

/// Collects rows of string cells and prints them column-aligned, in the
/// style of the tables a paper's evaluation section reports.
class TablePrinter {
 public:
  /// \param title caption printed above the table.
  /// \param columns header cells.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Appends one row; must have exactly as many cells as there are columns.
  void AddRow(std::vector<std::string> cells);

  /// Renders the caption, header, separator and all rows.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV (header + rows) to `path`; best-effort.
  void WriteCsv(const std::string& path) const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits = 3);

/// Formats a ratio as a percentage string, e.g. 0.128 -> "12.8%".
std::string FormatPercent(double ratio, int digits = 1);

}  // namespace loom

#endif  // LOOM_COMMON_TABLE_H_
