#ifndef LOOM_COMMON_SMALL_VECTOR_H_
#define LOOM_COMMON_SMALL_VECTOR_H_

/// \file
/// `SmallVector<T, N>`: a contiguous vector with inline storage for the
/// first N elements.
///
/// The streaming hot path is dominated by very short sequences — a window
/// member's neighbour list, a tracked sub-graph's vertex/edge set, a
/// signature's factor runs, a trie node's children — whose median size is
/// far below a dozen. `std::vector` pays one heap allocation (and one cache
/// miss per traversal) for each of them; SmallVector keeps them in the
/// object itself and only spills to the heap past N.
///
/// Deliberately minimal: the subset of the `std::vector` interface the loom
/// call sites use, with the same iterator-invalidation rules (any growth
/// invalidates). Element type may be non-trivial; growth uses move
/// construction.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace loom {

template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  static_assert(N >= 1, "inline capacity must be at least 1");

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }

  template <typename InputIt>
  SmallVector(InputIt first, InputIt last) {
    assign(first, last);
  }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~SmallVector() { Destroy(); }

  template <typename InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* cbegin() const { return data_; }
  const T* cend() const { return data_ + size_; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T& operator[](size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& front() {
    assert(size_ > 0);
    return data_[0];
  }
  const T& front() const {
    assert(size_ > 0);
    return data_[0];
  }
  T& back() {
    assert(size_ > 0);
    return data_[size_ - 1];
  }
  const T& back() const {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    return data_[size_++];
  }

  void pop_back() {
    assert(size_ > 0);
    data_[--size_].~T();
  }

  /// Inserts `value` before `pos`; returns the iterator to the new element.
  T* insert(const T* pos, T value) {
    const size_t idx = static_cast<size_t>(pos - data_);
    assert(idx <= size_);
    if (size_ == capacity_) Grow(capacity_ * 2);
    if (idx == size_) {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(value));
    } else {
      // Shift the tail right by one: move-construct into the new last slot,
      // move-assign the rest, then drop the value into place.
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      for (size_t i = size_ - 1; i > idx; --i) {
        data_[i] = std::move(data_[i - 1]);
      }
      data_[idx] = std::move(value);
    }
    ++size_;
    return data_ + idx;
  }

  /// Removes the element at `pos`; returns the iterator past the removed one.
  T* erase(const T* pos) { return erase(pos, pos + 1); }

  /// Removes [first, last); returns the iterator past the removed range.
  T* erase(const T* first, const T* last) {
    const size_t lo = static_cast<size_t>(first - data_);
    const size_t hi = static_cast<size_t>(last - data_);
    assert(lo <= hi && hi <= size_);
    const size_t count = hi - lo;
    if (count == 0) return data_ + lo;
    for (size_t i = lo; i + count < size_; ++i) {
      data_[i] = std::move(data_[i + count]);
    }
    for (size_t i = size_ - count; i < size_; ++i) data_[i].~T();
    size_ -= count;
    return data_ + lo;
  }

  void resize(size_t n) {
    while (size_ > n) pop_back();
    reserve(n);
    while (size_ < n) emplace_back();
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  bool operator==(const SmallVector& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }
  bool operator!=(const SmallVector& other) const { return !(*this == other); }
  bool operator<(const SmallVector& other) const {
    return std::lexicographical_compare(begin(), end(), other.begin(),
                                        other.end());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  bool IsInline() const {
    return data_ == reinterpret_cast<const T*>(inline_storage_);
  }

  void Grow(size_t new_capacity) {
    new_capacity = std::max(new_capacity, size_t{N} * 2);
    T* fresh = static_cast<T*>(::operator new(new_capacity * sizeof(T),
                                              std::align_val_t{alignof(T)}));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    ReleaseHeap();
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void ReleaseHeap() {
    if (!IsInline()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
  }

  void Destroy() {
    clear();
    ReleaseHeap();
    data_ = InlineData();
    capacity_ = N;
  }

  /// Steals `other`'s heap buffer when it has one; element-wise move when it
  /// is inline. `other` is left empty (inline) either way. Precondition: this
  /// holds no elements and no heap buffer.
  void MoveFrom(SmallVector&& other) {
    if (other.IsInline()) {
      data_ = InlineData();
      capacity_ = N;
      for (size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlineData();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace loom

#endif  // LOOM_COMMON_SMALL_VECTOR_H_
