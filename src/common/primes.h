#ifndef LOOM_COMMON_PRIMES_H_
#define LOOM_COMMON_PRIMES_H_

/// \file
/// Prime tables and factor multisets — the arithmetic substrate of the
/// Song-et-al-style number-theoretic graph signatures (paper §4.3).
///
/// A graph signature is conceptually a large integer: the product of one
/// prime factor per graph feature. Real products overflow machine words
/// almost immediately, so loom represents a signature as the *multiset of
/// prime indices* instead (`FactorMultiset`). Multiplication becomes multiset
/// union and divisibility becomes multiset inclusion — exact at any size,
/// with no big-integer arithmetic.
///
/// The multiset is stored run-length encoded — sorted (factor, count) pairs
/// in a `SmallVector` — because real signatures repeat a handful of distinct
/// factors many times (one per vertex/edge of the same label): a multiply is
/// then usually a count increment instead of a memmove, and divisibility
/// walks runs instead of individual factors. A `ProductMod64` fingerprint is
/// maintained incrementally and used as an O(1) fast-reject in `Divides` and
/// `operator==` before any run comparison.

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/small_vector.h"

namespace loom {

/// Lazily grown table of primes (2, 3, 5, ...), shared process-wide.
///
/// Reads are lock-free: the table is published as an immutable snapshot
/// (pointer + count, both monotone), so the signature hot path — one Get per
/// multiply for the product fingerprint — never takes a lock once the index
/// has been materialised.
class PrimeTable {
 public:
  /// The `i`-th prime (0-based: Get(0) == 2). Grows the sieve on demand.
  static uint64_t Get(uint32_t i);

  /// Number of primes currently materialised (for tests).
  static size_t CachedCount();

 private:
  static uint64_t GrowAndGet(uint32_t i);
};

/// One run of a factor multiset: `count` occurrences of prime index `idx`.
struct FactorRun {
  uint32_t idx = 0;
  uint32_t count = 0;

  bool operator==(const FactorRun& other) const {
    return idx == other.idx && count == other.count;
  }
};

/// A multiset of prime indices, kept as sorted (index, count) runs.
///
/// Represents the integer `Π prime(idx)` over all contained indices without
/// ever computing that product exactly. Supports the three operations the
/// signature scheme needs: multiply by one factor, multiply by another
/// multiset, and exact divisibility.
class FactorMultiset {
 public:
  FactorMultiset() = default;

  /// Multiset with the given factors (need not be sorted).
  explicit FactorMultiset(std::vector<uint32_t> factors);

  /// Multiplies by `prime(idx)`: inserts one occurrence of `idx`.
  void MultiplyFactor(uint32_t idx);

  /// Multiplies by another multiset (multiset union with multiplicity).
  void Multiply(const FactorMultiset& other);

  /// Divides out one occurrence of `idx`; returns false if absent.
  bool DivideFactor(uint32_t idx);

  /// True iff `this` divides `other`, i.e. every factor of `this` occurs in
  /// `other` with at least the same multiplicity.
  bool Divides(const FactorMultiset& other) const;

  bool operator==(const FactorMultiset& other) const {
    // The fingerprint rejects nearly every unequal pair in one compare.
    return product_ == other.product_ && num_factors_ == other.num_factors_ &&
           runs_ == other.runs_;
  }

  /// Number of prime factors with multiplicity (Ω of the integer).
  size_t NumFactors() const { return num_factors_; }

  bool Empty() const { return num_factors_ == 0; }

  /// Stable 64-bit hash of the multiset (equal multisets hash equal).
  /// Maintained incrementally as a commutative sum of per-factor mixes, so
  /// this is O(1) — the trie's per-lookup hash is free.
  uint64_t Hash() const { return 0xcbf29ce484222325ull + hash_sum_; }

  /// The numeric product modulo 2^64 — a fast fingerprint maintained
  /// incrementally; collisions possible, equality of multisets is
  /// authoritative.
  uint64_t ProductMod64() const { return product_; }

  /// Sorted factor indices (ascending, with repetition), expanded from the
  /// run-length representation. For tests and diagnostics.
  std::vector<uint32_t> factors() const;

  /// The run-length representation itself (sorted by index).
  const SmallVector<FactorRun, 8>& runs() const { return runs_; }

  /// Renders e.g. "{2^1 * 5^2}" using prime values, for diagnostics.
  std::string ToString() const;

 private:
  SmallVector<FactorRun, 8> runs_;
  size_t num_factors_ = 0;
  uint64_t product_ = 1;
  /// Commutative hash state: Σ MixBits(idx) over factors with multiplicity.
  /// Addition makes it order-free and exactly invertible on divide.
  uint64_t hash_sum_ = 0;
};

}  // namespace loom

#endif  // LOOM_COMMON_PRIMES_H_
