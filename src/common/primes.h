#ifndef LOOM_COMMON_PRIMES_H_
#define LOOM_COMMON_PRIMES_H_

/// \file
/// Prime tables and factor multisets — the arithmetic substrate of the
/// Song-et-al-style number-theoretic graph signatures (paper §4.3).
///
/// A graph signature is conceptually a large integer: the product of one
/// prime factor per graph feature. Real products overflow machine words
/// almost immediately, so loom represents a signature as the *multiset of
/// prime indices* instead (`FactorMultiset`). Multiplication becomes multiset
/// union and divisibility becomes multiset inclusion — exact at any size,
/// with no big-integer arithmetic.

#include <cstdint>
#include <string>
#include <vector>

namespace loom {

/// Lazily grown table of primes (2, 3, 5, ...), shared process-wide.
class PrimeTable {
 public:
  /// The `i`-th prime (0-based: Get(0) == 2). Grows the sieve on demand.
  static uint64_t Get(uint32_t i);

  /// Number of primes currently materialised (for tests).
  static size_t CachedCount();

 private:
  static void EnsureCount(size_t count);
};

/// A multiset of prime indices, kept sorted ascending.
///
/// Represents the integer `Π prime(idx)` over all contained indices without
/// ever computing that product exactly. Supports the three operations the
/// signature scheme needs: multiply by one factor, multiply by another
/// multiset, and exact divisibility.
class FactorMultiset {
 public:
  FactorMultiset() = default;

  /// Multiset with the given factors (need not be sorted).
  explicit FactorMultiset(std::vector<uint32_t> factors);

  /// Multiplies by `prime(idx)`: inserts one occurrence of `idx`.
  void MultiplyFactor(uint32_t idx);

  /// Multiplies by another multiset (multiset union with multiplicity).
  void Multiply(const FactorMultiset& other);

  /// Divides out one occurrence of `idx`; returns false if absent.
  bool DivideFactor(uint32_t idx);

  /// True iff `this` divides `other`, i.e. every factor of `this` occurs in
  /// `other` with at least the same multiplicity.
  bool Divides(const FactorMultiset& other) const;

  bool operator==(const FactorMultiset& other) const {
    return factors_ == other.factors_;
  }

  /// Number of prime factors with multiplicity (Ω of the integer).
  size_t NumFactors() const { return factors_.size(); }

  bool Empty() const { return factors_.empty(); }

  /// Stable 64-bit hash of the multiset (equal multisets hash equal).
  uint64_t Hash() const;

  /// The numeric product modulo 2^64 — a fast fingerprint used alongside
  /// `Hash()`; collisions possible, equality of multisets is authoritative.
  uint64_t ProductMod64() const;

  /// Sorted factor indices (ascending, with repetition).
  const std::vector<uint32_t>& factors() const { return factors_; }

  /// Renders e.g. "{2^1 * 5^2}" using prime values, for diagnostics.
  std::string ToString() const;

 private:
  std::vector<uint32_t> factors_;
};

}  // namespace loom

#endif  // LOOM_COMMON_PRIMES_H_
