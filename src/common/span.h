#ifndef LOOM_COMMON_SPAN_H_
#define LOOM_COMMON_SPAN_H_

/// \file
/// Minimal non-owning view over a contiguous element range (a C++17 stand-in
/// for std::span). The streaming data path passes arrival neighbourhoods as
/// `Span<const VertexId>` so the same partitioner code consumes vectors,
/// arena-backed SmallVectors and mmap-backed file records without copying.
/// A Span never owns storage: it is valid only while the viewed range lives,
/// which for cursor-produced views means "until the next cursor mutation"
/// (see stream/arrival_source.h).

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace loom {

/// Non-owning pointer+length view; trivially copyable, no lifetime tracking.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  /// Views a whole vector (enables implicit conversion at call sites that
  /// used to take `const std::vector<T>&`). The vector must outlive the span.
  template <typename Alloc>
  constexpr Span(  // NOLINT(runtime/explicit): intentional implicit view.
      const std::vector<typename std::remove_const<T>::type, Alloc>& v)
      : data_(v.data()), size_(v.size()) {}

  /// Views any contiguous container exposing data()/size() over mutable or
  /// matching-const elements (SmallVector, std::array, another Span).
  template <typename Container,
            typename = decltype(static_cast<T*>(
                static_cast<Container*>(nullptr)->data()))>
  constexpr Span(  // NOLINT(runtime/explicit): intentional implicit view.
      Container& c)
      : data_(c.data()), size_(c.size()) {}

  /// Views a braced list (`Push(v, 0, {1, 2})`). Only available for spans of
  /// const elements; the backing array lives until the end of the full
  /// expression, so such a span must not be stored past the call. That
  /// borrow-until-end-of-expression contract is exactly what GCC's
  /// -Winit-list-lifetime flags, hence the targeted suppression.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  template <typename U = T,
            typename = typename std::enable_if<std::is_const<U>::value>::type>
  constexpr Span(  // NOLINT(runtime/explicit): intentional implicit view.
      std::initializer_list<typename std::remove_const<T>::type> il)
      : data_(il.begin()), size_(il.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  /// Sub-view of `count` elements starting at `offset`; the caller is
  /// responsible for `offset + count <= size()`.
  constexpr Span subspan(size_t offset, size_t count) const {
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace loom

#endif  // LOOM_COMMON_SPAN_H_
