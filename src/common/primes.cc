#include "common/primes.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "common/hash.h"

namespace loom {
namespace {

std::vector<uint64_t>& Cache() {
  static std::vector<uint64_t> cache = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29};
  return cache;
}

std::mutex& CacheMutex() {
  static std::mutex mu;
  return mu;
}

bool IsPrimeAgainst(uint64_t candidate, const std::vector<uint64_t>& primes) {
  for (uint64_t p : primes) {
    if (p * p > candidate) break;
    if (candidate % p == 0) return false;
  }
  return true;
}

}  // namespace

uint64_t PrimeTable::Get(uint32_t i) {
  std::lock_guard<std::mutex> lock(CacheMutex());
  auto& cache = Cache();
  while (cache.size() <= i) {
    uint64_t candidate = cache.back() + 2;
    while (!IsPrimeAgainst(candidate, cache)) candidate += 2;
    cache.push_back(candidate);
  }
  return cache[i];
}

size_t PrimeTable::CachedCount() {
  std::lock_guard<std::mutex> lock(CacheMutex());
  return Cache().size();
}

FactorMultiset::FactorMultiset(std::vector<uint32_t> factors)
    : factors_(std::move(factors)) {
  std::sort(factors_.begin(), factors_.end());
}

void FactorMultiset::MultiplyFactor(uint32_t idx) {
  const auto pos = std::lower_bound(factors_.begin(), factors_.end(), idx);
  factors_.insert(pos, idx);
}

void FactorMultiset::Multiply(const FactorMultiset& other) {
  std::vector<uint32_t> merged;
  merged.reserve(factors_.size() + other.factors_.size());
  std::merge(factors_.begin(), factors_.end(), other.factors_.begin(),
             other.factors_.end(), std::back_inserter(merged));
  factors_ = std::move(merged);
}

bool FactorMultiset::DivideFactor(uint32_t idx) {
  const auto pos = std::lower_bound(factors_.begin(), factors_.end(), idx);
  if (pos == factors_.end() || *pos != idx) return false;
  factors_.erase(pos);
  return true;
}

bool FactorMultiset::Divides(const FactorMultiset& other) const {
  if (factors_.size() > other.factors_.size()) return false;
  // Both sorted: a single merge walk checks sub-multiset inclusion.
  size_t j = 0;
  for (const uint32_t f : factors_) {
    while (j < other.factors_.size() && other.factors_[j] < f) ++j;
    if (j == other.factors_.size() || other.factors_[j] != f) return false;
    ++j;
  }
  return true;
}

uint64_t FactorMultiset::Hash() const {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const uint32_t f : factors_) h = HashCombine(h, f);
  return h;
}

uint64_t FactorMultiset::ProductMod64() const {
  uint64_t product = 1;
  for (const uint32_t f : factors_) product *= PrimeTable::Get(f);
  return product;
}

std::string FactorMultiset::ToString() const {
  std::string out = "{";
  size_t i = 0;
  bool first = true;
  while (i < factors_.size()) {
    size_t j = i;
    while (j < factors_.size() && factors_[j] == factors_[i]) ++j;
    if (!first) out += " * ";
    first = false;
    out += std::to_string(PrimeTable::Get(factors_[i]));
    if (j - i > 1) {
      out += "^";
      out += std::to_string(j - i);
    }
    i = j;
  }
  out += "}";
  return out;
}

}  // namespace loom
