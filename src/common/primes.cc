#include "common/primes.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.h"

namespace loom {
namespace {

// The published snapshot: readers load `count` then `data`. Both are
// monotone (the table only grows, and every published array contains every
// previously published prefix), so any interleaving of the two loads yields
// a data pointer valid for the loaded count.
std::atomic<size_t> g_prime_count{0};
std::atomic<const uint64_t*> g_prime_data{nullptr};

std::mutex& GrowMutex() {
  static std::mutex mu;
  return mu;
}

// Retains every published array for the process lifetime: a reader may hold
// a stale pointer arbitrarily long, and the arrays are tiny.
std::vector<std::unique_ptr<uint64_t[]>>& Published() {
  static std::vector<std::unique_ptr<uint64_t[]>> arrays;
  return arrays;
}

bool IsPrimeAgainst(uint64_t candidate, const uint64_t* primes, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const uint64_t p = primes[i];
    if (p * p > candidate) break;
    if (candidate % p == 0) return false;
  }
  return true;
}

}  // namespace

uint64_t PrimeTable::Get(uint32_t i) {
  const size_t count = g_prime_count.load(std::memory_order_acquire);
  if (i < count) {
    return g_prime_data.load(std::memory_order_acquire)[i];
  }
  return GrowAndGet(i);
}

uint64_t PrimeTable::GrowAndGet(uint32_t i) {
  std::lock_guard<std::mutex> lock(GrowMutex());
  size_t count = g_prime_count.load(std::memory_order_acquire);
  const uint64_t* data = g_prime_data.load(std::memory_order_acquire);
  if (i < count) return data[i];  // another thread grew meanwhile

  // Build a larger array (capacity doubling, never below the request).
  size_t capacity = std::max<size_t>(64, count * 2);
  while (capacity <= i) capacity *= 2;
  auto fresh = std::make_unique<uint64_t[]>(capacity);
  if (count > 0) std::copy(data, data + count, fresh.get());
  if (count == 0) {
    fresh[0] = 2;
    fresh[1] = 3;
    count = 2;
  }
  while (count <= i) {
    uint64_t candidate = fresh[count - 1] + 2;
    while (!IsPrimeAgainst(candidate, fresh.get(), count)) candidate += 2;
    fresh[count++] = candidate;
  }

  const uint64_t result = fresh[i];
  g_prime_data.store(fresh.get(), std::memory_order_release);
  g_prime_count.store(count, std::memory_order_release);
  Published().push_back(std::move(fresh));
  return result;
}

size_t PrimeTable::CachedCount() {
  return g_prime_count.load(std::memory_order_acquire);
}

FactorMultiset::FactorMultiset(std::vector<uint32_t> factors) {
  std::sort(factors.begin(), factors.end());
  for (const uint32_t f : factors) MultiplyFactor(f);
}

void FactorMultiset::MultiplyFactor(uint32_t idx) {
  const auto pos = std::lower_bound(
      runs_.begin(), runs_.end(), idx,
      [](const FactorRun& r, uint32_t i) { return r.idx < i; });
  if (pos != runs_.end() && pos->idx == idx) {
    ++pos->count;
  } else {
    runs_.insert(pos, FactorRun{idx, 1});
  }
  ++num_factors_;
  product_ *= PrimeTable::Get(idx);
  hash_sum_ += MixBits(idx);
}

void FactorMultiset::Multiply(const FactorMultiset& other) {
  SmallVector<FactorRun, 8> merged;
  merged.reserve(runs_.size() + other.runs_.size());
  const FactorRun* a = runs_.begin();
  const FactorRun* b = other.runs_.begin();
  while (a != runs_.end() && b != other.runs_.end()) {
    if (a->idx < b->idx) {
      merged.push_back(*a++);
    } else if (b->idx < a->idx) {
      merged.push_back(*b++);
    } else {
      merged.push_back(FactorRun{a->idx, a->count + b->count});
      ++a;
      ++b;
    }
  }
  while (a != runs_.end()) merged.push_back(*a++);
  while (b != other.runs_.end()) merged.push_back(*b++);
  runs_ = std::move(merged);
  num_factors_ += other.num_factors_;
  product_ *= other.product_;
  hash_sum_ += other.hash_sum_;
}

bool FactorMultiset::DivideFactor(uint32_t idx) {
  const auto pos = std::lower_bound(
      runs_.begin(), runs_.end(), idx,
      [](const FactorRun& r, uint32_t i) { return r.idx < i; });
  if (pos == runs_.end() || pos->idx != idx) return false;
  if (--pos->count == 0) runs_.erase(pos);
  --num_factors_;
  hash_sum_ -= MixBits(idx);
  // 2^64 is not a field: even primes have no modular inverse, so the
  // fingerprint is rebuilt. Division is cold (tests / diagnostics only).
  product_ = 1;
  for (const FactorRun& r : runs_) {
    for (uint32_t c = 0; c < r.count; ++c) product_ *= PrimeTable::Get(r.idx);
  }
  return true;
}

bool FactorMultiset::Divides(const FactorMultiset& other) const {
  if (num_factors_ > other.num_factors_) return false;
  if (num_factors_ == other.num_factors_) {
    // Equal sizes: divides iff equal; the fingerprint rejects in O(1).
    if (product_ != other.product_) return false;
    return runs_ == other.runs_;
  }
  // Proper sub-multiset: every run must be covered with at least the same
  // multiplicity. Both run lists sorted: single merge walk.
  const FactorRun* b = other.runs_.begin();
  for (const FactorRun& a : runs_) {
    while (b != other.runs_.end() && b->idx < a.idx) ++b;
    if (b == other.runs_.end() || b->idx != a.idx || b->count < a.count) {
      return false;
    }
    ++b;
  }
  return true;
}

std::vector<uint32_t> FactorMultiset::factors() const {
  std::vector<uint32_t> out;
  out.reserve(num_factors_);
  for (const FactorRun& r : runs_) {
    for (uint32_t c = 0; c < r.count; ++c) out.push_back(r.idx);
  }
  return out;
}

std::string FactorMultiset::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const FactorRun& r : runs_) {
    if (!first) out += " * ";
    first = false;
    out += std::to_string(PrimeTable::Get(r.idx));
    if (r.count > 1) {
      out += "^";
      out += std::to_string(r.count);
    }
  }
  out += "}";
  return out;
}

}  // namespace loom
