#ifndef LOOM_COMMON_STATUS_H_
#define LOOM_COMMON_STATUS_H_

/// \file
/// Error-handling primitives used throughout loom.
///
/// Library code never throws on its normal paths; fallible operations return
/// a `loom::Status` (or `loom::Result<T>`, see result.h), following the
/// RocksDB / Apache Arrow idiom for database-grade C++.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace loom {

/// Machine-readable category of a `Status`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCapacityExceeded = 5,
  kFailedPrecondition = 6,
  kIOError = 7,
  kInternal = 8,
};

/// Human-readable name for a status code (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// diagnostic message otherwise. Use the factory functions
/// (`Status::InvalidArgument(...)` etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Returns an OK status; spelled out for readability at call sites.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "<Code>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace loom

/// Propagates an error `Status` to the caller; evaluates `expr` once.
#define LOOM_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::loom::Status _loom_status = (expr);     \
    if (!_loom_status.ok()) return _loom_status; \
  } while (false)

#endif  // LOOM_COMMON_STATUS_H_
