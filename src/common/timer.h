#ifndef LOOM_COMMON_TIMER_H_
#define LOOM_COMMON_TIMER_H_

/// \file
/// Wall-clock and per-thread CPU timing for benchmarks and experiment
/// harnesses, plus the process peak-RSS probe the bench reports record.

#include <chrono>
#include <cstdint>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace loom {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU stopwatch: seconds this thread actually executed,
/// independent of time-slicing against other threads (POSIX
/// CLOCK_THREAD_CPUTIME_ID; wall-clock fallback elsewhere). The sharded
/// restream benches report per-shard compute with it, so the recorded
/// critical path — setup + slowest shard + merge — models the pass latency
/// on a machine with one free core per shard even when the bench machine
/// has fewer.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Now(); }

  /// CPU seconds this thread consumed since construction or `Restart()`.
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

/// Peak resident-set size of this process so far, in bytes (getrusage
/// ru_maxrss; 0 where unavailable). A high-water mark, not a current
/// reading — it never decreases, so out-of-core benches that must prove
/// O(V) memory run their large section FIRST, before any in-memory section
/// can raise the mark. Linux reports KiB, macOS bytes; both are normalised
/// to bytes here.
inline uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<uint64_t>(usage.ru_maxrss);
#else
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

}  // namespace loom

#endif  // LOOM_COMMON_TIMER_H_
