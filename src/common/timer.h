#ifndef LOOM_COMMON_TIMER_H_
#define LOOM_COMMON_TIMER_H_

/// \file
/// Wall-clock timing for benchmarks and experiment harnesses.

#include <chrono>

namespace loom {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace loom

#endif  // LOOM_COMMON_TIMER_H_
