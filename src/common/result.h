#ifndef LOOM_COMMON_RESULT_H_
#define LOOM_COMMON_RESULT_H_

/// \file
/// `Result<T>`: value-or-Status, the return type of fallible producers.

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace loom {

/// Holds either a successfully produced `T` or the `Status` explaining why
/// production failed. Mirrors `arrow::Result` / `absl::StatusOr`.
///
/// Invariant: when holding a Status, the status is never OK.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status");
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Access to the held value; must only be called when `ok()`.
  const T& value() const& {
    assert(ok() && "Result::value() on error");
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok() && "Result::value() on error");
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok() && "Result::value() on error");
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace loom

/// Assigns the value of a `Result`-returning expression to `lhs`, or
/// propagates the error to the caller.
#define LOOM_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  LOOM_ASSIGN_OR_RETURN_IMPL_(                            \
      LOOM_RESULT_CONCAT_(_loom_result_, __LINE__), lhs, rexpr)

#define LOOM_RESULT_CONCAT_INNER_(a, b) a##b
#define LOOM_RESULT_CONCAT_(a, b) LOOM_RESULT_CONCAT_INNER_(a, b)
#define LOOM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // LOOM_COMMON_RESULT_H_
