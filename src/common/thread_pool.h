#ifndef LOOM_COMMON_THREAD_POOL_H_
#define LOOM_COMMON_THREAD_POOL_H_

/// \file
/// Fixed-size worker pool for share-nothing parallel stages (the sharded
/// restream engine). Design goals, in order:
///
///  1. *Determinism of results.* Tasks are handed to workers FIFO in
///     submission order, but nothing about the pool may leak scheduling
///     into results: callers submit independent tasks (each owning its
///     mutable state, sharing only read-only inputs) and join them in
///     submission order via the returned futures. Everything the sharded
///     restreamer computes is a pure function of its inputs, never of the
///     interleaving.
///  2. *Bounded resources.* The worker count is fixed at construction —
///     one pool per parallel pass, sized to the shard count — and the
///     destructor drains outstanding tasks and joins every worker, so a
///     pool can never outlive the state its tasks reference.
///  3. *No dropped errors.* A task that throws stores the exception in its
///     future; `Submit` + `future.get()` rethrows it on the joining thread
///     (ParallelFor does this for every index).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace loom {

/// Fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one) that run until
  /// destruction.
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Drains already-submitted tasks, then joins every worker. Callers that
  /// need task results (or exceptions) must `get()` the futures first.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues `fn` and returns the future of its result. Tasks start in
  /// submission order (FIFO handoff); an exception thrown by `fn` is
  /// delivered through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping, queue drained
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every `i` in `[0, n)` on `pool` and blocks until all
/// complete. Futures are joined in index order, so the first failing index's
/// exception is the one rethrown.
template <typename F>
void ParallelFor(ThreadPool& pool, size_t n, F&& fn) {
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    done.push_back(pool.Submit([&fn, i] { fn(i); }));
  }
  for (std::future<void>& f : done) f.get();
}

}  // namespace loom

#endif  // LOOM_COMMON_THREAD_POOL_H_
