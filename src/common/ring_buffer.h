#ifndef LOOM_COMMON_RING_BUFFER_H_
#define LOOM_COMMON_RING_BUFFER_H_

/// \file
/// `RingBuffer<T>`: a flat FIFO over a power-of-two circular array.
///
/// Replaces `std::deque` in the stream window's age queue: a deque allocates
/// and frees fixed-size blocks as the window churns, while the ring buffer
/// reaches steady state after one allocation and then never touches the
/// allocator again. Only the queue operations the window needs: push_back,
/// front, pop_front — all O(1), with push_back amortised O(1) across
/// capacity doublings. Invalidation: a push_back that grows the array
/// invalidates every reference into the buffer (like vector, unlike deque);
/// pop_front never does.

#include <cassert>
#include <cstddef>
#include <vector>

namespace loom {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void push_back(const T& value) {
    if (size_ == buf_.size()) Grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = value;
    ++size_;
  }

  const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  /// Calls `fn(element)` for each queued element, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < size_; ++i) {
      fn(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
  }

 private:
  void Grow() {
    const size_t new_capacity = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> fresh(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      fresh[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(fresh);
    head_ = 0;
  }

  /// Power-of-two sized storage (empty until the first push).
  std::vector<T> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace loom

#endif  // LOOM_COMMON_RING_BUFFER_H_
