#ifndef LOOM_COMMON_RNG_H_
#define LOOM_COMMON_RNG_H_

/// \file
/// Deterministic, seedable randomness for generators, orderings and sampling.
///
/// Every stochastic component in loom takes an explicit `Rng&` so that graphs,
/// streams and experiments are exactly reproducible from a seed. The engine is
/// xoshiro256**, seeded via SplitMix64 (Blackman & Vigna), which is both fast
/// and statistically strong — `std::mt19937` is avoided for its size and its
/// platform-dependent seeding ergonomics.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace loom {

/// xoshiro256** pseudo-random engine. Satisfies
/// `std::uniform_random_bit_generator`.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds the engine deterministically.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) word = SplitMix64(&x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next 64 random bits.
  result_type operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in the closed interval [lo, hi].
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    const uint64_t range = hi - lo + 1;
    if (range == 0) return (*this)();  // full 64-bit range
    // Lemire-style rejection-free-enough bounded draw with debiasing.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < range) {
      const uint64_t threshold = (0 - range) % range;
      while (l < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<uint64_t>(m);
      }
    }
    return lo + static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(UniformInt(0, i));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Uniformly random element of a non-empty vector.
  template <typename T>
  const T& PickOne(const std::vector<T>& items) {
    assert(!items.empty());
    return items[UniformInt(0, items.size() - 1)];
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s —
/// the usual Zipf / power-law skew for labels and query frequencies.
class ZipfSampler {
 public:
  /// \param n number of distinct ranks; must be >= 1.
  /// \param s skew exponent; 0 = uniform, larger = more skewed.
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability mass of rank `r`.
  double Probability(size_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace loom

#endif  // LOOM_COMMON_RNG_H_
