#ifndef LOOM_COMMON_FLAT_MAP_H_
#define LOOM_COMMON_FLAT_MAP_H_

/// \file
/// `FlatMap<K, V>`: an open-addressing hash map over integer keys, built for
/// the streaming hot path.
///
/// `std::unordered_map` allocates one node per entry and chases a pointer per
/// lookup; the per-arrival containers (window members, matcher indices,
/// signature buckets) churn through it millions of times per stream. FlatMap
/// keeps entries in one contiguous slot array:
///
///  * linear probing over a power-of-two capacity (mask, no modulo);
///  * tombstone-free erase via backward shift, so probe chains never rot
///    under the insert/erase churn of a sliding window;
///  * keys hashed through a SplitMix64 finalizer, so dense ids spread.
///
/// The interface is the subset of `std::unordered_map` the call sites use
/// (find / emplace / operator[] / erase / count / iteration). Iteration
/// order is slot order — arbitrary, like the container it replaces; any
/// rehash invalidates iterators and references (stricter than
/// `std::unordered_map`, which keeps references stable — do not hold a
/// reference across an insert).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "common/hash.h"

namespace loom {

/// Default FlatMap hash: SplitMix64 finalizer over the integer key.
template <typename K>
struct FlatMapIntHash {
  uint64_t operator()(K key) const {
    return MixBits(static_cast<uint64_t>(key));
  }
};

template <typename K, typename V, typename Hash = FlatMapIntHash<K>>
class FlatMap {
 public:
  /// Occupied-slot payload; `first`/`second` mirror `std::pair` so call
  /// sites (and structured bindings) read identically to unordered_map.
  struct Slot {
    K first;
    V second;
  };
  using value_type = Slot;

  FlatMap() = default;

  FlatMap(const FlatMap& other) { CopyFrom(other); }

  FlatMap(FlatMap&& other) noexcept
      : used_(std::move(other.used_)),
        slots_(other.slots_),
        capacity_(other.capacity_),
        size_(other.size_) {
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
  }

  FlatMap& operator=(const FlatMap& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }

  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      Destroy();
      used_ = std::move(other.used_);
      slots_ = other.slots_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.slots_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  ~FlatMap() { Destroy(); }

  template <bool Const>
  class Iter {
   public:
    using MapPtr = std::conditional_t<Const, const FlatMap*, FlatMap*>;
    using SlotRef = std::conditional_t<Const, const Slot&, Slot&>;
    using SlotPtr = std::conditional_t<Const, const Slot*, Slot*>;

    Iter(MapPtr map, size_t idx) : map_(map), idx_(idx) { SkipEmpty(); }

    SlotRef operator*() const { return map_->slots_[idx_]; }
    SlotPtr operator->() const { return &map_->slots_[idx_]; }

    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }

    bool operator==(const Iter& other) const { return idx_ == other.idx_; }
    bool operator!=(const Iter& other) const { return idx_ != other.idx_; }

   private:
    friend class FlatMap;
    void SkipEmpty() {
      while (idx_ < map_->capacity_ && !map_->used_[idx_]) ++idx_;
    }
    MapPtr map_;
    size_t idx_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, capacity_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, capacity_); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  iterator find(const K& key) { return iterator(this, FindIndex(key)); }
  const_iterator find(const K& key) const {
    return const_iterator(this, FindIndex(key));
  }

  size_t count(const K& key) const {
    return FindIndex(key) == capacity_ ? 0 : 1;
  }

  /// Inserts `{key, V(args...)}` if absent. Returns {iterator, inserted}.
  /// A no-op emplace (key already present) never rehashes, so it keeps
  /// iterators and references valid like a plain find.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    const size_t found = FindIndex(key);
    if (found != capacity_) return {iterator(this, found), false};
    ReserveForInsert();
    size_t i = IndexFor(key);
    while (used_[i]) i = (i + 1) & Mask();  // key known absent
    ::new (static_cast<void*>(&slots_[i]))
        Slot{key, V(std::forward<Args>(args)...)};
    used_[i] = 1;
    ++size_;
    return {iterator(this, i), true};
  }

  V& operator[](const K& key) { return emplace(key).first->second; }

  /// Removes `key` if present; returns the number of entries removed (0/1).
  size_t erase(const K& key) {
    const size_t i = FindIndex(key);
    if (i == capacity_) return 0;
    EraseSlot(i);
    return 1;
  }

  void erase(const_iterator pos) {
    assert(pos.idx_ < capacity_ && used_[pos.idx_]);
    EraseSlot(pos.idx_);
  }
  void erase(iterator pos) {
    assert(pos.idx_ < capacity_ && used_[pos.idx_]);
    EraseSlot(pos.idx_);
  }

  void clear() {
    for (size_t i = 0; i < capacity_; ++i) {
      if (used_[i]) {
        slots_[i].~Slot();
        used_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Pre-sizes the table for at least `n` entries without rehashing.
  void reserve(size_t n) {
    size_t needed = 16;
    while (needed * 3 < n * 4) needed *= 2;  // keep load factor <= 0.75
    if (needed > capacity_) Rehash(needed);
  }

 private:
  size_t Mask() const { return capacity_ - 1; }
  size_t IndexFor(const K& key) const { return Hash{}(key) & Mask(); }

  /// Slot of `key`, or `capacity_` when absent (== end sentinel).
  size_t FindIndex(const K& key) const {
    if (capacity_ == 0) return 0;
    size_t i = IndexFor(key);
    while (used_[i]) {
      if (slots_[i].first == key) return i;
      i = (i + 1) & Mask();
    }
    return capacity_;
  }

  void ReserveForInsert() {
    if (capacity_ == 0) {
      Rehash(16);
    } else if ((size_ + 1) * 4 > capacity_ * 3) {
      Rehash(capacity_ * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::unique_ptr<uint8_t[]> old_used = std::move(used_);
    Slot* old_slots = slots_;
    const size_t old_capacity = capacity_;

    used_ = std::make_unique<uint8_t[]>(new_capacity);
    for (size_t i = 0; i < new_capacity; ++i) used_[i] = 0;
    slots_ = static_cast<Slot*>(::operator new(
        new_capacity * sizeof(Slot), std::align_val_t{alignof(Slot)}));
    capacity_ = new_capacity;

    for (size_t i = 0; i < old_capacity; ++i) {
      if (!old_used[i]) continue;
      size_t j = IndexFor(old_slots[i].first);
      while (used_[j]) j = (j + 1) & Mask();
      ::new (static_cast<void*>(&slots_[j])) Slot(std::move(old_slots[i]));
      used_[j] = 1;
      old_slots[i].~Slot();
    }
    if (old_slots != nullptr) {
      ::operator delete(old_slots, std::align_val_t{alignof(Slot)});
    }
  }

  /// Backward-shift deletion: no tombstones, so probe chains stay exactly as
  /// long as the live entries require.
  void EraseSlot(size_t i) {
    slots_[i].~Slot();
    used_[i] = 0;
    --size_;
    size_t j = i;
    while (true) {
      j = (j + 1) & Mask();
      if (!used_[j]) return;
      const size_t home = IndexFor(slots_[j].first);
      // The entry at j may move into the hole at i iff its home lies
      // cyclically at or before i — i.e. its probe distance spans the hole.
      if (((j - home) & Mask()) >= ((j - i) & Mask())) {
        ::new (static_cast<void*>(&slots_[i])) Slot(std::move(slots_[j]));
        used_[i] = 1;
        slots_[j].~Slot();
        used_[j] = 0;
        i = j;
      }
    }
  }

  void CopyFrom(const FlatMap& other) {
    if (other.size_ == 0) return;
    reserve(other.size_);
    for (const Slot& s : other) emplace(s.first, s.second);
  }

  void Destroy() {
    clear();
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(Slot)});
      slots_ = nullptr;
    }
    used_.reset();
    capacity_ = 0;
  }

  std::unique_ptr<uint8_t[]> used_;
  Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace loom

#endif  // LOOM_COMMON_FLAT_MAP_H_
