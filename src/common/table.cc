#include "common/table.h"

#include <cassert>
#include <cstdio>
#include <fstream>

namespace loom {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(columns_);
  os << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace loom
