#ifndef LOOM_COMMON_HASH_H_
#define LOOM_COMMON_HASH_H_

/// \file
/// Small hashing helpers shared across modules.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace loom {

/// Mixes `value` into `seed` (64-bit variant of boost::hash_combine).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Golden-ratio based mixing; the shifts decorrelate low/high bits.
  seed ^= value + 0x9E3779B97F4A7C15ull + (seed << 12) + (seed >> 4);
  seed *= 0xFF51AFD7ED558CCDull;
  seed ^= seed >> 33;
  return seed;
}

/// FNV-1a over raw bytes; stable across platforms.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Finalizing mixer (SplitMix64); turns a counter/id into spread bits.
inline uint64_t MixBits(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Hash functor for `std::pair` keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<size_t>(
        HashCombine(MixBits(static_cast<uint64_t>(p.first)),
                    static_cast<uint64_t>(p.second)));
  }
};

}  // namespace loom

#endif  // LOOM_COMMON_HASH_H_
