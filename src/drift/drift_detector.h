#ifndef LOOM_DRIFT_DRIFT_DETECTOR_H_
#define LOOM_DRIFT_DRIFT_DETECTOR_H_

/// \file
/// Workload-drift detection: decides *when* the live partitioning has gone
/// stale. The paper's workload-aware design (abstract: "partitioned with
/// prior knowledge of an expected workload") only pays off online if the
/// system reacts when that expectation breaks, so the detector compares the
/// motif-support distribution the live LOOM assignment was built for (the
/// reference) against periodic `WorkloadTracker` distribution snapshots —
/// by total-variation (L1) and Jensen–Shannon distance over canonical motif
/// classes — and optionally watches for edge-cut degradation reported by
/// the serving layer. Thresholds are pluggable and firing is
/// hysteresis-gated (a consecutive-observation streak to fire, a lower
/// clear threshold to re-arm), so an oscillating workload cannot thrash
/// the re-partitioner. Complexity: one Observe is O(|reference| + |current|)
/// (a sorted merge walk); no allocation beyond the caller's distributions.

#include <cstdint>

#include "tpstry/workload_tracker.h"

namespace loom {

/// Which distance drives the trigger. Both are always computed and reported
/// in the signal; only the selected one is compared against the thresholds.
enum class DriftMetric {
  /// Total-variation distance: 0.5 * sum |p_i - q_i|, in [0, 1]. Linear and
  /// easy to reason about, but insensitive to *which* mass moved.
  kL1,
  /// Jensen–Shannon distance (sqrt of the base-2 JS divergence), in [0, 1].
  /// Symmetric, finite on disjoint supports, and emphasises mass appearing
  /// where the reference had none — exactly what a motif-mix switch does.
  kJensenShannon,
};

/// Detection thresholds and hysteresis. Defaults suit normalised motif
/// distributions from a tracker window of O(100) queries.
struct DriftDetectorOptions {
  DriftMetric metric = DriftMetric::kJensenShannon;
  /// Fire when the selected distance reaches this value...
  double fire_threshold = 0.15;
  /// ...for this many consecutive observations (debounces sampling noise).
  uint32_t min_consecutive = 2;
  /// After firing, stay disarmed until the distance falls back below this
  /// (must be <= fire_threshold; the gap is the hysteresis band). A rebase
  /// re-arms immediately — the reaction itself closes the loop.
  double clear_threshold = 0.05;
  /// Also fire when observed_edge_cut >= factor * baseline edge cut
  /// (the partitioning itself degrading, e.g. under graph growth). <= 0
  /// disables the cut trigger.
  double cut_degradation_factor = 0.0;
};

/// One observation's worth of drift evidence.
struct DriftSignal {
  /// Total-variation distance to the reference.
  double l1 = 0.0;
  /// Jensen–Shannon distance to the reference.
  double js = 0.0;
  /// The distance selected by `DriftDetectorOptions::metric`.
  double distance = 0.0;
  /// observed / baseline edge cut (0 when either side is unknown).
  double cut_ratio = 0.0;
  /// distance >= fire_threshold on this observation.
  bool workload_drifted = false;
  /// Cut trigger tripped on this observation.
  bool cut_degraded = false;
  /// Hysteresis-gated verdict: drift confirmed, react now. At most once per
  /// arm/fire cycle.
  bool fired = false;
};

/// Compares motif-support distributions against a reference with
/// hysteresis. Not thread-safe; one detector per controlled partitioning.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorOptions& options);

  /// Installs the distribution the live assignment was built for and
  /// re-arms. Typically `MotifDistributionOf(loom.Trie())`.
  void SetReference(MotifDistribution reference);

  /// Baseline for the cut-degradation trigger (ignored while <= 0).
  void SetBaselineEdgeCut(double edge_cut_fraction);

  /// Scores one periodic observation (e.g. a tracker's
  /// `SupportDistribution()`); pass the currently observed edge-cut
  /// fraction when the caller tracks it, or a negative value to skip the
  /// cut trigger this tick. Updates the hysteresis state.
  DriftSignal Observe(const MotifDistribution& current,
                      double observed_edge_cut = -1.0);

  /// Adopts `reference` as the new expectation (and optionally a new cut
  /// baseline) and re-arms — called after a reaction re-partitions for the
  /// drifted workload, closing the loop.
  void Rebase(MotifDistribution reference, double edge_cut_fraction = -1.0);

  /// False between a fire and the signal clearing (or a rebase).
  bool Armed() const { return armed_; }

  /// Fires so far (monotone; a stationary workload keeps this at 0).
  uint64_t NumFired() const { return num_fired_; }

  const DriftDetectorOptions& options() const { return options_; }

 private:
  DriftDetectorOptions options_;
  MotifDistribution reference_;
  double baseline_edge_cut_ = -1.0;
  bool armed_ = true;
  uint32_t streak_ = 0;
  uint64_t num_fired_ = 0;
};

/// Total-variation distance between two motif distributions, in [0, 1].
/// Either side may be empty (distance 1 against a non-empty side, 0 when
/// both are empty). Inputs must be sorted by canonical_hash.
double L1Distance(const MotifDistribution& p, const MotifDistribution& q);

/// Jensen–Shannon distance (sqrt of base-2 JS divergence), in [0, 1]. Same
/// input contract as `L1Distance`.
double JensenShannonDistance(const MotifDistribution& p,
                             const MotifDistribution& q);

}  // namespace loom

#endif  // LOOM_DRIFT_DRIFT_DETECTOR_H_
