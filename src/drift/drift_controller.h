#ifndef LOOM_DRIFT_DRIFT_CONTROLLER_H_
#define LOOM_DRIFT_DRIFT_CONTROLLER_H_

/// \file
/// Drift reaction: the controller that closes the loop between the workload
/// layer (`WorkloadTracker` snapshots) and the restream layer. When the
/// `DriftDetector` confirms drift, the controller runs a *bounded-migration*
/// incremental re-partition — `Restreamer::RunIncrementalPass` with the
/// **live assignment as the prior** — instead of a cold multi-pass
/// restream: gain-prioritized (decisiveness) ordering spends the migration
/// budget on the highest-value moves first, the budget caps the cumulative
/// `MigrationFraction` against the pre-reaction assignment, and the result
/// is adopted keep-best (a reaction never publishes a worse cut than the
/// assignment it started from). After reacting, the detector is rebased
/// onto the drifted distribution so the loop re-arms.
///
/// Contract: `React` mutates the partitioner (it ends holding the *last*
/// pass's assignment, which may differ from the adopted keep-best one in
/// `DriftReaction::assignment`); the recorded stream must stay alive for
/// the duration of the call. Cost: one `Restreamer` construction
/// (adjacency rebuild, O(V + E)) plus `reaction_passes` budgeted passes.

#include <cstdint>
#include <vector>

#include "drift/drift_detector.h"
#include "partition/partitioner.h"
#include "restream/restreamer.h"
#include "stream/stream.h"
#include "tpstry/workload_tracker.h"

namespace loom {

/// Reaction policy knobs.
struct DriftControllerOptions {
  DriftDetectorOptions detector;
  /// Cumulative migration cap of one reaction, as a fraction of the
  /// vertices assigned in the pre-reaction (live) assignment. All reaction
  /// passes together stay under this cap (see React).
  double max_migration_fraction = 0.25;
  /// Inter-pass ordering of the budgeted passes. Decisiveness ordering
  /// (descending |gain|) is what makes a small budget effective: strong
  /// stayers anchor their neighbourhoods early, strong movers spend the
  /// budget on the highest-value moves first, and the ambivalent tail —
  /// which plain kGain would let drain the budget — streams last.
  RestreamOrder order = RestreamOrder::kDecisive;
  /// Budgeted passes per reaction. The second pass typically converts the
  /// remaining budget into another point of cut at much lower migration.
  uint32_t reaction_passes = 2;
  /// Seed for the replay orderings.
  uint64_t seed = 42;
  /// Share-nothing shards per budgeted pass (> 1 = parallel reaction via
  /// Restreamer::RunShardedIncrementalPass: the replay splits by prior
  /// partition, each worker restreams its shard against the read-only live
  /// assignment with a proportional budget slice, and the merge composes
  /// the result). 1 = the serial pass; results at 1 are bit-identical to
  /// it, and at any shard count they are deterministic for a fixed seed.
  /// Sharded reactions run *damped*: each pass spends half the remaining
  /// budget (all of it on the last) and the next pass's prior is the
  /// merged result, so conflicting simultaneous shard moves cannot
  /// oscillate; give a sharded reaction about twice the serial
  /// `reaction_passes` (e.g. 4) — its critical path per pass is ~1/shards
  /// of a serial pass, so the extra passes still finish far earlier.
  uint32_t reaction_shards = 1;
};

/// Uniform options contract (see `ValidateRestreamOptions`): rejects —
/// without mutating — the first invalid field: a NaN or negative
/// `max_migration_fraction`, `reaction_passes == 0`,
/// `reaction_shards == 0`, a detector `fire_threshold` outside [0, 1] (or
/// NaN), `min_consecutive == 0`, or a `clear_threshold` that is NaN,
/// negative or above `fire_threshold` (the hysteresis band would invert).
Status ValidateDriftControllerOptions(const DriftControllerOptions& options);

/// Sanitized copy of `options`: every field `ValidateDriftControllerOptions`
/// rejects is clamped to the conservative end instead — a garbage migration
/// fraction freezes migration (0.0), zero passes/shards become 1, a garbage
/// fire threshold falls back to the default, and an inverted hysteresis
/// band collapses (`clear_threshold = fire_threshold`). The DriftController
/// constructor applies this to everything it is given.
DriftControllerOptions SanitizeDriftControllerOptions(
    DriftControllerOptions options);

/// What a reaction did.
struct DriftReaction {
  /// False when returned by a check that did not fire (MaybeRepartition).
  bool reacted = false;
  /// The detector evidence that triggered (or declined to trigger).
  DriftSignal signal;
  /// Stats of each budgeted pass, renumbered 1..n; migration_fraction in
  /// each is measured against that pass's prior, while
  /// `migration_fraction` below is cumulative vs. the pre-reaction
  /// assignment (the number the budget caps).
  std::vector<RestreamPassStats> passes;
  /// The adopted assignment: best cut over {pre-reaction, every pass}.
  PartitionAssignment assignment{1, 0};
  double edge_cut_before = 0.0;
  double edge_cut_after = 0.0;
  /// Cumulative migration of the adopted assignment vs. the pre-reaction
  /// one; <= max_migration_fraction up to capacity-pressure overshoot
  /// (which the pass stats' overflow/forced counters expose).
  double migration_fraction = 0.0;
  /// End-to-end reaction latency: adjacency rebuild + all passes + metric
  /// evaluation.
  double seconds = 0.0;
  /// Reaction latency with one free core per shard: `seconds` with every
  /// sharded pass's wall time replaced by its share-nothing critical path
  /// (serial setup + slowest shard's CPU seconds + merge). Equals `seconds`
  /// up to timer noise when `reaction_shards` is 1.
  double critical_path_seconds = 0.0;
};

/// Wires DriftDetector verdicts to bounded-migration restream reactions.
class DriftController {
 public:
  explicit DriftController(const DriftControllerOptions& options);

  /// Installs the workload expectation the live assignment was built for
  /// (reference distribution + optional cut baseline for the degradation
  /// trigger).
  void SetReference(MotifDistribution reference,
                    double baseline_edge_cut = -1.0);

  /// Detector tick without a reaction: lets callers that must prepare for a
  /// reaction (e.g. swap the LOOM partitioner onto the drifted trie via
  /// `LoomPartitioner::SetTrie`) split detection from reaction. Check, then
  /// on `fired` prepare and call React.
  DriftSignal Check(const MotifDistribution& current,
                    double observed_edge_cut = -1.0);

  /// Runs the bounded-migration reaction against `partitioner`'s current
  /// (live) assignment and rebases the detector onto `rebase_to`. The
  /// stream must be the recorded stream the live assignment was built from
  /// (the replay source).
  DriftReaction React(const GraphStream& stream,
                      StreamingPartitioner* partitioner,
                      MotifDistribution rebase_to);

  /// Check + React in one call, for callers whose partitioner needs no
  /// preparation (ldg/fennel, or LOOM kept on a fixed trie).
  DriftReaction MaybeRepartition(const MotifDistribution& current,
                                 const GraphStream& stream,
                                 StreamingPartitioner* partitioner,
                                 double observed_edge_cut = -1.0);

  const DriftDetector& detector() const { return detector_; }
  uint64_t NumReactions() const { return num_reactions_; }
  const DriftControllerOptions& options() const { return options_; }

 private:
  DriftControllerOptions options_;
  DriftDetector detector_;
  uint64_t num_reactions_ = 0;
};

}  // namespace loom

#endif  // LOOM_DRIFT_DRIFT_CONTROLLER_H_
