#include "drift/drift_controller.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "metrics/metrics.h"

namespace loom {

Status ValidateDriftControllerOptions(const DriftControllerOptions& options) {
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    return Status::InvalidArgument(
        "DriftControllerOptions.max_migration_fraction must be a "
        "non-negative number");
  }
  if (options.reaction_passes == 0) {
    return Status::InvalidArgument(
        "DriftControllerOptions.reaction_passes must be >= 1");
  }
  if (options.reaction_shards == 0) {
    return Status::InvalidArgument(
        "DriftControllerOptions.reaction_shards must be >= 1");
  }
  const DriftDetectorOptions& d = options.detector;
  if (std::isnan(d.fire_threshold) || d.fire_threshold < 0.0 ||
      d.fire_threshold > 1.0) {
    return Status::InvalidArgument(
        "DriftDetectorOptions.fire_threshold must be in [0, 1]");
  }
  if (d.min_consecutive == 0) {
    return Status::InvalidArgument(
        "DriftDetectorOptions.min_consecutive must be >= 1");
  }
  if (std::isnan(d.clear_threshold) || d.clear_threshold < 0.0 ||
      d.clear_threshold > d.fire_threshold) {
    return Status::InvalidArgument(
        "DriftDetectorOptions.clear_threshold must be in "
        "[0, fire_threshold]");
  }
  return Status::OK();
}

DriftControllerOptions SanitizeDriftControllerOptions(
    DriftControllerOptions options) {
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    options.max_migration_fraction = 0.0;
  }
  if (options.reaction_passes == 0) options.reaction_passes = 1;
  if (options.reaction_shards == 0) options.reaction_shards = 1;
  DriftDetectorOptions& d = options.detector;
  if (std::isnan(d.fire_threshold) || d.fire_threshold < 0.0 ||
      d.fire_threshold > 1.0) {
    d.fire_threshold = DriftDetectorOptions{}.fire_threshold;
  }
  if (d.min_consecutive == 0) d.min_consecutive = 1;
  if (std::isnan(d.clear_threshold) || d.clear_threshold < 0.0 ||
      d.clear_threshold > d.fire_threshold) {
    d.clear_threshold = d.fire_threshold;
  }
  return options;
}

DriftController::DriftController(const DriftControllerOptions& options)
    : options_(SanitizeDriftControllerOptions(options)),
      detector_(options_.detector) {}

void DriftController::SetReference(MotifDistribution reference,
                                   double baseline_edge_cut) {
  detector_.SetReference(std::move(reference));
  if (baseline_edge_cut >= 0.0) {
    detector_.SetBaselineEdgeCut(baseline_edge_cut);
  }
}

DriftSignal DriftController::Check(const MotifDistribution& current,
                                   double observed_edge_cut) {
  return detector_.Observe(current, observed_edge_cut);
}

DriftReaction DriftController::React(const GraphStream& stream,
                                     StreamingPartitioner* partitioner,
                                     MotifDistribution rebase_to) {
  DriftReaction reaction;
  reaction.reacted = true;
  WallTimer timer;

  // Note: the budget is passed to each pass explicitly (RunIncrementalPass's
  // max_moves), not via RestreamOptions::max_migration_fraction — the
  // remaining allowance shrinks as passes spend it.
  RestreamOptions ropts;
  ropts.order = options_.order;
  ropts.seed = options_.seed;
  const Restreamer restreamer(stream, ropts);

  // The live assignment: migration is capped against it, and keep-best
  // adoption never publishes anything worse than it.
  const PartitionAssignment original = partitioner->assignment();
  reaction.edge_cut_before =
      EdgeCutFraction(restreamer.graph(), original);
  const uint64_t total_moves =
      MigrationBudgetMoves(original, options_.max_migration_fraction);

  PartitionAssignment prior = original;
  reaction.assignment = original;
  double best_cut = reaction.edge_cut_before;
  const bool sharded = options_.reaction_shards > 1;
  // One worker pool for the whole reaction: chained sharded passes reuse
  // it instead of spinning threads up per pass.
  std::unique_ptr<ThreadPool> pool;
  if (sharded) {
    pool = std::make_unique<ThreadPool>(options_.reaction_shards);
  }

  for (uint32_t pass = 1; pass <= options_.reaction_passes; ++pass) {
    // Budget what is left after the moves the chosen prior already carries:
    // moves(original -> result) <= moves(original -> prior) + this pass's
    // budget, so every pass result respects the cumulative cap.
    uint64_t remaining = total_moves;
    if (total_moves != Restreamer::kUnlimitedMoves) {
      const size_t spent = ComputeMigration(original, prior).moved;
      remaining = total_moves > spent ? total_moves - spent : 0;
      if (pass > 1 && remaining == 0) break;
    }
    // Sharded reactions damp the spend: shards move simultaneously against
    // each other's *prior* positions (Jacobi-style), so dumping the whole
    // budget into one parallel pass lets conflicting moves oscillate and
    // can end worse than it started. Spending half the remaining budget
    // per pass (all of it on the last) lets each merge feed the next
    // pass's scoring, converging the parallel reaction onto the serial
    // one's quality at a fraction of its critical path.
    uint64_t pass_budget = remaining;
    if (sharded && pass < options_.reaction_passes &&
        remaining != Restreamer::kUnlimitedMoves) {
      pass_budget = (remaining + 1) / 2;
    }

    RestreamPassStats stats =
        sharded ? restreamer.RunShardedIncrementalPass(
                      partitioner, prior, pass_budget,
                      options_.reaction_shards, pool.get())
                : restreamer.RunIncrementalPass(partitioner, prior,
                                                pass_budget);
    stats.pass = pass;
    const bool improved = stats.edge_cut_fraction < best_cut;
    if (improved) {
      best_cut = stats.edge_cut_fraction;
      reaction.assignment = partitioner->assignment();
    }
    stats.best_edge_cut_fraction = best_cut;
    reaction.passes.push_back(stats);
    if (sharded) {
      // Jacobi iteration: the next pass must see the *merged* positions —
      // even a non-improving damped pass moved toward the drifted workload
      // and seeds a better-informed retry. Keep-best adoption still
      // guarantees the final result never regresses.
      prior = partitioner->assignment();
    } else {
      // Keep-best prior, mirroring Restreamer::Run's anytime semantics. A
      // non-improving pass under a deterministic ordering would replay the
      // same prior to the same result — stop instead.
      prior = reaction.assignment;
      if (!improved && options_.order != RestreamOrder::kRandom) break;
    }
  }

  reaction.edge_cut_after = best_cut;
  reaction.migration_fraction =
      MigrationFraction(original, reaction.assignment);
  reaction.seconds = timer.ElapsedSeconds();
  // The k-worker latency: swap each sharded pass's wall time for its
  // share-nothing critical path, keeping the (serial) rest of the reaction.
  double pass_wall = 0.0;
  double pass_critical = 0.0;
  for (const RestreamPassStats& stats : reaction.passes) {
    pass_wall += stats.seconds;
    pass_critical += stats.critical_path_seconds > 0.0
                         ? stats.critical_path_seconds
                         : stats.seconds;
  }
  reaction.critical_path_seconds =
      reaction.seconds - pass_wall + pass_critical;

  detector_.Rebase(std::move(rebase_to), best_cut);
  ++num_reactions_;
  return reaction;
}

DriftReaction DriftController::MaybeRepartition(
    const MotifDistribution& current, const GraphStream& stream,
    StreamingPartitioner* partitioner, double observed_edge_cut) {
  const DriftSignal signal = Check(current, observed_edge_cut);
  if (!signal.fired) {
    DriftReaction reaction;
    reaction.signal = signal;
    return reaction;
  }
  DriftReaction reaction = React(stream, partitioner, current);
  reaction.signal = signal;
  return reaction;
}

}  // namespace loom
