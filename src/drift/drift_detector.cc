#include "drift/drift_detector.h"

#include <algorithm>
#include <cmath>

namespace loom {

namespace {

// Merge-walks two hash-sorted distributions, handing each motif class's
// (p, q) pair — absent side as 0 — to `visit`.
template <typename Visit>
void MergeWalk(const MotifDistribution& p, const MotifDistribution& q,
               Visit visit) {
  size_t i = 0;
  size_t j = 0;
  while (i < p.size() || j < q.size()) {
    if (j >= q.size() ||
        (i < p.size() && p[i].canonical_hash < q[j].canonical_hash)) {
      visit(p[i].probability, 0.0);
      ++i;
    } else if (i >= p.size() || q[j].canonical_hash < p[i].canonical_hash) {
      visit(0.0, q[j].probability);
      ++j;
    } else {
      visit(p[i].probability, q[j].probability);
      ++i;
      ++j;
    }
  }
}

}  // namespace

double L1Distance(const MotifDistribution& p, const MotifDistribution& q) {
  if (p.empty() && q.empty()) return 0.0;
  if (p.empty() || q.empty()) return 1.0;
  double sum = 0.0;
  MergeWalk(p, q, [&sum](double a, double b) { sum += std::fabs(a - b); });
  return std::min(1.0, 0.5 * sum);
}

double JensenShannonDistance(const MotifDistribution& p,
                             const MotifDistribution& q) {
  if (p.empty() && q.empty()) return 0.0;
  if (p.empty() || q.empty()) return 1.0;
  double divergence = 0.0;
  MergeWalk(p, q, [&divergence](double a, double b) {
    const double m = 0.5 * (a + b);
    if (a > 0.0) divergence += 0.5 * a * std::log2(a / m);
    if (b > 0.0) divergence += 0.5 * b * std::log2(b / m);
  });
  // Fully disjoint supports give divergence exactly 1 bit; clamp the tiny
  // floating-point overshoot so the distance stays in [0, 1].
  return std::sqrt(std::min(1.0, std::max(0.0, divergence)));
}

DriftDetector::DriftDetector(const DriftDetectorOptions& options)
    : options_(options) {
  if (options_.clear_threshold > options_.fire_threshold) {
    options_.clear_threshold = options_.fire_threshold;
  }
  if (options_.min_consecutive == 0) options_.min_consecutive = 1;
}

void DriftDetector::SetReference(MotifDistribution reference) {
  reference_ = std::move(reference);
  armed_ = true;
  streak_ = 0;
}

void DriftDetector::SetBaselineEdgeCut(double edge_cut_fraction) {
  baseline_edge_cut_ = edge_cut_fraction;
}

DriftSignal DriftDetector::Observe(const MotifDistribution& current,
                                   double observed_edge_cut) {
  DriftSignal signal;
  signal.l1 = L1Distance(reference_, current);
  signal.js = JensenShannonDistance(reference_, current);
  signal.distance =
      options_.metric == DriftMetric::kL1 ? signal.l1 : signal.js;
  signal.workload_drifted = signal.distance >= options_.fire_threshold;
  if (observed_edge_cut >= 0.0 && baseline_edge_cut_ > 0.0 &&
      options_.cut_degradation_factor > 0.0) {
    signal.cut_ratio = observed_edge_cut / baseline_edge_cut_;
    signal.cut_degraded =
        signal.cut_ratio >= options_.cut_degradation_factor;
  }

  const bool over = signal.workload_drifted || signal.cut_degraded;
  if (!armed_) {
    // Fired and not yet rebased: re-arm only once the signal has clearly
    // subsided, so a workload hovering around the fire threshold cannot
    // trigger a reaction per tick.
    if (signal.distance <= options_.clear_threshold && !signal.cut_degraded) {
      armed_ = true;
    }
  } else if (over) {
    if (++streak_ >= options_.min_consecutive) {
      signal.fired = true;
      ++num_fired_;
      armed_ = false;
      streak_ = 0;
    }
  } else {
    streak_ = 0;
  }
  return signal;
}

void DriftDetector::Rebase(MotifDistribution reference,
                           double edge_cut_fraction) {
  SetReference(std::move(reference));
  if (edge_cut_fraction >= 0.0) baseline_edge_cut_ = edge_cut_fraction;
}

}  // namespace loom
