#ifndef LOOM_CORE_PARTITIONER_FACTORY_H_
#define LOOM_CORE_PARTITIONER_FACTORY_H_

/// \file
/// The partitioner factory: one supported way to construct any streaming
/// partitioner by name, replacing the per-binary `else if` construction
/// chains (benches, tools and tests all routed through here). Names are the
/// partitioners' own `Name()` strings: "hash", "ldg", "fennel",
/// "ldg-buffered" and "loom". LOOM needs a workload trie, so it is only
/// constructible through the `LoomOptions` overload; asking the plain
/// overload for it is an InvalidArgument, not a crash.

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/loom_options.h"
#include "partition/partitioner.h"
#include "tpstry/tpstry_pp.h"

namespace loom {

/// Every name `MakePartitioner` accepts, in the canonical comparison order
/// used by the bench tables (hash, ldg, fennel, ldg-buffered, loom).
const std::vector<std::string>& KnownPartitioners();

/// True iff `name` is one of `KnownPartitioners()`.
bool IsKnownPartitioner(const std::string& name);

/// Constructs the named workload-oblivious partitioner. Errors with
/// InvalidArgument on an unknown name and on "loom" (which needs a trie —
/// use the LoomOptions overload).
Result<std::unique_ptr<StreamingPartitioner>> MakePartitioner(
    const std::string& name, const PartitionerOptions& options);

/// Constructs any known partitioner. Workload-oblivious names use
/// `options.partitioner` only; "loom" uses the full options plus `trie`
/// (which must be non-null and outlive the partitioner). Errors with
/// InvalidArgument on an unknown name or a missing trie.
Result<std::unique_ptr<StreamingPartitioner>> MakePartitioner(
    const std::string& name, const LoomOptions& options, const TpstryPP* trie);

}  // namespace loom

#endif  // LOOM_CORE_PARTITIONER_FACTORY_H_
