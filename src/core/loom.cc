#include "core/loom.h"

namespace loom {

Loom::Loom(LoomOptions options, std::unique_ptr<TpstryPP> trie)
    : options_(options), trie_(std::move(trie)) {
  partitioner_ = std::make_unique<LoomPartitioner>(options_, trie_.get());
}

Result<std::unique_ptr<TpstryPP>> BuildTrie(const Workload& workload,
                                            bool paths_only) {
  if (workload.NumQueries() == 0) {
    return Status::InvalidArgument("workload has no queries");
  }
  auto trie = std::make_unique<TpstryPP>(workload.NumLabels());
  for (const QuerySpec& q : workload.queries()) {
    LOOM_RETURN_IF_ERROR(trie->AddQuery(q.pattern, q.frequency, paths_only));
  }
  trie->Normalize();
  return trie;
}

Result<std::unique_ptr<Loom>> Loom::Create(const Workload& workload,
                                           const LoomOptions& options) {
  if (options.partitioner.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.partitioner.window_size == 0) {
    return Status::InvalidArgument("window size must be >= 1");
  }
  if (options.matcher.frequency_threshold < 0.0) {
    return Status::InvalidArgument("frequency threshold must be >= 0");
  }
  // Thresholds above 1 are allowed: no motif is frequent, degenerating to
  // windowed LDG (the E8a ablation).
  LOOM_ASSIGN_OR_RETURN(std::unique_ptr<TpstryPP> trie,
                        BuildTrie(workload, options.paths_only));
  return std::unique_ptr<Loom>(new Loom(options, std::move(trie)));
}

}  // namespace loom
