#ifndef LOOM_CORE_LOOM_PARTITIONER_H_
#define LOOM_CORE_LOOM_PARTITIONER_H_

/// \file
/// The LOOM streaming partitioner (paper §4): windowed LDG whose unit of
/// assignment is a *motif match* instead of a single vertex whenever the
/// workload summary says the local structure will be traversed.
///
/// Per arrival:
///   1. if the window is full, evict the oldest vertex;
///   2. on eviction, ask the stream matcher for the motif-match closure of
///      the evicted vertex (§4.4): when non-empty, assign the whole cluster
///      to one partition chosen by cluster-LDG (total external edges,
///      free-capacity weighted); otherwise assign the single vertex by LDG;
///   3. buffer the new arrival and feed the matcher.
///
/// A cluster too large for any partition's remaining capacity is split and
/// assigned vertex-by-vertex — the safety valve for the balance risk the
/// paper flags as future work (§4.4, §5).

#include <memory>
#include <utility>

#include "common/small_vector.h"
#include "core/loom_options.h"
#include "matching/stream_matcher.h"
#include "partition/gain_scorer.h"
#include "partition/partitioner.h"
#include "stream/cluster_log.h"
#include "stream/window.h"
#include "tpstry/tpstry_pp.h"

namespace loom {

/// Workload-aware streaming partitioner.
class LoomPartitioner : public StreamingPartitioner {
 public:
  /// \param trie workload summary (must outlive the partitioner).
  LoomPartitioner(const LoomOptions& options, const TpstryPP* trie);

  void OnVertex(VertexId v, Label label,
                Span<const VertexId> back_edges) override;

  void Finish() override;

  /// Restream hook: also resets the window, the matcher and the per-pass
  /// LOOM cluster counters, so each pass starts clean and its stats are
  /// independently meaningful even if the previous use stopped mid-stream.
  void BeginPass(const PartitionAssignment* prior) override;

  std::string Name() const override { return "loom"; }

  /// Drift reaction hook: re-points the partitioner at a new workload
  /// summary (e.g. a `WorkloadTracker::Snapshot()` taken after drift), so
  /// the next pass re-scores motif clusters against the *drifted* trie —
  /// matcher and traversal edge-weights are rebuilt here. Call between
  /// passes only (the window must be empty; an in-flight window would mix
  /// closures from two summaries); `trie` must outlive the partitioner.
  void SetTrie(const TpstryPP* trie);

  /// Shard clone: shares only the immutable workload trie (safe for
  /// concurrent read-only lookups — the matcher never mutates it); window,
  /// matcher, label table and scoring scratch are all per-clone, so shard
  /// clones run concurrently without synchronisation.
  std::unique_ptr<StreamingPartitioner> CloneForShard() const override;

  const TpstryPP* trie() const { return trie_; }

  const LoomStats& loom_stats() const { return loom_stats_; }
  const StreamMatcherStats& matcher_stats() const { return matcher_.stats(); }

  /// Cluster memoization (stream/cluster_log.h): when logging is on, the
  /// partitioner records every unit it assigns (singles and pre-split motif
  /// clusters, in assignment order); with a memo installed, recalled units
  /// are scored straight off their buffered arrivals through the blocked
  /// kernel — no window, no matcher — unless the correctness gate
  /// invalidates them (changed label/neighbourhood fingerprint, or
  /// un-grouped arrival order), in which case their members flow through
  /// the normal pipeline.
  void SetClusterLogging(bool enabled) override;
  const ClusterLog* cluster_log() const override {
    return log_enabled_ ? &cluster_log_ : nullptr;
  }
  void TakeClusterLog(ClusterLog* out) override {
    if (!log_enabled_) return;
    *out = std::move(cluster_log_);
    cluster_log_.Reset(false);  // restore the moved-from invariant
  }
  void SetClusterMemo(const ClusterMemo* memo) override;

 private:
  /// Re-derives the per-label-pair traversal weights from `trie_` (no-op
  /// unless traversal weighting is enabled).
  void RebuildEdgeWeights();

  /// The normal per-arrival pipeline: evict if full, buffer into the
  /// window, feed the matcher. Factored out of OnVertex so memo fallbacks
  /// can re-feed buffered arrivals through it.
  void StreamIntoWindow(VertexId v, Label label,
                        Span<const VertexId> back_edges);

  /// Memoized-replay arrival handling. Returns true when the arrival was
  /// consumed (buffered into, or completing, a recalled unit); false sends
  /// it through the normal pipeline.
  bool HandleMemoArrival(VertexId v, Label label,
                         Span<const VertexId> back_edges);

  /// Scores and places the buffered unit (whole-unit first, split/individual
  /// fallbacks mirroring EvictOldest), records it into this pass's log, and
  /// clears the buffer.
  void AssignPendingUnit();

  /// Places buffered member `index` by single-vertex LDG (memoized
  /// equivalent of AssignSingle).
  void AssignPendingSingle(uint32_t index);

  /// Splits the buffered unit into connected chunks (memoized equivalent of
  /// SplitAndAssignCluster, over arrival adjacency instead of the window).
  void SplitPendingUnit();

  /// Invalidation fallback: marks the pending unit invalid and re-feeds its
  /// buffered members through the window/matcher pipeline.
  void FlushPendingToPipeline();

  void ClearPending();

  /// Neighbourhood of buffered member `index` (into the flat arena).
  Span<const VertexId> PendingNeighbors(uint32_t index) const {
    return Span<const VertexId>(
        pending_neighbors_.data() + pending_offsets_[index],
        pending_offsets_[index + 1] - pending_offsets_[index]);
  }

  /// Records one member of the unit being logged (fingerprint only when the
  /// log carries complete neighbourhoods).
  void LogUnitMember(VertexId v, Label label, Span<const VertexId> neighbors) {
    cluster_log_.AddMember(
        v, cluster_log_.fingerprints_complete()
               ? ClusterLog::Fingerprint(label, neighbors)
               : 0);
  }

  /// Shared connectivity-aware split core behind SplitAndAssignCluster
  /// (window adjacency) and SplitPendingUnit (buffered arrival adjacency):
  /// BFS-grows connected chunks no larger than the largest free capacity,
  /// scores each through the blocked kernel and places it as a unit, falling
  /// back to per-member placement. `slot_of` maps a vertex to a dense index
  /// < `state_size` (or -1 when not a cluster member); `neighbors_of` reads
  /// a member's adjacency by that index.
  template <typename SlotFn, typename NeighborsFn, typename PlaceChunkFn,
            typename PlaceSinglesFn>
  void SplitClusterCore(Span<const VertexId> seeds, size_t state_size,
                        SlotFn&& slot_of, NeighborsFn&& neighbors_of,
                        PlaceChunkFn&& place_chunk,
                        PlaceSinglesFn&& place_singles);

  /// Assigns the oldest window member (with its motif closure, if any).
  void EvictOldest();

  /// LDG assignment of one evicted member using all edges seen for it.
  void AssignSingle(const WindowMember& member);

  /// Assigns every cluster vertex to `part`, removing them from window and
  /// matcher.
  void AssignCluster(const std::vector<VertexId>& cluster, uint32_t part);

  /// §5 future work: splits an oversized cluster into connected chunks that
  /// fit the remaining capacities and assigns each chunk as a unit.
  void SplitAndAssignCluster(const std::vector<VertexId>& cluster);

  /// Accumulates the (possibly weighted) LDG scores of `vertices`' edges
  /// into each partition via the blocked kernel; `scorer_.touched()` lists
  /// the dirtied partitions afterwards. Only edges to assigned vertices
  /// count.
  void ScoreVertices(const std::vector<VertexId>& vertices,
                     std::vector<double>* scores);

  LoomOptions loom_options_;
  StreamWindow window_;
  StreamMatcher matcher_;
  /// LOOM-specific counters; named apart from the base's PartitionerStats
  /// `stats_` so neither shadows the other.
  LoomStats loom_stats_;
  std::vector<double> scores_;
  /// The one reset-then-accumulate scoring kernel: every writer of `scores_`
  /// (cluster scoring, chunk scoring, single-vertex LDG) goes through it, so
  /// the touched-partition invariant lives in one place. Also owns the dense
  /// label-pair traversal-weight table.
  BlockedGainScorer scorer_;
  /// Per-arrival scratch for the in-window back-edge filter (reused so the
  /// hot path stays amortized allocation-free).
  std::vector<VertexId> in_window_scratch_;
  /// Cluster-split scratch, keyed by window slot: 0 = not in the cluster,
  /// 1 = in the cluster and unplaced, 2 = placed into a chunk.
  std::vector<uint8_t> split_state_;
  /// Label of every vertex ever seen (index = VertexId); needed to weight
  /// edges towards already-assigned endpoints.
  std::vector<Label> label_of_;

  // --- Cluster memoization state (stream/cluster_log.h) ---
  /// Recording switch; off by default so single-pass streaming pays nothing.
  bool log_enabled_ = false;
  /// The decomposition this pass assigned (valid when log_enabled_).
  ClusterLog cluster_log_;
  /// Previous pass's decomposition to replay, or null (not owned).
  const ClusterMemo* memo_ = nullptr;
  /// Per recalled unit: 1 once the correctness gate rejected it.
  std::vector<uint8_t> invalid_units_;
  /// The one unit currently buffering (grouped arrival order guarantees at
  /// most one): its id, its members so far, and their neighbourhoods in a
  /// flat arena.
  int32_t pending_unit_ = -1;
  SmallVector<VertexId, 32> pending_ids_;
  /// Validation-time fingerprints, cached so the re-log never hashes a
  /// neighbourhood twice (0 = not computed; real fingerprints are never 0).
  SmallVector<uint64_t, 32> pending_fps_;
  std::vector<VertexId> pending_neighbors_;
  SmallVector<uint32_t, 33> pending_offsets_{0};

  const TpstryPP* trie_;
};

}  // namespace loom

#endif  // LOOM_CORE_LOOM_PARTITIONER_H_
