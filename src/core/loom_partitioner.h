#ifndef LOOM_CORE_LOOM_PARTITIONER_H_
#define LOOM_CORE_LOOM_PARTITIONER_H_

/// \file
/// The LOOM streaming partitioner (paper §4): windowed LDG whose unit of
/// assignment is a *motif match* instead of a single vertex whenever the
/// workload summary says the local structure will be traversed.
///
/// Per arrival:
///   1. if the window is full, evict the oldest vertex;
///   2. on eviction, ask the stream matcher for the motif-match closure of
///      the evicted vertex (§4.4): when non-empty, assign the whole cluster
///      to one partition chosen by cluster-LDG (total external edges,
///      free-capacity weighted); otherwise assign the single vertex by LDG;
///   3. buffer the new arrival and feed the matcher.
///
/// A cluster too large for any partition's remaining capacity is split and
/// assigned vertex-by-vertex — the safety valve for the balance risk the
/// paper flags as future work (§4.4, §5).

#include <memory>

#include "common/flat_map.h"
#include "common/small_vector.h"
#include "core/loom_options.h"
#include "matching/stream_matcher.h"
#include "partition/partitioner.h"
#include "stream/window.h"
#include "tpstry/tpstry_pp.h"

namespace loom {

/// Workload-aware streaming partitioner.
class LoomPartitioner : public StreamingPartitioner {
 public:
  /// \param trie workload summary (must outlive the partitioner).
  LoomPartitioner(const LoomOptions& options, const TpstryPP* trie);

  void OnVertex(VertexId v, Label label,
                Span<const VertexId> back_edges) override;

  void Finish() override;

  /// Restream hook: also resets the window, the matcher and the per-pass
  /// LOOM cluster counters, so each pass starts clean and its stats are
  /// independently meaningful even if the previous use stopped mid-stream.
  void BeginPass(const PartitionAssignment* prior) override;

  std::string Name() const override { return "loom"; }

  /// Drift reaction hook: re-points the partitioner at a new workload
  /// summary (e.g. a `WorkloadTracker::Snapshot()` taken after drift), so
  /// the next pass re-scores motif clusters against the *drifted* trie —
  /// matcher and traversal edge-weights are rebuilt here. Call between
  /// passes only (the window must be empty; an in-flight window would mix
  /// closures from two summaries); `trie` must outlive the partitioner.
  void SetTrie(const TpstryPP* trie);

  /// Shard clone: shares only the immutable workload trie (safe for
  /// concurrent read-only lookups — the matcher never mutates it); window,
  /// matcher, label table and scoring scratch are all per-clone, so shard
  /// clones run concurrently without synchronisation.
  std::unique_ptr<StreamingPartitioner> CloneForShard() const override;

  const TpstryPP* trie() const { return trie_; }

  const LoomStats& loom_stats() const { return loom_stats_; }
  const StreamMatcherStats& matcher_stats() const { return matcher_.stats(); }

 private:
  /// Re-derives the per-label-pair traversal weights from `trie_` (no-op
  /// unless traversal weighting is enabled).
  void RebuildEdgeWeights();

  /// Assigns the oldest window member (with its motif closure, if any).
  void EvictOldest();

  /// LDG assignment of one evicted member using all edges seen for it.
  void AssignSingle(const WindowMember& member);

  /// Assigns every cluster vertex to `part`, removing them from window and
  /// matcher.
  void AssignCluster(const std::vector<VertexId>& cluster, uint32_t part);

  /// §5 future work: splits an oversized cluster into connected chunks that
  /// fit the remaining capacities and assigns each chunk as a unit.
  void SplitAndAssignCluster(const std::vector<VertexId>& cluster);

  /// Traversal weight of an edge to neighbour `w` (1.0 when traversal
  /// weighting is disabled; the label-pair p-value otherwise).
  double EdgeWeightTo(Label member_label, VertexId w) const;

  /// Accumulates the (possibly weighted) LDG scores of `vertices`' edges
  /// into each partition. Only edges to assigned vertices count.
  void ScoreVertices(const std::vector<VertexId>& vertices,
                     std::vector<double>* scores) const;

  LoomOptions loom_options_;
  StreamWindow window_;
  StreamMatcher matcher_;
  /// LOOM-specific counters; named apart from the base's PartitionerStats
  /// `stats_` so neither shadows the other.
  LoomStats loom_stats_;
  std::vector<double> scores_;
  /// Partitions dirtied in `scores_` by the previous scoring round; mutable
  /// because `ScoreVertices` (const) owns the reset-then-accumulate cycle.
  mutable SmallVector<uint32_t, 16> touched_scores_;
  /// Label of every vertex ever seen (index = VertexId); needed to weight
  /// edges towards already-assigned endpoints.
  std::vector<Label> label_of_;
  /// Traversal probability per signature edge-factor index (from the trie's
  /// one-edge motifs); empty when weighting is disabled.
  FlatMap<uint32_t, double> edge_weight_;
  const TpstryPP* trie_;
};

}  // namespace loom

#endif  // LOOM_CORE_LOOM_PARTITIONER_H_
