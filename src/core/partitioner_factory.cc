#include "core/partitioner_factory.h"

#include <algorithm>

#include "core/loom_partitioner.h"
#include "partition/buffered_ldg_partitioner.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"

namespace loom {

const std::vector<std::string>& KnownPartitioners() {
  static const std::vector<std::string> kNames = {
      "hash", "ldg", "fennel", "ldg-buffered", "loom"};
  return kNames;
}

bool IsKnownPartitioner(const std::string& name) {
  const std::vector<std::string>& names = KnownPartitioners();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Result<std::unique_ptr<StreamingPartitioner>> MakePartitioner(
    const std::string& name, const PartitionerOptions& options) {
  if (name == "hash") {
    return std::unique_ptr<StreamingPartitioner>(
        std::make_unique<HashPartitioner>(options));
  }
  if (name == "ldg") {
    return std::unique_ptr<StreamingPartitioner>(
        std::make_unique<LdgPartitioner>(options));
  }
  if (name == "fennel") {
    return std::unique_ptr<StreamingPartitioner>(
        std::make_unique<FennelPartitioner>(options));
  }
  if (name == "ldg-buffered") {
    return std::unique_ptr<StreamingPartitioner>(
        std::make_unique<BufferedLdgPartitioner>(options));
  }
  if (name == "loom") {
    return Status::InvalidArgument(
        "partitioner 'loom' needs a workload trie; use the LoomOptions "
        "overload of MakePartitioner");
  }
  return Status::InvalidArgument("unknown partitioner '" + name + "'");
}

Result<std::unique_ptr<StreamingPartitioner>> MakePartitioner(
    const std::string& name, const LoomOptions& options,
    const TpstryPP* trie) {
  if (name == "loom") {
    if (trie == nullptr) {
      return Status::InvalidArgument(
          "partitioner 'loom' needs a non-null workload trie");
    }
    return std::unique_ptr<StreamingPartitioner>(
        std::make_unique<LoomPartitioner>(options, trie));
  }
  return MakePartitioner(name, options.partitioner);
}

}  // namespace loom
