#ifndef LOOM_CORE_LOOM_H_
#define LOOM_CORE_LOOM_H_

/// \file
/// The LOOM façade — the library's top-level entry point.
///
/// Typical use:
///
///   loom::Workload workload = ...;                 // queries + frequencies
///   loom::LoomOptions options;
///   options.partitioner.k = 8;
///   options.partitioner.num_vertices_hint = graph.NumVertices();
///   LOOM_ASSIGN_OR_RETURN(auto loom, loom::Loom::Create(workload, options));
///   loom->Partitioner().Run(stream);               // one pass
///   const auto& assignment = loom->Partitioner().assignment();

#include <memory>

#include "common/result.h"
#include "core/loom_options.h"
#include "core/loom_partitioner.h"
#include "tpstry/tpstry_pp.h"
#include "workload/workload.h"

namespace loom {

/// Owns the workload summary (TPSTry++) and the LOOM streaming partitioner
/// built over it.
class Loom {
 public:
  /// Builds the TPSTry++ from `workload` (Algorithm 1 per query) and wires
  /// up the partitioner. Fails if a query exceeds the small-pattern budgets
  /// or the options are inconsistent.
  static Result<std::unique_ptr<Loom>> Create(const Workload& workload,
                                              const LoomOptions& options);

  /// The streaming partitioner; feed it a stream via `Run` or `OnVertex`.
  LoomPartitioner& Partitioner() { return *partitioner_; }
  const LoomPartitioner& Partitioner() const { return *partitioner_; }

  /// The workload summary.
  const TpstryPP& Trie() const { return *trie_; }

  const LoomOptions& options() const { return options_; }

 private:
  Loom(LoomOptions options, std::unique_ptr<TpstryPP> trie);

  LoomOptions options_;
  std::unique_ptr<TpstryPP> trie_;
  std::unique_ptr<LoomPartitioner> partitioner_;
};

/// Convenience: builds the TPSTry++ for `workload` alone (shared by tests,
/// benches and ablations). Honours `paths_only` by weaving only the path
/// motifs of each query.
Result<std::unique_ptr<TpstryPP>> BuildTrie(const Workload& workload,
                                            bool paths_only = false);

}  // namespace loom

#endif  // LOOM_CORE_LOOM_H_
