#ifndef LOOM_CORE_LOOM_OPTIONS_H_
#define LOOM_CORE_LOOM_OPTIONS_H_

/// \file
/// Configuration of the LOOM partitioner (RocksDB-style options struct).

#include "matching/stream_matcher.h"
#include "partition/partitioner.h"

namespace loom {

/// All LOOM knobs in one place. `partitioner` carries the generic streaming
/// settings (k, capacity, window size); `matcher` the workload-awareness
/// settings; the booleans below select the §4.4 assignment semantics and the
/// ablation variants of experiment E8.
struct LoomOptions {
  PartitionerOptions partitioner;
  StreamMatcherOptions matcher;

  /// Assign the transitive closure of overlapping motif matches together
  /// (§4.4; off = only the matches containing the evicted vertex).
  bool group_overlapping_matches = true;

  /// Summarise the workload with path motifs only (the original TPSTry
  /// regime) instead of full TPSTry++ motifs — ablation E8c.
  bool paths_only = false;

  /// §5 future work, implemented: weight LDG's edge counts by the edge's
  /// traversal probability from the TPSTry++ (the p-value of the one-edge
  /// motif with the same label pair), so placement favours partitions the
  /// workload will actually traverse into.
  bool use_traversal_weights = false;

  /// Weight given to edges whose label pair never occurs in any query when
  /// `use_traversal_weights` is on. Non-zero keeps pure-structure cohesion
  /// as a tie-breaker.
  double untraversed_edge_weight = 0.05;

  /// §5 future work, implemented: when a motif cluster exceeds every
  /// partition's free capacity, split it with a local connectivity-aware
  /// bisection (keeping connected chunks together) instead of degrading to
  /// vertex-by-vertex assignment.
  bool local_cluster_split = true;
};

/// Counters produced by a LOOM run.
struct LoomStats {
  /// Vertices assigned as part of a motif cluster.
  uint64_t cluster_vertices = 0;
  /// Motif clusters assigned as a unit.
  uint64_t clusters_assigned = 0;
  /// Clusters that did not fit any partition and had to be split (the
  /// paper's §4.4 balance concern; the safety valve loom adds).
  uint64_t clusters_split = 0;
  /// Connected chunks produced by local cluster splitting.
  uint64_t split_chunks = 0;
  /// Vertices assigned individually by plain LDG.
  uint64_t single_vertices = 0;
  /// Memoized restream replay (stream/cluster_log.h): units recalled from
  /// the previous pass's log and scored directly, bypassing the
  /// window/matcher pipeline.
  uint64_t memo_units = 0;
  /// Vertices placed via memoized units.
  uint64_t memo_vertices = 0;
  /// Recalled units rejected by the correctness gate (a member's label or
  /// neighbourhood fingerprint changed, or members arrived un-grouped);
  /// their vertices fell back to the full pipeline.
  uint64_t memo_invalidated = 0;
};

}  // namespace loom

#endif  // LOOM_CORE_LOOM_OPTIONS_H_
