#include "core/loom_partitioner.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

namespace loom {

LoomPartitioner::LoomPartitioner(const LoomOptions& options,
                                 const TpstryPP* trie)
    : StreamingPartitioner(options.partitioner),
      loom_options_(options),
      window_(options.partitioner.window_size),
      matcher_(trie, options.matcher),
      scores_(options.partitioner.k, 0.0),
      trie_(trie) {
  RebuildEdgeWeights();
}

void LoomPartitioner::RebuildEdgeWeights() {
  edge_weight_.clear();
  if (!loom_options_.use_traversal_weights) return;
  // The traversal probability of an edge with labels (a, b) is the
  // p-value of the corresponding one-edge motif (§5 future work).
  for (TpstryNodeId id = 0; id < trie_->NumNodes(); ++id) {
    const TpstryNode& node = trie_->node(id);
    if (node.num_edges != 1) continue;
    const Label a = node.motif.LabelOf(0);
    const Label b = node.motif.LabelOf(1);
    edge_weight_[trie_->scheme().EdgeFactor(a, b)] = node.support;
  }
}

std::unique_ptr<StreamingPartitioner> LoomPartitioner::CloneForShard() const {
  return std::make_unique<LoomPartitioner>(loom_options_, trie_);
}

void LoomPartitioner::SetTrie(const TpstryPP* trie) {
  assert(window_.Empty() && "SetTrie must be called between passes");
  trie_ = trie;
  // The matcher holds a pointer to the trie: rebuild it now so nothing
  // references the old summary after this call returns.
  matcher_ = StreamMatcher(trie_, loom_options_.matcher);
  RebuildEdgeWeights();
}

void LoomPartitioner::OnVertex(VertexId v, Label label,
                               Span<const VertexId> back_edges) {
  if (v >= label_of_.size()) label_of_.resize(v + 1, 0);
  label_of_[v] = label;

  if (window_.Full()) EvictOldest();

  // Restream arrivals already carry the full neighbourhood; reverse
  // recording would double every window-internal edge.
  window_.Push(v, label, back_edges, /*record_reverse=*/!HasPrior());
  // The matcher only sees the in-window part of the neighbourhood; edges to
  // already-assigned vertices cannot belong to a window motif match.
  std::vector<VertexId> in_window;
  in_window.reserve(back_edges.size());
  for (const VertexId w : back_edges) {
    if (w != v && window_.Contains(w)) in_window.push_back(w);
  }
  matcher_.OnVertex(v, label, in_window);
}

void LoomPartitioner::Finish() {
  while (!window_.Empty()) EvictOldest();
}

void LoomPartitioner::BeginPass(const PartitionAssignment* prior) {
  StreamingPartitioner::BeginPass(prior);
  window_ = StreamWindow(loom_options_.partitioner.window_size);
  matcher_ = StreamMatcher(trie_, loom_options_.matcher);
  loom_stats_ = LoomStats();
}

double LoomPartitioner::EdgeWeightTo(Label member_label, VertexId w) const {
  if (!loom_options_.use_traversal_weights) return 1.0;
  const Label wl = w < label_of_.size() ? label_of_[w] : 0;
  if (member_label >= trie_->scheme().num_labels() ||
      wl >= trie_->scheme().num_labels()) {
    return loom_options_.untraversed_edge_weight;
  }
  const auto it =
      edge_weight_.find(trie_->scheme().EdgeFactor(member_label, wl));
  if (it == edge_weight_.end()) return loom_options_.untraversed_edge_weight;
  return std::max(it->second, loom_options_.untraversed_edge_weight);
}

void LoomPartitioner::ScoreVertices(const std::vector<VertexId>& vertices,
                                    std::vector<double>* scores) const {
  // Sparse reset of the partitions the previous round dirtied: O(touched)
  // instead of an O(k) fill per scored unit. Every writer of `scores_` goes
  // through this reset-then-accumulate cycle.
  for (const uint32_t p : touched_scores_) (*scores)[p] = 0.0;
  touched_scores_.clear();
  for (const VertexId member : vertices) {
    const WindowMember& m = window_.Get(member);
    for (const VertexId w : m.neighbors) {
      const int32_t p = ScorePartOf(w);
      if (p >= 0) {
        double& s = (*scores)[static_cast<uint32_t>(p)];
        // Record before the add: a zero entry is exactly one not yet listed
        // this round, so the list stays bounded by k, not by degree.
        if (s == 0.0) touched_scores_.push_back(static_cast<uint32_t>(p));
        s += EdgeWeightTo(m.label, w);
      }
    }
  }
}

void LoomPartitioner::EvictOldest() {
  const VertexId oldest = window_.Oldest();
  const std::vector<VertexId> closure = matcher_.MatchClosureFor(
      oldest, loom_options_.group_overlapping_matches);

  if (closure.empty()) {
    const WindowMember member = window_.Remove(oldest);
    matcher_.RemoveVertex(oldest);
    AssignSingle(member);
    ++loom_stats_.single_vertices;
    return;
  }

  // Cluster = evicted vertex plus its motif closure (all window members).
  std::vector<VertexId> cluster = {oldest};
  cluster.insert(cluster.end(), closure.begin(), closure.end());

  // Cluster-LDG (§4.1 footnote: "LDG considers the total edges from all
  // vertices, to each partition").
  ScoreVertices(cluster, &scores_);
  const uint32_t part =
      PickLdgPartitionWeighted(assignment_, scores_, cluster.size());
  if (part < assignment_.k()) {
    AssignCluster(cluster, part);
    ++loom_stats_.clusters_assigned;
    loom_stats_.cluster_vertices += cluster.size();
    return;
  }

  // No partition can hold the whole cluster (§4.4's balance risk).
  ++loom_stats_.clusters_split;
  if (loom_options_.local_cluster_split) {
    SplitAndAssignCluster(cluster);
    return;
  }
  // Fallback: oldest-first, one vertex at a time by plain LDG.
  std::sort(cluster.begin(), cluster.end(), [this](VertexId a, VertexId b) {
    return window_.Get(a).arrival_seq < window_.Get(b).arrival_seq;
  });
  for (const VertexId member : cluster) {
    const WindowMember m = window_.Remove(member);
    matcher_.RemoveVertex(member);
    AssignSingle(m);
    ++loom_stats_.single_vertices;
  }
}

void LoomPartitioner::SplitAndAssignCluster(
    const std::vector<VertexId>& cluster) {
  // Connectivity-aware chunking (§5 "local partitioning procedure for large
  // matched sub-graphs"): BFS over the cluster's window-internal adjacency
  // grows connected chunks no larger than the largest free capacity, so each
  // chunk is assigned as a unit and whole sub-structures stay together.
  size_t max_free = 0;
  for (uint32_t p = 0; p < assignment_.k(); ++p) {
    max_free = std::max(max_free, assignment_.FreeCapacity(p));
  }
  // max_free == 0 (every partition at C) degrades to single-vertex chunks,
  // which AssignSingle's overflow fallback places without dropping anything.
  const size_t chunk_cap = std::max<size_t>(1, max_free);

  const std::unordered_set<VertexId> in_cluster(cluster.begin(),
                                                cluster.end());
  std::unordered_set<VertexId> unplaced(cluster.begin(), cluster.end());
  // Deterministic seeding: oldest member first.
  std::vector<VertexId> seeds = cluster;
  std::sort(seeds.begin(), seeds.end(), [this](VertexId a, VertexId b) {
    return window_.Get(a).arrival_seq < window_.Get(b).arrival_seq;
  });

  for (const VertexId seed : seeds) {
    if (unplaced.count(seed) == 0) continue;
    std::vector<VertexId> chunk;
    std::deque<VertexId> frontier = {seed};
    while (!frontier.empty() && chunk.size() < chunk_cap) {
      const VertexId v = frontier.front();
      frontier.pop_front();
      if (unplaced.count(v) == 0) continue;
      unplaced.erase(v);
      chunk.push_back(v);
      for (const VertexId w : window_.Get(v).neighbors) {
        if (in_cluster.count(w) > 0 && unplaced.count(w) > 0) {
          frontier.push_back(w);
        }
      }
    }
    if (chunk.empty()) continue;
    ScoreVertices(chunk, &scores_);
    const uint32_t part =
        PickLdgPartitionWeighted(assignment_, scores_, chunk.size());
    ++loom_stats_.split_chunks;
    if (part < assignment_.k()) {
      AssignCluster(chunk, part);
      loom_stats_.cluster_vertices += chunk.size();
    } else {
      // Even the chunk does not fit anywhere as a unit: place its members
      // individually (capacity-total guarantees a slot per vertex).
      for (const VertexId member : chunk) {
        const WindowMember m = window_.Remove(member);
        matcher_.RemoveVertex(member);
        AssignSingle(m);
        ++loom_stats_.single_vertices;
      }
    }
  }
}

void LoomPartitioner::AssignSingle(const WindowMember& member) {
  for (const uint32_t p : touched_scores_) scores_[p] = 0.0;
  touched_scores_.clear();
  for (const VertexId w : member.neighbors) {
    const int32_t p = ScorePartOf(w);
    if (p >= 0) {
      double& s = scores_[static_cast<uint32_t>(p)];
      if (s == 0.0) touched_scores_.push_back(static_cast<uint32_t>(p));
      s += EdgeWeightTo(member.label, w);
    }
  }
  AssignOrFallback(member.id, PickLdgPartitionWeighted(assignment_, scores_));
}

void LoomPartitioner::AssignCluster(const std::vector<VertexId>& cluster,
                                    uint32_t part) {
  for (const VertexId member : cluster) {
    window_.Remove(member);
    matcher_.RemoveVertex(member);
    // The cluster path only picks partitions with room for the whole
    // cluster, but AssignOrFallback still guards the invariant: no vertex
    // is ever dropped and no Assign error is discarded.
    AssignOrFallback(member, part);
  }
}

}  // namespace loom
