#include "core/loom_partitioner.h"

#include <algorithm>
#include <cassert>

namespace loom {

LoomPartitioner::LoomPartitioner(const LoomOptions& options,
                                 const TpstryPP* trie)
    : StreamingPartitioner(options.partitioner),
      loom_options_(options),
      window_(options.partitioner.window_size),
      matcher_(trie, options.matcher),
      scores_(options.partitioner.k, 0.0),
      trie_(trie) {
  RebuildEdgeWeights();
}

void LoomPartitioner::RebuildEdgeWeights() {
  scorer_.Configure(loom_options_.partitioner.k, trie_->scheme().num_labels(),
                    loom_options_.use_traversal_weights,
                    loom_options_.untraversed_edge_weight);
  // Configure dropped the scorer's touched list, so the sparse
  // reset-then-accumulate cycle restarts from an all-zero score vector.
  std::fill(scores_.begin(), scores_.end(), 0.0);
  if (!loom_options_.use_traversal_weights) return;
  // The traversal probability of an edge with labels (a, b) is the
  // p-value of the corresponding one-edge motif (§5 future work).
  for (TpstryNodeId id = 0; id < trie_->NumNodes(); ++id) {
    const TpstryNode& node = trie_->node(id);
    if (node.num_edges != 1) continue;
    scorer_.SetEdgeWeight(node.motif.LabelOf(0), node.motif.LabelOf(1),
                          node.support);
  }
}

std::unique_ptr<StreamingPartitioner> LoomPartitioner::CloneForShard() const {
  return std::make_unique<LoomPartitioner>(loom_options_, trie_);
}

void LoomPartitioner::SetTrie(const TpstryPP* trie) {
  assert(window_.Empty() && "SetTrie must be called between passes");
  trie_ = trie;
  // The matcher holds a pointer to the trie: rebuild it now so nothing
  // references the old summary after this call returns.
  matcher_ = StreamMatcher(trie_, loom_options_.matcher);
  RebuildEdgeWeights();
  // A memo recorded under the old summary describes clusters the new trie
  // may no longer match; drop it (the driver installs a fresh one per pass).
  memo_ = nullptr;
  invalid_units_.clear();
  ClearPending();
}

void LoomPartitioner::OnVertex(VertexId v, Label label,
                               Span<const VertexId> back_edges) {
  if (v >= label_of_.size()) {
    size_t grown = label_of_.empty() ? 1024 : label_of_.size() * 2;
    if (grown < static_cast<size_t>(v) + 1) grown = static_cast<size_t>(v) + 1;
    label_of_.resize(grown, 0);
  }
  label_of_[v] = label;

  if (memo_ != nullptr && HandleMemoArrival(v, label, back_edges)) return;
  StreamIntoWindow(v, label, back_edges);
}

void LoomPartitioner::StreamIntoWindow(VertexId v, Label label,
                                       Span<const VertexId> back_edges) {
  if (window_.Full()) EvictOldest();

  // Restream arrivals already carry the full neighbourhood; reverse
  // recording would double every window-internal edge.
  window_.Push(v, label, back_edges, /*record_reverse=*/!HasPrior());
  // The matcher only sees the in-window part of the neighbourhood; edges to
  // already-assigned vertices cannot belong to a window motif match.
  in_window_scratch_.clear();
  for (const VertexId w : back_edges) {
    if (w != v && window_.Contains(w)) in_window_scratch_.push_back(w);
  }
  matcher_.OnVertex(v, label, in_window_scratch_);
}

void LoomPartitioner::Finish() {
  // A partial recalled unit can be stranded here — a migration-budget
  // early-stop bypasses OnVertex for the stream tail, so the unit's
  // remaining members never arrive. Place what was buffered.
  if (pending_unit_ >= 0) AssignPendingUnit();
  while (!window_.Empty()) EvictOldest();
}

void LoomPartitioner::BeginPass(const PartitionAssignment* prior) {
  StreamingPartitioner::BeginPass(prior);
  window_ = StreamWindow(loom_options_.partitioner.window_size);
  matcher_ = StreamMatcher(trie_, loom_options_.matcher);
  loom_stats_ = LoomStats();
  // The memo describes the pass that just ended; drivers re-install one per
  // pass (after this call) when they want memoized replay.
  memo_ = nullptr;
  invalid_units_.clear();
  ClearPending();
  // Restream passes carry full neighbourhoods per arrival, so only their
  // logs get validation fingerprints (see ClusterLog).
  if (log_enabled_) cluster_log_.Reset(/*fingerprints_complete=*/HasPrior());
}

void LoomPartitioner::SetClusterLogging(bool enabled) {
  log_enabled_ = enabled;
  cluster_log_.Reset(enabled && HasPrior());
}

void LoomPartitioner::SetClusterMemo(const ClusterMemo* memo) {
  memo_ = memo;
  invalid_units_.assign(memo != nullptr ? memo->log().NumUnits() : 0, 0);
  ClearPending();
}

void LoomPartitioner::ClearPending() {
  pending_unit_ = -1;
  pending_ids_.clear();
  pending_fps_.clear();
  pending_neighbors_.clear();
  pending_offsets_.clear();
  pending_offsets_.push_back(0);
}

bool LoomPartitioner::HandleMemoArrival(VertexId v, Label label,
                                        Span<const VertexId> back_edges) {
  const int32_t unit = memo_->UnitOf(v);
  if (pending_unit_ >= 0 && unit != pending_unit_) {
    // The arrival order is not unit-grouped here, so the pending unit can
    // never complete as a contiguous block: fall back.
    ++loom_stats_.memo_invalidated;
    FlushPendingToPipeline();
  }
  if (unit < 0) return false;
  const uint32_t u = static_cast<uint32_t>(unit);
  if (invalid_units_[u]) return false;

  // 0 = not yet computed (real fingerprints are |1, never 0). Computed at
  // most once per arrival: the validation gate fills it, and the re-log
  // below reuses the cached value instead of hashing the neighbourhood
  // again.
  uint64_t fp = 0;
  if (memo_->validate()) {
    const Span<const VertexId> members = memo_->log().MembersOf(u);
    const Span<const uint64_t> fps = memo_->log().FingerprintsOf(u);
    uint64_t recorded = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] == v) {
        recorded = fps[i];
        break;
      }
    }
    fp = ClusterLog::Fingerprint(label, back_edges);
    if (recorded == 0 || recorded != fp) {
      // Correctness gate: the member's label or neighbourhood changed since
      // the recorded pass — the whole unit must be re-derived by the
      // matcher, not recalled.
      ++loom_stats_.memo_invalidated;
      invalid_units_[u] = 1;
      FlushPendingToPipeline();
      return false;
    }
  }

  if (memo_->log().MembersOf(u).size() == 1) {
    // Singleton fast path (the common case on low-motif streams): score and
    // place straight off the borrowed arrival — no pending-buffer copy. The
    // scoring input is identical to AssignPendingSingle's, so the placement
    // is bit-identical to the buffered path.
    if (log_enabled_) {
      if (cluster_log_.fingerprints_complete() && fp == 0) {
        fp = ClusterLog::Fingerprint(label, back_edges);
      }
      cluster_log_.AddMember(v, cluster_log_.fingerprints_complete() ? fp : 0);
      cluster_log_.CommitUnit();
    }
    ++loom_stats_.memo_units;
    ++loom_stats_.memo_vertices;
    scorer_.BeginUnit();
    scorer_.AddMember(label, back_edges, label_of_,
                      [this](VertexId w) { return ScorePartOf(w); });
    scorer_.Commit(&scores_);
    AssignOrFallback(v, PickLdgPartitionWeightedSparse(assignment_, scores_,
                                                       scorer_.touched()));
    ++loom_stats_.single_vertices;
    return true;
  }

  if (pending_unit_ < 0) pending_unit_ = unit;
  pending_ids_.push_back(v);
  pending_fps_.push_back(fp);
  pending_neighbors_.insert(pending_neighbors_.end(), back_edges.begin(),
                            back_edges.end());
  pending_offsets_.push_back(static_cast<uint32_t>(pending_neighbors_.size()));
  if (pending_ids_.size() == memo_->log().MembersOf(u).size()) {
    AssignPendingUnit();
  }
  return true;
}

void LoomPartitioner::FlushPendingToPipeline() {
  if (pending_unit_ < 0) return;
  invalid_units_[static_cast<uint32_t>(pending_unit_)] = 1;
  // Deactivate first; the buffered arena stays intact for the replay below
  // (StreamIntoWindow copies each span into the window).
  pending_unit_ = -1;
  for (size_t i = 0; i < pending_ids_.size(); ++i) {
    const VertexId id = pending_ids_[i];
    StreamIntoWindow(id, label_of_[id], PendingNeighbors(i));
  }
  ClearPending();
}

void LoomPartitioner::ScoreVertices(const std::vector<VertexId>& vertices,
                                    std::vector<double>* scores) {
  scorer_.BeginUnit();
  for (const VertexId member : vertices) {
    const WindowMember& m = window_.Get(member);
    scorer_.AddMember(m.label, m.neighbors, label_of_,
                      [this](VertexId w) { return ScorePartOf(w); });
  }
  scorer_.Commit(scores);
}

void LoomPartitioner::EvictOldest() {
  const VertexId oldest = window_.Oldest();
  // Cheap gate first: most evictions have no frequent match, and the gate
  // answers that from the per-slot key list without building a closure.
  const std::vector<VertexId> closure =
      matcher_.HasFrequentMatch(oldest)
          ? matcher_.MatchClosureFor(oldest,
                                     loom_options_.group_overlapping_matches)
          : std::vector<VertexId>();

  if (closure.empty()) {
    const WindowMember member = window_.Remove(oldest);
    matcher_.RemoveVertex(oldest);
    if (log_enabled_) {
      LogUnitMember(member.id, member.label, member.neighbors);
      cluster_log_.CommitUnit();
    }
    AssignSingle(member);
    ++loom_stats_.single_vertices;
    return;
  }

  // Cluster = evicted vertex plus its motif closure (all window members).
  std::vector<VertexId> cluster = {oldest};
  cluster.insert(cluster.end(), closure.begin(), closure.end());

  // Log the unit *pre-split*, in scoring order: the capacity-driven split
  // below is a placement decision of this pass, not part of the
  // decomposition a later pass should recall.
  if (log_enabled_) {
    for (const VertexId m : cluster) {
      const WindowMember& wm = window_.Get(m);
      LogUnitMember(m, wm.label, wm.neighbors);
    }
    cluster_log_.CommitUnit();
  }

  // Cluster-LDG (§4.1 footnote: "LDG considers the total edges from all
  // vertices, to each partition").
  ScoreVertices(cluster, &scores_);
  const uint32_t part = PickLdgPartitionWeightedSparse(
      assignment_, scores_, scorer_.touched(), cluster.size());
  if (part < assignment_.k()) {
    AssignCluster(cluster, part);
    ++loom_stats_.clusters_assigned;
    loom_stats_.cluster_vertices += cluster.size();
    return;
  }

  // No partition can hold the whole cluster (§4.4's balance risk).
  ++loom_stats_.clusters_split;
  if (loom_options_.local_cluster_split) {
    SplitAndAssignCluster(cluster);
    return;
  }
  // Fallback: oldest-first, one vertex at a time by plain LDG.
  std::sort(cluster.begin(), cluster.end(), [this](VertexId a, VertexId b) {
    return window_.Get(a).arrival_seq < window_.Get(b).arrival_seq;
  });
  for (const VertexId member : cluster) {
    const WindowMember m = window_.Remove(member);
    matcher_.RemoveVertex(member);
    AssignSingle(m);
    ++loom_stats_.single_vertices;
  }
}

template <typename SlotFn, typename NeighborsFn, typename PlaceChunkFn,
          typename PlaceSinglesFn>
void LoomPartitioner::SplitClusterCore(Span<const VertexId> seeds,
                                       size_t state_size, SlotFn&& slot_of,
                                       NeighborsFn&& neighbors_of,
                                       PlaceChunkFn&& place_chunk,
                                       PlaceSinglesFn&& place_singles) {
  // Connectivity-aware chunking (§5 "local partitioning procedure for large
  // matched sub-graphs"): BFS over the cluster's internal adjacency grows
  // connected chunks no larger than the largest free capacity, so each
  // chunk is assigned as a unit and whole sub-structures stay together.
  size_t max_free = 0;
  for (uint32_t p = 0; p < assignment_.k(); ++p) {
    max_free = std::max(max_free, assignment_.FreeCapacity(p));
  }
  // max_free == 0 (every partition at C) degrades to single-vertex chunks,
  // whose per-member overflow fallback places everything without drops.
  const size_t chunk_cap = std::max<size_t>(1, max_free);

  // Cluster membership lives in one byte per dense member index — no
  // hash-set probes anywhere in the BFS.
  split_state_.assign(state_size, 0);
  for (const VertexId v : seeds) {
    const int32_t s = slot_of(v);
    if (s >= 0) split_state_[s] = 1;
  }

  for (const VertexId seed : seeds) {
    // A placed member has already left the index domain (slot -1) or
    // carries state 2; either way it cannot seed another chunk.
    const int32_t seed_slot = slot_of(seed);
    if (seed_slot < 0 || split_state_[seed_slot] != 1) continue;
    std::vector<VertexId> chunk;
    SmallVector<uint32_t, 32> chunk_slots;
    SmallVector<VertexId, 32> frontier;
    frontier.push_back(seed);
    // FIFO via a head cursor keeps the historical BFS visit order.
    for (size_t head = 0; head < frontier.size() && chunk.size() < chunk_cap;
         ++head) {
      const VertexId v = frontier[head];
      const int32_t vs = slot_of(v);
      if (vs < 0 || split_state_[vs] != 1) continue;
      split_state_[vs] = 2;
      chunk.push_back(v);
      chunk_slots.push_back(static_cast<uint32_t>(vs));
      for (const VertexId w : neighbors_of(static_cast<uint32_t>(vs))) {
        const int32_t ws = slot_of(w);
        if (ws >= 0 && static_cast<size_t>(ws) < state_size &&
            split_state_[ws] == 1) {
          frontier.push_back(w);
        }
      }
    }
    if (chunk.empty()) continue;
    scorer_.BeginUnit();
    for (size_t i = 0; i < chunk.size(); ++i) {
      scorer_.AddMember(label_of_[chunk[i]], neighbors_of(chunk_slots[i]),
                        label_of_,
                        [this](VertexId w) { return ScorePartOf(w); });
    }
    scorer_.Commit(&scores_);
    const uint32_t part = PickLdgPartitionWeightedSparse(
        assignment_, scores_, scorer_.touched(), chunk.size());
    ++loom_stats_.split_chunks;
    if (part < assignment_.k()) {
      place_chunk(chunk, part);
      loom_stats_.cluster_vertices += chunk.size();
    } else {
      // Even the chunk does not fit anywhere as a unit: place its members
      // individually (capacity-total guarantees a slot per vertex).
      place_singles(chunk);
    }
  }
}

void LoomPartitioner::SplitAndAssignCluster(
    const std::vector<VertexId>& cluster) {
  // Deterministic seeding: oldest member first.
  SmallVector<VertexId, 32> seeds;
  seeds.assign(cluster.begin(), cluster.end());
  std::sort(seeds.begin(), seeds.end(), [this](VertexId a, VertexId b) {
    return window_.Get(a).arrival_seq < window_.Get(b).arrival_seq;
  });
  uint32_t slot_bound = 0;
  for (const VertexId v : cluster) {
    slot_bound =
        std::max(slot_bound, static_cast<uint32_t>(window_.SlotOf(v)) + 1);
  }
  SplitClusterCore(
      Span<const VertexId>(seeds.data(), seeds.size()), slot_bound,
      [this](VertexId v) { return window_.SlotOf(v); },
      [this](uint32_t slot) -> Span<const VertexId> {
        const SmallVector<VertexId, 8>& nb =
            window_.MemberAtSlot(slot).neighbors;
        return Span<const VertexId>(nb.data(), nb.size());
      },
      [this](const std::vector<VertexId>& chunk, uint32_t part) {
        AssignCluster(chunk, part);
      },
      [this](const std::vector<VertexId>& chunk) {
        for (const VertexId member : chunk) {
          const WindowMember m = window_.Remove(member);
          matcher_.RemoveVertex(member);
          AssignSingle(m);
          ++loom_stats_.single_vertices;
        }
      });
}

void LoomPartitioner::AssignSingle(const WindowMember& member) {
  scorer_.BeginUnit();
  scorer_.AddMember(member.label, member.neighbors, label_of_,
                    [this](VertexId w) { return ScorePartOf(w); });
  scorer_.Commit(&scores_);
  AssignOrFallback(member.id, PickLdgPartitionWeightedSparse(
                                  assignment_, scores_, scorer_.touched()));
}

void LoomPartitioner::AssignCluster(const std::vector<VertexId>& cluster,
                                    uint32_t part) {
  for (const VertexId member : cluster) {
    window_.Remove(member);
    matcher_.RemoveVertex(member);
    // The cluster path only picks partitions with room for the whole
    // cluster, but AssignOrFallback still guards the invariant: no vertex
    // is ever dropped and no Assign error is discarded.
    AssignOrFallback(member, part);
  }
}

void LoomPartitioner::AssignPendingUnit() {
  const size_t n = pending_ids_.size();
  // Re-log the unit (pre-split, in recorded scoring order) so the *next*
  // pass can recall it too — now with complete fingerprints, since buffered
  // arrivals carry full neighbourhoods.
  if (log_enabled_) {
    const bool complete = cluster_log_.fingerprints_complete();
    for (size_t i = 0; i < n; ++i) {
      uint64_t fp = complete ? pending_fps_[i] : 0;
      if (complete && fp == 0) {
        // Not cached (the consumed log had no fingerprints to validate
        // against): hash once here.
        fp = ClusterLog::Fingerprint(label_of_[pending_ids_[i]],
                                     PendingNeighbors(static_cast<uint32_t>(i)));
      }
      cluster_log_.AddMember(pending_ids_[i], fp);
    }
    cluster_log_.CommitUnit();
  }
  ++loom_stats_.memo_units;
  loom_stats_.memo_vertices += n;

  if (n == 1) {
    AssignPendingSingle(0);
    ClearPending();
    return;
  }

  // Whole-unit cluster-LDG, exactly as EvictOldest scores a fresh closure —
  // buffered arrival adjacency equals what the window would have held.
  scorer_.BeginUnit();
  for (size_t i = 0; i < n; ++i) {
    scorer_.AddMember(label_of_[pending_ids_[i]],
                      PendingNeighbors(static_cast<uint32_t>(i)), label_of_,
                      [this](VertexId w) { return ScorePartOf(w); });
  }
  scorer_.Commit(&scores_);
  const uint32_t part = PickLdgPartitionWeightedSparse(
      assignment_, scores_, scorer_.touched(), n);
  if (part < assignment_.k()) {
    for (const VertexId id : pending_ids_) AssignOrFallback(id, part);
    ++loom_stats_.clusters_assigned;
    loom_stats_.cluster_vertices += n;
    ClearPending();
    return;
  }

  ++loom_stats_.clusters_split;
  if (loom_options_.local_cluster_split) {
    SplitPendingUnit();
  } else {
    // Oldest-first individual placement; buffered order is arrival order.
    for (size_t i = 0; i < n; ++i) {
      AssignPendingSingle(static_cast<uint32_t>(i));
    }
  }
  ClearPending();
}

void LoomPartitioner::AssignPendingSingle(uint32_t index) {
  scorer_.BeginUnit();
  scorer_.AddMember(label_of_[pending_ids_[index]], PendingNeighbors(index),
                    label_of_, [this](VertexId w) { return ScorePartOf(w); });
  scorer_.Commit(&scores_);
  AssignOrFallback(pending_ids_[index],
                   PickLdgPartitionWeightedSparse(assignment_, scores_,
                                                  scorer_.touched()));
  ++loom_stats_.single_vertices;
}

void LoomPartitioner::SplitPendingUnit() {
  const size_t n = pending_ids_.size();
  // Dense member index for the split core: buffered position, looked up by
  // binary search over the id-sorted members.
  SmallVector<uint32_t, 32> order;
  for (uint32_t i = 0; i < n; ++i) order.push_back(i);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return pending_ids_[a] < pending_ids_[b];
  });
  SmallVector<VertexId, 32> sorted_ids;
  for (const uint32_t i : order) sorted_ids.push_back(pending_ids_[i]);

  const auto slot_of = [this, &sorted_ids, &order](VertexId v) -> int32_t {
    const VertexId* it =
        std::lower_bound(sorted_ids.begin(), sorted_ids.end(), v);
    if (it == sorted_ids.end() || *it != v) return -1;
    return static_cast<int32_t>(order[it - sorted_ids.begin()]);
  };
  SplitClusterCore(
      Span<const VertexId>(pending_ids_.data(), n), n, slot_of,
      [this](uint32_t slot) { return PendingNeighbors(slot); },
      [this](const std::vector<VertexId>& chunk, uint32_t part) {
        for (const VertexId id : chunk) AssignOrFallback(id, part);
      },
      [this, &slot_of](const std::vector<VertexId>& chunk) {
        for (const VertexId id : chunk) {
          AssignPendingSingle(static_cast<uint32_t>(slot_of(id)));
        }
      });
}

}  // namespace loom
