#ifndef LOOM_PARTITION_OFFLINE_PARTITIONER_H_
#define LOOM_PARTITION_OFFLINE_PARTITIONER_H_

/// \file
/// An offline multilevel k-way partitioner in the METIS mould (§3.1 of the
/// paper: "METIS is a multilevel technique: it computes a succession of
/// recursively compressed graphs, partitions the smallest then projects that
/// partitioning onto previous graphs, applying local refinement at each
/// step"). Built from scratch:
///
///   1. coarsening by heavy-edge matching (edge weights accumulate);
///   2. initial partitioning of the coarsest graph by balanced greedy
///      region growth;
///   3. uncoarsening with boundary FM-style refinement per level.
///
/// It is the edge-cut quality reference in the experiment suite; the paper's
/// point is that streaming heuristics trade a little cut quality for
/// one-pass operation, and LOOM trades differently again.

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"
#include "partition/partition_state.h"

namespace loom {

/// Options for the offline multilevel partitioner.
struct OfflineOptions {
  uint32_t k = 4;
  /// Balance slack: partition vertex weight <= slack * n / k.
  double balance_slack = 1.1;
  /// Stop coarsening once the graph is this small (scaled by k below).
  size_t coarsen_target = 64;
  /// Maximum FM refinement passes per level.
  int refine_passes = 6;
  uint64_t seed = 42;
};

/// Statistics of one offline run (for tests and benches).
struct OfflineStats {
  size_t levels = 0;
  size_t coarsest_vertices = 0;
  size_t initial_cut = 0;
  size_t final_cut = 0;
};

/// Partitions `g` offline; the whole graph must be in memory (the scalability
/// contrast with streaming partitioners that §3.1 draws).
Result<PartitionAssignment> OfflineMultilevelPartition(
    const LabeledGraph& g, const OfflineOptions& options,
    OfflineStats* stats = nullptr);

}  // namespace loom

#endif  // LOOM_PARTITION_OFFLINE_PARTITIONER_H_
