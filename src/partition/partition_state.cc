#include "partition/partition_state.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace loom {

PartitionAssignment::PartitionAssignment(uint32_t k, size_t capacity)
    : k_(k == 0 ? 1 : k), capacity_(capacity), sizes_(k_, 0) {}

void PartitionAssignment::SetCapacities(std::vector<size_t> capacities) {
  assert((capacities.empty() || capacities.size() == k_) &&
         "per-partition capacities must cover every partition");
  if (!capacities.empty() && capacities.size() != k_) return;
  per_part_capacity_ = std::move(capacities);
}

Status PartitionAssignment::Assign(VertexId v, uint32_t part) {
  if (part >= k_) return Status::InvalidArgument("partition index out of range");
  if (PartOf(v) >= 0) {
    return Status::AlreadyExists("vertex already assigned");
  }
  if (AtCapacity(part)) {
    return Status::CapacityExceeded("partition " + std::to_string(part) +
                                    " is full");
  }
  return ForceAssign(v, part);
}

Status PartitionAssignment::ForceAssign(VertexId v, uint32_t part) {
  if (part >= k_) return Status::InvalidArgument("partition index out of range");
  if (v >= part_of_.size()) part_of_.resize(v + 1, -1);
  if (part_of_[v] >= 0) {
    return Status::AlreadyExists("vertex already assigned");
  }
  if (AtCapacity(part)) ++num_overflowed_;
  part_of_[v] = static_cast<int32_t>(part);
  ++sizes_[part];
  ++num_assigned_;
  return Status::OK();
}

uint32_t PartitionAssignment::SmallestPartition() const {
  uint32_t best = 0;
  for (uint32_t p = 1; p < k_; ++p) {
    if (sizes_[p] < sizes_[best]) best = p;
  }
  return best;
}

uint32_t PartitionAssignment::MostFreePartition() const {
  uint32_t best = 0;
  for (uint32_t p = 1; p < k_; ++p) {
    const size_t free_p = FreeCapacity(p);
    const size_t free_best = FreeCapacity(best);
    if (free_p > free_best ||
        (free_p == free_best && sizes_[p] < sizes_[best])) {
      best = p;
    }
  }
  return best;
}

}  // namespace loom
