#include "partition/partition_state.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace loom {

PartitionAssignment::PartitionAssignment(uint32_t k, size_t capacity)
    : k_(k == 0 ? 1 : k), capacity_(capacity), sizes_(k_, 0) {}

void PartitionAssignment::SetCapacities(std::vector<size_t> capacities) {
  assert((capacities.empty() || capacities.size() == k_) &&
         "per-partition capacities must cover every partition");
  if (!capacities.empty() && capacities.size() != k_) return;
  per_part_capacity_ = std::move(capacities);
}

size_t PartitionAssignment::CapacityOf(uint32_t part) const {
  if (!per_part_capacity_.empty() && part < k_) {
    return per_part_capacity_[part];
  }
  return capacity_;
}

bool PartitionAssignment::AtCapacity(uint32_t part) const {
  if (!per_part_capacity_.empty()) {
    return sizes_[part] >= per_part_capacity_[part];
  }
  return capacity_ != 0 && sizes_[part] >= capacity_;
}

Status PartitionAssignment::Assign(VertexId v, uint32_t part) {
  if (part >= k_) return Status::InvalidArgument("partition index out of range");
  if (PartOf(v) >= 0) {
    return Status::AlreadyExists("vertex already assigned");
  }
  if (AtCapacity(part)) {
    return Status::CapacityExceeded("partition " + std::to_string(part) +
                                    " is full");
  }
  return ForceAssign(v, part);
}

Status PartitionAssignment::ForceAssign(VertexId v, uint32_t part) {
  if (part >= k_) return Status::InvalidArgument("partition index out of range");
  if (v >= part_of_.size()) part_of_.resize(v + 1, -1);
  if (part_of_[v] >= 0) {
    return Status::AlreadyExists("vertex already assigned");
  }
  if (AtCapacity(part)) ++num_overflowed_;
  part_of_[v] = static_cast<int32_t>(part);
  ++sizes_[part];
  ++num_assigned_;
  return Status::OK();
}

int32_t PartitionAssignment::PartOf(VertexId v) const {
  if (v >= part_of_.size()) return -1;
  return part_of_[v];
}

size_t PartitionAssignment::FreeCapacity(uint32_t part) const {
  if (per_part_capacity_.empty() && capacity_ == 0) {
    return std::numeric_limits<size_t>::max();
  }
  if (part >= k_) return 0;
  const size_t cap = CapacityOf(part);
  return sizes_[part] >= cap ? 0 : cap - sizes_[part];
}

uint32_t PartitionAssignment::SmallestPartition() const {
  uint32_t best = 0;
  for (uint32_t p = 1; p < k_; ++p) {
    if (sizes_[p] < sizes_[best]) best = p;
  }
  return best;
}

uint32_t PartitionAssignment::MostFreePartition() const {
  uint32_t best = 0;
  for (uint32_t p = 1; p < k_; ++p) {
    const size_t free_p = FreeCapacity(p);
    const size_t free_best = FreeCapacity(best);
    if (free_p > free_best ||
        (free_p == free_best && sizes_[p] < sizes_[best])) {
      best = p;
    }
  }
  return best;
}

}  // namespace loom
