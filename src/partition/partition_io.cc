#include "partition/partition_io.h"

#include <fstream>
#include <sstream>

namespace loom {

Status SaveAssignment(const PartitionAssignment& assignment,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "loom-assignment 1\n";
  out << "k " << assignment.k() << " capacity " << assignment.capacity()
      << "\n";
  // part_of_ is not exposed directly; emit every assigned vertex by probing
  // ids up to the highest assigned one.
  size_t emitted = 0;
  for (VertexId v = 0; emitted < assignment.NumAssigned(); ++v) {
    const int32_t p = assignment.PartOf(v);
    if (p >= 0) {
      out << v << " " << p << "\n";
      ++emitted;
    }
    if (v == kInvalidVertex) break;  // defensive: ids exhausted
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<PartitionAssignment> LoadAssignment(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);

  std::string line;
  if (!std::getline(in, line) || line.rfind("loom-assignment", 0) != 0) {
    return Status::InvalidArgument("missing loom-assignment header: " + path);
  }
  uint32_t k = 0;
  size_t capacity = 0;
  {
    std::string kw1;
    std::string kw2;
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated assignment: " + path);
    }
    std::istringstream ss(line);
    if (!(ss >> kw1 >> k >> kw2 >> capacity) || kw1 != "k" ||
        kw2 != "capacity") {
      return Status::InvalidArgument("bad k/capacity line: " + path);
    }
  }
  PartitionAssignment assignment(k, capacity);
  size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    VertexId v = 0;
    uint32_t p = 0;
    if (!(ss >> v >> p)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": bad assignment line");
    }
    LOOM_RETURN_IF_ERROR(assignment.Assign(v, p));
  }
  return assignment;
}

}  // namespace loom
