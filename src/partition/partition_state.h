#ifndef LOOM_PARTITION_PARTITION_STATE_H_
#define LOOM_PARTITION_PARTITION_STATE_H_

/// \file
/// The k-way partitioning Pk(V) of §2: a disjoint assignment of vertices to
/// partitions S_1..S_k, with the capacity constraint C that makes the
/// partitioning balanced (§4.1).

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace loom {

/// Mutable k-way vertex assignment with capacity accounting.
class PartitionAssignment {
 public:
  /// \param k number of partitions (>= 1).
  /// \param capacity per-partition vertex budget C (0 = unconstrained).
  PartitionAssignment(uint32_t k, size_t capacity);

  /// Assigns `v` to `part`. Fails on double assignment, bad partition index
  /// or a full partition.
  Status Assign(VertexId v, uint32_t part);

  /// **[internal]** Assigns `v` to `part` even when the partition is at
  /// capacity — the overflow escape hatch for streams that exceed k·C
  /// vertices, where
  /// dropping the vertex would be worse than stretching the bound. Still
  /// fails on double assignment or a bad partition index; placements past C
  /// are counted in NumOverflowed().
  Status ForceAssign(VertexId v, uint32_t part);

  /// Partition of `v`, or -1 while unassigned (or unknown id).
  int32_t PartOf(VertexId v) const {
    return v < part_of_.size() ? part_of_[v] : -1;
  }

  bool IsAssigned(VertexId v) const { return PartOf(v) >= 0; }

  uint32_t k() const { return k_; }
  size_t capacity() const { return capacity_; }

  /// Installs per-partition capacity bounds (size must be k), overriding
  /// the scalar capacity for Assign/FreeCapacity checks. Unlike the
  /// constructor's scalar (where 0 = unconstrained), an entry of 0 means
  /// partition p has no room at all; pass an empty vector to revert to the
  /// scalar bound. This is how a share-nothing restream shard is confined
  /// to its slice of each partition: the slices across shards sum to at
  /// most the global bound, so the merged assignment respects C with zero
  /// coordination (see restream/shard_plan.h).
  void SetCapacities(std::vector<size_t> capacities);

  /// Capacity bound of `part`: the per-partition override when installed,
  /// else the scalar capacity (0 = unconstrained in scalar mode only).
  size_t CapacityOf(uint32_t part) const {
    if (!per_part_capacity_.empty() && part < k_) {
      return per_part_capacity_[part];
    }
    return capacity_;
  }

  /// Vertex count per partition.
  const std::vector<uint32_t>& Sizes() const { return sizes_; }

  /// Remaining capacity of `part` (SIZE_MAX when unconstrained).
  size_t FreeCapacity(uint32_t part) const {
    if (per_part_capacity_.empty() && capacity_ == 0) {
      return ~static_cast<size_t>(0);
    }
    if (part >= k_) return 0;
    const size_t cap = CapacityOf(part);
    return sizes_[part] >= cap ? 0 : cap - sizes_[part];
  }

  /// Total vertices assigned so far.
  size_t NumAssigned() const { return num_assigned_; }

  /// Index of the partition with the fewest vertices (lowest index wins
  /// ties).
  uint32_t SmallestPartition() const;

  /// Index of the partition with the most free capacity; ties prefer the
  /// smaller partition, then the lower index. The canonical overflow
  /// fallback target when a placement heuristic finds no eligible partition.
  uint32_t MostFreePartition() const;

  /// One past the largest vertex id ever assigned; bound for PartOf scans.
  size_t IdBound() const { return part_of_.size(); }

  /// Vertices placed past the capacity bound C via ForceAssign.
  size_t NumOverflowed() const { return num_overflowed_; }

 private:
  /// True when `part` cannot take another vertex under the active bound.
  bool AtCapacity(uint32_t part) const {
    if (!per_part_capacity_.empty()) {
      return sizes_[part] >= per_part_capacity_[part];
    }
    return capacity_ != 0 && sizes_[part] >= capacity_;
  }

  uint32_t k_;
  size_t capacity_;
  /// Per-partition capacity overrides; empty = scalar `capacity_` applies.
  std::vector<size_t> per_part_capacity_;
  std::vector<int32_t> part_of_;
  std::vector<uint32_t> sizes_;
  size_t num_assigned_ = 0;
  size_t num_overflowed_ = 0;
};

}  // namespace loom

#endif  // LOOM_PARTITION_PARTITION_STATE_H_
