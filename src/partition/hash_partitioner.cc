#include "partition/hash_partitioner.h"

#include "common/hash.h"

namespace loom {

void HashPartitioner::OnVertex(VertexId v, Label /*label*/,
                               Span<const VertexId> /*back_edges*/) {
  const uint32_t k = assignment_.k();
  const uint32_t home = static_cast<uint32_t>(
      MixBits(static_cast<uint64_t>(v) + options_.seed) % k);
  uint32_t part = k;  // invalid: triggers the overflow fallback
  for (uint32_t probe = 0; probe < k; ++probe) {
    const uint32_t candidate = (home + probe) % k;
    if (assignment_.FreeCapacity(candidate) >= 1) {
      part = candidate;
      break;
    }
  }
  AssignOrFallback(v, part);
}

}  // namespace loom
