#include "partition/hash_partitioner.h"

#include <cassert>

#include "common/hash.h"

namespace loom {

void HashPartitioner::OnVertex(VertexId v, Label /*label*/,
                               const std::vector<VertexId>& /*back_edges*/) {
  const uint32_t k = assignment_.k();
  uint32_t part = static_cast<uint32_t>(
      MixBits(static_cast<uint64_t>(v) + options_.seed) % k);
  for (uint32_t probe = 0; probe < k; ++probe) {
    const uint32_t candidate = (part + probe) % k;
    if (assignment_.FreeCapacity(candidate) >= 1) {
      const Status s = assignment_.Assign(v, candidate);
      assert(s.ok());
      (void)s;
      return;
    }
  }
  assert(false && "all partitions full: capacity misconfigured");
}

}  // namespace loom
