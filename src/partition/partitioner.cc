#include "partition/partitioner.h"

#include <cmath>

namespace loom {

size_t ComputeCapacity(uint32_t k, size_t num_vertices, double slack) {
  if (num_vertices == 0) return 0;  // unconstrained when n is unknown
  const double per_part =
      slack * static_cast<double>(num_vertices) / static_cast<double>(k);
  const size_t cap = static_cast<size_t>(std::ceil(per_part));
  return cap == 0 ? 1 : cap;
}

void StreamingPartitioner::Run(const GraphStream& stream) {
  for (const VertexArrival& arrival : stream.arrivals()) {
    OnVertex(arrival.vertex, arrival.label, arrival.back_edges);
  }
  Finish();
}

uint32_t PickLdgPartition(const PartitionAssignment& assignment,
                          const std::vector<uint32_t>& edges_to_partition,
                          size_t need) {
  std::vector<double> weights(edges_to_partition.begin(),
                              edges_to_partition.end());
  return PickLdgPartitionWeighted(assignment, weights, need);
}

uint32_t PickLdgPartitionWeighted(
    const PartitionAssignment& assignment,
    const std::vector<double>& weight_to_partition, size_t need) {
  const uint32_t k = assignment.k();
  const double capacity =
      assignment.capacity() == 0
          ? static_cast<double>(assignment.NumAssigned() + need) * 2.0
          : static_cast<double>(assignment.capacity());

  uint32_t best = k;
  double best_score = -1.0;
  for (uint32_t p = 0; p < k; ++p) {
    if (assignment.FreeCapacity(p) < need) continue;
    const double penalty =
        1.0 - static_cast<double>(assignment.Sizes()[p]) / capacity;
    const double score = weight_to_partition[p] * penalty;
    const bool better =
        best == k || score > best_score ||
        (score == best_score &&
         assignment.Sizes()[p] < assignment.Sizes()[best]);
    if (better) {
      best = p;
      best_score = score;
    }
  }
  return best;
}

}  // namespace loom
