#include "partition/partitioner.h"

#include <cassert>
#include <cmath>

namespace loom {

size_t ComputeCapacity(uint32_t k, size_t num_vertices, double slack) {
  if (num_vertices == 0) return 0;  // unconstrained when n is unknown
  const double per_part =
      slack * static_cast<double>(num_vertices) / static_cast<double>(k);
  const size_t cap = static_cast<size_t>(std::ceil(per_part));
  return cap == 0 ? 1 : cap;
}

void StreamingPartitioner::Run(ArrivalSource& source) {
  ArrivalView arrival;
  while (source.Next(&arrival)) {
    if (MigrationBudgetExhausted()) {
      // Every further placement is clamped to the prior partition anyway;
      // skip scoring (and any window/matcher work) for the rest of the pass.
      const int32_t home = prior_->PartOf(arrival.vertex);
      if (home >= 0) {
        AssignOrFallback(arrival.vertex, static_cast<uint32_t>(home));
        continue;
      }
    }
    OnVertex(arrival.vertex, arrival.label, arrival.back_edges);
  }
  Finish();
}

void StreamingPartitioner::Run(const GraphStream& stream) {
  StreamCursor cursor(stream);
  Run(cursor);
}

void StreamingPartitioner::BeginPass(const PartitionAssignment* prior) {
  assert(prior != &assignment_ && "prior must not alias the live assignment");
  assert((prior == nullptr || prior->k() == options_.k) &&
         "prior partition count must match the partitioner's k");
  // A prior with a different k would leak partition indices >= k into the
  // scoring scratch arrays; ignore it rather than corrupt memory in Release.
  if (prior != nullptr && prior->k() != options_.k) prior = nullptr;
  assignment_ = PartitionAssignment(
      options_.k, ComputeCapacity(options_.k, options_.num_vertices_hint,
                                  options_.capacity_slack));
  stats_ = PartitionerStats();
  prior_ = prior;
  migration_budget_ = kUnlimitedMigrationBudget;
  home_claims_.clear();
}

void StreamingPartitioner::SetMigrationBudget(uint64_t max_moves) {
  migration_budget_ = max_moves;
  home_claims_.clear();
  if (prior_ != nullptr && max_moves != kUnlimitedMigrationBudget) {
    home_claims_.assign(prior_->Sizes().begin(), prior_->Sizes().end());
  }
}

void StreamingPartitioner::SetMigrationBudget(
    uint64_t max_moves, std::vector<uint32_t> home_claims) {
  migration_budget_ = max_moves;
  home_claims_ = std::move(home_claims);
  if (prior_ == nullptr || max_moves == kUnlimitedMigrationBudget) {
    home_claims_.clear();
    return;
  }
  // Empty claims with a live finite budget fall back to the whole prior's
  // sizes (the one-arg overload's semantics): AssignOrFallback indexes
  // home_claims_ unconditionally on the budgeted path, so it must cover
  // every partition whenever the budget is finite.
  if (home_claims_.empty()) {
    home_claims_.assign(prior_->Sizes().begin(), prior_->Sizes().end());
  }
  assert(home_claims_.size() == assignment_.Sizes().size() &&
         "home claims must cover every partition");
}

void StreamingPartitioner::SetShardCapacities(std::vector<size_t> capacities) {
  if (capacities.empty()) return;
  assignment_.SetCapacities(std::move(capacities));
}

void StreamingPartitioner::AdoptAssignment(PartitionAssignment assignment,
                                           const PartitionerStats& stats) {
  assignment_ = std::move(assignment);
  stats_ = stats;
  prior_ = nullptr;
  migration_budget_ = kUnlimitedMigrationBudget;
  home_claims_.clear();
}

void StreamingPartitioner::AssignOrFallback(VertexId v, uint32_t part) {
  const int32_t home = prior_ != nullptr ? prior_->PartOf(v) : -1;
  const bool budgeted =
      home >= 0 && migration_budget_ != kUnlimitedMigrationBudget;
  if (budgeted) {
    const uint32_t h = static_cast<uint32_t>(home);
    if (part >= assignment_.k()) {
      // Heuristic found no eligible partition: in a budgeted pass the
      // natural fallback is the vertex's reserved home slot.
      ++stats_.overflow_fallbacks;
      part = h;
    } else if (part != h) {
      // A move must fit the budget AND leave the target partition enough
      // free capacity for its outstanding home claims; otherwise every
      // stayer's guaranteed slot (the induction behind the strict cap)
      // would erode. FreeCapacity is SIZE_MAX when unconstrained, which
      // never denies.
      bool deny = stats_.prior_moves >= migration_budget_;
      if (!deny && assignment_.FreeCapacity(part) <= home_claims_[part]) {
        deny = true;
      }
      if (deny) {
        ++stats_.budget_denied_moves;
        part = h;
      }
    }
  }

  uint32_t placed = part;
  bool assigned = false;
  if (part < assignment_.k()) {
    const Status s = assignment_.Assign(v, part);
    if (s.ok()) {
      assigned = true;
    } else if (s.code() != StatusCode::kCapacityExceeded) {
      ++stats_.assign_errors;
      assert(false && "non-capacity Assign error in streaming partitioner");
      return;
    }
  }
  if (!assigned) {
    // No eligible partition (or the chosen one filled up between scoring and
    // assignment): most free capacity wins, least loaded on ties.
    ++stats_.overflow_fallbacks;
    const uint32_t fallback = assignment_.MostFreePartition();
    Status s = assignment_.Assign(v, fallback);
    if (!s.ok() && s.code() == StatusCode::kCapacityExceeded) {
      // Every partition is at C: the stream exceeds k*C vertices. Stretch
      // the bound rather than dropping the vertex.
      ++stats_.forced_placements;
      s = assignment_.ForceAssign(v, fallback);
    }
    if (!s.ok()) {
      ++stats_.assign_errors;
      assert(false && "unrecoverable Assign error in streaming partitioner");
      return;
    }
    placed = fallback;
  }
  if (home >= 0) {
    if (placed != static_cast<uint32_t>(home)) ++stats_.prior_moves;
    // Either way the vertex's home claim is settled.
    if (budgeted && home_claims_[static_cast<uint32_t>(home)] > 0) {
      --home_claims_[static_cast<uint32_t>(home)];
    }
  }
}

uint32_t PickLdgPartition(const PartitionAssignment& assignment,
                          const std::vector<uint32_t>& edges_to_partition,
                          size_t need) {
  std::vector<double> weights(edges_to_partition.begin(),
                              edges_to_partition.end());
  return PickLdgPartitionWeighted(assignment, weights, need);
}

uint32_t PickLdgPartitionWeighted(
    const PartitionAssignment& assignment,
    const std::vector<double>& weight_to_partition, size_t need) {
  const uint32_t k = assignment.k();
  const double capacity =
      assignment.capacity() == 0
          ? static_cast<double>(assignment.NumAssigned() + need) * 2.0
          : static_cast<double>(assignment.capacity());

  uint32_t best = k;
  double best_score = -1.0;
  for (uint32_t p = 0; p < k; ++p) {
    if (assignment.FreeCapacity(p) < need) continue;
    const double penalty =
        1.0 - static_cast<double>(assignment.Sizes()[p]) / capacity;
    const double score = weight_to_partition[p] * penalty;
    const bool better =
        best == k || score > best_score ||
        (score == best_score &&
         assignment.Sizes()[p] < assignment.Sizes()[best]);
    if (better) {
      best = p;
      best_score = score;
    }
  }
  return best;
}

uint32_t PickLdgPartitionWeightedSparse(
    const PartitionAssignment& assignment,
    const std::vector<double>& weight_to_partition,
    Span<const uint32_t> touched, size_t need) {
  const uint32_t k = assignment.k();
  const double capacity =
      assignment.capacity() == 0
          ? static_cast<double>(assignment.NumAssigned() + need) * 2.0
          : static_cast<double>(assignment.capacity());

  // `touched` arrives in first-touch order, not index order, so the dense
  // scan's implicit lowest-index tie preference must be spelled out.
  uint32_t best = k;
  double best_score = -1.0;
  for (const uint32_t p : touched) {
    if (assignment.FreeCapacity(p) < need) continue;
    const double penalty =
        1.0 - static_cast<double>(assignment.Sizes()[p]) / capacity;
    const double score = weight_to_partition[p] * penalty;
    const bool better =
        best == k || score > best_score ||
        (score == best_score &&
         (assignment.Sizes()[p] < assignment.Sizes()[best] ||
          (assignment.Sizes()[p] == assignment.Sizes()[best] && p < best)));
    if (better) {
      best = p;
      best_score = score;
    }
  }
  // A strictly positive winner beats every untouched partition (their weight
  // is zero, so their score is zero at best). Anything else — no eligible
  // touched partition, or an all-zero-score round where the least-loaded
  // eligible partition should win — needs the dense rule.
  if (best < k && best_score > 0.0) return best;
  return PickLdgPartitionWeighted(assignment, weight_to_partition, need);
}

}  // namespace loom
