#ifndef LOOM_PARTITION_REPLICA_SET_H_
#define LOOM_PARTITION_REPLICA_SET_H_

/// \file
/// Secondary vertex replicas (paper §3.2, after Yang et al. [21]): a vertex
/// may be *replicated* into partitions other than its primary one, making
/// traversals into it from those partitions local. The paper positions LOOM
/// as complementary to such replication schemes; the `replication` module
/// computes hotspot replicas, and the query engine accounts for them.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace loom {

/// `PrimaryOf` result for a vertex with no replicas.
inline constexpr uint32_t kNoReplica = ~uint32_t{0};

/// A set of (vertex, partition) replica placements.
///
/// ## Primary-vs-secondary invariants
///
/// A vertex's replica list is kept in insertion order, and its *primary*
/// replica is the list head — the partition the vertex was first placed
/// into (a vertex partitioner's home partition; an edge partitioner's
/// first-edge partition). The audited invariants, checked by
/// `CheckInvariants` and exercised by tests/replication_test.cc:
///
///  * a vertex has exactly one primary, and it is `PartitionsOf(v)[0]`;
///  * erasing a secondary never changes the primary; erasing the primary
///    promotes the *oldest surviving secondary* (insertion order is
///    preserved, never re-sorted);
///  * erasing the last replica removes the vertex entirely, so
///    `NumReplicatedVertices` never counts empty lists;
///  * `NumReplicas` equals the sum of list lengths under any interleaving
///    of Add / Remove / re-Add (re-adding an erased partition appends it
///    as a secondary — the erase forgot its seniority).
class ReplicaSet {
 public:
  ReplicaSet() = default;

  /// Replicates `v` into `partition` (idempotent). The first Add for `v`
  /// makes `partition` its primary.
  void Add(VertexId v, uint32_t partition);

  /// Erases the replica of `v` in `partition`. Returns false (changing
  /// nothing) when it does not exist. Removing the primary promotes the
  /// oldest surviving secondary; removing the last replica forgets the
  /// vertex.
  bool Remove(VertexId v, uint32_t partition);

  /// True iff `v` has a replica in `partition`.
  bool Has(VertexId v, uint32_t partition) const;

  /// Partitions holding a replica of `v`, oldest (primary) first.
  const std::vector<uint32_t>* PartitionsOf(VertexId v) const;

  /// Primary partition of `v`, or kNoReplica when unreplicated.
  uint32_t PrimaryOf(VertexId v) const;

  /// Number of partitions holding a replica of `v`.
  size_t NumReplicasOf(VertexId v) const;

  /// Total number of (vertex, partition) replica pairs.
  size_t NumReplicas() const { return num_replicas_; }

  /// Number of distinct vertices with at least one replica.
  size_t NumReplicatedVertices() const { return replicas_.size(); }

  /// Accounting audit: true iff `NumReplicas` matches the summed list
  /// lengths, no list is empty and no list holds a duplicate partition.
  /// O(replicas); meant for tests and debug assertions, not hot paths.
  bool CheckInvariants() const;

 private:
  std::unordered_map<VertexId, std::vector<uint32_t>> replicas_;
  size_t num_replicas_ = 0;
};

}  // namespace loom

#endif  // LOOM_PARTITION_REPLICA_SET_H_
