#ifndef LOOM_PARTITION_REPLICA_SET_H_
#define LOOM_PARTITION_REPLICA_SET_H_

/// \file
/// Secondary vertex replicas (paper §3.2, after Yang et al. [21]): a vertex
/// may be *replicated* into partitions other than its primary one, making
/// traversals into it from those partitions local. The paper positions LOOM
/// as complementary to such replication schemes; the `replication` module
/// computes hotspot replicas, and the query engine accounts for them.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace loom {

/// A set of (vertex, partition) replica placements.
class ReplicaSet {
 public:
  ReplicaSet() = default;

  /// Replicates `v` into `partition` (idempotent).
  void Add(VertexId v, uint32_t partition);

  /// True iff `v` has a replica in `partition`.
  bool Has(VertexId v, uint32_t partition) const;

  /// Partitions holding a replica of `v` (unsorted).
  const std::vector<uint32_t>* PartitionsOf(VertexId v) const;

  /// Total number of (vertex, partition) replica pairs.
  size_t NumReplicas() const { return num_replicas_; }

  /// Number of distinct vertices with at least one replica.
  size_t NumReplicatedVertices() const { return replicas_.size(); }

 private:
  std::unordered_map<VertexId, std::vector<uint32_t>> replicas_;
  size_t num_replicas_ = 0;
};

}  // namespace loom

#endif  // LOOM_PARTITION_REPLICA_SET_H_
