#ifndef LOOM_PARTITION_REPLICA_SET_H_
#define LOOM_PARTITION_REPLICA_SET_H_

/// \file
/// Secondary vertex replicas (paper §3.2, after Yang et al. [21]): a vertex
/// may be *replicated* into partitions other than its primary one, making
/// traversals into it from those partitions local. The paper positions LOOM
/// as complementary to such replication schemes; the `replication` module
/// computes hotspot replicas, the query engine accounts for them, and the
/// edge partitioners (src/edge_partition/) use it as their vertex→
/// partition-set state — the membership-heavy role that motivates the
/// bitmask index below.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace loom {

/// `PrimaryOf` result for a vertex with no replicas.
inline constexpr uint32_t kNoReplica = ~uint32_t{0};

/// A set of (vertex, partition) replica placements.
///
/// ## Primary-vs-secondary invariants
///
/// A vertex's replica list is kept in insertion order, and its *primary*
/// replica is the list head — the partition the vertex was first placed
/// into (a vertex partitioner's home partition; an edge partitioner's
/// first-edge partition). The audited invariants, checked by
/// `CheckInvariants` and exercised by tests/replication_test.cc:
///
///  * a vertex has exactly one primary, and it is `PartitionsOf(v)[0]`;
///  * erasing a secondary never changes the primary; erasing the primary
///    promotes the *oldest surviving secondary* (insertion order is
///    preserved, never re-sorted);
///  * erasing the last replica removes the vertex entirely, so
///    `NumReplicatedVertices` never counts empty lists;
///  * `NumReplicas` equals the sum of list lengths under any interleaving
///    of Add / Remove / re-Add (re-adding an erased partition appends it
///    as a secondary — the erase forgot its seniority).
///
/// ## Bitmask index
///
/// Alongside the insertion-ordered lists the set maintains a dense
/// per-vertex partition bitmask: `words_per_vertex()` `uint64_t` words per
/// vertex, bit p of word w set iff the vertex has a replica in partition
/// 64w + p. Partitions below 64 live in word 0 — the one-load fast path
/// HDRF's scoring kernel iterates — and the stride grows automatically
/// (restriding the table) the first time a partition >= 64 appears, so
/// k > 64 degrades to a word-vector walk rather than breaking.
///
/// The mask is *authoritative for membership*: `Has` is a mask probe and
/// `Add` consults it before touching the hash map, so the edge-partition
/// hot path (two idempotent Adds per edge, almost always already present)
/// performs no hash lookup at all. Lists and masks always agree
/// (`CheckInvariants` audits the correspondence); only ordering (primary
/// seniority) lives exclusively in the lists.
class ReplicaSet {
 public:
  ReplicaSet() = default;

  /// Replicates `v` into `partition` (idempotent). The first Add for `v`
  /// makes `partition` its primary.
  void Add(VertexId v, uint32_t partition);

  /// Erases the replica of `v` in `partition`. Returns false (changing
  /// nothing) when it does not exist. Removing the primary promotes the
  /// oldest surviving secondary; removing the last replica forgets the
  /// vertex.
  bool Remove(VertexId v, uint32_t partition);

  /// True iff `v` has a replica in `partition`. A mask probe — no hashing.
  bool Has(VertexId v, uint32_t partition) const {
    const uint32_t word = partition >> 6;
    if (word >= words_per_vertex_) return false;
    const size_t base = static_cast<size_t>(v) * words_per_vertex_;
    if (base + word >= masks_.size()) return false;
    return (masks_[base + word] >> (partition & 63)) & 1u;
  }

  /// Word `w` of `v`'s partition bitmask: bit p set iff `v` has a replica
  /// in partition 64w + p. Out-of-range vertices and words read 0. Word 0
  /// is the whole set whenever every partition index is below 64.
  uint64_t MaskWordOf(VertexId v, uint32_t word) const {
    if (word >= words_per_vertex_) return 0;
    const size_t base = static_cast<size_t>(v) * words_per_vertex_;
    return base + word < masks_.size() ? masks_[base + word] : 0;
  }

  /// Number of replicas of `v`, counted from the mask (popcount over the
  /// stride words — no hashing; equals `NumReplicasOf`).
  uint32_t MaskCountOf(VertexId v) const;

  /// Mask words per vertex: 1 until a partition index >= 64 appears.
  uint32_t words_per_vertex() const { return words_per_vertex_; }

  /// Partitions holding a replica of `v`, oldest (primary) first.
  const std::vector<uint32_t>* PartitionsOf(VertexId v) const;

  /// Primary partition of `v`, or kNoReplica when unreplicated.
  uint32_t PrimaryOf(VertexId v) const;

  /// Number of partitions holding a replica of `v`.
  size_t NumReplicasOf(VertexId v) const;

  /// Total number of (vertex, partition) replica pairs.
  size_t NumReplicas() const { return num_replicas_; }

  /// Number of distinct vertices with at least one replica.
  size_t NumReplicatedVertices() const { return replicas_.size(); }

  /// Empties the set while keeping every allocation — the mask table, the
  /// hash-map nodes and each list's capacity — so an immediately following
  /// rebuild over (nearly) the same vertex population re-Adds without a
  /// single allocation or hash-map insert. The sharded edge restream's
  /// merged-pass replay calls this once per pass; `= ReplicaSet()` there
  /// costs a full destruct + realloc of ~|V| nodes and lists.
  ///
  /// Between BeginRebuild and EndRebuild the map transiently holds empty
  /// lists, so `NumReplicatedVertices` over-counts and `CheckInvariants`
  /// fails — always close the pair before the set escapes.
  void BeginRebuild();

  /// Ends a BeginRebuild rebuild: erases map entries whose lists stayed
  /// empty (vertices not re-added), restoring the no-empty-lists invariant,
  /// and recounts `NumReplicas` from the lists (AddOwned does not keep the
  /// running total). O(vertices).
  void EndRebuild();

  /// Counted EndRebuild for an ownership-parallel rebuild whose workers
  /// tallied their AddOwned outcomes: when `refilled_vertices` equals the
  /// retained node count, every node was re-filled — install
  /// `total_replicas` as the replica total and skip the prune walk
  /// entirely. Any mismatch falls back to the walking EndRebuild.
  void EndRebuild(size_t refilled_vertices, size_t total_replicas);

  /// Pre-sizes the mask table to cover (`max_vertex`, `max_partition`) so
  /// no later SetMaskBit within that range reallocates or restrides — the
  /// precondition for calling AddOwned from concurrent owner threads.
  void Reserve(VertexId max_vertex, uint32_t max_partition);

  /// Reserves hash-map buckets (and mask storage) for `num_vertices`
  /// distinct vertices, so a streaming build inserts without rehashing.
  void ReserveVertices(size_t num_vertices);

  /// AddOwned outcome, reported so workers can count re-filled vertices
  /// and added replicas for the counted EndRebuild overload.
  enum class OwnedAdd : uint8_t {
    kNoNode,         ///< `v` has no retained map node; nothing changed.
    kFirstForVertex, ///< added, and `v`'s list was empty before.
    kAdded,          ///< added to an already re-filled vertex.
    kPresent,        ///< idempotent hit; nothing changed.
  };

  /// Owner-thread Add for an ownership-parallel rebuild. Requires: inside
  /// a BeginRebuild/EndRebuild pair, after a `Reserve` covering (`v`,
  /// `partition`), with every vertex written by exactly one thread. Only
  /// `v`'s own mask words and list are touched, so concurrent calls on
  /// distinct vertices never race. On kNoNode — `v` has no retained map
  /// node — nothing changes and the caller must apply that add with the
  /// serial `Add` after joining (inserting a node would mutate shared map
  /// structure).
  OwnedAdd AddOwned(VertexId v, uint32_t partition);

  /// Accounting audit: true iff `NumReplicas` matches the summed list
  /// lengths, no list is empty, no list holds a duplicate partition, and
  /// the bitmask index agrees with the lists bit-for-bit (set exactly where
  /// a list holds the partition). O(replicas + mask words); meant for tests
  /// and debug assertions, not hot paths.
  bool CheckInvariants() const;

 private:
  /// Sets bit `partition` of `v`'s mask, growing the table (and, for
  /// partitions >= 64 * stride, restriding every vertex's words) on demand.
  void SetMaskBit(VertexId v, uint32_t partition);

  /// Clears bit `partition` of `v`'s mask (no-op when out of range).
  void ClearMaskBit(VertexId v, uint32_t partition);

  std::unordered_map<VertexId, std::vector<uint32_t>> replicas_;
  size_t num_replicas_ = 0;
  /// Dense mask table: vertex v's words at [v * stride, (v + 1) * stride).
  std::vector<uint64_t> masks_;
  uint32_t words_per_vertex_ = 1;
};

}  // namespace loom

#endif  // LOOM_PARTITION_REPLICA_SET_H_
