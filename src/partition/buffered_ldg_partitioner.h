#ifndef LOOM_PARTITION_BUFFERED_LDG_PARTITIONER_H_
#define LOOM_PARTITION_BUFFERED_LDG_PARTITIONER_H_

/// \file
/// Windowed LDG: buffers a sliding window over the stream (§4.1) and assigns
/// each vertex only when it is evicted, by which time more of its edges have
/// been observed. This is exactly LOOM minus the motif machinery — the
/// paper's implicit "buffering alone" ablation (experiment E8a).

#include "common/small_vector.h"
#include "partition/partitioner.h"
#include "stream/window.h"

namespace loom {

/// LDG applied at window-eviction time.
class BufferedLdgPartitioner : public StreamingPartitioner {
 public:
  explicit BufferedLdgPartitioner(const PartitionerOptions& options)
      : StreamingPartitioner(options),
        window_(options.window_size),
        edge_counts_(options.k, 0) {}

  void OnVertex(VertexId v, Label label,
                Span<const VertexId> back_edges) override;

  void Finish() override;

  /// Restream hook: also discards any still-buffered window members, so a
  /// partitioner abandoned mid-stream starts the pass clean.
  void BeginPass(const PartitionAssignment* prior) override;

  std::string Name() const override { return "ldg-buffered"; }

  /// Shard clone: fresh instance with its own (empty) window of the same
  /// size.
  std::unique_ptr<StreamingPartitioner> CloneForShard() const override {
    return std::make_unique<BufferedLdgPartitioner>(options_);
  }

 private:
  void AssignMember(const WindowMember& member);

  StreamWindow window_;
  std::vector<uint32_t> edge_counts_;
  /// Partitions dirtied by the last member (sparse O(degree) reset).
  SmallVector<uint32_t, 16> touched_;
};

}  // namespace loom

#endif  // LOOM_PARTITION_BUFFERED_LDG_PARTITIONER_H_
