#include "partition/offline_partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "common/rng.h"
#include "partition/partitioner.h"

namespace loom {
namespace {

/// Internal weighted graph: coarsening accumulates vertex and edge weights.
struct WeightedGraph {
  std::vector<uint64_t> vweight;
  /// adj[v] = (neighbour, accumulated edge weight); no duplicates.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> adj;

  size_t n() const { return vweight.size(); }

  uint64_t TotalWeight() const {
    uint64_t total = 0;
    for (const uint64_t w : vweight) total += w;
    return total;
  }
};

WeightedGraph FromLabeled(const LabeledGraph& g) {
  WeightedGraph wg;
  wg.vweight.assign(g.NumVertices(), 1);
  wg.adj.resize(g.NumVertices());
  g.ForEachEdge([&](VertexId u, VertexId v) {
    wg.adj[u].emplace_back(v, 1);
    wg.adj[v].emplace_back(u, 1);
  });
  return wg;
}

/// One coarsening step by heavy-edge matching. Returns the coarse graph and
/// fills fine->coarse mapping.
WeightedGraph CoarsenOnce(const WeightedGraph& fine, Rng& rng,
                          std::vector<uint32_t>* fine_to_coarse) {
  const size_t n = fine.n();
  std::vector<uint32_t> order(n);
  for (uint32_t v = 0; v < n; ++v) order[v] = v;
  rng.Shuffle(&order);

  constexpr uint32_t kUnmatched = ~uint32_t{0};
  std::vector<uint32_t> match(n, kUnmatched);
  for (const uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    uint32_t best = kUnmatched;
    uint64_t best_weight = 0;
    for (const auto& [w, weight] : fine.adj[v]) {
      if (match[w] == kUnmatched && weight > best_weight) {
        best = w;
        best_weight = weight;
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  fine_to_coarse->assign(n, 0);
  uint32_t next_coarse = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (match[v] == v || v < match[v]) {
      (*fine_to_coarse)[v] = next_coarse;
      if (match[v] != v) (*fine_to_coarse)[match[v]] = next_coarse;
      ++next_coarse;
    }
  }

  WeightedGraph coarse;
  coarse.vweight.assign(next_coarse, 0);
  coarse.adj.resize(next_coarse);
  for (uint32_t v = 0; v < n; ++v) {
    coarse.vweight[(*fine_to_coarse)[v]] += fine.vweight[v];
  }
  // Accumulate coarse edges; a scratch map per coarse vertex keeps it linear.
  std::unordered_map<uint64_t, uint64_t> edge_weights;
  edge_weights.reserve(n * 2);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t cv = (*fine_to_coarse)[v];
    for (const auto& [w, weight] : fine.adj[v]) {
      const uint32_t cw = (*fine_to_coarse)[w];
      if (cv >= cw) continue;  // each fine edge counted once, no self-loops
      const uint64_t key = (static_cast<uint64_t>(cv) << 32) | cw;
      edge_weights[key] += weight;
    }
  }
  for (const auto& [key, weight] : edge_weights) {
    const uint32_t cv = static_cast<uint32_t>(key >> 32);
    const uint32_t cw = static_cast<uint32_t>(key & 0xffffffffu);
    coarse.adj[cv].emplace_back(cw, weight);
    coarse.adj[cw].emplace_back(cv, weight);
  }
  return coarse;
}

/// Balanced greedy region growth for the coarsest graph.
std::vector<uint32_t> InitialPartition(const WeightedGraph& g, uint32_t k,
                                       uint64_t weight_cap, Rng& rng) {
  const size_t n = g.n();
  std::vector<uint32_t> part(n, k);
  std::vector<uint64_t> weights(k, 0);

  std::vector<uint32_t> order(n);
  for (uint32_t v = 0; v < n; ++v) order[v] = v;
  rng.Shuffle(&order);

  const uint64_t target = std::max<uint64_t>(1, g.TotalWeight() / k);
  size_t seed_cursor = 0;
  for (uint32_t p = 0; p < k; ++p) {
    // Seed: next unassigned vertex in the shuffled order.
    while (seed_cursor < n && part[order[seed_cursor]] != k) ++seed_cursor;
    if (seed_cursor >= n) break;
    std::deque<uint32_t> frontier = {order[seed_cursor]};
    while (!frontier.empty() && weights[p] < target) {
      const uint32_t v = frontier.front();
      frontier.pop_front();
      if (part[v] != k) continue;
      if (weights[p] + g.vweight[v] > weight_cap) continue;
      part[v] = p;
      weights[p] += g.vweight[v];
      for (const auto& [w, weight] : g.adj[v]) {
        (void)weight;
        if (part[w] == k) frontier.push_back(w);
      }
    }
  }
  // Leftovers: lightest partition with room.
  for (uint32_t v = 0; v < n; ++v) {
    if (part[v] != k) continue;
    uint32_t best = 0;
    for (uint32_t p = 1; p < k; ++p) {
      if (weights[p] < weights[best]) best = p;
    }
    part[v] = best;
    weights[best] += g.vweight[v];
  }
  return part;
}

uint64_t CutWeight(const WeightedGraph& g, const std::vector<uint32_t>& part) {
  uint64_t cut = 0;
  for (uint32_t v = 0; v < g.n(); ++v) {
    for (const auto& [w, weight] : g.adj[v]) {
      if (v < w && part[v] != part[w]) cut += weight;
    }
  }
  return cut;
}

/// Boundary FM-style refinement: greedily move boundary vertices to the
/// partition with the best cut gain, subject to the weight cap.
void Refine(const WeightedGraph& g, uint32_t k, uint64_t weight_cap,
            int max_passes, Rng& rng, std::vector<uint32_t>* part) {
  const size_t n = g.n();
  std::vector<uint64_t> weights(k, 0);
  for (uint32_t v = 0; v < n; ++v) weights[(*part)[v]] += g.vweight[v];

  std::vector<uint64_t> conn(k, 0);
  for (int pass = 0; pass < max_passes; ++pass) {
    std::vector<uint32_t> boundary;
    for (uint32_t v = 0; v < n; ++v) {
      for (const auto& [w, weight] : g.adj[v]) {
        (void)weight;
        if ((*part)[w] != (*part)[v]) {
          boundary.push_back(v);
          break;
        }
      }
    }
    rng.Shuffle(&boundary);

    bool moved = false;
    for (const uint32_t v : boundary) {
      const uint32_t own = (*part)[v];
      std::fill(conn.begin(), conn.end(), 0);
      for (const auto& [w, weight] : g.adj[v]) conn[(*part)[w]] += weight;
      uint32_t best = own;
      int64_t best_gain = 0;
      for (uint32_t p = 0; p < k; ++p) {
        if (p == own) continue;
        if (weights[p] + g.vweight[v] > weight_cap) continue;
        const int64_t gain = static_cast<int64_t>(conn[p]) -
                             static_cast<int64_t>(conn[own]);
        if (gain > best_gain) {
          best = p;
          best_gain = gain;
        }
      }
      if (best != own) {
        (*part)[v] = best;
        weights[own] -= g.vweight[v];
        weights[best] += g.vweight[v];
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

Result<PartitionAssignment> OfflineMultilevelPartition(
    const LabeledGraph& g, const OfflineOptions& options,
    OfflineStats* stats) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (g.NumVertices() == 0) {
    return PartitionAssignment(options.k, 0);
  }
  Rng rng(options.seed);

  // --- Coarsening phase.
  std::vector<WeightedGraph> levels;
  std::vector<std::vector<uint32_t>> mappings;  // mappings[i]: level i -> i+1
  levels.push_back(FromLabeled(g));
  const size_t stop_at =
      std::max<size_t>(options.coarsen_target, 8u * options.k);
  while (levels.back().n() > stop_at) {
    std::vector<uint32_t> mapping;
    WeightedGraph coarse = CoarsenOnce(levels.back(), rng, &mapping);
    // Matching stalls on star-like graphs; stop when compression < 10%.
    if (coarse.n() > levels.back().n() * 9 / 10) break;
    levels.push_back(std::move(coarse));
    mappings.push_back(std::move(mapping));
  }

  const uint64_t total_weight = levels.front().TotalWeight();
  const uint64_t weight_cap = static_cast<uint64_t>(std::ceil(
      options.balance_slack * static_cast<double>(total_weight) /
      static_cast<double>(options.k)));

  // --- Initial partition on the coarsest level.
  std::vector<uint32_t> part =
      InitialPartition(levels.back(), options.k, weight_cap, rng);
  const size_t initial_cut =
      static_cast<size_t>(CutWeight(levels.back(), part));
  Refine(levels.back(), options.k, weight_cap, options.refine_passes, rng,
         &part);

  // --- Uncoarsen: project and refine at every level.
  for (size_t level = levels.size() - 1; level-- > 0;) {
    const std::vector<uint32_t>& mapping = mappings[level];
    std::vector<uint32_t> fine_part(levels[level].n());
    for (uint32_t v = 0; v < levels[level].n(); ++v) {
      fine_part[v] = part[mapping[v]];
    }
    part = std::move(fine_part);
    Refine(levels[level], options.k, weight_cap, options.refine_passes, rng,
           &part);
  }

  if (stats != nullptr) {
    stats->levels = levels.size();
    stats->coarsest_vertices = levels.back().n();
    stats->initial_cut = initial_cut;
    stats->final_cut = static_cast<size_t>(CutWeight(levels.front(), part));
  }

  // --- Emit as a PartitionAssignment. The offline balance model is weight
  // based; the vertex-count capacity uses the same slack.
  PartitionAssignment assignment(
      options.k,
      ComputeCapacity(options.k, g.NumVertices(), options.balance_slack));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    LOOM_RETURN_IF_ERROR(assignment.Assign(v, part[v]));
  }
  return assignment;
}

}  // namespace loom
