#include "partition/replica_set.h"

#include <algorithm>

namespace loom {

void ReplicaSet::Add(VertexId v, uint32_t partition) {
  auto& parts = replicas_[v];
  if (std::find(parts.begin(), parts.end(), partition) != parts.end()) return;
  parts.push_back(partition);
  ++num_replicas_;
}

bool ReplicaSet::Has(VertexId v, uint32_t partition) const {
  const auto it = replicas_.find(v);
  if (it == replicas_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), partition) !=
         it->second.end();
}

bool ReplicaSet::Remove(VertexId v, uint32_t partition) {
  const auto it = replicas_.find(v);
  if (it == replicas_.end()) return false;
  auto& parts = it->second;
  const auto pos = std::find(parts.begin(), parts.end(), partition);
  if (pos == parts.end()) return false;
  // erase (not swap-and-pop) keeps insertion order, so removing the
  // primary promotes the oldest surviving secondary.
  parts.erase(pos);
  --num_replicas_;
  if (parts.empty()) replicas_.erase(it);
  return true;
}

const std::vector<uint32_t>* ReplicaSet::PartitionsOf(VertexId v) const {
  const auto it = replicas_.find(v);
  return it == replicas_.end() ? nullptr : &it->second;
}

uint32_t ReplicaSet::PrimaryOf(VertexId v) const {
  const auto it = replicas_.find(v);
  if (it == replicas_.end()) return kNoReplica;
  return it->second.front();
}

size_t ReplicaSet::NumReplicasOf(VertexId v) const {
  const auto it = replicas_.find(v);
  return it == replicas_.end() ? 0 : it->second.size();
}

bool ReplicaSet::CheckInvariants() const {
  size_t total = 0;
  for (const auto& [vertex, parts] : replicas_) {
    (void)vertex;
    if (parts.empty()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = i + 1; j < parts.size(); ++j) {
        if (parts[i] == parts[j]) return false;
      }
    }
    total += parts.size();
  }
  return total == num_replicas_;
}

}  // namespace loom
