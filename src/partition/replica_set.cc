#include "partition/replica_set.h"

#include <algorithm>
#include <iterator>

namespace loom {

void ReplicaSet::SetMaskBit(VertexId v, uint32_t partition) {
  const uint32_t word = partition >> 6;
  if (word >= words_per_vertex_) {
    // Restride: the first partition index >= 64 * stride widens every
    // vertex's mask row in place (old word w of vertex v moves to the same
    // word of the wider row). Happens at most log2(k/64) times per set.
    const uint32_t new_stride = word + 1;
    std::vector<uint64_t> wide(
        (masks_.size() / words_per_vertex_) * new_stride, 0);
    const size_t num_vertices = masks_.size() / words_per_vertex_;
    for (size_t i = 0; i < num_vertices; ++i) {
      for (uint32_t w = 0; w < words_per_vertex_; ++w) {
        wide[i * new_stride + w] = masks_[i * words_per_vertex_ + w];
      }
    }
    masks_ = std::move(wide);
    words_per_vertex_ = new_stride;
  }
  const size_t base = static_cast<size_t>(v) * words_per_vertex_;
  if (base + words_per_vertex_ > masks_.size()) {
    masks_.resize((static_cast<size_t>(v) + 1) * words_per_vertex_, 0);
  }
  masks_[base + word] |= uint64_t{1} << (partition & 63);
}

void ReplicaSet::ClearMaskBit(VertexId v, uint32_t partition) {
  const uint32_t word = partition >> 6;
  if (word >= words_per_vertex_) return;
  const size_t base = static_cast<size_t>(v) * words_per_vertex_;
  if (base + word >= masks_.size()) return;
  masks_[base + word] &= ~(uint64_t{1} << (partition & 63));
}

void ReplicaSet::Add(VertexId v, uint32_t partition) {
  // Mask-first: the hot edge-partition path calls Add twice per edge and
  // the replica almost always exists already — answer that case from the
  // dense table without hashing.
  if (Has(v, partition)) return;
  SetMaskBit(v, partition);
  replicas_[v].push_back(partition);
  ++num_replicas_;
}

bool ReplicaSet::Remove(VertexId v, uint32_t partition) {
  if (!Has(v, partition)) return false;
  const auto it = replicas_.find(v);
  auto& parts = it->second;
  const auto pos = std::find(parts.begin(), parts.end(), partition);
  // erase (not swap-and-pop) keeps insertion order, so removing the
  // primary promotes the oldest surviving secondary.
  parts.erase(pos);
  ClearMaskBit(v, partition);
  --num_replicas_;
  if (parts.empty()) replicas_.erase(it);
  return true;
}

void ReplicaSet::BeginRebuild() {
  for (auto& [vertex, parts] : replicas_) {
    (void)vertex;
    parts.clear();
  }
  std::fill(masks_.begin(), masks_.end(), 0);
  num_replicas_ = 0;
}

void ReplicaSet::EndRebuild() {
  num_replicas_ = 0;
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if (it->second.empty()) {
      it = replicas_.erase(it);
    } else {
      num_replicas_ += it->second.size();
      it = std::next(it);
    }
  }
}

void ReplicaSet::Reserve(VertexId max_vertex, uint32_t max_partition) {
  // If the bit is already set the table covers the range; otherwise set
  // and clear it — SetMaskBit does the resize/restride, the clear restores
  // the contents.
  if (Has(max_vertex, max_partition)) return;
  SetMaskBit(max_vertex, max_partition);
  ClearMaskBit(max_vertex, max_partition);
}

void ReplicaSet::ReserveVertices(size_t num_vertices) {
  replicas_.reserve(num_vertices);
  masks_.reserve(num_vertices * words_per_vertex_);
}

ReplicaSet::OwnedAdd ReplicaSet::AddOwned(VertexId v, uint32_t partition) {
  if (Has(v, partition)) return OwnedAdd::kPresent;
  const auto it = replicas_.find(v);
  if (it == replicas_.end()) return OwnedAdd::kNoNode;
  SetMaskBit(v, partition);
  const bool first = it->second.empty();
  it->second.push_back(partition);
  return first ? OwnedAdd::kFirstForVertex : OwnedAdd::kAdded;
}

void ReplicaSet::EndRebuild(size_t refilled_vertices, size_t total_replicas) {
  if (refilled_vertices == replicas_.size()) {
    num_replicas_ = total_replicas;
    return;
  }
  EndRebuild();
}

uint32_t ReplicaSet::MaskCountOf(VertexId v) const {
  const size_t base = static_cast<size_t>(v) * words_per_vertex_;
  uint32_t count = 0;
  for (uint32_t w = 0; w < words_per_vertex_; ++w) {
    if (base + w >= masks_.size()) break;
    count += static_cast<uint32_t>(__builtin_popcountll(masks_[base + w]));
  }
  return count;
}

const std::vector<uint32_t>* ReplicaSet::PartitionsOf(VertexId v) const {
  const auto it = replicas_.find(v);
  // A node emptied by BeginRebuild and not yet re-filled reads as absent.
  if (it == replicas_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

uint32_t ReplicaSet::PrimaryOf(VertexId v) const {
  const auto it = replicas_.find(v);
  if (it == replicas_.end() || it->second.empty()) return kNoReplica;
  return it->second.front();
}

size_t ReplicaSet::NumReplicasOf(VertexId v) const {
  const auto it = replicas_.find(v);
  return it == replicas_.end() ? 0 : it->second.size();
}

bool ReplicaSet::CheckInvariants() const {
  size_t total = 0;
  VertexId max_vertex = 0;
  for (const auto& [vertex, parts] : replicas_) {
    max_vertex = std::max(max_vertex, vertex);
    if (parts.empty()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = i + 1; j < parts.size(); ++j) {
        if (parts[i] == parts[j]) return false;
      }
    }
    // Every listed partition must be set in the mask.
    for (const uint32_t p : parts) {
      if (!Has(vertex, p)) return false;
    }
    total += parts.size();
  }
  if (total != num_replicas_) return false;
  // Every set mask bit must be listed (no stale bits). Scan the dense
  // table directly so vertices absent from the map are audited too.
  const size_t num_rows = masks_.size() / words_per_vertex_;
  for (size_t i = 0; i < num_rows; ++i) {
    const VertexId v = static_cast<VertexId>(i);
    const auto it = replicas_.find(v);
    for (uint32_t w = 0; w < words_per_vertex_; ++w) {
      uint64_t bits = masks_[i * words_per_vertex_ + w];
      while (bits != 0) {
        const uint32_t p =
            (w << 6) + static_cast<uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        if (it == replicas_.end()) return false;
        if (std::find(it->second.begin(), it->second.end(), p) ==
            it->second.end()) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace loom
