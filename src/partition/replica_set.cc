#include "partition/replica_set.h"

#include <algorithm>

namespace loom {

void ReplicaSet::Add(VertexId v, uint32_t partition) {
  auto& parts = replicas_[v];
  if (std::find(parts.begin(), parts.end(), partition) != parts.end()) return;
  parts.push_back(partition);
  ++num_replicas_;
}

bool ReplicaSet::Has(VertexId v, uint32_t partition) const {
  const auto it = replicas_.find(v);
  if (it == replicas_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), partition) !=
         it->second.end();
}

const std::vector<uint32_t>* ReplicaSet::PartitionsOf(VertexId v) const {
  const auto it = replicas_.find(v);
  return it == replicas_.end() ? nullptr : &it->second;
}

}  // namespace loom
