#include "partition/fennel_partitioner.h"

#include <algorithm>
#include <cmath>

namespace loom {

FennelPartitioner::FennelPartitioner(const PartitionerOptions& options)
    : StreamingPartitioner(options), edge_counts_(options.k, 0) {
  const double n = std::max<double>(1.0, options.num_vertices_hint);
  const double m = std::max<double>(1.0, options.num_edges_hint);
  const double k = options.k;
  alpha_ = m * std::pow(k, gamma_ - 1.0) / std::pow(n, gamma_);
}

void FennelPartitioner::OnVertex(VertexId v, Label /*label*/,
                                 Span<const VertexId> back_edges) {
  for (const uint32_t p : touched_) edge_counts_[p] = 0;
  touched_.clear();
  for (const VertexId w : back_edges) {
    const int32_t p = ScorePartOf(w);
    if (p >= 0 && edge_counts_[static_cast<uint32_t>(p)]++ == 0) {
      touched_.push_back(static_cast<uint32_t>(p));
    }
  }

  uint32_t best = assignment_.k();
  double best_score = 0.0;
  for (uint32_t p = 0; p < assignment_.k(); ++p) {
    if (assignment_.FreeCapacity(p) < 1) continue;
    const double size = assignment_.Sizes()[p];
    const double score = static_cast<double>(edge_counts_[p]) -
                         alpha_ * gamma_ * std::pow(size, gamma_ - 1.0);
    const bool better =
        best == assignment_.k() || score > best_score ||
        (score == best_score &&
         assignment_.Sizes()[p] < assignment_.Sizes()[best]);
    if (better) {
      best = p;
      best_score = score;
    }
  }
  AssignOrFallback(v, best);
}

}  // namespace loom
