#ifndef LOOM_PARTITION_PARTITION_IO_H_
#define LOOM_PARTITION_PARTITION_IO_H_

/// \file
/// Assignment serialization: the output artefact of a partitioning run, as
/// consumed by a distributed graph store's placement layer.
///
/// Format:
///
///     loom-assignment 1
///     k <k> capacity <C>
///     <vertex> <partition>        (one line per assigned vertex)

#include <string>

#include "common/result.h"
#include "partition/partition_state.h"

namespace loom {

/// Writes the assignment to `path`.
Status SaveAssignment(const PartitionAssignment& assignment,
                      const std::string& path);

/// Reads an assignment from `path`.
Result<PartitionAssignment> LoadAssignment(const std::string& path);

}  // namespace loom

#endif  // LOOM_PARTITION_PARTITION_IO_H_
