#include "partition/buffered_ldg_partitioner.h"

#include <algorithm>
#include <cassert>

namespace loom {

void BufferedLdgPartitioner::OnVertex(VertexId v, Label label,
                                      const std::vector<VertexId>& back_edges) {
  if (window_.Full()) {
    AssignMember(window_.PopOldest());
  }
  window_.Push(v, label, back_edges);
}

void BufferedLdgPartitioner::Finish() {
  while (!window_.Empty()) {
    AssignMember(window_.PopOldest());
  }
}

void BufferedLdgPartitioner::AssignMember(const WindowMember& member) {
  std::fill(edge_counts_.begin(), edge_counts_.end(), 0);
  for (const VertexId w : member.neighbors) {
    const int32_t p = assignment_.PartOf(w);
    if (p >= 0) ++edge_counts_[static_cast<uint32_t>(p)];
  }
  const uint32_t part = PickLdgPartition(assignment_, edge_counts_);
  assert(part < assignment_.k() && "all partitions full");
  const Status s = assignment_.Assign(member.id, part);
  assert(s.ok());
  (void)s;
}

}  // namespace loom
