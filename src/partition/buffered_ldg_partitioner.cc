#include "partition/buffered_ldg_partitioner.h"

#include <algorithm>

namespace loom {

void BufferedLdgPartitioner::OnVertex(VertexId v, Label label,
                                      Span<const VertexId> back_edges) {
  if (window_.Full()) {
    AssignMember(window_.PopOldest());
  }
  // Restream arrivals already carry the full neighbourhood; reverse
  // recording would double every window-internal edge.
  window_.Push(v, label, back_edges, /*record_reverse=*/!HasPrior());
}

void BufferedLdgPartitioner::Finish() {
  while (!window_.Empty()) {
    AssignMember(window_.PopOldest());
  }
}

void BufferedLdgPartitioner::BeginPass(const PartitionAssignment* prior) {
  StreamingPartitioner::BeginPass(prior);
  window_ = StreamWindow(options_.window_size);
}

void BufferedLdgPartitioner::AssignMember(const WindowMember& member) {
  for (const uint32_t p : touched_) edge_counts_[p] = 0;
  touched_.clear();
  for (const VertexId w : member.neighbors) {
    const int32_t p = ScorePartOf(w);
    if (p >= 0 && edge_counts_[static_cast<uint32_t>(p)]++ == 0) {
      touched_.push_back(static_cast<uint32_t>(p));
    }
  }
  AssignOrFallback(member.id, PickLdgPartition(assignment_, edge_counts_));
}

}  // namespace loom
