#include "partition/ldg_partitioner.h"

#include <algorithm>

namespace loom {

void LdgPartitioner::OnVertex(VertexId v, Label /*label*/,
                              const std::vector<VertexId>& back_edges) {
  std::fill(edge_counts_.begin(), edge_counts_.end(), 0);
  for (const VertexId w : back_edges) {
    const int32_t p = ScorePartOf(w);
    if (p >= 0) ++edge_counts_[static_cast<uint32_t>(p)];
  }
  AssignOrFallback(v, PickLdgPartition(assignment_, edge_counts_));
}

}  // namespace loom
