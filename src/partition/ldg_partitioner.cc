#include "partition/ldg_partitioner.h"

#include <algorithm>
#include <cassert>

namespace loom {

void LdgPartitioner::OnVertex(VertexId v, Label /*label*/,
                              const std::vector<VertexId>& back_edges) {
  std::fill(edge_counts_.begin(), edge_counts_.end(), 0);
  for (const VertexId w : back_edges) {
    const int32_t p = assignment_.PartOf(w);
    if (p >= 0) ++edge_counts_[static_cast<uint32_t>(p)];
  }
  const uint32_t part = PickLdgPartition(assignment_, edge_counts_);
  assert(part < assignment_.k() && "all partitions full");
  const Status s = assignment_.Assign(v, part);
  assert(s.ok());
  (void)s;
}

}  // namespace loom
