#include "partition/ldg_partitioner.h"

namespace loom {

void LdgPartitioner::OnVertex(VertexId v, Label /*label*/,
                              Span<const VertexId> back_edges) {
  // Sparse reset: only the partitions touched by the previous vertex are
  // dirty, so clearing them costs O(degree) instead of O(k) per arrival.
  for (const uint32_t p : touched_) edge_counts_[p] = 0;
  touched_.clear();
  for (const VertexId w : back_edges) {
    const int32_t p = ScorePartOf(w);
    if (p >= 0 && edge_counts_[static_cast<uint32_t>(p)]++ == 0) {
      touched_.push_back(static_cast<uint32_t>(p));
    }
  }
  AssignOrFallback(v, PickLdgPartition(assignment_, edge_counts_));
}

}  // namespace loom
