#ifndef LOOM_PARTITION_FENNEL_PARTITIONER_H_
#define LOOM_PARTITION_FENNEL_PARTITIONER_H_

/// \file
/// Fennel (Tsourakakis, Gkantsidis, Radunovic & Vojnovic, WSDM'14), the other
/// state-of-the-art streaming heuristic the paper cites [19]: interpolates
/// between neighbour attraction and a superlinear size penalty,
/// score_i = |N(v) ∩ V_i| − α · γ · |V_i|^(γ−1).

#include "common/small_vector.h"
#include "partition/partitioner.h"

namespace loom {

/// Streaming Fennel with the paper's standard parameterisation
/// (γ = 1.5, α = m · k^(γ−1) / n^γ) and a hard capacity ν·n/k.
class FennelPartitioner : public StreamingPartitioner {
 public:
  explicit FennelPartitioner(const PartitionerOptions& options);

  void OnVertex(VertexId v, Label label,
                Span<const VertexId> back_edges) override;

  std::string Name() const override { return "fennel"; }

  double alpha() const { return alpha_; }
  double gamma() const { return gamma_; }

  /// Shard clone: fresh instance; alpha/gamma re-derive from the options.
  std::unique_ptr<StreamingPartitioner> CloneForShard() const override {
    return std::make_unique<FennelPartitioner>(options_);
  }

 private:
  double gamma_ = 1.5;
  double alpha_ = 1.0;
  std::vector<uint32_t> edge_counts_;
  /// Partitions dirtied by the last vertex (sparse O(degree) reset).
  SmallVector<uint32_t, 16> touched_;
};

}  // namespace loom

#endif  // LOOM_PARTITION_FENNEL_PARTITIONER_H_
