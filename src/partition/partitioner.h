#ifndef LOOM_PARTITION_PARTITIONER_H_
#define LOOM_PARTITION_PARTITIONER_H_

/// \file
/// The streaming-partitioner interface (§3.1): each vertex is considered
/// once, in stream order, carrying its edges to earlier arrivals; the
/// partitioner assigns it (possibly after buffering a bounded window) and
/// never revisits the decision.

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partition_state.h"
#include "stream/stream.h"

namespace loom {

/// Configuration shared by all streaming partitioners.
struct PartitionerOptions {
  /// Number of partitions k.
  uint32_t k = 4;
  /// Expected vertex count n; sizes the capacity constraint C.
  size_t num_vertices_hint = 0;
  /// Expected edge count m; used by Fennel's alpha.
  size_t num_edges_hint = 0;
  /// Capacity slack: C = ceil(slack * n / k). 1.0 = perfectly tight.
  double capacity_slack = 1.1;
  /// Buffer size for windowed partitioners (ignored by one-shot heuristics).
  size_t window_size = 256;
  /// Seed for any internal randomness.
  uint64_t seed = 42;
};

/// The capacity constraint C = ceil(slack * n / k), at least 1.
size_t ComputeCapacity(uint32_t k, size_t num_vertices, double slack);

/// Base class for streaming partitioners.
class StreamingPartitioner {
 public:
  explicit StreamingPartitioner(const PartitionerOptions& options)
      : options_(options),
        assignment_(options.k,
                    ComputeCapacity(options.k, options.num_vertices_hint,
                                    options.capacity_slack)) {}
  virtual ~StreamingPartitioner() = default;

  StreamingPartitioner(const StreamingPartitioner&) = delete;
  StreamingPartitioner& operator=(const StreamingPartitioner&) = delete;

  /// Consumes one arrival: vertex `v` with `label` and its edges to
  /// already-arrived vertices.
  virtual void OnVertex(VertexId v, Label label,
                        const std::vector<VertexId>& back_edges) = 0;

  /// Flushes buffered state; after this every streamed vertex is assigned.
  virtual void Finish() {}

  /// Partitioner name for result tables.
  virtual std::string Name() const = 0;

  /// Feeds the whole stream and finishes.
  void Run(const GraphStream& stream);

  const PartitionAssignment& assignment() const { return assignment_; }
  const PartitionerOptions& options() const { return options_; }

 protected:
  PartitionerOptions options_;
  PartitionAssignment assignment_;
};

/// Shared LDG placement rule (§4.1): pick argmax_i |edges_i| * (1 - |Vi|/C)
/// over partitions with at least `need` free slots; ties prefer the smaller
/// partition, then the lower index; all-zero scores fall back to the least
/// loaded eligible partition. Returns k (invalid) iff no partition has room.
uint32_t PickLdgPartition(const PartitionAssignment& assignment,
                          const std::vector<uint32_t>& edges_to_partition,
                          size_t need = 1);

/// Weighted LDG variant (paper §5 future work): edge counts are replaced by
/// arbitrary non-negative weights (e.g. traversal probabilities).
uint32_t PickLdgPartitionWeighted(const PartitionAssignment& assignment,
                                  const std::vector<double>& weight_to_partition,
                                  size_t need = 1);

}  // namespace loom

#endif  // LOOM_PARTITION_PARTITIONER_H_
