#ifndef LOOM_PARTITION_PARTITIONER_H_
#define LOOM_PARTITION_PARTITIONER_H_

/// \file
/// The streaming-partitioner interface (§3.1): each vertex is considered
/// once, in stream order, carrying its edges to earlier arrivals; the
/// partitioner assigns it (possibly after buffering a bounded window) and
/// never revisits the decision.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/span.h"
#include "partition/partition_state.h"
#include "stream/arrival_source.h"
#include "stream/stream.h"

namespace loom {

class ClusterLog;
class ClusterMemo;

/// Configuration shared by all streaming partitioners.
struct PartitionerOptions {
  /// Number of partitions k.
  uint32_t k = 4;
  /// Expected vertex count n; sizes the capacity constraint C.
  size_t num_vertices_hint = 0;
  /// Expected edge count m; used by Fennel's alpha.
  size_t num_edges_hint = 0;
  /// Capacity slack: C = ceil(slack * n / k). 1.0 = perfectly tight.
  double capacity_slack = 1.1;
  /// Buffer size for windowed partitioners (ignored by one-shot heuristics).
  size_t window_size = 256;
  /// Seed for any internal randomness.
  uint64_t seed = 42;
};

/// The capacity constraint C = ceil(slack * n / k), at least 1.
size_t ComputeCapacity(uint32_t k, size_t num_vertices, double slack);

/// Counters for the capacity-overflow fallback shared by every streaming
/// partitioner: when the placement heuristic finds no eligible partition the
/// vertex is re-routed to the partition with the most free capacity — past
/// the capacity bound C only once every partition is full — instead of being
/// dropped (the pre-fix behaviour under NDEBUG) or asserted on (Debug).
struct PartitionerStats {
  /// Placements where the heuristic found no partition with room and the
  /// vertex fell back to the most-free partition.
  uint64_t overflow_fallbacks = 0;
  /// Fallback placements forced past C because every partition was full;
  /// only possible when the stream carries more than k·C vertices.
  uint64_t forced_placements = 0;
  /// Assign() failures that were not capacity-related (double assignment,
  /// bad index). Always a partitioner logic error; surfaced here so Release
  /// builds report it instead of silently discarding the Status.
  uint64_t assign_errors = 0;
  /// Restream passes only: placements that landed on a different partition
  /// than the prior pass assigned — the pass's migration count, maintained
  /// live so a migration budget can be enforced mid-stream.
  uint64_t prior_moves = 0;
  /// Budgeted restream passes only: would-be moves clamped back to the
  /// vertex's prior partition — either because the migration budget was
  /// already spent, or because the move target's free capacity was fully
  /// reserved for its not-yet-replayed prior members (the home-slot
  /// reservation that keeps the budget strict).
  uint64_t budget_denied_moves = 0;
};

/// Base class for streaming partitioners.
///
/// ## Lifecycle (the supported surface)
///
/// A partitioner moves through these states; everything else in the class
/// is plumbing for one of the arrows:
///
///   fresh ──OnVertex*──▶ streaming ──Finish──▶ finished
///     ▲                                           │
///     └────────────── Reset ◀────────────────────┘
///
///  * **Single pass**: `OnVertex` per arrival in stream order (or `Run` for
///    a whole recorded stream), then `Finish` — after which every streamed
///    vertex is assigned and `assignment()` is final for the pass.
///  * **Restream**: `BeginPass(&prior)` rewinds to fresh with the previous
///    pass's assignment installed as the scoring prior (optionally budgeted
///    via `SetMigrationBudget`), then stream + `Finish` again. `Reset()` is
///    the no-prior special case: back to fresh, nothing remembered.
///  * **Adoption**: `AdoptAssignment` installs an externally composed
///    result (a sharded merge, a keep-best reaction) as if a serial pass
///    had just finished — the partitioner continues live from it.
///  * **Sharding**: `CloneForShard` produces an un-streamed clone sharing
///    only immutable inputs, for share-nothing parallel passes.
///
/// `stats()` always describes the *current* pass (BeginPass/Reset clear it;
/// AdoptAssignment overwrites it with the merged stats). `options()` is
/// immutable after construction.
///
/// Members marked **[internal]** (`SetShardCapacities`, the two-argument
/// `SetMigrationBudget` overload) exist for the sharded restream driver and
/// are not part of the supported public surface — their preconditions are
/// tied to the shard-plan bookkeeping and they may change without notice.
class StreamingPartitioner {
 public:
  explicit StreamingPartitioner(const PartitionerOptions& options)
      : options_(options),
        assignment_(options.k,
                    ComputeCapacity(options.k, options.num_vertices_hint,
                                    options.capacity_slack)) {}
  virtual ~StreamingPartitioner() = default;

  StreamingPartitioner(const StreamingPartitioner&) = delete;
  StreamingPartitioner& operator=(const StreamingPartitioner&) = delete;

  /// Consumes one arrival: vertex `v` with `label` and its edges to
  /// already-arrived vertices. The span is borrowed from the caller's cursor
  /// and is only valid for the duration of the call — implementations copy
  /// whatever they buffer (the window's arena does this).
  virtual void OnVertex(VertexId v, Label label,
                        Span<const VertexId> back_edges) = 0;

  /// Flushes buffered state; after this every streamed vertex is assigned.
  virtual void Finish() {}

  /// Partitioner name for result tables.
  virtual std::string Name() const = 0;

  /// Creates a fresh partitioner of the same concrete type and options for
  /// one share-nothing restream shard. The clone shares *no mutable state*
  /// with `this` — only immutable read-only inputs (LOOM's workload trie) —
  /// so clones of one partitioner may run concurrently on disjoint shard
  /// streams. The clone starts un-streamed; the sharded driver configures
  /// it via BeginPass / SetShardCapacities / SetMigrationBudget. Returns
  /// nullptr when the concrete type does not support sharding (the sharded
  /// pass then falls back to the serial one).
  virtual std::unique_ptr<StreamingPartitioner> CloneForShard() const {
    return nullptr;
  }

  /// Drains `source` (from its current position) through OnVertex and
  /// finishes. Early-stop: once a migration budget is exhausted mid-pass,
  /// the remaining arrivals bypass OnVertex scoring entirely and are placed
  /// straight onto their prior partition — the budget forces that outcome
  /// anyway, so the tail of a budgeted pass costs one table lookup per
  /// vertex instead of a full scoring round.
  void Run(ArrivalSource& source);

  /// Convenience adapter: runs a borrowed in-memory stream through a
  /// StreamCursor. Identical arrivals produce identical assignments whether
  /// fed through this overload or any other ArrivalSource.
  void Run(const GraphStream& stream);

  /// Restreaming hook (ReLDG/ReFennel semantics): discards this partitioner's
  /// assignment and stats, and installs `prior` — the previous pass's
  /// assignment — as the scoring prior for the next pass. Until a vertex is
  /// re-assigned this pass, ScorePartOf reports its prior-pass partition, so
  /// placement scores incorporate last pass's neighbourhoods while balance is
  /// accounted against this pass's placements only. Pass nullptr to reset to
  /// single-pass behaviour. `prior` must outlive the pass and must not alias
  /// this partitioner's own assignment (copy it first).
  virtual void BeginPass(const PartitionAssignment* prior);

  /// Rewinds to the fresh state: discards the assignment, stats, prior and
  /// any migration budget. Equivalent to `BeginPass(nullptr)`.
  void Reset() { BeginPass(nullptr); }

  const PartitionAssignment& assignment() const { return assignment_; }
  const PartitionerOptions& options() const { return options_; }
  const PartitionerStats& stats() const { return stats_; }

  /// True while a restream pass (BeginPass with a non-null prior) is active.
  bool HasPrior() const { return prior_ != nullptr; }

  /// `max_moves` value meaning "no migration budget" (the default).
  static constexpr uint64_t kUnlimitedMigrationBudget = ~uint64_t{0};

  /// Bounded-migration restream (drift reaction): caps the number of
  /// placements this pass that may differ from the prior's partition. Once
  /// `stats().prior_moves` reaches the budget, every further placement is
  /// clamped back to the vertex's prior partition. The clamp is backed by
  /// *home-slot reservation*: while the budget is finite, a vertex may only
  /// move into a partition whose free capacity exceeds the outstanding home
  /// claims of its not-yet-replayed prior members, so every stayer keeps a
  /// guaranteed slot, the clamp never overflows, and the cap is strict —
  /// provided the replay covers the prior's vertex set (a restream replay
  /// does; vertices absent from the prior bypass the reservation). Reset to
  /// unlimited by BeginPass; call after BeginPass, before streaming. No
  /// effect without a prior.
  void SetMigrationBudget(uint64_t max_moves);

  /// **[internal]** Shard-clone variant: installs explicit per-partition
  /// home claims instead of deriving them from the whole prior. A shard clone replays
  /// only its own shard's vertices, so only *their* home slots may be
  /// reserved — claims for partitions owned by other shards would never
  /// settle and would permanently block inbound moves. `home_claims` must
  /// have one entry per partition (the count of this shard's replayed
  /// vertices whose prior home is that partition); an empty vector falls
  /// back to the prior's sizes (the one-arg overload's semantics), and the
  /// claims are ignored when unbudgeted or without a prior.
  void SetMigrationBudget(uint64_t max_moves,
                          std::vector<uint32_t> home_claims);

  /// **[internal]** Confines this partitioner to per-partition capacity
  /// slices (see PartitionAssignment::SetCapacities). The sharded restream driver calls
  /// this after BeginPass so each clone's slice of every partition sums
  /// across shards to at most the global bound C. An empty vector is a
  /// no-op (scalar capacity stays in force).
  void SetShardCapacities(std::vector<size_t> capacities);

  /// Installs an externally composed assignment and stats — the merge step
  /// of a sharded pass — and drops any prior / migration budget, leaving
  /// the partitioner in the same logical state a serial pass ends in.
  void AdoptAssignment(PartitionAssignment assignment,
                       const PartitionerStats& stats);

  /// True when a prior is installed and the migration budget is spent: every
  /// remaining placement will be clamped to its prior partition, so drivers
  /// may skip scoring for the rest of the pass (see Run's early-stop).
  bool MigrationBudgetExhausted() const {
    return prior_ != nullptr && stats_.prior_moves >= migration_budget_;
  }

  /// Drops the restream prior without touching the current assignment (for
  /// drivers whose prior storage goes out of scope after the run).
  void ClearPrior() { prior_ = nullptr; }

  /// Cluster-memoization hooks (see stream/cluster_log.h). A partitioner
  /// whose unit of assignment is larger than a vertex (LOOM) can record the
  /// cluster decomposition it actually assigned and replay it next pass.
  /// The base implementations record nothing and ignore the memo, so every
  /// other partitioner is unaffected.
  ///
  /// Turns on (or off) recording of the assigned-unit decomposition for
  /// subsequent passes. Off by default: single-pass use pays nothing.
  virtual void SetClusterLogging(bool enabled) { (void)enabled; }
  /// Decomposition of the last recorded pass, or null when the partitioner
  /// does not record one (or logging is off).
  virtual const ClusterLog* cluster_log() const { return nullptr; }
  /// Moves the recorded decomposition into `*out` (leaving the live log
  /// empty), so multi-pass drivers can keep the previous pass's log without
  /// an O(V) copy. No-op (and `*out` untouched) when there is no log.
  virtual void TakeClusterLog(ClusterLog* out) { (void)out; }
  /// Installs the previous pass's decomposition for memoized replay of the
  /// pass that just began (call after BeginPass; BeginPass drops any
  /// installed memo). `memo` must outlive the pass; null disables replay.
  virtual void SetClusterMemo(const ClusterMemo* memo) { (void)memo; }

 protected:
  /// Partition of `w` as seen by placement scores: this pass's placement
  /// when present, else the prior pass's, else -1.
  int32_t ScorePartOf(VertexId w) const {
    const int32_t p = assignment_.PartOf(w);
    if (p >= 0) return p;
    return prior_ != nullptr ? prior_->PartOf(w) : -1;
  }

  /// Assigns `v` to `part` when valid; otherwise (no eligible partition, or
  /// the chosen one is full) falls back to the partition with the most free
  /// capacity, forcing placement past C as a last resort. Never drops a
  /// vertex; every fallback is counted in stats().
  void AssignOrFallback(VertexId v, uint32_t part);

  PartitionerOptions options_;
  PartitionAssignment assignment_;
  PartitionerStats stats_;
  /// Previous restream pass's assignment (not owned); null in pass one.
  const PartitionAssignment* prior_ = nullptr;
  /// Max placements allowed to leave their prior partition this pass.
  uint64_t migration_budget_ = kUnlimitedMigrationBudget;
  /// Budgeted passes only: per partition, prior members not yet placed this
  /// pass — the home claims the reservation rule protects.
  std::vector<uint32_t> home_claims_;
};

/// Shared LDG placement rule (§4.1): pick argmax_i |edges_i| * (1 - |Vi|/C)
/// over partitions with at least `need` free slots; ties prefer the smaller
/// partition, then the lower index; all-zero scores fall back to the least
/// loaded eligible partition. Returns k (invalid) iff no partition has room.
uint32_t PickLdgPartition(const PartitionAssignment& assignment,
                          const std::vector<uint32_t>& edges_to_partition,
                          size_t need = 1);

/// Weighted LDG variant (paper §5 future work): edge counts are replaced by
/// arbitrary non-negative weights (e.g. traversal probabilities).
uint32_t PickLdgPartitionWeighted(const PartitionAssignment& assignment,
                                  const std::vector<double>& weight_to_partition,
                                  size_t need = 1);

/// Sparse fast path of PickLdgPartitionWeighted for callers that know which
/// partitions hold non-zero weight (`touched`, e.g. from
/// BlockedGainScorer::touched()). When a touched, eligible partition wins
/// with a strictly positive score, no zero-weight partition can beat it and
/// the O(k) scan is skipped; otherwise the decision falls back to the dense
/// rule, so the result is always identical to the dense pick.
uint32_t PickLdgPartitionWeightedSparse(
    const PartitionAssignment& assignment,
    const std::vector<double>& weight_to_partition,
    Span<const uint32_t> touched, size_t need = 1);

}  // namespace loom

#endif  // LOOM_PARTITION_PARTITIONER_H_
