#ifndef LOOM_PARTITION_GAIN_SCORER_H_
#define LOOM_PARTITION_GAIN_SCORER_H_

/// \file
/// Blocked LDG gain scoring: the one reset-then-accumulate kernel behind
/// every cluster/vertex placement score in LOOM.
///
/// The kernel runs in three phases per scored unit (a motif cluster, a split
/// chunk, or a single vertex):
///
///   1. *Gather* — walk the unit's members and collect, per neighbour with a
///      scoreable partition, the partition id and (when traversal weighting
///      is on) the edge weight into two flat, contiguous buffers. All
///      branching lives here.
///   2. *Accumulate* — sparse-reset the partitions dirtied by the previous
///      unit, then sweep the flat buffers once: `scores[part[i]] += w[i]`.
///      No hash lookups, no per-element branches — the loop the compiler can
///      keep in registers/vector units.
///   3. *Compact* — derive the `touched()` partition list from the gathered
///      buffer with a byte-per-partition seen mask, in a separate pass, so
///      the accumulate loop stays branch-free.
///
/// Gather order equals the naive per-neighbour accumulation order, so
/// floating-point sums are bit-identical to the historical implementation —
/// the property the golden-hash equivalence tests pin down.
///
/// Edge weights come from a dense `(L+1) x (L+1)` label-pair table (L =
/// alphabet size; row/column L holds the untraversed-edge weight for
/// out-of-alphabet labels), replacing the per-neighbour hash-map probe of
/// the old `EdgeWeightTo`.

#include <cstdint>
#include <vector>

#include "common/small_vector.h"
#include "common/span.h"
#include "graph/graph.h"

namespace loom {

/// Reusable blocked scoring kernel. Owns the gather buffers, the dense
/// weight table and the touched-partition bookkeeping for one score vector.
class BlockedGainScorer {
 public:
  /// (Re)configures the kernel. `num_labels` is the signature alphabet size
  /// L; the table gains one extra row/column for out-of-alphabet labels.
  /// When `use_weights` is false every edge weighs 1.0 and the gather phase
  /// skips label lookups entirely.
  void Configure(uint32_t k, uint32_t num_labels, bool use_weights,
                 double untraversed_weight) {
    k_ = k;
    num_labels_ = num_labels;
    use_weights_ = use_weights;
    untraversed_weight_ = untraversed_weight;
    const size_t side = static_cast<size_t>(num_labels_) + 1;
    weight_table_.assign(side * side, use_weights_ ? untraversed_weight_ : 1.0);
    seen_.assign(k_, 0);
    touched_.clear();
    parts_.clear();
    weights_.clear();
  }

  /// Installs the traversal weight of label pair (a, b), clamped from below
  /// by the untraversed-edge weight (the floor the old map lookup applied).
  /// Overwrites any previous value for the pair; symmetric.
  void SetEdgeWeight(Label a, Label b, double weight) {
    if (a >= num_labels_ || b >= num_labels_) return;
    const double w =
        weight > untraversed_weight_ ? weight : untraversed_weight_;
    const size_t side = static_cast<size_t>(num_labels_) + 1;
    weight_table_[static_cast<size_t>(a) * side + b] = w;
    weight_table_[static_cast<size_t>(b) * side + a] = w;
  }

  /// Weight of an edge between labels (a, b); labels outside the alphabet
  /// fall into the untraversed row/column. 1.0 when weighting is off.
  double EdgeWeight(Label a, Label b) const {
    const size_t side = static_cast<size_t>(num_labels_) + 1;
    const size_t ia = a < num_labels_ ? a : num_labels_;
    const size_t ib = b < num_labels_ ? b : num_labels_;
    return weight_table_[ia * side + ib];
  }

  /// Starts gathering a new unit (drops any previous gather state; the
  /// previous unit's touched list stays valid until the next Commit).
  void BeginUnit() {
    parts_.clear();
    weights_.clear();
  }

  /// Gathers one member: every neighbour whose `part_of` is >= 0
  /// contributes its partition (and, when weighting, the label-pair edge
  /// weight towards `label_of[w]`).
  ///
  /// \param part_of callable VertexId -> int32_t (partition or -1).
  template <typename PartOfFn>
  void AddMember(Label member_label, Span<const VertexId> neighbors,
                 const std::vector<Label>& label_of, PartOfFn&& part_of) {
    if (!use_weights_) {
      for (const VertexId w : neighbors) {
        const int32_t p = part_of(w);
        if (p >= 0) parts_.push_back(static_cast<uint32_t>(p));
      }
      return;
    }
    const size_t side = static_cast<size_t>(num_labels_) + 1;
    const size_t row =
        (member_label < num_labels_ ? member_label : num_labels_) * side;
    for (const VertexId w : neighbors) {
      const int32_t p = part_of(w);
      if (p < 0) continue;
      // An endpoint the stream never labelled scores as label 0 (the
      // historical EdgeWeightTo contract).
      const Label wl = w < label_of.size() ? label_of[w] : 0;
      const size_t col = wl < num_labels_ ? wl : num_labels_;
      parts_.push_back(static_cast<uint32_t>(p));
      weights_.push_back(weight_table_[row + col]);
    }
  }

  /// Accumulates the gathered unit into `scores`: sparse-resets the
  /// previously touched partitions, sweeps the flat buffers, then compacts
  /// the new touched list. Returns the touched partitions (deduplicated,
  /// in first-touch order).
  const SmallVector<uint32_t, 16>& Commit(std::vector<double>* scores) {
    for (const uint32_t p : touched_) (*scores)[p] = 0.0;
    touched_.clear();
    double* s = scores->data();
    const uint32_t* parts = parts_.begin();
    const size_t n = parts_.size();
    if (use_weights_) {
      const double* w = weights_.begin();
      for (size_t i = 0; i < n; ++i) s[parts[i]] += w[i];
    } else {
      for (size_t i = 0; i < n; ++i) s[parts[i]] += 1.0;
    }
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = parts[i];
      if (!seen_[p]) {
        seen_[p] = 1;
        touched_.push_back(p);
      }
    }
    for (const uint32_t p : touched_) seen_[p] = 0;
    return touched_;
  }

  /// Partitions dirtied by the last Commit (empty before any Commit).
  const SmallVector<uint32_t, 16>& touched() const { return touched_; }

  bool use_weights() const { return use_weights_; }

 private:
  uint32_t k_ = 0;
  uint32_t num_labels_ = 0;
  bool use_weights_ = false;
  double untraversed_weight_ = 0.0;
  /// Dense (L+1) x (L+1) label-pair weights; row/col L = out-of-alphabet.
  std::vector<double> weight_table_;
  /// Gather buffers: partition per scoreable neighbour edge (+ weight).
  SmallVector<uint32_t, 64> parts_;
  SmallVector<double, 64> weights_;
  /// Compaction scratch: byte per partition, cleared after every Commit.
  std::vector<uint8_t> seen_;
  SmallVector<uint32_t, 16> touched_;
};

}  // namespace loom

#endif  // LOOM_PARTITION_GAIN_SCORER_H_
