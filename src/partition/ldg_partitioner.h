#ifndef LOOM_PARTITION_LDG_PARTITIONER_H_
#define LOOM_PARTITION_LDG_PARTITIONER_H_

/// \file
/// Linear Deterministic Greedy (Stanton & Kliot, KDD'12) — the paper's base
/// heuristic (§4.1): place each arriving vertex in the partition holding most
/// of its neighbours, weighted by the partition's free capacity 1 - |Vi|/C.

#include "common/small_vector.h"
#include "partition/partitioner.h"

namespace loom {

/// One-shot LDG: assigns each vertex on arrival.
class LdgPartitioner : public StreamingPartitioner {
 public:
  explicit LdgPartitioner(const PartitionerOptions& options)
      : StreamingPartitioner(options), edge_counts_(options.k, 0) {}

  void OnVertex(VertexId v, Label label,
                Span<const VertexId> back_edges) override;

  std::string Name() const override { return "ldg"; }

  /// Shard clone: fresh instance with the same options; the scoring
  /// scratch is per-pass state rebuilt from scratch anyway.
  std::unique_ptr<StreamingPartitioner> CloneForShard() const override {
    return std::make_unique<LdgPartitioner>(options_);
  }

 private:
  /// Scratch: edges from the arriving vertex into each partition.
  std::vector<uint32_t> edge_counts_;
  /// Partitions dirtied by the last vertex (duplicates allowed); resetting
  /// these instead of std::fill-ing all k is the low-degree fast path.
  SmallVector<uint32_t, 16> touched_;
};

}  // namespace loom

#endif  // LOOM_PARTITION_LDG_PARTITIONER_H_
