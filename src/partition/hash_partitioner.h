#ifndef LOOM_PARTITION_HASH_PARTITIONER_H_
#define LOOM_PARTITION_HASH_PARTITIONER_H_

/// \file
/// The default placement of distributed graph systems (§1): a hash of the
/// vertex id. Even sizes, zero locality — the paper's workload-agnostic
/// strawman baseline.

#include "partition/partitioner.h"

namespace loom {

/// hash(v) mod k, with capacity-respecting linear probing so the balance
/// constraint is honoured even under adversarial id sets.
class HashPartitioner : public StreamingPartitioner {
 public:
  explicit HashPartitioner(const PartitionerOptions& options)
      : StreamingPartitioner(options) {}

  void OnVertex(VertexId v, Label label,
                Span<const VertexId> back_edges) override;

  std::string Name() const override { return "hash"; }

  /// Stateless heuristic: a shard clone is just a fresh instance with the
  /// same options (and therefore the same placement hash seed).
  std::unique_ptr<StreamingPartitioner> CloneForShard() const override {
    return std::make_unique<HashPartitioner>(options_);
  }
};

}  // namespace loom

#endif  // LOOM_PARTITION_HASH_PARTITIONER_H_
