#ifndef LOOM_METRICS_METRICS_H_
#define LOOM_METRICS_METRICS_H_

/// \file
/// Partitioning quality measures: the classic edge-cut and balance metrics
/// streaming partitioners optimise (§3.1), alongside which the workload-aware
/// ipt measures of workload/query_engine.h are reported.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "partition/partition_state.h"
#include "partition/replica_set.h"
#include "stream/arrival_source.h"

namespace loom {

/// Number of edges whose endpoints are assigned to different partitions.
size_t NumCutEdges(const LabeledGraph& g, const PartitionAssignment& a);

/// Cut edges as a fraction of all edges (lambda in the streaming literature).
double EdgeCutFraction(const LabeledGraph& g, const PartitionAssignment& a);

/// Streaming form for out-of-core runs: one sweep over `source` (rewound via
/// Reset first), counting each carried back edge once — O(1) memory where
/// the graph overload needs the materialised adjacency. The source must
/// yield *back-edge* views (every edge exactly once, on its later
/// endpoint); a full-neighbourhood replay source would double-count.
double EdgeCutFraction(ArrivalSource& source, const PartitionAssignment& a);

/// Normalised maximum load: max_i |V_i| / (n / k); 1.0 = perfectly balanced.
double BalanceMaxOverAvg(const PartitionAssignment& a);

/// True iff every vertex of `g` is assigned.
bool AllAssigned(const LabeledGraph& g, const PartitionAssignment& a);

/// Raw migration accounting between two assignments.
struct MigrationStats {
  /// Vertices assigned in both `prev` and `next`.
  size_t comparable = 0;
  /// Comparable vertices whose partition differs — each one is data moved
  /// between machines.
  size_t moved = 0;
};

/// Counts the vertices a re-partition would move: the integer form behind
/// `MigrationFraction`, exposed so budgeted passes can do exact move
/// arithmetic (a drift reaction's remaining budget is total allowed moves
/// minus `moved` so far — fractions would compound rounding error).
MigrationStats ComputeMigration(const PartitionAssignment& prev,
                                const PartitionAssignment& next);

/// Restreaming migration cost: the fraction of vertices assigned in both
/// `prev` and `next` whose partition changed between the two passes. Every
/// migrated vertex is data moved between machines, so restreaming trades
/// this against the edge-cut gain. Returns 0 when nothing is comparable.
double MigrationFraction(const PartitionAssignment& prev,
                         const PartitionAssignment& next);

/// "12/13/11/14"-style partition-size string for result tables.
std::string SizesToString(const PartitionAssignment& a);

/// Edge partitioning's quality metric: average replicas per replicated
/// vertex, NumReplicas / NumReplicatedVertices. >= 1 whenever any vertex is
/// replicated (every vertex touching an assigned edge holds at least its
/// own replica); 1.0 exactly when no vertex spans partitions. Returns 0 for
/// an empty set (no edges streamed).
double ReplicationFactor(const ReplicaSet& replicas);

/// Normalised maximum edge load: max_p |E_p| / (m / k); the edge-partition
/// counterpart of BalanceMaxOverAvg. 1.0 = perfectly balanced, 0 for an
/// empty vector or zero edges.
double EdgeBalanceMaxOverAvg(const std::vector<uint64_t>& edge_counts);

}  // namespace loom

#endif  // LOOM_METRICS_METRICS_H_
