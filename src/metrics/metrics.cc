#include "metrics/metrics.h"

#include <algorithm>

namespace loom {

size_t NumCutEdges(const LabeledGraph& g, const PartitionAssignment& a) {
  size_t cut = 0;
  g.ForEachEdge([&](VertexId u, VertexId v) {
    if (a.PartOf(u) != a.PartOf(v)) ++cut;
  });
  return cut;
}

double EdgeCutFraction(const LabeledGraph& g, const PartitionAssignment& a) {
  if (g.NumEdges() == 0) return 0.0;
  return static_cast<double>(NumCutEdges(g, a)) /
         static_cast<double>(g.NumEdges());
}

double EdgeCutFraction(ArrivalSource& source, const PartitionAssignment& a) {
  source.Reset();
  uint64_t cut = 0;
  uint64_t total = 0;
  ArrivalView view;
  while (source.Next(&view)) {
    const int32_t pv = a.PartOf(view.vertex);
    for (const VertexId w : view.back_edges) {
      ++total;
      if (pv != a.PartOf(w)) ++cut;
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(cut) / static_cast<double>(total);
}

double BalanceMaxOverAvg(const PartitionAssignment& a) {
  if (a.NumAssigned() == 0) return 1.0;
  const uint32_t max_size =
      *std::max_element(a.Sizes().begin(), a.Sizes().end());
  const double avg = static_cast<double>(a.NumAssigned()) /
                     static_cast<double>(a.k());
  return static_cast<double>(max_size) / avg;
}

bool AllAssigned(const LabeledGraph& g, const PartitionAssignment& a) {
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (!a.IsAssigned(v)) return false;
  }
  return true;
}

MigrationStats ComputeMigration(const PartitionAssignment& prev,
                                const PartitionAssignment& next) {
  MigrationStats out;
  const size_t bound = std::min(prev.IdBound(), next.IdBound());
  for (VertexId v = 0; v < bound; ++v) {
    const int32_t np = next.PartOf(v);
    if (np < 0) continue;
    const int32_t pp = prev.PartOf(v);
    if (pp < 0) continue;
    ++out.comparable;
    if (np != pp) ++out.moved;
  }
  return out;
}

double MigrationFraction(const PartitionAssignment& prev,
                         const PartitionAssignment& next) {
  const MigrationStats m = ComputeMigration(prev, next);
  if (m.comparable == 0) return 0.0;
  return static_cast<double>(m.moved) / static_cast<double>(m.comparable);
}

double ReplicationFactor(const ReplicaSet& replicas) {
  if (replicas.NumReplicatedVertices() == 0) return 0.0;
  return static_cast<double>(replicas.NumReplicas()) /
         static_cast<double>(replicas.NumReplicatedVertices());
}

double EdgeBalanceMaxOverAvg(const std::vector<uint64_t>& edge_counts) {
  if (edge_counts.empty()) return 0.0;
  uint64_t total = 0;
  uint64_t max_count = 0;
  for (const uint64_t count : edge_counts) {
    total += count;
    max_count = std::max(max_count, count);
  }
  if (total == 0) return 0.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(edge_counts.size());
  return static_cast<double>(max_count) / avg;
}

std::string SizesToString(const PartitionAssignment& a) {
  std::string out;
  for (size_t i = 0; i < a.Sizes().size(); ++i) {
    if (i) out += "/";
    out += std::to_string(a.Sizes()[i]);
  }
  return out;
}

}  // namespace loom
