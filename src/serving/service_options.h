#ifndef LOOM_SERVING_SERVICE_OPTIONS_H_
#define LOOM_SERVING_SERVICE_OPTIONS_H_

/// \file
/// Configuration of `loom::Service` — the facade's one options struct,
/// following the uniform Validate/Sanitize contract shared with
/// `RestreamOptions` and `DriftControllerOptions` (see
/// `ValidateRestreamOptions`): `ValidateServiceOptions` rejects with an
/// InvalidArgument naming the first bad field; `SanitizeServiceOptions`
/// clamps every bad field to the conservative end. `Service::Create`
/// validates first (callers hear about mistakes), then sanitizes (nested
/// defaults stay safe even as structs grow fields).

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "core/loom_options.h"
#include "drift/drift_controller.h"
#include "tpstry/workload_tracker.h"

namespace loom {

/// All serving knobs in one place.
struct ServiceOptions {
  /// Partitioner configuration. `loom.partitioner` carries the generic
  /// streaming settings (k, capacity, window size) used by every
  /// partitioner; the rest applies to the "loom" partitioner only.
  LoomOptions loom;

  /// Which partitioner the service drives — any `KnownPartitioners()` name.
  std::string partitioner = "loom";

  /// Drift policy: detector thresholds plus the bounded-migration reaction.
  DriftControllerOptions drift;

  /// Workload summarisation window over the observed query stream.
  WorkloadTrackerOptions tracker;

  /// Label alphabet size of the data graph. 0 = derive from the workload
  /// (its max label + 1); set explicitly when arrivals carry labels the
  /// workload's queries never mention.
  uint32_t num_labels = 0;

  /// False disables the drift loop entirely: `ObserveQuery` still feeds the
  /// tracker but never checks the detector or enqueues reactions. Needed
  /// for bit-exact batched-vs-serial comparisons.
  bool enable_drift_reactions = true;

  /// Detector cadence: one drift check per this many observed queries.
  uint64_t drift_check_every_queries = 64;

  /// Snapshot cadence: publish a fresh placement snapshot every N processed
  /// ingest batches (a publish copies the assignment, O(vertices); every
  /// snapshot is retained for the service's lifetime — see
  /// common/snapshot.h — so very small values on very long streams trade
  /// memory for freshness). Reactions and `Seal` always publish.
  uint32_t publish_every_batches = 1;

  /// Front-end validation shards: `Ingest` fans batch validation out over
  /// this many vertex-sharded workers before the pipeline handoff. 1 =
  /// validate inline on the calling thread.
  uint32_t front_end_shards = 1;

  /// Test/bench hook, called on the pipeline thread after each ingest batch
  /// finishes processing (argument: the batch's 0-based sequence number).
  /// Keep it cheap — it runs inside the ingest pipeline.
  std::function<void(uint64_t)> on_batch_processed;
};

/// Rejects the first invalid field: k == 0, an unknown `partitioner` name,
/// `drift_check_every_queries == 0`, `publish_every_batches == 0`,
/// `front_end_shards == 0`, a zero tracker window, or anything
/// `ValidateDriftControllerOptions` rejects.
Status ValidateServiceOptions(const ServiceOptions& options);

/// Clamps every field `ValidateServiceOptions` rejects: zero counts become
/// 1 (k, cadences, shards, tracker window), an unknown partitioner name
/// falls back to "loom", and the drift options are routed through
/// `SanitizeDriftControllerOptions`.
ServiceOptions SanitizeServiceOptions(ServiceOptions options);

}  // namespace loom

#endif  // LOOM_SERVING_SERVICE_OPTIONS_H_
