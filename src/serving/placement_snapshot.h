#ifndef LOOM_SERVING_PLACEMENT_SNAPSHOT_H_
#define LOOM_SERVING_PLACEMENT_SNAPSHOT_H_

/// \file
/// The immutable placement snapshot the serving layer publishes: a frozen
/// copy of the live `PartitionAssignment` plus the per-partition label
/// histogram that routes pattern queries. Snapshots are published through a
/// `SnapshotBoard` (common/snapshot.h), so `Locate`/`Touches` readers never
/// take a lock, never block on an ingest batch or a drift reaction, and can
/// never observe a torn assignment: they either see the whole snapshot of
/// epoch e or the whole snapshot of epoch e+1.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/partition_state.h"

namespace loom {

/// A frozen, self-contained view of one placement epoch. All fields are
/// immutable after construction (the serving layer publishes snapshots via
/// `SnapshotBoard`, whose readers rely on that).
struct PlacementSnapshot {
  /// Publication epoch (1-based, monotone across a service's lifetime; 0
  /// only in the pre-ingest snapshot published at service creation).
  uint64_t epoch = 0;
  /// Number of partitions.
  uint32_t k = 0;
  /// Label alphabet size of `label_counts`.
  uint32_t num_labels = 0;
  /// Partition of each vertex id, -1 while unassigned; index = VertexId.
  std::vector<int32_t> part_of;
  /// Vertex count per partition.
  std::vector<uint32_t> sizes;
  /// Assigned vertices per (partition, label), flattened as
  /// `partition * num_labels + label` — the routing index for `Touches`.
  std::vector<uint32_t> label_counts;
  /// Total assigned vertices.
  size_t num_assigned = 0;

  /// Partition of `v`, or -1 when unassigned / unknown at snapshot time.
  int32_t Locate(VertexId v) const {
    return v < part_of.size() ? part_of[v] : -1;
  }
};

/// Freezes `assignment` into a snapshot. `label_of` maps VertexId to label
/// for every vertex the assignment may contain (ids past its end count as
/// label 0); `num_labels` sizes the routing histogram and must exceed every
/// label in `label_of`. `epoch` is stamped by the caller (the service owns
/// the epoch sequence).
PlacementSnapshot MakePlacementSnapshot(const PartitionAssignment& assignment,
                                        const std::vector<Label>& label_of,
                                        uint32_t num_labels, uint64_t epoch);

/// The partitions a pattern query can possibly touch under `snapshot`:
/// every partition holding at least one vertex whose label occurs in
/// `query`. Sorted ascending. This is a sound *superset* of the partitions
/// any execution of the query actually visits — the matcher only probes
/// label-compatible candidates, so every traversal endpoint carries a query
/// label — which makes it the broadcast set a distributed router would ship
/// the query to. Labels outside the snapshot's alphabet contribute nothing.
std::vector<uint32_t> TouchedPartitions(const PlacementSnapshot& snapshot,
                                        const LabeledGraph& query);

}  // namespace loom

#endif  // LOOM_SERVING_PLACEMENT_SNAPSHOT_H_
