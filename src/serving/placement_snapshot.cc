#include "serving/placement_snapshot.h"

#include <algorithm>

namespace loom {

PlacementSnapshot MakePlacementSnapshot(const PartitionAssignment& assignment,
                                        const std::vector<Label>& label_of,
                                        uint32_t num_labels, uint64_t epoch) {
  PlacementSnapshot snapshot;
  snapshot.epoch = epoch;
  snapshot.k = assignment.k();
  snapshot.num_labels = num_labels;
  snapshot.num_assigned = assignment.NumAssigned();
  snapshot.sizes = assignment.Sizes();
  snapshot.label_counts.assign(
      static_cast<size_t>(assignment.k()) * num_labels, 0);

  const size_t bound = assignment.IdBound();
  snapshot.part_of.resize(bound);
  for (VertexId v = 0; v < bound; ++v) {
    const int32_t p = assignment.PartOf(v);
    snapshot.part_of[v] = p;
    if (p < 0) continue;
    const Label label = v < label_of.size() ? label_of[v] : 0;
    if (label < num_labels) {
      ++snapshot.label_counts[static_cast<size_t>(p) * num_labels + label];
    }
  }
  return snapshot;
}

std::vector<uint32_t> TouchedPartitions(const PlacementSnapshot& snapshot,
                                        const LabeledGraph& query) {
  // The query's label set (small patterns: linear dedup is fine).
  std::vector<Label> labels;
  for (VertexId v = 0; v < query.NumVertices(); ++v) {
    const Label l = query.LabelOf(v);
    if (l < snapshot.num_labels &&
        std::find(labels.begin(), labels.end(), l) == labels.end()) {
      labels.push_back(l);
    }
  }

  std::vector<uint32_t> touched;
  for (uint32_t p = 0; p < snapshot.k; ++p) {
    const size_t base = static_cast<size_t>(p) * snapshot.num_labels;
    for (const Label l : labels) {
      if (snapshot.label_counts[base + l] > 0) {
        touched.push_back(p);
        break;
      }
    }
  }
  return touched;
}

}  // namespace loom
