#ifndef LOOM_SERVING_SERVICE_H_
#define LOOM_SERVING_SERVICE_H_

/// \file
/// `loom::Service` — the concurrent online serving facade and the one
/// supported way to stand up the full pipeline (window → matcher →
/// partitioner → workload tracker → drift controller). See docs/API.md for
/// the quickstart and the supported public surface.
///
/// Threading model:
///
///  * **Ingest** (`Ingest`, any thread): arrivals are validated on a
///    vertex-sharded front end, then handed to a single pipeline worker
///    (SPSC: producers serialise on a mutex, one `ThreadPool(1)` consumes
///    FIFO) that drives the streaming partitioner, records the live stream
///    for later replay, and publishes placement snapshots. Batches are
///    processed strictly in submission order, so batched ingest through one
///    worker is result-identical to the serial pipeline on the same stream.
///  * **Reads** (`Locate`, `Touches`, `Snapshot`, `Stats`, any thread,
///    any concurrency): served from the latest *immutable*
///    `PlacementSnapshot` published through a `SnapshotBoard`
///    (common/snapshot.h). The read path is one atomic acquire load — it
///    never takes a lock, never blocks on an ingest batch or a drift
///    reaction, and can never observe a torn assignment.
///  * **Workload + drift** (`ObserveQuery`, any thread): observed queries
///    feed the sliding-window `WorkloadTracker` under a mutex; every
///    `drift_check_every_queries` observations the `DriftController` checks
///    the summary against the expectation the live placement was built for.
///    On a confirmed fire the service enqueues a *reaction task* onto the
///    pipeline worker: re-point LOOM at the drifted summary, run the
///    bounded-migration sharded restream reaction (PR 5's engine) against
///    the recorded stream, adopt the keep-best result, and publish a fresh
///    snapshot atomically. Reads continue un-blocked throughout; ingest
///    batches queue behind the reaction (FIFO) and resume after it.
///
/// Lifecycle: `Create` → any interleaving of `Ingest` / reads /
/// `ObserveQuery` → `Seal` (drain, final `Finish`, final snapshot) → reads
/// remain valid until destruction. `Seal` requires that no thread is still
/// calling `Ingest`/`ObserveQuery`.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/snapshot.h"
#include "common/thread_pool.h"
#include "core/loom_partitioner.h"
#include "drift/drift_controller.h"
#include "partition/partitioner.h"
#include "serving/placement_snapshot.h"
#include "serving/service_options.h"
#include "stream/arrival_source.h"
#include "stream/stream.h"
#include "tpstry/workload_tracker.h"
#include "workload/workload.h"

namespace loom {

/// Point-in-time counters returned by `Service::Stats()` — every field is
/// read from atomics, so `Stats` is safe (and cheap) to call concurrently
/// with ingest, queries and reactions.
struct ServiceStats {
  // --- ingest ---
  uint64_t ingested_vertices = 0;
  uint64_t ingested_batches = 0;
  /// Batches rejected by front-end validation (nothing partial is applied).
  uint64_t rejected_batches = 0;

  // --- queries ---
  uint64_t locate_queries = 0;
  uint64_t touches_queries = 0;
  uint64_t observed_queries = 0;

  // --- snapshots ---
  uint64_t snapshots_published = 0;
  /// Epoch of the latest published snapshot.
  uint64_t snapshot_epoch = 0;

  // --- drift loop ---
  uint64_t drift_checks = 0;
  uint64_t drift_fires = 0;
  /// Completed reactions (a fire enqueues exactly one).
  uint64_t drift_reactions = 0;
  /// True while a reaction task is executing on the pipeline worker.
  bool reaction_running = false;
  double last_reaction_seconds = 0.0;
  double last_reaction_edge_cut_before = 0.0;
  double last_reaction_edge_cut_after = 0.0;
  double last_reaction_migration_fraction = 0.0;

  // --- partitioner pressure (from PartitionerStats, synced per batch) ---
  uint64_t overflow_fallbacks = 0;
  uint64_t forced_placements = 0;
  uint64_t assign_errors = 0;

  bool sealed = false;
};

/// The serving facade. Construct via `Create`; all public methods are
/// thread-safe per the header contract above.
class Service {
 public:
  /// Builds the full pipeline for `workload`: the TPSTry++ summary, the
  /// partitioner named by `options.partitioner` (via the factory), the
  /// workload tracker and the drift controller primed with the workload's
  /// motif distribution as reference. Errors with InvalidArgument when
  /// `ValidateServiceOptions` rejects, and propagates trie/partitioner
  /// construction failures. An empty (epoch 0) snapshot is published
  /// immediately, so reads are valid before the first arrival.
  static Result<std::unique_ptr<Service>> Create(const Workload& workload,
                                                 const ServiceOptions& options);

  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Ingests one batch of arrivals (the span is copied before return).
  /// The batch is validated on the front end — an invalid vertex id or a
  /// self-loop back edge rejects the WHOLE batch with InvalidArgument and
  /// applies nothing — then enqueued for the pipeline worker. Returns
  /// FailedPrecondition after `Seal`. Arrivals must satisfy the stream
  /// invariants (each vertex once, back edges to earlier arrivals); batches
  /// from multiple threads are applied in `Ingest`-call order.
  Status Ingest(const VertexArrival* arrivals, size_t count);

  /// Vector convenience overload of the span form.
  Status Ingest(const std::vector<VertexArrival>& arrivals) {
    return Ingest(arrivals.data(), arrivals.size());
  }

  /// Drains `source` (rewound via `Reset` first) into `Ingest` batches of
  /// `batch_size` arrivals — the bridge from any ArrivalSource (an mmap-ed
  /// stream file, a streaming generator) to the serving pipeline, with peak
  /// memory bounded by one batch regardless of stream size. Stops at the
  /// first rejected batch and returns its status; OK once the source is
  /// exhausted. Same concurrency contract as `Ingest`.
  Status IngestSource(ArrivalSource& source, size_t batch_size = 1024);

  /// Partition of `v` in the latest published snapshot, or -1 while
  /// unassigned (still windowed, not yet published, or never ingested).
  /// Lock-free; never blocks.
  int32_t Locate(VertexId v) const;

  /// Partitions the pattern `query` can touch under the latest snapshot
  /// (sorted; a sound superset of any execution's actual partitions — the
  /// broadcast set a distributed router would use). Lock-free; never
  /// blocks. Does NOT feed the drift loop — pair with `ObserveQuery`.
  std::vector<uint32_t> Touches(const LabeledGraph& query) const;

  /// The latest published snapshot (never null; epoch 0 before the first
  /// ingest publish). Valid until the service is destroyed.
  const PlacementSnapshot* Snapshot() const { return board_.Read(); }

  /// Feeds one executed query into the workload tracker and, at the
  /// configured cadence, runs a drift check that may enqueue a background
  /// reaction. Serialised internally; errors propagate from
  /// `WorkloadTracker::Observe` (e.g. out-of-alphabet labels).
  Status ObserveQuery(const LabeledGraph& query);

  /// Point-in-time counters; safe from any thread.
  ServiceStats Stats() const;

  /// Blocks until every batch (and reaction) enqueued before the call has
  /// been processed. Reads observe the resulting snapshot only after the
  /// publish cadence allows — `Seal` for an unconditional final publish.
  void Flush();

  /// Drains the pipeline, finishes the partitioner (assigning every
  /// windowed vertex) and publishes the final snapshot. Further `Ingest`
  /// calls fail; reads stay valid. Idempotent-hostile: second call returns
  /// FailedPrecondition. Callers must have stopped `Ingest`/`ObserveQuery`
  /// concurrency before sealing.
  Status Seal();

  /// The stream recorded so far. Only meaningful once sealed or flushed
  /// (the pipeline worker appends concurrently otherwise).
  const GraphStream& RecordedStream() const { return recorded_; }

  const ServiceOptions& options() const { return options_; }

 private:
  Service(ServiceOptions options, uint32_t num_labels,
          std::unique_ptr<TpstryPP> trie,
          std::unique_ptr<StreamingPartitioner> partitioner,
          MotifDistribution reference);

  /// Front-end batch validation (vertex-sharded when configured).
  Status ValidateBatch(const VertexArrival* arrivals, size_t count) const;

  /// Pipeline-thread batch body: partitioner feed + stream recording +
  /// snapshot cadence.
  void ProcessBatch(uint64_t seq, std::vector<VertexArrival>* batch);

  /// Pipeline-thread reaction body (see the header contract).
  void RunReaction(std::unique_ptr<TpstryPP> drifted_trie,
                   MotifDistribution current);

  /// Pipeline-thread: freeze + publish the live assignment.
  void PublishSnapshot();

  /// Pipeline-thread: mirror PartitionerStats pressure counters into
  /// atomics for `Stats`.
  void SyncPressureCounters();

  /// Wraps a pipeline task with the flush/drain accounting.
  template <typename F>
  void EnqueuePipelineTask(F&& task);

  ServiceOptions options_;
  const uint32_t num_labels_;

  /// Workload summary the partitioner scores against; swapped on reaction
  /// (pipeline thread only after construction). Null for non-LOOM
  /// partitioners... except it also seeds the drift reference, so it is
  /// always built.
  std::unique_ptr<TpstryPP> trie_;
  std::unique_ptr<StreamingPartitioner> partitioner_;
  /// Non-null iff `partitioner_` is the LOOM partitioner (SetTrie target).
  LoomPartitioner* loom_ = nullptr;

  /// Live stream recording + label table (pipeline thread only).
  GraphStream recorded_;
  std::vector<Label> label_of_;
  uint64_t next_epoch_ = 0;

  SnapshotBoard<PlacementSnapshot> board_;

  /// Workload/drift state, guarded by `tracker_mu_`. The controller is
  /// additionally touched by the reaction task WITHOUT this mutex — that is
  /// safe because `reaction_pending_` gates every mutex-side access: the
  /// flag is set (release) before the reaction is enqueued and cleared
  /// (release) after it completes, and `ObserveQuery` skips the controller
  /// while it is set (acquire), so controller accesses are totally ordered
  /// through the flag and the pipeline queue.
  mutable std::mutex tracker_mu_;
  WorkloadTracker tracker_;
  DriftController controller_;
  std::atomic<bool> reaction_pending_{false};
  std::atomic<bool> reaction_running_{false};

  /// Producer-side pipeline accounting.
  std::mutex producer_mu_;
  uint64_t tasks_enqueued_ = 0;   // guarded by producer_mu_
  uint64_t next_batch_seq_ = 0;   // guarded by producer_mu_
  bool sealed_ = false;           // guarded by producer_mu_
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::atomic<uint64_t> tasks_done_{0};

  // Counters (relaxed atomics; Stats() reads them individually).
  std::atomic<uint64_t> ingested_vertices_{0};
  std::atomic<uint64_t> ingested_batches_{0};
  std::atomic<uint64_t> rejected_batches_{0};
  mutable std::atomic<uint64_t> locate_queries_{0};
  mutable std::atomic<uint64_t> touches_queries_{0};
  std::atomic<uint64_t> observed_queries_{0};
  std::atomic<uint64_t> snapshots_published_{0};
  std::atomic<uint64_t> snapshot_epoch_{0};
  std::atomic<uint64_t> drift_checks_{0};
  std::atomic<uint64_t> drift_fires_{0};
  std::atomic<uint64_t> drift_reactions_{0};
  std::atomic<double> last_reaction_seconds_{0.0};
  std::atomic<double> last_reaction_cut_before_{0.0};
  std::atomic<double> last_reaction_cut_after_{0.0};
  std::atomic<double> last_reaction_migration_{0.0};
  std::atomic<uint64_t> overflow_fallbacks_{0};
  std::atomic<uint64_t> forced_placements_{0};
  std::atomic<uint64_t> assign_errors_{0};
  std::atomic<bool> sealed_flag_{false};

  /// Front-end validation pool (null when `front_end_shards` <= 1).
  std::unique_ptr<ThreadPool> front_pool_;
  /// The single pipeline worker. Declared LAST so its destructor — which
  /// drains and joins — runs FIRST, before any state its tasks reference.
  ThreadPool pipeline_;
};

}  // namespace loom

#endif  // LOOM_SERVING_SERVICE_H_
