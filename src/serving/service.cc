#include "serving/service.h"

#include <algorithm>
#include <utility>

#include "core/loom.h"
#include "core/partitioner_factory.h"

namespace loom {

Status ValidateServiceOptions(const ServiceOptions& options) {
  if (options.loom.partitioner.k == 0) {
    return Status::InvalidArgument(
        "ServiceOptions.loom.partitioner.k must be >= 1");
  }
  if (!IsKnownPartitioner(options.partitioner)) {
    return Status::InvalidArgument("ServiceOptions.partitioner '" +
                                   options.partitioner +
                                   "' is not a known partitioner");
  }
  if (options.drift_check_every_queries == 0) {
    return Status::InvalidArgument(
        "ServiceOptions.drift_check_every_queries must be >= 1");
  }
  if (options.publish_every_batches == 0) {
    return Status::InvalidArgument(
        "ServiceOptions.publish_every_batches must be >= 1");
  }
  if (options.front_end_shards == 0) {
    return Status::InvalidArgument(
        "ServiceOptions.front_end_shards must be >= 1");
  }
  if (options.tracker.window_queries == 0) {
    return Status::InvalidArgument(
        "ServiceOptions.tracker.window_queries must be >= 1");
  }
  return ValidateDriftControllerOptions(options.drift);
}

ServiceOptions SanitizeServiceOptions(ServiceOptions options) {
  if (options.loom.partitioner.k == 0) options.loom.partitioner.k = 1;
  if (!IsKnownPartitioner(options.partitioner)) options.partitioner = "loom";
  if (options.drift_check_every_queries == 0) {
    options.drift_check_every_queries = 1;
  }
  if (options.publish_every_batches == 0) options.publish_every_batches = 1;
  if (options.front_end_shards == 0) options.front_end_shards = 1;
  if (options.tracker.window_queries == 0) options.tracker.window_queries = 1;
  options.drift = SanitizeDriftControllerOptions(options.drift);
  return options;
}

namespace {

Status ValidateArrival(const VertexArrival& arrival) {
  if (arrival.vertex == kInvalidVertex) {
    return Status::InvalidArgument("Ingest: arrival with invalid vertex id");
  }
  for (VertexId back : arrival.back_edges) {
    if (back == kInvalidVertex) {
      return Status::InvalidArgument(
          "Ingest: back edge to invalid vertex id");
    }
    if (back == arrival.vertex) {
      return Status::InvalidArgument("Ingest: self-loop back edge");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Service>> Service::Create(
    const Workload& workload, const ServiceOptions& options) {
  LOOM_RETURN_IF_ERROR(ValidateServiceOptions(options));
  ServiceOptions opts = SanitizeServiceOptions(options);
  const uint32_t num_labels =
      std::max({opts.num_labels, workload.NumLabels(), uint32_t{1}});

  // The trie is built even for workload-oblivious partitioners: it seeds the
  // drift detector's reference distribution either way.
  LOOM_ASSIGN_OR_RETURN(std::unique_ptr<TpstryPP> trie,
                        BuildTrie(workload, opts.loom.paths_only));
  LOOM_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamingPartitioner> partitioner,
      MakePartitioner(opts.partitioner, opts.loom, trie.get()));
  MotifDistribution reference = MotifDistributionOf(*trie);

  return std::unique_ptr<Service>(
      new Service(std::move(opts), num_labels, std::move(trie),
                  std::move(partitioner), std::move(reference)));
}

Service::Service(ServiceOptions options, uint32_t num_labels,
                 std::unique_ptr<TpstryPP> trie,
                 std::unique_ptr<StreamingPartitioner> partitioner,
                 MotifDistribution reference)
    : options_(std::move(options)),
      num_labels_(num_labels),
      trie_(std::move(trie)),
      partitioner_(std::move(partitioner)),
      tracker_(num_labels, options_.tracker),
      controller_(options_.drift),
      front_pool_(options_.front_end_shards > 1
                      ? std::make_unique<ThreadPool>(options_.front_end_shards)
                      : nullptr),
      pipeline_(1) {
  loom_ = dynamic_cast<LoomPartitioner*>(partitioner_.get());
  controller_.SetReference(std::move(reference));
  // Publish the empty epoch-0 snapshot before any caller thread exists, so
  // reads are valid from the first instant.
  PublishSnapshot();
}

Service::~Service() = default;

template <typename F>
void Service::EnqueuePipelineTask(F&& task) {
  // Caller holds producer_mu_.
  ++tasks_enqueued_;
  pipeline_.Submit([this, t = std::forward<F>(task)]() mutable {
    t();
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      tasks_done_.fetch_add(1, std::memory_order_release);
    }
    flush_cv_.notify_all();
  });
}

Status Service::ValidateBatch(const VertexArrival* arrivals,
                              size_t count) const {
  const uint32_t shards = options_.front_end_shards;
  if (shards <= 1 || front_pool_ == nullptr) {
    for (size_t i = 0; i < count; ++i) {
      LOOM_RETURN_IF_ERROR(ValidateArrival(arrivals[i]));
    }
    return Status::OK();
  }
  // Vertex-sharded fan-out: shard s checks the arrivals whose vertex falls
  // in its residue class. Each shard reports the smallest bad index it saw;
  // the combined verdict is the overall first bad arrival, so the result is
  // independent of shard scheduling (and identical to the serial scan).
  std::vector<size_t> first_bad(shards, count);
  std::vector<Status> shard_error(shards, Status::OK());
  ParallelFor(*front_pool_, shards, [&](size_t shard) {
    for (size_t i = 0; i < count; ++i) {
      if (arrivals[i].vertex % shards != shard) continue;
      Status status = ValidateArrival(arrivals[i]);
      if (!status.ok()) {
        first_bad[shard] = i;
        shard_error[shard] = std::move(status);
        return;
      }
    }
  });
  size_t best = count;
  Status verdict = Status::OK();
  for (uint32_t shard = 0; shard < shards; ++shard) {
    if (first_bad[shard] < best) {
      best = first_bad[shard];
      verdict = shard_error[shard];
    }
  }
  return verdict;
}

Status Service::Ingest(const VertexArrival* arrivals, size_t count) {
  if (count == 0) return Status::OK();
  if (arrivals == nullptr) {
    return Status::InvalidArgument("Ingest: null arrivals with count > 0");
  }
  Status valid = ValidateBatch(arrivals, count);
  if (!valid.ok()) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    return valid;
  }
  std::vector<VertexArrival> batch(arrivals, arrivals + count);
  std::lock_guard<std::mutex> lock(producer_mu_);
  if (sealed_) {
    return Status::FailedPrecondition("Ingest after Seal");
  }
  const uint64_t seq = next_batch_seq_++;
  EnqueuePipelineTask([this, seq, b = std::move(batch)]() mutable {
    ProcessBatch(seq, &b);
  });
  return Status::OK();
}

Status Service::IngestSource(ArrivalSource& source, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  source.Reset();
  std::vector<VertexArrival> batch;
  batch.reserve(batch_size);
  ArrivalView view;
  while (source.Next(&view)) {
    VertexArrival arrival;
    arrival.vertex = view.vertex;
    arrival.label = view.label;
    arrival.back_edges.assign(view.back_edges.begin(), view.back_edges.end());
    batch.push_back(std::move(arrival));
    if (batch.size() >= batch_size) {
      const Status status = Ingest(batch);
      if (!status.ok()) return status;
      batch.clear();
    }
  }
  if (!batch.empty()) return Ingest(batch);
  return Status::OK();
}

void Service::ProcessBatch(uint64_t seq, std::vector<VertexArrival>* batch) {
  for (VertexArrival& arrival : *batch) {
    if (arrival.vertex >= label_of_.size()) {
      label_of_.resize(arrival.vertex + 1, 0);
    }
    label_of_[arrival.vertex] = arrival.label;
    partitioner_->OnVertex(arrival.vertex, arrival.label, arrival.back_edges);
    recorded_.Append(std::move(arrival));
  }
  ingested_vertices_.fetch_add(batch->size(), std::memory_order_relaxed);
  ingested_batches_.fetch_add(1, std::memory_order_relaxed);
  SyncPressureCounters();
  if ((seq + 1) % options_.publish_every_batches == 0) PublishSnapshot();
  if (options_.on_batch_processed) options_.on_batch_processed(seq);
}

int32_t Service::Locate(VertexId v) const {
  locate_queries_.fetch_add(1, std::memory_order_relaxed);
  const PlacementSnapshot* snapshot = board_.Read();
  return snapshot != nullptr ? snapshot->Locate(v) : -1;
}

std::vector<uint32_t> Service::Touches(const LabeledGraph& query) const {
  touches_queries_.fetch_add(1, std::memory_order_relaxed);
  const PlacementSnapshot* snapshot = board_.Read();
  if (snapshot == nullptr) return {};
  return TouchedPartitions(*snapshot, query);
}

Status Service::ObserveQuery(const LabeledGraph& query) {
  std::lock_guard<std::mutex> lock(tracker_mu_);
  LOOM_RETURN_IF_ERROR(tracker_.Observe(query));
  const uint64_t observed =
      observed_queries_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!options_.enable_drift_reactions) return Status::OK();
  if (observed % options_.drift_check_every_queries != 0) return Status::OK();
  // While a reaction is pending the controller belongs to the pipeline
  // thread — skip the check entirely (see the tracker_mu_ comment).
  if (reaction_pending_.load(std::memory_order_acquire)) return Status::OK();
  drift_checks_.fetch_add(1, std::memory_order_relaxed);
  MotifDistribution current = tracker_.SupportDistribution();
  const DriftSignal signal = controller_.Check(current);
  if (!signal.fired) return Status::OK();
  auto drifted = std::make_unique<TpstryPP>(tracker_.Snapshot());
  reaction_pending_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> plock(producer_mu_);
  if (sealed_) {
    reaction_pending_.store(false, std::memory_order_release);
    return Status::OK();
  }
  drift_fires_.fetch_add(1, std::memory_order_relaxed);
  EnqueuePipelineTask(
      [this, t = std::move(drifted), cur = std::move(current)]() mutable {
        RunReaction(std::move(t), std::move(cur));
      });
  return Status::OK();
}

void Service::RunReaction(std::unique_ptr<TpstryPP> drifted_trie,
                          MotifDistribution current) {
  reaction_running_.store(true, std::memory_order_release);
  // Drain the assignment window first: SetTrie requires it empty, and the
  // replay prior should cover every ingested vertex.
  partitioner_->Finish();
  if (loom_ != nullptr) {
    loom_->SetTrie(drifted_trie.get());
    trie_ = std::move(drifted_trie);
  }
  DriftReaction reaction =
      controller_.React(recorded_, partitioner_.get(), std::move(current));
  // React leaves the partitioner on the LAST pass's assignment; continue
  // live ingest from the adopted keep-best one instead.
  partitioner_->AdoptAssignment(std::move(reaction.assignment),
                                partitioner_->stats());
  last_reaction_seconds_.store(reaction.seconds, std::memory_order_relaxed);
  last_reaction_cut_before_.store(reaction.edge_cut_before,
                                  std::memory_order_relaxed);
  last_reaction_cut_after_.store(reaction.edge_cut_after,
                                 std::memory_order_relaxed);
  last_reaction_migration_.store(reaction.migration_fraction,
                                 std::memory_order_relaxed);
  SyncPressureCounters();
  PublishSnapshot();
  drift_reactions_.fetch_add(1, std::memory_order_relaxed);
  reaction_running_.store(false, std::memory_order_release);
  reaction_pending_.store(false, std::memory_order_release);
}

void Service::PublishSnapshot() {
  auto snapshot = std::make_unique<PlacementSnapshot>(MakePlacementSnapshot(
      partitioner_->assignment(), label_of_, num_labels_, next_epoch_));
  snapshot_epoch_.store(next_epoch_, std::memory_order_relaxed);
  ++next_epoch_;
  board_.Publish(std::move(snapshot));
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
}

void Service::SyncPressureCounters() {
  const PartitionerStats& stats = partitioner_->stats();
  overflow_fallbacks_.store(stats.overflow_fallbacks,
                            std::memory_order_relaxed);
  forced_placements_.store(stats.forced_placements,
                           std::memory_order_relaxed);
  assign_errors_.store(stats.assign_errors, std::memory_order_relaxed);
}

ServiceStats Service::Stats() const {
  ServiceStats stats;
  stats.ingested_vertices = ingested_vertices_.load(std::memory_order_relaxed);
  stats.ingested_batches = ingested_batches_.load(std::memory_order_relaxed);
  stats.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  stats.locate_queries = locate_queries_.load(std::memory_order_relaxed);
  stats.touches_queries = touches_queries_.load(std::memory_order_relaxed);
  stats.observed_queries = observed_queries_.load(std::memory_order_relaxed);
  stats.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  stats.snapshot_epoch = snapshot_epoch_.load(std::memory_order_relaxed);
  stats.drift_checks = drift_checks_.load(std::memory_order_relaxed);
  stats.drift_fires = drift_fires_.load(std::memory_order_relaxed);
  stats.drift_reactions = drift_reactions_.load(std::memory_order_relaxed);
  stats.reaction_running = reaction_running_.load(std::memory_order_acquire);
  stats.last_reaction_seconds =
      last_reaction_seconds_.load(std::memory_order_relaxed);
  stats.last_reaction_edge_cut_before =
      last_reaction_cut_before_.load(std::memory_order_relaxed);
  stats.last_reaction_edge_cut_after =
      last_reaction_cut_after_.load(std::memory_order_relaxed);
  stats.last_reaction_migration_fraction =
      last_reaction_migration_.load(std::memory_order_relaxed);
  stats.overflow_fallbacks =
      overflow_fallbacks_.load(std::memory_order_relaxed);
  stats.forced_placements =
      forced_placements_.load(std::memory_order_relaxed);
  stats.assign_errors = assign_errors_.load(std::memory_order_relaxed);
  stats.sealed = sealed_flag_.load(std::memory_order_relaxed);
  return stats;
}

void Service::Flush() {
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(producer_mu_);
    target = tasks_enqueued_;
  }
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [&] {
    return tasks_done_.load(std::memory_order_acquire) >= target;
  });
}

Status Service::Seal() {
  {
    std::lock_guard<std::mutex> lock(producer_mu_);
    if (sealed_) {
      return Status::FailedPrecondition("Service::Seal called twice");
    }
    sealed_ = true;
    sealed_flag_.store(true, std::memory_order_relaxed);
    EnqueuePipelineTask([this] {
      partitioner_->Finish();
      SyncPressureCounters();
      PublishSnapshot();
    });
  }
  Flush();
  return Status::OK();
}

}  // namespace loom
