#include "motif/signature.h"

#include <algorithm>
#include <cassert>

namespace loom {

SignatureScheme::SignatureScheme(uint32_t num_labels)
    : num_labels_(num_labels == 0 ? 1 : num_labels) {}

uint32_t SignatureScheme::VertexFactor(Label label) const {
  assert(label < num_labels_);
  return label;
}

uint32_t SignatureScheme::EdgeFactor(Label a, Label b) const {
  assert(a < num_labels_ && b < num_labels_);
  if (a > b) std::swap(a, b);
  // Edge factors occupy the index range [L, L + L(L+1)/2): row-major over
  // the upper triangle (a <= b).
  const uint32_t row_offset = a * num_labels_ - a * (a - 1) / 2;
  return num_labels_ + row_offset + (b - a);
}

GraphSignature SignatureScheme::SignatureOf(const LabeledGraph& g) const {
  GraphSignature sig;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    MultiplyVertex(&sig, g.LabelOf(v));
  }
  g.ForEachEdge([&](VertexId u, VertexId v) {
    MultiplyEdge(&sig, g.LabelOf(u), g.LabelOf(v));
  });
  return sig;
}

void SignatureScheme::MultiplyVertex(GraphSignature* sig, Label label) const {
  sig->MultiplyFactor(VertexFactor(label));
}

void SignatureScheme::MultiplyEdge(GraphSignature* sig, Label a,
                                   Label b) const {
  sig->MultiplyFactor(EdgeFactor(a, b));
}

}  // namespace loom
