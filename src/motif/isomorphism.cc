#include "motif/isomorphism.h"

#include <algorithm>
#include <cassert>

namespace loom {
namespace {

struct Matcher {
  const LabeledGraph* pattern;
  const LabeledGraph* target;
  const std::function<bool(const std::vector<VertexId>&)>* cb;
  std::vector<VertexId> order;          // pattern vertices, search order
  std::vector<VertexId> mapping;        // pattern vertex -> target vertex
  std::vector<bool> used;               // target vertex used
  bool stopped = false;

  bool Feasible(VertexId pu, VertexId tv) const {
    if (pattern->LabelOf(pu) != target->LabelOf(tv)) return false;
    if (target->Degree(tv) < pattern->Degree(pu)) return false;
    // Every already-mapped pattern neighbour must be adjacent in the target.
    for (const VertexId pw : pattern->Neighbors(pu)) {
      const VertexId tw = mapping[pw];
      if (tw != kInvalidVertex && !target->HasEdge(tv, tw)) return false;
    }
    return true;
  }

  void Recurse(size_t depth) {
    if (stopped) return;
    if (depth == order.size()) {
      if (!(*cb)(mapping)) stopped = true;
      return;
    }
    const VertexId pu = order[depth];
    // Anchor on a mapped neighbour when one exists: candidates are then the
    // anchor image's neighbourhood instead of the whole graph.
    VertexId anchor = kInvalidVertex;
    for (const VertexId pw : pattern->Neighbors(pu)) {
      if (mapping[pw] != kInvalidVertex) {
        anchor = mapping[pw];
        break;
      }
    }
    if (anchor != kInvalidVertex) {
      for (const VertexId tv : target->Neighbors(anchor)) {
        if (used[tv] || !Feasible(pu, tv)) continue;
        mapping[pu] = tv;
        used[tv] = true;
        Recurse(depth + 1);
        used[tv] = false;
        mapping[pu] = kInvalidVertex;
        if (stopped) return;
      }
    } else {
      for (VertexId tv = 0; tv < target->NumVertices(); ++tv) {
        if (used[tv] || !Feasible(pu, tv)) continue;
        mapping[pu] = tv;
        used[tv] = true;
        Recurse(depth + 1);
        used[tv] = false;
        mapping[pu] = kInvalidVertex;
        if (stopped) return;
      }
    }
  }
};

}  // namespace

std::vector<VertexId> MatchingOrder(const LabeledGraph& pattern) {
  const size_t n = pattern.NumVertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);

  while (order.size() < n) {
    // Root: highest-degree unplaced vertex (cheapest pruning first).
    VertexId root = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (!placed[v] &&
          (root == kInvalidVertex || pattern.Degree(v) > pattern.Degree(root))) {
        root = v;
      }
    }
    placed[root] = true;
    order.push_back(root);
    // Greedy connected expansion: repeatedly place the unplaced vertex with
    // the most placed neighbours (ties: higher degree).
    while (true) {
      VertexId best = kInvalidVertex;
      size_t best_connected = 0;
      for (VertexId v = 0; v < n; ++v) {
        if (placed[v]) continue;
        size_t connected = 0;
        for (const VertexId w : pattern.Neighbors(v)) {
          if (placed[w]) ++connected;
        }
        if (connected == 0) continue;
        if (best == kInvalidVertex || connected > best_connected ||
            (connected == best_connected &&
             pattern.Degree(v) > pattern.Degree(best))) {
          best = v;
          best_connected = connected;
        }
      }
      if (best == kInvalidVertex) break;  // component exhausted
      placed[best] = true;
      order.push_back(best);
    }
  }
  return order;
}

void ForEachEmbedding(
    const LabeledGraph& pattern, const LabeledGraph& target,
    const std::function<bool(const std::vector<VertexId>&)>& cb) {
  if (pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices()) {
    return;
  }
  Matcher m;
  m.pattern = &pattern;
  m.target = &target;
  m.cb = &cb;
  m.order = MatchingOrder(pattern);
  m.mapping.assign(pattern.NumVertices(), kInvalidVertex);
  m.used.assign(target.NumVertices(), false);
  m.Recurse(0);
}

size_t CountEmbeddings(const LabeledGraph& pattern, const LabeledGraph& target,
                       size_t limit) {
  size_t count = 0;
  ForEachEmbedding(pattern, target, [&](const std::vector<VertexId>&) {
    ++count;
    return count < limit;
  });
  return count;
}

bool ContainsEmbedding(const LabeledGraph& pattern,
                       const LabeledGraph& target) {
  return CountEmbeddings(pattern, target, 1) > 0;
}

}  // namespace loom
