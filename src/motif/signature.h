#ifndef LOOM_MOTIF_SIGNATURE_H_
#define LOOM_MOTIF_SIGNATURE_H_

/// \file
/// Number-theoretic graph signatures in the style of Song et al. (paper
/// §4.3): a signature is conceptually a large integer capturing a graph's
/// vertices, labels and edges as distinct prime factors; it is maintained
/// *incrementally* (multiply per added element) and supports a fast,
/// non-authoritative containment test by divisibility.
///
/// loom's realisation (see DESIGN.md "Substitutions"):
///   factor of vertex v            = prime(vertex label)
///   factor of edge {u, v}         = prime(unordered label pair)
///   signature(G)                  = Π vertex factors · Π edge factors
/// represented exactly as a `FactorMultiset`. The scheme guarantees the
/// property the paper relies on: if a motif M embeds in S then sig(M)
/// divides sig(S) (no false negatives); false positives — distinct
/// topologies with equal factor multisets — are possible and rare, exactly
/// the "non-authoritative" behaviour §4.3 describes and `bench_signature`
/// quantifies.

#include <cstdint>

#include "common/primes.h"
#include "graph/graph.h"

namespace loom {

/// A graph signature: an exact factor multiset plus convenience accessors.
using GraphSignature = FactorMultiset;

/// Assigns prime indices to vertex labels and unordered label pairs for a
/// fixed label alphabet. All signatures that will ever be compared must come
/// from the same scheme.
class SignatureScheme {
 public:
  /// \param num_labels size of the label alphabet (labels are 0..num_labels-1).
  explicit SignatureScheme(uint32_t num_labels);

  uint32_t num_labels() const { return num_labels_; }

  /// Prime index of a vertex carrying `label`.
  uint32_t VertexFactor(Label label) const;

  /// Prime index of an edge whose endpoints carry `a` and `b` (order-free).
  uint32_t EdgeFactor(Label a, Label b) const;

  /// Full signature of a graph (all vertex and edge factors).
  GraphSignature SignatureOf(const LabeledGraph& g) const;

  /// Incremental update: multiplies `sig` by the factors a new vertex brings.
  void MultiplyVertex(GraphSignature* sig, Label label) const;

  /// Incremental update: multiplies `sig` by a new edge's factor.
  void MultiplyEdge(GraphSignature* sig, Label a, Label b) const;

 private:
  uint32_t num_labels_;
};

}  // namespace loom

#endif  // LOOM_MOTIF_SIGNATURE_H_
