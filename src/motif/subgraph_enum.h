#ifndef LOOM_MOTIF_SUBGRAPH_ENUM_H_
#define LOOM_MOTIF_SUBGRAPH_ENUM_H_

/// \file
/// Enumeration of the connected edge-grown sub-graphs of a (small) query
/// graph — the sub-graph family Algorithm 1 weaves into the TPSTry++. A
/// TPSTry++ node is a sub-graph reachable by adding one edge at a time, so
/// the family is "every non-empty connected subset of edges" (plus the
/// single-vertex sub-graphs, which the caller handles as trie roots).

#include <functional>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace loom {

/// Hard bound on query-graph edges accepted by the enumerator. Query graphs
/// are tiny by definition (a handful of vertices); the enumerator is
/// exponential in the edge count, as is the structure it feeds.
inline constexpr size_t kMaxQueryEdges = 18;

/// Calls `cb(edges)` once per non-empty connected subset of `g`'s edges,
/// in order of increasing subset size. Fails when `g` exceeds
/// `kMaxQueryEdges`.
Status EnumerateConnectedEdgeSubgraphs(
    const LabeledGraph& g,
    const std::function<void(const std::vector<Edge>&)>& cb);

}  // namespace loom

#endif  // LOOM_MOTIF_SUBGRAPH_ENUM_H_
