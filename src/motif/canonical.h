#ifndef LOOM_MOTIF_CANONICAL_H_
#define LOOM_MOTIF_CANONICAL_H_

/// \file
/// Exact canonical forms for small labelled graphs.
///
/// The paper's TPSTry++ identifies motifs by signature equality, admitting a
/// small collision probability (§4.2). loom additionally computes an exact
/// canonical form — a byte string equal iff two labelled graphs are
/// isomorphic — so that node identity can be verified, and so tests have an
/// isomorphism oracle. G-Tries' unlabelled canonical forms (Ribeiro & Silva)
/// are insufficient here precisely because labels matter, as the paper notes.
///
/// The algorithm refines vertices into classes with 1-WL colour refinement
/// over (label, degree), then minimises the adjacency/label encoding over the
/// remaining within-class permutations. Exponential in the worst case, but
/// query motifs are tiny (≤ ~12 vertices); an explicit budget guards misuse.

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace loom {

/// Canonical byte-string of `g`: two graphs get equal strings iff they are
/// isomorphic (same topology and labels).
///
/// Fails with InvalidArgument when the graph exceeds the small-motif budget
/// (more than `kMaxCanonicalVertices` vertices).
Result<std::string> CanonicalForm(const LabeledGraph& g);

/// Upper bound on motif size accepted by `CanonicalForm`.
inline constexpr size_t kMaxCanonicalVertices = 16;

/// Exact labelled-graph isomorphism for small graphs (canonical equality).
bool AreIsomorphic(const LabeledGraph& a, const LabeledGraph& b);

}  // namespace loom

#endif  // LOOM_MOTIF_CANONICAL_H_
