#ifndef LOOM_MOTIF_ISOMORPHISM_H_
#define LOOM_MOTIF_ISOMORPHISM_H_

/// \file
/// Exact sub-graph isomorphism (the paper's §2 query semantics): find
/// injective, label-preserving maps of a pattern graph into a data graph such
/// that every pattern edge maps to a data edge. This is the authoritative
/// matcher — used as the test oracle for signatures, to verify stream-matcher
/// output, and by the query-execution engine.

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace loom {

/// Calls `cb(mapping)` once per embedding of `pattern` into `target`, where
/// `mapping[i]` is the target vertex realising pattern vertex `i`.
/// Enumeration stops early when `cb` returns false. Embeddings are emitted
/// once per injective map (automorphic images are distinct embeddings).
void ForEachEmbedding(
    const LabeledGraph& pattern, const LabeledGraph& target,
    const std::function<bool(const std::vector<VertexId>&)>& cb);

/// Number of embeddings, capped at `limit`.
size_t CountEmbeddings(const LabeledGraph& pattern, const LabeledGraph& target,
                       size_t limit = SIZE_MAX);

/// True iff at least one embedding exists.
bool ContainsEmbedding(const LabeledGraph& pattern, const LabeledGraph& target);

/// A search order over pattern vertices in which every vertex after the first
/// of its connected component has at least one earlier neighbour. Exposed for
/// the query-execution engine, which replays the same order to count
/// partition-crossing traversals.
std::vector<VertexId> MatchingOrder(const LabeledGraph& pattern);

}  // namespace loom

#endif  // LOOM_MOTIF_ISOMORPHISM_H_
