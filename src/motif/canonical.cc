#include "motif/canonical.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/hash.h"

namespace loom {
namespace {

/// 1-WL colour refinement: start from (label, degree), iterate
/// colour = hash(colour, sorted neighbour colours) until the partition into
/// colour classes stabilises. Isomorphic graphs produce identical colour
/// multisets, so within-class permutation search remains exact.
std::vector<uint64_t> RefineColors(const LabeledGraph& g) {
  const size_t n = g.NumVertices();
  std::vector<uint64_t> color(n);
  for (VertexId v = 0; v < n; ++v) {
    color[v] = HashCombine(MixBits(g.LabelOf(v)), g.Degree(v));
  }
  size_t num_classes = 0;
  for (size_t round = 0; round < n; ++round) {
    std::vector<uint64_t> next(n);
    for (VertexId v = 0; v < n; ++v) {
      std::vector<uint64_t> nbr;
      nbr.reserve(g.Degree(v));
      for (const VertexId w : g.Neighbors(v)) nbr.push_back(color[w]);
      std::sort(nbr.begin(), nbr.end());
      uint64_t h = MixBits(color[v]);
      for (const uint64_t c : nbr) h = HashCombine(h, c);
      next[v] = h;
    }
    // Count classes; stop when refinement no longer splits anything.
    std::vector<uint64_t> sorted = next;
    std::sort(sorted.begin(), sorted.end());
    const size_t classes = static_cast<size_t>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
    color = std::move(next);
    if (classes == num_classes) break;
    num_classes = classes;
  }
  return color;
}

/// Encodes `g` under the vertex ordering `order` as:
/// [n][labels in order][upper-triangle adjacency bits].
std::string Encode(const LabeledGraph& g, const std::vector<VertexId>& order) {
  const size_t n = order.size();
  std::vector<uint32_t> pos(g.NumVertices());
  for (uint32_t i = 0; i < n; ++i) pos[order[i]] = i;

  std::string out;
  out.reserve(1 + n + (n * n + 7) / 8);
  out.push_back(static_cast<char>(n));
  for (const VertexId v : order) {
    out.push_back(static_cast<char>(g.LabelOf(v) & 0xff));
    out.push_back(static_cast<char>((g.LabelOf(v) >> 8) & 0xff));
  }
  size_t bit = 0;
  char current = 0;
  auto push_bit = [&](bool b) {
    if (b) current |= static_cast<char>(1 << (bit % 8));
    ++bit;
    if (bit % 8 == 0) {
      out.push_back(current);
      current = 0;
    }
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      push_bit(g.HasEdge(order[i], order[j]));
    }
  }
  if (bit % 8 != 0) out.push_back(current);
  return out;
}

struct SearchState {
  const LabeledGraph* g = nullptr;
  std::vector<std::vector<VertexId>> classes;
  std::vector<VertexId> order;
  std::string best;
  bool has_best = false;
};

void Search(SearchState* s, size_t class_idx) {
  if (class_idx == s->classes.size()) {
    std::string candidate = Encode(*s->g, s->order);
    if (!s->has_best || candidate < s->best) {
      s->best = std::move(candidate);
      s->has_best = true;
    }
    return;
  }
  std::vector<VertexId> perm = s->classes[class_idx];
  std::sort(perm.begin(), perm.end());
  do {
    const size_t base = s->order.size();
    s->order.insert(s->order.end(), perm.begin(), perm.end());
    Search(s, class_idx + 1);
    s->order.resize(base);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

}  // namespace

Result<std::string> CanonicalForm(const LabeledGraph& g) {
  if (g.NumVertices() > kMaxCanonicalVertices) {
    return Status::InvalidArgument(
        "CanonicalForm: graph exceeds small-motif budget (" +
        std::to_string(g.NumVertices()) + " vertices)");
  }
  if (g.NumVertices() == 0) return std::string(1, '\0');

  const std::vector<uint64_t> colors = RefineColors(g);

  // Group vertices into classes keyed by (label, colour): the label is the
  // primary sort key so that class *order* is isomorphism-invariant; the WL
  // colour hash refines the class but hash order must not leak into vertex
  // order across graphs. To make the class sequence invariant we sort class
  // keys by (label, class size, colour-invariant sketch), where the sketch
  // is the colour multiset digest of the class — identical across isomorphic
  // graphs. Ties between classes with identical keys are broken by trying
  // every interleaving, which the within-class permutation search subsumes
  // by merging such classes.
  std::map<std::pair<uint64_t, uint64_t>, std::vector<VertexId>> grouped;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint64_t label_key = g.LabelOf(v);
    grouped[{label_key, colors[v]}].push_back(v);
  }
  // Classes whose (label, size) collide but colours differ could order
  // ambiguously across isomorphic graphs if colour hashes were compared
  // directly — but identical graphs produce identical colour values, and
  // isomorphic graphs produce identical colour *values* too (the hash is a
  // function of structure alone). Hash order is therefore invariant.
  SearchState state;
  state.g = &g;
  for (auto& [key, members] : grouped) {
    state.classes.push_back(std::move(members));
  }

  // Permutation budget: product of class factorials.
  double perms = 1.0;
  for (const auto& cls : state.classes) {
    for (size_t i = 2; i <= cls.size(); ++i) perms *= static_cast<double>(i);
    if (perms > 5e6) {
      return Status::InvalidArgument(
          "CanonicalForm: too many symmetric vertices for exact search");
    }
  }

  state.order.reserve(g.NumVertices());
  Search(&state, 0);
  return std::move(state.best);
}

bool AreIsomorphic(const LabeledGraph& a, const LabeledGraph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  const auto ca = CanonicalForm(a);
  const auto cb = CanonicalForm(b);
  if (!ca.ok() || !cb.ok()) return false;
  return ca.value() == cb.value();
}

}  // namespace loom
