#include "motif/subgraph_enum.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace loom {
namespace {

/// Union-find over the ≤ 2m endpoint slots of an edge subset; connectivity
/// check for one subset is O(m α(m)).
class TinyUnionFind {
 public:
  explicit TinyUnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

bool SubsetConnected(const std::vector<Edge>& all_edges, uint32_t mask,
                     size_t num_vertices) {
  TinyUnionFind uf(num_vertices);
  VertexId first = kInvalidVertex;
  for (size_t i = 0; i < all_edges.size(); ++i) {
    if ((mask >> i) & 1u) {
      uf.Union(all_edges[i].u, all_edges[i].v);
      if (first == kInvalidVertex) first = all_edges[i].u;
    }
  }
  // Connected iff every endpoint of a selected edge joins `first`'s class.
  const size_t root = uf.Find(first);
  for (size_t i = 0; i < all_edges.size(); ++i) {
    if ((mask >> i) & 1u) {
      if (uf.Find(all_edges[i].u) != root || uf.Find(all_edges[i].v) != root) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Status EnumerateConnectedEdgeSubgraphs(
    const LabeledGraph& g,
    const std::function<void(const std::vector<Edge>&)>& cb) {
  const std::vector<Edge> edges = g.Edges();
  if (edges.size() > kMaxQueryEdges) {
    return Status::InvalidArgument(
        "query graph too large for sub-graph enumeration (" +
        std::to_string(edges.size()) + " edges, max " +
        std::to_string(kMaxQueryEdges) + ")");
  }
  const uint32_t total = 1u << edges.size();

  // Bucket masks by popcount so callers see subsets smallest-first — the
  // TPSTry++ needs parents (k edges) created before children (k+1 edges).
  std::vector<std::vector<uint32_t>> by_size(edges.size() + 1);
  for (uint32_t mask = 1; mask < total; ++mask) {
    by_size[static_cast<size_t>(__builtin_popcount(mask))].push_back(mask);
  }

  std::vector<Edge> subset;
  for (size_t size = 1; size <= edges.size(); ++size) {
    for (const uint32_t mask : by_size[size]) {
      if (!SubsetConnected(edges, mask, g.NumVertices())) continue;
      subset.clear();
      for (size_t i = 0; i < edges.size(); ++i) {
        if ((mask >> i) & 1u) subset.push_back(edges[i]);
      }
      cb(subset);
    }
  }
  return Status::OK();
}

}  // namespace loom
