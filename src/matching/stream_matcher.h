#ifndef LOOM_MATCHING_STREAM_MATCHER_H_
#define LOOM_MATCHING_STREAM_MATCHER_H_

/// \file
/// Graph-stream pattern matching against a TPSTry++ (paper §4.3).
///
/// The matcher maintains, for the vertices currently buffered in the stream
/// window, the set of sub-graphs that match TPSTry++ motifs:
///
///  * when an edge arrives it tries to *grow* every tracked sub-graph the
///    edge touches by exactly that edge, accepting the growth iff the new
///    signature is a TPSTry++ node (the paper's incremental
///    multiply-and-look-up);
///  * when a grown signature is unknown, the *re-grow* procedure starts a
///    fresh sub-graph from the new edge and expands it greedily through the
///    window, discarding any edge whose addition leaves the TPSTry++ — this
///    recovers the overlapping-motif case of Fig. 3;
///  * matches whose node is *frequent* (support >= threshold) are motif
///    matches, the unit LOOM assigns to partitions (§4.4).
///
/// Signature matching is non-authoritative (collisions possible); the
/// `verify_exact` option additionally checks the exact canonical form, which
/// is what tests use as ground truth.

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/small_vector.h"
#include "graph/graph.h"
#include "tpstry/tpstry_pp.h"

namespace loom {

/// Tuning knobs for the stream matcher.
struct StreamMatcherOptions {
  /// Support threshold T: nodes at or above are frequent motifs (§4.2).
  double frequency_threshold = 0.4;
  /// Enables the §4.3 re-grow procedure (ablation E8b turns it off).
  bool use_regrow = true;
  /// Verify signature hits with exact canonical forms (slower, exact).
  bool verify_exact = false;
  /// Hard cap on concurrently tracked sub-graphs (robustness valve).
  size_t max_tracked = 1u << 20;
  /// Per-vertex cap on tracked sub-graphs; bounds the per-edge growth work
  /// in dense, motif-saturated windows.
  size_t max_tracked_per_vertex = 48;
};

/// Counters exposed for experiments and tests.
struct StreamMatcherStats {
  uint64_t edges_processed = 0;
  uint64_t growths_accepted = 0;
  uint64_t growths_rejected = 0;
  uint64_t regrow_invocations = 0;
  uint64_t regrow_matches = 0;
  uint64_t tracked_dropped = 0;
  uint64_t max_tracked_live = 0;
};

/// Windowed motif-match tracker over a graph stream.
class StreamMatcher {
 public:
  /// \param trie workload summary; must outlive the matcher.
  StreamMatcher(const TpstryPP* trie, const StreamMatcherOptions& options);

  /// Buffers an arriving vertex. `window_back_edges` must contain only
  /// endpoints currently inside the window (the caller — LOOM — filters).
  void OnVertex(VertexId v, Label label,
                const std::vector<VertexId>& window_back_edges);

  /// Removes `v` (evicted or assigned) and every tracked sub-graph touching
  /// it.
  void RemoveVertex(VertexId v);

  /// The motif-match closure of `v` (§4.4): the union of the vertices of
  /// every *frequent* match containing `v`; when `transitive` (the paper's
  /// semantics) the union is expanded through matches that share vertices
  /// ("sub-graphs which share common sub-structure... will also be assigned
  /// to the same partition"). Empty when `v` belongs to no frequent match.
  /// Always excludes `v` itself.
  std::vector<VertexId> MatchClosureFor(VertexId v,
                                        bool transitive = true) const;

  /// Number of live tracked sub-graphs (any node, frequent or not).
  size_t NumTracked() const { return tracked_.size(); }

  /// Number of live tracked sub-graphs whose node is frequent.
  size_t NumFrequentMatches() const;

  const StreamMatcherStats& stats() const { return stats_; }

  /// Vertices of every live frequent match (for tests/diagnostics).
  std::vector<std::vector<VertexId>> FrequentMatchVertexSets() const;

 private:
  struct Tracked {
    SmallVector<Edge, 8> edges;       // normalized, sorted
    SmallVector<VertexId, 8> vertices;  // sorted
    GraphSignature signature;
    TpstryNodeId node = kInvalidTpstryNode;
    bool frequent = false;
  };

  /// Stable key of an edge set (normalized + sorted edges hashed).
  static uint64_t KeyOf(const SmallVector<Edge, 8>& edges);

  Label LabelIn(VertexId v) const;

  /// True iff `label` is inside the trie's signature alphabet. A vertex with
  /// an out-of-alphabet label occurs in no motif, so the matcher never grows
  /// a sub-graph through it — multiplying its factor would be outside the
  /// scheme (an assert in Debug, an edge-factor collision under NDEBUG).
  bool InAlphabet(Label label) const;

  /// Processes one in-window edge arrival.
  void ProcessEdge(VertexId u, VertexId v);

  /// Attempts S' = S + {u,v}; returns true if the growth was accepted.
  bool TryGrow(const Tracked& base, VertexId u, VertexId v);

  /// Builds a Tracked for the given edge set; returns false when its
  /// signature is not a TPSTry++ node (or verification fails).
  bool ResolveNode(Tracked* t) const;

  /// Inserts a tracked sub-graph (deduplicated); returns true if inserted.
  bool Insert(Tracked t);

  /// The §4.3 re-grow procedure from edge {u, v}.
  void ReGrow(VertexId u, VertexId v);

  /// Exact canonical form of the tracked sub-graph (verify_exact mode).
  std::string CanonicalOf(const Tracked& t) const;

  const TpstryPP* trie_;
  StreamMatcherOptions options_;
  std::vector<bool> frequent_;  // by node id
  std::vector<bool> useful_;    // by node id: frequent node reachable
  StreamMatcherStats stats_;

  /// In-window view: labels and adjacency restricted to buffered vertices.
  FlatMap<VertexId, Label> labels_;
  FlatMap<VertexId, SmallVector<VertexId, 8>> adjacency_;

  FlatMap<uint64_t, Tracked> tracked_;
  /// vertex -> keys of tracked sub-graphs containing it.
  FlatMap<VertexId, SmallVector<uint64_t, 4>> by_vertex_;
};

}  // namespace loom

#endif  // LOOM_MATCHING_STREAM_MATCHER_H_
