#ifndef LOOM_MATCHING_STREAM_MATCHER_H_
#define LOOM_MATCHING_STREAM_MATCHER_H_

/// \file
/// Graph-stream pattern matching against a TPSTry++ (paper §4.3).
///
/// The matcher maintains, for the vertices currently buffered in the stream
/// window, the set of sub-graphs that match TPSTry++ motifs:
///
///  * when an edge arrives it tries to *grow* every tracked sub-graph the
///    edge touches by exactly that edge, accepting the growth iff the new
///    signature is a TPSTry++ node (the paper's incremental
///    multiply-and-look-up);
///  * when a grown signature is unknown, the *re-grow* procedure starts a
///    fresh sub-graph from the new edge and expands it greedily through the
///    window, discarding any edge whose addition leaves the TPSTry++ — this
///    recovers the overlapping-motif case of Fig. 3;
///  * matches whose node is *frequent* (support >= threshold) are motif
///    matches, the unit LOOM assigns to partitions (§4.4).
///
/// Signature matching is non-authoritative (collisions possible); the
/// `verify_exact` option additionally checks the exact canonical form, which
/// is what tests use as ground truth.
///
/// Buffered vertices occupy matcher-internal *slots* (a free-list arena, at
/// most one per window member), and every per-vertex table — label,
/// adjacency, tracked-sub-graph index — is a flat array keyed by slot. The
/// only id-keyed structure is the direct-mapped id→slot index, so the
/// per-arrival bookkeeping does no hashing at all; hash lookups remain only
/// for the tracked-sub-graph key table.

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/small_vector.h"
#include "common/span.h"
#include "graph/graph.h"
#include "tpstry/tpstry_pp.h"

namespace loom {

/// Tuning knobs for the stream matcher.
struct StreamMatcherOptions {
  /// Support threshold T: nodes at or above are frequent motifs (§4.2).
  double frequency_threshold = 0.4;
  /// Enables the §4.3 re-grow procedure (ablation E8b turns it off).
  bool use_regrow = true;
  /// Verify signature hits with exact canonical forms (slower, exact).
  bool verify_exact = false;
  /// Hard cap on concurrently tracked sub-graphs (robustness valve).
  size_t max_tracked = 1u << 20;
  /// Per-vertex cap on tracked sub-graphs; bounds the per-edge growth work
  /// in dense, motif-saturated windows.
  size_t max_tracked_per_vertex = 48;
};

/// Counters exposed for experiments and tests.
struct StreamMatcherStats {
  uint64_t edges_processed = 0;
  uint64_t growths_accepted = 0;
  uint64_t growths_rejected = 0;
  uint64_t regrow_invocations = 0;
  uint64_t regrow_matches = 0;
  uint64_t tracked_dropped = 0;
  uint64_t max_tracked_live = 0;
};

/// Windowed motif-match tracker over a graph stream.
class StreamMatcher {
 public:
  /// \param trie workload summary; must outlive the matcher.
  StreamMatcher(const TpstryPP* trie, const StreamMatcherOptions& options);

  /// Buffers an arriving vertex. `window_back_edges` must contain only
  /// endpoints currently inside the window (the caller — LOOM — filters).
  void OnVertex(VertexId v, Label label,
                const std::vector<VertexId>& window_back_edges);

  /// Removes `v` (evicted or assigned) and every tracked sub-graph touching
  /// it.
  void RemoveVertex(VertexId v);

  /// The motif-match closure of `v` (§4.4): the union of the vertices of
  /// every *frequent* match containing `v`; when `transitive` (the paper's
  /// semantics) the union is expanded through matches that share vertices
  /// ("sub-graphs which share common sub-structure... will also be assigned
  /// to the same partition"). Empty when `v` belongs to no frequent match.
  /// Always excludes `v` itself.
  std::vector<VertexId> MatchClosureFor(VertexId v,
                                        bool transitive = true) const;

  /// True iff some live *frequent* match contains `v` — the cheap gate the
  /// eviction path checks before materializing a closure.
  bool HasFrequentMatch(VertexId v) const;

  /// Number of live tracked sub-graphs (any node, frequent or not).
  size_t NumTracked() const { return tracked_.size(); }

  /// Number of live tracked sub-graphs whose node is frequent.
  size_t NumFrequentMatches() const;

  const StreamMatcherStats& stats() const { return stats_; }

  /// Vertices of every live frequent match (for tests/diagnostics).
  std::vector<std::vector<VertexId>> FrequentMatchVertexSets() const;

 private:
  struct Tracked {
    SmallVector<Edge, 8> edges;         // normalized, sorted by encoding
    SmallVector<VertexId, 8> vertices;  // sorted
    SmallVector<uint32_t, 8> slots;     // parallel to `vertices`
    GraphSignature signature;
    TpstryNodeId node = kInvalidTpstryNode;
    bool frequent = false;
  };

  /// A window edge queued by the re-grow frontier, with both endpoint slots
  /// so label lookups stay O(1) array reads.
  struct FrontierEdge {
    Edge e;       // normalized
    uint32_t us;  // slot of e.u
    uint32_t vs;  // slot of e.v
  };

  /// Stable key of an edge set (normalized + sorted edges hashed).
  static uint64_t KeyOf(const SmallVector<Edge, 8>& edges);

  Label LabelIn(VertexId v) const;

  /// True iff `label` is inside the trie's signature alphabet. A vertex with
  /// an out-of-alphabet label occurs in no motif, so the matcher never grows
  /// a sub-graph through it — multiplying its factor would be outside the
  /// scheme (an assert in Debug, an edge-factor collision under NDEBUG).
  bool InAlphabet(Label label) const;

  /// Slot of a buffered vertex, or -1.
  int32_t SlotOf(VertexId v) const {
    return v < slot_of_.size() ? slot_of_[v] : -1;
  }

  /// Allocates (or reuses) the slot for an arriving vertex.
  uint32_t AllocSlot(VertexId v);

  /// Processes one in-window edge arrival (endpoints given by slot).
  void ProcessEdge(uint32_t u_slot, uint32_t v_slot);

  /// Attempts S' = S + {u,v}; returns true if the growth was accepted.
  bool TryGrow(const Tracked& base, uint32_t u_slot, uint32_t v_slot);

  /// Builds a Tracked for the given edge set; returns false when its
  /// signature is not a TPSTry++ node (or verification fails).
  bool ResolveNode(Tracked* t) const;

  /// Inserts a tracked sub-graph (deduplicated); returns true if inserted.
  bool Insert(Tracked t);

  /// The §4.3 re-grow procedure from edge {u, v} (endpoints given by slot).
  void ReGrow(uint32_t u_slot, uint32_t v_slot);

  /// Exact canonical form of the tracked sub-graph (verify_exact mode).
  std::string CanonicalOf(const Tracked& t) const;

  const TpstryPP* trie_;
  StreamMatcherOptions options_;
  std::vector<bool> frequent_;  // by node id
  std::vector<bool> useful_;    // by node id: frequent node reachable
  StreamMatcherStats stats_;

  /// Direct-mapped id→slot index (-1 = not buffered); ids are dense, the
  /// same contract the window and PartitionAssignment rely on.
  std::vector<int32_t> slot_of_;
  std::vector<uint32_t> free_slots_;

  /// In-window view by slot: labels, ids and adjacency (as neighbour slots)
  /// restricted to buffered vertices.
  std::vector<Label> label_by_slot_;
  std::vector<VertexId> id_by_slot_;
  std::vector<SmallVector<uint32_t, 8>> adj_by_slot_;
  /// slot -> keys of tracked sub-graphs containing it (lazy deletion).
  std::vector<SmallVector<uint64_t, 4>> keys_by_slot_;

  FlatMap<uint64_t, Tracked> tracked_;

  /// Closure-walk scratch, reused across calls so the eviction path never
  /// allocates: slots absorbed so far (doubling as the BFS queue), a
  /// membership byte per slot, and the match keys already expanded.
  mutable SmallVector<uint32_t, 64> closure_slots_;
  mutable std::vector<uint8_t> in_closure_;
  mutable SmallVector<uint64_t, 64> seen_keys_;
};

}  // namespace loom

#endif  // LOOM_MATCHING_STREAM_MATCHER_H_
