#include "matching/stream_matcher.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/hash.h"
#include "motif/canonical.h"

namespace loom {
namespace {

uint64_t EdgeBits(const Edge& e) {
  const Edge n = e.Normalized();
  return (static_cast<uint64_t>(n.u) << 32) | n.v;
}

bool ContainsVertex(const SmallVector<VertexId, 8>& sorted, VertexId v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

bool ContainsEdge(const SmallVector<Edge, 8>& sorted_edges, const Edge& e) {
  // Edge lists are kept sorted by their 64-bit normalized encoding.
  const uint64_t bits = EdgeBits(e);
  const auto it = std::lower_bound(
      sorted_edges.begin(), sorted_edges.end(), bits,
      [](const Edge& x, uint64_t b) { return EdgeBits(x) < b; });
  return it != sorted_edges.end() && EdgeBits(*it) == bits;
}

/// Inserts a normalized edge into a list kept sorted by encoding.
void InsertEdgeSorted(SmallVector<Edge, 8>* edges, const Edge& e) {
  const uint64_t bits = EdgeBits(e);
  const Edge* pos = std::lower_bound(
      edges->begin(), edges->end(), bits,
      [](const Edge& x, uint64_t b) { return EdgeBits(x) < b; });
  edges->insert(pos, e);
}

/// Membership test + insert into a sorted key set (the re-grow "considered"
/// set); returns true when newly inserted.
bool ConsiderOnce(SmallVector<uint64_t, 64>* sorted, uint64_t key) {
  uint64_t* pos = std::lower_bound(sorted->begin(), sorted->end(), key);
  if (pos != sorted->end() && *pos == key) return false;
  sorted->insert(pos, key);
  return true;
}

}  // namespace

StreamMatcher::StreamMatcher(const TpstryPP* trie,
                             const StreamMatcherOptions& options)
    : trie_(trie), options_(options) {
  frequent_ = trie_->FrequentBitmap(options_.frequency_threshold);
  useful_ = trie_->UsefulBitmap(options_.frequency_threshold);
}

uint64_t StreamMatcher::KeyOf(const SmallVector<Edge, 8>& edges) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const Edge& e : edges) h = HashCombine(h, EdgeBits(e));
  return h;
}

Label StreamMatcher::LabelIn(VertexId v) const {
  const int32_t s = SlotOf(v);
  assert(s >= 0);
  return label_by_slot_[s];
}

bool StreamMatcher::InAlphabet(Label label) const {
  return label < trie_->scheme().num_labels();
}

uint32_t StreamMatcher::AllocSlot(VertexId v) {
  if (v >= slot_of_.size()) {
    size_t grown = slot_of_.empty() ? 1024 : slot_of_.size() * 2;
    if (grown < static_cast<size_t>(v) + 1) grown = static_cast<size_t>(v) + 1;
    slot_of_.resize(grown, -1);
  }
  if (slot_of_[v] >= 0) return static_cast<uint32_t>(slot_of_[v]);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(label_by_slot_.size());
    label_by_slot_.emplace_back();
    id_by_slot_.emplace_back();
    adj_by_slot_.emplace_back();
    keys_by_slot_.emplace_back();
    in_closure_.push_back(0);
  }
  slot_of_[v] = static_cast<int32_t>(slot);
  id_by_slot_[slot] = v;
  return slot;
}

void StreamMatcher::OnVertex(VertexId v, Label label,
                             const std::vector<VertexId>& back_edges) {
  const bool fresh = SlotOf(v) < 0;
  const uint32_t slot = AllocSlot(v);
  // A duplicate arrival keeps the original label (emplace semantics of the
  // map this replaced); its adjacency keeps accumulating.
  if (fresh) label_by_slot_[slot] = label;
  for (const VertexId w : back_edges) {
    const int32_t ws = SlotOf(w);
    assert(ws >= 0 && "back edge endpoint not in window");
    if (ws < 0) continue;
    adj_by_slot_[slot].push_back(static_cast<uint32_t>(ws));
    adj_by_slot_[ws].push_back(slot);
  }
  // Edges with an out-of-alphabet endpoint can never start or extend a
  // motif; skipping them here keeps every signature update inside the
  // scheme (the stream's label universe may exceed the workload's).
  if (!InAlphabet(label_by_slot_[slot])) return;
  for (const VertexId w : back_edges) {
    const int32_t ws = SlotOf(w);
    if (ws >= 0 && InAlphabet(label_by_slot_[ws])) {
      ProcessEdge(static_cast<uint32_t>(ws), slot);
    }
  }
}

bool StreamMatcher::ResolveNode(Tracked* t) const {
  if (options_.verify_exact) {
    const std::string canon = CanonicalOf(*t);
    const auto node = trie_->FindBySignature(t->signature, &canon);
    if (!node.has_value()) return false;
    t->node = *node;
  } else {
    const auto node = trie_->FindBySignature(t->signature);
    if (!node.has_value()) return false;
    t->node = *node;
  }
  // A node from which no frequent node is reachable can neither be a motif
  // match nor grow into one — refuse to track it.
  if (!useful_[t->node]) return false;
  t->frequent = frequent_[t->node];
  return true;
}

std::string StreamMatcher::CanonicalOf(const Tracked& t) const {
  LabeledGraph g;
  std::unordered_map<VertexId, VertexId> local;
  for (size_t i = 0; i < t.vertices.size(); ++i) {
    local.emplace(t.vertices[i],
                  g.AddVertex(label_by_slot_[t.slots[i]]));
  }
  for (const Edge& e : t.edges) {
    g.AddEdgeUnchecked(local.at(e.u), local.at(e.v));
  }
  auto canon = CanonicalForm(g);
  return canon.ok() ? std::move(canon).value() : std::string();
}

bool StreamMatcher::Insert(Tracked t) {
  if (tracked_.size() >= options_.max_tracked) {
    ++stats_.tracked_dropped;
    return false;
  }
  const uint64_t key = KeyOf(t.edges);
  if (tracked_.count(key) > 0) return false;
  // Per-vertex saturation valve: bounds growth work in motif-dense windows.
  // The index uses lazy deletion, so compact each list before judging it.
  for (const uint32_t s : t.slots) {
    auto& keys = keys_by_slot_[s];
    if (keys.size() >= options_.max_tracked_per_vertex) {
      keys.erase(std::remove_if(keys.begin(), keys.end(),
                                [this](uint64_t k) {
                                  return tracked_.count(k) == 0;
                                }),
                 keys.end());
      if (keys.size() >= options_.max_tracked_per_vertex) {
        ++stats_.tracked_dropped;
        return false;
      }
    }
  }
  for (const uint32_t s : t.slots) keys_by_slot_[s].push_back(key);
  tracked_.emplace(key, std::move(t));
  stats_.max_tracked_live =
      std::max(stats_.max_tracked_live, static_cast<uint64_t>(tracked_.size()));
  return true;
}

bool StreamMatcher::TryGrow(const Tracked& base, uint32_t u_slot,
                            uint32_t v_slot) {
  const VertexId u = id_by_slot_[u_slot];
  const VertexId v = id_by_slot_[v_slot];
  const Edge e = Edge{u, v}.Normalized();
  if (ContainsEdge(base.edges, e)) return false;
  const bool has_u = ContainsVertex(base.vertices, e.u);
  const bool has_v = ContainsVertex(base.vertices, e.v);
  if (!has_u && !has_v) return false;  // edge not incident to the sub-graph

  const uint32_t eu_slot = e.u == u ? u_slot : v_slot;
  const uint32_t ev_slot = e.u == u ? v_slot : u_slot;
  const Label lu = label_by_slot_[eu_slot];
  const Label lv = label_by_slot_[ev_slot];

  Tracked grown;
  grown.edges = base.edges;
  InsertEdgeSorted(&grown.edges, e);
  grown.vertices = base.vertices;
  grown.slots = base.slots;
  grown.signature = base.signature;
  const SignatureScheme& scheme = trie_->scheme();
  const auto add_vertex = [&grown](VertexId x, uint32_t xs) {
    const VertexId* pos =
        std::lower_bound(grown.vertices.begin(), grown.vertices.end(), x);
    const size_t i = static_cast<size_t>(pos - grown.vertices.begin());
    grown.vertices.insert(pos, x);
    grown.slots.insert(grown.slots.begin() + i, xs);
  };
  if (!has_u) {
    add_vertex(e.u, eu_slot);
    scheme.MultiplyVertex(&grown.signature, lu);
  }
  if (!has_v) {
    add_vertex(e.v, ev_slot);
    scheme.MultiplyVertex(&grown.signature, lv);
  }
  scheme.MultiplyEdge(&grown.signature, lu, lv);

  if (!ResolveNode(&grown)) {
    ++stats_.growths_rejected;
    return false;
  }
  ++stats_.growths_accepted;
  Insert(std::move(grown));
  return true;
}

void StreamMatcher::ProcessEdge(uint32_t u_slot, uint32_t v_slot) {
  ++stats_.edges_processed;

  // Candidate bases: every tracked sub-graph touching either endpoint.
  SmallVector<uint64_t, 16> candidate_keys;
  for (const uint32_t s : {u_slot, v_slot}) {
    for (const uint64_t key : keys_by_slot_[s]) {
      candidate_keys.push_back(key);
    }
  }
  std::sort(candidate_keys.begin(), candidate_keys.end());
  candidate_keys.erase(
      std::unique(candidate_keys.begin(), candidate_keys.end()),
      candidate_keys.end());

  // §4.3: each tracked sub-graph's signature is "iteratively recomputed with
  // each update, and previous signatures discarded" — a successful growth
  // REPLACES the base sub-graph with the grown one.
  bool any_growth = false;
  const size_t max_edges = trie_->MaxMotifEdges();
  for (const uint64_t key : candidate_keys) {
    const auto it = tracked_.find(key);
    if (it == tracked_.end()) continue;
    if (it->second.edges.size() >= max_edges) continue;
    // Copy the base: TryGrow mutates tracked_ on success.
    const Tracked base = it->second;
    if (TryGrow(base, u_slot, v_slot)) {
      tracked_.erase(key);  // previous signature discarded (paper semantics)
      any_growth = true;
    }
  }
  if (any_growth) return;

  // The edge extended nothing. It may still begin a new motif instance:
  // with re-grow (Fig. 3) search the window for the largest motif match
  // containing it; otherwise just track the fresh edge sub-graph.
  if (options_.use_regrow) {
    ReGrow(u_slot, v_slot);
    return;
  }
  const VertexId u = id_by_slot_[u_slot];
  const VertexId v = id_by_slot_[v_slot];
  Tracked fresh;
  const Edge e = Edge{u, v}.Normalized();
  fresh.vertices = {e.u, e.v};
  fresh.slots = {e.u == u ? u_slot : v_slot, e.u == u ? v_slot : u_slot};
  fresh.edges = {e};
  const SignatureScheme& scheme = trie_->scheme();
  scheme.MultiplyVertex(&fresh.signature, label_by_slot_[fresh.slots[0]]);
  scheme.MultiplyVertex(&fresh.signature, label_by_slot_[fresh.slots[1]]);
  scheme.MultiplyEdge(&fresh.signature, label_by_slot_[fresh.slots[0]],
                      label_by_slot_[fresh.slots[1]]);
  if (ResolveNode(&fresh)) Insert(std::move(fresh));
}

void StreamMatcher::ReGrow(uint32_t u_slot, uint32_t v_slot) {
  ++stats_.regrow_invocations;
  const SignatureScheme& scheme = trie_->scheme();
  const VertexId u = id_by_slot_[u_slot];
  const VertexId v = id_by_slot_[v_slot];

  Tracked current;
  if (u < v) {
    current.vertices = {u, v};
    current.slots = {u_slot, v_slot};
  } else {
    current.vertices = {v, u};
    current.slots = {v_slot, u_slot};
  }
  current.edges = {Edge{u, v}.Normalized()};
  scheme.MultiplyVertex(&current.signature, label_by_slot_[u_slot]);
  scheme.MultiplyVertex(&current.signature, label_by_slot_[v_slot]);
  scheme.MultiplyEdge(&current.signature, label_by_slot_[u_slot],
                      label_by_slot_[v_slot]);
  if (!ResolveNode(&current)) return;  // the edge itself is not a motif

  // Frontier: window edges incident to the current sub-graph, explored FIFO
  // starting from the seed edge's endpoints; an edge rejected once is
  // discarded for good ("do not traverse to its neighbours"). Both the
  // frontier and the considered set are flat scratch (no node allocations).
  const size_t max_edges = trie_->MaxMotifEdges();
  SmallVector<FrontierEdge, 32> frontier;
  size_t frontier_head = 0;
  SmallVector<uint64_t, 64> considered;
  ConsiderOnce(&considered, EdgeBits(Edge{u, v}));
  auto push_incident = [&](uint32_t x_slot) {
    const VertexId x = id_by_slot_[x_slot];
    for (const uint32_t ws : adj_by_slot_[x_slot]) {
      const VertexId w = id_by_slot_[ws];
      const Edge e = Edge{x, w}.Normalized();
      if (ConsiderOnce(&considered, EdgeBits(e))) {
        frontier.push_back(FrontierEdge{e, e.u == x ? x_slot : ws,
                                        e.u == x ? ws : x_slot});
      }
    }
  };
  push_incident(u_slot);
  push_incident(v_slot);

  while (frontier_head < frontier.size() &&
         current.edges.size() < max_edges) {
    const FrontierEdge fe = frontier[frontier_head++];
    const Edge e = fe.e;
    const bool has_u = ContainsVertex(current.vertices, e.u);
    const bool has_v = ContainsVertex(current.vertices, e.v);
    if (!has_u && !has_v) continue;  // became stale; skip
    // A new endpoint outside the alphabet cannot be part of any motif:
    // discard the edge (permanently, like any rejected growth).
    if ((!has_u && !InAlphabet(label_by_slot_[fe.us])) ||
        (!has_v && !InAlphabet(label_by_slot_[fe.vs]))) {
      continue;
    }

    Tracked candidate = current;
    InsertEdgeSorted(&candidate.edges, e);
    const auto add_vertex = [&candidate](VertexId x, uint32_t xs) {
      const VertexId* pos = std::lower_bound(candidate.vertices.begin(),
                                             candidate.vertices.end(), x);
      const size_t i = static_cast<size_t>(pos - candidate.vertices.begin());
      candidate.vertices.insert(pos, x);
      candidate.slots.insert(candidate.slots.begin() + i, xs);
    };
    if (!has_u) {
      add_vertex(e.u, fe.us);
      scheme.MultiplyVertex(&candidate.signature, label_by_slot_[fe.us]);
    }
    if (!has_v) {
      add_vertex(e.v, fe.vs);
      scheme.MultiplyVertex(&candidate.signature, label_by_slot_[fe.vs]);
    }
    scheme.MultiplyEdge(&candidate.signature, label_by_slot_[fe.us],
                        label_by_slot_[fe.vs]);

    if (!ResolveNode(&candidate)) continue;  // discard this edge permanently
    current = std::move(candidate);
    if (!has_u) push_incident(fe.us);
    if (!has_v) push_incident(fe.vs);
  }

  ++stats_.regrow_matches;
  Insert(std::move(current));
}

void StreamMatcher::RemoveVertex(VertexId v) {
  const int32_t s = SlotOf(v);
  if (s < 0) return;
  const uint32_t slot = static_cast<uint32_t>(s);
  for (const uint64_t key : keys_by_slot_[slot]) {
    // Unlink from the other member vertices' indices lazily: just erase the
    // tracked entry; stale keys are skipped on lookup.
    tracked_.erase(key);
  }
  keys_by_slot_[slot].clear();
  // Remove the slot from its neighbours' adjacency. Slot-keyed arrays are
  // stable, so no copies are needed across the updates.
  for (const uint32_t ws : adj_by_slot_[slot]) {
    auto& back = adj_by_slot_[ws];
    back.erase(std::remove(back.begin(), back.end(), slot), back.end());
  }
  adj_by_slot_[slot].clear();
  slot_of_[v] = -1;
  free_slots_.push_back(slot);
}

bool StreamMatcher::HasFrequentMatch(VertexId v) const {
  const int32_t s = SlotOf(v);
  if (s < 0) return false;
  for (const uint64_t key : keys_by_slot_[s]) {
    const auto t = tracked_.find(key);
    if (t != tracked_.end() && t->second.frequent) return true;
  }
  return false;
}

std::vector<VertexId> StreamMatcher::MatchClosureFor(VertexId v,
                                                     bool transitive) const {
  const int32_t s = SlotOf(v);
  if (s < 0 || keys_by_slot_[s].empty()) return {};

  // Reset scratch from the previous walk (bounded by its closure size).
  for (const uint32_t cs : closure_slots_) in_closure_[cs] = 0;
  closure_slots_.clear();
  seen_keys_.clear();

  // `closure_slots_` doubles as the BFS queue: every absorbed slot is
  // visited exactly once, in absorption order.
  auto absorb_matches_of = [&](uint32_t x_slot) {
    for (const uint64_t key : keys_by_slot_[x_slot]) {
      if (!ConsiderOnce(&seen_keys_, key)) continue;
      const auto t = tracked_.find(key);
      if (t == tracked_.end() || !t->second.frequent) continue;
      for (const uint32_t member : t->second.slots) {
        if (!in_closure_[member]) {
          in_closure_[member] = 1;
          closure_slots_.push_back(member);
        }
      }
    }
  };

  absorb_matches_of(static_cast<uint32_t>(s));
  size_t head = 0;
  while (transitive && head < closure_slots_.size()) {
    absorb_matches_of(closure_slots_[head++]);
  }

  std::vector<VertexId> out;
  out.reserve(closure_slots_.size());
  for (const uint32_t cs : closure_slots_) {
    if (cs != static_cast<uint32_t>(s)) out.push_back(id_by_slot_[cs]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t StreamMatcher::NumFrequentMatches() const {
  size_t count = 0;
  for (const auto& [key, t] : tracked_) {
    (void)key;
    if (t.frequent) ++count;
  }
  return count;
}

std::vector<std::vector<VertexId>> StreamMatcher::FrequentMatchVertexSets()
    const {
  std::vector<std::vector<VertexId>> out;
  for (const auto& [key, t] : tracked_) {
    (void)key;
    if (t.frequent) out.emplace_back(t.vertices.begin(), t.vertices.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace loom
