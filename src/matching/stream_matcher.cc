#include "matching/stream_matcher.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

#include "common/hash.h"
#include "motif/canonical.h"

namespace loom {
namespace {

uint64_t EdgeBits(const Edge& e) {
  const Edge n = e.Normalized();
  return (static_cast<uint64_t>(n.u) << 32) | n.v;
}

bool ContainsVertex(const SmallVector<VertexId, 8>& sorted, VertexId v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

bool ContainsEdge(const SmallVector<Edge, 8>& sorted_edges, const Edge& e) {
  // Edge lists are kept sorted by their 64-bit normalized encoding.
  const uint64_t bits = EdgeBits(e);
  const auto it = std::lower_bound(
      sorted_edges.begin(), sorted_edges.end(), bits,
      [](const Edge& x, uint64_t b) { return EdgeBits(x) < b; });
  return it != sorted_edges.end() && EdgeBits(*it) == bits;
}

}  // namespace

StreamMatcher::StreamMatcher(const TpstryPP* trie,
                             const StreamMatcherOptions& options)
    : trie_(trie), options_(options) {
  frequent_ = trie_->FrequentBitmap(options_.frequency_threshold);
  useful_ = trie_->UsefulBitmap(options_.frequency_threshold);
}

uint64_t StreamMatcher::KeyOf(const SmallVector<Edge, 8>& edges) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const Edge& e : edges) h = HashCombine(h, EdgeBits(e));
  return h;
}

Label StreamMatcher::LabelIn(VertexId v) const {
  const auto it = labels_.find(v);
  assert(it != labels_.end());
  return it->second;
}

bool StreamMatcher::InAlphabet(Label label) const {
  return label < trie_->scheme().num_labels();
}

void StreamMatcher::OnVertex(VertexId v, Label label,
                             const std::vector<VertexId>& window_back_edges) {
  labels_.emplace(v, label);
  adjacency_.emplace(v);
  for (const VertexId w : window_back_edges) {
    assert(labels_.count(w) > 0 && "back edge endpoint not in window");
    adjacency_[v].push_back(w);
    adjacency_[w].push_back(v);
  }
  // Edges with an out-of-alphabet endpoint can never start or extend a
  // motif; skipping them here keeps every signature update inside the
  // scheme (the stream's label universe may exceed the workload's).
  if (!InAlphabet(label)) return;
  for (const VertexId w : window_back_edges) {
    if (InAlphabet(LabelIn(w))) ProcessEdge(w, v);
  }
}

bool StreamMatcher::ResolveNode(Tracked* t) const {
  if (options_.verify_exact) {
    const std::string canon = CanonicalOf(*t);
    const auto node = trie_->FindBySignature(t->signature, &canon);
    if (!node.has_value()) return false;
    t->node = *node;
  } else {
    const auto node = trie_->FindBySignature(t->signature);
    if (!node.has_value()) return false;
    t->node = *node;
  }
  // A node from which no frequent node is reachable can neither be a motif
  // match nor grow into one — refuse to track it.
  if (!useful_[t->node]) return false;
  t->frequent = frequent_[t->node];
  return true;
}

std::string StreamMatcher::CanonicalOf(const Tracked& t) const {
  LabeledGraph g;
  std::unordered_map<VertexId, VertexId> local;
  for (const VertexId v : t.vertices) {
    local.emplace(v, g.AddVertex(LabelIn(v)));
  }
  for (const Edge& e : t.edges) {
    g.AddEdgeUnchecked(local.at(e.u), local.at(e.v));
  }
  auto canon = CanonicalForm(g);
  return canon.ok() ? std::move(canon).value() : std::string();
}

bool StreamMatcher::Insert(Tracked t) {
  if (tracked_.size() >= options_.max_tracked) {
    ++stats_.tracked_dropped;
    return false;
  }
  const uint64_t key = KeyOf(t.edges);
  if (tracked_.count(key) > 0) return false;
  // Per-vertex saturation valve: bounds growth work in motif-dense windows.
  // The index uses lazy deletion, so compact each list before judging it.
  for (const VertexId v : t.vertices) {
    const auto it = by_vertex_.find(v);
    if (it == by_vertex_.end()) continue;
    if (it->second.size() >= options_.max_tracked_per_vertex) {
      auto& keys = it->second;
      keys.erase(std::remove_if(keys.begin(), keys.end(),
                                [this](uint64_t k) {
                                  return tracked_.count(k) == 0;
                                }),
                 keys.end());
      if (keys.size() >= options_.max_tracked_per_vertex) {
        ++stats_.tracked_dropped;
        return false;
      }
    }
  }
  for (const VertexId v : t.vertices) by_vertex_[v].push_back(key);
  tracked_.emplace(key, std::move(t));
  stats_.max_tracked_live =
      std::max(stats_.max_tracked_live, static_cast<uint64_t>(tracked_.size()));
  return true;
}

bool StreamMatcher::TryGrow(const Tracked& base, VertexId u, VertexId v) {
  const Edge e = Edge{u, v}.Normalized();
  if (ContainsEdge(base.edges, e)) return false;
  const bool has_u = ContainsVertex(base.vertices, e.u);
  const bool has_v = ContainsVertex(base.vertices, e.v);
  if (!has_u && !has_v) return false;  // edge not incident to the sub-graph

  Tracked grown;
  grown.edges = base.edges;
  grown.edges.push_back(e);
  std::sort(grown.edges.begin(), grown.edges.end(),
            [](const Edge& a, const Edge& b) {
              return EdgeBits(a) < EdgeBits(b);
            });
  grown.vertices = base.vertices;
  grown.signature = base.signature;
  const SignatureScheme& scheme = trie_->scheme();
  if (!has_u) {
    grown.vertices.push_back(e.u);
    scheme.MultiplyVertex(&grown.signature, LabelIn(e.u));
  }
  if (!has_v) {
    grown.vertices.push_back(e.v);
    scheme.MultiplyVertex(&grown.signature, LabelIn(e.v));
  }
  std::sort(grown.vertices.begin(), grown.vertices.end());
  scheme.MultiplyEdge(&grown.signature, LabelIn(e.u), LabelIn(e.v));

  if (!ResolveNode(&grown)) {
    ++stats_.growths_rejected;
    return false;
  }
  ++stats_.growths_accepted;
  Insert(std::move(grown));
  return true;
}

void StreamMatcher::ProcessEdge(VertexId u, VertexId v) {
  ++stats_.edges_processed;

  // Candidate bases: every tracked sub-graph touching either endpoint.
  std::vector<uint64_t> candidate_keys;
  for (const VertexId x : {u, v}) {
    const auto it = by_vertex_.find(x);
    if (it == by_vertex_.end()) continue;
    candidate_keys.insert(candidate_keys.end(), it->second.begin(),
                          it->second.end());
  }
  std::sort(candidate_keys.begin(), candidate_keys.end());
  candidate_keys.erase(
      std::unique(candidate_keys.begin(), candidate_keys.end()),
      candidate_keys.end());

  // §4.3: each tracked sub-graph's signature is "iteratively recomputed with
  // each update, and previous signatures discarded" — a successful growth
  // REPLACES the base sub-graph with the grown one.
  bool any_growth = false;
  const size_t max_edges = trie_->MaxMotifEdges();
  for (const uint64_t key : candidate_keys) {
    const auto it = tracked_.find(key);
    if (it == tracked_.end()) continue;
    if (it->second.edges.size() >= max_edges) continue;
    // Copy the base: TryGrow mutates tracked_ on success.
    const Tracked base = it->second;
    if (TryGrow(base, u, v)) {
      tracked_.erase(key);  // previous signature discarded (paper semantics)
      any_growth = true;
    }
  }
  if (any_growth) return;

  // The edge extended nothing. It may still begin a new motif instance:
  // with re-grow (Fig. 3) search the window for the largest motif match
  // containing it; otherwise just track the fresh edge sub-graph.
  if (options_.use_regrow) {
    ReGrow(u, v);
    return;
  }
  Tracked fresh;
  const Edge e = Edge{u, v}.Normalized();
  fresh.vertices = {e.u, e.v};
  fresh.edges = {e};
  const SignatureScheme& scheme = trie_->scheme();
  scheme.MultiplyVertex(&fresh.signature, LabelIn(e.u));
  scheme.MultiplyVertex(&fresh.signature, LabelIn(e.v));
  scheme.MultiplyEdge(&fresh.signature, LabelIn(e.u), LabelIn(e.v));
  if (ResolveNode(&fresh)) Insert(std::move(fresh));
}

void StreamMatcher::ReGrow(VertexId u, VertexId v) {
  ++stats_.regrow_invocations;
  const SignatureScheme& scheme = trie_->scheme();

  Tracked current;
  current.vertices = {std::min(u, v), std::max(u, v)};
  current.edges = {Edge{u, v}.Normalized()};
  scheme.MultiplyVertex(&current.signature, LabelIn(u));
  scheme.MultiplyVertex(&current.signature, LabelIn(v));
  scheme.MultiplyEdge(&current.signature, LabelIn(u), LabelIn(v));
  if (!ResolveNode(&current)) return;  // the edge itself is not a motif

  // Frontier: window edges incident to the current sub-graph, explored FIFO
  // starting from the seed edge's endpoints; an edge rejected once is
  // discarded for good ("do not traverse to its neighbours").
  const size_t max_edges = trie_->MaxMotifEdges();
  std::deque<Edge> frontier;
  std::unordered_set<uint64_t> considered;
  considered.insert(EdgeBits(Edge{u, v}));
  auto push_incident = [&](VertexId x) {
    const auto it = adjacency_.find(x);
    if (it == adjacency_.end()) return;
    for (const VertexId w : it->second) {
      const Edge e = Edge{x, w}.Normalized();
      if (considered.insert(EdgeBits(e)).second) frontier.push_back(e);
    }
  };
  push_incident(u);
  push_incident(v);

  while (!frontier.empty() && current.edges.size() < max_edges) {
    const Edge e = frontier.front();
    frontier.pop_front();
    const bool has_u = ContainsVertex(current.vertices, e.u);
    const bool has_v = ContainsVertex(current.vertices, e.v);
    if (!has_u && !has_v) continue;  // became stale; skip
    // A new endpoint outside the alphabet cannot be part of any motif:
    // discard the edge (permanently, like any rejected growth).
    if ((!has_u && !InAlphabet(LabelIn(e.u))) ||
        (!has_v && !InAlphabet(LabelIn(e.v)))) {
      continue;
    }

    Tracked candidate = current;
    candidate.edges.push_back(e);
    std::sort(candidate.edges.begin(), candidate.edges.end(),
              [](const Edge& a, const Edge& b) {
                return EdgeBits(a) < EdgeBits(b);
              });
    if (!has_u) {
      candidate.vertices.push_back(e.u);
      scheme.MultiplyVertex(&candidate.signature, LabelIn(e.u));
    }
    if (!has_v) {
      candidate.vertices.push_back(e.v);
      scheme.MultiplyVertex(&candidate.signature, LabelIn(e.v));
    }
    std::sort(candidate.vertices.begin(), candidate.vertices.end());
    scheme.MultiplyEdge(&candidate.signature, LabelIn(e.u), LabelIn(e.v));

    if (!ResolveNode(&candidate)) continue;  // discard this edge permanently
    current = std::move(candidate);
    if (!has_u) push_incident(e.u);
    if (!has_v) push_incident(e.v);
  }

  ++stats_.regrow_matches;
  Insert(std::move(current));
}

void StreamMatcher::RemoveVertex(VertexId v) {
  const auto idx = by_vertex_.find(v);
  if (idx != by_vertex_.end()) {
    for (const uint64_t key : idx->second) {
      // Unlink from the other member vertices' indices lazily: just erase the
      // tracked entry; stale keys in by_vertex_ are skipped on lookup.
      tracked_.erase(key);
    }
    by_vertex_.erase(idx);
  }
  // Remove v from the window view. The neighbour list is copied out first:
  // FlatMap's backward-shift erase relocates slots, so `adj->second` would
  // dangle across the erase (unordered_map kept references stable here).
  const auto adj = adjacency_.find(v);
  if (adj != adjacency_.end()) {
    const SmallVector<VertexId, 8> neighbors = adj->second;
    adjacency_.erase(adj);
    for (const VertexId w : neighbors) {
      const auto wit = adjacency_.find(w);
      if (wit == adjacency_.end()) continue;
      auto& back = wit->second;
      back.erase(std::remove(back.begin(), back.end(), v), back.end());
    }
  }
  labels_.erase(v);
}

std::vector<VertexId> StreamMatcher::MatchClosureFor(VertexId v,
                                                     bool transitive) const {
  const auto idx = by_vertex_.find(v);
  if (idx == by_vertex_.end()) return {};

  std::unordered_set<VertexId> closure;
  std::unordered_set<uint64_t> seen_keys;
  std::deque<VertexId> queue;

  auto absorb_matches_of = [&](VertexId x) {
    const auto it = by_vertex_.find(x);
    if (it == by_vertex_.end()) return;
    for (const uint64_t key : it->second) {
      if (!seen_keys.insert(key).second) continue;
      const auto t = tracked_.find(key);
      if (t == tracked_.end() || !t->second.frequent) continue;
      for (const VertexId member : t->second.vertices) {
        if (closure.insert(member).second) queue.push_back(member);
      }
    }
  };

  absorb_matches_of(v);
  while (transitive && !queue.empty()) {
    const VertexId x = queue.front();
    queue.pop_front();
    absorb_matches_of(x);
  }

  closure.erase(v);
  std::vector<VertexId> out(closure.begin(), closure.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t StreamMatcher::NumFrequentMatches() const {
  size_t count = 0;
  for (const auto& [key, t] : tracked_) {
    (void)key;
    if (t.frequent) ++count;
  }
  return count;
}

std::vector<std::vector<VertexId>> StreamMatcher::FrequentMatchVertexSets()
    const {
  std::vector<std::vector<VertexId>> out;
  for (const auto& [key, t] : tracked_) {
    (void)key;
    if (t.frequent) out.emplace_back(t.vertices.begin(), t.vertices.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace loom
