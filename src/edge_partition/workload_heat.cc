#include "edge_partition/workload_heat.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace loom {

std::vector<double> LabelHeatFromTrie(const TpstryPP& trie) {
  std::vector<double> heat;
  for (TpstryNodeId id = 0; id < trie.NumNodes(); ++id) {
    const TpstryNode& node = trie.node(id);
    if (node.support <= 0.0) continue;
    std::unordered_set<Label> labels;
    for (VertexId v = 0; v < node.motif.NumVertices(); ++v) {
      labels.insert(node.motif.LabelOf(v));
    }
    for (const Label label : labels) {
      if (label >= heat.size()) heat.resize(label + 1, 0.0);
      heat[label] += node.support;
    }
  }
  const double max_heat =
      heat.empty() ? 0.0 : *std::max_element(heat.begin(), heat.end());
  if (max_heat > 0.0) {
    for (double& h : heat) h /= max_heat;
  }
  return heat;
}

VertexHeatFn MakeLabelHeatFn(std::vector<double> heat) {
  return [table = std::move(heat)](VertexId /*vertex*/, Label label) {
    return label < table.size() ? table[label] : 0.0;
  };
}

}  // namespace loom
