#ifndef LOOM_EDGE_PARTITION_DBH_PARTITIONER_H_
#define LOOM_EDGE_PARTITION_DBH_PARTITIONER_H_

/// \file
/// DBH — Degree-Based Hashing (Xie et al., NIPS 2014): assign edge (u, v)
/// to hash(x) mod k where x is the endpoint with the *smaller* partial
/// degree. Low-degree vertices keep all their edges on one partition (one
/// replica), while hub vertices — whose edges are hashed through their
/// many low-degree neighbours — are cut and replicated across partitions.
/// A one-table, no-scoring baseline: the replication-factor gap between
/// DBH and HDRF on power-law graphs is the classic result the bench table
/// reproduces. The workload-heat hook inflates hot vertices' effective
/// degree, pushing the hash onto their (colder) neighbours so hot motif
/// hubs replicate first.

#include <string>

#include "edge_partition/edge_partitioner.h"

namespace loom {

/// Streaming DBH over the back-edge cursor.
class DbhPartitioner : public EdgePartitioner {
 public:
  explicit DbhPartitioner(const EdgePartitionerOptions& options)
      : EdgePartitioner(options) {}

  std::string Name() const override { return "dbh"; }

 protected:
  uint32_t PickPartition(VertexId u, VertexId v) override;
};

}  // namespace loom

#endif  // LOOM_EDGE_PARTITION_DBH_PARTITIONER_H_
