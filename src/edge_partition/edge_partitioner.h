#ifndef LOOM_EDGE_PARTITION_EDGE_PARTITIONER_H_
#define LOOM_EDGE_PARTITION_EDGE_PARTITIONER_H_

/// \file
/// Streaming *edge* partitioning — the standard answer where the paper's
/// vertex partitioners degrade (power-law graphs, §5 future work). Instead
/// of assigning vertices to partitions and cutting edges, an edge
/// partitioner assigns each edge to exactly one partition and *replicates*
/// the endpoint vertices into every partition that holds one of their
/// edges; the quality metric is the replication factor (average replicas
/// per vertex) instead of the edge-cut fraction.
///
/// The edge cursor is the existing ArrivalSource back-edge view: every
/// undirected edge is yielded exactly once, on its later endpoint's
/// arrival, so the same stream files, generators and replay machinery that
/// feed the vertex partitioners feed this module, and "edge i" has a
/// stable meaning (the i-th back edge in arrival order) that restream
/// priors and golden-hash pins rely on.
///
/// Implementations: HDRF (hdrf_partitioner.h) and DBH (dbh_partitioner.h),
/// both backed by ReplicaSet for the vertex→partition-set state. A
/// workload-aware hook (workload_heat.h) scales partial degrees by motif
/// support so hot motif hubs replicate first; a budgeted edge-restream
/// pass (edge_restream.h) replays the stream against a prior placement.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "partition/replica_set.h"
#include "stream/arrival_source.h"

namespace loom {

class ThreadPool;

/// Workload-aware heat for an endpoint: a value in [0, 1] (larger = hotter)
/// that scales the vertex's *effective* partial degree, so degree-sensitive
/// placement rules (HDRF's θ, DBH's lower-degree hash) treat hot motif hubs
/// as high-degree and replicate them first. Must be deterministic for a
/// given (vertex, label) pair — it participates in golden-hashed placement.
using VertexHeatFn = std::function<double(VertexId, Label)>;

/// Configuration shared by all streaming edge partitioners.
struct EdgePartitionerOptions {
  /// Number of partitions k.
  uint32_t k = 4;
  /// HDRF balance weight λ: 0 = pure replication greed, larger values trade
  /// replication factor for tighter edge balance. Ignored by DBH.
  double lambda = 1.0;
  /// Expected edge count m; sizes the per-partition edge budget. 0 leaves
  /// the budget unconstrained (balance then rests on the scoring alone).
  uint64_t num_edges_hint = 0;
  /// Expected vertex count n (reserves the degree tables; optional).
  uint64_t num_vertices_hint = 0;
  /// Edge-budget slack: each partition takes at most ceil(slack * m / k)
  /// edges before the overflow fallback re-routes (never drops) the edge.
  double balance_slack = 1.1;
  /// Replica budget per vertex: a vertex may appear in at most this many
  /// partitions. 0 = unbounded (effectively k). When both endpoints are at
  /// their budget with disjoint partition sets the cap must be relaxed for
  /// that edge (counted in stats().cap_relaxations).
  uint32_t max_partitions_per_vertex = 0;
  /// Seed for hash-based placement (DBH).
  uint64_t seed = 42;
  /// Record the per-edge placement log (stream order). Required by the
  /// edge restreamer, the differential tests and the golden hashes; costs
  /// 4 bytes per edge, so the out-of-core tier may turn it off.
  bool record_placements = true;
  /// Optional workload-aware scoring hook; nullptr = degree-only.
  VertexHeatFn heat;
  /// Weight of the heat term: effective_degree = degree * (1 + weight *
  /// heat). 0 disables the hook even when `heat` is set.
  double heat_weight = 1.0;
};

/// Rejects (InvalidArgument, mutating nothing): `k == 0`, a NaN or negative
/// `lambda`, a NaN or sub-1.0 `balance_slack`, a NaN or negative
/// `heat_weight`, and `max_partitions_per_vertex == 1` with `k > 1` (a
/// one-partition replica budget makes every edge with previously-seen
/// endpoints a cap relaxation — always a configuration mistake).
Status ValidateEdgePartitionerOptions(const EdgePartitionerOptions& options);

/// Sanitized copy of `options`: `k` clamped to >= 1, NaN/negative `lambda`
/// and `heat_weight` clamped to 0 (the conservative end: the term drops
/// out), NaN or sub-1.0 `balance_slack` clamped to 1.0, and
/// `max_partitions_per_vertex` clamped into {0} ∪ [2, k] when k > 1.
/// Constructors apply this to everything they are given.
EdgePartitionerOptions SanitizeEdgePartitionerOptions(
    EdgePartitionerOptions options);

/// The per-partition edge budget ceil(slack * m / k), at least 1; 0 when
/// `num_edges` is 0 (unconstrained).
uint64_t ComputeEdgeCapacity(uint32_t k, uint64_t num_edges, double slack);

/// Counters shared by every streaming edge partitioner; the same
/// fail-loud-in-Release philosophy as PartitionerStats.
struct EdgePartitionerStats {
  /// Edges placed so far this pass (== sum of per-partition edge counts).
  uint64_t edges_assigned = 0;
  /// Placements where the heuristic's pick (or every scored candidate) was
  /// blocked — by the edge budget or an endpoint's replica budget — and
  /// the edge was re-routed to the least-loaded partition the replica
  /// budgets allow, possibly past the edge budget.
  uint64_t overflow_fallbacks = 0;
  /// Placements where both endpoints were at `max_partitions_per_vertex`
  /// with disjoint partition sets, so the replica cap had to be relaxed for
  /// the edge (never happens with the default unbounded cap).
  uint64_t cap_relaxations = 0;
  /// Placement-application failures (partition index out of range). Always
  /// a partitioner logic error; surfaced so Release builds report it
  /// instead of silently mis-counting.
  uint64_t assign_errors = 0;
  /// Restream passes only: edges placed on a different partition than the
  /// prior pass assigned.
  uint64_t prior_moves = 0;
  /// Restream passes only: would-be moves clamped back to the edge's prior
  /// partition because the migration budget was spent.
  uint64_t budget_denied_moves = 0;
};

/// Base class for streaming edge partitioners.
///
/// ## Lifecycle
///
/// Mirrors StreamingPartitioner: a single pass is `Run` (or per-arrival
/// `OnArrival` / per-edge `OnEdge` calls) over a back-edge ArrivalSource;
/// after the pass, `replicas()` / `edge_counts()` / `placements()` describe
/// the result. `BeginPass(&prior)` rewinds to a fresh placement with the
/// previous pass's per-edge placement log installed as the scoring prior —
/// partial degrees are *retained* (the graph is known after pass one, so
/// later passes score with final degrees) — optionally bounded via
/// `SetMigrationBudget`. `Reset()` discards everything including degrees.
class EdgePartitioner {
 public:
  explicit EdgePartitioner(const EdgePartitionerOptions& options);
  virtual ~EdgePartitioner() = default;

  EdgePartitioner(const EdgePartitioner&) = delete;
  EdgePartitioner& operator=(const EdgePartitioner&) = delete;

  /// Drains `source` (from its current position) through OnArrival. The
  /// source must yield *back-edge* views — a full-neighbourhood replay
  /// would place every edge twice.
  void Run(ArrivalSource& source);

  /// Consumes one arrival: records the vertex's label for the heat hook and
  /// places each carried back edge via OnEdge.
  void OnArrival(const ArrivalView& view);

  /// Places one edge, in stream order; `u` is the later endpoint (the
  /// arriving vertex), `v` an earlier arrival. Updates both partial
  /// degrees *before* scoring (the HDRF/DBH convention), applies the
  /// replica-budget and edge-budget rules, and returns the chosen
  /// partition.
  uint32_t OnEdge(VertexId u, VertexId v);

  /// OnEdge with an explicit stream position: `index` is the edge's global
  /// stream index, used to look up its prior-pass placement. The sharded
  /// restream replays each shard's edges through this (a shard sees a
  /// subsequence of the stream, so its local call order is not the global
  /// index). Does not advance the internal stream position — OnEdge and
  /// OnEdgeAt must not be mixed within one pass.
  uint32_t OnEdgeAt(VertexId u, VertexId v, uint64_t index);

  /// Partitioner name for result tables ("hdrf", "dbh").
  virtual std::string Name() const = 0;

  /// Restreaming hook: discards the placement state (replicas, edge
  /// counts, placement log, stats) and installs `prior` — the previous
  /// pass's placement log, indexed by stream edge order — as the scoring
  /// prior. Partial degrees and labels are retained. Until the budget is
  /// spent, an edge may land anywhere; after it, placements clamp to the
  /// prior. Pass nullptr to reset to single-pass behaviour. `prior` must
  /// outlive the pass and must not alias this partitioner's own log (copy
  /// it first).
  void BeginPass(const std::vector<uint32_t>* prior);

  /// Rewinds to the fresh state: BeginPass(nullptr) plus degree and label
  /// tables cleared.
  void Reset();

  /// `max_moves` value meaning "no migration budget" (the default).
  static constexpr uint64_t kUnlimitedMigrationBudget = ~uint64_t{0};

  /// Bounded-migration restream: caps the number of placements this pass
  /// that may differ from the prior's. Once spent, every further placement
  /// is clamped back to the edge's prior partition (and scoring is
  /// skipped). Reset to unlimited by BeginPass; call after BeginPass,
  /// before streaming. No effect without a prior.
  void SetMigrationBudget(uint64_t max_moves);

  /// Fresh partitioner of the same algorithm and options, with this
  /// partitioner's degree, label and heat tables copied (placement state
  /// empty, as after BeginPass). The sharded restream hands one clone per
  /// shard the pass-start tables so every shard scores with the same
  /// effective degrees the serial pass would; labels never change across
  /// passes, so the copies stay exact. Degrees DO grow every pass (OnEdge
  /// re-increments them), so a clone kept across passes must be re-armed
  /// with RefreshFromParent before each one.
  std::unique_ptr<EdgePartitioner> CloneForShard() const;

  /// Re-arms a persistent shard clone for the next pass: re-copies the
  /// parent's pass-start degree/label/heat tables. The clone keeps its
  /// replica-map allocation — the following BeginPass empties it in place —
  /// so a reused clone streams every later pass without rebuilding its
  /// hash map from scratch.
  void RefreshFromParent(const EdgePartitioner& parent);

  /// Installs per-partition edge-capacity slices for a shard pass,
  /// overriding the scalar budget (`caps.size()` must be k; a 0 entry
  /// leaves that partition unconstrained). The shard plan splits the
  /// global capacity so per-shard bounds sum exactly to it. Cleared by
  /// BeginPass/Reset; call after BeginPass, before streaming.
  void SetShardEdgeCapacities(std::vector<uint64_t> caps);

  /// Adopts a sharded pass's merged result as this partitioner's own:
  /// replays `placements[i]` for `edges[i]` (global stream order),
  /// rebuilding replicas — primary order matches the serial pass, since
  /// replay order does — edge counts, the placement log and both partial
  /// degrees (one increment per endpoint per edge, exactly what a serial
  /// pass would have added), then installs `folded_stats` with
  /// edges_assigned recomputed. Leaves the partitioner as if it had run
  /// the pass itself: prior cleared, budget unlimited, shard capacity
  /// slices dropped, load bounds rebuilt.
  ///
  /// With a multi-thread `pool`, the degree/replica replay runs
  /// ownership-parallel (each worker owns disjoint vertex blocks, visiting
  /// them in stream order) — bit-identical to the serial replay. When
  /// `parallel_seconds` is non-null it accumulates the replay's off-thread
  /// critical path (the slowest worker's CPU time); the calling thread's
  /// own CPU is left for the caller to observe.
  void AdoptMergedPass(const std::vector<Edge>& edges,
                       std::vector<uint32_t> placements,
                       const EdgePartitionerStats& folded_stats,
                       ThreadPool* pool = nullptr,
                       double* parallel_seconds = nullptr);

  /// Lightweight adopt for an *intermediate* sharded pass: installs the
  /// merged placement log, the per-partition counts folded from the shard
  /// clones, the folded stats and one stream's worth of degree growth —
  /// everything the next pass's clones and row metrics need — WITHOUT
  /// rebuilding the replica lists. The replica set is left stale (the
  /// previous full pass's), so replication metrics for the pass must come
  /// from the shard-clone mask union, and the FINAL pass of a schedule
  /// must use the full AdoptMergedPass so the partitioner ends
  /// bit-identical to the serial one.
  void AdoptMergedPassLight(std::vector<uint32_t> placements,
                            const std::vector<uint64_t>& edge_counts,
                            const EdgePartitionerStats& folded_stats,
                            const std::vector<uint32_t>& stream_degree,
                            uint64_t num_edges);

  /// The scalar per-partition edge budget (0 = unconstrained); shard
  /// capacity slices are carved from this.
  uint64_t edge_capacity() const { return edge_capacity_; }

  /// Vertex→partition-set replica state of the current pass.
  const ReplicaSet& replicas() const { return replicas_; }

  /// Edges per partition (size k).
  const std::vector<uint64_t>& edge_counts() const { return edge_counts_; }

  /// Per-edge placements in stream order; empty when
  /// `options().record_placements` is false.
  const std::vector<uint32_t>& placements() const { return placements_; }

  /// Partial degree of `v` as seen so far (0 for unseen ids).
  uint32_t PartialDegree(VertexId v) const {
    return v < degree_.size() ? degree_[v] : 0;
  }

  const EdgePartitionerOptions& options() const { return options_; }
  const EdgePartitionerStats& stats() const { return stats_; }

  /// True while a restream pass (BeginPass with a non-null prior) is
  /// active.
  bool HasPrior() const { return prior_ != nullptr; }

 protected:
  /// Placement rule of the concrete algorithm. Called with both partial
  /// degrees already incremented for this edge; must return either an
  /// Eligible() partition or FallbackPartition(u, v).
  virtual uint32_t PickPartition(VertexId u, VertexId v) = 0;

  /// True iff `p` may take edge (u, v): below the per-partition edge
  /// budget, and within both endpoints' replica budgets (a partition
  /// already holding the endpoint never spends budget).
  bool Eligible(VertexId u, VertexId v, uint32_t p) const;

  /// The shared never-drop re-route, in order of preference: least-loaded
  /// partition the replica budgets allow (counts an overflow fallback when
  /// the scored pick was budget-blocked), else — both endpoints capped
  /// with disjoint sets — least-loaded partition overall (counts a cap
  /// relaxation, plus an overflow fallback if it is also past the edge
  /// budget). Ties prefer the lower index.
  uint32_t FallbackPartition(VertexId u, VertexId v);

  /// Degree scaled by the workload heat hook: degree * heat_scale_[v],
  /// where the scale (1 + heat_weight * heat(v, label)) is cached when the
  /// vertex first appears and refreshed when its label arrives — the hook
  /// is deterministic per (vertex, label), so the cache is exact and the
  /// hot path never re-invokes it. Plain degree when no hook is installed.
  double EffectiveDegree(VertexId v) const {
    const double degree = static_cast<double>(PartialDegree(v));
    if (!has_heat_) return degree;
    return degree * (v < heat_scale_.size() ? heat_scale_[v] : 1.0);
  }

  /// Replica-budget test for one endpoint: true iff `p` already holds `x`
  /// or `x` has budget for a new partition. Mask-only — no hashing.
  bool WithinReplicaBudget(VertexId x, uint32_t p) const {
    return replicas_.Has(x, p) || replicas_.MaskCountOf(x) < replica_cap_;
  }

  /// Edge budget of partition `p`: the shard capacity slice when one is
  /// installed, else the scalar budget. 0 = unconstrained.
  uint64_t CapOf(uint32_t p) const {
    return shard_edge_capacity_.empty() ? edge_capacity_
                                        : shard_edge_capacity_[p];
  }

  /// True iff `p` is past its edge budget. Equivalent to testing the
  /// full-partition bit word (the bits are maintained by
  /// NoteEdgeCountIncrement for the kernels that consume whole words).
  bool AtEdgeCapacity(uint32_t p) const {
    const uint64_t cap = CapOf(p);
    return cap != 0 && edge_counts_[p] >= cap;
  }

  /// Bookkeeping for one `++edge_counts_[p]`: advances the running max,
  /// maintains the lazily-refreshed min tracker (counts only increment
  /// within a pass, so the min can only rise — when the last partition at
  /// the minimum leaves it, the tracker recounts at min+1, which is always
  /// populated; the recount runs at most min(m, m/k · k) = m times total,
  /// so the amortized cost is O(1) per edge), and sets the partition's
  /// full bit when the increment reaches its budget.
  void NoteEdgeCountIncrement(uint32_t p);

  /// O(k) recompute of max/min load, the min population count and the
  /// full-partition bit words from `edge_counts_` and the active budgets.
  /// Called whenever counts change non-incrementally (BeginPass,
  /// SetShardEdgeCapacities, AdoptMergedPass).
  void RebuildLoadBounds();

  EdgePartitionerOptions options_;
  EdgePartitionerStats stats_;
  ReplicaSet replicas_;
  std::vector<uint64_t> edge_counts_;
  std::vector<uint32_t> placements_;
  std::vector<uint32_t> degree_;
  std::vector<Label> label_of_;
  uint64_t edge_capacity_ = 0;
  /// Replica budget resolved against k (options value 0 → k).
  uint32_t replica_cap_ = 0;
  /// True iff the heat hook is installed with nonzero weight.
  bool has_heat_ = false;
  /// Cached per-vertex heat scale 1 + heat_weight * heat(v, label); only
  /// populated when `has_heat_`.
  std::vector<double> heat_scale_;
  /// Incrementally maintained load bounds over `edge_counts_` (see
  /// NoteEdgeCountIncrement): running max, current min, and how many
  /// partitions sit at the min.
  uint64_t max_load_ = 0;
  uint64_t min_load_ = 0;
  uint32_t num_at_min_ = 0;
  /// Bit p of word w set iff partition 64w + p is at/past its edge budget.
  /// ceil(k / 64) words; kernels AND the complement into eligibility.
  std::vector<uint64_t> full_words_;
  /// Per-partition capacity slices for a shard pass (empty = use the
  /// scalar `edge_capacity_`).
  std::vector<uint64_t> shard_edge_capacity_;

 private:
  void GrowTables(VertexId v);

  /// Recomputes heat_scale_[v] from the current label (no-op without the
  /// hook).
  void RefreshHeatScale(VertexId v);

  const std::vector<uint32_t>* prior_ = nullptr;
  uint64_t migration_budget_ = kUnlimitedMigrationBudget;
  /// Stream position of the next edge this pass (index into the prior).
  uint64_t edge_index_ = 0;
};

/// Every name `MakeEdgePartitioner` accepts, in the canonical bench-table
/// order (hdrf, dbh).
const std::vector<std::string>& KnownEdgePartitioners();

/// True iff `name` is one of `KnownEdgePartitioners()`.
bool IsKnownEdgePartitioner(const std::string& name);

/// Constructs the named edge partitioner; InvalidArgument on an unknown
/// name or options that fail ValidateEdgePartitionerOptions.
Result<std::unique_ptr<EdgePartitioner>> MakeEdgePartitioner(
    const std::string& name, const EdgePartitionerOptions& options);

}  // namespace loom

#endif  // LOOM_EDGE_PARTITION_EDGE_PARTITIONER_H_
