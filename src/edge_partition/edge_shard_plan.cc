#include "edge_partition/edge_shard_plan.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace loom {

EdgeShardPlan BuildEdgeShardPlan(const std::vector<Edge>& stream,
                                 const std::vector<uint32_t>& prior,
                                 uint32_t k, uint32_t num_shards,
                                 uint64_t global_moves, uint64_t capacity,
                                 ThreadPool* pool,
                                 double* critical_seconds_out) {
  ThreadCpuTimer self_cpu;
  double parallel_seconds = 0.0;
  num_shards = std::max<uint32_t>(1, num_shards);

  // Global prior edge count per partition: both the budget weight and the
  // capacity-slice "own" component.
  std::vector<uint64_t> prior_counts(k, 0);
  uint64_t total = 0;
  for (size_t i = 0; i < stream.size() && i < prior.size(); ++i) {
    if (prior[i] < k) {
      ++prior_counts[prior[i]];
      ++total;
    }
  }

  EdgeShardPlan plan;
  plan.shards.resize(num_shards);

  // Shard of one edge — a pure function of (index, prior), so the parallel
  // build below (one task per shard, each collecting only its own edges)
  // is bit-identical to the serial one.
  const auto shard_of = [&](size_t i) {
    if (i < prior.size() && prior[i] < k) {
      return ShardOfEdgePartition(prior[i], num_shards);
    }
    return static_cast<uint32_t>(i % num_shards);
  };
  const auto collect_shard = [&](uint32_t s) {
    EdgeRestreamShard& shard = plan.shards[s];
    shard.edges.reserve(stream.size() / num_shards + 1);
    shard.indices.reserve(stream.size() / num_shards + 1);
    for (size_t i = 0; i < stream.size(); ++i) {
      if (shard_of(i) != s) continue;
      shard.edges.push_back(stream[i]);
      shard.indices.push_back(static_cast<uint64_t>(i));
    }
  };
  if (pool == nullptr || num_shards == 1) {
    for (uint32_t s = 0; s < num_shards; ++s) collect_shard(s);
  } else {
    // One concurrent collection task per shard; the stage's critical path
    // is the slowest task's thread-CPU time (scheduling-independent).
    std::vector<double> task_cpu(num_shards, 0.0);
    ParallelFor(*pool, num_shards, [&](size_t s) {
      ThreadCpuTimer cpu;
      collect_shard(static_cast<uint32_t>(s));
      task_cpu[s] = cpu.ElapsedSeconds();
    });
    parallel_seconds += *std::max_element(task_cpu.begin(), task_cpu.end());
  }

  for (uint32_t s = 0; s < num_shards; ++s) {
    EdgeRestreamShard& shard = plan.shards[s];

    for (uint32_t p = 0; p < k; ++p) {
      if (ShardOfEdgePartition(p, num_shards) == s) {
        shard.prior_edges += prior_counts[p];
      }
    }

    // Budget slice: floor-proportional to the shard's prior mass, so the
    // slices sum to at most the global allowance (one shard gets it all).
    if (global_moves == EdgePartitioner::kUnlimitedMigrationBudget ||
        total == 0) {
      shard.migration_budget = global_moves;
    } else {
      shard.migration_budget = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(global_moves) *
           shard.prior_edges) /
          total);
    }

    // Capacity slice: the owned partitions' prior edge count (capped at C)
    // plus an even share of each partition's slack beyond its prior count
    // (remainder to low shards). The slices sum to exactly C per
    // partition; see the header for the overfull-prior argument.
    if (capacity == 0) continue;  // unconstrained pass: leave empty
    shard.capacities.assign(k, 0);
    for (uint32_t p = 0; p < k; ++p) {
      const uint64_t prior_p = prior_counts[p];
      const uint64_t extra = capacity > prior_p ? capacity - prior_p : 0;
      const uint64_t share =
          extra / num_shards + (s < extra % num_shards ? 1 : 0);
      const uint64_t own = ShardOfEdgePartition(p, num_shards) == s
                               ? std::min(prior_p, capacity)
                               : 0;
      shard.capacities[p] = own + share;
    }
  }
  if (critical_seconds_out != nullptr) {
    *critical_seconds_out += self_cpu.ElapsedSeconds() + parallel_seconds;
  }
  return plan;
}

}  // namespace loom
