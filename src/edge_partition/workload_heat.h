#ifndef LOOM_EDGE_PARTITION_WORKLOAD_HEAT_H_
#define LOOM_EDGE_PARTITION_WORKLOAD_HEAT_H_

/// \file
/// Workload-aware heat for edge partitioning: distils the TPSTry++'s motif
/// supports into a per-label heat table in [0, 1] and adapts it to the
/// VertexHeatFn hook. A label is hot in proportion to the total support of
/// the workload motifs it appears in, so vertices that anchor frequently-
/// queried motifs get an inflated effective degree and replicate first
/// (HDRF replicates them; DBH hashes their edges through colder
/// neighbours) — replicas of exactly the vertices queries fan out of are
/// what makes replicated traversals local. Live serving can refresh the
/// table from WorkloadTracker::trie() between passes; the table is copied
/// into the hook, so the trie need not outlive it.

#include <vector>

#include "edge_partition/edge_partitioner.h"
#include "tpstry/tpstry_pp.h"

namespace loom {

/// Per-label heat from the trie's motif supports: heat[l] = (sum of
/// `support` over nodes whose motif contains label l, counted once per
/// node) normalised by the largest such sum, so the hottest label maps to
/// 1.0. Labels absent from every motif get 0. Empty when the trie carries
/// no support at all.
std::vector<double> LabelHeatFromTrie(const TpstryPP& trie);

/// Adapts a per-label heat table (copied) to the VertexHeatFn hook; labels
/// past the table report 0.
VertexHeatFn MakeLabelHeatFn(std::vector<double> heat);

}  // namespace loom

#endif  // LOOM_EDGE_PARTITION_WORKLOAD_HEAT_H_
