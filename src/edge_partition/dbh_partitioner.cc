#include "edge_partition/dbh_partitioner.h"

#include "common/hash.h"

namespace loom {

uint32_t DbhPartitioner::PickPartition(VertexId u, VertexId v) {
  const double du = EffectiveDegree(u);
  const double dv = EffectiveDegree(v);
  // Hash the lower-degree endpoint; ties go to the smaller id so repeated
  // runs (and the differential oracle) agree bit-for-bit.
  VertexId target = v;
  if (du < dv || (du == dv && u < v)) target = u;
  const uint32_t p = static_cast<uint32_t>(
      MixBits(static_cast<uint64_t>(target) + options_.seed) % options_.k);
  if (Eligible(u, v, p)) return p;
  return FallbackPartition(u, v);
}

}  // namespace loom
