#include "edge_partition/hdrf_partitioner.h"

#include <algorithm>

namespace loom {

namespace {

/// Index of the lowest set bit; `bits` must be nonzero.
inline uint32_t LowestBit(uint64_t bits) {
  return static_cast<uint32_t>(__builtin_ctzll(bits));
}

}  // namespace

uint32_t HdrfPartitioner::PickPartition(VertexId u, VertexId v) {
  if (force_scalar_kernel_) return PickPartitionScalar(u, v);

  const double du = EffectiveDegree(u);
  const double dv = EffectiveDegree(v);
  const double total = du + dv;
  const double theta_u = total > 0.0 ? du / total : 0.5;
  const double theta_v = 1.0 - theta_u;
  // g(x, p) for a partition holding x; the same expression (and rounding)
  // the scalar loop evaluates per candidate.
  const double g_u = 1.0 + (1.0 - theta_u);
  const double g_v = 1.0 + (1.0 - theta_v);

  const uint64_t max_size = max_load_;
  const double spread =
      1.0 + static_cast<double>(max_load_ - min_load_);
  const double lambda = options_.lambda;

  const uint32_t k = options_.k;
  const uint32_t num_words = (k + 63) / 64;
  // A capped endpoint (replica budget spent) only allows partitions that
  // already hold it — exactly its bitmask; a free endpoint allows all.
  const bool u_free = replicas_.MaskCountOf(u) < replica_cap_;
  const bool v_free = replicas_.MaskCountOf(v) < replica_cap_;

  uint32_t best_rep = k;
  double best_rep_score = 0.0;
  uint32_t best_bal = k;
  uint64_t best_bal_count = 0;

  for (uint32_t w = 0; w < num_words; ++w) {
    const uint32_t low = w << 6;
    const uint32_t bits_in_word = std::min(64u, k - low);
    const uint64_t kmask = bits_in_word == 64
                               ? ~uint64_t{0}
                               : (uint64_t{1} << bits_in_word) - 1;
    const uint64_t mu = replicas_.MaskWordOf(u, w);
    const uint64_t mv = replicas_.MaskWordOf(v, w);
    const uint64_t allowed_u = u_free ? ~uint64_t{0} : mu;
    const uint64_t allowed_v = v_free ? ~uint64_t{0} : mv;
    // Eligible(u, v, p) for 64 partitions at once: in range, below the
    // edge budget, within both replica budgets.
    const uint64_t eligible =
        kmask & ~full_words_[w] & allowed_u & allowed_v;
    if (eligible == 0) continue;

    // Replica-affinity candidates — the only partitions with C_REP > 0.
    // Scored with the scalar loop's exact FP op order, strict-> argmax
    // (ascending bit order keeps the lowest index on ties).
    uint64_t rep = (mu | mv) & eligible;
    while (rep != 0) {
      const uint32_t bit = LowestBit(rep);
      rep &= rep - 1;
      const uint32_t p = low + bit;
      double score = 0.0;
      if ((mu >> bit) & 1) score += g_u;
      if ((mv >> bit) & 1) score += g_v;
      score += lambda *
               (static_cast<double>(max_size - edge_counts_[p]) / spread);
      if (best_rep == k || score > best_rep_score) {
        best_rep = p;
        best_rep_score = score;
      }
    }

    // Balance-only candidates all score λ · (maxsize − size(p)) / spread.
    uint64_t bal = eligible & ~(mu | mv);
    if (lambda == 0.0) {
      // Every balance-only score is exactly 0.0; the scalar strict-> scan
      // keeps the first, i.e. the lowest index.
      if (bal != 0 && best_bal == k) {
        best_bal = low + LowestBit(bal);
        best_bal_count = edge_counts_[best_bal];
      }
    } else {
      // λ > 0: the FP argmax over λ · (maxsize − size(p)) / spread is the
      // integer argmin over size(p) (ties to the lowest index). Exact,
      // not approximate: distinct counts differ by ≥ 1, so the scores'
      // relative gap is ≥ 1 / (maxsize − minsize) ≥ 1/m — far above the
      // 2⁻⁵² ulp where correctly-rounded division or the λ multiply
      // could collapse them, for any m below ~4 · 10¹⁵ edges.
      while (bal != 0) {
        const uint32_t p = low + LowestBit(bal);
        bal &= bal - 1;
        const uint64_t count = edge_counts_[p];
        if (best_bal == k || count < best_bal_count) {
          best_bal = p;
          best_bal_count = count;
        }
      }
    }
  }

  if (best_rep == k && best_bal == k) return FallbackPartition(u, v);
  if (best_rep == k) return best_bal;
  if (best_bal == k) return best_rep;
  // Cross-group decision replays the scalar comparison on the two group
  // winners: strictly larger score wins, an exact tie keeps the lower
  // index (the scalar scan's first-max rule).
  const double best_bal_score =
      lambda * (static_cast<double>(max_size - best_bal_count) / spread);
  if (best_rep_score > best_bal_score) return best_rep;
  if (best_bal_score > best_rep_score) return best_bal;
  return std::min(best_rep, best_bal);
}

uint32_t HdrfPartitioner::PickPartitionScalar(VertexId u, VertexId v) {
  // θ and the effective degrees are per-edge constants, hoisted out of the
  // candidate loop (EffectiveDegree itself serves the heat hook from a
  // per-vertex cache, so the fallback path below reuses it too).
  const double du = EffectiveDegree(u);
  const double dv = EffectiveDegree(v);
  const double total = du + dv;
  const double theta_u = total > 0.0 ? du / total : 0.5;
  const double theta_v = 1.0 - theta_u;

  const uint64_t max_size =
      *std::max_element(edge_counts_.begin(), edge_counts_.end());
  const uint64_t min_size =
      *std::min_element(edge_counts_.begin(), edge_counts_.end());
  const double spread = 1.0 + static_cast<double>(max_size - min_size);

  uint32_t best = options_.k;
  double best_score = 0.0;
  for (uint32_t p = 0; p < options_.k; ++p) {
    if (!Eligible(u, v, p)) {
      // Skipped: past the edge budget or an endpoint's replica budget.
      // When every partition is skipped the fallback's strict cap-regime
      // argument (FallbackPartition preference 2: the cap only binds with
      // 2 · cap <= k) guarantees the edge still finds a home.
      continue;
    }
    double score = 0.0;
    if (replicas_.Has(u, p)) score += 1.0 + (1.0 - theta_u);
    if (replicas_.Has(v, p)) score += 1.0 + (1.0 - theta_v);
    score += options_.lambda *
             (static_cast<double>(max_size - edge_counts_[p]) / spread);
    if (best == options_.k || score > best_score) {
      best = p;
      best_score = score;
    }
  }
  if (best == options_.k) return FallbackPartition(u, v);
  return best;
}

}  // namespace loom
