#include "edge_partition/hdrf_partitioner.h"

#include <algorithm>

namespace loom {

uint32_t HdrfPartitioner::PickPartition(VertexId u, VertexId v) {
  const double du = EffectiveDegree(u);
  const double dv = EffectiveDegree(v);
  const double total = du + dv;
  const double theta_u = total > 0.0 ? du / total : 0.5;
  const double theta_v = 1.0 - theta_u;

  const uint64_t max_size =
      *std::max_element(edge_counts_.begin(), edge_counts_.end());
  const uint64_t min_size =
      *std::min_element(edge_counts_.begin(), edge_counts_.end());
  const double spread = 1.0 + static_cast<double>(max_size - min_size);

  uint32_t best = options_.k;
  double best_score = 0.0;
  for (uint32_t p = 0; p < options_.k; ++p) {
    if (!Eligible(u, v, p)) continue;
    double score = 0.0;
    if (replicas_.Has(u, p)) score += 1.0 + (1.0 - theta_u);
    if (replicas_.Has(v, p)) score += 1.0 + (1.0 - theta_v);
    score += options_.lambda *
             (static_cast<double>(max_size - edge_counts_[p]) / spread);
    if (best == options_.k || score > best_score) {
      best = p;
      best_score = score;
    }
  }
  if (best == options_.k) return FallbackPartition(u, v);
  return best;
}

}  // namespace loom
