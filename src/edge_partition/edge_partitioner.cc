#include "edge_partition/edge_partitioner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"

#include "edge_partition/dbh_partitioner.h"
#include "edge_partition/hdrf_partitioner.h"

namespace loom {

Status ValidateEdgePartitionerOptions(const EdgePartitionerOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("EdgePartitionerOptions.k must be >= 1");
  }
  if (std::isnan(options.lambda) || options.lambda < 0.0) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.lambda must be >= 0");
  }
  if (std::isnan(options.balance_slack) || options.balance_slack < 1.0) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.balance_slack must be >= 1.0");
  }
  if (std::isnan(options.heat_weight) || options.heat_weight < 0.0) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.heat_weight must be >= 0");
  }
  if (options.max_partitions_per_vertex == 1 && options.k > 1) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.max_partitions_per_vertex of 1 pins every "
        "vertex to one partition; use >= 2 (or 0 = unbounded)");
  }
  return Status::OK();
}

EdgePartitionerOptions SanitizeEdgePartitionerOptions(
    EdgePartitionerOptions options) {
  if (options.k == 0) options.k = 1;
  if (std::isnan(options.lambda) || options.lambda < 0.0) {
    options.lambda = 0.0;
  }
  if (std::isnan(options.balance_slack) || options.balance_slack < 1.0) {
    options.balance_slack = 1.0;
  }
  if (std::isnan(options.heat_weight) || options.heat_weight < 0.0) {
    options.heat_weight = 0.0;
  }
  if (options.max_partitions_per_vertex > options.k) {
    options.max_partitions_per_vertex = options.k;
  }
  if (options.max_partitions_per_vertex == 1 && options.k > 1) {
    options.max_partitions_per_vertex = 2;
  }
  return options;
}

uint64_t ComputeEdgeCapacity(uint32_t k, uint64_t num_edges, double slack) {
  if (num_edges == 0) return 0;
  if (k == 0) k = 1;
  const double per_part =
      slack * static_cast<double>(num_edges) / static_cast<double>(k);
  const uint64_t capacity = static_cast<uint64_t>(std::ceil(per_part));
  return capacity == 0 ? 1 : capacity;
}

EdgePartitioner::EdgePartitioner(const EdgePartitionerOptions& options)
    : options_(SanitizeEdgePartitionerOptions(options)),
      edge_counts_(options_.k, 0),
      edge_capacity_(ComputeEdgeCapacity(options_.k, options_.num_edges_hint,
                                         options_.balance_slack)),
      replica_cap_(options_.max_partitions_per_vertex == 0
                       ? options_.k
                       : options_.max_partitions_per_vertex),
      has_heat_(static_cast<bool>(options_.heat) &&
                options_.heat_weight != 0.0) {
  if (options_.num_vertices_hint > 0) {
    degree_.reserve(options_.num_vertices_hint);
    label_of_.reserve(options_.num_vertices_hint);
    if (has_heat_) heat_scale_.reserve(options_.num_vertices_hint);
  }
  RebuildLoadBounds();
}

void EdgePartitioner::Run(ArrivalSource& source) {
  ArrivalView view;
  while (source.Next(&view)) OnArrival(view);
}

void EdgePartitioner::OnArrival(const ArrivalView& view) {
  if (view.vertex == kInvalidVertex) return;
  GrowTables(view.vertex);
  label_of_[view.vertex] = view.label;
  RefreshHeatScale(view.vertex);
  for (const VertexId neighbor : view.back_edges) {
    OnEdge(view.vertex, neighbor);
  }
}

uint32_t EdgePartitioner::OnEdge(VertexId u, VertexId v) {
  return OnEdgeAt(u, v, edge_index_++);
}

uint32_t EdgePartitioner::OnEdgeAt(VertexId u, VertexId v, uint64_t index) {
  GrowTables(std::max(u, v));
  // The HDRF/DBH convention: the edge counts towards both partial degrees
  // before the placement rule sees them, so the very first edge already has
  // degree-1 endpoints and θ is well defined.
  ++degree_[u];
  ++degree_[v];

  uint32_t pick = 0;
  if (prior_ != nullptr && index < prior_->size() &&
      stats_.prior_moves >= migration_budget_) {
    // Budget spent: the clamp forces the prior partition anyway, so skip
    // the scoring round entirely (mirrors the vertex restreamer's
    // early-stop). The prior respected the edge budget when it was laid
    // down, so re-applying it cannot worsen the bound.
    pick = (*prior_)[index];
    ++stats_.budget_denied_moves;
  } else {
    pick = PickPartition(u, v);
    if (prior_ != nullptr && index < prior_->size()) {
      const uint32_t home = (*prior_)[index];
      if (pick != home) {
        if (stats_.prior_moves >= migration_budget_) {
          pick = home;
          ++stats_.budget_denied_moves;
        } else {
          ++stats_.prior_moves;
        }
      }
    }
  }

  if (pick >= options_.k) {
    // A placement rule returning an out-of-range partition is a logic
    // error; re-route instead of corrupting the counts, and surface it.
    ++stats_.assign_errors;
    pick = static_cast<uint32_t>(
        std::min_element(edge_counts_.begin(), edge_counts_.end()) -
        edge_counts_.begin());
  }

  replicas_.Add(u, pick);
  replicas_.Add(v, pick);
  ++edge_counts_[pick];
  NoteEdgeCountIncrement(pick);
  ++stats_.edges_assigned;
  if (options_.record_placements) {
    placements_.push_back(pick);
  }
  return pick;
}

void EdgePartitioner::BeginPass(const std::vector<uint32_t>* prior) {
  // Rebuild in place: a restream pass re-streams the identical arrival
  // sequence, so every retained map node is re-filled and no allocation or
  // hash insert happens after the first pass. Reset, not BeginPass, is the
  // operation that forgets the vertex population.
  replicas_.BeginRebuild();
  std::fill(edge_counts_.begin(), edge_counts_.end(), 0);
  placements_.clear();
  stats_ = EdgePartitionerStats();
  prior_ = prior;
  migration_budget_ = kUnlimitedMigrationBudget;
  edge_index_ = 0;
  shard_edge_capacity_.clear();
  RebuildLoadBounds();
}

void EdgePartitioner::Reset() {
  // Unlike BeginPass, drop the replica map's retained nodes too: the next
  // stream may cover a different vertex population.
  replicas_ = ReplicaSet();
  BeginPass(nullptr);
  degree_.clear();
  label_of_.clear();
  heat_scale_.clear();
}

void EdgePartitioner::SetMigrationBudget(uint64_t max_moves) {
  migration_budget_ = max_moves;
}

void EdgePartitioner::SetShardEdgeCapacities(std::vector<uint64_t> caps) {
  if (caps.size() != options_.k) return;
  shard_edge_capacity_ = std::move(caps);
  RebuildLoadBounds();
}

void EdgePartitioner::NoteEdgeCountIncrement(uint32_t p) {
  const uint64_t count = edge_counts_[p];
  if (count > max_load_) max_load_ = count;
  if (count - 1 == min_load_ && --num_at_min_ == 0) {
    // The partition leaving the minimum sits at exactly min + 1, and every
    // other count already exceeded the old min, so min + 1 is the new
    // minimum and the recount always finds it populated. The min rises at
    // most once per placed edge, so the O(k) recount is amortized O(1).
    ++min_load_;
    for (const uint64_t c : edge_counts_) {
      num_at_min_ += static_cast<uint32_t>(c == min_load_);
    }
  }
  const uint64_t cap = CapOf(p);
  if (cap != 0 && count >= cap) {
    full_words_[p >> 6] |= uint64_t{1} << (p & 63);
  }
}

void EdgePartitioner::RebuildLoadBounds() {
  max_load_ = 0;
  min_load_ = ~uint64_t{0};
  for (const uint64_t c : edge_counts_) {
    if (c > max_load_) max_load_ = c;
    if (c < min_load_) min_load_ = c;
  }
  num_at_min_ = 0;
  for (const uint64_t c : edge_counts_) {
    num_at_min_ += static_cast<uint32_t>(c == min_load_);
  }
  full_words_.assign((options_.k + 63) / 64, 0);
  for (uint32_t p = 0; p < options_.k; ++p) {
    const uint64_t cap = CapOf(p);
    if (cap != 0 && edge_counts_[p] >= cap) {
      full_words_[p >> 6] |= uint64_t{1} << (p & 63);
    }
  }
}

std::unique_ptr<EdgePartitioner> EdgePartitioner::CloneForShard() const {
  Result<std::unique_ptr<EdgePartitioner>> clone =
      MakeEdgePartitioner(Name(), options_);
  if (!clone.ok()) return nullptr;
  std::unique_ptr<EdgePartitioner> shard = std::move(clone).value();
  shard->degree_ = degree_;
  shard->label_of_ = label_of_;
  shard->heat_scale_ = heat_scale_;
  // The clone's replica map starts empty and refills with most of the
  // parent's vertex population during its shard pass — reserve buckets up
  // front so that build never rehashes mid-pass.
  shard->replicas_.ReserveVertices(degree_.size());
  return shard;
}

void EdgePartitioner::RefreshFromParent(const EdgePartitioner& parent) {
  degree_ = parent.degree_;
  label_of_ = parent.label_of_;
  heat_scale_ = parent.heat_scale_;
}

void EdgePartitioner::AdoptMergedPass(
    const std::vector<Edge>& edges, std::vector<uint32_t> placements,
    const EdgePartitionerStats& folded_stats, ThreadPool* pool,
    double* parallel_seconds) {
  // Rebuild in place: the replay re-adds (exactly) the stream's vertex
  // population, so retaining the mask table, map nodes and list capacities
  // turns the rebuild allocation-free after the first sharded pass.
  replicas_.BeginRebuild();
  std::fill(edge_counts_.begin(), edge_counts_.end(), 0);
  placements_.clear();
  stats_ = folded_stats;
  prior_ = nullptr;
  migration_budget_ = kUnlimitedMigrationBudget;
  shard_edge_capacity_.clear();
  const size_t n = std::min(edges.size(), placements.size());

  // Serial prefix scan: fix out-of-range picks against the running counts
  // (the fixup pick depends on the counts of edges [0, i), so it cannot be
  // reordered), rebuild the per-partition counts, and find the vertex
  // range so the tables grow once.
  VertexId max_vertex = 0;
  for (size_t i = 0; i < n; ++i) {
    const Edge e = edges[i];
    max_vertex = std::max({max_vertex, e.u, e.v});
    uint32_t& pick = placements[i];
    if (pick >= options_.k) {
      ++stats_.assign_errors;
      pick = static_cast<uint32_t>(
          std::min_element(edge_counts_.begin(), edge_counts_.end()) -
          edge_counts_.begin());
    }
    ++edge_counts_[pick];
  }
  if (n > 0) GrowTables(max_vertex);

  const size_t workers = pool != nullptr ? pool->NumThreads() : 1;
  if (workers > 1 && n > 0) {
    // Ownership-parallel replay: worker t owns 64-vertex blocks with
    // (v / 64) % workers == t, so every degree slot, mask word and replica
    // list is written by exactly one thread — and in stream order, so each
    // vertex's first-seen (primary) order is the serial one. Block-cyclic
    // beats plain modulo here: a whole block's degree and mask cache lines
    // stay with one thread, while hub-dense ID prefixes still spread
    // across workers. Reserve first so AddOwned never reallocates the
    // shared mask table.
    replicas_.Reserve(max_vertex, options_.k > 0 ? options_.k - 1 : 0);
    const auto owner_of = [workers](VertexId v) {
      return static_cast<size_t>(v >> 6) % workers;
    };
    std::vector<std::vector<std::pair<VertexId, uint32_t>>> missed(workers);
    std::vector<size_t> refilled(workers, 0);
    std::vector<size_t> added(workers, 0);
    std::vector<double> worker_cpu(workers, 0.0);
    ParallelFor(*pool, workers, [&](size_t t) {
      ThreadCpuTimer cpu;
      const auto add = [&](VertexId x, uint32_t pick) {
        ++degree_[x];
        switch (replicas_.AddOwned(x, pick)) {
          case ReplicaSet::OwnedAdd::kNoNode:
            missed[t].emplace_back(x, pick);
            break;
          case ReplicaSet::OwnedAdd::kFirstForVertex:
            ++refilled[t];
            ++added[t];
            break;
          case ReplicaSet::OwnedAdd::kAdded:
            ++added[t];
            break;
          case ReplicaSet::OwnedAdd::kPresent:
            break;
        }
      };
      for (size_t i = 0; i < n; ++i) {
        const Edge e = edges[i];
        const uint32_t pick = placements[i];
        if (owner_of(e.u) == t) add(e.u, pick);
        if (owner_of(e.v) == t) add(e.v, pick);
      }
      worker_cpu[t] = cpu.ElapsedSeconds();
    });
    // Vertices with no retained map node (new since the last rebuild) had
    // every add skipped, in stream order; replay them serially. Distinct
    // workers miss distinct vertices, so the worker order is free.
    size_t num_missed = 0;
    for (const auto& list : missed) {
      num_missed += list.size();
      for (const auto& [v, pick] : list) replicas_.Add(v, pick);
    }
    if (num_missed == 0) {
      // Every retained node was re-filled iff the first-touch tally says
      // so; the counted EndRebuild then skips the O(vertices) prune walk.
      size_t total_refilled = 0;
      size_t total_added = 0;
      for (size_t t = 0; t < workers; ++t) {
        total_refilled += refilled[t];
        total_added += added[t];
      }
      replicas_.EndRebuild(total_refilled, total_added);
    } else {
      replicas_.EndRebuild();
    }
    if (parallel_seconds != nullptr) {
      *parallel_seconds +=
          *std::max_element(worker_cpu.begin(), worker_cpu.end());
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const Edge e = edges[i];
      // One increment per endpoint per edge: exactly what a serial pass
      // would have added on top of the pass-start degrees the shard clones
      // scored with.
      ++degree_[e.u];
      ++degree_[e.v];
      // Replay order == stream order, so each vertex's primary (first Add)
      // matches the serial pass's.
      replicas_.Add(e.u, placements[i]);
      replicas_.Add(e.v, placements[i]);
    }
    replicas_.EndRebuild();
  }
  if (options_.record_placements) placements_ = std::move(placements);
  edge_index_ = edges.size();
  RebuildLoadBounds();
}

void EdgePartitioner::AdoptMergedPassLight(
    std::vector<uint32_t> placements, const std::vector<uint64_t>& edge_counts,
    const EdgePartitionerStats& folded_stats,
    const std::vector<uint32_t>& stream_degree, uint64_t num_edges) {
  if (!stream_degree.empty()) {
    GrowTables(static_cast<VertexId>(stream_degree.size() - 1));
    for (size_t v = 0; v < stream_degree.size(); ++v) {
      degree_[v] += stream_degree[v];
    }
  }
  if (edge_counts.size() == edge_counts_.size()) {
    edge_counts_ = edge_counts;
  }
  stats_ = folded_stats;
  prior_ = nullptr;
  migration_budget_ = kUnlimitedMigrationBudget;
  shard_edge_capacity_.clear();
  if (options_.record_placements) {
    placements_ = std::move(placements);
  } else {
    placements_.clear();
  }
  edge_index_ = num_edges;
  RebuildLoadBounds();
}

bool EdgePartitioner::Eligible(VertexId u, VertexId v, uint32_t p) const {
  return !AtEdgeCapacity(p) && WithinReplicaBudget(u, p) &&
         WithinReplicaBudget(v, p);
}

uint32_t EdgePartitioner::FallbackPartition(VertexId u, VertexId v) {
  // Preference 1: least-loaded partition both replica budgets allow, even
  // past the edge budget (stretching the balance bound beats spending
  // replica budget the scoring refused to spend).
  uint32_t best = options_.k;
  for (uint32_t p = 0; p < options_.k; ++p) {
    if (!WithinReplicaBudget(u, p) || !WithinReplicaBudget(v, p)) continue;
    if (best == options_.k || edge_counts_[p] < edge_counts_[best]) best = p;
  }
  if (best != options_.k) {
    ++stats_.overflow_fallbacks;
    return best;
  }
  // Preference 2: both endpoints capped with disjoint sets — the cap must
  // give way (the edge has to live somewhere). Least-loaded partition
  // already holding *either* endpoint, so exactly one endpoint gains a
  // replica past its budget (anywhere else would push both). Note the cap
  // can only bind this way when 2 * cap <= k: with cap > k/2 the two full
  // sets must intersect and preference 1 always finds a partition — the
  // regime the property tests pin.
  ++stats_.cap_relaxations;
  best = options_.k;
  for (const VertexId x : {u, v}) {
    const std::vector<uint32_t>* parts = replicas_.PartitionsOf(x);
    if (parts == nullptr) continue;
    for (const uint32_t p : *parts) {
      // Canonical least-loaded-then-lowest-index order, independent of the
      // replica lists' insertion order (the differential oracle re-derives
      // this from sorted sets).
      if (best == options_.k || edge_counts_[p] < edge_counts_[best] ||
          (edge_counts_[p] == edge_counts_[best] && p < best)) {
        best = p;
      }
    }
  }
  if (best == options_.k) {
    best = static_cast<uint32_t>(
        std::min_element(edge_counts_.begin(), edge_counts_.end()) -
        edge_counts_.begin());
  }
  if (AtEdgeCapacity(best)) ++stats_.overflow_fallbacks;
  return best;
}

void EdgePartitioner::GrowTables(VertexId v) {
  if (v == kInvalidVertex) return;
  if (v >= degree_.size()) {
    const size_t old_size = degree_.size();
    degree_.resize(v + 1, 0);
    label_of_.resize(v + 1, 0);
    if (has_heat_) {
      heat_scale_.resize(v + 1, 1.0);
      // Seed the cache with the default label; OnArrival refreshes when
      // the real label lands (each vertex arrives once, so the refresh is
      // final). The hook is called once per vertex either way.
      for (size_t x = old_size; x <= v; ++x) {
        RefreshHeatScale(static_cast<VertexId>(x));
      }
    }
  }
}

void EdgePartitioner::RefreshHeatScale(VertexId v) {
  if (!has_heat_ || v >= heat_scale_.size()) return;
  heat_scale_[v] = 1.0 + options_.heat_weight * options_.heat(v, label_of_[v]);
}

const std::vector<std::string>& KnownEdgePartitioners() {
  static const std::vector<std::string> kNames = {"hdrf", "dbh"};
  return kNames;
}

bool IsKnownEdgePartitioner(const std::string& name) {
  const std::vector<std::string>& names = KnownEdgePartitioners();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Result<std::unique_ptr<EdgePartitioner>> MakeEdgePartitioner(
    const std::string& name, const EdgePartitionerOptions& options) {
  const Status valid = ValidateEdgePartitionerOptions(options);
  if (!valid.ok()) return valid;
  if (name == "hdrf") {
    return std::unique_ptr<EdgePartitioner>(
        std::make_unique<HdrfPartitioner>(options));
  }
  if (name == "dbh") {
    return std::unique_ptr<EdgePartitioner>(
        std::make_unique<DbhPartitioner>(options));
  }
  return Status::InvalidArgument("unknown edge partitioner '" + name + "'");
}

}  // namespace loom
