#include "edge_partition/edge_partitioner.h"

#include <algorithm>
#include <cmath>

#include "edge_partition/dbh_partitioner.h"
#include "edge_partition/hdrf_partitioner.h"

namespace loom {

Status ValidateEdgePartitionerOptions(const EdgePartitionerOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("EdgePartitionerOptions.k must be >= 1");
  }
  if (std::isnan(options.lambda) || options.lambda < 0.0) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.lambda must be >= 0");
  }
  if (std::isnan(options.balance_slack) || options.balance_slack < 1.0) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.balance_slack must be >= 1.0");
  }
  if (std::isnan(options.heat_weight) || options.heat_weight < 0.0) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.heat_weight must be >= 0");
  }
  if (options.max_partitions_per_vertex == 1 && options.k > 1) {
    return Status::InvalidArgument(
        "EdgePartitionerOptions.max_partitions_per_vertex of 1 pins every "
        "vertex to one partition; use >= 2 (or 0 = unbounded)");
  }
  return Status::OK();
}

EdgePartitionerOptions SanitizeEdgePartitionerOptions(
    EdgePartitionerOptions options) {
  if (options.k == 0) options.k = 1;
  if (std::isnan(options.lambda) || options.lambda < 0.0) {
    options.lambda = 0.0;
  }
  if (std::isnan(options.balance_slack) || options.balance_slack < 1.0) {
    options.balance_slack = 1.0;
  }
  if (std::isnan(options.heat_weight) || options.heat_weight < 0.0) {
    options.heat_weight = 0.0;
  }
  if (options.max_partitions_per_vertex > options.k) {
    options.max_partitions_per_vertex = options.k;
  }
  if (options.max_partitions_per_vertex == 1 && options.k > 1) {
    options.max_partitions_per_vertex = 2;
  }
  return options;
}

uint64_t ComputeEdgeCapacity(uint32_t k, uint64_t num_edges, double slack) {
  if (num_edges == 0) return 0;
  if (k == 0) k = 1;
  const double per_part =
      slack * static_cast<double>(num_edges) / static_cast<double>(k);
  const uint64_t capacity = static_cast<uint64_t>(std::ceil(per_part));
  return capacity == 0 ? 1 : capacity;
}

EdgePartitioner::EdgePartitioner(const EdgePartitionerOptions& options)
    : options_(SanitizeEdgePartitionerOptions(options)),
      edge_counts_(options_.k, 0),
      edge_capacity_(ComputeEdgeCapacity(options_.k, options_.num_edges_hint,
                                         options_.balance_slack)),
      replica_cap_(options_.max_partitions_per_vertex == 0
                       ? options_.k
                       : options_.max_partitions_per_vertex) {
  if (options_.num_vertices_hint > 0) {
    degree_.reserve(options_.num_vertices_hint);
    label_of_.reserve(options_.num_vertices_hint);
  }
}

void EdgePartitioner::Run(ArrivalSource& source) {
  ArrivalView view;
  while (source.Next(&view)) OnArrival(view);
}

void EdgePartitioner::OnArrival(const ArrivalView& view) {
  if (view.vertex == kInvalidVertex) return;
  GrowTables(view.vertex);
  label_of_[view.vertex] = view.label;
  for (const VertexId neighbor : view.back_edges) {
    OnEdge(view.vertex, neighbor);
  }
}

uint32_t EdgePartitioner::OnEdge(VertexId u, VertexId v) {
  GrowTables(std::max(u, v));
  // The HDRF/DBH convention: the edge counts towards both partial degrees
  // before the placement rule sees them, so the very first edge already has
  // degree-1 endpoints and θ is well defined.
  ++degree_[u];
  ++degree_[v];

  const uint64_t index = edge_index_++;
  uint32_t pick = 0;
  if (prior_ != nullptr && index < prior_->size() &&
      stats_.prior_moves >= migration_budget_) {
    // Budget spent: the clamp forces the prior partition anyway, so skip
    // the scoring round entirely (mirrors the vertex restreamer's
    // early-stop). The prior respected the edge budget when it was laid
    // down, so re-applying it cannot worsen the bound.
    pick = (*prior_)[index];
    ++stats_.budget_denied_moves;
  } else {
    pick = PickPartition(u, v);
    if (prior_ != nullptr && index < prior_->size()) {
      const uint32_t home = (*prior_)[index];
      if (pick != home) {
        if (stats_.prior_moves >= migration_budget_) {
          pick = home;
          ++stats_.budget_denied_moves;
        } else {
          ++stats_.prior_moves;
        }
      }
    }
  }

  if (pick >= options_.k) {
    // A placement rule returning an out-of-range partition is a logic
    // error; re-route instead of corrupting the counts, and surface it.
    ++stats_.assign_errors;
    pick = static_cast<uint32_t>(
        std::min_element(edge_counts_.begin(), edge_counts_.end()) -
        edge_counts_.begin());
  }

  replicas_.Add(u, pick);
  replicas_.Add(v, pick);
  ++edge_counts_[pick];
  ++stats_.edges_assigned;
  if (options_.record_placements) {
    placements_.push_back(pick);
  }
  return pick;
}

void EdgePartitioner::BeginPass(const std::vector<uint32_t>* prior) {
  replicas_ = ReplicaSet();
  std::fill(edge_counts_.begin(), edge_counts_.end(), 0);
  placements_.clear();
  stats_ = EdgePartitionerStats();
  prior_ = prior;
  migration_budget_ = kUnlimitedMigrationBudget;
  edge_index_ = 0;
}

void EdgePartitioner::Reset() {
  BeginPass(nullptr);
  degree_.clear();
  label_of_.clear();
}

void EdgePartitioner::SetMigrationBudget(uint64_t max_moves) {
  migration_budget_ = max_moves;
}

bool EdgePartitioner::WithinReplicaBudget(VertexId x, uint32_t p) const {
  if (replicas_.Has(x, p)) return true;
  const std::vector<uint32_t>* parts = replicas_.PartitionsOf(x);
  return parts == nullptr || parts->size() < replica_cap_;
}

bool EdgePartitioner::Eligible(VertexId u, VertexId v, uint32_t p) const {
  return !AtEdgeCapacity(p) && WithinReplicaBudget(u, p) &&
         WithinReplicaBudget(v, p);
}

uint32_t EdgePartitioner::FallbackPartition(VertexId u, VertexId v) {
  // Preference 1: least-loaded partition both replica budgets allow, even
  // past the edge budget (stretching the balance bound beats spending
  // replica budget the scoring refused to spend).
  uint32_t best = options_.k;
  for (uint32_t p = 0; p < options_.k; ++p) {
    if (!WithinReplicaBudget(u, p) || !WithinReplicaBudget(v, p)) continue;
    if (best == options_.k || edge_counts_[p] < edge_counts_[best]) best = p;
  }
  if (best != options_.k) {
    ++stats_.overflow_fallbacks;
    return best;
  }
  // Preference 2: both endpoints capped with disjoint sets — the cap must
  // give way (the edge has to live somewhere). Least-loaded partition
  // already holding *either* endpoint, so exactly one endpoint gains a
  // replica past its budget (anywhere else would push both). Note the cap
  // can only bind this way when 2 * cap <= k: with cap > k/2 the two full
  // sets must intersect and preference 1 always finds a partition — the
  // regime the property tests pin.
  ++stats_.cap_relaxations;
  best = options_.k;
  for (const VertexId x : {u, v}) {
    const std::vector<uint32_t>* parts = replicas_.PartitionsOf(x);
    if (parts == nullptr) continue;
    for (const uint32_t p : *parts) {
      // Canonical least-loaded-then-lowest-index order, independent of the
      // replica lists' insertion order (the differential oracle re-derives
      // this from sorted sets).
      if (best == options_.k || edge_counts_[p] < edge_counts_[best] ||
          (edge_counts_[p] == edge_counts_[best] && p < best)) {
        best = p;
      }
    }
  }
  if (best == options_.k) {
    best = static_cast<uint32_t>(
        std::min_element(edge_counts_.begin(), edge_counts_.end()) -
        edge_counts_.begin());
  }
  if (AtEdgeCapacity(best)) ++stats_.overflow_fallbacks;
  return best;
}

double EdgePartitioner::EffectiveDegree(VertexId v) const {
  const double degree = static_cast<double>(PartialDegree(v));
  if (!options_.heat || options_.heat_weight == 0.0) return degree;
  const Label label = v < label_of_.size() ? label_of_[v] : 0;
  return degree * (1.0 + options_.heat_weight * options_.heat(v, label));
}

void EdgePartitioner::GrowTables(VertexId v) {
  if (v == kInvalidVertex) return;
  if (v >= degree_.size()) {
    degree_.resize(v + 1, 0);
    label_of_.resize(v + 1, 0);
  }
}

const std::vector<std::string>& KnownEdgePartitioners() {
  static const std::vector<std::string> kNames = {"hdrf", "dbh"};
  return kNames;
}

bool IsKnownEdgePartitioner(const std::string& name) {
  const std::vector<std::string>& names = KnownEdgePartitioners();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Result<std::unique_ptr<EdgePartitioner>> MakeEdgePartitioner(
    const std::string& name, const EdgePartitionerOptions& options) {
  const Status valid = ValidateEdgePartitionerOptions(options);
  if (!valid.ok()) return valid;
  if (name == "hdrf") {
    return std::unique_ptr<EdgePartitioner>(
        std::make_unique<HdrfPartitioner>(options));
  }
  if (name == "dbh") {
    return std::unique_ptr<EdgePartitioner>(
        std::make_unique<DbhPartitioner>(options));
  }
  return Status::InvalidArgument("unknown edge partitioner '" + name + "'");
}

}  // namespace loom
