#include "edge_partition/edge_restream.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "edge_partition/edge_shard_plan.h"
#include "metrics/metrics.h"

namespace loom {

Status ValidateEdgeRestreamOptions(const EdgeRestreamOptions& options) {
  if (options.num_passes == 0) {
    return Status::InvalidArgument(
        "EdgeRestreamOptions.num_passes must be >= 1");
  }
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    return Status::InvalidArgument(
        "EdgeRestreamOptions.max_migration_fraction must be >= 0");
  }
  return Status::OK();
}

EdgeRestreamOptions SanitizeEdgeRestreamOptions(EdgeRestreamOptions options) {
  if (options.num_passes == 0) options.num_passes = 1;
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    options.max_migration_fraction = 0.0;
  }
  return options;
}

EdgeRestreamer::EdgeRestreamer(ArrivalSource* source,
                               const EdgeRestreamOptions& options)
    : source_(source), options_(SanitizeEdgeRestreamOptions(options)) {}

Result<EdgeRestreamResult> EdgeRestreamer::Run(EdgePartitioner* partitioner) {
  if (!partitioner->options().record_placements) {
    return Status::InvalidArgument(
        "edge restreaming needs record_placements: the per-edge log is the "
        "restream prior");
  }
  EdgeRestreamResult result;
  partitioner->Reset();

  // The reported placement so far (keep-best: lowest replication factor,
  // ties to the better balance; otherwise simply the last pass).
  std::vector<uint32_t> best_placements;
  double best_rf = 0.0;
  double best_balance = 0.0;
  bool have_best = false;

  // Prior for the running pass; must stay alive while the partitioner
  // streams against it (BeginPass borrows the pointer).
  std::vector<uint32_t> prior;

  for (uint32_t pass = 1; pass <= options_.num_passes; ++pass) {
    WallTimer timer;
    if (pass > 1) {
      prior = best_placements;
      partitioner->BeginPass(&prior);
      if (options_.max_migration_fraction < 1.0) {
        const uint64_t budget = static_cast<uint64_t>(
            options_.max_migration_fraction *
            static_cast<double>(prior.size()));
        partitioner->SetMigrationBudget(budget);
      }
    }
    source_->Reset();
    partitioner->Run(*source_);

    const EdgePartitionerStats& stats = partitioner->stats();
    EdgeRestreamPassStats row;
    row.pass = pass;
    row.replication_factor = ReplicationFactor(partitioner->replicas());
    row.balance = EdgeBalanceMaxOverAvg(partitioner->edge_counts());
    row.moved_fraction =
        stats.edges_assigned > 0
            ? static_cast<double>(stats.prior_moves) /
                  static_cast<double>(stats.edges_assigned)
            : 0.0;
    row.overflow_fallbacks = stats.overflow_fallbacks;
    row.cap_relaxations = stats.cap_relaxations;
    row.assign_errors = stats.assign_errors;
    row.budget_denied_moves = stats.budget_denied_moves;
    row.seconds = timer.ElapsedSeconds();
    row.critical_path_seconds = row.seconds;

    const bool better =
        !have_best || row.replication_factor < best_rf ||
        (row.replication_factor == best_rf && row.balance < best_balance);
    if (!options_.keep_best || better) {
      best_placements = partitioner->placements();
      best_rf = row.replication_factor;
      best_balance = row.balance;
      have_best = true;
    }
    row.best_replication_factor = best_rf;
    result.passes.push_back(row);
  }

  result.placements = std::move(best_placements);
  result.replication_factor = best_rf;
  result.balance = best_balance;
  return result;
}

Result<EdgeRestreamResult> EdgeRestreamer::RunSharded(
    EdgePartitioner* partitioner, uint32_t num_shards, ThreadPool* pool) {
  // One shard still exercises the full sharded machinery (plan, clone,
  // merge) — that is what makes the 1-shard bit-identity pin meaningful.
  num_shards = std::max<uint32_t>(1, num_shards);
  if (!partitioner->options().record_placements) {
    return Status::InvalidArgument(
        "edge restreaming needs record_placements: the per-edge log is the "
        "restream prior");
  }
  // One pool for the whole schedule — per-pass pool construction is the
  // wall-clock tax the parallel_restream rows exposed.
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(num_shards);
    pool = owned_pool.get();
  }

  EdgeRestreamResult result;
  partitioner->Reset();
  const uint32_t k = partitioner->options().k;

  std::vector<uint32_t> best_placements;
  double best_rf = 0.0;
  double best_balance = 0.0;
  bool have_best = false;

  // Prior for the running pass (BeginPass borrows the pointer; the shard
  // clones all read it concurrently, read-only).
  std::vector<uint32_t> prior;
  // The recorded stream, materialized once before the first sharded pass
  // (the arrival sequence is identical every pass).
  std::vector<Edge> edges;
  std::vector<uint32_t> stream_degree;
  bool materialized = false;
  // Shard clones persist across passes: each pass re-arms them with the
  // parent's grown degree tables (RefreshFromParent) and BeginPass then
  // empties their replica maps in place, so only the first sharded pass
  // pays clone construction and hash-map population.
  std::vector<std::unique_ptr<EdgePartitioner>> clones;

  for (uint32_t pass = 1; pass <= options_.num_passes; ++pass) {
    WallTimer timer;
    EdgeRestreamPassStats row;
    row.pass = pass;
    // >= 0 when a light merge computed this pass's replication factor from
    // the shard clones' mask union (the parent's replica set is stale then).
    double light_rf = -1.0;

    if (pass == 1) {
      // Pass one streams cold — there is no prior to split by; identical
      // to the serial schedule's first pass.
      source_->Reset();
      partitioner->Run(*source_);
    } else {
      double setup_seconds = 0.0;
      ThreadCpuTimer setup_cpu;
      if (!materialized) {
        source_->Reset();
        ArrivalView view;
        while (source_->Next(&view)) {
          if (view.vertex == kInvalidVertex) continue;
          for (const VertexId neighbor : view.back_edges) {
            edges.push_back(Edge{view.vertex, neighbor});
          }
        }
        // One stream's worth of degree growth — what every further pass
        // adds to the partitioner's retained degrees (the light adopt
        // applies it as a vector add instead of replaying the edges).
        for (const Edge& e : edges) {
          const VertexId top = std::max(e.u, e.v);
          if (top >= stream_degree.size()) stream_degree.resize(top + 1, 0);
          ++stream_degree[e.u];
          ++stream_degree[e.v];
        }
        materialized = true;
      }
      prior = best_placements;
      uint64_t global_moves = EdgePartitioner::kUnlimitedMigrationBudget;
      if (options_.max_migration_fraction < 1.0) {
        global_moves = static_cast<uint64_t>(
            options_.max_migration_fraction *
            static_cast<double>(prior.size()));
      }
      if (clones.size() != num_shards) clones.resize(num_shards);
      setup_seconds += setup_cpu.ElapsedSeconds();

      std::atomic<bool> clones_ok{true};
      {
        EdgeShardPlan plan = BuildEdgeShardPlan(
            edges, prior, k, num_shards, global_moves,
            partitioner->edge_capacity(), pool, &setup_seconds);

        struct ShardOutcome {
          std::vector<uint32_t> picks;
          EdgePartitionerStats stats;
          double cpu_seconds = 0.0;
        };
        std::vector<ShardOutcome> outcomes(num_shards);
        ParallelFor(*pool, num_shards, [&](size_t s) {
          ThreadCpuTimer cpu;
          // First sharded pass: cut this shard's clone here, off the
          // serial setup path. Later passes re-arm the persistent clone.
          if (clones[s] == nullptr) {
            clones[s] = partitioner->CloneForShard();
            if (clones[s] == nullptr) {
              clones_ok = false;
              return;
            }
          } else {
            clones[s]->RefreshFromParent(*partitioner);
          }
          EdgePartitioner& clone = *clones[s];
          const EdgeRestreamShard& shard = plan.shards[s];
          clone.BeginPass(&prior);
          if (!shard.capacities.empty()) {
            clone.SetShardEdgeCapacities(shard.capacities);
          }
          clone.SetMigrationBudget(shard.migration_budget);
          ShardOutcome& out = outcomes[s];
          out.picks.reserve(shard.edges.size());
          for (size_t j = 0; j < shard.edges.size(); ++j) {
            out.picks.push_back(clone.OnEdgeAt(
                shard.edges[j].u, shard.edges[j].v, shard.indices[j]));
          }
          out.stats = clone.stats();
          out.cpu_seconds = cpu.ElapsedSeconds();
        });

        if (!clones_ok) {
          // CloneForShard declined — run the pass serially under the same
          // global budget. Clone failure is deterministic, so the whole
          // schedule degenerates to the serial restream.
          partitioner->BeginPass(&prior);
          if (global_moves != EdgePartitioner::kUnlimitedMigrationBudget) {
            partitioner->SetMigrationBudget(global_moves);
          }
          source_->Reset();
          partitioner->Run(*source_);
        } else {
          // Merge: the shards' edge sets are disjoint by construction, so
          // scattering by global index rebuilds the full placement; the
          // replica-union (and exact replication-factor accounting) happens
          // in AdoptMergedPass's stream-order replay. The scatter and the
          // replay both run on the pool (disjoint writes), so the merge's
          // critical path is this thread's CPU plus the slowest helper's.
          ThreadCpuTimer merge_cpu;
          double merge_parallel_seconds = 0.0;
          std::vector<uint32_t> merged(edges.size(), 0);
          EdgePartitionerStats folded;
          double max_shard_seconds = 0.0;
          for (uint32_t s = 0; s < num_shards; ++s) {
            const ShardOutcome& out = outcomes[s];
            folded.edges_assigned += out.stats.edges_assigned;
            folded.overflow_fallbacks += out.stats.overflow_fallbacks;
            folded.cap_relaxations += out.stats.cap_relaxations;
            folded.assign_errors += out.stats.assign_errors;
            folded.prior_moves += out.stats.prior_moves;
            folded.budget_denied_moves += out.stats.budget_denied_moves;
            row.shard_seconds.push_back(out.cpu_seconds);
            max_shard_seconds = std::max(max_shard_seconds, out.cpu_seconds);
          }
          {
            std::vector<double> task_cpu(num_shards, 0.0);
            ParallelFor(*pool, num_shards, [&](size_t s) {
              ThreadCpuTimer cpu;
              const EdgeRestreamShard& shard = plan.shards[s];
              const ShardOutcome& out = outcomes[s];
              for (size_t j = 0; j < shard.indices.size(); ++j) {
                merged[shard.indices[j]] = out.picks[j];
              }
              task_cpu[s] = cpu.ElapsedSeconds();
            });
            merge_parallel_seconds +=
                *std::max_element(task_cpu.begin(), task_cpu.end());
          }
          if (pass == options_.num_passes) {
            // The final pass installs the full merged state — the stream-order
            // replica replay rebuilds the parent's replica lists, which the
            // caller may inspect after the schedule finishes.
            partitioner->AdoptMergedPass(edges, std::move(merged), folded, pool,
                                         &merge_parallel_seconds);
          } else {
            // Light adopt: intermediate passes skip the stream-order replica
            // replay. The replication factor is still exact — the shard edge
            // sets partition the stream, so the union of the clones' masks is
            // precisely the distinct (vertex, pick) pairs of the merged
            // placement — and the edge counts fold from the clones' own
            // per-pick tallies. The parent's replica lists go stale; only the
            // final pass's full adopt (or a serial fallback's BeginPass)
            // reads them again, and both rebuild from scratch.
            std::vector<uint64_t> folded_counts(k, 0);
            uint32_t mask_words = 1;
            for (uint32_t s = 0; s < num_shards; ++s) {
              const std::vector<uint64_t>& counts = clones[s]->edge_counts();
              for (uint32_t p = 0; p < k; ++p) folded_counts[p] += counts[p];
              mask_words = std::max(mask_words,
                                    clones[s]->replicas().words_per_vertex());
            }
            const size_t num_vertices = stream_degree.size();
            std::vector<uint64_t> chunk_pairs(num_shards, 0);
            std::vector<uint64_t> chunk_verts(num_shards, 0);
            std::vector<double> task_cpu(num_shards, 0.0);
            ParallelFor(*pool, num_shards, [&](size_t c) {
              ThreadCpuTimer cpu;
              const size_t lo = num_vertices * c / num_shards;
              const size_t hi = num_vertices * (c + 1) / num_shards;
              uint64_t pairs = 0;
              uint64_t verts = 0;
              for (size_t v = lo; v < hi; ++v) {
                uint64_t any = 0;
                for (uint32_t w = 0; w < mask_words; ++w) {
                  uint64_t word = 0;
                  for (uint32_t s = 0; s < num_shards; ++s) {
                    word |= clones[s]->replicas().MaskWordOf(
                        static_cast<VertexId>(v), w);
                  }
                  pairs += static_cast<uint64_t>(__builtin_popcountll(word));
                  any |= word;
                }
                if (any != 0) ++verts;
              }
              chunk_pairs[c] = pairs;
              chunk_verts[c] = verts;
              task_cpu[c] = cpu.ElapsedSeconds();
            });
            merge_parallel_seconds +=
                *std::max_element(task_cpu.begin(), task_cpu.end());
            uint64_t union_pairs = 0;
            uint64_t union_verts = 0;
            for (uint32_t c = 0; c < num_shards; ++c) {
              union_pairs += chunk_pairs[c];
              union_verts += chunk_verts[c];
            }
            light_rf = union_verts > 0 ? static_cast<double>(union_pairs) /
                                             static_cast<double>(union_verts)
                                       : 0.0;
            partitioner->AdoptMergedPassLight(std::move(merged), folded_counts,
                                              folded, stream_degree,
                                              edges.size());
          }
          row.num_shards = num_shards;
          row.critical_path_seconds = setup_seconds + max_shard_seconds +
                                      merge_cpu.ElapsedSeconds() +
                                      merge_parallel_seconds;
        }
      }
    }

    const EdgePartitionerStats& stats = partitioner->stats();
    row.replication_factor = light_rf >= 0.0
                                 ? light_rf
                                 : ReplicationFactor(partitioner->replicas());
    row.balance = EdgeBalanceMaxOverAvg(partitioner->edge_counts());
    row.moved_fraction =
        stats.edges_assigned > 0
            ? static_cast<double>(stats.prior_moves) /
                  static_cast<double>(stats.edges_assigned)
            : 0.0;
    row.overflow_fallbacks = stats.overflow_fallbacks;
    row.cap_relaxations = stats.cap_relaxations;
    row.assign_errors = stats.assign_errors;
    row.budget_denied_moves = stats.budget_denied_moves;
    row.seconds = timer.ElapsedSeconds();
    if (row.critical_path_seconds == 0.0) {
      row.critical_path_seconds = row.seconds;
    }

    const bool better =
        !have_best || row.replication_factor < best_rf ||
        (row.replication_factor == best_rf && row.balance < best_balance);
    if (!options_.keep_best || better) {
      best_placements = partitioner->placements();
      best_rf = row.replication_factor;
      best_balance = row.balance;
      have_best = true;
    }
    row.best_replication_factor = best_rf;
    result.passes.push_back(row);
  }

  result.placements = std::move(best_placements);
  result.replication_factor = best_rf;
  result.balance = best_balance;
  return result;
}

}  // namespace loom
