#include "edge_partition/edge_restream.h"

#include <cmath>
#include <utility>

#include "common/timer.h"
#include "metrics/metrics.h"

namespace loom {

Status ValidateEdgeRestreamOptions(const EdgeRestreamOptions& options) {
  if (options.num_passes == 0) {
    return Status::InvalidArgument(
        "EdgeRestreamOptions.num_passes must be >= 1");
  }
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    return Status::InvalidArgument(
        "EdgeRestreamOptions.max_migration_fraction must be >= 0");
  }
  return Status::OK();
}

EdgeRestreamOptions SanitizeEdgeRestreamOptions(EdgeRestreamOptions options) {
  if (options.num_passes == 0) options.num_passes = 1;
  if (std::isnan(options.max_migration_fraction) ||
      options.max_migration_fraction < 0.0) {
    options.max_migration_fraction = 0.0;
  }
  return options;
}

EdgeRestreamer::EdgeRestreamer(ArrivalSource* source,
                               const EdgeRestreamOptions& options)
    : source_(source), options_(SanitizeEdgeRestreamOptions(options)) {}

Result<EdgeRestreamResult> EdgeRestreamer::Run(EdgePartitioner* partitioner) {
  if (!partitioner->options().record_placements) {
    return Status::InvalidArgument(
        "edge restreaming needs record_placements: the per-edge log is the "
        "restream prior");
  }
  EdgeRestreamResult result;
  partitioner->Reset();

  // The reported placement so far (keep-best: lowest replication factor,
  // ties to the better balance; otherwise simply the last pass).
  std::vector<uint32_t> best_placements;
  double best_rf = 0.0;
  double best_balance = 0.0;
  bool have_best = false;

  // Prior for the running pass; must stay alive while the partitioner
  // streams against it (BeginPass borrows the pointer).
  std::vector<uint32_t> prior;

  for (uint32_t pass = 1; pass <= options_.num_passes; ++pass) {
    WallTimer timer;
    if (pass > 1) {
      prior = best_placements;
      partitioner->BeginPass(&prior);
      if (options_.max_migration_fraction < 1.0) {
        const uint64_t budget = static_cast<uint64_t>(
            options_.max_migration_fraction *
            static_cast<double>(prior.size()));
        partitioner->SetMigrationBudget(budget);
      }
    }
    source_->Reset();
    partitioner->Run(*source_);

    const EdgePartitionerStats& stats = partitioner->stats();
    EdgeRestreamPassStats row;
    row.pass = pass;
    row.replication_factor = ReplicationFactor(partitioner->replicas());
    row.balance = EdgeBalanceMaxOverAvg(partitioner->edge_counts());
    row.moved_fraction =
        stats.edges_assigned > 0
            ? static_cast<double>(stats.prior_moves) /
                  static_cast<double>(stats.edges_assigned)
            : 0.0;
    row.overflow_fallbacks = stats.overflow_fallbacks;
    row.cap_relaxations = stats.cap_relaxations;
    row.assign_errors = stats.assign_errors;
    row.budget_denied_moves = stats.budget_denied_moves;
    row.seconds = timer.ElapsedSeconds();

    const bool better =
        !have_best || row.replication_factor < best_rf ||
        (row.replication_factor == best_rf && row.balance < best_balance);
    if (!options_.keep_best || better) {
      best_placements = partitioner->placements();
      best_rf = row.replication_factor;
      best_balance = row.balance;
      have_best = true;
    }
    row.best_replication_factor = best_rf;
    result.passes.push_back(row);
  }

  result.placements = std::move(best_placements);
  result.replication_factor = best_rf;
  result.balance = best_balance;
  return result;
}

}  // namespace loom
