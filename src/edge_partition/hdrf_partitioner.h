#ifndef LOOM_EDGE_PARTITION_HDRF_PARTITIONER_H_
#define LOOM_EDGE_PARTITION_HDRF_PARTITIONER_H_

/// \file
/// HDRF — High-Degree (are) Replicated First (Petroni et al., CIKM 2015):
/// the streaming edge partitioner that exploits power-law degree skew by
/// preferring to replicate hub vertices, keeping the long tail of
/// low-degree vertices intact. For edge (u, v) with partial degrees δ(u),
/// δ(v), normalised as θ(u) = δ(u) / (δ(u) + δ(v)), each partition p is
/// scored
///
///   C_REP(p) = g(u, p) + g(v, p),   g(x, p) = 1 + (1 − θ(x)) if p holds a
///                                   replica of x, else 0
///   C_BAL(p) = λ · (maxsize − size(p)) / (1 + maxsize − minsize)
///
/// and the edge goes to the argmax (ties to the lower index). The lower-
/// degree endpoint contributes the larger g, so the placement gravitates
/// to partitions holding the *tail* endpoint and the hub gets replicated.
/// λ tunes the balance term; the workload-heat hook (EffectiveDegree)
/// inflates hot vertices' θ so motif hubs replicate first even before
/// their structural degree shows it.
///
/// ## Kernel
///
/// The production placement rule is a dense bitmask kernel: eligibility is
/// word-parallel mask algebra over ReplicaSet's per-vertex partition
/// bitmasks and the partitioner's full-partition bit words, replica-
/// affinity candidates are the set bits of mask(u) | mask(v) (the only
/// partitions with a nonzero C_REP), the balance-only sweep reduces to an
/// integer least-loaded argmin, and maxsize/minsize come from the
/// incrementally maintained load bounds — no hash probes and no O(k)
/// min/max scan per edge. It is placement-bit-identical to the reference
/// scalar loop (kept as PickPartitionScalar, selectable via
/// set_force_scalar_kernel for the golden-hash equivalence tests).

#include <string>

#include "edge_partition/edge_partitioner.h"

namespace loom {

/// Streaming HDRF over the back-edge cursor.
class HdrfPartitioner : public EdgePartitioner {
 public:
  explicit HdrfPartitioner(const EdgePartitionerOptions& options)
      : EdgePartitioner(options) {}

  std::string Name() const override { return "hdrf"; }

  /// Test hook: route PickPartition through the reference scalar loop
  /// instead of the bitmask kernel. The golden-hash equivalence tests pin
  /// that both produce identical placements.
  void set_force_scalar_kernel(bool force) { force_scalar_kernel_ = force; }

 protected:
  uint32_t PickPartition(VertexId u, VertexId v) override;

 private:
  /// The reference O(k)-scan implementation of the scoring rule.
  uint32_t PickPartitionScalar(VertexId u, VertexId v);

  bool force_scalar_kernel_ = false;
};

}  // namespace loom

#endif  // LOOM_EDGE_PARTITION_HDRF_PARTITIONER_H_
