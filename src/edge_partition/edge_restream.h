#ifndef LOOM_EDGE_PARTITION_EDGE_RESTREAM_H_
#define LOOM_EDGE_PARTITION_EDGE_RESTREAM_H_

/// \file
/// Multi-pass restreaming over an EdgePartitioner — the edge-stream
/// counterpart of restream/restreamer.h. Pass one streams cold; every
/// later pass replays the identical arrival sequence (ArrivalSource's
/// Reset contract) with the previous pass's per-edge placement log
/// installed as the prior, so HDRF re-scores each edge with *final*
/// partial degrees (retained across BeginPass) and full knowledge of both
/// endpoints' replica sets as they re-form. An optional migration budget
/// caps the number of edges that may land off their prior partition —
/// the incremental re-partition a serving deployment can actually afford
/// — and keep-best guarantees the reported placement never regresses
/// below the best pass seen.

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "edge_partition/edge_partitioner.h"
#include "stream/arrival_source.h"

namespace loom {

class ThreadPool;

struct EdgeRestreamOptions {
  /// Total passes including the initial stream (>= 1).
  uint32_t num_passes = 2;
  /// Bounded-migration budget for every pass that has a prior: at most
  /// floor(fraction * m) edges may land on a different partition than the
  /// prior assigned; once spent, further placements clamp to the prior.
  /// >= 1.0 (the default) disables the budget.
  double max_migration_fraction = 1.0;
  /// Anytime guarantee: report (and restream against) the placement with
  /// the lowest replication factor seen so far, ties broken towards the
  /// better edge balance. Off = plain last-pass semantics.
  bool keep_best = true;
};

/// Rejects `num_passes == 0` and a NaN or negative
/// `max_migration_fraction` (values > 1 are valid — unbudgeted).
Status ValidateEdgeRestreamOptions(const EdgeRestreamOptions& options);

/// Sanitized copy: `num_passes` clamped to >= 1; NaN or negative
/// `max_migration_fraction` clamped to 0.0 — the conservative end (a
/// garbage budget freezes migration rather than silently unbudgeting).
EdgeRestreamOptions SanitizeEdgeRestreamOptions(EdgeRestreamOptions options);

/// Quality and cost of one edge-restream pass.
struct EdgeRestreamPassStats {
  /// 1-based pass number.
  uint32_t pass = 0;
  /// Replication factor of this pass's placement.
  double replication_factor = 0.0;
  /// Best replication factor over passes 1..pass (non-increasing when
  /// keep_best is on).
  double best_replication_factor = 0.0;
  /// Per-partition edge balance (max/avg) of this pass.
  double balance = 0.0;
  /// Fraction of edges whose partition changed from the prior (0 for pass
  /// one).
  double moved_fraction = 0.0;
  /// Counters copied from EdgePartitionerStats for the pass (summed over
  /// shards for a sharded pass).
  uint64_t overflow_fallbacks = 0;
  uint64_t cap_relaxations = 0;
  uint64_t assign_errors = 0;
  uint64_t budget_denied_moves = 0;
  double seconds = 0.0;
  /// Workers this pass ran on: 1 for a serial pass (including pass one of
  /// a sharded schedule, which streams cold and has no prior to split by).
  uint32_t num_shards = 1;
  /// Sharded passes: each shard's replay thread-CPU seconds.
  std::vector<double> shard_seconds;
  /// Scheduling-independent cost of the pass: for a sharded pass, setup
  /// CPU (stream materialization + shard plan + clones) plus the slowest
  /// shard's replay CPU plus the merge/adopt CPU; for a serial pass, equal
  /// to `seconds`.
  double critical_path_seconds = 0.0;
};

/// Final placement plus the per-pass trajectory.
struct EdgeRestreamResult {
  std::vector<EdgeRestreamPassStats> passes;
  /// Per-edge placements (stream order) of the reported pass — the best
  /// pass under keep_best, else the last.
  std::vector<uint32_t> placements;
  double replication_factor = 0.0;
  double balance = 0.0;
};

/// Multi-pass driver. The source must yield back-edge views and replay the
/// identical sequence after Reset; the partitioner must record placements
/// (options().record_placements) — the log *is* the restream prior.
class EdgeRestreamer {
 public:
  /// `source` must outlive the restreamer; options are sanitized.
  EdgeRestreamer(ArrivalSource* source, const EdgeRestreamOptions& options);

  /// Runs the full schedule on `partitioner` (reset first, so any prior
  /// state is discarded). Errors with InvalidArgument when the partitioner
  /// does not record placements. After the call the partitioner holds the
  /// *last* pass's state; the returned placements are the reported pass's.
  Result<EdgeRestreamResult> Run(EdgePartitioner* partitioner);

  /// Run with the restream passes (2..num_passes) sharded across
  /// `num_shards` workers. Pass one streams cold and is serial — there is
  /// no prior to split by. Each later pass materializes the recorded
  /// stream once, splits it by prior partition (BuildEdgeShardPlan: budget
  /// floors sum to at most the global allowance, capacity slices to
  /// exactly the global budget), replays every shard on a clone
  /// (CloneForShard) over `pool` — or an internally owned pool when null —
  /// and merges the disjoint per-shard assignments back into `partitioner`
  /// via AdoptMergedPass, so replication-factor accounting, degrees and
  /// the keep-best decision are exact. One shard still runs the full
  /// plan/clone/merge machinery and is bit-identical to `Run` — the pin
  /// the restream tests hold; a partitioner whose CloneForShard fails
  /// falls back to serial passes under the same budget.
  Result<EdgeRestreamResult> RunSharded(EdgePartitioner* partitioner,
                                        uint32_t num_shards,
                                        ThreadPool* pool = nullptr);

  const EdgeRestreamOptions& options() const { return options_; }

 private:
  ArrivalSource* source_;
  EdgeRestreamOptions options_;
};

}  // namespace loom

#endif  // LOOM_EDGE_PARTITION_EDGE_RESTREAM_H_
