#ifndef LOOM_EDGE_PARTITION_EDGE_SHARD_PLAN_H_
#define LOOM_EDGE_PARTITION_EDGE_SHARD_PLAN_H_

/// \file
/// Share-nothing sharding of a budgeted *edge* restream pass — the
/// edge-stream counterpart of restream/shard_plan.h, with the same safety
/// argument. The recorded stream is split by *prior partition*: edge i
/// lands in the shard that owns prior[i], so each shard replays its own
/// subsequence of the stream (global order preserved, global indices kept
/// for the prior lookup) and the per-partition state a budgeted pass
/// depends on splits exactly with it:
///
///  * **Migration budget.** Shard s gets
///    `floor(shard_prior_edges_s / m * global_moves)`; the floors sum to at
///    most `global_moves`, so the global migration cap holds no matter how
///    each shard spends its allowance.
///  * **Capacity.** Shard s may fill partition p up to the prior edge count
///    of p (capped at C) if it owns p, plus an even share of the
///    partition's slack (`C - prior_count_p`, remainder to the low
///    shards); the slices sum to exactly C, so the merged assignment
///    always respects the global bound. All of p's prior *stayers* replay
///    in p's owner shard, so the owner's slice covers them; when the prior
///    itself overflowed C the surplus stayers are clamp-forced past the
///    slice — the same treatment the serial pass gives them under its
///    scalar C.
///
/// With one shard the plan degenerates to the serial pass exactly: full
/// stream, full budget, every capacity slice = C — which is what makes
/// `EdgeRestreamer::RunSharded(num_shards=1)` bit-identical to the serial
/// schedule.

#include <cstdint>
#include <vector>

#include "edge_partition/edge_partitioner.h"
#include "graph/graph.h"

namespace loom {

class ThreadPool;

/// One worker's share of a sharded edge-restream pass.
struct EdgeRestreamShard {
  /// This shard's edges, in global stream order (`edges[j]` is stream edge
  /// `indices[j]`; u is the later endpoint, the back-edge convention).
  std::vector<Edge> edges;
  /// Global stream index of each shard edge — the prior-lookup key passed
  /// to EdgePartitioner::OnEdgeAt.
  std::vector<uint64_t> indices;
  /// Per-partition capacity slice for SetShardEdgeCapacities; empty when
  /// the pass is unconstrained (capacity 0).
  std::vector<uint64_t> capacities;
  /// This shard's slice of the global migration budget.
  uint64_t migration_budget = EdgePartitioner::kUnlimitedMigrationBudget;
  /// Edges whose prior partition this shard owns (the budget weight).
  uint64_t prior_edges = 0;
};

/// The full pass decomposition: `shards[s]` is worker s's share.
struct EdgeShardPlan {
  std::vector<EdgeRestreamShard> shards;
};

/// Owner shard of prior partition `partition` under `num_shards` shards
/// (deterministic round-robin, matching restream/shard_plan.h).
inline uint32_t ShardOfEdgePartition(uint32_t partition, uint32_t num_shards) {
  return partition % num_shards;
}

/// Splits the recorded stream (`stream[i]` is edge i, `prior[i]` its
/// previous-pass partition) into `num_shards` share-nothing shards over `k`
/// partitions. `global_moves` is the pass's total migration allowance
/// (EdgePartitioner::kUnlimitedMigrationBudget to disable the split);
/// `capacity` the per-partition edge budget C the serial pass runs under
/// (0 = unconstrained). Edges without a usable prior entry (index past the
/// log, or an out-of-range partition) are dealt round-robin by stream
/// index and carry no budget weight. With a non-null `pool` the shards
/// assemble their edge lists concurrently (each shard writes only its own
/// plan entry, so the result is bit-identical to the serial build). When
/// `critical_seconds_out` is non-null the build's share-nothing critical
/// path — calling-thread CPU plus the slowest concurrent collection task's
/// thread-CPU seconds — is added to it.
EdgeShardPlan BuildEdgeShardPlan(const std::vector<Edge>& stream,
                                 const std::vector<uint32_t>& prior,
                                 uint32_t k, uint32_t num_shards,
                                 uint64_t global_moves, uint64_t capacity,
                                 ThreadPool* pool = nullptr,
                                 double* critical_seconds_out = nullptr);

}  // namespace loom

#endif  // LOOM_EDGE_PARTITION_EDGE_SHARD_PLAN_H_
