#include "stream/window.h"

#include <cassert>

namespace loom {

StreamWindow::StreamWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  // Fixed arena: at most `capacity_` members are ever buffered, and the
  // index is sized once so steady-state churn never rehashes.
  arena_.resize(capacity_);
  free_slots_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    free_slots_.push_back(static_cast<uint32_t>(capacity_ - 1 - i));
  }
  index_.reserve(capacity_ + 1);
}

void StreamWindow::Push(VertexId v, Label label,
                        Span<const VertexId> back_edges,
                        bool record_reverse) {
  assert(!Full() && "Push on a full window; evict first");
  assert(!Contains(v));
  if (free_slots_.empty()) {
    // Misuse guard (NDEBUG): a push past capacity grows the arena instead of
    // corrupting it, matching the old map's unbounded-growth behaviour.
    arena_.emplace_back();
    free_slots_.push_back(static_cast<uint32_t>(arena_.size() - 1));
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  WindowMember& member = arena_[slot];
  member.id = v;
  member.label = label;
  member.arrival_seq = next_seq_++;
  member.neighbors.assign(back_edges.begin(), back_edges.end());
  // Back edges into the window are symmetric: tell the buffered neighbour.
  if (record_reverse) {
    for (const VertexId w : back_edges) {
      const auto it = index_.find(w);
      if (it != index_.end()) arena_[it->second].neighbors.push_back(v);
    }
  }
  if (!index_.emplace(v, slot).second) {
    // Misuse guard (NDEBUG): a duplicate push keeps the original member,
    // like the map it replaced — return the staged slot to the free list.
    free_slots_.push_back(slot);
  }
  age_queue_.push_back(v);
}

void StreamWindow::CompactFront() {
  while (!age_queue_.empty() && index_.count(age_queue_.front()) == 0) {
    age_queue_.pop_front();
  }
}

VertexId StreamWindow::Oldest() const {
  const_cast<StreamWindow*>(this)->CompactFront();
  assert(!age_queue_.empty());
  return age_queue_.front();
}

WindowMember StreamWindow::PopOldest() {
  CompactFront();
  assert(!age_queue_.empty());
  const VertexId v = age_queue_.front();
  age_queue_.pop_front();
  return Remove(v);
}

WindowMember StreamWindow::Remove(VertexId v) {
  const auto it = index_.find(v);
  assert(it != index_.end());
  const uint32_t slot = it->second;
  index_.erase(it);
  free_slots_.push_back(slot);
  // Moving out leaves the slot's member empty; a spilled neighbour list's
  // heap buffer leaves with the member, but typical members stay inline and
  // the arena slot is reused allocation-free.
  return std::move(arena_[slot]);
}

const WindowMember& StreamWindow::Get(VertexId v) const {
  const auto it = index_.find(v);
  assert(it != index_.end());
  return arena_[it->second];
}

std::vector<VertexId> StreamWindow::MembersInOrder() const {
  std::vector<VertexId> out;
  out.reserve(index_.size());
  age_queue_.ForEach([&](VertexId v) {
    if (index_.count(v) > 0) out.push_back(v);
  });
  return out;
}

}  // namespace loom
