#include "stream/window.h"

#include <cassert>

namespace loom {

StreamWindow::StreamWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  // Fixed arena: at most `capacity_` members are ever buffered.
  arena_.resize(capacity_);
  free_slots_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    free_slots_.push_back(static_cast<uint32_t>(capacity_ - 1 - i));
  }
}

uint32_t StreamWindow::Push(VertexId v, Label label,
                            Span<const VertexId> back_edges,
                            bool record_reverse) {
  assert(!Full() && "Push on a full window; evict first");
  assert(!Contains(v));
  if (v >= slot_of_.size()) {
    // Geometric growth: the index is written once per arrival, so resize
    // cost must amortize like push_back's.
    size_t grown = slot_of_.empty() ? 1024 : slot_of_.size() * 2;
    if (grown < static_cast<size_t>(v) + 1) grown = static_cast<size_t>(v) + 1;
    slot_of_.resize(grown, -1);
  }
  if (slot_of_[v] >= 0) {
    // Misuse guard (NDEBUG): a duplicate push keeps the original member,
    // like the map this index replaced.
    age_queue_.push_back(v);
    return static_cast<uint32_t>(slot_of_[v]);
  }
  if (free_slots_.empty()) {
    // Misuse guard (NDEBUG): a push past capacity grows the arena instead of
    // corrupting it, matching the old map's unbounded-growth behaviour.
    arena_.emplace_back();
    free_slots_.push_back(static_cast<uint32_t>(arena_.size() - 1));
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  WindowMember& member = arena_[slot];
  member.id = v;
  member.label = label;
  member.arrival_seq = next_seq_++;
  member.neighbors.assign(back_edges.begin(), back_edges.end());
  // Back edges into the window are symmetric: tell the buffered neighbour.
  if (record_reverse) {
    for (const VertexId w : back_edges) {
      const int32_t ws = SlotOf(w);
      if (ws >= 0) arena_[ws].neighbors.push_back(v);
    }
  }
  slot_of_[v] = static_cast<int32_t>(slot);
  ++size_;
  age_queue_.push_back(v);
  return slot;
}

void StreamWindow::CompactFront() {
  while (!age_queue_.empty() && !Contains(age_queue_.front())) {
    age_queue_.pop_front();
  }
}

VertexId StreamWindow::Oldest() const {
  const_cast<StreamWindow*>(this)->CompactFront();
  assert(!age_queue_.empty());
  return age_queue_.front();
}

WindowMember StreamWindow::PopOldest() {
  CompactFront();
  assert(!age_queue_.empty());
  const VertexId v = age_queue_.front();
  age_queue_.pop_front();
  return Remove(v);
}

WindowMember StreamWindow::Remove(VertexId v, uint32_t* slot_out) {
  assert(Contains(v));
  const uint32_t slot = static_cast<uint32_t>(slot_of_[v]);
  slot_of_[v] = -1;
  --size_;
  free_slots_.push_back(slot);
  if (slot_out != nullptr) *slot_out = slot;
  // Moving out leaves the slot's member empty; a spilled neighbour list's
  // heap buffer leaves with the member, but typical members stay inline and
  // the arena slot is reused allocation-free.
  return std::move(arena_[slot]);
}

const WindowMember& StreamWindow::Get(VertexId v) const {
  assert(Contains(v));
  return arena_[slot_of_[v]];
}

std::vector<VertexId> StreamWindow::MembersInOrder() const {
  std::vector<VertexId> out;
  out.reserve(size_);
  age_queue_.ForEach([&](VertexId v) {
    if (Contains(v)) out.push_back(v);
  });
  return out;
}

}  // namespace loom
