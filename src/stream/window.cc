#include "stream/window.h"

#include <cassert>

namespace loom {

StreamWindow::StreamWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void StreamWindow::Push(VertexId v, Label label,
                        const std::vector<VertexId>& back_edges,
                        bool record_reverse) {
  assert(!Full() && "Push on a full window; evict first");
  assert(!Contains(v));
  WindowMember member;
  member.id = v;
  member.label = label;
  member.arrival_seq = next_seq_++;
  member.neighbors = back_edges;
  // Back edges into the window are symmetric: tell the buffered neighbour.
  if (record_reverse) {
    for (const VertexId w : back_edges) {
      const auto it = members_.find(w);
      if (it != members_.end()) it->second.neighbors.push_back(v);
    }
  }
  members_.emplace(v, std::move(member));
  age_queue_.push_back(v);
}

void StreamWindow::CompactFront() {
  while (!age_queue_.empty() && members_.count(age_queue_.front()) == 0) {
    age_queue_.pop_front();
  }
}

VertexId StreamWindow::Oldest() const {
  const_cast<StreamWindow*>(this)->CompactFront();
  assert(!age_queue_.empty());
  return age_queue_.front();
}

WindowMember StreamWindow::PopOldest() {
  CompactFront();
  assert(!age_queue_.empty());
  const VertexId v = age_queue_.front();
  age_queue_.pop_front();
  return Remove(v);
}

WindowMember StreamWindow::Remove(VertexId v) {
  const auto it = members_.find(v);
  assert(it != members_.end());
  WindowMember out = std::move(it->second);
  members_.erase(it);
  return out;
}

const WindowMember& StreamWindow::Get(VertexId v) const {
  const auto it = members_.find(v);
  assert(it != members_.end());
  return it->second;
}

std::vector<VertexId> StreamWindow::MembersInOrder() const {
  std::vector<VertexId> out;
  out.reserve(members_.size());
  for (const VertexId v : age_queue_) {
    if (members_.count(v) > 0) out.push_back(v);
  }
  return out;
}

}  // namespace loom
