#include "stream/cluster_log.h"

#include <algorithm>

namespace loom {

namespace {

/// SplitMix64 finalizer: the standard 64-bit avalanche mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void ClusterLog::Reset(bool fingerprints_complete) {
  fingerprints_complete_ = fingerprints_complete;
  id_bound_ = 0;
  members_.clear();
  fingerprints_.clear();
  unit_offsets_.assign(1, 0);
}

void ClusterLog::AddMember(VertexId v, uint64_t fingerprint) {
  members_.push_back(v);
  if (fingerprints_complete_) fingerprints_.push_back(fingerprint);
  id_bound_ = std::max(id_bound_, v + 1);
}

void ClusterLog::CommitUnit() {
  // Empty units are dropped (nothing between this boundary and the last).
  if (members_.size() == unit_offsets_.back()) return;
  unit_offsets_.push_back(static_cast<uint32_t>(members_.size()));
}

uint64_t ClusterLog::Fingerprint(Label label, Span<const VertexId> neighbors) {
  // Commutative accumulation over neighbours, then one avalanche over the
  // (label, degree, neighbour-sum) triple. OR 1 keeps 0 reserved.
  uint64_t sum = 0;
  for (const VertexId w : neighbors) {
    sum += Mix64(static_cast<uint64_t>(w) + 0x517cc1b727220a95ull);
  }
  const uint64_t h =
      Mix64((static_cast<uint64_t>(label) << 32) ^ neighbors.size()) ^
      Mix64(sum);
  return h | 1;
}

ClusterMemo::ClusterMemo(const ClusterLog* log) : log_(log) {
  unit_of_.assign(log->IdBound(), -1);
  for (uint32_t u = 0; u < log->NumUnits(); ++u) {
    for (const VertexId v : log->MembersOf(u)) {
      unit_of_[v] = static_cast<int32_t>(u);
    }
  }
}

std::vector<VertexId> GroupPermByUnits(const std::vector<VertexId>& perm,
                                       const ClusterMemo& memo) {
  std::vector<VertexId> grouped;
  grouped.reserve(perm.size());
  std::vector<uint8_t> unit_emitted(memo.log().NumUnits(), 0);
  for (const VertexId v : perm) {
    const int32_t u = memo.UnitOf(v);
    if (u < 0) {
      grouped.push_back(v);
      continue;
    }
    if (unit_emitted[u]) continue;
    unit_emitted[u] = 1;
    for (const VertexId m : memo.log().MembersOf(static_cast<uint32_t>(u))) {
      grouped.push_back(m);
    }
  }
  return grouped;
}

}  // namespace loom
