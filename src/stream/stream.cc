#include "stream/stream.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace loom {
namespace {

std::vector<VertexId> RandomOrder(const LabeledGraph& g, Rng& rng) {
  std::vector<VertexId> order(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) order[v] = v;
  rng.Shuffle(&order);
  return order;
}

std::vector<VertexId> TraversalOrder(const LabeledGraph& g, Rng& rng,
                                     bool breadth_first) {
  const size_t n = g.NumVertices();
  std::vector<VertexId> starts = RandomOrder(g, rng);
  std::vector<bool> seen(n, false);
  std::vector<VertexId> order;
  order.reserve(n);
  std::deque<VertexId> frontier;
  for (const VertexId start : starts) {
    if (seen[start]) continue;
    seen[start] = true;
    frontier.push_back(start);
    while (!frontier.empty()) {
      VertexId v;
      if (breadth_first) {
        v = frontier.front();
        frontier.pop_front();
      } else {
        v = frontier.back();
        frontier.pop_back();
      }
      order.push_back(v);
      std::vector<VertexId> nbrs = g.Neighbors(v);
      rng.Shuffle(&nbrs);
      for (const VertexId w : nbrs) {
        if (!seen[w]) {
          seen[w] = true;
          frontier.push_back(w);
        }
      }
    }
  }
  return order;
}

std::vector<VertexId> AdversarialOrder(const LabeledGraph& g, Rng& rng) {
  // Greedy maximal independent set over a random vertex order; those arrive
  // first (no back edges at all), the rest afterwards.
  std::vector<VertexId> scan = RandomOrder(g, rng);
  std::vector<bool> blocked(g.NumVertices(), false);
  std::vector<bool> in_set(g.NumVertices(), false);
  std::vector<VertexId> first;
  for (const VertexId v : scan) {
    if (blocked[v]) continue;
    in_set[v] = true;
    first.push_back(v);
    for (const VertexId w : g.Neighbors(v)) blocked[w] = true;
  }
  std::vector<VertexId> rest;
  for (const VertexId v : scan) {
    if (!in_set[v]) rest.push_back(v);
  }
  first.insert(first.end(), rest.begin(), rest.end());
  return first;
}

std::vector<VertexId> StochasticOrder(const LabeledGraph& g, Rng& rng) {
  // Ticket pool: every unarrived vertex holds one base ticket plus one per
  // already-arrived neighbour, so arrival probability grows with local
  // connectivity to the arrived region. Lazy deletion keeps it O(n + m).
  const size_t n = g.NumVertices();
  std::vector<bool> arrived(n, false);
  std::vector<VertexId> pool;
  pool.reserve(n * 2);
  for (VertexId v = 0; v < n; ++v) pool.push_back(v);
  std::vector<VertexId> order;
  order.reserve(n);
  size_t remaining = n;
  while (remaining > 0) {
    VertexId v = kInvalidVertex;
    // Rejection sampling over the lazy pool; guaranteed to terminate because
    // every unarrived vertex keeps its base ticket.
    while (true) {
      const size_t i = static_cast<size_t>(rng.UniformInt(0, pool.size() - 1));
      if (!arrived[pool[i]]) {
        v = pool[i];
        break;
      }
      // Compact lazily: overwrite the dead ticket with the last one.
      pool[i] = pool.back();
      pool.pop_back();
    }
    arrived[v] = true;
    --remaining;
    order.push_back(v);
    for (const VertexId w : g.Neighbors(v)) {
      if (!arrived[w]) pool.push_back(w);
    }
  }
  return order;
}

}  // namespace

std::string StreamOrderName(StreamOrder order) {
  switch (order) {
    case StreamOrder::kRandom:
      return "random";
    case StreamOrder::kBfs:
      return "bfs";
    case StreamOrder::kDfs:
      return "dfs";
    case StreamOrder::kAdversarial:
      return "adversarial";
    case StreamOrder::kStochastic:
      return "stochastic";
    case StreamOrder::kNatural:
      return "natural";
  }
  return "unknown";
}

size_t GraphStream::NumEdges() const {
  size_t m = 0;
  for (const auto& a : arrivals_) m += a.back_edges.size();
  return m;
}

GraphStream MakeStream(const LabeledGraph& g, StreamOrder order, Rng& rng) {
  std::vector<VertexId> perm;
  switch (order) {
    case StreamOrder::kRandom:
      perm = RandomOrder(g, rng);
      break;
    case StreamOrder::kBfs:
      perm = TraversalOrder(g, rng, /*breadth_first=*/true);
      break;
    case StreamOrder::kDfs:
      perm = TraversalOrder(g, rng, /*breadth_first=*/false);
      break;
    case StreamOrder::kAdversarial:
      perm = AdversarialOrder(g, rng);
      break;
    case StreamOrder::kStochastic:
      perm = StochasticOrder(g, rng);
      break;
    case StreamOrder::kNatural: {
      perm.resize(g.NumVertices());
      for (VertexId v = 0; v < g.NumVertices(); ++v) perm[v] = v;
      break;
    }
  }
  return MakeStreamFromOrder(g, perm);
}

GraphStream MakeStreamFromOrder(const LabeledGraph& g,
                                const std::vector<VertexId>& order) {
  assert(order.size() == g.NumVertices());
  std::vector<uint32_t> position(g.NumVertices(), 0);
  for (uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;

  std::vector<VertexArrival> arrivals;
  arrivals.reserve(order.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    const VertexId v = order[i];
    VertexArrival a;
    a.vertex = v;
    a.label = g.LabelOf(v);
    for (const VertexId w : g.Neighbors(v)) {
      if (position[w] < i) a.back_edges.push_back(w);
    }
    arrivals.push_back(std::move(a));
  }
  return GraphStream(std::move(arrivals));
}

LabeledGraph GraphFromStream(const GraphStream& stream) {
  VertexId max_id = 0;
  bool any = false;
  for (const VertexArrival& a : stream.arrivals()) {
    max_id = std::max(max_id, a.vertex);
    for (const VertexId w : a.back_edges) max_id = std::max(max_id, w);
    any = true;
  }
  LabeledGraph g;
  if (!any) return g;
  for (VertexId v = 0; v <= max_id; ++v) g.AddVertex(0);
  for (const VertexArrival& a : stream.arrivals()) {
    g.SetLabel(a.vertex, a.label);
    for (const VertexId w : a.back_edges) {
      const Status s = g.AddEdge(a.vertex, w);
      // Duplicates (full-neighbourhood streams) are tolerated, kept once.
      (void)s;
    }
  }
  return g;
}

}  // namespace loom
