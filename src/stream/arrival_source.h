#ifndef LOOM_STREAM_ARRIVAL_SOURCE_H_
#define LOOM_STREAM_ARRIVAL_SOURCE_H_

/// \file
/// Pull-based arrival cursor — the out-of-core generalisation of the
/// materialised GraphStream. An ArrivalSource yields vertex arrivals one at a
/// time as borrowed views, so the same consumer code (partitioners, the
/// restreamer, the serving ingest path, the bench harness) runs over an
/// in-memory vector, an mmap-backed stream file (graph/io.h) or a generator
/// that never materialises the graph at all (graph/generators.h). `Reset()`
/// rewinds for multi-pass replay; a source is required to reproduce the
/// identical arrival sequence after a rewind, which is what makes
/// restreaming and keep-best comparisons meaningful.

#include <cstdint>

#include "common/span.h"
#include "graph/graph.h"
#include "stream/stream.h"

namespace loom {

/// One arrival as a borrowed view: valid only until the producing source is
/// advanced (`Next`), rewound (`Reset`) or destroyed. Copy the data out if it
/// must outlive the cursor step (see MaterializeStream).
struct ArrivalView {
  VertexId vertex = kInvalidVertex;
  Label label = 0;
  /// Neighbours of `vertex` that arrived strictly earlier, in stream order.
  /// Replay sources (restreaming) may instead carry the *full* neighbourhood;
  /// consumers score unknown neighbours through the prior either way.
  Span<const VertexId> back_edges;
};

/// Forward cursor over vertex arrivals. Single-consumer; not thread-safe.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Advances to the next arrival. Returns false at end of stream, leaving
  /// `*out` untouched; `out` must be non-null. The view written to `*out`
  /// stays valid until the next Next/Reset call on this source.
  virtual bool Next(ArrivalView* out) = 0;

  /// Rewinds to the first arrival; the replayed sequence is identical to the
  /// one already consumed (deterministic sources re-derive it from the seed).
  virtual void Reset() = 0;

  /// Total arrivals this source yields between Reset and end-of-stream.
  virtual uint64_t NumVertices() const = 0;

  /// Total distinct edges carried by the stream, or an estimate for
  /// generators that only know it in expectation (see the implementation's
  /// contract). Used to size Fennel's alpha and file headers, never for
  /// iteration bounds.
  virtual uint64_t NumEdges() const = 0;
};

/// Cursor over a borrowed in-memory GraphStream (must outlive the cursor).
/// Views alias the stream's own vectors, so they are stable across Next —
/// but consumers must not rely on that: other sources invalidate eagerly.
class StreamCursor : public ArrivalSource {
 public:
  explicit StreamCursor(const GraphStream& stream) : stream_(&stream) {}

  bool Next(ArrivalView* out) override;
  void Reset() override { pos_ = 0; }
  uint64_t NumVertices() const override { return stream_->NumVertices(); }
  uint64_t NumEdges() const override { return stream_->NumEdges(); }

 private:
  const GraphStream* stream_;
  size_t pos_ = 0;
};

/// Drains `source` (from its current position) into an owning GraphStream —
/// the bridge back to consumers that genuinely need random access. This is
/// the O(E)-memory operation the cursor refactor exists to avoid; call sites
/// are expected to be small streams (tests, sharded replay construction).
GraphStream MaterializeStream(ArrivalSource& source);

}  // namespace loom

#endif  // LOOM_STREAM_ARRIVAL_SOURCE_H_
