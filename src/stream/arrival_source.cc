#include "stream/arrival_source.h"

namespace loom {

bool StreamCursor::Next(ArrivalView* out) {
  const std::vector<VertexArrival>& arrivals = stream_->arrivals();
  if (pos_ >= arrivals.size()) return false;
  const VertexArrival& a = arrivals[pos_++];
  out->vertex = a.vertex;
  out->label = a.label;
  out->back_edges = Span<const VertexId>(a.back_edges.data(),
                                         a.back_edges.size());
  return true;
}

GraphStream MaterializeStream(ArrivalSource& source) {
  GraphStream stream;
  ArrivalView view;
  while (source.Next(&view)) {
    VertexArrival arrival;
    arrival.vertex = view.vertex;
    arrival.label = view.label;
    arrival.back_edges.assign(view.back_edges.begin(), view.back_edges.end());
    stream.Append(std::move(arrival));
  }
  return stream;
}

}  // namespace loom
