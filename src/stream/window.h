#ifndef LOOM_STREAM_WINDOW_H_
#define LOOM_STREAM_WINDOW_H_

/// \file
/// The buffered sliding window over a graph-stream (§4.1): LOOM "buffers a
/// sliding window over a graph-stream" and assigns vertices (or whole motif
/// matches) as they are evicted. The window tracks, per member vertex, every
/// edge observed while the vertex is buffered — both to other window members
/// and to vertices that have already left (and are therefore partitioned).

#include <cstdint>
#include <vector>

#include "common/ring_buffer.h"
#include "common/small_vector.h"
#include "common/span.h"
#include "graph/graph.h"

namespace loom {

/// A vertex buffered in the stream window, with all adjacency seen so far.
struct WindowMember {
  VertexId id = kInvalidVertex;
  Label label = 0;
  /// Monotone arrival sequence number (global over the stream).
  uint64_t arrival_seq = 0;
  /// Every neighbour observed while buffered: back-edges carried by this
  /// vertex's arrival plus edges carried by later arrivals pointing at it.
  /// Inline storage covers the typical (small-median-degree) case.
  SmallVector<VertexId, 8> neighbors;
};

/// Count-bounded sliding window over vertex arrivals.
///
/// `Push` never evicts by itself: the owner (a buffered partitioner) checks
/// `Full()` and calls `PopOldest()` / `Remove()` so that motif matches can
/// leave the window as a unit (paper §4.4).
class StreamWindow {
 public:
  /// \param capacity maximum number of buffered vertices (>= 1).
  explicit StreamWindow(size_t capacity);

  /// Buffers an arriving vertex and records its back edges. Must not be
  /// called while `Full()`. `record_reverse` controls whether the edge is
  /// also appended to buffered neighbours' lists: pass false when arrivals
  /// already carry the complete neighbourhood (restream passes ≥ 2), where
  /// the reverse record would duplicate every window-internal edge.
  /// Returns the arena slot the member occupies (stable until removal).
  uint32_t Push(VertexId v, Label label, Span<const VertexId> back_edges,
                bool record_reverse = true);

  bool Full() const { return size_ >= capacity_; }
  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }
  size_t Capacity() const { return capacity_; }

  bool Contains(VertexId v) const {
    return v < slot_of_.size() && slot_of_[v] >= 0;
  }

  /// Arena slot of a buffered vertex, or -1. Slots are stable while the
  /// member is buffered, so owners can key side tables by slot instead of
  /// re-hashing vertex ids.
  int32_t SlotOf(VertexId v) const {
    return v < slot_of_.size() ? slot_of_[v] : -1;
  }

  /// Read access to a member by its (valid) arena slot.
  const WindowMember& MemberAtSlot(uint32_t slot) const {
    return arena_[slot];
  }

  /// The buffered vertex with the smallest arrival sequence.
  VertexId Oldest() const;

  /// Removes and returns the oldest member.
  WindowMember PopOldest();

  /// Removes and returns an arbitrary member (used when a whole motif match
  /// is assigned early). `slot_out`, when non-null, receives the arena slot
  /// the member occupied, so owners can retire slot-keyed side state without
  /// a second lookup.
  WindowMember Remove(VertexId v, uint32_t* slot_out = nullptr);

  /// Read access to a buffered member.
  const WindowMember& Get(VertexId v) const;

  /// Member ids in arrival order (oldest first).
  std::vector<VertexId> MembersInOrder() const;

 private:
  size_t capacity_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
  /// Members live in fixed arena slots (index = slot id) so that index churn
  /// never moves a WindowMember. (A removed member is moved out to the
  /// caller, so a spilled neighbour list leaves with it — typical members
  /// stay inline and recycle allocation-free.)
  std::vector<WindowMember> arena_;
  std::vector<uint32_t> free_slots_;
  /// Direct-mapped index: slot of vertex id, -1 when not buffered. Vertex
  /// ids are dense (the same contract PartitionAssignment relies on), so a
  /// flat array turns every membership probe into one cache line read —
  /// this is the window's hottest operation by far.
  std::vector<int32_t> slot_of_;
  /// Arrival order with lazy deletion (entries may refer to removed members).
  RingBuffer<VertexId> age_queue_;

  void CompactFront();
};

}  // namespace loom

#endif  // LOOM_STREAM_WINDOW_H_
