#ifndef LOOM_STREAM_CLUSTER_LOG_H_
#define LOOM_STREAM_CLUSTER_LOG_H_

/// \file
/// Cluster memoization for restream passes.
///
/// A LOOM pass assigns the stream as a sequence of *units*: single vertices
/// and motif-match clusters (pre-split — the capacity-driven split is a
/// placement decision, not part of the decomposition). The ClusterLog is the
/// record of that decomposition, in assignment order; a ClusterMemo indexes
/// a log so the next pass can recall each vertex's unit in O(1).
///
/// A memoized restream pass replays the previous pass's units as pre-grouped
/// arrival blocks and scores each recalled unit directly through the
/// prior-aware blocked kernel — the window/matcher pipeline is skipped
/// entirely for vertices whose cluster membership is unchanged. Correctness
/// gate: a unit is invalidated (and its members fall back to the full
/// pipeline) when any member's label or neighbourhood differs from the
/// recorded pass, detected by a per-member fingerprint.
///
/// Fingerprints are only complete when the recording pass saw full
/// neighbourhoods (restream passes, which carry the whole adjacency per
/// arrival); a pass-one log records back-edge-only views, so its
/// fingerprints are omitted and a memo built from it skips validation —
/// safe exactly when the same stream is replayed (the multi-pass
/// Restreamer::Run case), which is also the case the golden-hash
/// equivalence tests pin down.

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "graph/graph.h"

namespace loom {

/// Append-only record of the units one pass assigned, in assignment order.
class ClusterLog {
 public:
  /// Drops all units and starts a new recording.
  /// \param fingerprints_complete true when the pass being recorded sees
  ///   full neighbourhoods per arrival (passes with a prior).
  void Reset(bool fingerprints_complete);

  /// Appends a member to the unit currently being recorded.
  /// \param fingerprint member fingerprint (see Fingerprint); ignored when
  ///   the log was Reset without complete fingerprints.
  void AddMember(VertexId v, uint64_t fingerprint);
  /// Seals the current unit (all members since the previous CommitUnit);
  /// a commit with no new members is a no-op.
  void CommitUnit();

  size_t NumUnits() const { return unit_offsets_.size() - 1; }
  size_t NumMembers() const { return members_.size(); }

  /// Members of `unit` in the order the pass scored them (first member =
  /// the evicted vertex for clusters).
  Span<const VertexId> MembersOf(uint32_t unit) const {
    return Span<const VertexId>(members_.data() + unit_offsets_[unit],
                                unit_offsets_[unit + 1] - unit_offsets_[unit]);
  }

  /// Per-member fingerprints parallel to MembersOf; empty when the log was
  /// recorded without complete fingerprints.
  Span<const uint64_t> FingerprintsOf(uint32_t unit) const {
    if (!fingerprints_complete_) return Span<const uint64_t>();
    return Span<const uint64_t>(
        fingerprints_.data() + unit_offsets_[unit],
        unit_offsets_[unit + 1] - unit_offsets_[unit]);
  }

  bool fingerprints_complete() const { return fingerprints_complete_; }

  /// One past the largest member id (bound for memo index sizing).
  VertexId IdBound() const { return id_bound_; }

  /// Order-independent hash of a vertex's scoring-relevant state: its label
  /// and its neighbour multiset (plus the degree). Never 0, so 0 can mean
  /// "no fingerprint". Commutative over neighbours: the recording pass sees
  /// window adjacency order, the validating pass sees arrival order.
  static uint64_t Fingerprint(Label label, Span<const VertexId> neighbors);

 private:
  bool fingerprints_complete_ = false;
  VertexId id_bound_ = 0;
  std::vector<VertexId> members_;
  /// Parallel to members_; only populated when fingerprints_complete_.
  std::vector<uint64_t> fingerprints_;
  /// CSR-style unit boundaries: unit u = members_[offsets[u], offsets[u+1]).
  std::vector<uint32_t> unit_offsets_{0};
};

/// O(1) vertex -> unit recall over a borrowed ClusterLog (which must outlive
/// the memo and any partitioner it is installed into).
class ClusterMemo {
 public:
  ClusterMemo() = default;
  explicit ClusterMemo(const ClusterLog* log);

  /// Unit the recorded pass assigned `v` in, or -1 when unrecorded.
  int32_t UnitOf(VertexId v) const {
    return v < unit_of_.size() ? unit_of_[v] : -1;
  }

  const ClusterLog& log() const { return *log_; }

  /// True when recalled units must be fingerprint-validated member by
  /// member (the log carries complete fingerprints).
  bool validate() const { return log_->fingerprints_complete(); }

 private:
  const ClusterLog* log_ = nullptr;
  std::vector<int32_t> unit_of_;
};

/// Reorders `perm` so every memoized unit's members arrive consecutively, in
/// recorded unit order, hoisted to the position of the unit's first member
/// in `perm`. Vertices outside any unit keep their relative order. This is
/// the arrival order a memoized pass needs: a unit can be scored and
/// assigned the moment its last member arrives, with at most one unit
/// buffered at any time.
std::vector<VertexId> GroupPermByUnits(const std::vector<VertexId>& perm,
                                       const ClusterMemo& memo);

}  // namespace loom

#endif  // LOOM_STREAM_CLUSTER_LOG_H_
