// Tests for the k-way assignment state and capacity accounting.

#include <gtest/gtest.h>

#include "partition/partition_state.h"
#include "partition/partitioner.h"

namespace loom {
namespace {

TEST(PartitionStateTest, AssignAndLookup) {
  PartitionAssignment a(4, 10);
  EXPECT_EQ(a.PartOf(3), -1);
  ASSERT_TRUE(a.Assign(3, 2).ok());
  EXPECT_EQ(a.PartOf(3), 2);
  EXPECT_TRUE(a.IsAssigned(3));
  EXPECT_EQ(a.NumAssigned(), 1u);
  EXPECT_EQ(a.Sizes()[2], 1u);
}

TEST(PartitionStateTest, RejectsDoubleAssignment) {
  PartitionAssignment a(2, 10);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  EXPECT_EQ(a.Assign(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(a.PartOf(0), 0);
}

TEST(PartitionStateTest, RejectsBadPartition) {
  PartitionAssignment a(2, 10);
  EXPECT_EQ(a.Assign(0, 2).code(), StatusCode::kInvalidArgument);
}

TEST(PartitionStateTest, EnforcesCapacity) {
  PartitionAssignment a(2, 2);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 0).ok());
  EXPECT_EQ(a.Assign(2, 0).code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(a.FreeCapacity(0), 0u);
  EXPECT_EQ(a.FreeCapacity(1), 2u);
}

TEST(PartitionStateTest, ZeroCapacityMeansUnconstrained) {
  PartitionAssignment a(2, 0);
  for (VertexId v = 0; v < 100; ++v) {
    ASSERT_TRUE(a.Assign(v, 0).ok());
  }
  EXPECT_GT(a.FreeCapacity(0), 1u << 20);
}

TEST(PartitionStateTest, SmallestPartition) {
  PartitionAssignment a(3, 10);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 0).ok());
  ASSERT_TRUE(a.Assign(2, 2).ok());
  EXPECT_EQ(a.SmallestPartition(), 1u);
}

TEST(PartitionStateTest, UnknownVertexUnassigned) {
  PartitionAssignment a(2, 10);
  EXPECT_EQ(a.PartOf(12345), -1);
}

TEST(ComputeCapacityTest, Formula) {
  // C = ceil(slack * n / k).
  EXPECT_EQ(ComputeCapacity(4, 100, 1.0), 25u);
  EXPECT_EQ(ComputeCapacity(4, 100, 1.1), 28u);
  EXPECT_EQ(ComputeCapacity(3, 10, 1.0), 4u);
  EXPECT_EQ(ComputeCapacity(8, 0, 1.0), 0u);  // unknown n -> unconstrained
  EXPECT_GE(ComputeCapacity(1000, 10, 1.0), 1u);
}

TEST(PickLdgPartitionTest, PrefersMostEdges) {
  PartitionAssignment a(3, 100);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 1).ok());
  // 2 edges to partition 1, 1 edge to partition 0.
  EXPECT_EQ(PickLdgPartition(a, {1, 2, 0}), 1u);
}

TEST(PickLdgPartitionTest, CapacityPenaltyFlipsChoice) {
  // Partition 0 has 9 of 10 slots used; partition 1 empty. 3 edges to p0 vs
  // 2 to p1: scores 3 * (1 - 0.9) = 0.3 vs 2 * 1.0 = 2.0 -> p1.
  PartitionAssignment a(2, 10);
  for (VertexId v = 0; v < 9; ++v) ASSERT_TRUE(a.Assign(v, 0).ok());
  EXPECT_EQ(PickLdgPartition(a, {3, 2}), 1u);
}

TEST(PickLdgPartitionTest, AllZeroFallsBackToLeastLoaded) {
  PartitionAssignment a(3, 100);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 0).ok());
  ASSERT_TRUE(a.Assign(2, 1).ok());
  EXPECT_EQ(PickLdgPartition(a, {0, 0, 0}), 2u);
}

TEST(PickLdgPartitionTest, SkipsFullPartitions) {
  PartitionAssignment a(2, 2);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 0).ok());  // p0 full
  EXPECT_EQ(PickLdgPartition(a, {5, 0}), 1u);
}

TEST(PickLdgPartitionTest, RespectsClusterNeed) {
  PartitionAssignment a(2, 4);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 0).ok());
  ASSERT_TRUE(a.Assign(2, 0).ok());  // p0 has 1 free slot
  // Cluster of 3 only fits p1 even though p0 has more edges.
  EXPECT_EQ(PickLdgPartition(a, {9, 1}, 3), 1u);
}

TEST(PickLdgPartitionTest, ReturnsKWhenNothingFits) {
  PartitionAssignment a(2, 1);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 1).ok());
  EXPECT_EQ(PickLdgPartition(a, {1, 1}), 2u);
}

}  // namespace
}  // namespace loom
