// Cursor-layer tests for the out-of-core refactor: StreamCursor replay,
// generator-source determinism across Reset, and the headline equivalence
// guarantee — every partitioner produces bit-identical assignments whether
// it consumes an in-memory GraphStream or an mmap-backed stream file. Also
// pins the Restreamer's materialization budget: a 3-pass materialized run
// builds the graph exactly once, an out-of-core run never does.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/loom.h"
#include "core/partitioner_factory.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "restream/restreamer.h"
#include "stream/arrival_source.h"
#include "stream/stream.h"
#include "workload/workload_gen.h"

namespace loom {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

GraphStream MakeTestStream(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  LabeledGraph g = BarabasiAlbert(n, 4, LabelConfig{4, 0.3}, rng);
  return MakeStream(g, StreamOrder::kRandom, rng);
}

void ExpectSameArrival(const VertexArrival& a, const VertexArrival& b) {
  EXPECT_EQ(a.vertex, b.vertex);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.back_edges, b.back_edges);
}

void ExpectSameStream(const GraphStream& a, const GraphStream& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (size_t i = 0; i < a.arrivals().size(); ++i) {
    ExpectSameArrival(a.arrivals()[i], b.arrivals()[i]);
  }
}

TEST(ArrivalSourceTest, StreamCursorReplaysTheStreamExactly) {
  const GraphStream stream = MakeTestStream(200, 7);
  StreamCursor cursor(stream);
  EXPECT_EQ(cursor.NumVertices(), stream.NumVertices());
  EXPECT_EQ(cursor.NumEdges(), stream.NumEdges());

  for (int pass = 0; pass < 2; ++pass) {
    cursor.Reset();
    ArrivalView view;
    for (const VertexArrival& expected : stream.arrivals()) {
      ASSERT_TRUE(cursor.Next(&view));
      EXPECT_EQ(view.vertex, expected.vertex);
      EXPECT_EQ(view.label, expected.label);
      ASSERT_EQ(view.back_edges.size(), expected.back_edges.size());
      for (size_t i = 0; i < expected.back_edges.size(); ++i) {
        EXPECT_EQ(view.back_edges[i], expected.back_edges[i]);
      }
    }
    EXPECT_FALSE(cursor.Next(&view));
  }

  cursor.Reset();
  ExpectSameStream(MaterializeStream(cursor), stream);
}

TEST(ArrivalSourceTest, GeneratorSourcesAreDeterministic) {
  // Each streaming generator must replay the identical sequence after
  // Reset, and two instances built from the same seed must agree — that is
  // what makes generator-fed restreaming and benches reproducible.
  ErdosRenyiArrivalSource er(2000, 0.004, LabelConfig{4, 0.3}, 99);
  BarabasiAlbertArrivalSource ba(2000, 4, LabelConfig{4, 0.3}, 99);
  ErdosRenyiArrivalSource er_twin(2000, 0.004, LabelConfig{4, 0.3}, 99);
  BarabasiAlbertArrivalSource ba_twin(2000, 4, LabelConfig{4, 0.3}, 99);

  const auto check = [](ArrivalSource& source, ArrivalSource& twin) {
    const GraphStream first = MaterializeStream(source);
    EXPECT_EQ(first.NumVertices(), source.NumVertices());
    source.Reset();
    ExpectSameStream(MaterializeStream(source), first);
    ExpectSameStream(MaterializeStream(twin), first);
    EXPECT_GT(first.NumEdges(), 0u);
  };
  check(er, er_twin);
  check(ba, ba_twin);
}

TEST(ArrivalSourceTest, FileBackedEqualsInMemoryForEveryPartitioner) {
  // The acceptance bar for the stream-file format: swapping the materialized
  // GraphStream for the mmap-backed cursor must not move a single vertex,
  // for any partitioner — including LOOM's windowed motif pipeline.
  const GraphStream stream = MakeTestStream(1500, 8);
  const std::string path = TempPath("loom_equiv_source.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());
  auto file = FileArrivalSource::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  const Workload workload = MixedMotifWorkload(wopts);
  auto trie = BuildTrie(workload);
  ASSERT_TRUE(trie.ok());

  LoomOptions lopts;
  lopts.partitioner.k = 8;
  lopts.partitioner.num_vertices_hint = stream.NumVertices();
  lopts.partitioner.num_edges_hint = stream.NumEdges();
  lopts.partitioner.window_size = 128;
  lopts.matcher.frequency_threshold = 0.2;

  for (const std::string& name : KnownPartitioners()) {
    auto from_stream = MakePartitioner(name, lopts, trie->get());
    auto from_file = MakePartitioner(name, lopts, trie->get());
    ASSERT_TRUE(from_stream.ok() && from_file.ok()) << name;

    (*from_stream)->Run(stream);
    (*from_file)->Run(**file);

    const PartitionAssignment& a = (*from_stream)->assignment();
    const PartitionAssignment& b = (*from_file)->assignment();
    ASSERT_EQ(a.NumAssigned(), b.NumAssigned()) << name;
    for (VertexId v = 0; v < stream.NumVertices(); ++v) {
      ASSERT_EQ(a.PartOf(v), b.PartOf(v)) << name << " vertex " << v;
    }
    (*file)->Reset();
  }
  std::remove(path.c_str());
}

TEST(ArrivalSourceTest, OutOfCoreRestreamMatchesMaterialized) {
  // Same passes, same orderings, same placements — the file-backed
  // Restreamer is a memory optimisation, not a different algorithm. Also
  // pins the materialization budget on both sides: the materialized driver
  // builds its graph exactly once for a full serial 3-pass run, the
  // out-of-core driver never builds it at all.
  const GraphStream stream = MakeTestStream(1200, 9);
  const std::string path = TempPath("loom_equiv_restream.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());
  auto file = FileArrivalSource::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  PartitionerOptions popts;
  popts.k = 8;
  popts.num_vertices_hint = stream.NumVertices();
  popts.num_edges_hint = stream.NumEdges();

  for (const RestreamOrder order :
       {RestreamOrder::kOriginal, RestreamOrder::kGain,
        RestreamOrder::kAmbivalence}) {
    RestreamOptions ropts;
    ropts.num_passes = 3;
    ropts.order = order;

    const Restreamer materialized(stream, ropts);
    auto p1 = MakePartitioner("ldg", popts);
    ASSERT_TRUE(p1.ok());
    const RestreamResult want = materialized.Run(p1->get());
    EXPECT_EQ(materialized.materializations(), 1u);

    const Restreamer out_of_core(file->get(), ropts);
    auto p2 = MakePartitioner("ldg", popts);
    ASSERT_TRUE(p2.ok());
    const RestreamResult got = out_of_core.Run(p2->get());
    EXPECT_EQ(out_of_core.materializations(), 0u);

    ASSERT_EQ(want.passes.size(), got.passes.size());
    for (size_t i = 0; i < want.passes.size(); ++i) {
      EXPECT_DOUBLE_EQ(want.passes[i].edge_cut_fraction,
                       got.passes[i].edge_cut_fraction);
      EXPECT_DOUBLE_EQ(want.passes[i].migration_fraction,
                       got.passes[i].migration_fraction);
    }
    EXPECT_DOUBLE_EQ(want.edge_cut_fraction, got.edge_cut_fraction);
    for (VertexId v = 0; v < stream.NumVertices(); ++v) {
      ASSERT_EQ(want.assignment.PartOf(v), got.assignment.PartOf(v))
          << "order " << static_cast<int>(order) << " vertex " << v;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace loom
