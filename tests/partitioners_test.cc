// Tests for the streaming partitioners: hash, LDG, Fennel, buffered LDG.
// Includes hand-computed LDG fixtures and cross-partitioner property sweeps.

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/buffered_ldg_partitioner.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream.h"

namespace loom {
namespace {

PartitionerOptions Opts(uint32_t k, size_t n, size_t m = 0,
                        double slack = 1.1, size_t window = 16) {
  PartitionerOptions o;
  o.k = k;
  o.num_vertices_hint = n;
  o.num_edges_hint = m;
  o.capacity_slack = slack;
  o.window_size = window;
  return o;
}

TEST(HashPartitionerTest, DeterministicAndComplete) {
  Rng rng(1);
  const LabeledGraph g = ErdosRenyiGnm(500, 1500, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  HashPartitioner p1(Opts(4, g.NumVertices()));
  HashPartitioner p2(Opts(4, g.NumVertices()));
  p1.Run(stream);
  p2.Run(stream);
  EXPECT_TRUE(AllAssigned(g, p1.assignment()));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(p1.assignment().PartOf(v), p2.assignment().PartOf(v));
  }
}

TEST(HashPartitionerTest, RoughlyBalancedWithoutCapacityPressure) {
  Rng rng(2);
  const LabeledGraph g = ErdosRenyiGnm(4000, 8000, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  HashPartitioner p(Opts(8, g.NumVertices()));
  p.Run(stream);
  EXPECT_LT(BalanceMaxOverAvg(p.assignment()), 1.1);
}

TEST(LdgPartitionerTest, HandComputedPlacement) {
  // Stream: v0, v1 (edge to v0), v2 (edge to v0), k=2, C=2 (n=4, slack=1).
  // v0 -> scores all 0 -> least loaded = p0.
  // v1 -> 1 edge to p0, p0 size 1: score 1*(1-1/2)=0.5 vs p1 0 -> p0.
  // v2 -> 1 edge to p0 but p0 FULL -> p1.
  // v3 (edge to v2) -> p1 has 1 edge, score 1*(1-1/2)=0.5 -> p1.
  LabeledGraph g;
  for (int i = 0; i < 4; ++i) g.AddVertex(0);
  g.AddEdgeUnchecked(0, 1);
  g.AddEdgeUnchecked(0, 2);
  g.AddEdgeUnchecked(2, 3);
  const GraphStream stream = MakeStreamFromOrder(g, {0, 1, 2, 3});
  LdgPartitioner p(Opts(2, 4, 0, 1.0));
  p.Run(stream);
  EXPECT_EQ(p.assignment().PartOf(0), 0);
  EXPECT_EQ(p.assignment().PartOf(1), 0);
  EXPECT_EQ(p.assignment().PartOf(2), 1);
  EXPECT_EQ(p.assignment().PartOf(3), 1);
}

TEST(LdgPartitionerTest, KeepsCliquesTogetherGivenRoom) {
  // Two 5-cliques joined by one edge, streamed clique by clique: LDG should
  // put each clique into one partition.
  Rng rng(3);
  LabeledGraph g;
  for (int i = 0; i < 10; ++i) g.AddVertex(0);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) g.AddEdgeUnchecked(u, v);
  }
  for (VertexId u = 5; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) g.AddEdgeUnchecked(u, v);
  }
  g.AddEdgeUnchecked(4, 5);
  const GraphStream stream =
      MakeStreamFromOrder(g, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  LdgPartitioner p(Opts(2, 10, 0, 1.0));
  p.Run(stream);
  const auto& a = p.assignment();
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(a.PartOf(v), a.PartOf(0));
  for (VertexId v = 6; v < 10; ++v) EXPECT_EQ(a.PartOf(v), a.PartOf(5));
  EXPECT_EQ(NumCutEdges(g, a), 1u);
}

TEST(FennelPartitionerTest, AlphaMatchesFormula) {
  // alpha = m * k^(gamma-1) / n^gamma with gamma = 1.5.
  FennelPartitioner p(Opts(4, 10000, 50000));
  EXPECT_NEAR(p.alpha(), 50000.0 * 2.0 / 1e6, 1e-9);
  EXPECT_DOUBLE_EQ(p.gamma(), 1.5);
}

TEST(FennelPartitionerTest, EmptyGraphNoNeighborsBalances) {
  LabeledGraph g;
  for (int i = 0; i < 100; ++i) g.AddVertex(0);
  Rng rng(4);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  FennelPartitioner p(Opts(4, 100, 0));
  p.Run(stream);
  for (const uint32_t size : p.assignment().Sizes()) {
    EXPECT_EQ(size, 25u);
  }
}

TEST(BufferedLdgTest, DrainsWindowOnFinish) {
  Rng rng(5);
  const LabeledGraph g = ErdosRenyiGnm(64, 128, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  BufferedLdgPartitioner p(Opts(4, 64, 0, 1.1, /*window=*/256));
  // Window larger than the graph: nothing assigned until Finish.
  for (const auto& a : stream.arrivals()) {
    p.OnVertex(a.vertex, a.label, a.back_edges);
  }
  EXPECT_EQ(p.assignment().NumAssigned(), 0u);
  p.Finish();
  EXPECT_TRUE(AllAssigned(g, p.assignment()));
}

TEST(BufferedLdgTest, EquivalentToLdgUnderFifoEviction) {
  // Under strict FIFO eviction the evicted vertex's known assigned
  // neighbours equal its back edges, so buffered LDG must reproduce LDG
  // exactly. This pins down why LOOM's motif grouping — not buffering — is
  // the active ingredient (ablation E8a).
  Rng rng(6);
  const LabeledGraph g = BarabasiAlbert(500, 3, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  LdgPartitioner ldg(Opts(4, g.NumVertices()));
  BufferedLdgPartitioner buffered(Opts(4, g.NumVertices()));
  ldg.Run(stream);
  buffered.Run(stream);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(ldg.assignment().PartOf(v), buffered.assignment().PartOf(v));
  }
}

// Cross-partitioner properties, swept over partitioner type, k and order.
enum class Kind { kHash, kLdg, kFennel, kBufferedLdg };

std::unique_ptr<StreamingPartitioner> Make(Kind kind,
                                           const PartitionerOptions& o) {
  switch (kind) {
    case Kind::kHash:
      return std::make_unique<HashPartitioner>(o);
    case Kind::kLdg:
      return std::make_unique<LdgPartitioner>(o);
    case Kind::kFennel:
      return std::make_unique<FennelPartitioner>(o);
    case Kind::kBufferedLdg:
      return std::make_unique<BufferedLdgPartitioner>(o);
  }
  return nullptr;
}

class PartitionerProperty
    : public ::testing::TestWithParam<
          std::tuple<Kind, uint32_t, StreamOrder>> {};

TEST_P(PartitionerProperty, CompleteBalancedAssignment) {
  const auto [kind, k, order] = GetParam();
  Rng rng(99);
  const LabeledGraph g = BarabasiAlbert(600, 3, LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, order, rng);
  auto p = Make(kind, Opts(k, g.NumVertices(), g.NumEdges()));
  p->Run(stream);
  // Every vertex assigned exactly once.
  EXPECT_TRUE(AllAssigned(g, p->assignment()));
  EXPECT_EQ(p->assignment().NumAssigned(), g.NumVertices());
  // Capacity constraint respected: max load <= ceil(1.1 n/k).
  const size_t cap = ComputeCapacity(k, g.NumVertices(), 1.1);
  for (const uint32_t size : p->assignment().Sizes()) {
    EXPECT_LE(size, cap);
  }
}

TEST_P(PartitionerProperty, NeighborAwareBeatsHashOnCut) {
  const auto [kind, k, order] = GetParam();
  if (kind == Kind::kHash) GTEST_SKIP() << "hash is the baseline";
  if (order == StreamOrder::kAdversarial) {
    GTEST_SKIP() << "adversarial order voids greedy guarantees (§3.1)";
  }
  Rng rng(7);
  const LabeledGraph g = WattsStrogatz(800, 4, 0.05, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, order, rng);
  auto p = Make(kind, Opts(k, g.NumVertices(), g.NumEdges()));
  auto h = Make(Kind::kHash, Opts(k, g.NumVertices(), g.NumEdges()));
  p->Run(stream);
  h->Run(stream);
  EXPECT_LT(EdgeCutFraction(g, p->assignment()),
            EdgeCutFraction(g, h->assignment()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionerProperty,
    ::testing::Combine(
        ::testing::Values(Kind::kHash, Kind::kLdg, Kind::kFennel,
                          Kind::kBufferedLdg),
        ::testing::Values(2u, 4u, 8u),
        ::testing::Values(StreamOrder::kRandom, StreamOrder::kBfs,
                          StreamOrder::kAdversarial)));

// ---------------------------------------------------------------------------
// Capacity exhaustion. The seed code guarded the "all partitions full" path
// with a bare assert and discarded the Assign status, silently dropping
// vertices under NDEBUG; these suites pin the repaired contract: every
// streamed vertex is assigned in every build mode, the fallback is the
// most-free partition, and overflow is visible in stats() instead of fatal.
// ---------------------------------------------------------------------------

class CapacityExhaustion
    : public ::testing::TestWithParam<std::tuple<Kind, uint32_t>> {};

TEST_P(CapacityExhaustion, TightCapacityAssignsEveryVertex) {
  // n == k*C exactly (slack 1.0): the heuristics must fill to the brim
  // without ever needing a forced placement.
  const auto [kind, k] = GetParam();
  Rng rng(31);
  const uint32_t n = 24 * k;
  const LabeledGraph g = ErdosRenyiGnm(n, 3 * n, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  auto p = Make(kind, Opts(k, n, g.NumEdges(), /*slack=*/1.0));
  p->Run(stream);
  EXPECT_EQ(p->assignment().NumAssigned(), n);
  EXPECT_TRUE(AllAssigned(g, p->assignment()));
  EXPECT_EQ(p->stats().forced_placements, 0u);
  EXPECT_EQ(p->stats().assign_errors, 0u);
  for (const uint32_t size : p->assignment().Sizes()) EXPECT_EQ(size, 24u);
}

TEST_P(CapacityExhaustion, OverfullStreamNeverDropsVertices) {
  // The stream carries twice the hinted vertex count, so k*C < n: the seed
  // code dropped the excess under NDEBUG (and assert-crashed in Debug).
  const auto [kind, k] = GetParam();
  Rng rng(32);
  const uint32_t n = 40 * k;
  const LabeledGraph g = ErdosRenyiGnm(n, 3 * n, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  auto p = Make(kind, Opts(k, n / 2, g.NumEdges(), /*slack=*/1.0));
  const size_t cap = ComputeCapacity(k, n / 2, 1.0);
  ASSERT_LT(cap * k, n);
  p->Run(stream);
  EXPECT_EQ(p->assignment().NumAssigned(), n);
  EXPECT_TRUE(AllAssigned(g, p->assignment()));
  EXPECT_EQ(p->stats().assign_errors, 0u);
  // The overflow is reported, not silent...
  EXPECT_GE(p->stats().forced_placements, n - cap * k);
  EXPECT_EQ(p->assignment().NumOverflowed(), p->stats().forced_placements);
  // ...and the least-loaded fallback keeps the excess evenly spread.
  EXPECT_LE(BalanceMaxOverAvg(p->assignment()), 1.1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CapacityExhaustion,
    ::testing::Combine(::testing::Values(Kind::kHash, Kind::kLdg,
                                         Kind::kFennel, Kind::kBufferedLdg),
                       ::testing::Values(2u, 4u, 8u)));

}  // namespace
}  // namespace loom
