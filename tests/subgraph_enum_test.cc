// Tests for connected edge-subset enumeration (the Algorithm 1 substrate).

#include <gtest/gtest.h>

#include <set>

#include "motif/subgraph_enum.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

size_t CountSubgraphs(const LabeledGraph& g) {
  size_t count = 0;
  const Status s = EnumerateConnectedEdgeSubgraphs(
      g, [&](const std::vector<Edge>&) { ++count; });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return count;
}

TEST(SubgraphEnumTest, SingleEdge) {
  const LabeledGraph g = PathQuery({0, 1});
  EXPECT_EQ(CountSubgraphs(g), 1u);
}

TEST(SubgraphEnumTest, PathOfThree) {
  // Edges {e1}, {e2}, {e1,e2}: 3 connected subsets.
  const LabeledGraph g = PathQuery({0, 1, 2});
  EXPECT_EQ(CountSubgraphs(g), 3u);
}

TEST(SubgraphEnumTest, Triangle) {
  // 3 single edges + 3 two-edge paths + 1 triangle = 7.
  const LabeledGraph g = TriangleQuery(0, 1, 2);
  EXPECT_EQ(CountSubgraphs(g), 7u);
}

TEST(SubgraphEnumTest, StarOfThree) {
  // Any subset of a star's edges is connected: 2^3 - 1 = 7.
  const LabeledGraph g = StarQuery(0, {1, 2, 3});
  EXPECT_EQ(CountSubgraphs(g), 7u);
}

TEST(SubgraphEnumTest, FourCycle) {
  // 4 edges + 4 paths of 2 + 4 paths of 3 + 1 cycle = 13.
  const LabeledGraph g = PaperQ1();
  EXPECT_EQ(CountSubgraphs(g), 13u);
}

TEST(SubgraphEnumTest, DisconnectedSubsetsExcluded) {
  // Path of 4 vertices (3 edges): subsets {e1,e3} disconnected.
  // Connected: 3 singles, 2 pairs, 1 triple = 6 (not 7).
  const LabeledGraph g = PathQuery({0, 1, 2, 3});
  EXPECT_EQ(CountSubgraphs(g), 6u);
}

TEST(SubgraphEnumTest, EmittedSmallestFirst) {
  const LabeledGraph g = TriangleQuery(0, 1, 2);
  size_t last_size = 0;
  const Status s = EnumerateConnectedEdgeSubgraphs(
      g, [&](const std::vector<Edge>& edges) {
        EXPECT_GE(edges.size(), last_size);
        last_size = edges.size();
      });
  EXPECT_TRUE(s.ok());
}

TEST(SubgraphEnumTest, SubsetsAreDistinct) {
  const LabeledGraph g = PaperQ1();
  std::set<std::set<uint64_t>> seen;
  const Status s = EnumerateConnectedEdgeSubgraphs(
      g, [&](const std::vector<Edge>& edges) {
        std::set<uint64_t> key;
        for (const Edge& e : edges) {
          const Edge n = e.Normalized();
          key.insert((static_cast<uint64_t>(n.u) << 32) | n.v);
        }
        EXPECT_TRUE(seen.insert(key).second) << "duplicate subset";
      });
  EXPECT_TRUE(s.ok());
}

TEST(SubgraphEnumTest, EveryEmittedSubsetIsConnected) {
  const LabeledGraph g = CliqueQuery({0, 1, 2, 3});
  const Status s = EnumerateConnectedEdgeSubgraphs(
      g, [&](const std::vector<Edge>& edges) {
        EXPECT_TRUE(IsConnected(EdgeSubgraph(g, edges)));
      });
  EXPECT_TRUE(s.ok());
}

TEST(SubgraphEnumTest, K4Count) {
  // K4 has 6 edges; connected edge subsets: 6 + known count via brute-force
  // against the subgraph library's own IsConnected (consistency check).
  const LabeledGraph g = CliqueQuery({0, 1, 2, 3});
  size_t brute = 0;
  const auto edges = g.Edges();
  for (uint32_t mask = 1; mask < (1u << edges.size()); ++mask) {
    std::vector<Edge> subset;
    for (size_t i = 0; i < edges.size(); ++i) {
      if ((mask >> i) & 1u) subset.push_back(edges[i]);
    }
    if (IsConnected(EdgeSubgraph(g, subset))) ++brute;
  }
  EXPECT_EQ(CountSubgraphs(g), brute);
}

TEST(SubgraphEnumTest, RejectsOversizedQuery) {
  Rng rng(1);
  // 20 edges > kMaxQueryEdges.
  LabeledGraph big;
  for (int i = 0; i < 21; ++i) big.AddVertex(0);
  for (VertexId v = 0; v + 1 < 21; ++v) big.AddEdgeUnchecked(v, v + 1);
  ASSERT_GT(big.NumEdges(), kMaxQueryEdges);
  const Status s =
      EnumerateConnectedEdgeSubgraphs(big, [](const std::vector<Edge>&) {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace loom
