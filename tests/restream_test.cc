// Tests for the restreaming/repartitioning subsystem: replay-stream
// construction, ReLDG prior semantics, the anytime (monotone best-cut)
// contract over the benchmark graph families for ldg/fennel/loom, and
// migration-cost accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "restream/restreamer.h"
#include "stream/stream.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

PartitionerOptions Opts(uint32_t k, size_t n, size_t m = 0,
                        double slack = 1.1) {
  PartitionerOptions o;
  o.k = k;
  o.num_vertices_hint = n;
  o.num_edges_hint = m;
  o.capacity_slack = slack;
  return o;
}

TEST(GraphFromStreamTest, RoundTripsVerticesEdgesAndLabels) {
  Rng rng(11);
  const LabeledGraph g = ErdosRenyiGnm(200, 600, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const LabeledGraph back = GraphFromStream(stream);
  ASSERT_EQ(back.NumVertices(), g.NumVertices());
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(back.LabelOf(v), g.LabelOf(v));
  }
  g.ForEachEdge([&](VertexId u, VertexId v) {
    EXPECT_TRUE(back.HasEdge(u, v)) << u << "-" << v;
  });
}

TEST(RestreamerTest, ReplayStreamCarriesFullNeighborhoodsOncePerVertex) {
  Rng rng(12);
  const LabeledGraph g = BarabasiAlbert(300, 3, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const Restreamer restreamer(stream, RestreamOptions{});

  // A prior to prioritize against.
  LdgPartitioner ldg(Opts(4, g.NumVertices()));
  ldg.Run(stream);
  const PartitionAssignment prior = ldg.assignment();

  for (const RestreamOrder order :
       {RestreamOrder::kOriginal, RestreamOrder::kRandom, RestreamOrder::kGain,
        RestreamOrder::kAmbivalence}) {
    Rng order_rng(5);
    const GraphStream replay =
        restreamer.ReplayStream(order, prior, order_rng);
    ASSERT_EQ(replay.NumVertices(), g.NumVertices());
    std::set<VertexId> seen;
    size_t carried = 0;
    for (const VertexArrival& a : replay.arrivals()) {
      EXPECT_TRUE(seen.insert(a.vertex).second) << "duplicate arrival";
      EXPECT_EQ(a.back_edges.size(), g.Degree(a.vertex));
      carried += a.back_edges.size();
    }
    // Full neighbourhoods: every edge carried from both endpoints.
    EXPECT_EQ(carried, 2 * g.NumEdges());
  }
}

TEST(RestreamerTest, GainOrderingIsDeterministic) {
  Rng rng(13);
  const LabeledGraph g = WattsStrogatz(200, 3, 0.1, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const Restreamer restreamer(stream, RestreamOptions{});
  LdgPartitioner ldg(Opts(4, g.NumVertices()));
  ldg.Run(stream);
  Rng r1(1), r2(1);
  const GraphStream a =
      restreamer.ReplayStream(RestreamOrder::kGain, ldg.assignment(), r1);
  const GraphStream b =
      restreamer.ReplayStream(RestreamOrder::kGain, ldg.assignment(), r2);
  for (size_t i = 0; i < a.arrivals().size(); ++i) {
    EXPECT_EQ(a.arrivals()[i].vertex, b.arrivals()[i].vertex);
  }
}

// The heart of ReLDG: a neighbour not yet re-assigned this pass scores with
// its prior-pass partition, so placement follows last pass's neighbourhood.
TEST(RestreamerTest, PriorPartitionAttractsUnassignedNeighbors) {
  // k=2, vertices 0..3, single edge {0,1}. Prior: 1 and 3 in partition 1,
  // 2 in partition 0. Pass two streams 0 first with its full neighbourhood
  // {1}: without the prior the score is all-zero (least-loaded -> p0); with
  // the prior, 1's last-pass placement pulls 0 into p1.
  LabeledGraph g;
  for (int i = 0; i < 4; ++i) g.AddVertex(0);
  g.AddEdgeUnchecked(0, 1);

  PartitionAssignment prior(2, /*capacity=*/2);
  ASSERT_TRUE(prior.Assign(1, 1).ok());
  ASSERT_TRUE(prior.Assign(3, 1).ok());
  ASSERT_TRUE(prior.Assign(2, 0).ok());

  LdgPartitioner ldg(Opts(2, 4, 0, /*slack=*/1.0));
  ldg.BeginPass(&prior);
  ldg.OnVertex(0, 0, {1});
  EXPECT_EQ(ldg.assignment().PartOf(0), 1);
  ldg.ClearPrior();

  LdgPartitioner fresh(Opts(2, 4, 0, /*slack=*/1.0));
  fresh.OnVertex(0, 0, {1});
  EXPECT_EQ(fresh.assignment().PartOf(0), 0);
}

TEST(RestreamerTest, BeginPassResetsToSinglePassBehavior) {
  Rng rng(14);
  const LabeledGraph g = BarabasiAlbert(400, 3, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

  FennelPartitioner reused(Opts(4, g.NumVertices(), g.NumEdges()));
  reused.Run(stream);
  reused.BeginPass(nullptr);
  EXPECT_EQ(reused.assignment().NumAssigned(), 0u);
  EXPECT_EQ(reused.stats().overflow_fallbacks, 0u);
  reused.Run(stream);

  FennelPartitioner fresh(Opts(4, g.NumVertices(), g.NumEdges()));
  fresh.Run(stream);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(reused.assignment().PartOf(v), fresh.assignment().PartOf(v));
  }
}

// Anytime contract on the BENCH_edge_cut.json graph families: three passes
// never end above the single-pass cut, the best-cut trajectory is monotone
// non-increasing, every pass assigns every vertex within the capacity bound,
// and migration is a sane fraction.
class RestreamQuality
    : public ::testing::TestWithParam<std::tuple<int, RestreamOrder>> {};

LabeledGraph FamilyGraph(int family, Rng& rng) {
  return family == 0 ? ErdosRenyiGnm(1200, 4800, LabelConfig{4, 0.3}, rng)
                     : BarabasiAlbert(1200, 4, LabelConfig{4, 0.3}, rng);
}

void CheckRestream(const LabeledGraph& g, const GraphStream& stream,
                   StreamingPartitioner* p, RestreamOrder order) {
  const uint32_t k = p->options().k;
  RestreamOptions ropts;
  ropts.num_passes = 3;
  ropts.order = order;
  const Restreamer restreamer(stream, ropts);

  const RestreamResult r = restreamer.Run(p);
  ASSERT_EQ(r.passes.size(), 3u);

  const size_t cap = ComputeCapacity(k, g.NumVertices(), 1.1);
  double prev_best = 1.0;
  for (const RestreamPassStats& s : r.passes) {
    EXPECT_LE(s.best_edge_cut_fraction, prev_best) << "pass " << s.pass;
    prev_best = s.best_edge_cut_fraction;
    EXPECT_GE(s.migration_fraction, 0.0);
    EXPECT_LE(s.migration_fraction, 1.0);
    EXPECT_EQ(s.forced_placements, 0u) << "pass " << s.pass;
  }
  EXPECT_EQ(r.passes[0].migration_fraction, 0.0);

  // Final result: never above single-pass (pass 1) quality, every vertex
  // assigned, balance within the capacity bound.
  EXPECT_LE(r.edge_cut_fraction, r.passes[0].edge_cut_fraction);
  EXPECT_EQ(r.assignment.NumAssigned(), g.NumVertices());
  EXPECT_TRUE(AllAssigned(g, r.assignment));
  for (const uint32_t size : r.assignment.Sizes()) EXPECT_LE(size, cap);

  // The partitioner itself holds the last pass, also complete.
  EXPECT_EQ(p->assignment().NumAssigned(), g.NumVertices());
}

TEST_P(RestreamQuality, LdgImprovesOrEqual) {
  const auto [family, order] = GetParam();
  Rng rng(21);
  const LabeledGraph g = FamilyGraph(family, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  LdgPartitioner p(Opts(8, g.NumVertices(), g.NumEdges()));
  CheckRestream(g, stream, &p, order);
}

TEST_P(RestreamQuality, FennelImprovesOrEqual) {
  const auto [family, order] = GetParam();
  Rng rng(22);
  const LabeledGraph g = FamilyGraph(family, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  FennelPartitioner p(Opts(8, g.NumVertices(), g.NumEdges()));
  CheckRestream(g, stream, &p, order);
}

TEST_P(RestreamQuality, LoomImprovesOrEqual) {
  const auto [family, order] = GetParam();
  Rng rng(23);
  // Labels must stay inside the workload's label universe (3 labels here).
  LabeledGraph g =
      family == 0 ? ErdosRenyiGnm(1200, 4800, LabelConfig{3, 0.2}, rng)
                  : BarabasiAlbert(1200, 4, LabelConfig{3, 0.2}, rng);
  PlantMotifs(&g, TriangleQuery(0, 1, 2), 30, rng, /*locality_span=*/16);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

  Workload w;
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();
  LoomOptions o;
  o.partitioner = Opts(8, g.NumVertices(), g.NumEdges());
  o.partitioner.window_size = 64;
  o.matcher.frequency_threshold = 0.4;
  auto loom = Loom::Create(w, o);
  ASSERT_TRUE(loom.ok());
  CheckRestream(g, stream, &(*loom)->Partitioner(), order);
}

INSTANTIATE_TEST_SUITE_P(
    Families, RestreamQuality,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(RestreamOrder::kGain,
                                         RestreamOrder::kAmbivalence,
                                         RestreamOrder::kOriginal)));

TEST(RestreamerTest, MigrationFractionMatchesManualCount) {
  Rng rng(24);
  const LabeledGraph g = ErdosRenyiGnm(500, 1500, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  RestreamOptions ropts;
  ropts.num_passes = 2;
  ropts.order = RestreamOrder::kGain;
  const Restreamer restreamer(stream, ropts);

  LdgPartitioner first(Opts(4, g.NumVertices()));
  first.Run(stream);
  const PartitionAssignment pass1 = first.assignment();

  LdgPartitioner p(Opts(4, g.NumVertices()));
  const RestreamResult r = restreamer.Run(&p);
  // Pass one is deterministic, so the driver's pass-one assignment is
  // `pass1`; its reported migration for pass two must match a manual count.
  size_t moved = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (p.assignment().PartOf(v) != pass1.PartOf(v)) ++moved;
  }
  EXPECT_DOUBLE_EQ(
      r.passes[1].migration_fraction,
      static_cast<double>(moved) / static_cast<double>(g.NumVertices()));
}

// Restreaming an over-capacity stream must still never drop a vertex: the
// overflow fallback and the prior hook compose.
TEST(RestreamerTest, OverfullStreamRestreamsWithoutDrops) {
  Rng rng(25);
  const LabeledGraph g = BarabasiAlbert(600, 3, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  // Capacity sized for half the stream: k*C < n on every pass.
  PartitionerOptions o = Opts(4, g.NumVertices() / 2, 0, /*slack=*/1.0);
  LdgPartitioner p(o);
  RestreamOptions ropts;
  ropts.num_passes = 3;
  const Restreamer restreamer(stream, ropts);
  const RestreamResult r = restreamer.Run(&p);
  for (const RestreamPassStats& s : r.passes) {
    EXPECT_GT(s.forced_placements, 0u);
  }
  EXPECT_EQ(r.assignment.NumAssigned(), g.NumVertices());
  EXPECT_TRUE(AllAssigned(g, r.assignment));
}

}  // namespace
}  // namespace loom
