// Randomized differential tests for the perf-primitives layer: FlatMap
// against std::unordered_map and SmallVector against std::vector, driven by
// the same operation streams, so any divergence in insert/erase/lookup/
// iterate/rehash behaviour is caught directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "common/small_vector.h"

namespace loom {
namespace {

// ---------------------------------------------------------------- FlatMap

TEST(FlatMapTest, BasicInsertFindErase) {
  FlatMap<uint32_t, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.count(7), 0u);

  EXPECT_TRUE(m.emplace(7, "seven").second);
  EXPECT_FALSE(m.emplace(7, "other").second);
  ASSERT_NE(m.find(7), m.end());
  EXPECT_EQ(m.find(7)->second, "seven");
  EXPECT_EQ(m.size(), 1u);

  m[9] = "nine";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m[9], "nine");

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, EraseByIteratorAndClear) {
  FlatMap<uint64_t, int> m;
  for (uint64_t k = 0; k < 100; ++k) m.emplace(k, static_cast<int>(k));
  const auto it = m.find(42);
  ASSERT_NE(it, m.end());
  m.erase(it);
  EXPECT_EQ(m.count(42), 0u);
  EXPECT_EQ(m.size(), 99u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());
  // Reusable after clear.
  m.emplace(1, 10);
  EXPECT_EQ(m.find(1)->second, 10);
}

TEST(FlatMapTest, CopyAndMoveSemantics) {
  FlatMap<uint32_t, std::vector<int>> m;
  for (uint32_t k = 0; k < 50; ++k) m[k].push_back(static_cast<int>(k));

  FlatMap<uint32_t, std::vector<int>> copy = m;
  EXPECT_EQ(copy.size(), 50u);
  EXPECT_EQ(copy.find(17)->second, std::vector<int>{17});

  FlatMap<uint32_t, std::vector<int>> moved = std::move(m);
  EXPECT_EQ(moved.size(), 50u);
  EXPECT_EQ(moved.find(17)->second, std::vector<int>{17});

  copy = moved;
  EXPECT_EQ(copy.size(), 50u);
}

/// Adjacent-key clusters + erase: exactly the regime where tombstone schemes
/// rot and backward-shift must keep every probe chain intact.
TEST(FlatMapTest, BackwardShiftEraseKeepsChainsReachable) {
  FlatMap<uint32_t, uint32_t> m;
  // Insert clusters of keys, then erase every other one and verify the rest.
  for (uint32_t k = 0; k < 512; ++k) m.emplace(k, k * 3);
  for (uint32_t k = 0; k < 512; k += 2) EXPECT_EQ(m.erase(k), 1u);
  for (uint32_t k = 0; k < 512; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(m.count(k), 0u) << k;
    } else {
      ASSERT_NE(m.find(k), m.end()) << k;
      EXPECT_EQ(m.find(k)->second, k * 3) << k;
    }
  }
}

TEST(FlatMapTest, RandomizedDifferentialAgainstUnorderedMap) {
  Rng rng(12345);
  FlatMap<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;

  for (int step = 0; step < 200000; ++step) {
    const uint64_t key = rng() % 997;  // force collisions + reuse
    const int op = static_cast<int>(rng() % 10);
    if (op < 4) {  // insert (no overwrite)
      const uint64_t value = rng();
      const bool inserted_flat = flat.emplace(key, value).second;
      const bool inserted_ref = ref.emplace(key, value).second;
      EXPECT_EQ(inserted_flat, inserted_ref);
    } else if (op < 6) {  // operator[] overwrite
      const uint64_t value = rng();
      flat[key] = value;
      ref[key] = value;
    } else if (op < 8) {  // erase
      EXPECT_EQ(flat.erase(key), ref.erase(key));
    } else {  // lookup
      const auto fit = flat.find(key);
      const auto rit = ref.find(key);
      ASSERT_EQ(fit == flat.end(), rit == ref.end()) << key;
      if (rit != ref.end()) {
        EXPECT_EQ(fit->second, rit->second);
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }

  // Full-content comparison through iteration (order-insensitive).
  std::map<uint64_t, uint64_t> from_flat;
  for (const auto& [k, v] : flat) from_flat.emplace(k, v);
  std::map<uint64_t, uint64_t> from_ref(ref.begin(), ref.end());
  EXPECT_EQ(from_flat, from_ref);
}

TEST(FlatMapTest, GrowthKeepsEverythingThroughRehash) {
  FlatMap<uint64_t, uint64_t> m;
  constexpr uint64_t kCount = 100000;
  for (uint64_t k = 0; k < kCount; ++k) m.emplace(k * 7919, k);
  EXPECT_EQ(m.size(), kCount);
  for (uint64_t k = 0; k < kCount; ++k) {
    ASSERT_NE(m.find(k * 7919), m.end()) << k;
    EXPECT_EQ(m.find(k * 7919)->second, k);
  }
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<uint32_t, uint32_t> m;
  m.reserve(1000);
  const size_t cap = m.capacity();
  for (uint32_t k = 0; k < 1000; ++k) m.emplace(k, k);
  EXPECT_EQ(m.capacity(), cap);
}

// ------------------------------------------------------------- SmallVector

TEST(SmallVectorTest, InlineThenSpill) {
  SmallVector<uint32_t, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (uint32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  v.push_back(4);                // spills to heap
  EXPECT_GT(v.capacity(), 4u);
  ASSERT_EQ(v.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, InsertEraseAndComparisons) {
  SmallVector<uint32_t, 4> v = {1, 3, 5};
  v.insert(v.begin() + 1, 2);
  EXPECT_EQ(v, (SmallVector<uint32_t, 4>{1, 2, 3, 5}));
  v.insert(v.end(), 7);
  EXPECT_EQ(v.back(), 7u);
  v.erase(v.begin());
  EXPECT_EQ(v.front(), 2u);
  v.erase(v.begin() + 1, v.begin() + 3);
  EXPECT_EQ(v, (SmallVector<uint32_t, 4>{2, 7}));
  EXPECT_TRUE((SmallVector<uint32_t, 4>{1, 2}) <
              (SmallVector<uint32_t, 4>{1, 3}));
}

TEST(SmallVectorTest, CopyMoveNonTrivialElements) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back("gamma");  // heap

  SmallVector<std::string, 2> copy = v;
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[2], "gamma");

  SmallVector<std::string, 2> moved = std::move(v);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[0], "alpha");
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): defined state

  // Move of an inline vector moves the elements.
  SmallVector<std::string, 4> inline_v;
  inline_v.push_back("x");
  SmallVector<std::string, 4> inline_moved = std::move(inline_v);
  EXPECT_EQ(inline_moved[0], "x");
}

TEST(SmallVectorTest, RandomizedDifferentialAgainstStdVector) {
  Rng rng(777);
  SmallVector<uint64_t, 6> small;
  std::vector<uint64_t> ref;

  for (int step = 0; step < 100000; ++step) {
    const int op = static_cast<int>(rng() % 10);
    if (op < 4 || ref.empty()) {  // push_back
      const uint64_t value = rng() % 1000;
      small.push_back(value);
      ref.push_back(value);
    } else if (op < 6) {  // sorted-style insert at random position
      const size_t pos = rng() % (ref.size() + 1);
      const uint64_t value = rng() % 1000;
      small.insert(small.begin() + pos, value);
      ref.insert(ref.begin() + pos, value);
    } else if (op < 8) {  // erase at random position
      const size_t pos = rng() % ref.size();
      small.erase(small.begin() + pos);
      ref.erase(ref.begin() + pos);
    } else if (op == 8) {  // pop_back
      small.pop_back();
      ref.pop_back();
    } else if (ref.size() > 20) {  // occasional clear keeps sizes bounded
      small.clear();
      ref.clear();
    }
    ASSERT_EQ(small.size(), ref.size());
    ASSERT_TRUE(std::equal(small.begin(), small.end(), ref.begin()));
  }
}

TEST(SmallVectorTest, ResizeAndReserve) {
  SmallVector<uint32_t, 3> v;
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 0u);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  const auto* data = v.data();
  for (uint32_t i = 0; i < 90; ++i) v.push_back(i);
  EXPECT_EQ(v.data(), data);  // no reallocation after reserve
}

// -------------------------------------------------------------- RingBuffer

TEST(RingBufferTest, FifoAcrossWraparound) {
  RingBuffer<uint32_t> q;
  std::vector<uint32_t> ref;
  Rng rng(9);
  size_t next_push = 0;
  size_t next_pop = 0;
  for (int step = 0; step < 100000; ++step) {
    if (q.empty() || rng() % 2 == 0) {
      q.push_back(static_cast<uint32_t>(next_push++));
    } else {
      ASSERT_EQ(q.front(), next_pop);
      q.pop_front();
      ++next_pop;
    }
    ASSERT_EQ(q.size(), next_push - next_pop);
  }
  while (!q.empty()) {
    ASSERT_EQ(q.front(), next_pop++);
    q.pop_front();
  }
  EXPECT_EQ(next_pop, next_push);
}

}  // namespace
}  // namespace loom
