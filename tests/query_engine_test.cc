// Tests for the ipt-instrumented query execution engine: result counts must
// agree with the exact matcher regardless of partitioning, and the traversal
// accounting must match hand-computed fixtures.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "motif/isomorphism.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace loom {
namespace {

PartitionAssignment AllInOne(const LabeledGraph& g, uint32_t k = 2) {
  PartitionAssignment a(k, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(a.Assign(v, 0).ok());
  }
  return a;
}

PartitionAssignment Alternating(const LabeledGraph& g, uint32_t k = 2) {
  PartitionAssignment a(k, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(a.Assign(v, v % k).ok());
  }
  return a;
}

TEST(QueryEngineTest, EmbeddingCountMatchesExactMatcher) {
  Rng rng(1);
  const LabeledGraph g = ErdosRenyiGnm(120, 420, LabelConfig{3, 0.0}, rng);
  const PartitionAssignment a = Alternating(g, 3);
  for (const LabeledGraph& q :
       {PathQuery({0, 1}), PathQuery({0, 1, 2}), TriangleQuery(0, 1, 2),
        StarQuery(2, {0, 1})}) {
    EXPECT_EQ(ExecuteQuery(g, a, q).num_embeddings, CountEmbeddings(q, g))
        << "partitioning must not change query answers";
  }
}

TEST(QueryEngineTest, SinglePartitionMeansNoCrossTraversals) {
  const LabeledGraph g = PaperFigure1Graph();
  const PartitionAssignment a = AllInOne(g);
  const QueryExecutionStats s = ExecuteQuery(g, a, PaperQ2());
  EXPECT_GT(s.total_traversals, 0u);
  EXPECT_EQ(s.cross_traversals, 0u);
  EXPECT_EQ(s.IptProbability(), 0.0);
  EXPECT_EQ(s.single_partition_embeddings, s.num_embeddings);
  EXPECT_EQ(s.embedding_cut_edges, 0u);
}

TEST(QueryEngineTest, HandComputedCrossTraversals) {
  // Graph: a(0) - b(1), partition a|b. Query a-b. The engine roots at one
  // pattern vertex (highest degree, tie -> order), then traverses one edge.
  LabeledGraph g;
  const VertexId va = g.AddVertex(0);
  const VertexId vb = g.AddVertex(1);
  g.AddEdgeUnchecked(va, vb);
  PartitionAssignment split(2, 0);
  ASSERT_TRUE(split.Assign(va, 0).ok());
  ASSERT_TRUE(split.Assign(vb, 1).ok());

  const QueryExecutionStats s = ExecuteQuery(g, split, PathQuery({0, 1}));
  EXPECT_EQ(s.num_embeddings, 1u);
  EXPECT_EQ(s.total_traversals, 1u);
  EXPECT_EQ(s.cross_traversals, 1u);
  EXPECT_EQ(s.single_partition_embeddings, 0u);
  EXPECT_EQ(s.embedding_cut_edges, 1u);
  EXPECT_EQ(s.embedding_total_edges, 1u);
}

TEST(QueryEngineTest, ProbesCountedEvenWhenInfeasible) {
  // Star: centre b with three a-leaves, query path b-a (1 embedding per
  // leaf). From the b anchor every a-leaf is probed.
  LabeledGraph g;
  const VertexId c = g.AddVertex(1);
  for (int i = 0; i < 3; ++i) g.AddEdgeUnchecked(c, g.AddVertex(0));
  PartitionAssignment a(2, 0);
  ASSERT_TRUE(a.Assign(0, 0).ok());  // centre
  ASSERT_TRUE(a.Assign(1, 0).ok());
  ASSERT_TRUE(a.Assign(2, 1).ok());
  ASSERT_TRUE(a.Assign(3, 1).ok());

  const QueryExecutionStats s = ExecuteQuery(g, a, PathQuery({1, 0}));
  EXPECT_EQ(s.num_embeddings, 3u);
  EXPECT_EQ(s.total_traversals, 3u);   // three label-compatible probes
  EXPECT_EQ(s.cross_traversals, 2u);   // two leaves live remotely
  EXPECT_NEAR(s.IptProbability(), 2.0 / 3.0, 1e-12);
}

TEST(QueryEngineTest, MaxEmbeddingsCapsWork) {
  Rng rng(2);
  const LabeledGraph g = Complete(10, LabelConfig{1, 0.0}, rng);
  const PartitionAssignment a = Alternating(g);
  const QueryExecutionStats s =
      ExecuteQuery(g, a, PathQuery({0, 0}), /*max_embeddings=*/7);
  EXPECT_EQ(s.num_embeddings, 7u);
}

TEST(QueryEngineTest, WorkloadAggregationWeightsByFrequency) {
  // Two queries: one fully local (single vertex -> ipt 0) and one forced
  // cross. Weighted combination must follow frequencies.
  LabeledGraph g;
  const VertexId va = g.AddVertex(0);
  const VertexId vb = g.AddVertex(1);
  g.AddEdgeUnchecked(va, vb);
  PartitionAssignment split(2, 0);
  ASSERT_TRUE(split.Assign(va, 0).ok());
  ASSERT_TRUE(split.Assign(vb, 1).ok());

  Workload w;
  LabeledGraph lookup;
  lookup.AddVertex(0);
  ASSERT_TRUE(w.Add("lookup", lookup, 3.0).ok());
  ASSERT_TRUE(w.Add("edge", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();

  const WorkloadIptStats stats = EvaluateWorkloadIpt(g, split, w);
  // ipt = 0.75 * 0 + 0.25 * 1.0.
  EXPECT_NEAR(stats.ipt_probability, 0.25, 1e-12);
  // single-partition: lookup 100% + edge 0%.
  EXPECT_NEAR(stats.single_partition_fraction, 0.75, 1e-12);
  ASSERT_EQ(stats.per_query.size(), 2u);
}

TEST(QueryEngineTest, BetterPartitioningLowersIpt) {
  // Two triangles joined by one edge; aligned split vs alternating split.
  LabeledGraph g;
  for (int i = 0; i < 6; ++i) g.AddVertex(static_cast<Label>(i % 3));
  g.AddEdgeUnchecked(0, 1);
  g.AddEdgeUnchecked(1, 2);
  g.AddEdgeUnchecked(2, 0);
  g.AddEdgeUnchecked(3, 4);
  g.AddEdgeUnchecked(4, 5);
  g.AddEdgeUnchecked(5, 3);
  g.AddEdgeUnchecked(2, 3);

  PartitionAssignment aligned(2, 0);
  for (VertexId v = 0; v < 6; ++v) {
    ASSERT_TRUE(aligned.Assign(v, v < 3 ? 0 : 1).ok());
  }
  const PartitionAssignment alternating = Alternating(g);

  Workload w;
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  w.Normalize();
  const double ipt_aligned =
      EvaluateWorkloadIpt(g, aligned, w).ipt_probability;
  const double ipt_alternating =
      EvaluateWorkloadIpt(g, alternating, w).ipt_probability;
  EXPECT_LT(ipt_aligned, ipt_alternating);
  EXPECT_EQ(ipt_aligned, 0.0);  // both triangles fully local
}

}  // namespace
}  // namespace loom
