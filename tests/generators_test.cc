// Tests for the synthetic graph generators, including parameterized property
// sweeps over sizes and models.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "motif/isomorphism.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  Rng rng(1);
  const uint32_t n = 2000;
  const double p = 0.005;
  const LabeledGraph g = ErdosRenyiGnp(n, p, LabelConfig{4, 0.0}, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected,
              5.0 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, GnpExtremes) {
  Rng rng(2);
  EXPECT_EQ(ErdosRenyiGnp(50, 0.0, LabelConfig{2, 0.0}, rng).NumEdges(), 0u);
  EXPECT_EQ(ErdosRenyiGnp(10, 1.0, LabelConfig{2, 0.0}, rng).NumEdges(), 45u);
}

TEST(ErdosRenyiTest, GnmExactEdgeCount) {
  Rng rng(3);
  const LabeledGraph g = ErdosRenyiGnm(100, 400, LabelConfig{3, 0.0}, rng);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 400u);
}

TEST(ErdosRenyiTest, GnmClampsToMaxEdges) {
  Rng rng(4);
  const LabeledGraph g = ErdosRenyiGnm(5, 1000, LabelConfig{2, 0.0}, rng);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(BarabasiAlbertTest, SizesAndConnectivity) {
  Rng rng(5);
  const LabeledGraph g = BarabasiAlbert(500, 3, LabelConfig{4, 0.0}, rng);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_TRUE(IsConnected(g));
  // m edges per arrival after the seed clique.
  EXPECT_GE(g.NumEdges(), 3u * (500 - 4));
}

TEST(BarabasiAlbertTest, ProducesSkewedDegrees) {
  Rng rng(6);
  const LabeledGraph g = BarabasiAlbert(2000, 2, LabelConfig{4, 0.0}, rng);
  size_t max_degree = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  // A hub far above the mean degree (4) is the power-law fingerprint.
  EXPECT_GT(max_degree, 40u);
}

TEST(WattsStrogatzTest, RingBaseline) {
  Rng rng(7);
  const LabeledGraph g = WattsStrogatz(100, 2, 0.0, LabelConfig{2, 0.0}, rng);
  // beta=0: pure ring lattice, 2 neighbours per side.
  EXPECT_EQ(g.NumEdges(), 200u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeBudgetClose) {
  Rng rng(8);
  const LabeledGraph g = WattsStrogatz(200, 3, 0.3, LabelConfig{2, 0.0}, rng);
  EXPECT_LE(g.NumEdges(), 600u);
  EXPECT_GE(g.NumEdges(), 540u);  // a few rewires may collide and drop
}

TEST(RMatTest, RespectsScaleAndFactor) {
  Rng rng(9);
  const LabeledGraph g =
      RMat(10, 8, 0.57, 0.19, 0.19, LabelConfig{4, 0.0}, rng);
  EXPECT_EQ(g.NumVertices(), 1024u);
  // Duplicates are dropped; expect to land close to the target.
  EXPECT_GE(g.NumEdges(), 7000u);
  EXPECT_LE(g.NumEdges(), 8192u);
}

TEST(GridTest, StructureExact) {
  Rng rng(10);
  const LabeledGraph g = Grid2D(4, 5, LabelConfig{2, 0.0}, rng);
  EXPECT_EQ(g.NumVertices(), 20u);
  EXPECT_EQ(g.NumEdges(), 4u * 4 + 5u * 3);  // horizontal + vertical
  EXPECT_TRUE(IsConnected(g));
}

TEST(RingTreeCompleteTest, Shapes) {
  Rng rng(11);
  EXPECT_EQ(Ring(10, LabelConfig{2, 0.0}, rng).NumEdges(), 10u);
  EXPECT_EQ(RandomTree(50, LabelConfig{2, 0.0}, rng).NumEdges(), 49u);
  EXPECT_EQ(Complete(6, LabelConfig{2, 0.0}, rng).NumEdges(), 15u);
  EXPECT_TRUE(IsConnected(RandomTree(50, LabelConfig{2, 0.0}, rng)));
}

TEST(LabelConfigTest, UniformUsesWholeAlphabet) {
  Rng rng(12);
  const LabeledGraph g = ErdosRenyiGnm(2000, 1000, LabelConfig{5, 0.0}, rng);
  std::vector<size_t> counts(5, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) ++counts[g.LabelOf(v)];
  for (const size_t c : counts) EXPECT_GT(c, 300u);
}

TEST(LabelConfigTest, ZipfSkewsLabels) {
  Rng rng(13);
  const LabeledGraph g = ErdosRenyiGnm(3000, 1000, LabelConfig{5, 1.5}, rng);
  std::vector<size_t> counts(5, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) ++counts[g.LabelOf(v)];
  EXPECT_GT(counts[0], counts[4] * 3);
}

TEST(PlantMotifsTest, EmbeddingsBecomeMatches) {
  Rng rng(14);
  LabeledGraph g = ErdosRenyiGnm(300, 600, LabelConfig{4, 0.0}, rng);
  const LabeledGraph motif = TriangleQuery(0, 1, 2);
  const auto planted = PlantMotifs(&g, motif, 10, rng);
  ASSERT_EQ(planted.size(), 10u);
  for (const PlantedMotif& p : planted) {
    ASSERT_EQ(p.embedding.size(), 3u);
    for (VertexId mv = 0; mv < 3; ++mv) {
      EXPECT_EQ(g.LabelOf(p.embedding[mv]), motif.LabelOf(mv));
    }
    EXPECT_TRUE(g.HasEdge(p.embedding[0], p.embedding[1]));
    EXPECT_TRUE(g.HasEdge(p.embedding[1], p.embedding[2]));
    EXPECT_TRUE(g.HasEdge(p.embedding[2], p.embedding[0]));
  }
  EXPECT_GE(CountEmbeddings(motif, g, 1000), 10u);
}

TEST(PlantMotifsTest, DisjointEmbeddings) {
  Rng rng(15);
  LabeledGraph g = ErdosRenyiGnm(100, 150, LabelConfig{4, 0.0}, rng);
  const LabeledGraph motif = PathQuery({0, 1, 2});
  const auto planted = PlantMotifs(&g, motif, 5, rng);
  std::vector<VertexId> all;
  for (const auto& p : planted) {
    all.insert(all.end(), p.embedding.begin(), p.embedding.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

TEST(PlantMotifsTest, StopsWhenGraphTooSmall) {
  Rng rng(16);
  LabeledGraph g = ErdosRenyiGnm(7, 5, LabelConfig{4, 0.0}, rng);
  const LabeledGraph motif = TriangleQuery(0, 1, 2);
  const auto planted = PlantMotifs(&g, motif, 10, rng);
  EXPECT_LE(planted.size(), 2u);
}

// Parameterized determinism sweep: same seed => identical graph, across
// generators and sizes.
class GeneratorDeterminism
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(GeneratorDeterminism, SameSeedSameGraph) {
  const auto [which, n] = GetParam();
  auto build = [&](uint64_t seed) {
    Rng rng(seed);
    const LabelConfig lc{4, 0.5};
    switch (which) {
      case 0:
        return ErdosRenyiGnp(n, 4.0 / n, lc, rng);
      case 1:
        return ErdosRenyiGnm(n, 2 * n, lc, rng);
      case 2:
        return BarabasiAlbert(n, 3, lc, rng);
      case 3:
        return WattsStrogatz(n, 2, 0.2, lc, rng);
      default:
        return RandomTree(n, lc, rng);
    }
  };
  const LabeledGraph a = build(77);
  const LabeledGraph b = build(77);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.LabelOf(v), b.LabelOf(v));
    EXPECT_EQ(a.Neighbors(v), b.Neighbors(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorDeterminism,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(64u, 256u)));

}  // namespace
}  // namespace loom
