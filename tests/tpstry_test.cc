// Tests for the original TPSTry (label-path trie), the E8c ablation
// structure.

#include <gtest/gtest.h>

#include "tpstry/tpstry.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

TEST(TpstryTest, SinglePathQuery) {
  Tpstry t;
  ASSERT_TRUE(t.AddQuery(PathQuery({0, 1, 2}), 1.0).ok());
  t.Normalize();
  // Distinct direction-deduplicated label sequences of a-b-c:
  // a; b; c; ab; bc; abc  (ba == ab reversed etc.)
  EXPECT_DOUBLE_EQ(t.SupportOf({0}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({1, 2, 0}), 0.0);
}

TEST(TpstryTest, DirectionDeduplicated) {
  Tpstry t;
  ASSERT_TRUE(t.AddQuery(PathQuery({2, 1, 0}), 1.0).ok());
  t.Normalize();
  // min(fwd, rev) of c-b-a is a-b-c.
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({2, 1, 0}), 0.0);
}

TEST(TpstryTest, SupportAccumulatesAcrossQueries) {
  Tpstry t;
  ASSERT_TRUE(t.AddQuery(PathQuery({0, 1}), 3.0).ok());
  ASSERT_TRUE(t.AddQuery(PathQuery({0, 1, 2}), 1.0).ok());
  t.Normalize();
  // Path a-b occurs in both queries: support (3 + 1) / 4.
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1, 2}), 0.25);
}

TEST(TpstryTest, CountedOncePerQueryDespiteMultipleEmbeddings) {
  Tpstry t;
  // Star a-(b,b): the path b-a-b has two embeddings but one label sequence;
  // path a-b likewise.
  ASSERT_TRUE(t.AddQuery(StarQuery(0, {1, 1}), 1.0).ok());
  t.Normalize();
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({1, 0, 1}), 1.0);
}

TEST(TpstryTest, FrequentPathsThreshold) {
  Tpstry t;
  ASSERT_TRUE(t.AddQuery(PathQuery({0, 1, 2}), 3.0).ok());
  ASSERT_TRUE(t.AddQuery(PathQuery({2, 3}), 1.0).ok());
  t.Normalize();
  const auto frequent = t.FrequentPaths(0.5);
  // {0,1,2} branch paths have support 0.75; {2,3} has 0.25.
  for (const auto& p : frequent) {
    EXPECT_GE(t.SupportOf(p), 0.5);
  }
  EXPECT_FALSE(frequent.empty());
  // Longest first.
  for (size_t i = 1; i < frequent.size(); ++i) {
    EXPECT_GE(frequent[i - 1].size(), frequent[i].size());
  }
}

TEST(TpstryTest, CycleQueryYieldsBoundedPaths) {
  Tpstry t;
  ASSERT_TRUE(t.AddQuery(PaperQ1(), 1.0, /*max_path_vertices=*/4).ok());
  t.Normalize();
  // Paths within abab cycle: a; b; ab; aba; bab; abab...
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(t.SupportOf({0, 1, 0, 1}), 1.0);
  EXPECT_GT(t.NumNodes(), 0u);
}

TEST(TpstryTest, RejectsBadInput) {
  Tpstry t;
  EXPECT_FALSE(t.AddQuery(LabeledGraph(), 1.0).ok());
  EXPECT_FALSE(t.AddQuery(PathQuery({0}), 0.0).ok());
}

TEST(TpstryTest, NodeCountGrowsWithDistinctPaths) {
  Tpstry t;
  ASSERT_TRUE(t.AddQuery(PathQuery({0, 1}), 1.0).ok());
  const size_t n1 = t.NumNodes();
  ASSERT_TRUE(t.AddQuery(PathQuery({2, 3}), 1.0).ok());
  EXPECT_GT(t.NumNodes(), n1);
}

}  // namespace
}  // namespace loom
