// Tests for the LOOM façade and the LOOM partitioner (§4.1, §4.4).

#include <gtest/gtest.h>

#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "stream/stream.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

Workload AbcWorkload() {
  Workload w;
  EXPECT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 1.0).ok());
  w.Normalize();
  return w;
}

LoomOptions Opts(uint32_t k, size_t n, size_t window = 8,
                 double threshold = 0.5) {
  LoomOptions o;
  o.partitioner.k = k;
  o.partitioner.num_vertices_hint = n;
  o.partitioner.window_size = window;
  o.matcher.frequency_threshold = threshold;
  o.matcher.verify_exact = true;
  return o;
}

TEST(LoomTest, CreateValidatesOptions) {
  const Workload w = AbcWorkload();
  LoomOptions bad_k = Opts(0, 10);
  EXPECT_FALSE(Loom::Create(w, bad_k).ok());
  LoomOptions bad_window = Opts(2, 10, 0);
  bad_window.partitioner.window_size = 0;
  EXPECT_FALSE(Loom::Create(w, bad_window).ok());
  LoomOptions bad_threshold = Opts(2, 10);
  bad_threshold.matcher.frequency_threshold = -0.5;
  EXPECT_FALSE(Loom::Create(w, bad_threshold).ok());
  LoomOptions over_one = Opts(2, 10);
  over_one.matcher.frequency_threshold = 1.5;  // valid: nothing frequent
  EXPECT_TRUE(Loom::Create(w, over_one).ok());
  EXPECT_FALSE(Loom::Create(Workload(), Opts(2, 10)).ok());
  EXPECT_TRUE(Loom::Create(w, Opts(2, 10)).ok());
}

TEST(LoomTest, TrieBuiltFromWorkload) {
  auto loom = Loom::Create(AbcWorkload(), Opts(2, 100));
  ASSERT_TRUE(loom.ok());
  // a, b, c, ab, bc, abc.
  EXPECT_EQ((*loom)->Trie().NumNodes(), 6u);
}

TEST(LoomTest, MotifKeptWholeWithinPartition) {
  // Stream two disjoint abc paths; with k=2 and tight capacity both paths
  // must land intact (each wholly in one partition).
  LabeledGraph g;
  for (const Label l : {0u, 1u, 2u, 0u, 1u, 2u}) g.AddVertex(l);
  g.AddEdgeUnchecked(0, 1);
  g.AddEdgeUnchecked(1, 2);
  g.AddEdgeUnchecked(3, 4);
  g.AddEdgeUnchecked(4, 5);
  const GraphStream stream = MakeStreamFromOrder(g, {0, 1, 2, 3, 4, 5});

  auto loom = Loom::Create(AbcWorkload(), Opts(2, 6, /*window=*/4, 0.5));
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);
  const auto& a = (*loom)->Partitioner().assignment();
  EXPECT_TRUE(AllAssigned(g, a));
  EXPECT_EQ(a.PartOf(0), a.PartOf(1));
  EXPECT_EQ(a.PartOf(1), a.PartOf(2));
  EXPECT_EQ(a.PartOf(3), a.PartOf(4));
  EXPECT_EQ(a.PartOf(4), a.PartOf(5));
  EXPECT_GE((*loom)->Partitioner().loom_stats().clusters_assigned, 1u);
}

TEST(LoomTest, FinishDrainsEverything) {
  Rng rng(1);
  const LabeledGraph g = BarabasiAlbert(300, 3, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  auto loom = Loom::Create(AbcWorkload(), Opts(4, g.NumVertices(), 64, 0.3));
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);
  EXPECT_TRUE(AllAssigned(g, (*loom)->Partitioner().assignment()));
  EXPECT_EQ((*loom)->Partitioner().assignment().NumAssigned(),
            g.NumVertices());
}

TEST(LoomTest, CapacityNeverViolated) {
  Rng rng(2);
  LabeledGraph g = BarabasiAlbert(400, 3, LabelConfig{3, 0.0}, rng);
  PlantMotifs(&g, PathQuery({0, 1, 2}), 40, rng, /*locality_span=*/12);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);
  LoomOptions o = Opts(4, g.NumVertices(), 64, 0.3);
  o.partitioner.capacity_slack = 1.05;
  auto loom = Loom::Create(AbcWorkload(), o);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);
  const size_t cap = ComputeCapacity(4, g.NumVertices(), 1.05);
  for (const uint32_t size :
       (*loom)->Partitioner().assignment().Sizes()) {
    EXPECT_LE(size, cap);
  }
}

TEST(LoomTest, TraversalWeightedVariantRunsAndCompletes) {
  // §5 future work: LDG scores weighted by TPSTry++ edge traversal
  // probabilities. The variant must keep every invariant (completeness,
  // capacity) while weighting placement.
  Rng rng(9);
  LabeledGraph g = BarabasiAlbert(600, 3, LabelConfig{3, 0.2}, rng);
  PlantMotifs(&g, PathQuery({0, 1, 2}), 60, rng, /*locality_span=*/16);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  LoomOptions o = Opts(4, g.NumVertices(), 128, 0.3);
  o.use_traversal_weights = true;
  auto weighted = Loom::Create(AbcWorkload(), o);
  ASSERT_TRUE(weighted.ok());
  (*weighted)->Partitioner().Run(stream);
  EXPECT_TRUE(AllAssigned(g, (*weighted)->Partitioner().assignment()));
  const size_t cap = ComputeCapacity(4, g.NumVertices(), 1.1);
  for (const uint32_t size :
       (*weighted)->Partitioner().assignment().Sizes()) {
    EXPECT_LE(size, cap);
  }

  // The weighting changes placement relative to the unweighted variant on
  // at least some vertices (they are different heuristics).
  LoomOptions o2 = Opts(4, g.NumVertices(), 128, 0.3);
  auto plain = Loom::Create(AbcWorkload(), o2);
  ASSERT_TRUE(plain.ok());
  (*plain)->Partitioner().Run(stream);
  size_t differing = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if ((*weighted)->Partitioner().assignment().PartOf(v) !=
        (*plain)->Partitioner().assignment().PartOf(v)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(LoomTest, LocalSplitKeepsConnectedChunksTogether) {
  // A 12-vertex ab-chain whose closure exceeds capacity (C=3, k=4): local
  // splitting must produce connected chunks rather than scattering vertices,
  // so adjacent pairs mostly share partitions.
  LabeledGraph g;
  for (int i = 0; i < 12; ++i) g.AddVertex(i % 2 == 0 ? 0 : 1);
  for (VertexId v = 0; v + 1 < 12; ++v) g.AddEdgeUnchecked(v, v + 1);
  std::vector<VertexId> order(12);
  for (VertexId v = 0; v < 12; ++v) order[v] = v;
  const GraphStream stream = MakeStreamFromOrder(g, order);

  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();
  LoomOptions o = Opts(4, 12, /*window=*/12, 0.5);
  o.partitioner.capacity_slack = 1.0;
  o.local_cluster_split = true;
  auto loom = Loom::Create(w, o);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);
  const auto& a = (*loom)->Partitioner().assignment();
  EXPECT_TRUE(AllAssigned(g, a));
  EXPECT_GE((*loom)->Partitioner().loom_stats().split_chunks, 2u);
  // Chunked split: at most k-1 = 3 chain edges cut (one per chunk border).
  size_t cut = 0;
  g.ForEachEdge([&](VertexId u, VertexId v) {
    if (a.PartOf(u) != a.PartOf(v)) ++cut;
  });
  EXPECT_LE(cut, 3u);
}

TEST(LoomTest, OversizedClusterSplitGracefully) {
  // A long chain of overlapping ab edges inside one window: the transitive
  // closure exceeds per-partition capacity and must be split, never dropped.
  LabeledGraph g;
  for (int i = 0; i < 12; ++i) g.AddVertex(i % 2 == 0 ? 0 : 1);
  for (VertexId v = 0; v + 1 < 12; ++v) g.AddEdgeUnchecked(v, v + 1);
  std::vector<VertexId> order(12);
  for (VertexId v = 0; v < 12; ++v) order[v] = v;
  const GraphStream stream = MakeStreamFromOrder(g, order);

  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();
  LoomOptions o = Opts(4, 12, /*window=*/12, 0.5);
  o.partitioner.capacity_slack = 1.0;  // capacity 3 per partition
  auto loom = Loom::Create(w, o);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);
  EXPECT_TRUE(AllAssigned(g, (*loom)->Partitioner().assignment()));
  EXPECT_GE((*loom)->Partitioner().loom_stats().clusters_split, 1u);
}

TEST(LoomTest, PathsOnlyModeBuildsSmallerTrie) {
  Workload w;
  ASSERT_TRUE(w.Add("cycle", PaperQ1(), 1.0).ok());
  w.Normalize();
  LoomOptions full = Opts(2, 100);
  LoomOptions paths = Opts(2, 100);
  paths.paths_only = true;
  auto loom_full = Loom::Create(w, full);
  auto loom_paths = Loom::Create(w, paths);
  ASSERT_TRUE(loom_full.ok() && loom_paths.ok());
  EXPECT_LT((*loom_paths)->Trie().NumNodes(), (*loom_full)->Trie().NumNodes());
}

TEST(LoomTest, StatsAreConsistent) {
  Rng rng(3);
  LabeledGraph g = BarabasiAlbert(500, 3, LabelConfig{3, 0.0}, rng);
  PlantMotifs(&g, PathQuery({0, 1, 2}), 50, rng, /*locality_span=*/12);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);
  auto loom = Loom::Create(AbcWorkload(), Opts(4, g.NumVertices(), 64, 0.3));
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);
  const LoomStats& s = (*loom)->Partitioner().loom_stats();
  EXPECT_EQ(s.cluster_vertices + s.single_vertices, g.NumVertices());
  EXPECT_GT(s.clusters_assigned, 0u);
}

}  // namespace
}  // namespace loom
