// Contract tests of the loom::Service serving facade: options validation,
// snapshot publication under concurrent readers, batched-vs-serial ingest
// equivalence, Locate/Touches correctness against the query engine's ground
// truth, and the drift loop reacting while clients keep reading. Suite
// names contain "Serving" so CI's TSan job picks every test up.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/loom.h"
#include "core/partitioner_factory.h"
#include "restream/restreamer.h"
#include "serving/service.h"
#include "serving_scenario.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace loom {
namespace {

using bench::GraphKind;
using bench::MakeGraph;
using bench::PlantWorkloadMotifs;
using bench::RunServingScenario;
using bench::ServingScenarioConfig;
using bench::ServingScenarioResult;

Workload SmallWorkload() {
  Workload w;
  (void)w.Add("path", PathQuery({0, 1, 0}), 2.0);
  (void)w.Add("cycle", CycleQuery({0, 1, 0, 1}), 1.0);
  w.Normalize();
  return w;
}

/// Graph + stream fixture shared by the equivalence and query tests.
struct Scenario {
  LabeledGraph g;
  GraphStream stream;
};

Scenario MakeScenario(uint32_t n, uint64_t seed) {
  Scenario s;
  Rng rng(seed);
  s.g = MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.2}, rng);
  PlantWorkloadMotifs(&s.g, SmallWorkload(), n / 24, rng,
                      /*locality_span=*/48);
  s.stream = MakeStream(s.g, StreamOrder::kDfs, rng);
  return s;
}

ServiceOptions BaseOptions(const Scenario& s, uint32_t k) {
  ServiceOptions opts;
  opts.loom.partitioner.k = k;
  opts.loom.partitioner.num_vertices_hint = s.g.NumVertices();
  opts.loom.partitioner.num_edges_hint = s.g.NumEdges();
  opts.loom.partitioner.window_size = 64;
  opts.loom.matcher.frequency_threshold = 0.2;
  opts.num_labels = 4;
  return opts;
}

// ------------------------------------------------------ options validation

TEST(ServingOptionsTest, DefaultsValidateAndSanitizeIsIdentityOnThem) {
  const ServiceOptions defaults;
  EXPECT_TRUE(ValidateServiceOptions(defaults).ok());
  const ServiceOptions sanitized = SanitizeServiceOptions(defaults);
  EXPECT_TRUE(ValidateServiceOptions(sanitized).ok());
  EXPECT_EQ(sanitized.partitioner, defaults.partitioner);
  EXPECT_EQ(sanitized.front_end_shards, defaults.front_end_shards);
}

TEST(ServingOptionsTest, ValidateRejectsTheFirstBadFieldWithoutMutating) {
  ServiceOptions opts;
  opts.loom.partitioner.k = 0;
  Status status = ValidateServiceOptions(opts);
  EXPECT_TRUE(status.code() == StatusCode::kInvalidArgument);
  EXPECT_EQ(opts.loom.partitioner.k, 0u);  // untouched

  opts = ServiceOptions();
  opts.partitioner = "metis";
  EXPECT_EQ(ValidateServiceOptions(opts).code(),
            StatusCode::kInvalidArgument);

  opts = ServiceOptions();
  opts.drift_check_every_queries = 0;
  EXPECT_EQ(ValidateServiceOptions(opts).code(),
            StatusCode::kInvalidArgument);

  opts = ServiceOptions();
  opts.publish_every_batches = 0;
  EXPECT_EQ(ValidateServiceOptions(opts).code(),
            StatusCode::kInvalidArgument);

  opts = ServiceOptions();
  opts.front_end_shards = 0;
  EXPECT_EQ(ValidateServiceOptions(opts).code(),
            StatusCode::kInvalidArgument);

  opts = ServiceOptions();
  opts.tracker.window_queries = 0;
  EXPECT_EQ(ValidateServiceOptions(opts).code(),
            StatusCode::kInvalidArgument);

  // Nested drift options are validated through the same contract.
  opts = ServiceOptions();
  opts.drift.reaction_passes = 0;
  EXPECT_EQ(ValidateServiceOptions(opts).code(),
            StatusCode::kInvalidArgument);

  opts = ServiceOptions();
  opts.drift.detector.fire_threshold = 2.0;
  EXPECT_EQ(ValidateServiceOptions(opts).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServingOptionsTest, SanitizeClampsEveryFieldValidateRejects) {
  ServiceOptions opts;
  opts.loom.partitioner.k = 0;
  opts.partitioner = "no-such-partitioner";
  opts.drift_check_every_queries = 0;
  opts.publish_every_batches = 0;
  opts.front_end_shards = 0;
  opts.tracker.window_queries = 0;
  opts.drift.reaction_passes = 0;
  opts.drift.max_migration_fraction = std::nan("");
  const ServiceOptions sane = SanitizeServiceOptions(opts);
  EXPECT_TRUE(ValidateServiceOptions(sane).ok());
  EXPECT_EQ(sane.loom.partitioner.k, 1u);
  EXPECT_EQ(sane.partitioner, "loom");
  EXPECT_EQ(sane.drift_check_every_queries, 1u);
  EXPECT_EQ(sane.publish_every_batches, 1u);
  EXPECT_EQ(sane.front_end_shards, 1u);
  EXPECT_EQ(sane.tracker.window_queries, 1u);
  EXPECT_EQ(sane.drift.reaction_passes, 1u);
  EXPECT_EQ(sane.drift.max_migration_fraction, 0.0);  // migration frozen
}

TEST(ServingOptionsTest, UniformContractAcrossTheOptionsFamily) {
  // The same Validate/Sanitize pairing holds for the restream and drift
  // structs the service composes.
  RestreamOptions ropts;
  ropts.num_passes = 0;
  EXPECT_EQ(ValidateRestreamOptions(ropts).code(),
            StatusCode::kInvalidArgument);
  EXPECT_GE(SanitizeRestreamOptions(ropts).num_passes, 1u);

  DriftControllerOptions dopts;
  dopts.detector.clear_threshold = 0.9;  // above fire_threshold: inverted
  EXPECT_EQ(ValidateDriftControllerOptions(dopts).code(),
            StatusCode::kInvalidArgument);
  const DriftControllerOptions sane = SanitizeDriftControllerOptions(dopts);
  EXPECT_TRUE(ValidateDriftControllerOptions(sane).ok());
  EXPECT_LE(sane.detector.clear_threshold, sane.detector.fire_threshold);
}

TEST(ServingOptionsTest, CreateRejectsInvalidOptions) {
  ServiceOptions opts;
  opts.front_end_shards = 0;
  auto created = Service::Create(SmallWorkload(), opts);
  EXPECT_FALSE(created.ok());
  EXPECT_TRUE(created.status().code() == StatusCode::kInvalidArgument);
}

// ------------------------------------------------- ingest + rejection path

TEST(ServingIngestTest, InvalidBatchesAreRejectedWholeAndCounted) {
  const Scenario s = MakeScenario(400, 7);
  auto created = Service::Create(SmallWorkload(), BaseOptions(s, 4));
  ASSERT_TRUE(created.ok());
  Service& service = **created;

  // Self-loop back edge: reject, apply nothing.
  std::vector<VertexArrival> bad(2);
  bad[0].vertex = 0;
  bad[1].vertex = 1;
  bad[1].back_edges = {1};
  EXPECT_TRUE(service.Ingest(bad).code() == StatusCode::kInvalidArgument);

  // Invalid vertex id: same.
  bad[1].vertex = kInvalidVertex;
  bad[1].back_edges = {0};
  EXPECT_TRUE(service.Ingest(bad).code() == StatusCode::kInvalidArgument);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected_batches, 2u);
  EXPECT_EQ(stats.ingested_vertices, 0u);
  EXPECT_EQ(stats.ingested_batches, 0u);

  // Empty batches are a no-op, not an error.
  EXPECT_TRUE(service.Ingest(nullptr, 0).ok());
  EXPECT_TRUE((*created)->Seal().ok());
}

TEST(ServingIngestTest, SealStopsIngestAndIsNotRepeatable) {
  const Scenario s = MakeScenario(300, 11);
  auto created = Service::Create(SmallWorkload(), BaseOptions(s, 4));
  ASSERT_TRUE(created.ok());
  Service& service = **created;

  ASSERT_TRUE(service.Ingest(s.stream.arrivals()).ok());
  ASSERT_TRUE(service.Seal().ok());
  EXPECT_TRUE(service.Stats().sealed);
  EXPECT_EQ(service.Stats().ingested_vertices, s.g.NumVertices());

  EXPECT_EQ(service.Ingest(s.stream.arrivals()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Seal().code(), StatusCode::kFailedPrecondition);
  // Reads stay valid after sealing.
  EXPECT_GE(service.Locate(0), 0);
}

// The tentpole equivalence: batched ingest through the single pipeline
// worker must be result-identical to the serial pipeline on the same
// stream, for every batch size and front-end shard count.
TEST(ServingIngestTest, BatchedIngestMatchesSerialPipelineBitForBit) {
  const Scenario s = MakeScenario(800, 13);
  const Workload workload = SmallWorkload();

  for (const char* name : {"ldg", "loom"}) {
    // Serial reference: the same partitioner fed by Run(stream).
    ServiceOptions ref_opts = BaseOptions(s, 6);
    ref_opts.partitioner = name;
    auto trie = BuildTrie(workload, ref_opts.loom.paths_only);
    ASSERT_TRUE(trie.ok());
    auto serial = MakePartitioner(name, ref_opts.loom, trie->get());
    ASSERT_TRUE(serial.ok());
    (*serial)->Run(s.stream);
    const PartitionAssignment& want = (*serial)->assignment();

    for (const size_t batch_size : {size_t{1}, size_t{7}, size_t{64}}) {
      for (const uint32_t shards : {1u, 2u}) {
        ServiceOptions opts = BaseOptions(s, 6);
        opts.partitioner = name;
        opts.enable_drift_reactions = false;
        opts.front_end_shards = shards;
        opts.publish_every_batches = 3;
        auto created = Service::Create(workload, opts);
        ASSERT_TRUE(created.ok());
        Service& service = **created;

        const std::vector<VertexArrival>& arrivals = s.stream.arrivals();
        for (size_t off = 0; off < arrivals.size(); off += batch_size) {
          const size_t count =
              std::min(batch_size, arrivals.size() - off);
          ASSERT_TRUE(service.Ingest(arrivals.data() + off, count).ok());
        }
        ASSERT_TRUE(service.Seal().ok());

        const PlacementSnapshot* snapshot = service.Snapshot();
        ASSERT_NE(snapshot, nullptr);
        ASSERT_EQ(snapshot->num_assigned, want.NumAssigned())
            << name << " batch=" << batch_size << " shards=" << shards;
        for (VertexId v = 0; v < s.g.NumVertices(); ++v) {
          ASSERT_EQ(snapshot->Locate(v), want.PartOf(v))
              << name << " batch=" << batch_size << " shards=" << shards
              << " vertex=" << v;
        }
        EXPECT_EQ(service.Stats().assign_errors, 0u);
      }
    }
  }
}

TEST(ServingIngestTest, IngestSourceMatchesBatchedIngest) {
  // The ArrivalSource bridge: draining a cursor (here a StreamCursor, in
  // production an mmap-ed stream file or a generator) must place every
  // vertex exactly where the equivalent hand-batched Ingest calls would.
  const Scenario s = MakeScenario(600, 17);
  const Workload workload = SmallWorkload();

  ServiceOptions opts = BaseOptions(s, 6);
  opts.enable_drift_reactions = false;
  auto reference = Service::Create(workload, opts);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE((*reference)->Ingest(s.stream.arrivals()).ok());
  ASSERT_TRUE((*reference)->Seal().ok());
  const PlacementSnapshot* want = (*reference)->Snapshot();
  ASSERT_NE(want, nullptr);

  for (const size_t batch_size : {size_t{1}, size_t{50}, size_t{100000}}) {
    auto created = Service::Create(workload, opts);
    ASSERT_TRUE(created.ok());
    Service& service = **created;
    StreamCursor cursor(s.stream);
    ASSERT_TRUE(service.IngestSource(cursor, batch_size).ok());
    ASSERT_TRUE(service.Seal().ok());

    const PlacementSnapshot* got = service.Snapshot();
    ASSERT_NE(got, nullptr);
    ASSERT_EQ(got->num_assigned, want->num_assigned);
    for (VertexId v = 0; v < s.g.NumVertices(); ++v) {
      ASSERT_EQ(got->Locate(v), want->Locate(v))
          << "batch=" << batch_size << " vertex=" << v;
    }
    EXPECT_EQ(service.Stats().ingested_vertices, s.g.NumVertices());
  }
}

// --------------------------------------------------- reads vs. ground truth

TEST(ServingQueryTest, LocateAndTouchesMatchTheQueryEngineGroundTruth) {
  const Scenario s = MakeScenario(900, 17);
  const Workload workload = SmallWorkload();
  ServiceOptions opts = BaseOptions(s, 6);
  opts.enable_drift_reactions = false;
  auto created = Service::Create(workload, opts);
  ASSERT_TRUE(created.ok());
  Service& service = **created;
  ASSERT_TRUE(service.Ingest(s.stream.arrivals()).ok());
  ASSERT_TRUE(service.Seal().ok());

  // Rebuild the assignment from the published snapshot; Locate must agree.
  const PlacementSnapshot* snapshot = service.Snapshot();
  ASSERT_NE(snapshot, nullptr);
  PartitionAssignment assignment(snapshot->k, /*capacity=*/0);
  for (VertexId v = 0; v < s.g.NumVertices(); ++v) {
    const int32_t part = service.Locate(v);
    ASSERT_GE(part, 0);
    ASSERT_TRUE(assignment.Assign(v, static_cast<uint32_t>(part)).ok());
  }

  // Touches must be a superset of every partition the matcher actually
  // visits executing the query (soundness of the broadcast set).
  for (const QuerySpec& q : workload.queries()) {
    const std::vector<uint32_t> touches = service.Touches(q.pattern);
    EXPECT_TRUE(std::is_sorted(touches.begin(), touches.end()));
    std::set<uint32_t> visited;
    const TraversalObserver observer = [&](VertexId from, VertexId to,
                                           bool /*cross*/) {
      visited.insert(static_cast<uint32_t>(assignment.PartOf(from)));
      visited.insert(static_cast<uint32_t>(assignment.PartOf(to)));
    };
    const QueryExecutionStats stats = ExecuteQuery(
        s.g, assignment, q.pattern, /*max_embeddings=*/5000,
        /*replicas=*/nullptr, observer);
    EXPECT_GT(stats.total_traversals, 0u) << q.name;
    for (const uint32_t part : visited) {
      EXPECT_TRUE(
          std::binary_search(touches.begin(), touches.end(), part))
          << q.name << " visited partition " << part
          << " missing from Touches";
    }
  }

  // Unknown vertices are -1, not garbage.
  EXPECT_EQ(service.Locate(static_cast<VertexId>(s.g.NumVertices() + 1000)),
            -1);
}

// ----------------------------------------------- snapshots under concurrency

TEST(ServingSnapshotTest, EpochsAreMonotoneAndSizesStayConsistent) {
  const Scenario s = MakeScenario(600, 19);
  ServiceOptions opts = BaseOptions(s, 4);
  opts.enable_drift_reactions = false;
  opts.publish_every_batches = 1;
  auto created = Service::Create(SmallWorkload(), opts);
  ASSERT_TRUE(created.ok());
  Service& service = **created;

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const PlacementSnapshot* snap = service.Snapshot();
        if (snap == nullptr) continue;
        // Epochs only move forward, and every snapshot is internally
        // consistent: the per-partition sizes sum to the assigned count.
        if (snap->epoch < last_epoch) torn.store(true);
        last_epoch = snap->epoch;
        size_t total = 0;
        for (const uint32_t size : snap->sizes) total += size;
        if (total != snap->num_assigned) torn.store(true);
      }
    });
  }

  const std::vector<VertexArrival>& arrivals = s.stream.arrivals();
  for (size_t off = 0; off < arrivals.size(); off += 32) {
    ASSERT_TRUE(service
                    .Ingest(arrivals.data() + off,
                            std::min<size_t>(32, arrivals.size() - off))
                    .ok());
  }
  ASSERT_TRUE(service.Seal().ok());
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  const ServiceStats stats = service.Stats();
  EXPECT_GE(stats.snapshots_published,
            arrivals.size() / 32 / opts.publish_every_batches);
  EXPECT_EQ(stats.snapshot_epoch + 1, stats.snapshots_published);
}

// --------------------------------------------------------- drift reactions

TEST(ServingDriftTest, ScenarioServesQueriesWhileTheReactionRuns) {
  ServingScenarioConfig config;
  config.n = 2500;
  config.num_clients = 4;
  config.arrivals_per_second = 200000.0;
  const ServingScenarioResult r = RunServingScenario(config);

  ASSERT_TRUE(r.ok) << "reactions=" << r.drift_reactions
                    << " assign_errors=" << r.assign_errors
                    << " ingested=" << r.ingested_vertices;
  EXPECT_GE(r.drift_fires, 1u);
  EXPECT_GE(r.drift_reactions, 1u);
  EXPECT_GT(r.queries_during_reaction, 0u)
      << "reads must proceed while the pipeline worker repartitions";
  EXPECT_EQ(r.assign_errors, 0u);
  EXPECT_GT(r.locate_queries, 0u);
  EXPECT_GT(r.touches_queries, 0u);
  // The reaction improved (or at worst kept) the cut: keep-best adoption.
  EXPECT_LE(r.reaction_cut_after, r.reaction_cut_before + 1e-12);
  // Percentiles are ordered within every latency population.
  for (const bench::LatencySummary* summary :
       {&r.ingest_batch_latency, &r.locate_latency, &r.touches_latency}) {
    EXPECT_LE(summary->p50_seconds, summary->p99_seconds);
    EXPECT_LE(summary->p99_seconds, summary->p999_seconds);
  }
}

TEST(ServingDriftTest, StableWorkloadNeverTriggersAReaction) {
  const Scenario s = MakeScenario(500, 23);
  const Workload workload = SmallWorkload();
  ServiceOptions opts = BaseOptions(s, 4);
  opts.drift_check_every_queries = 8;
  auto created = Service::Create(workload, opts);
  ASSERT_TRUE(created.ok());
  Service& service = **created;
  ASSERT_TRUE(service.Ingest(s.stream.arrivals()).ok());
  service.Flush();

  // Traffic matching the reference distribution: checks run, nothing fires.
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const QuerySpec& q = workload.queries()[workload.SampleIndex(rng)];
    ASSERT_TRUE(service.ObserveQuery(q.pattern).ok());
  }
  ASSERT_TRUE(service.Seal().ok());

  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.drift_checks, 0u);
  EXPECT_EQ(stats.drift_fires, 0u);
  EXPECT_EQ(stats.drift_reactions, 0u);
  EXPECT_EQ(stats.observed_queries, 200u);
}

}  // namespace
}  // namespace loom
