// Tests for continuous workload summarisation: TpstryPP::RemoveQuery and the
// sliding WorkloadTracker (§4.2 "a window over Q").

#include <gtest/gtest.h>

#include "tpstry/workload_tracker.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

double SupportOf(const TpstryPP& trie, const LabeledGraph& motif) {
  const auto id = trie.FindBySignature(trie.scheme().SignatureOf(motif));
  return id.has_value() ? trie.node(*id).support : -1.0;
}

TEST(RemoveQueryTest, ExactInverseOfAdd) {
  TpstryPP trie(4);
  ASSERT_TRUE(trie.AddQuery(PaperQ2(), 2.0).ok());
  ASSERT_TRUE(trie.AddQuery(PaperQ3(), 1.0).ok());
  EXPECT_DOUBLE_EQ(SupportOf(trie, PathQuery({0, 1})), 3.0);

  ASSERT_TRUE(trie.RemoveQuery(PaperQ3(), 1.0).ok());
  EXPECT_DOUBLE_EQ(SupportOf(trie, PathQuery({0, 1})), 2.0);
  // q3-only motifs drop to zero support but the nodes remain.
  EXPECT_DOUBLE_EQ(SupportOf(trie, PaperQ3()), 0.0);
  EXPECT_DOUBLE_EQ(trie.TotalFrequency(), 2.0);

  ASSERT_TRUE(trie.RemoveQuery(PaperQ2(), 2.0).ok());
  EXPECT_DOUBLE_EQ(SupportOf(trie, PathQuery({0, 1})), 0.0);
  EXPECT_DOUBLE_EQ(trie.TotalFrequency(), 0.0);
}

TEST(RemoveQueryTest, FrequentSetFollowsRemoval) {
  TpstryPP trie(4);
  ASSERT_TRUE(trie.AddQuery(PaperQ2(), 1.0).ok());
  ASSERT_TRUE(trie.AddQuery(PaperQ1(), 1.0).ok());
  // abc motif frequent while q2 is in: support 1 of total 2.
  EXPECT_GE(SupportOf(trie, PaperQ2()), 1.0);
  ASSERT_TRUE(trie.RemoveQuery(PaperQ2(), 1.0).ok());
  EXPECT_DOUBLE_EQ(SupportOf(trie, PaperQ2()), 0.0);
  // q1 motifs unaffected.
  EXPECT_DOUBLE_EQ(SupportOf(trie, PaperQ1()), 1.0);
}

TEST(WorkloadTrackerTest, WindowBoundsQueries) {
  WorkloadTrackerOptions opts;
  opts.window_queries = 3;
  WorkloadTracker tracker(4, opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tracker.Observe(PaperQ2()).ok());
  }
  EXPECT_EQ(tracker.WindowSize(), 3u);
  EXPECT_EQ(tracker.NumObserved(), 10u);
  EXPECT_DOUBLE_EQ(tracker.trie().TotalFrequency(), 3.0);
}

TEST(WorkloadTrackerTest, DriftChangesFrequentMotifs) {
  WorkloadTrackerOptions opts;
  opts.window_queries = 4;
  WorkloadTracker tracker(4, opts);
  // Phase A: abc paths dominate.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(tracker.Observe(PaperQ2()).ok());
  EXPECT_DOUBLE_EQ(SupportOf(tracker.trie(), PaperQ2()), 4.0);
  // Phase B: the workload shifts entirely to the abab cycle.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(tracker.Observe(PaperQ1()).ok());
  EXPECT_DOUBLE_EQ(SupportOf(tracker.trie(), PaperQ2()), 0.0)
      << "expired motif must leave the summary";
  EXPECT_DOUBLE_EQ(SupportOf(tracker.trie(), PaperQ1()), 4.0);
}

TEST(WorkloadTrackerTest, SnapshotIsNormalized) {
  WorkloadTrackerOptions opts;
  opts.window_queries = 8;
  WorkloadTracker tracker(4, opts);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(tracker.Observe(PaperQ2()).ok());
  ASSERT_TRUE(tracker.Observe(PaperQ1()).ok());
  const TpstryPP snapshot = tracker.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.TotalFrequency(), 1.0);
  EXPECT_NEAR(SupportOf(snapshot, PaperQ2()), 0.75, 1e-12);
  // The live trie is unchanged.
  EXPECT_DOUBLE_EQ(tracker.trie().TotalFrequency(), 4.0);
}

TEST(WorkloadTrackerTest, MixedShapesSupported) {
  WorkloadTrackerOptions opts;
  opts.window_queries = 16;
  WorkloadTracker tracker(5, opts);
  ASSERT_TRUE(tracker.Observe(TriangleQuery(0, 1, 2)).ok());
  ASSERT_TRUE(tracker.Observe(StarQuery(3, {4, 4})).ok());
  ASSERT_TRUE(tracker.Observe(PathQuery({0, 1, 2, 3})).ok());
  EXPECT_GT(tracker.trie().NumNodes(), 8u);
  EXPECT_EQ(tracker.WindowSize(), 3u);
}

TEST(WorkloadTrackerTest, PathsOnlyMode) {
  WorkloadTrackerOptions opts;
  opts.window_queries = 4;
  opts.paths_only = true;
  WorkloadTracker tracker(4, opts);
  ASSERT_TRUE(tracker.Observe(PaperQ1()).ok());
  // The cycle node must not exist in paths-only mode.
  EXPECT_EQ(SupportOf(tracker.trie(), PaperQ1()), -1.0);
  EXPECT_GT(SupportOf(tracker.trie(), PathQuery({0, 1, 0})), 0.0);
}

}  // namespace
}  // namespace loom
