// Property, differential and golden-hash tests for the streaming edge
// partitioners (src/edge_partition/): HDRF and DBH over the back-edge
// ArrivalSource cursor.
//
//  * Properties: every edge placed exactly once; replication factor >= 1
//    and per-vertex replicas within max_partitions_per_vertex; per-
//    partition edge counts within the slack bound when no fallback fired;
//    determinism across repeated runs and across materialised-vs-file-
//    backed sources.
//  * Differential: an independent brute-force oracle (std::map/std::set
//    state, per-step score recomputation) must match the production
//    placements edge-for-edge on small random graphs.
//  * Golden hashes: FNV pins of the HDRF/DBH placement logs on the ER/BA
//    bench families, same regeneration protocol as equivalence_test.cc
//    (set LOOM_EQUIV_DUMP=1 to print the current build's hashes).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "edge_partition/dbh_partitioner.h"
#include "edge_partition/edge_partitioner.h"
#include "edge_partition/edge_restream.h"
#include "edge_partition/hdrf_partitioner.h"
#include "edge_partition/workload_heat.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "metrics/metrics.h"
#include "stream/arrival_source.h"
#include "stream/stream.h"
#include "tpstry/tpstry_pp.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

GraphStream SmallStream(uint32_t n, uint32_t m, uint64_t seed) {
  Rng rng(seed);
  LabeledGraph g = ErdosRenyiGnm(n, m, LabelConfig{4, 0.3}, rng);
  return MakeStream(g, StreamOrder::kRandom, rng);
}

GraphStream PowerLawStream(uint32_t n, uint32_t degree, uint64_t seed) {
  Rng rng(seed);
  LabeledGraph g = BarabasiAlbert(n, degree, LabelConfig{4, 0.3}, rng);
  return MakeStream(g, StreamOrder::kNatural, rng);
}

uint64_t CountStreamEdges(const GraphStream& stream) {
  uint64_t edges = 0;
  for (const VertexArrival& a : stream.arrivals()) {
    edges += a.back_edges.size();
  }
  return edges;
}

uint64_t PlacementHash(const std::vector<uint32_t>& placements) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const uint32_t p : placements) {
    h = HashCombine(h, static_cast<uint64_t>(p) + 1);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Brute-force oracles: independent re-implementations with per-step score
// recomputation over ordered containers. Deliberately share no state code
// with the production classes (ReplicaSet, the eligibility helpers).

struct OracleState {
  std::map<VertexId, std::set<uint32_t>> parts;
  std::map<VertexId, uint64_t> degree;
  std::vector<uint64_t> load;
  uint64_t edge_capacity = 0;
  uint32_t replica_cap = 0;

  explicit OracleState(const EdgePartitionerOptions& raw) {
    const EdgePartitionerOptions opt = SanitizeEdgePartitionerOptions(raw);
    load.assign(opt.k, 0);
    edge_capacity =
        ComputeEdgeCapacity(opt.k, opt.num_edges_hint, opt.balance_slack);
    replica_cap =
        opt.max_partitions_per_vertex == 0 ? opt.k
                                           : opt.max_partitions_per_vertex;
  }

  bool WithinBudget(VertexId x, uint32_t p) const {
    const auto it = parts.find(x);
    if (it == parts.end()) return true;
    return it->second.count(p) > 0 || it->second.size() < replica_cap;
  }

  bool Eligible(VertexId u, VertexId v, uint32_t p) const {
    if (edge_capacity != 0 && load[p] >= edge_capacity) return false;
    return WithinBudget(u, p) && WithinBudget(v, p);
  }

  uint32_t Fallback(VertexId u, VertexId v) const {
    uint32_t best = static_cast<uint32_t>(load.size());
    for (uint32_t p = 0; p < load.size(); ++p) {
      if (!WithinBudget(u, p) || !WithinBudget(v, p)) continue;
      if (best == load.size() || load[p] < load[best]) best = p;
    }
    if (best != load.size()) return best;
    // Cap relaxation: least-loaded (lowest index on ties) partition already
    // holding either endpoint; least-loaded overall only when neither
    // endpoint holds any replica (unreachable once the caps bind).
    for (const VertexId x : {u, v}) {
      const auto it = parts.find(x);
      if (it == parts.end()) continue;
      for (const uint32_t p : it->second) {
        if (best == load.size() || load[p] < load[best] ||
            (load[p] == load[best] && p < best)) {
          best = p;
        }
      }
    }
    if (best != load.size()) return best;
    for (uint32_t p = 0; p < load.size(); ++p) {
      if (best == load.size() || load[p] < load[best]) best = p;
    }
    return best;
  }

  void Apply(VertexId u, VertexId v, uint32_t pick) {
    parts[u].insert(pick);
    parts[v].insert(pick);
    ++load[pick];
  }
};

std::vector<uint32_t> OracleHdrf(const GraphStream& stream,
                                 const EdgePartitionerOptions& raw) {
  const EdgePartitionerOptions opt = SanitizeEdgePartitionerOptions(raw);
  OracleState st(opt);
  std::vector<uint32_t> out;
  for (const VertexArrival& arrival : stream.arrivals()) {
    for (const VertexId nb : arrival.back_edges) {
      const VertexId u = arrival.vertex;
      const VertexId v = nb;
      ++st.degree[u];
      ++st.degree[v];
      const double du = static_cast<double>(st.degree[u]);
      const double dv = static_cast<double>(st.degree[v]);
      const double theta_u = du / (du + dv);
      const double theta_v = 1.0 - theta_u;
      uint64_t max_size = 0;
      uint64_t min_size = ~uint64_t{0};
      for (const uint64_t l : st.load) {
        max_size = std::max(max_size, l);
        min_size = std::min(min_size, l);
      }
      const double spread = 1.0 + static_cast<double>(max_size - min_size);
      uint32_t best = opt.k;
      double best_score = 0.0;
      for (uint32_t p = 0; p < opt.k; ++p) {
        if (!st.Eligible(u, v, p)) continue;
        double score = 0.0;
        if (st.parts.count(u) > 0 && st.parts[u].count(p) > 0) {
          score += 1.0 + (1.0 - theta_u);
        }
        if (st.parts.count(v) > 0 && st.parts[v].count(p) > 0) {
          score += 1.0 + (1.0 - theta_v);
        }
        score += opt.lambda *
                 (static_cast<double>(max_size - st.load[p]) / spread);
        if (best == opt.k || score > best_score) {
          best = p;
          best_score = score;
        }
      }
      if (best == opt.k) best = st.Fallback(u, v);
      st.Apply(u, v, best);
      out.push_back(best);
    }
  }
  return out;
}

std::vector<uint32_t> OracleDbh(const GraphStream& stream,
                                const EdgePartitionerOptions& raw) {
  const EdgePartitionerOptions opt = SanitizeEdgePartitionerOptions(raw);
  OracleState st(opt);
  std::vector<uint32_t> out;
  for (const VertexArrival& arrival : stream.arrivals()) {
    for (const VertexId nb : arrival.back_edges) {
      const VertexId u = arrival.vertex;
      const VertexId v = nb;
      ++st.degree[u];
      ++st.degree[v];
      VertexId target = v;
      if (st.degree[u] < st.degree[v] ||
          (st.degree[u] == st.degree[v] && u < v)) {
        target = u;
      }
      uint32_t pick = static_cast<uint32_t>(
          MixBits(static_cast<uint64_t>(target) + opt.seed) % opt.k);
      if (!st.Eligible(u, v, pick)) pick = st.Fallback(u, v);
      st.Apply(u, v, pick);
      out.push_back(pick);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Properties

class EdgePartitionPropertyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(EdgePartitionPropertyTest, EveryEdgePlacedExactlyOnce) {
  const GraphStream stream = SmallStream(600, 2400, 7);
  const uint64_t m = CountStreamEdges(stream);
  EdgePartitionerOptions opt;
  opt.k = 8;
  opt.num_edges_hint = m;
  auto part = MakeEdgePartitioner(GetParam(), opt);
  ASSERT_TRUE(part.ok());
  StreamCursor cursor(stream);
  (*part)->Run(cursor);

  EXPECT_EQ((*part)->stats().edges_assigned, m);
  EXPECT_EQ((*part)->placements().size(), m);
  uint64_t total = 0;
  for (const uint64_t c : (*part)->edge_counts()) total += c;
  EXPECT_EQ(total, m);
  EXPECT_EQ((*part)->stats().assign_errors, 0u);
}

TEST_P(EdgePartitionPropertyTest, ReplicationFactorWithinBounds) {
  // cap > k/2: two capped endpoints must share a partition, so preference 1
  // of the fallback always lands and the cap is a hard invariant.
  const GraphStream stream = PowerLawStream(800, 6, 11);
  EdgePartitionerOptions opt;
  opt.k = 8;
  opt.max_partitions_per_vertex = 5;
  opt.num_edges_hint = CountStreamEdges(stream);
  auto part = MakeEdgePartitioner(GetParam(), opt);
  ASSERT_TRUE(part.ok());
  StreamCursor cursor(stream);
  (*part)->Run(cursor);

  const double rf = ReplicationFactor((*part)->replicas());
  EXPECT_GE(rf, 1.0);
  EXPECT_LE(rf, 5.0 + 1e-12);
  EXPECT_EQ((*part)->stats().cap_relaxations, 0u);
  ASSERT_TRUE((*part)->replicas().CheckInvariants());
  for (VertexId v = 0; v < stream.arrivals().size(); ++v) {
    EXPECT_LE((*part)->replicas().NumReplicasOf(v), 5u);
  }
}

TEST_P(EdgePartitionPropertyTest, TightReplicaCapIsAccountedWhenRelaxed) {
  // cap <= k/2: disjoint capped endpoint sets are possible; every vertex
  // past the cap must be explained by a counted relaxation.
  const GraphStream stream = PowerLawStream(800, 6, 11);
  EdgePartitionerOptions opt;
  opt.k = 8;
  opt.max_partitions_per_vertex = 3;
  opt.num_edges_hint = CountStreamEdges(stream);
  auto part = MakeEdgePartitioner(GetParam(), opt);
  ASSERT_TRUE(part.ok());
  StreamCursor cursor(stream);
  (*part)->Run(cursor);

  EXPECT_GE(ReplicationFactor((*part)->replicas()), 1.0);
  ASSERT_TRUE((*part)->replicas().CheckInvariants());
  uint64_t over_cap = 0;
  for (VertexId v = 0; v < stream.arrivals().size(); ++v) {
    const size_t replicas = (*part)->replicas().NumReplicasOf(v);
    if (replicas > 3u) over_cap += replicas - 3u;
  }
  // Each relaxed edge pushes at most one endpoint one partition past its
  // budget, so the counter dominates the total excess.
  EXPECT_LE(over_cap, (*part)->stats().cap_relaxations);
}

TEST_P(EdgePartitionPropertyTest, BalanceWithinSlackBound) {
  const GraphStream stream = SmallStream(500, 3000, 13);
  const uint64_t m = CountStreamEdges(stream);
  EdgePartitionerOptions opt;
  opt.k = 6;
  opt.balance_slack = 1.2;
  opt.num_edges_hint = m;
  auto part = MakeEdgePartitioner(GetParam(), opt);
  ASSERT_TRUE(part.ok());
  StreamCursor cursor(stream);
  (*part)->Run(cursor);

  // The hard bound holds whenever no edge had to be re-routed past it.
  if ((*part)->stats().overflow_fallbacks == 0) {
    const uint64_t cap = ComputeEdgeCapacity(opt.k, m, opt.balance_slack);
    for (const uint64_t c : (*part)->edge_counts()) {
      EXPECT_LE(c, cap);
    }
  }
  EXPECT_EQ((*part)->stats().cap_relaxations, 0u);
  EXPECT_GT(EdgeBalanceMaxOverAvg((*part)->edge_counts()), 0.0);
}

TEST_P(EdgePartitionPropertyTest, DeterministicAcrossRepeatedRuns) {
  const GraphStream stream = SmallStream(400, 1600, 17);
  EdgePartitionerOptions opt;
  opt.k = 5;
  opt.num_edges_hint = CountStreamEdges(stream);
  auto a = MakeEdgePartitioner(GetParam(), opt);
  auto b = MakeEdgePartitioner(GetParam(), opt);
  ASSERT_TRUE(a.ok() && b.ok());
  StreamCursor ca(stream);
  (*a)->Run(ca);
  StreamCursor cb(stream);
  (*b)->Run(cb);
  EXPECT_EQ((*a)->placements(), (*b)->placements());

  // And across Reset + re-run on the same instance.
  (*a)->Reset();
  StreamCursor cc(stream);
  (*a)->Run(cc);
  EXPECT_EQ((*a)->placements(), (*b)->placements());
}

TEST_P(EdgePartitionPropertyTest, FileBackedMatchesMaterialized) {
  const GraphStream stream = SmallStream(300, 1200, 19);
  const std::string path =
      TempPath(std::string("loom_edge_part_") + GetParam() + ".loomstrm");
  StreamFileOptions file_options;
  file_options.full_neighborhoods = false;
  ASSERT_TRUE(WriteStreamFile(stream, path, file_options).ok());

  EdgePartitionerOptions opt;
  opt.k = 7;
  opt.num_edges_hint = CountStreamEdges(stream);

  auto mem = MakeEdgePartitioner(GetParam(), opt);
  ASSERT_TRUE(mem.ok());
  StreamCursor cursor(stream);
  (*mem)->Run(cursor);

  auto file_source = FileArrivalSource::Open(path);
  ASSERT_TRUE(file_source.ok()) << file_source.status().ToString();
  auto file_part = MakeEdgePartitioner(GetParam(), opt);
  ASSERT_TRUE(file_part.ok());
  (*file_part)->Run(**file_source);

  EXPECT_EQ((*mem)->placements(), (*file_part)->placements());
  EXPECT_EQ((*mem)->edge_counts(), (*file_part)->edge_counts());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(EdgePartition, EdgePartitionPropertyTest,
                         ::testing::Values("hdrf", "dbh"));

// ---------------------------------------------------------------------------
// Differential: production vs brute-force oracle, edge-for-edge.

TEST(EdgePartitionDifferentialTest, HdrfMatchesOracle) {
  for (const uint64_t seed : {3u, 23u, 101u}) {
    for (const double lambda : {0.0, 1.0, 4.0}) {
      const GraphStream stream = SmallStream(120, 480, seed);
      EdgePartitionerOptions opt;
      opt.k = 4;
      opt.lambda = lambda;
      opt.num_edges_hint = CountStreamEdges(stream);
      opt.max_partitions_per_vertex = 2;
      HdrfPartitioner part(opt);
      StreamCursor cursor(stream);
      part.Run(cursor);
      EXPECT_EQ(part.placements(), OracleHdrf(stream, opt))
          << "seed=" << seed << " lambda=" << lambda;
    }
  }
}

TEST(EdgePartitionDifferentialTest, DbhMatchesOracle) {
  for (const uint64_t seed : {5u, 29u, 97u}) {
    const GraphStream stream = PowerLawStream(150, 4, seed);
    EdgePartitionerOptions opt;
    opt.k = 4;
    opt.num_edges_hint = CountStreamEdges(stream);
    DbhPartitioner part(opt);
    StreamCursor cursor(stream);
    part.Run(cursor);
    EXPECT_EQ(part.placements(), OracleDbh(stream, opt)) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// HDRF vs DBH: the classic power-law result the bench table reproduces.

TEST(EdgePartitionQualityTest, HdrfBeatsDbhOnPowerLaw) {
  const GraphStream stream = PowerLawStream(3000, 6, 2024);
  EdgePartitionerOptions opt;
  opt.k = 16;
  opt.num_edges_hint = CountStreamEdges(stream);
  HdrfPartitioner hdrf(opt);
  DbhPartitioner dbh(opt);
  StreamCursor ca(stream);
  hdrf.Run(ca);
  StreamCursor cb(stream);
  dbh.Run(cb);
  EXPECT_LE(ReplicationFactor(hdrf.replicas()),
            ReplicationFactor(dbh.replicas()));
}

// ---------------------------------------------------------------------------
// Options contract

TEST(EdgePartitionOptionsTest, ValidateRejectsBadFields) {
  EdgePartitionerOptions opt;
  opt.k = 0;
  EXPECT_FALSE(ValidateEdgePartitionerOptions(opt).ok());
  opt = EdgePartitionerOptions();
  opt.lambda = -1.0;
  EXPECT_FALSE(ValidateEdgePartitionerOptions(opt).ok());
  opt = EdgePartitionerOptions();
  opt.balance_slack = 0.5;
  EXPECT_FALSE(ValidateEdgePartitionerOptions(opt).ok());
  opt = EdgePartitionerOptions();
  opt.heat_weight = -0.1;
  EXPECT_FALSE(ValidateEdgePartitionerOptions(opt).ok());
  opt = EdgePartitionerOptions();
  opt.max_partitions_per_vertex = 1;
  opt.k = 4;
  EXPECT_FALSE(ValidateEdgePartitionerOptions(opt).ok());
  EXPECT_TRUE(ValidateEdgePartitionerOptions(EdgePartitionerOptions()).ok());
}

TEST(EdgePartitionOptionsTest, SanitizeClampsToSafeValues) {
  EdgePartitionerOptions opt;
  opt.k = 0;
  opt.lambda = -3.0;
  opt.balance_slack = 0.0;
  opt.heat_weight = -1.0;
  const EdgePartitionerOptions safe = SanitizeEdgePartitionerOptions(opt);
  EXPECT_EQ(safe.k, 1u);
  EXPECT_EQ(safe.lambda, 0.0);
  EXPECT_EQ(safe.balance_slack, 1.0);
  EXPECT_EQ(safe.heat_weight, 0.0);

  EdgePartitionerOptions capped;
  capped.k = 4;
  capped.max_partitions_per_vertex = 9;
  EXPECT_EQ(SanitizeEdgePartitionerOptions(capped).max_partitions_per_vertex,
            4u);
  capped.max_partitions_per_vertex = 1;
  EXPECT_EQ(SanitizeEdgePartitionerOptions(capped).max_partitions_per_vertex,
            2u);
}

TEST(EdgePartitionFactoryTest, KnownNamesAndErrors) {
  EXPECT_EQ(KnownEdgePartitioners().size(), 2u);
  EXPECT_TRUE(IsKnownEdgePartitioner("hdrf"));
  EXPECT_TRUE(IsKnownEdgePartitioner("dbh"));
  EXPECT_FALSE(IsKnownEdgePartitioner("greedy"));
  EXPECT_FALSE(MakeEdgePartitioner("greedy", {}).ok());
  EdgePartitionerOptions bad;
  bad.k = 0;
  EXPECT_FALSE(MakeEdgePartitioner("hdrf", bad).ok());
  auto ok = MakeEdgePartitioner("hdrf", {});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->Name(), "hdrf");
}

// ---------------------------------------------------------------------------
// Workload-aware heat

TEST(WorkloadHeatTest, LabelHeatNormalisedAndDeterministic) {
  TpstryPP trie(4);
  ASSERT_TRUE(trie.AddQuery(PathQuery({0, 1}), 4.0).ok());
  ASSERT_TRUE(trie.AddQuery(PathQuery({2, 2}), 1.0).ok());
  const std::vector<double> heat = LabelHeatFromTrie(trie);
  ASSERT_GE(heat.size(), 3u);
  EXPECT_DOUBLE_EQ(heat[0], 1.0);  // hottest label maps to 1.0
  EXPECT_DOUBLE_EQ(heat[1], 1.0);
  EXPECT_GT(heat[2], 0.0);
  EXPECT_LT(heat[2], 1.0);
  EXPECT_EQ(heat, LabelHeatFromTrie(trie));

  const VertexHeatFn fn = MakeLabelHeatFn(heat);
  EXPECT_DOUBLE_EQ(fn(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(fn(0, 99), 0.0);  // past the table
}

TEST(WorkloadHeatTest, HeatInflatesEffectiveDegreeDeterministically) {
  const GraphStream stream = PowerLawStream(500, 4, 31);
  EdgePartitionerOptions opt;
  opt.k = 6;
  opt.num_edges_hint = CountStreamEdges(stream);
  opt.heat = [](VertexId, Label label) { return label == 0 ? 1.0 : 0.0; };
  opt.heat_weight = 4.0;
  HdrfPartitioner a(opt);
  HdrfPartitioner b(opt);
  StreamCursor ca(stream);
  a.Run(ca);
  StreamCursor cb(stream);
  b.Run(cb);
  EXPECT_EQ(a.placements(), b.placements());
  EXPECT_EQ(a.stats().assign_errors, 0u);
  EXPECT_GE(ReplicationFactor(a.replicas()), 1.0);
}

// ---------------------------------------------------------------------------
// Budgeted edge restream

TEST(EdgeRestreamTest, KeepBestNeverRegresses) {
  const GraphStream stream = PowerLawStream(1000, 5, 41);
  StreamCursor cursor(stream);
  EdgePartitionerOptions opt;
  opt.k = 8;
  opt.num_edges_hint = CountStreamEdges(stream);
  HdrfPartitioner part(opt);
  EdgeRestreamOptions ropt;
  ropt.num_passes = 3;
  EdgeRestreamer restreamer(&cursor, ropt);
  auto result = restreamer.Run(&part);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->passes.size(), 3u);
  double prev_best = result->passes[0].best_replication_factor;
  for (const EdgeRestreamPassStats& pass : result->passes) {
    EXPECT_LE(pass.best_replication_factor, prev_best + 1e-12);
    prev_best = pass.best_replication_factor;
    EXPECT_EQ(pass.assign_errors, 0u);
  }
  EXPECT_DOUBLE_EQ(result->replication_factor,
                   result->passes.back().best_replication_factor);
  EXPECT_EQ(result->placements.size(), CountStreamEdges(stream));
}

TEST(EdgeRestreamTest, ZeroBudgetFreezesPlacement) {
  const GraphStream stream = SmallStream(400, 1600, 43);
  StreamCursor cursor(stream);
  EdgePartitionerOptions opt;
  opt.k = 6;
  opt.num_edges_hint = CountStreamEdges(stream);
  HdrfPartitioner part(opt);
  EdgeRestreamOptions ropt;
  ropt.num_passes = 2;
  ropt.max_migration_fraction = 0.0;
  EdgeRestreamer restreamer(&cursor, ropt);
  auto result = restreamer.Run(&part);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->passes[1].moved_fraction, 0.0);
  EXPECT_DOUBLE_EQ(result->passes[1].replication_factor,
                   result->passes[0].replication_factor);
}

TEST(EdgeRestreamTest, BudgetIsStrict) {
  const GraphStream stream = PowerLawStream(800, 5, 47);
  StreamCursor cursor(stream);
  const uint64_t m = CountStreamEdges(stream);
  EdgePartitionerOptions opt;
  opt.k = 8;
  opt.num_edges_hint = m;
  DbhPartitioner part(opt);
  EdgeRestreamOptions ropt;
  ropt.num_passes = 2;
  ropt.max_migration_fraction = 0.05;
  ropt.keep_best = false;
  EdgeRestreamer restreamer(&cursor, ropt);
  auto result = restreamer.Run(&part);
  ASSERT_TRUE(result.ok());
  const uint64_t budget = static_cast<uint64_t>(0.05 * m);
  EXPECT_LE(result->passes[1].moved_fraction * static_cast<double>(m),
            static_cast<double>(budget) + 0.5);
}

TEST(EdgeRestreamTest, RequiresPlacementLog) {
  const GraphStream stream = SmallStream(100, 300, 53);
  StreamCursor cursor(stream);
  EdgePartitionerOptions opt;
  opt.record_placements = false;
  HdrfPartitioner part(opt);
  EdgeRestreamer restreamer(&cursor, EdgeRestreamOptions());
  EXPECT_EQ(restreamer.Run(&part).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EdgeRestreamTest, OptionsContract) {
  EdgeRestreamOptions opt;
  opt.num_passes = 0;
  EXPECT_FALSE(ValidateEdgeRestreamOptions(opt).ok());
  EXPECT_EQ(SanitizeEdgeRestreamOptions(opt).num_passes, 1u);
  opt = EdgeRestreamOptions();
  opt.max_migration_fraction = -0.5;
  EXPECT_FALSE(ValidateEdgeRestreamOptions(opt).ok());
  EXPECT_EQ(SanitizeEdgeRestreamOptions(opt).max_migration_fraction, 0.0);
  EXPECT_TRUE(ValidateEdgeRestreamOptions(EdgeRestreamOptions()).ok());
}

// ---------------------------------------------------------------------------
// Golden hashes: ER/BA bench families, bench-fast shape (4000 vertices).
// Regenerate with LOOM_EQUIV_DUMP=1.

struct GoldenRow {
  const char* family;
  const char* partitioner;
  uint64_t hash;
};

constexpr uint32_t kGoldenN = 4000;

GraphStream GoldenFamily(const std::string& name) {
  Rng rng(2024);
  if (name == "erdos_renyi") {
    LabeledGraph g = ErdosRenyiGnm(kGoldenN, kGoldenN * 4, LabelConfig{4, 0.3},
                                   rng);
    return MakeStream(g, StreamOrder::kRandom, rng);
  }
  LabeledGraph g = BarabasiAlbert(kGoldenN, 4, LabelConfig{4, 0.3}, rng);
  return MakeStream(g, StreamOrder::kNatural, rng);
}

constexpr GoldenRow kGolden[] = {
    {"erdos_renyi", "hdrf", 0x85efe6309e75006aull},
    {"erdos_renyi", "dbh", 0xc63f8b04156f5977ull},
    {"barabasi_albert", "hdrf", 0x7abb7f69dc730426ull},
    {"barabasi_albert", "dbh", 0x2d2e086f7280eed7ull},
};

TEST(EdgePartitionGoldenTest, PlacementHashesMatchPins) {
  const bool dump = std::getenv("LOOM_EQUIV_DUMP") != nullptr;
  for (const GoldenRow& row : kGolden) {
    const GraphStream stream = GoldenFamily(row.family);
    EdgePartitionerOptions opt;
    opt.k = 8;
    opt.num_edges_hint = CountStreamEdges(stream);
    auto part = MakeEdgePartitioner(row.partitioner, opt);
    ASSERT_TRUE(part.ok());
    StreamCursor cursor(stream);
    (*part)->Run(cursor);
    const uint64_t hash = PlacementHash((*part)->placements());
    if (dump) {
      std::cout << "{\"" << row.family << "\", \"" << row.partitioner
                << "\", 0x" << std::hex << hash << std::dec << "ull},\n";
      continue;
    }
    EXPECT_EQ(hash, row.hash) << row.family << "/" << row.partitioner;
  }
}

// ---------------------------------------------------------------------------
// Scalar-vs-bitmask kernel equivalence. The word-parallel HDRF kernel
// (replica bitmasks + incremental load bounds) must reproduce the scalar
// reference loop bit-for-bit — same pins, both kernels, with the balance
// weight at its default and cranked up so the balance-group argmin path
// (not just the replica-affinity path) decides placements.

struct KernelPinRow {
  const char* family;
  double lambda;
  uint64_t hash;
};

constexpr KernelPinRow kKernelPins[] = {
    {"erdos_renyi", 1.0, 0x85efe6309e75006aull},
    {"erdos_renyi", 4.0, 0x67061a19970c18e9ull},
    {"barabasi_albert", 1.0, 0x7abb7f69dc730426ull},
    {"barabasi_albert", 4.0, 0x0224d0850d6c2dd4ull},
};

TEST(EdgePartitionGoldenTest, ScalarAndBitmaskKernelsMatchPins) {
  const bool dump = std::getenv("LOOM_EQUIV_DUMP") != nullptr;
  for (const KernelPinRow& row : kKernelPins) {
    const GraphStream stream = GoldenFamily(row.family);
    EdgePartitionerOptions opt;
    opt.k = 8;
    opt.lambda = row.lambda;
    opt.num_edges_hint = CountStreamEdges(stream);
    for (const bool scalar : {true, false}) {
      HdrfPartitioner part(opt);
      part.set_force_scalar_kernel(scalar);
      StreamCursor cursor(stream);
      part.Run(cursor);
      const uint64_t hash = PlacementHash(part.placements());
      if (dump) {
        if (scalar) {
          std::cout << "{\"" << row.family << "\", " << row.lambda << ", 0x"
                    << std::hex << hash << std::dec << "ull},\n";
        }
        continue;
      }
      EXPECT_EQ(hash, row.hash)
          << row.family << " lambda=" << row.lambda
          << (scalar ? " scalar" : " bitmask");
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded edge restream

EdgePartitionerOptions ShardedOptions(uint64_t num_edges) {
  EdgePartitionerOptions opt;
  opt.k = 8;
  opt.num_edges_hint = num_edges;
  return opt;
}

TEST(EdgeRestreamShardedTest, OneShardBitIdenticalToSerial) {
  // One shard still runs the full plan/clone/merge machinery, so this pins
  // the whole sharded path (budget floors, capacity slices, AdoptMergedPass
  // replay) against the serial driver — placements, quality metrics and
  // every per-pass counter must match exactly.
  const GraphStream stream = PowerLawStream(1200, 5, 61);
  const uint64_t m = CountStreamEdges(stream);
  for (const char* name : {"hdrf", "dbh"}) {
    EdgeRestreamOptions ropt;
    ropt.num_passes = 3;
    ropt.max_migration_fraction = 0.2;

    auto serial_part = MakeEdgePartitioner(name, ShardedOptions(m));
    ASSERT_TRUE(serial_part.ok());
    StreamCursor serial_cursor(stream);
    EdgeRestreamer serial(&serial_cursor, ropt);
    auto serial_result = serial.Run((*serial_part).get());
    ASSERT_TRUE(serial_result.ok()) << name;

    auto sharded_part = MakeEdgePartitioner(name, ShardedOptions(m));
    ASSERT_TRUE(sharded_part.ok());
    StreamCursor sharded_cursor(stream);
    EdgeRestreamer sharded(&sharded_cursor, ropt);
    auto sharded_result = sharded.RunSharded((*sharded_part).get(), 1);
    ASSERT_TRUE(sharded_result.ok()) << name;

    EXPECT_EQ(serial_result->placements, sharded_result->placements) << name;
    EXPECT_DOUBLE_EQ(serial_result->replication_factor,
                     sharded_result->replication_factor);
    EXPECT_DOUBLE_EQ(serial_result->balance, sharded_result->balance);
    ASSERT_EQ(serial_result->passes.size(), sharded_result->passes.size());
    for (size_t i = 0; i < serial_result->passes.size(); ++i) {
      const EdgeRestreamPassStats& a = serial_result->passes[i];
      const EdgeRestreamPassStats& b = sharded_result->passes[i];
      EXPECT_DOUBLE_EQ(a.replication_factor, b.replication_factor) << name;
      EXPECT_DOUBLE_EQ(a.best_replication_factor, b.best_replication_factor);
      EXPECT_DOUBLE_EQ(a.balance, b.balance) << name;
      EXPECT_DOUBLE_EQ(a.moved_fraction, b.moved_fraction) << name;
      EXPECT_EQ(a.overflow_fallbacks, b.overflow_fallbacks) << name;
      EXPECT_EQ(a.cap_relaxations, b.cap_relaxations) << name;
      EXPECT_EQ(a.assign_errors, b.assign_errors) << name;
      EXPECT_EQ(a.budget_denied_moves, b.budget_denied_moves) << name;
    }
  }
}

TEST(EdgeRestreamShardedTest, ShardSweepDeterministicBudgetedAndClean) {
  // Across shard counts: repeat runs are placement-identical (input-only
  // determinism), the global migration budget is never exceeded on any
  // pass, and no pass needs a cap relaxation or errors an assignment —
  // the capacity slices hand each shard a consistent fragment of the
  // global balance budget.
  const GraphStream stream = PowerLawStream(1500, 5, 67);
  const uint64_t m = CountStreamEdges(stream);
  EdgeRestreamOptions ropt;
  ropt.num_passes = 3;
  ropt.max_migration_fraction = 0.1;
  const uint64_t budget = static_cast<uint64_t>(0.1 * static_cast<double>(m));
  for (const char* name : {"hdrf", "dbh"}) {
    for (const uint32_t shards : {1u, 2u, 4u}) {
      std::vector<uint32_t> first;
      for (int rep = 0; rep < 2; ++rep) {
        auto part = MakeEdgePartitioner(name, ShardedOptions(m));
        ASSERT_TRUE(part.ok());
        StreamCursor cursor(stream);
        EdgeRestreamer restreamer(&cursor, ropt);
        auto result = restreamer.RunSharded((*part).get(), shards);
        ASSERT_TRUE(result.ok()) << name << " shards=" << shards;
        for (const EdgeRestreamPassStats& pass : result->passes) {
          EXPECT_EQ(pass.cap_relaxations, 0u)
              << name << " shards=" << shards << " pass=" << pass.pass;
          EXPECT_EQ(pass.assign_errors, 0u)
              << name << " shards=" << shards << " pass=" << pass.pass;
          if (pass.pass > 1) {
            EXPECT_LE(pass.moved_fraction * static_cast<double>(m),
                      static_cast<double>(budget) + 0.5)
                << name << " shards=" << shards << " pass=" << pass.pass;
            EXPECT_EQ(pass.num_shards, shards);
          }
        }
        if (rep == 0) {
          first = result->placements;
        } else {
          EXPECT_EQ(first, result->placements)
              << name << " shards=" << shards;
        }
      }
    }
  }
}

}  // namespace
}  // namespace loom
