// Experiment-shape regression tests: small-scale versions of the headline
// experiments (DESIGN.md §3) asserting the metric *orderings* that
// EXPERIMENTS.md reports, so the reproduction claims are CI-checked. Scales
// are reduced for test runtime; the bench binaries print the full tables.

#include <gtest/gtest.h>

#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "partition/offline_partitioner.h"
#include "replication/hotspot.h"
#include "stream/stream.h"
#include "tpstry/workload_tracker.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace loom {
namespace {

/// Shared fixture: motif-rich BA graph + mixed workload, natural order.
struct Scenario {
  LabeledGraph graph;
  GraphStream stream;
  Workload workload;
  PartitionerOptions popts;
};

Scenario MakeSetup(uint32_t n, uint32_t k, uint64_t seed) {
  Scenario s;
  Rng rng(seed);
  s.workload = Workload();
  EXPECT_TRUE(s.workload.Add("fof", PathQuery({0, 0, 0}), 3.0).ok());
  EXPECT_TRUE(s.workload.Add("tri", TriangleQuery(0, 1, 0), 2.0).ok());
  EXPECT_TRUE(s.workload.Add("chain", PathQuery({0, 1, 2}), 1.0).ok());
  s.workload.Normalize();
  s.graph = BarabasiAlbert(n, 3, LabelConfig{3, 0.3}, rng);
  for (const QuerySpec& q : s.workload.queries()) {
    PlantMotifs(&s.graph, q.pattern, n / 24, rng, /*locality_span=*/32);
  }
  s.stream = MakeStream(s.graph, StreamOrder::kNatural, rng);
  s.popts.k = k;
  s.popts.num_vertices_hint = s.graph.NumVertices();
  s.popts.num_edges_hint = s.graph.NumEdges();
  s.popts.window_size = 512;
  return s;
}

WorkloadIptStats RunLoomAndEvaluate(const Scenario& s, double threshold = 0.2) {
  LoomOptions lopts;
  lopts.partitioner = s.popts;
  lopts.matcher.frequency_threshold = threshold;
  auto loom = Loom::Create(s.workload, lopts);
  EXPECT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(s.stream);
  return EvaluateWorkloadIpt(s.graph, (*loom)->Partitioner().assignment(),
                             s.workload);
}

// E1 shape: hash cuts ~ (k-1)/k; LDG far less.
TEST(ExperimentShapes, E1_HashCutNearKMinusOneOverK) {
  const Scenario s = MakeSetup(6000, 8, 1);
  HashPartitioner hash(s.popts);
  hash.Run(s.stream);
  LdgPartitioner ldg(s.popts);
  ldg.Run(s.stream);
  const double hash_cut = EdgeCutFraction(s.graph, hash.assignment());
  const double ldg_cut = EdgeCutFraction(s.graph, ldg.assignment());
  EXPECT_NEAR(hash_cut, 7.0 / 8.0, 0.02);
  EXPECT_LT(ldg_cut, hash_cut * 0.8);  // at least 20% reduction
}

// E2 shape: loom >= ldg >> hash on single-partition answers; emb-cut
// ordering reversed.
TEST(ExperimentShapes, E2_WorkloadMetricsOrdering) {
  const Scenario s = MakeSetup(8000, 8, 2);
  HashPartitioner hash(s.popts);
  hash.Run(s.stream);
  LdgPartitioner ldg(s.popts);
  ldg.Run(s.stream);
  const WorkloadIptStats m_hash =
      EvaluateWorkloadIpt(s.graph, hash.assignment(), s.workload);
  const WorkloadIptStats m_ldg =
      EvaluateWorkloadIpt(s.graph, ldg.assignment(), s.workload);
  const WorkloadIptStats m_loom = RunLoomAndEvaluate(s);

  EXPECT_GT(m_ldg.single_partition_fraction,
            m_hash.single_partition_fraction * 3);
  EXPECT_GT(m_loom.single_partition_fraction,
            m_ldg.single_partition_fraction);
  EXPECT_LT(m_loom.embedding_cut_fraction, m_ldg.embedding_cut_fraction);
  EXPECT_LT(m_ldg.embedding_cut_fraction, m_hash.embedding_cut_fraction);
}

// E2 corollary (the paper's motivating argument): the offline partitioner
// wins edge-cut yet loses the workload metrics to loom.
TEST(ExperimentShapes, E2_EdgeCutIsNotWorkloadQuality) {
  const Scenario s = MakeSetup(6000, 8, 3);
  OfflineOptions oopts;
  oopts.k = 8;
  oopts.seed = 3;
  auto offline = OfflineMultilevelPartition(s.graph, oopts);
  ASSERT_TRUE(offline.ok());
  const WorkloadIptStats m_off =
      EvaluateWorkloadIpt(s.graph, *offline, s.workload);

  LoomOptions lopts;
  lopts.partitioner = s.popts;
  lopts.matcher.frequency_threshold = 0.2;
  auto loom = Loom::Create(s.workload, lopts);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(s.stream);
  const WorkloadIptStats m_loom = EvaluateWorkloadIpt(
      s.graph, (*loom)->Partitioner().assignment(), s.workload);

  EXPECT_GT(m_loom.single_partition_fraction,
            m_off.single_partition_fraction);
  EXPECT_LT(m_loom.embedding_cut_fraction, m_off.embedding_cut_fraction);
}

// E3 shape: loom's advantage needs temporal locality — natural order beats
// adversarial order on loom's own answer locality.
TEST(ExperimentShapes, E3_OrderingSensitivity) {
  Scenario s = MakeSetup(6000, 8, 4);
  const WorkloadIptStats natural = RunLoomAndEvaluate(s);
  Rng rng(99);
  s.stream = MakeStream(s.graph, StreamOrder::kAdversarial, rng);
  const WorkloadIptStats adversarial = RunLoomAndEvaluate(s);
  EXPECT_GT(natural.single_partition_fraction,
            adversarial.single_partition_fraction);
}

// E5 shape: a threshold above every support degenerates loom to windowed
// LDG (zero cluster vertices).
TEST(ExperimentShapes, E5_ThresholdDegeneration) {
  const Scenario s = MakeSetup(3000, 4, 5);
  LoomOptions lopts;
  lopts.partitioner = s.popts;
  lopts.matcher.frequency_threshold = 1.01;
  auto loom = Loom::Create(s.workload, lopts);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(s.stream);
  EXPECT_EQ((*loom)->Partitioner().loom_stats().cluster_vertices, 0u);
}

// E11 shape: hotspot replication reduces ipt on top of loom's layout.
TEST(ExperimentShapes, E11_ReplicationComplementsLoom) {
  const Scenario s = MakeSetup(5000, 8, 6);
  LoomOptions lopts;
  lopts.partitioner = s.popts;
  lopts.matcher.frequency_threshold = 0.2;
  auto loom = Loom::Create(s.workload, lopts);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(s.stream);
  const auto& assignment = (*loom)->Partitioner().assignment();

  const double before =
      EvaluateWorkloadIpt(s.graph, assignment, s.workload).ipt_probability;
  ReplicationOptions ropts;
  ropts.budget_fraction = 0.05;
  const ReplicaSet replicas =
      ComputeHotspotReplicas(s.graph, assignment, s.workload, ropts);
  const double after =
      EvaluateWorkloadIpt(s.graph, assignment, s.workload, 20000, &replicas)
          .ipt_probability;
  EXPECT_LT(after, before * 0.8);  // at least 20% ipt reduction at 5% budget
}

// E12 shape: after workload drift, the tracker snapshot beats the stale
// summary on live traffic.
TEST(ExperimentShapes, E12_TrackerBeatsStaleSummary) {
  Rng rng(7);
  Workload workload_a;
  ASSERT_TRUE(workload_a.Add("a", PathQuery({0, 1, 0}), 1.0).ok());
  workload_a.Normalize();
  Workload workload_b;
  ASSERT_TRUE(workload_b.Add("b", TriangleQuery(2, 3, 2), 1.0).ok());
  workload_b.Normalize();

  LabeledGraph g = BarabasiAlbert(6000, 3, LabelConfig{4, 0.2}, rng);
  PlantMotifs(&g, workload_a.queries()[0].pattern, 250, rng, 32);
  PlantMotifs(&g, workload_b.queries()[0].pattern, 250, rng, 32);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  WorkloadTrackerOptions topts;
  topts.window_queries = 64;
  WorkloadTracker tracker(4, topts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tracker.Observe(workload_a.queries()[0].pattern).ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tracker.Observe(workload_b.queries()[0].pattern).ok());
  }
  const TpstryPP snapshot = tracker.Snapshot();

  LoomOptions lopts;
  lopts.partitioner.k = 8;
  lopts.partitioner.num_vertices_hint = g.NumVertices();
  lopts.partitioner.window_size = 512;
  lopts.matcher.frequency_threshold = 0.2;

  auto stale = Loom::Create(workload_a, lopts);
  ASSERT_TRUE(stale.ok());
  (*stale)->Partitioner().Run(stream);
  LoomPartitioner fresh(lopts, &snapshot);
  fresh.Run(stream);

  const double stale_1part =
      EvaluateWorkloadIpt(g, (*stale)->Partitioner().assignment(), workload_b)
          .single_partition_fraction;
  const double fresh_1part =
      EvaluateWorkloadIpt(g, fresh.assignment(), workload_b)
          .single_partition_fraction;
  EXPECT_GT(fresh_1part, stale_1part);
}

}  // namespace
}  // namespace loom
