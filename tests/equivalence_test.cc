// Pipeline-equivalence regression tests for the hot-path container overhaul:
// the flat-container retrofit (FlatMap / SmallVector / run-length
// FactorMultiset) must be behaviour-preserving, so the full streaming
// pipeline — window, matcher, scoring, assignment — has to produce
// bit-identical `PartitionAssignment`s to the node-container implementation
// it replaced.
//
// The GOLDEN_* constants below are FNV-style hashes of the assignment
// vectors produced by the pre-overhaul implementation (std::unordered_map
// window/matcher/trie, std::map trie children, flat sorted-vector factor
// multisets) on the two bench graph families under the bench-fast
// configuration. They were captured by running this exact scenario against
// that implementation; any behavioural drift in the refactor shows up as a
// hash mismatch here (and therefore as a changed edge-cut/balance row in
// BENCH_edge_cut.json).
//
// Set LOOM_EQUIV_DUMP=1 to print the hashes the current build produces
// (the regeneration path, used when behaviour changes *intentionally*).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "core/loom.h"
#include "graph/generators.h"
#include "partition/buffered_ldg_partitioner.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream.h"
#include "workload/workload_gen.h"

namespace loom {
namespace {

constexpr uint32_t kN = 4000;
constexpr uint32_t kK = 8;

/// FNV-combine over the dense assignment vector (+1 shifts unassigned -1 to
/// 0 so it also participates). Platform-stable: integer-only.
uint64_t AssignmentHash(const PartitionAssignment& a, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (VertexId v = 0; v < n; ++v) {
    h = HashCombine(h, static_cast<uint64_t>(a.PartOf(v) + 1));
  }
  return h;
}

struct Family {
  std::string name;
  LabeledGraph graph;
  GraphStream stream;
};

/// The two bench-fast graph families, motif-planted so LOOM's cluster path
/// (matcher + closure + cluster LDG) is actually exercised.
std::vector<Family> MakeFamilies(const Workload& workload) {
  std::vector<Family> out;
  {
    Family f;
    f.name = "erdos_renyi";
    Rng rng(2024);
    f.graph = ErdosRenyiGnm(kN, kN * 4, LabelConfig{4, 0.3}, rng);
    for (const QuerySpec& q : workload.queries()) {
      PlantMotifs(&f.graph, q.pattern, kN / 24, rng, /*locality_span=*/32);
    }
    f.stream = MakeStream(f.graph, StreamOrder::kRandom, rng);
    out.push_back(std::move(f));
  }
  {
    Family f;
    f.name = "barabasi_albert";
    Rng rng(2024);
    f.graph = BarabasiAlbert(kN, 4, LabelConfig{4, 0.3}, rng);
    for (const QuerySpec& q : workload.queries()) {
      PlantMotifs(&f.graph, q.pattern, kN / 24, rng, /*locality_span=*/32);
    }
    f.stream = MakeStream(f.graph, StreamOrder::kNatural, rng);
    out.push_back(std::move(f));
  }
  return out;
}

Workload MakeWorkload() {
  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  return MixedMotifWorkload(wopts);
}

struct GoldenRow {
  const char* family;
  const char* partitioner;
  uint64_t hash;
};

// Captured from the pre-overhaul (node-container) implementation; see file
// comment. Regenerate with LOOM_EQUIV_DUMP=1.
// Note: ldg == fennel == ldg-buffered on the Erdős–Rényi instance is
// genuine, not a degenerate hash (verified by element-wise comparison):
// Fennel's size penalty never overrides an edge-count difference at this
// scale, and a FIFO-evicted buffered window sees exactly the back-edge
// scoring information the one-shot heuristic saw (forward neighbours are
// still buffered, hence unassigned, at eviction time).
constexpr GoldenRow kGolden[] = {
    {"erdos_renyi", "hash", 0x884dafd34fe08cfcull},
    {"erdos_renyi", "ldg", 0xe556ce168089010cull},
    {"erdos_renyi", "fennel", 0xe556ce168089010cull},
    {"erdos_renyi", "ldg-buffered", 0xe556ce168089010cull},
    {"erdos_renyi", "loom", 0xcf8a04c502f605b1ull},
    {"barabasi_albert", "hash", 0x884dafd34fe08cfcull},
    {"barabasi_albert", "ldg", 0x2e8017d766d03600ull},
    {"barabasi_albert", "fennel", 0x36203e5aea151c46ull},
    {"barabasi_albert", "ldg-buffered", 0x2e8017d766d03600ull},
    {"barabasi_albert", "loom", 0xc32d8ec6d6055e45ull},
};

uint64_t RunOne(const Family& f, const Workload& workload,
                const std::string& partitioner) {
  PartitionerOptions popts;
  popts.k = kK;
  popts.num_vertices_hint = f.graph.NumVertices();
  popts.num_edges_hint = f.graph.NumEdges();
  popts.window_size = 256;

  if (partitioner == "hash") {
    HashPartitioner p(popts);
    p.Run(f.stream);
    return AssignmentHash(p.assignment(), f.graph.NumVertices());
  }
  if (partitioner == "ldg") {
    LdgPartitioner p(popts);
    p.Run(f.stream);
    return AssignmentHash(p.assignment(), f.graph.NumVertices());
  }
  if (partitioner == "fennel") {
    FennelPartitioner p(popts);
    p.Run(f.stream);
    return AssignmentHash(p.assignment(), f.graph.NumVertices());
  }
  if (partitioner == "ldg-buffered") {
    BufferedLdgPartitioner p(popts);
    p.Run(f.stream);
    return AssignmentHash(p.assignment(), f.graph.NumVertices());
  }
  LoomOptions lopts;
  lopts.partitioner = popts;
  lopts.matcher.frequency_threshold = 0.15;
  auto loom = Loom::Create(workload, lopts);
  EXPECT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(f.stream);
  return AssignmentHash((*loom)->Partitioner().assignment(),
                        f.graph.NumVertices());
}

TEST(PipelineEquivalence, AssignmentsMatchPreOverhaulGoldens) {
  const bool dump = std::getenv("LOOM_EQUIV_DUMP") != nullptr;
  const Workload workload = MakeWorkload();
  const std::vector<Family> families = MakeFamilies(workload);

  for (const Family& f : families) {
    for (const char* name :
         {"hash", "ldg", "fennel", "ldg-buffered", "loom"}) {
      const uint64_t h = RunOne(f, workload, name);
      if (dump) {
        std::cout << "    {\"" << f.name << "\", \"" << name << "\", 0x"
                  << std::hex << h << std::dec << "ull},\n";
        continue;
      }
      bool found = false;
      for (const GoldenRow& row : kGolden) {
        if (f.name == row.family && std::string(name) == row.partitioner) {
          EXPECT_EQ(h, row.hash) << f.name << "/" << name
                                 << ": assignment diverged from the "
                                    "pre-overhaul implementation";
          found = true;
        }
      }
      EXPECT_TRUE(found) << "no golden row for " << f.name << "/" << name;
    }
  }
}

// Determinism guard: the pipeline run twice from scratch must agree with
// itself — catches any accidental dependence on container iteration order or
// address-seeded hashing sneaking into placement decisions.
TEST(PipelineEquivalence, RepeatedRunsAreDeterministic) {
  const Workload workload = MakeWorkload();
  const std::vector<Family> families = MakeFamilies(workload);
  for (const Family& f : families) {
    for (const char* name : {"ldg", "fennel", "loom"}) {
      EXPECT_EQ(RunOne(f, workload, name), RunOne(f, workload, name))
          << f.name << "/" << name;
    }
  }
}

}  // namespace
}  // namespace loom
