// Tests for the workload model, query builders and generators.

#include <gtest/gtest.h>

#include "workload/query_builders.h"
#include "workload/workload.h"
#include "workload/workload_gen.h"

namespace loom {
namespace {

TEST(WorkloadTest, AddValidatesInput) {
  Workload w;
  EXPECT_FALSE(w.Add("empty", LabeledGraph(), 1.0).ok());
  EXPECT_FALSE(w.Add("zero-freq", PathQuery({0, 1}), 0.0).ok());
  LabeledGraph disconnected;
  disconnected.AddVertex(0);
  disconnected.AddVertex(1);
  EXPECT_FALSE(w.Add("disconnected", disconnected, 1.0).ok());
  EXPECT_TRUE(w.Add("ok", PathQuery({0, 1}), 1.0).ok());
  EXPECT_EQ(w.NumQueries(), 1u);
}

TEST(WorkloadTest, NormalizeScalesToOne) {
  Workload w;
  ASSERT_TRUE(w.Add("a", PathQuery({0, 1}), 3.0).ok());
  ASSERT_TRUE(w.Add("b", PathQuery({1, 2}), 1.0).ok());
  w.Normalize();
  EXPECT_DOUBLE_EQ(w.TotalFrequency(), 1.0);
  EXPECT_DOUBLE_EQ(w.queries()[0].frequency, 0.75);
  EXPECT_DOUBLE_EQ(w.queries()[1].frequency, 0.25);
}

TEST(WorkloadTest, NumLabelsCoversAllPatterns) {
  Workload w;
  ASSERT_TRUE(w.Add("a", PathQuery({0, 5}), 1.0).ok());
  EXPECT_EQ(w.NumLabels(), 6u);
}

TEST(WorkloadTest, SampleFollowsFrequencies) {
  Workload w;
  ASSERT_TRUE(w.Add("heavy", PathQuery({0, 1}), 9.0).ok());
  ASSERT_TRUE(w.Add("light", PathQuery({1, 2}), 1.0).ok());
  w.Normalize();
  Rng rng(1);
  int heavy = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (w.SampleIndex(rng) == 0) ++heavy;
  }
  EXPECT_NEAR(heavy / static_cast<double>(trials), 0.9, 0.02);
}

TEST(QueryBuildersTest, Shapes) {
  EXPECT_EQ(PathQuery({0, 1, 2}).NumEdges(), 2u);
  EXPECT_EQ(StarQuery(0, {1, 2, 3}).NumEdges(), 3u);
  EXPECT_EQ(CycleQuery({0, 1, 2, 3}).NumEdges(), 4u);
  EXPECT_EQ(CliqueQuery({0, 1, 2, 3}).NumEdges(), 6u);
  EXPECT_EQ(TriangleQuery(0, 1, 2).NumEdges(), 3u);
  EXPECT_TRUE(IsConnected(StarQuery(0, {1, 2, 3, 4})));
}

TEST(QueryBuildersTest, RandomConnectedQueryIsConnected) {
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const LabeledGraph q = RandomConnectedQuery(5, 2, 3, rng);
    EXPECT_TRUE(IsConnected(q));
    EXPECT_EQ(q.NumVertices(), 5u);
    EXPECT_GE(q.NumEdges(), 4u);
  }
}

TEST(QueryBuildersTest, PaperFixtures) {
  const LabeledGraph g = PaperFigure1Graph();
  EXPECT_EQ(g.NumVertices(), 8u);
  EXPECT_EQ(g.NumEdges(), 9u);
  // Label layout from Figure 1.
  EXPECT_EQ(g.LabelOf(0), kLabelA);
  EXPECT_EQ(g.LabelOf(1), kLabelB);
  EXPECT_EQ(g.LabelOf(2), kLabelC);
  EXPECT_EQ(g.LabelOf(3), kLabelD);
  EXPECT_EQ(g.LabelOf(4), kLabelB);
  EXPECT_EQ(g.LabelOf(5), kLabelA);
  EXPECT_EQ(g.LabelOf(6), kLabelD);
  EXPECT_EQ(g.LabelOf(7), kLabelC);

  const Workload w = PaperFigure1Workload();
  EXPECT_EQ(w.NumQueries(), 3u);
  EXPECT_EQ(w.NumLabels(), 4u);
  EXPECT_NEAR(w.queries()[0].frequency, 1.0 / 3.0, 1e-12);
}

TEST(WorkloadGenTest, PathWorkloadShapes) {
  WorkloadGenOptions o;
  o.num_queries = 8;
  o.max_pattern_vertices = 5;
  const Workload w = PathWorkload(o);
  EXPECT_EQ(w.NumQueries(), 8u);
  for (const QuerySpec& q : w.queries()) {
    // Paths: m = n - 1 and max degree 2.
    EXPECT_EQ(q.pattern.NumEdges(), q.pattern.NumVertices() - 1);
    for (VertexId v = 0; v < q.pattern.NumVertices(); ++v) {
      EXPECT_LE(q.pattern.Degree(v), 2u);
    }
  }
}

TEST(WorkloadGenTest, MixedWorkloadConnectedAndSmall) {
  WorkloadGenOptions o;
  o.num_queries = 10;
  o.max_pattern_vertices = 5;
  const Workload w = MixedMotifWorkload(o);
  EXPECT_EQ(w.NumQueries(), 10u);
  for (const QuerySpec& q : w.queries()) {
    EXPECT_TRUE(IsConnected(q.pattern));
    EXPECT_LE(q.pattern.NumVertices(), 6u);
    EXPECT_GE(q.pattern.NumVertices(), 2u);
  }
}

TEST(WorkloadGenTest, SkewedFrequenciesDescend) {
  WorkloadGenOptions o;
  o.num_queries = 6;
  o.frequency_skew = 1.2;
  const Workload w = MixedMotifWorkload(o);
  for (size_t i = 1; i < w.NumQueries(); ++i) {
    EXPECT_GE(w.queries()[i - 1].frequency, w.queries()[i].frequency);
  }
}

TEST(WorkloadGenTest, LookupWorkloadIsSingleVertices) {
  WorkloadGenOptions o;
  o.num_labels = 4;
  o.num_queries = 4;
  const Workload w = LookupWorkload(o);
  for (const QuerySpec& q : w.queries()) {
    EXPECT_EQ(q.pattern.NumVertices(), 1u);
    EXPECT_EQ(q.pattern.NumEdges(), 0u);
  }
}

TEST(WorkloadGenTest, DeterministicBySeed) {
  WorkloadGenOptions o;
  o.seed = 123;
  const Workload w1 = MixedMotifWorkload(o);
  const Workload w2 = MixedMotifWorkload(o);
  ASSERT_EQ(w1.NumQueries(), w2.NumQueries());
  for (size_t i = 0; i < w1.NumQueries(); ++i) {
    EXPECT_EQ(w1.queries()[i].pattern.NumVertices(),
              w2.queries()[i].pattern.NumVertices());
    EXPECT_EQ(w1.queries()[i].pattern.NumEdges(),
              w2.queries()[i].pattern.NumEdges());
  }
}

}  // namespace
}  // namespace loom
