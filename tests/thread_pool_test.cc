// Tests for the fixed worker pool behind the sharded restream engine:
// futures carry results and exceptions, every submitted task runs exactly
// once (including across destruction), and ParallelFor covers every index.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace loom {
namespace {

TEST(ThreadPoolTest, SubmitReturnsTaskResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.NumThreads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ManyTasksOnFewWorkersAllRunExactlyOnce) {
  constexpr size_t kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> done;
    for (size_t i = 0; i < kTasks; ++i) {
      done.push_back(pool.Submit([&runs, i] { runs[i].fetch_add(1); }));
    }
    for (auto& f : done) f.get();
  }
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No explicit join: the destructor must drain the queue.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ExceptionsArriveThroughTheFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexAndRethrows) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> runs(64);
  for (auto& r : runs) r.store(0);
  ParallelFor(pool, runs.size(),
              [&runs](size_t i) { runs[i].fetch_add(1); });
  int total = 0;
  for (auto& r : runs) total += r.load();
  EXPECT_EQ(total, 64);

  EXPECT_THROW(ParallelFor(pool, 4,
                           [](size_t i) {
                             if (i == 2) throw std::runtime_error("index 2");
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace loom
