// End-to-end integration tests: workload -> TPSTry++ -> stream -> LOOM ->
// partitioning -> query execution, asserting the paper's qualitative claims
// on controlled inputs.

#include <gtest/gtest.h>

#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"
#include "workload/workload_gen.h"

namespace loom {
namespace {

struct Pipeline {
  LabeledGraph graph;
  GraphStream stream;
  Workload workload;
};

Pipeline MotifRichPipeline(uint32_t n, uint64_t seed) {
  Pipeline p;
  Rng rng(seed);
  p.workload = Workload();
  EXPECT_TRUE(p.workload.Add("fof", PathQuery({0, 0, 0}), 4.0).ok());
  EXPECT_TRUE(p.workload.Add("tri", TriangleQuery(0, 1, 0), 2.0).ok());
  EXPECT_TRUE(p.workload.Add("chain", PathQuery({0, 1, 2}), 1.0).ok());
  p.workload.Normalize();
  p.graph = BarabasiAlbert(n, 3, LabelConfig{3, 0.3}, rng);
  for (const QuerySpec& q : p.workload.queries()) {
    PlantMotifs(&p.graph, q.pattern, n / 20, rng, /*locality_span=*/32);
  }
  p.stream = MakeStream(p.graph, StreamOrder::kNatural, rng);
  return p;
}

TEST(IntegrationTest, LoomImprovesAnswerLocalityOverLdg) {
  const Pipeline p = MotifRichPipeline(6000, 11);

  PartitionerOptions popts;
  popts.k = 8;
  popts.num_vertices_hint = p.graph.NumVertices();
  popts.num_edges_hint = p.graph.NumEdges();
  popts.window_size = 512;

  LdgPartitioner ldg(popts);
  ldg.Run(p.stream);
  LoomOptions lopts;
  lopts.partitioner = popts;
  lopts.matcher.frequency_threshold = 0.2;
  auto loom = Loom::Create(p.workload, lopts);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(p.stream);

  const WorkloadIptStats ldg_stats =
      EvaluateWorkloadIpt(p.graph, ldg.assignment(), p.workload);
  const WorkloadIptStats loom_stats = EvaluateWorkloadIpt(
      p.graph, (*loom)->Partitioner().assignment(), p.workload);

  // The abstract's claim: LOOM increases the likelihood that a random query
  // is answered within a single partition.
  EXPECT_GT(loom_stats.single_partition_fraction,
            ldg_stats.single_partition_fraction);
  // And answer edges are cut less often.
  EXPECT_LT(loom_stats.embedding_cut_fraction,
            ldg_stats.embedding_cut_fraction);
}

TEST(IntegrationTest, EveryPartitionerBeatsHashOnIpt) {
  const Pipeline p = MotifRichPipeline(4000, 22);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = p.graph.NumVertices();
  popts.num_edges_hint = p.graph.NumEdges();

  HashPartitioner hash(popts);
  hash.Run(p.stream);
  LdgPartitioner ldg(popts);
  ldg.Run(p.stream);
  LoomOptions lopts;
  lopts.partitioner = popts;
  lopts.matcher.frequency_threshold = 0.2;
  auto loom = Loom::Create(p.workload, lopts);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(p.stream);

  const double hash_ipt =
      EvaluateWorkloadIpt(p.graph, hash.assignment(), p.workload)
          .ipt_probability;
  EXPECT_LT(EvaluateWorkloadIpt(p.graph, ldg.assignment(), p.workload)
                .ipt_probability,
            hash_ipt);
  EXPECT_LT(EvaluateWorkloadIpt(p.graph, (*loom)->Partitioner().assignment(),
                                p.workload)
                .ipt_probability,
            hash_ipt);
}

TEST(IntegrationTest, QueryAnswersIdenticalAcrossPartitioners) {
  // Partitioning is physical layout only: answers must be identical.
  const Pipeline p = MotifRichPipeline(1500, 33);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = p.graph.NumVertices();

  HashPartitioner hash(popts);
  hash.Run(p.stream);
  LoomOptions lopts;
  lopts.partitioner = popts;
  auto loom = Loom::Create(p.workload, lopts);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(p.stream);

  for (const QuerySpec& q : p.workload.queries()) {
    const auto via_hash = ExecuteQuery(p.graph, hash.assignment(), q.pattern);
    const auto via_loom =
        ExecuteQuery(p.graph, (*loom)->Partitioner().assignment(), q.pattern);
    EXPECT_EQ(via_hash.num_embeddings, via_loom.num_embeddings)
        << "query " << q.name;
  }
}

TEST(IntegrationTest, WindowSizeImprovesCaptureMonotonically) {
  const Pipeline p = MotifRichPipeline(3000, 44);
  auto run = [&](size_t window) {
    PartitionerOptions popts;
    popts.k = 4;
    popts.num_vertices_hint = p.graph.NumVertices();
    popts.window_size = window;
    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = 0.2;
    auto loom = Loom::Create(p.workload, lopts);
    EXPECT_TRUE(loom.ok());
    (*loom)->Partitioner().Run(p.stream);
    return (*loom)->Partitioner().loom_stats().cluster_vertices;
  };
  // More window -> at least as many vertices assigned via motif clusters.
  const auto tiny = run(8);
  const auto medium = run(128);
  const auto large = run(1024);
  EXPECT_LE(tiny, medium * 11 / 10);  // allow small non-monotonic wiggle
  EXPECT_GT(large, tiny);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  const Pipeline p = MotifRichPipeline(1000, 55);
  auto run = [&]() {
    PartitionerOptions popts;
    popts.k = 4;
    popts.num_vertices_hint = p.graph.NumVertices();
    LoomOptions lopts;
    lopts.partitioner = popts;
    auto loom = Loom::Create(p.workload, lopts);
    EXPECT_TRUE(loom.ok());
    (*loom)->Partitioner().Run(p.stream);
    std::vector<int32_t> parts;
    for (VertexId v = 0; v < p.graph.NumVertices(); ++v) {
      parts.push_back((*loom)->Partitioner().assignment().PartOf(v));
    }
    return parts;
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, GeneratedWorkloadsRunEndToEnd) {
  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  wopts.num_labels = 3;
  wopts.max_pattern_vertices = 4;
  for (const Workload& w :
       {PathWorkload(wopts), MixedMotifWorkload(wopts)}) {
    Rng rng(66);
    LabeledGraph g = BarabasiAlbert(2000, 3, LabelConfig{3, 0.0}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
    LoomOptions lopts;
    lopts.partitioner.k = 4;
    lopts.partitioner.num_vertices_hint = g.NumVertices();
    lopts.matcher.frequency_threshold = 0.3;
    auto loom = Loom::Create(w, lopts);
    ASSERT_TRUE(loom.ok());
    (*loom)->Partitioner().Run(stream);
    EXPECT_TRUE(AllAssigned(g, (*loom)->Partitioner().assignment()));
  }
}

}  // namespace
}  // namespace loom
