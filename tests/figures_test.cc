// Executable reproductions of the paper's three figures (experiments F1-F3
// in DESIGN.md): the Figure 1 example, the Figure 2 TPSTry++, and the
// Figure 3 stream-matching scenario, wired through the public API end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/loom.h"
#include "matching/stream_matcher.h"
#include "motif/isomorphism.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace loom {
namespace {

// F1: "the answer to q1 would be the sub-graph of G containing the vertices
// 1, 2, 5, 6 and their interconnecting edges" (§1).
TEST(FigureTest, F1_Q1AnswerIsPaperVertexSet) {
  const LabeledGraph g = PaperFigure1Graph();
  PartitionAssignment all_local(1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_TRUE(all_local.Assign(v, 0).ok());
  }
  const QueryExecutionStats stats = ExecuteQuery(g, all_local, PaperQ1());
  EXPECT_GT(stats.num_embeddings, 0u);
  std::set<std::set<VertexId>> sets;
  ForEachEmbedding(PaperQ1(), g, [&](const std::vector<VertexId>& m) {
    sets.insert(std::set<VertexId>(m.begin(), m.end()));
    return true;
  });
  ASSERT_EQ(sets.size(), 1u);
  // Paper ids 1,2,5,6 are our ids 0,1,4,5.
  EXPECT_EQ(*sets.begin(), (std::set<VertexId>{0, 1, 4, 5}));
}

// F2: the TPSTry++ of Figure 2 summarises Q = {q1, q2, q3}: 14 motifs with
// the right parent/child lattice (see tpstry_pp_test for the full inventory;
// here we drive it through the public facade).
TEST(FigureTest, F2_TrieMatchesFigure) {
  LoomOptions o;
  o.partitioner.k = 2;
  o.partitioner.num_vertices_hint = 8;
  auto loom = Loom::Create(PaperFigure1Workload(), o);
  ASSERT_TRUE(loom.ok());
  const TpstryPP& trie = (*loom)->Trie();
  EXPECT_EQ(trie.NumNodes(), 14u);
  // Every node reachable from some root: count nodes reachable via children.
  std::set<TpstryNodeId> reachable;
  std::vector<TpstryNodeId> stack;
  for (const Label l : {kLabelA, kLabelB, kLabelC, kLabelD}) {
    const auto root = trie.RootFor(l);
    ASSERT_TRUE(root.has_value());
    stack.push_back(*root);
  }
  while (!stack.empty()) {
    const TpstryNodeId id = stack.back();
    stack.pop_back();
    if (!reachable.insert(id).second) continue;
    for (const TpstryNodeId c : trie.node(id).children) stack.push_back(c);
  }
  EXPECT_EQ(reachable.size(), trie.NumNodes());
}

// F3: the stream-matching scenario of Figure 3. S = abc matched; an edge
// arrives extending S to S' (not a motif); S' nevertheless contains two
// distinct abc instances, recovered only by the re-grow procedure.
TEST(FigureTest, F3_RegrowRecoversOverlappingMotif) {
  Workload w;
  ASSERT_TRUE(w.Add("abc", PathQuery({kLabelA, kLabelB, kLabelC}), 1.0).ok());
  w.Normalize();
  auto trie = BuildTrie(w);
  ASSERT_TRUE(trie.ok());

  auto run = [&](bool regrow) {
    StreamMatcherOptions mo;
    mo.frequency_threshold = 0.5;
    mo.use_regrow = regrow;
    mo.verify_exact = true;
    StreamMatcher m(trie->get(), mo);
    // Stream of Figure 3: a-b-c then a second c attaching to b.
    m.OnVertex(0, kLabelA, {});
    m.OnVertex(1, kLabelB, {0});
    m.OnVertex(2, kLabelC, {1});
    m.OnVertex(3, kLabelC, {1});
    const auto sets = m.FrequentMatchVertexSets();
    return std::find(sets.begin(), sets.end(),
                     std::vector<VertexId>{0, 1, 3}) != sets.end();
  };
  EXPECT_FALSE(run(false)) << "without re-grow the second abc is invisible";
  EXPECT_TRUE(run(true)) << "re-grow must recover the second abc (Fig. 3)";
}

// F3 follow-through (§4.4): because the two matches share sub-structure,
// LOOM must assign both abc instances to the same partition.
TEST(FigureTest, F3_OverlappingMatchesAssignedTogether) {
  Workload w;
  ASSERT_TRUE(w.Add("abc", PathQuery({kLabelA, kLabelB, kLabelC}), 1.0).ok());
  w.Normalize();

  LabeledGraph g;
  g.AddVertex(kLabelA);   // 0
  g.AddVertex(kLabelB);   // 1
  g.AddVertex(kLabelC);   // 2
  g.AddVertex(kLabelC);   // 3
  g.AddEdgeUnchecked(0, 1);
  g.AddEdgeUnchecked(1, 2);
  g.AddEdgeUnchecked(1, 3);
  const GraphStream stream = MakeStreamFromOrder(g, {0, 1, 2, 3});

  LoomOptions o;
  o.partitioner.k = 2;
  o.partitioner.num_vertices_hint = 4;
  o.partitioner.capacity_slack = 1.0;  // capacity 2: the cluster must fit...
  o.partitioner.window_size = 4;
  o.matcher.frequency_threshold = 0.5;
  o.matcher.verify_exact = true;
  // ...it cannot: 4 vertices > capacity 2, so relax slack instead.
  o.partitioner.capacity_slack = 2.0;
  auto loom = Loom::Create(w, o);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);
  const auto& a = (*loom)->Partitioner().assignment();
  EXPECT_EQ(a.PartOf(0), a.PartOf(1));
  EXPECT_EQ(a.PartOf(1), a.PartOf(2));
  EXPECT_EQ(a.PartOf(2), a.PartOf(3));
}

}  // namespace
}  // namespace loom
