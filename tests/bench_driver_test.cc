// Contract test for tools/run_benchmarks: `--fast` must produce valid JSON
// with the metric keys later PRs regress against (edge-cut fraction,
// balance, throughput). The binary path is injected by CMake via the
// RUN_BENCHMARKS_BIN compile definition.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <stdlib.h>  // mkdtemp
#endif

namespace loom {
namespace {

// ------------------------------------------------ minimal JSON validation
// A tiny recursive-descent checker: accepts exactly the JSON grammar (no
// extensions), which is all the contract needs — we assert validity and
// then look for specific keys in the raw text.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  // RFC 8259: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  bool Number() {
    if (Peek() == '-') ++pos_;
    if (Peek() == '0') {
      ++pos_;
    } else if (isdigit(static_cast<unsigned char>(Peek()))) {
      while (isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    } else {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return true;
  }

  bool Literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing file: " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

class BenchDriverTest : public ::testing::Test {
 protected:
  // Run the driver once for the whole fixture; --fast still takes seconds.
  // The output dir is unique per process (mkdtemp) so concurrent runs of
  // this binary never race on the same BENCH_*.json paths.
  static void SetUpTestSuite() {
#ifdef _WIN32
    GTEST_SKIP() << "driver contract test is POSIX-only";
#else
    std::string tmpl = ::testing::TempDir() + "loom_bench_driver_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl.data()), nullptr) << "mkdtemp failed: " << tmpl;
    out_dir_ = new std::string(tmpl);
    const std::string cmd = std::string(RUN_BENCHMARKS_BIN) +
                            " --fast --out " + *out_dir_ + " > /dev/null";
    exit_code_ = std::system(cmd.c_str());
#endif
  }
  static void TearDownTestSuite() {
    delete out_dir_;
    out_dir_ = nullptr;
  }

  static std::string* out_dir_;
  static int exit_code_;
};

std::string* BenchDriverTest::out_dir_ = nullptr;
int BenchDriverTest::exit_code_ = -1;

TEST_F(BenchDriverTest, ExitsCleanly) { EXPECT_EQ(exit_code_, 0); }

TEST_F(BenchDriverTest, EdgeCutJsonIsValidWithExpectedKeys) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_edge_cut.json");
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_NE(text.find("\"schema\": \"loom-bench-edge-cut-v8\""),
            std::string::npos);
  for (const char* key :
       {"\"edge_cut_fraction\"", "\"balance\"", "\"vertices_per_second\"",
        "\"partitioner\"", "\"graph\"", "\"peak_rss_bytes\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  // The standard set must be present: hash, ldg, fennel, buffered, loom,
  // plus the offline baseline.
  for (const char* p : {"\"hash\"", "\"ldg\"", "\"fennel\"", "\"loom\""}) {
    EXPECT_NE(text.find(p), std::string::npos) << "missing partitioner " << p;
  }
}

TEST_F(BenchDriverTest, EdgeCutJsonHasRestreamSection) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_edge_cut.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"restream\": ["), std::string::npos)
      << "missing restream section";
  for (const char* key :
       {"\"pass\"", "\"ordering\"", "\"best_edge_cut_fraction\"",
        "\"migration_fraction\"", "\"overflow_fallbacks\""}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing restream key " << key;
  }
}

TEST_F(BenchDriverTest, EdgeCutJsonHasParallelRestreamSection) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_edge_cut.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"parallel_restream\": ["), std::string::npos)
      << "missing parallel_restream section";
  // Schema v4 keys: the shard sweep, the share-nothing critical path /
  // speedup pair, and the serial-equivalence verdict the driver computes
  // for the 1-shard row (bit-identity with the serial reaction).
  for (const char* key :
       {"\"num_shards\"", "\"reaction_passes\"",
        "\"serial_edge_cut_fraction\"", "\"migration_budget_moves\"",
        "\"critical_path_seconds\"", "\"speedup_vs_serial\"",
        "\"wall_speedup\"", "\"serial_equivalent\": true"}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing parallel_restream key " << key;
  }
  // Both engines swept: the one-shot heuristic and the full LOOM pipeline.
  EXPECT_NE(text.find("\"num_shards\": 4"), std::string::npos)
      << "missing the 4-shard sweep point";
}

TEST_F(BenchDriverTest, EdgeCutJsonHasDriftSection) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_edge_cut.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"drift\": ["), std::string::npos)
      << "missing drift section";
  // The three strategies the reaction is bracketed between.
  for (const char* s : {"\"no-reaction\"", "\"drift-reaction\"",
                        "\"cold-restream\""}) {
    EXPECT_NE(text.find(s), std::string::npos) << "missing strategy " << s;
  }
  for (const char* key :
       {"\"scenario\"", "\"max_migration_fraction\"", "\"fire_tick\"",
        "\"forced_placements\"", "\"assign_errors\"",
        "\"budget_denied_moves\""}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing drift key " << key;
  }
}

TEST_F(BenchDriverTest, EdgeCutJsonHasServingSection) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_edge_cut.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"serving\": ["), std::string::npos)
      << "missing serving section";
  // One latency row per operation of the concurrent serving scenario.
  for (const char* op :
       {"\"ingest-batch\"", "\"locate\"", "\"touches\""}) {
    EXPECT_NE(text.find(op), std::string::npos) << "missing operation " << op;
  }
  for (const char* key :
       {"\"serving-under-drift\"", "\"num_clients\"", "\"front_end_shards\"",
        "\"p50_seconds\"", "\"p99_seconds\"", "\"p999_seconds\"",
        "\"queries_during_reaction\"", "\"drift_reactions\"",
        "\"snapshot_epoch\""}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing serving key " << key;
  }
  // The hard liveness/soundness floor CI also enforces: the drift loop ran
  // and the partitioner never errored while clients were reading.
  EXPECT_NE(text.find("\"assign_errors\": 0"), std::string::npos)
      << "serving scenario reported assignment errors";
}

TEST_F(BenchDriverTest, EdgeCutJsonHasLargeSection) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_edge_cut.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"large\": ["), std::string::npos)
      << "missing large section";
  // Schema v6 keys: the file-backed tier's provenance, the out-of-core
  // guarantee (zero materializations) and the asserted O(V) memory ceiling.
  for (const char* key :
       {"\"tier\": \"file-backed-ba\"", "\"file_bytes\"",
        "\"edge_cut_fraction_before\"", "\"edge_cut_fraction_after\"",
        "\"materializations\": 0", "\"rss_ceiling_bytes\"",
        "\"rss_ok\": true"}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing large key " << key;
  }
}

TEST_F(BenchDriverTest, EdgeCutJsonHasEdgePartitionSection) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_edge_cut.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"edge_partition\": ["), std::string::npos)
      << "missing edge_partition section";
  // Schema v7 keys: the vertex-cut quality axes (replication factor,
  // edge balance), both streaming algorithms on both tiers, and the
  // lambda knob the HDRF rows sweep. Schema v8 adds the sharded restream
  // sweep: shard count, share-nothing critical path, and the 1-shard
  // serial-equivalence verdict.
  for (const char* key :
       {"\"replication_factor\"", "\"edges_per_second\"",
        "\"restream_passes\"", "\"lambda\"", "\"cap_relaxations\"",
        "\"partitioner\": \"hdrf\"", "\"partitioner\": \"dbh\"",
        "\"tier\": \"in-memory\"", "\"tier\": \"file-backed-ba\"",
        "\"shards\"", "\"critical_path_seconds\"",
        "\"speedup_vs_serial\"", "\"serial_equivalent\": true"}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing edge_partition key " << key;
  }
}

TEST_F(BenchDriverTest, MicroJsonIsValidWithExpectedKeys) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_micro.json");
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_NE(text.find("\"schema\": \"loom-bench-micro-v3\""),
            std::string::npos);
  for (const char* key :
       {"\"name\"", "\"iterations\"", "\"seconds\"", "\"ns_per_op\"",
        "\"ops_per_second\"", "\"peak_rss_bytes\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  // The three hot-path loops the container overhaul is gated on.
  for (const char* name : {"\"window_churn\"", "\"trie_signature_lookup\"",
                           "\"signature_multiply_edge\""}) {
    EXPECT_NE(text.find(name), std::string::npos) << "missing loop " << name;
  }
}

TEST_F(BenchDriverTest, MicroJsonHasThroughputSection) {
  const std::string text = ReadFileOrDie(*out_dir_ + "/BENCH_micro.json");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"throughput\": ["), std::string::npos)
      << "missing throughput section";
  for (const char* key :
       {"\"family\"", "\"vertices_per_second\"", "\"edges_per_second\"",
        "\"num_vertices\"", "\"num_edges\""}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing throughput key " << key;
  }
  // The end-to-end pipeline (loom) plus the reference heuristics.
  for (const char* p : {"\"hash\"", "\"ldg\"", "\"loom\""}) {
    EXPECT_NE(text.find(p), std::string::npos)
        << "missing throughput partitioner " << p;
  }
}

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker("{}").Valid());
  EXPECT_TRUE(JsonChecker("{\"a\": [1, 2.5e-3, \"x\"], \"b\": {}}").Valid());
  EXPECT_TRUE(JsonChecker("[-0.5, 0, 1e+9, true, null]").Valid());
  EXPECT_FALSE(JsonChecker("{\"a\": }").Valid());
  EXPECT_FALSE(JsonChecker("{").Valid());
  EXPECT_FALSE(JsonChecker("{} trailing").Valid());
  // Non-JSON number tokens must be rejected.
  EXPECT_FALSE(JsonChecker("1.2.3").Valid());
  EXPECT_FALSE(JsonChecker("-").Valid());
  EXPECT_FALSE(JsonChecker("+5").Valid());
  EXPECT_FALSE(JsonChecker("1e++2").Valid());
  EXPECT_FALSE(JsonChecker("01").Valid());
  EXPECT_FALSE(JsonChecker("1.").Valid());
}

}  // namespace
}  // namespace loom
