// Tests for exact canonical forms of small labelled graphs — the TPSTry++
// node-identity oracle. Includes randomized property sweeps: relabelled
// permutations of a graph must canonicalise identically, and graphs that
// differ in labels or topology must not.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "graph/generators.h"
#include "motif/canonical.h"
#include "motif/isomorphism.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

/// Applies a random vertex permutation to `g` (same graph, shuffled ids).
LabeledGraph Permuted(const LabeledGraph& g, Rng& rng) {
  std::vector<VertexId> perm(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) perm[v] = v;
  rng.Shuffle(&perm);
  // perm[v] = new id of old vertex v.
  std::vector<Label> labels(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    labels[perm[v]] = g.LabelOf(v);
  }
  LabeledGraph out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) out.AddVertex(labels[v]);
  g.ForEachEdge([&](VertexId u, VertexId v) {
    out.AddEdgeUnchecked(perm[u], perm[v]);
  });
  return out;
}

TEST(CanonicalTest, EmptyAndSingle) {
  LabeledGraph empty;
  EXPECT_TRUE(CanonicalForm(empty).ok());
  LabeledGraph single;
  single.AddVertex(3);
  LabeledGraph single2;
  single2.AddVertex(3);
  LabeledGraph single_other;
  single_other.AddVertex(4);
  EXPECT_EQ(CanonicalForm(single).value(), CanonicalForm(single2).value());
  EXPECT_NE(CanonicalForm(single).value(),
            CanonicalForm(single_other).value());
}

TEST(CanonicalTest, LabelSensitive) {
  const LabeledGraph p1 = PathQuery({0, 1, 2});
  const LabeledGraph p2 = PathQuery({0, 1, 3});
  EXPECT_NE(CanonicalForm(p1).value(), CanonicalForm(p2).value());
}

TEST(CanonicalTest, DirectionInvariantForPaths) {
  const LabeledGraph fwd = PathQuery({0, 1, 2});
  const LabeledGraph rev = PathQuery({2, 1, 0});
  EXPECT_EQ(CanonicalForm(fwd).value(), CanonicalForm(rev).value());
}

TEST(CanonicalTest, TopologySensitive) {
  // Same label multiset and edge count: path a-a-a-a + chord vs star.
  LabeledGraph path = PathQuery({0, 0, 0, 0});
  LabeledGraph star = StarQuery(0, {0, 0, 0});
  EXPECT_NE(CanonicalForm(path).value(), CanonicalForm(star).value());
}

TEST(CanonicalTest, TriangleVsPathSameLabels) {
  // Triangle a-b-c vs path a-b-c-a? A path cannot revisit; use 3-vertex
  // comparisons: triangle (3 edges) vs path (2 edges) differ trivially, so
  // compare two distinct 4-vertex graphs with equal label multisets and
  // edge counts: C4 abab vs path abab + pendant chord arrangement.
  const LabeledGraph cycle = CycleQuery({0, 1, 0, 1});
  LabeledGraph zigzag = PathQuery({0, 1, 0, 1});
  zigzag.AddEdgeUnchecked(0, 2);  // a-a chord: different edge label multiset
  EXPECT_NE(CanonicalForm(cycle).value(), CanonicalForm(zigzag).value());
}

TEST(CanonicalTest, AreIsomorphicBasics) {
  EXPECT_TRUE(AreIsomorphic(PaperQ1(), CycleQuery({1, 0, 1, 0})));
  EXPECT_FALSE(AreIsomorphic(PaperQ1(), CycleQuery({0, 0, 1, 1})));
  EXPECT_FALSE(AreIsomorphic(PaperQ2(), PaperQ3()));
}

TEST(CanonicalTest, RejectsOversizedGraphs) {
  Rng rng(1);
  const LabeledGraph big = RandomTree(kMaxCanonicalVertices + 1,
                                      LabelConfig{2, 0.0}, rng);
  EXPECT_FALSE(CanonicalForm(big).ok());
}

TEST(CanonicalTest, HighSymmetryWithinBudget) {
  // K6 with uniform labels: 6! = 720 permutations in one class — fine.
  Rng rng(2);
  const LabeledGraph k6 = Complete(6, LabelConfig{1, 0.0}, rng);
  EXPECT_TRUE(CanonicalForm(k6).ok());
}

// Property sweep: canonical form is permutation-invariant across random
// small graphs of varying size/density/label count.
class CanonicalProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(CanonicalProperty, PermutationInvariant) {
  const auto [num_vertices, num_labels] = GetParam();
  Rng rng(num_vertices * 131 + num_labels);
  for (int trial = 0; trial < 40; ++trial) {
    const LabeledGraph g = RandomConnectedQuery(
        num_vertices, /*extra_edges=*/trial % 4, num_labels, rng);
    const LabeledGraph h = Permuted(g, rng);
    const auto cg = CanonicalForm(g);
    const auto ch = CanonicalForm(h);
    ASSERT_TRUE(cg.ok() && ch.ok());
    EXPECT_EQ(cg.value(), ch.value())
        << "permuted graph canonicalised differently:\n"
        << g.ToString() << "vs\n"
        << h.ToString();
  }
}

TEST_P(CanonicalProperty, DistinctGraphsRarelyCollide) {
  const auto [num_vertices, num_labels] = GetParam();
  Rng rng(num_vertices * 977 + num_labels);
  // Canonical strings of structurally distinct graphs must differ. Build a
  // set and check that isomorphic duplicates are the only collisions, via
  // brute-force embedding in both directions.
  std::unordered_map<std::string, LabeledGraph> seen;
  for (int trial = 0; trial < 60; ++trial) {
    const LabeledGraph g =
        RandomConnectedQuery(num_vertices, trial % 3, num_labels, rng);
    const auto canon = CanonicalForm(g);
    ASSERT_TRUE(canon.ok());
    const auto it = seen.find(canon.value());
    if (it != seen.end()) {
      // Claimed isomorphic: must have identical vertex/edge counts and
      // label multisets.
      EXPECT_EQ(g.NumVertices(), it->second.NumVertices());
      EXPECT_EQ(g.NumEdges(), it->second.NumEdges());
    } else {
      seen.emplace(canon.value(), g);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CanonicalProperty,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(1u, 2u, 4u)));

// Exactness oracle: canonical equality must coincide with isomorphism as
// decided by mutual sub-graph embedding (same sizes + embeddings both ways).
class CanonicalOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalOracle, EqualityIffIsomorphic) {
  Rng rng(GetParam() * 6151 + 3);
  std::vector<LabeledGraph> pool;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(RandomConnectedQuery(
        static_cast<uint32_t>(rng.UniformInt(2, 5)),
        static_cast<uint32_t>(rng.UniformInt(0, 2)), 2, rng));
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      const LabeledGraph& a = pool[i];
      const LabeledGraph& b = pool[j];
      const bool same_shape = a.NumVertices() == b.NumVertices() &&
                              a.NumEdges() == b.NumEdges();
      const bool iso = same_shape && ContainsEmbedding(a, b) &&
                       ContainsEmbedding(b, a);
      const bool canon_equal =
          CanonicalForm(a).value() == CanonicalForm(b).value();
      EXPECT_EQ(canon_equal, iso)
          << "canonical form disagrees with the embedding oracle:\n"
          << a.ToString() << "vs\n"
          << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalOracle,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace loom
