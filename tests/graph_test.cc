// Unit tests for the labelled graph substrate and graph I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/graph.h"
#include "graph/io.h"

namespace loom {
namespace {

LabeledGraph Triangle() {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdgeUnchecked(0, 1);
  g.AddEdgeUnchecked(1, 2);
  g.AddEdgeUnchecked(2, 0);
  return g;
}

TEST(GraphTest, EmptyGraph) {
  LabeledGraph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumLabels(), 0u);
  EXPECT_FALSE(g.HasVertex(0));
}

TEST(GraphTest, AddVertexAssignsDenseIds) {
  LabeledGraph g;
  EXPECT_EQ(g.AddVertex(3), 0u);
  EXPECT_EQ(g.AddVertex(1), 1u);
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.LabelOf(0), 3u);
  EXPECT_EQ(g.LabelOf(1), 1u);
  EXPECT_EQ(g.NumLabels(), 4u);  // max label + 1
}

TEST(GraphTest, AddEdgeSymmetric) {
  LabeledGraph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.DegreeSum(), 2 * g.NumEdges());
}

TEST(GraphTest, RejectsSelfLoop) {
  LabeledGraph g;
  g.AddVertex(0);
  EXPECT_EQ(g.AddEdge(0, 0).code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsDuplicateEdge) {
  LabeledGraph g = Triangle();
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(GraphTest, RejectsUnknownEndpoint) {
  LabeledGraph g;
  g.AddVertex(0);
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, SetLabelUpdates) {
  LabeledGraph g;
  g.AddVertex(0);
  g.SetLabel(0, 9);
  EXPECT_EQ(g.LabelOf(0), 9u);
  EXPECT_EQ(g.NumLabels(), 10u);
}

TEST(GraphTest, ForEachEdgeVisitsOncePerEdge) {
  LabeledGraph g = Triangle();
  size_t count = 0;
  g.ForEachEdge([&](VertexId u, VertexId v) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(g.Edges().size(), 3u);
}

TEST(GraphTest, EdgeNormalization) {
  const Edge e{5, 2};
  EXPECT_EQ(e.Normalized().u, 2u);
  EXPECT_EQ(e.Normalized().v, 5u);
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  LabeledGraph g = Triangle();
  g.AddVertex(7);
  g.AddEdgeUnchecked(0, 3);
  const LabeledGraph sub = InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 3u);
  EXPECT_EQ(sub.LabelOf(0), 0u);
}

TEST(InducedSubgraphTest, RelabelsDensely) {
  LabeledGraph g = Triangle();
  const LabeledGraph sub = InducedSubgraph(g, {2, 0});
  EXPECT_EQ(sub.NumVertices(), 2u);
  EXPECT_EQ(sub.NumEdges(), 1u);
  EXPECT_EQ(sub.LabelOf(0), 2u);  // vertex 2 first
  EXPECT_EQ(sub.LabelOf(1), 0u);
}

TEST(EdgeSubgraphTest, KeepsOnlyListedEdges) {
  LabeledGraph g = Triangle();
  std::vector<VertexId> mapping;
  const LabeledGraph sub =
      EdgeSubgraph(g, {Edge{0, 1}, Edge{1, 2}}, &mapping);
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 2u);  // edge {2,0} intentionally dropped
  ASSERT_EQ(mapping.size(), 3u);
  EXPECT_EQ(mapping[0], 0u);
  EXPECT_EQ(mapping[1], 1u);
  EXPECT_EQ(mapping[2], 2u);
}

TEST(IsConnectedTest, Cases) {
  EXPECT_TRUE(IsConnected(LabeledGraph()));
  LabeledGraph single;
  single.AddVertex(0);
  EXPECT_TRUE(IsConnected(single));
  EXPECT_TRUE(IsConnected(Triangle()));
  LabeledGraph two;
  two.AddVertex(0);
  two.AddVertex(1);
  EXPECT_FALSE(IsConnected(two));
}

TEST(GraphIoTest, RoundTrip) {
  LabeledGraph g = Triangle();
  g.SetLabel(2, 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "loom_io_test.graph").string();
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_EQ(loaded->LabelOf(2), 5u);
  EXPECT_TRUE(loaded->HasEdge(0, 1));
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_EQ(LoadGraph("/nonexistent/loom.graph").status().code(),
            StatusCode::kIOError);
}

TEST(GraphIoTest, MalformedHeaderFails) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "loom_bad.graph").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not-a-graph\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace loom
