// Tests for the hotspot-replication extension (paper §3.2, Yang et al.).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "partition/hash_partitioner.h"
#include "partition/replica_set.h"
#include "replication/hotspot.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace loom {
namespace {

TEST(ReplicaSetTest, AddHasIdempotent) {
  ReplicaSet r;
  EXPECT_FALSE(r.Has(5, 1));
  r.Add(5, 1);
  EXPECT_TRUE(r.Has(5, 1));
  EXPECT_FALSE(r.Has(5, 2));
  r.Add(5, 1);  // idempotent
  EXPECT_EQ(r.NumReplicas(), 1u);
  r.Add(5, 2);
  EXPECT_EQ(r.NumReplicas(), 2u);
  EXPECT_EQ(r.NumReplicatedVertices(), 1u);
  ASSERT_NE(r.PartitionsOf(5), nullptr);
  EXPECT_EQ(r.PartitionsOf(5)->size(), 2u);
  EXPECT_EQ(r.PartitionsOf(6), nullptr);
}

TEST(ReplicaSetTest, PrimaryIsFirstAddedPartition) {
  ReplicaSet r;
  EXPECT_EQ(r.PrimaryOf(7), kNoReplica);
  r.Add(7, 3);
  r.Add(7, 1);
  r.Add(7, 5);
  EXPECT_EQ(r.PrimaryOf(7), 3u);
  EXPECT_EQ(r.NumReplicasOf(7), 3u);
  // A secondary erase never changes the primary.
  EXPECT_TRUE(r.Remove(7, 1));
  EXPECT_EQ(r.PrimaryOf(7), 3u);
  EXPECT_TRUE(r.CheckInvariants());
}

TEST(ReplicaSetTest, RemovingPrimaryPromotesOldestSecondary) {
  ReplicaSet r;
  r.Add(9, 2);
  r.Add(9, 0);
  r.Add(9, 4);
  EXPECT_TRUE(r.Remove(9, 2));
  // Insertion order is preserved, so the oldest secondary is promoted —
  // not the lowest partition index.
  EXPECT_EQ(r.PrimaryOf(9), 0u);
  EXPECT_TRUE(r.Remove(9, 0));
  EXPECT_EQ(r.PrimaryOf(9), 4u);
  EXPECT_TRUE(r.CheckInvariants());
}

TEST(ReplicaSetTest, EraseReAddAccounting) {
  ReplicaSet r;
  r.Add(1, 0);
  r.Add(1, 2);
  r.Add(2, 1);
  EXPECT_EQ(r.NumReplicas(), 3u);
  EXPECT_EQ(r.NumReplicatedVertices(), 2u);

  // Removing a missing pair changes nothing and reports false.
  EXPECT_FALSE(r.Remove(1, 3));
  EXPECT_FALSE(r.Remove(99, 0));
  EXPECT_EQ(r.NumReplicas(), 3u);

  // Erase + re-add: the count round-trips and the re-added partition comes
  // back as a *secondary* (the erase forgot its seniority).
  EXPECT_TRUE(r.Remove(1, 0));
  EXPECT_EQ(r.NumReplicas(), 2u);
  EXPECT_EQ(r.PrimaryOf(1), 2u);
  r.Add(1, 0);
  EXPECT_EQ(r.NumReplicas(), 3u);
  EXPECT_EQ(r.PrimaryOf(1), 2u);
  ASSERT_NE(r.PartitionsOf(1), nullptr);
  EXPECT_EQ((*r.PartitionsOf(1))[1], 0u);

  // Double-remove of the same pair is not double-counted.
  EXPECT_TRUE(r.Remove(1, 0));
  EXPECT_FALSE(r.Remove(1, 0));
  EXPECT_EQ(r.NumReplicas(), 2u);
  EXPECT_TRUE(r.CheckInvariants());
}

TEST(ReplicaSetTest, RemovingLastReplicaForgetsVertex) {
  ReplicaSet r;
  r.Add(4, 1);
  EXPECT_EQ(r.NumReplicatedVertices(), 1u);
  EXPECT_TRUE(r.Remove(4, 1));
  EXPECT_EQ(r.NumReplicatedVertices(), 0u);
  EXPECT_EQ(r.NumReplicas(), 0u);
  EXPECT_EQ(r.PrimaryOf(4), kNoReplica);
  EXPECT_EQ(r.PartitionsOf(4), nullptr);
  EXPECT_EQ(r.NumReplicasOf(4), 0u);
  EXPECT_TRUE(r.CheckInvariants());

  // The vertex can come back fresh.
  r.Add(4, 2);
  EXPECT_EQ(r.PrimaryOf(4), 2u);
  EXPECT_EQ(r.NumReplicas(), 1u);
  EXPECT_TRUE(r.CheckInvariants());
}

TEST(ReplicaSetTest, InvariantsHoldUnderInterleavedChurn) {
  // Deterministic add/remove churn; CheckInvariants recounts from scratch,
  // so any drift in num_replicas_ accounting surfaces here.
  ReplicaSet r;
  for (uint32_t round = 0; round < 200; ++round) {
    const VertexId v = (round * 7) % 23;
    const uint32_t p = (round * 13) % 6;
    if (round % 3 == 2) {
      r.Remove(v, p);
    } else {
      r.Add(v, p);
    }
  }
  EXPECT_TRUE(r.CheckInvariants());
  for (VertexId v = 0; v < 23; ++v) {
    if (r.NumReplicasOf(v) > 0) {
      EXPECT_EQ(r.PrimaryOf(v), (*r.PartitionsOf(v))[0]);
    }
  }
}

TEST(ReplicaSetTest, BitmaskMatchesSetOracleUnderRandomChurn) {
  // Randomized differential against an ordered-container oracle: drive the
  // same Add/Remove sequence through both, probing Has after every step and
  // sweeping the full (vertex, partition) grid at the end. Partition ids
  // run past 128, so the mask table restrides from one word per vertex to
  // three mid-sequence — the probe answers must survive both restrides.
  Rng rng(177);
  ReplicaSet set;
  std::map<VertexId, std::vector<uint32_t>> oracle;  // insertion-ordered
  size_t total = 0;
  constexpr uint32_t kVertices = 40;
  constexpr uint32_t kPartitions = 150;
  for (int step = 0; step < 4000; ++step) {
    const VertexId v = static_cast<VertexId>(rng.UniformInt(0, kVertices - 1));
    const uint32_t p =
        static_cast<uint32_t>(rng.UniformInt(0, kPartitions - 1));
    if (rng.Bernoulli(0.65)) {
      set.Add(v, p);
      auto& parts = oracle[v];
      if (std::find(parts.begin(), parts.end(), p) == parts.end()) {
        parts.push_back(p);
        ++total;
      }
    } else {
      bool oracle_removed = false;
      const auto it = oracle.find(v);
      if (it != oracle.end()) {
        const auto pos = std::find(it->second.begin(), it->second.end(), p);
        if (pos != it->second.end()) {
          it->second.erase(pos);
          oracle_removed = true;
          --total;
          if (it->second.empty()) oracle.erase(it);
        }
      }
      ASSERT_EQ(set.Remove(v, p), oracle_removed) << "step " << step;
    }
    const VertexId q = static_cast<VertexId>(rng.UniformInt(0, kVertices - 1));
    const uint32_t qp =
        static_cast<uint32_t>(rng.UniformInt(0, kPartitions - 1));
    const auto qit = oracle.find(q);
    const bool expect_has =
        qit != oracle.end() && std::find(qit->second.begin(),
                                         qit->second.end(),
                                         qp) != qit->second.end();
    ASSERT_EQ(set.Has(q, qp), expect_has) << "step " << step;
  }
  EXPECT_TRUE(set.CheckInvariants());
  EXPECT_EQ(set.NumReplicas(), total);
  EXPECT_GE(set.words_per_vertex(), 3u);  // the restride path actually ran
  for (VertexId v = 0; v < kVertices; ++v) {
    const auto it = oracle.find(v);
    const size_t n = it == oracle.end() ? 0 : it->second.size();
    EXPECT_EQ(set.NumReplicasOf(v), n);
    EXPECT_EQ(set.MaskCountOf(v), static_cast<uint32_t>(n));
    EXPECT_EQ(set.PrimaryOf(v), n == 0 ? kNoReplica : it->second.front());
    for (uint32_t p = 0; p < kPartitions; ++p) {
      const bool has =
          it != oracle.end() && std::find(it->second.begin(),
                                          it->second.end(),
                                          p) != it->second.end();
      ASSERT_EQ(set.Has(v, p), has) << "v=" << v << " p=" << p;
    }
  }
}

TEST(ReplicationTest, ReplicatedTraversalBecomesLocal) {
  // a(0) - b(1) split across partitions: the traversal crosses; replicating
  // b into a's partition makes it local.
  LabeledGraph g;
  const VertexId va = g.AddVertex(0);
  const VertexId vb = g.AddVertex(1);
  g.AddEdgeUnchecked(va, vb);
  PartitionAssignment split(2, 0);
  ASSERT_TRUE(split.Assign(va, 0).ok());
  ASSERT_TRUE(split.Assign(vb, 1).ok());

  const LabeledGraph q = PathQuery({0, 1});
  const QueryExecutionStats before = ExecuteQuery(g, split, q);
  EXPECT_EQ(before.cross_traversals, 1u);

  ReplicaSet replicas;
  replicas.Add(vb, 0);
  const QueryExecutionStats after =
      ExecuteQuery(g, split, q, SIZE_MAX, &replicas);
  EXPECT_EQ(after.cross_traversals, 0u);
  EXPECT_EQ(after.num_embeddings, before.num_embeddings);
  // Replicas also heal the per-embedding cut accounting.
  EXPECT_EQ(after.embedding_cut_edges, 0u);
}

TEST(ReplicationTest, ObserverSeesEveryTraversal) {
  const LabeledGraph g = PaperFigure1Graph();
  PartitionAssignment a(2, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_TRUE(a.Assign(v, v % 2).ok());
  }
  size_t observed = 0;
  size_t observed_cross = 0;
  const TraversalObserver obs = [&](VertexId, VertexId, bool cross) {
    ++observed;
    if (cross) ++observed_cross;
  };
  const QueryExecutionStats s =
      ExecuteQuery(g, a, PaperQ2(), SIZE_MAX, nullptr, obs);
  EXPECT_EQ(observed, s.total_traversals);
  EXPECT_EQ(observed_cross, s.cross_traversals);
}

TEST(ReplicationTest, BudgetRespected) {
  Rng rng(1);
  LabeledGraph g = BarabasiAlbert(2000, 3, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);

  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  ASSERT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 1.0).ok());
  w.Normalize();

  ReplicationOptions ropts;
  ropts.budget_fraction = 0.03;
  ReplicationStats stats;
  const ReplicaSet replicas =
      ComputeHotspotReplicas(g, hash.assignment(), w, ropts, &stats);
  EXPECT_LE(replicas.NumReplicas(),
            static_cast<size_t>(0.03 * g.NumVertices()));
  EXPECT_EQ(stats.replicas_placed, replicas.NumReplicas());
  EXPECT_GT(stats.hot_pairs_observed, 0u);
}

TEST(ReplicationTest, PerVertexPartitionCapRespected) {
  Rng rng(2);
  LabeledGraph g = BarabasiAlbert(1000, 4, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 8;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);

  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();

  ReplicationOptions ropts;
  ropts.budget_fraction = 0.5;  // generous: the cap must bind first
  ropts.max_partitions_per_vertex = 2;
  const ReplicaSet replicas =
      ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto* parts = replicas.PartitionsOf(v);
    if (parts != nullptr) {
      EXPECT_LE(parts->size(), 2u);
    }
  }
}

TEST(ReplicationTest, ReplicationLowersWorkloadIpt) {
  Rng rng(3);
  LabeledGraph g = BarabasiAlbert(3000, 3, LabelConfig{3, 0.2}, rng);
  Workload w;
  ASSERT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 2.0).ok());
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  w.Normalize();
  PlantMotifs(&g, w.queries()[0].pattern, 150, rng, 16);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);

  const double before =
      EvaluateWorkloadIpt(g, hash.assignment(), w).ipt_probability;
  ReplicationOptions ropts;
  ropts.budget_fraction = 0.05;
  const ReplicaSet replicas =
      ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  const double after =
      EvaluateWorkloadIpt(g, hash.assignment(), w, 20000, &replicas)
          .ipt_probability;
  EXPECT_LT(after, before);
}

TEST(ReplicationTest, ZeroBudgetMeansNoReplicas) {
  Rng rng(4);
  LabeledGraph g = BarabasiAlbert(500, 3, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);
  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();
  ReplicationOptions ropts;
  ropts.budget_fraction = 0.0;
  EXPECT_EQ(ComputeHotspotReplicas(g, hash.assignment(), w, ropts)
                .NumReplicas(),
            0u);
}

TEST(ReplicationTest, DeterministicGivenSameInputs) {
  Rng rng(5);
  LabeledGraph g = BarabasiAlbert(800, 3, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);
  Workload w;
  ASSERT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 1.0).ok());
  w.Normalize();
  ReplicationOptions ropts;
  ropts.budget_fraction = 0.05;
  const ReplicaSet r1 = ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  const ReplicaSet r2 = ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  EXPECT_EQ(r1.NumReplicas(), r2.NumReplicas());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t p = 0; p < 4; ++p) {
      EXPECT_EQ(r1.Has(v, p), r2.Has(v, p));
    }
  }
}

}  // namespace
}  // namespace loom
