// Tests for the hotspot-replication extension (paper §3.2, Yang et al.).

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/hash_partitioner.h"
#include "partition/replica_set.h"
#include "replication/hotspot.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace loom {
namespace {

TEST(ReplicaSetTest, AddHasIdempotent) {
  ReplicaSet r;
  EXPECT_FALSE(r.Has(5, 1));
  r.Add(5, 1);
  EXPECT_TRUE(r.Has(5, 1));
  EXPECT_FALSE(r.Has(5, 2));
  r.Add(5, 1);  // idempotent
  EXPECT_EQ(r.NumReplicas(), 1u);
  r.Add(5, 2);
  EXPECT_EQ(r.NumReplicas(), 2u);
  EXPECT_EQ(r.NumReplicatedVertices(), 1u);
  ASSERT_NE(r.PartitionsOf(5), nullptr);
  EXPECT_EQ(r.PartitionsOf(5)->size(), 2u);
  EXPECT_EQ(r.PartitionsOf(6), nullptr);
}

TEST(ReplicationTest, ReplicatedTraversalBecomesLocal) {
  // a(0) - b(1) split across partitions: the traversal crosses; replicating
  // b into a's partition makes it local.
  LabeledGraph g;
  const VertexId va = g.AddVertex(0);
  const VertexId vb = g.AddVertex(1);
  g.AddEdgeUnchecked(va, vb);
  PartitionAssignment split(2, 0);
  ASSERT_TRUE(split.Assign(va, 0).ok());
  ASSERT_TRUE(split.Assign(vb, 1).ok());

  const LabeledGraph q = PathQuery({0, 1});
  const QueryExecutionStats before = ExecuteQuery(g, split, q);
  EXPECT_EQ(before.cross_traversals, 1u);

  ReplicaSet replicas;
  replicas.Add(vb, 0);
  const QueryExecutionStats after =
      ExecuteQuery(g, split, q, SIZE_MAX, &replicas);
  EXPECT_EQ(after.cross_traversals, 0u);
  EXPECT_EQ(after.num_embeddings, before.num_embeddings);
  // Replicas also heal the per-embedding cut accounting.
  EXPECT_EQ(after.embedding_cut_edges, 0u);
}

TEST(ReplicationTest, ObserverSeesEveryTraversal) {
  const LabeledGraph g = PaperFigure1Graph();
  PartitionAssignment a(2, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_TRUE(a.Assign(v, v % 2).ok());
  }
  size_t observed = 0;
  size_t observed_cross = 0;
  const TraversalObserver obs = [&](VertexId, VertexId, bool cross) {
    ++observed;
    if (cross) ++observed_cross;
  };
  const QueryExecutionStats s =
      ExecuteQuery(g, a, PaperQ2(), SIZE_MAX, nullptr, obs);
  EXPECT_EQ(observed, s.total_traversals);
  EXPECT_EQ(observed_cross, s.cross_traversals);
}

TEST(ReplicationTest, BudgetRespected) {
  Rng rng(1);
  LabeledGraph g = BarabasiAlbert(2000, 3, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);

  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  ASSERT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 1.0).ok());
  w.Normalize();

  ReplicationOptions ropts;
  ropts.budget_fraction = 0.03;
  ReplicationStats stats;
  const ReplicaSet replicas =
      ComputeHotspotReplicas(g, hash.assignment(), w, ropts, &stats);
  EXPECT_LE(replicas.NumReplicas(),
            static_cast<size_t>(0.03 * g.NumVertices()));
  EXPECT_EQ(stats.replicas_placed, replicas.NumReplicas());
  EXPECT_GT(stats.hot_pairs_observed, 0u);
}

TEST(ReplicationTest, PerVertexPartitionCapRespected) {
  Rng rng(2);
  LabeledGraph g = BarabasiAlbert(1000, 4, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 8;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);

  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();

  ReplicationOptions ropts;
  ropts.budget_fraction = 0.5;  // generous: the cap must bind first
  ropts.max_partitions_per_vertex = 2;
  const ReplicaSet replicas =
      ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto* parts = replicas.PartitionsOf(v);
    if (parts != nullptr) {
      EXPECT_LE(parts->size(), 2u);
    }
  }
}

TEST(ReplicationTest, ReplicationLowersWorkloadIpt) {
  Rng rng(3);
  LabeledGraph g = BarabasiAlbert(3000, 3, LabelConfig{3, 0.2}, rng);
  Workload w;
  ASSERT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 2.0).ok());
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  w.Normalize();
  PlantMotifs(&g, w.queries()[0].pattern, 150, rng, 16);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);

  const double before =
      EvaluateWorkloadIpt(g, hash.assignment(), w).ipt_probability;
  ReplicationOptions ropts;
  ropts.budget_fraction = 0.05;
  const ReplicaSet replicas =
      ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  const double after =
      EvaluateWorkloadIpt(g, hash.assignment(), w, 20000, &replicas)
          .ipt_probability;
  EXPECT_LT(after, before);
}

TEST(ReplicationTest, ZeroBudgetMeansNoReplicas) {
  Rng rng(4);
  LabeledGraph g = BarabasiAlbert(500, 3, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);
  Workload w;
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();
  ReplicationOptions ropts;
  ropts.budget_fraction = 0.0;
  EXPECT_EQ(ComputeHotspotReplicas(g, hash.assignment(), w, ropts)
                .NumReplicas(),
            0u);
}

TEST(ReplicationTest, DeterministicGivenSameInputs) {
  Rng rng(5);
  LabeledGraph g = BarabasiAlbert(800, 3, LabelConfig{3, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  HashPartitioner hash(popts);
  hash.Run(stream);
  Workload w;
  ASSERT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 1.0).ok());
  w.Normalize();
  ReplicationOptions ropts;
  ropts.budget_fraction = 0.05;
  const ReplicaSet r1 = ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  const ReplicaSet r2 = ComputeHotspotReplicas(g, hash.assignment(), w, ropts);
  EXPECT_EQ(r1.NumReplicas(), r2.NumReplicas());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t p = 0; p < 4; ++p) {
      EXPECT_EQ(r1.Has(v, p), r2.Has(v, p));
    }
  }
}

}  // namespace
}  // namespace loom
