// Tests for the sharded parallel restream engine: the shard plan's
// coordination-free split of stream/budget/claims/capacity, 1-shard
// bit-identity with the serial RunIncrementalPass for every partitioner,
// determinism across repeated runs and shard counts, the strict global
// migration cap at every shard count, merge accounting, the
// RestreamOptions validation fix, and an end-to-end drift reaction with
// reaction_shards > 1.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core/loom.h"
#include "core/partitioner_factory.h"
#include "drift/drift_controller.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/buffered_ldg_partitioner.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "restream/restreamer.h"
#include "restream/shard_plan.h"
#include "stream/stream.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

PartitionerOptions Opts(uint32_t k, size_t n, size_t m = 0,
                        double slack = 1.1) {
  PartitionerOptions o;
  o.k = k;
  o.num_vertices_hint = n;
  o.num_edges_hint = m;
  o.capacity_slack = slack;
  return o;
}

// Test graph with planted motifs so LOOM has clusters to re-score.
LabeledGraph TestGraph(Rng& rng) {
  LabeledGraph g = BarabasiAlbert(900, 4, LabelConfig{3, 0.2}, rng);
  PlantMotifs(&g, TriangleQuery(0, 1, 2), 24, rng, /*locality_span=*/16);
  return g;
}

std::unique_ptr<Loom> TestLoom(const LabeledGraph& g) {
  Workload w;
  EXPECT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  EXPECT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();
  LoomOptions o;
  o.partitioner = Opts(6, g.NumVertices(), g.NumEdges());
  o.partitioner.window_size = 64;
  o.matcher.frequency_threshold = 0.4;
  auto created = Loom::Create(w, o);
  EXPECT_TRUE(created.ok());
  return std::move(created).value();
}

void ExpectSameAssignment(const PartitionAssignment& a,
                          const PartitionAssignment& b) {
  const size_t bound = std::max(a.IdBound(), b.IdBound());
  for (VertexId v = 0; v < bound; ++v) {
    ASSERT_EQ(a.PartOf(v), b.PartOf(v)) << "vertex " << v;
  }
  EXPECT_EQ(a.Sizes(), b.Sizes());
  EXPECT_EQ(a.NumAssigned(), b.NumAssigned());
}

// ------------------------------------------------------------- shard plan

TEST(ShardPlanTest, PartitionsReplayAndSplitsBudgetClaimsAndCapacity) {
  Rng rng(31);
  const LabeledGraph g = ErdosRenyiGnm(600, 1800, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  LdgPartitioner ldg(Opts(5, g.NumVertices()));
  ldg.Run(stream);
  const PartitionAssignment prior = ldg.assignment();

  const Restreamer restreamer(stream, RestreamOptions{});
  Rng order_rng(1);
  const GraphStream replay =
      restreamer.ReplayStream(RestreamOrder::kDecisive, prior, order_rng);
  const size_t cap = ComputeCapacity(5, g.NumVertices(), 1.1);
  const uint64_t global_moves = 100;

  for (const uint32_t num_shards : {1u, 2u, 3u, 4u}) {
    const ShardPlan plan =
        BuildShardPlan(replay, prior, num_shards, global_moves, cap);
    ASSERT_EQ(plan.shards.size(), num_shards);

    std::set<VertexId> seen;
    uint64_t budget_total = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      const RestreamShard& shard = plan.shards[s];
      for (const VertexArrival& a : shard.stream.arrivals()) {
        EXPECT_TRUE(seen.insert(a.vertex).second) << "duplicate " << a.vertex;
        const int32_t home = prior.PartOf(a.vertex);
        ASSERT_GE(home, 0);
        // Split by prior partition: the arrival sits in its home's owner.
        EXPECT_EQ(ShardOfPartition(static_cast<uint32_t>(home), num_shards),
                  s);
      }
      budget_total += shard.migration_budget;
      // Claims: the prior sizes of owned partitions, zero elsewhere.
      ASSERT_EQ(shard.home_claims.size(), prior.k());
      for (uint32_t p = 0; p < prior.k(); ++p) {
        const uint32_t expect =
            ShardOfPartition(p, num_shards) == s ? prior.Sizes()[p] : 0;
        EXPECT_EQ(shard.home_claims[p], expect);
      }
    }
    // Every vertex replays in exactly one shard.
    EXPECT_EQ(seen.size(), replay.NumVertices());
    // The budget slices never exceed the global allowance...
    EXPECT_LE(budget_total, global_moves);
    // ...and the capacity slices never exceed the global bound (the prior
    // respects C here, so max(C, prior size) = C).
    for (uint32_t p = 0; p < prior.k(); ++p) {
      size_t cap_total = 0;
      for (const RestreamShard& shard : plan.shards) {
        ASSERT_EQ(shard.capacities.size(), prior.k());
        cap_total += shard.capacities[p];
      }
      EXPECT_LE(cap_total, cap) << "partition " << p;
      EXPECT_GE(cap_total, static_cast<size_t>(prior.Sizes()[p]));
    }
  }

  // The degenerate plan is the serial pass: full budget, scalar capacity.
  const ShardPlan one = BuildShardPlan(replay, prior, 1, global_moves, cap);
  EXPECT_EQ(one.shards[0].migration_budget, global_moves);
  for (uint32_t p = 0; p < prior.k(); ++p) {
    EXPECT_EQ(one.shards[0].capacities[p], cap);
    EXPECT_EQ(one.shards[0].home_claims[p], prior.Sizes()[p]);
  }
}

// ------------------------------------------------- 1-shard bit-identity

// For every partitioner: RunShardedIncrementalPass with num_shards = 1 must
// reproduce the serial RunIncrementalPass bit for bit — same assignment,
// same quality numbers, same counters.
TEST(ParallelRestreamTest, OneShardIsBitIdenticalToSerialForEveryPartitioner) {
  Rng rng(41);
  const LabeledGraph g = TestGraph(rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const PartitionerOptions popts = Opts(6, g.NumVertices(), g.NumEdges());

  RestreamOptions ropts;
  ropts.order = RestreamOrder::kDecisive;
  const Restreamer restreamer(stream, ropts);

  const auto check = [&](StreamingPartitioner* serial,
                         StreamingPartitioner* sharded) {
    SCOPED_TRACE(serial->Name());
    serial->Run(stream);
    const PartitionAssignment prior = serial->assignment();
    const uint64_t budget = MigrationBudgetMoves(prior, 0.2);

    const RestreamPassStats a =
        restreamer.RunIncrementalPass(serial, prior, budget);
    const RestreamPassStats b =
        restreamer.RunShardedIncrementalPass(sharded, prior, budget, 1);

    ExpectSameAssignment(serial->assignment(), sharded->assignment());
    EXPECT_EQ(a.edge_cut_fraction, b.edge_cut_fraction);
    EXPECT_EQ(a.balance, b.balance);
    EXPECT_EQ(a.migration_fraction, b.migration_fraction);
    EXPECT_EQ(a.overflow_fallbacks, b.overflow_fallbacks);
    EXPECT_EQ(a.forced_placements, b.forced_placements);
    EXPECT_EQ(a.assign_errors, b.assign_errors);
    EXPECT_EQ(a.budget_denied_moves, b.budget_denied_moves);
    EXPECT_EQ(b.num_shards, 1u);
  };

  {
    HashPartitioner a(popts), b(popts);
    check(&a, &b);
  }
  {
    LdgPartitioner a(popts), b(popts);
    check(&a, &b);
  }
  {
    FennelPartitioner a(popts), b(popts);
    check(&a, &b);
  }
  {
    BufferedLdgPartitioner a(popts), b(popts);
    check(&a, &b);
  }
  {
    const auto la = TestLoom(g);
    const auto lb = TestLoom(g);
    check(&la->Partitioner(), &lb->Partitioner());
  }
}

// An over-capacity prior (forced placements: the stream exceeds k*C) is
// the corner where per-shard capacity slices could diverge from the serial
// scalar C. The owner's slice is capped at C, so the 1-shard pass stays
// bit-identical and the merged sizes never exceed what the serial pass
// produces.
TEST(ParallelRestreamTest, OverfullPriorStaysBitIdenticalAtOneShard) {
  Rng rng(71);
  const LabeledGraph g = BarabasiAlbert(600, 3, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  // Capacity sized for half the stream: k*C < n, so the prior overflows C.
  const PartitionerOptions popts =
      Opts(4, g.NumVertices() / 2, 0, /*slack=*/1.0);

  RestreamOptions ropts;
  ropts.order = RestreamOrder::kDecisive;
  const Restreamer restreamer(stream, ropts);

  LdgPartitioner serial(popts), sharded(popts);
  serial.Run(stream);
  sharded.Run(stream);
  const PartitionAssignment prior = serial.assignment();
  const uint64_t budget = MigrationBudgetMoves(prior, 0.2);

  const RestreamPassStats a =
      restreamer.RunIncrementalPass(&serial, prior, budget);
  const RestreamPassStats b =
      restreamer.RunShardedIncrementalPass(&sharded, prior, budget, 1);
  ExpectSameAssignment(serial.assignment(), sharded.assignment());
  EXPECT_EQ(a.edge_cut_fraction, b.edge_cut_fraction);
  EXPECT_EQ(a.forced_placements, b.forced_placements);
  EXPECT_EQ(a.overflow_fallbacks, b.overflow_fallbacks);
  EXPECT_EQ(a.budget_denied_moves, b.budget_denied_moves);

  // And at 4 shards the merge still assigns everything without exceeding
  // the serial pass's balance envelope.
  LdgPartitioner four(popts);
  four.Run(stream);
  (void)restreamer.RunShardedIncrementalPass(&four, prior, budget, 4);
  EXPECT_TRUE(AllAssigned(g, four.assignment()));
}

// Empty claims with a finite budget must fall back to the prior's sizes
// (the one-arg overload's semantics) instead of leaving the budgeted
// placement path indexing an empty vector.
TEST(ParallelRestreamTest, EmptyHomeClaimsFallBackToPriorSizes) {
  Rng rng(73);
  const LabeledGraph g = ErdosRenyiGnm(400, 1200, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const PartitionerOptions popts = Opts(4, g.NumVertices());

  LdgPartitioner seed_partitioner(popts);
  seed_partitioner.Run(stream);
  const PartitionAssignment prior = seed_partitioner.assignment();

  LdgPartitioner explicit_claims(popts), empty_claims(popts);
  const auto run = [&](LdgPartitioner* p, std::vector<uint32_t> claims) {
    p->BeginPass(&prior);
    p->SetMigrationBudget(20, std::move(claims));
    p->Run(stream);
    p->ClearPrior();
  };
  run(&explicit_claims,
      std::vector<uint32_t>(prior.Sizes().begin(), prior.Sizes().end()));
  run(&empty_claims, {});
  ExpectSameAssignment(explicit_claims.assignment(),
                       empty_claims.assignment());
  EXPECT_LE(ComputeMigration(prior, empty_claims.assignment()).moved, 20u);
}

// ------------------------------------------------------------ determinism

TEST(ParallelRestreamTest, DeterministicAcrossRepeatedRunsAtEveryShardCount) {
  Rng rng(43);
  const LabeledGraph g = TestGraph(rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const PartitionerOptions popts = Opts(6, g.NumVertices(), g.NumEdges());

  RestreamOptions ropts;
  ropts.order = RestreamOrder::kDecisive;
  const Restreamer restreamer(stream, ropts);

  LdgPartitioner seed_partitioner(popts);
  seed_partitioner.Run(stream);
  const PartitionAssignment prior = seed_partitioner.assignment();
  const uint64_t budget = MigrationBudgetMoves(prior, 0.25);

  for (const uint32_t num_shards : {2u, 4u}) {
    LdgPartitioner first(popts), second(popts);
    const RestreamPassStats sa = restreamer.RunShardedIncrementalPass(
        &first, prior, budget, num_shards);
    const RestreamPassStats sb = restreamer.RunShardedIncrementalPass(
        &second, prior, budget, num_shards);
    SCOPED_TRACE(num_shards);
    ExpectSameAssignment(first.assignment(), second.assignment());
    EXPECT_EQ(sa.edge_cut_fraction, sb.edge_cut_fraction);
    EXPECT_EQ(sa.migration_fraction, sb.migration_fraction);
    EXPECT_EQ(sa.budget_denied_moves, sb.budget_denied_moves);
    EXPECT_EQ(sa.shard_seconds.size(), num_shards);
    EXPECT_GT(sa.critical_path_seconds, 0.0);
  }
}

// --------------------------------------------------------- global budget

TEST(ParallelRestreamTest, GlobalBudgetNeverExceededAtAnyShardCount) {
  Rng rng(47);
  const LabeledGraph g = TestGraph(rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const PartitionerOptions popts = Opts(6, g.NumVertices(), g.NumEdges());
  const size_t cap = ComputeCapacity(6, g.NumVertices(), 1.1);

  RestreamOptions ropts;
  ropts.order = RestreamOrder::kDecisive;
  const Restreamer restreamer(stream, ropts);

  const auto check = [&](StreamingPartitioner* live,
                         StreamingPartitioner* sharded, double fraction,
                         uint32_t num_shards) {
    SCOPED_TRACE(live->Name() + " shards=" + std::to_string(num_shards) +
                 " fraction=" + std::to_string(fraction));
    live->Run(stream);
    const PartitionAssignment prior = live->assignment();
    const uint64_t budget = MigrationBudgetMoves(prior, fraction);

    const RestreamPassStats stats = restreamer.RunShardedIncrementalPass(
        sharded, prior, budget, num_shards);
    const MigrationStats moved =
        ComputeMigration(prior, sharded->assignment());
    EXPECT_LE(moved.moved, budget);
    EXPECT_EQ(stats.forced_placements, 0u);
    EXPECT_EQ(stats.assign_errors, 0u);
    EXPECT_TRUE(AllAssigned(g, sharded->assignment()));
    for (const uint32_t size : sharded->assignment().Sizes()) {
      EXPECT_LE(size, cap);
    }
    if (fraction == 0.0) {
      EXPECT_EQ(moved.moved, 0u);
    }
  };

  for (const uint32_t num_shards : {1u, 2u, 3u, 4u}) {
    for (const double fraction : {0.0, 0.1, 0.3}) {
      {
        LdgPartitioner a(popts), b(popts);
        check(&a, &b, fraction, num_shards);
      }
      {
        FennelPartitioner a(popts), b(popts);
        check(&a, &b, fraction, num_shards);
      }
    }
    const auto la = TestLoom(g);
    const auto lb = TestLoom(g);
    check(&la->Partitioner(), &lb->Partitioner(), 0.15, num_shards);
  }
}

// ----------------------------------------------------------------- merge

TEST(ParallelRestreamTest, MergePreservesBalanceAndMoveAccounting) {
  Rng rng(53);
  const LabeledGraph g = TestGraph(rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  const PartitionerOptions popts = Opts(6, g.NumVertices(), g.NumEdges());

  RestreamOptions ropts;
  ropts.order = RestreamOrder::kDecisive;
  const Restreamer restreamer(stream, ropts);

  LdgPartitioner live(popts);
  live.Run(stream);
  const PartitionAssignment prior = live.assignment();
  const uint64_t budget = MigrationBudgetMoves(prior, 0.25);

  LdgPartitioner sharded(popts);
  const RestreamPassStats stats =
      restreamer.RunShardedIncrementalPass(&sharded, prior, budget, 4);

  // The folded counters agree with the merged assignment itself.
  const MigrationStats moved = ComputeMigration(prior, sharded.assignment());
  EXPECT_EQ(sharded.stats().prior_moves, moved.moved);
  EXPECT_DOUBLE_EQ(stats.migration_fraction,
                   MigrationFraction(prior, sharded.assignment()));
  EXPECT_DOUBLE_EQ(stats.balance,
                   BalanceMaxOverAvg(sharded.assignment()));
  EXPECT_DOUBLE_EQ(
      stats.edge_cut_fraction,
      EdgeCutFraction(restreamer.graph(), sharded.assignment()));
  EXPECT_EQ(sharded.assignment().NumAssigned(), g.NumVertices());
  // The partitioner ends a sharded pass like it ends a serial one: no
  // prior, no live budget.
  EXPECT_FALSE(sharded.HasPrior());
  EXPECT_FALSE(sharded.MigrationBudgetExhausted());
}

// ----------------------------------------------------------- clone rules

TEST(ParallelRestreamTest, LoomCloneSharesOnlyTheTrie) {
  Rng rng(59);
  const LabeledGraph g = TestGraph(rng);
  const auto loom = TestLoom(g);
  const LoomPartitioner& original = loom->Partitioner();

  const std::unique_ptr<StreamingPartitioner> clone =
      original.CloneForShard();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->Name(), "loom");
  const auto* loom_clone = dynamic_cast<const LoomPartitioner*>(clone.get());
  ASSERT_NE(loom_clone, nullptr);
  // The immutable workload summary is shared; everything mutable is fresh.
  EXPECT_EQ(loom_clone->trie(), original.trie());
  EXPECT_EQ(clone->assignment().NumAssigned(), 0u);
  EXPECT_EQ(clone->options().k, original.options().k);
}

TEST(ParallelRestreamTest, EveryStandardPartitionerIsCloneable) {
  const PartitionerOptions popts = Opts(4, 100);
  for (const std::string& name : KnownPartitioners()) {
    if (name == "loom") continue;  // the LOOM clone test above covers it
    auto made = MakePartitioner(name, popts);
    ASSERT_TRUE(made.ok()) << name;
    const auto& p = *made;
    const auto clone = p->CloneForShard();
    ASSERT_NE(clone, nullptr) << p->Name();
    EXPECT_EQ(clone->Name(), p->Name());
    EXPECT_EQ(clone->options().k, p->options().k);
  }
}

// ------------------------------------------------------ options validation

TEST(RestreamOptionsValidationTest, ClampsPassesAndRejectsInvalidBudgets) {
  RestreamOptions zero_passes;
  zero_passes.num_passes = 0;
  EXPECT_EQ(SanitizeRestreamOptions(zero_passes).num_passes, 1u);

  RestreamOptions nan_budget;
  nan_budget.max_migration_fraction = std::nan("");
  EXPECT_EQ(SanitizeRestreamOptions(nan_budget).max_migration_fraction, 0.0);

  RestreamOptions negative_budget;
  negative_budget.max_migration_fraction = -0.5;
  EXPECT_EQ(SanitizeRestreamOptions(negative_budget).max_migration_fraction,
            0.0);

  // MigrationBudgetMoves itself must never turn NaN into an unbudgeted
  // pass (the pre-fix behaviour cast NaN — undefined behaviour).
  PartitionAssignment prior(2, 10);
  ASSERT_TRUE(prior.Assign(0, 0).ok());
  ASSERT_TRUE(prior.Assign(1, 1).ok());
  EXPECT_EQ(MigrationBudgetMoves(prior, std::nan("")), 0u);
  EXPECT_EQ(MigrationBudgetMoves(prior, -1.0), 0u);
}

TEST(RestreamOptionsValidationTest, RestreamerSanitizesOnConstruction) {
  Rng rng(61);
  const LabeledGraph g = ErdosRenyiGnm(300, 900, LabelConfig{2, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

  // num_passes = 0 still runs one pass; a NaN budget freezes migration on
  // the prior-bearing passes instead of silently unbudgeting them.
  RestreamOptions ropts;
  ropts.num_passes = 0;
  LdgPartitioner one_pass(Opts(4, g.NumVertices()));
  const RestreamResult r = Restreamer(stream, ropts).Run(&one_pass);
  EXPECT_EQ(r.passes.size(), 1u);

  RestreamOptions nan_opts;
  nan_opts.num_passes = 2;
  nan_opts.max_migration_fraction = std::nan("");
  LdgPartitioner frozen(Opts(4, g.NumVertices()));
  const RestreamResult rf = Restreamer(stream, nan_opts).Run(&frozen);
  ASSERT_EQ(rf.passes.size(), 2u);
  EXPECT_EQ(rf.passes[1].migration_fraction, 0.0);
}

// --------------------------------------------- end-to-end drift reaction

MotifDistribution Dist(std::initializer_list<MotifSupport> entries) {
  MotifDistribution d(entries);
  std::sort(d.begin(), d.end(),
            [](const MotifSupport& a, const MotifSupport& b) {
              return a.canonical_hash < b.canonical_hash;
            });
  return d;
}

TEST(ParallelRestreamTest, EndToEndDriftReactionWithShards) {
  Rng rng(67);
  LabeledGraph g = BarabasiAlbert(1200, 6, LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kDfs, rng);
  PartitionerOptions popts = Opts(6, g.NumVertices(), g.NumEdges());
  LdgPartitioner ldg(popts);
  ldg.Run(stream);
  const PartitionAssignment before = ldg.assignment();
  const double cut_before = EdgeCutFraction(g, before);

  DriftControllerOptions options;
  options.detector.min_consecutive = 1;
  options.max_migration_fraction = 0.2;
  options.reaction_shards = 4;
  DriftController controller(options);
  controller.SetReference(Dist({{1, 1.0}}), cut_before);

  const DriftReaction r =
      controller.MaybeRepartition(Dist({{2, 1.0}}), stream, &ldg);
  ASSERT_TRUE(r.reacted);
  EXPECT_LE(r.edge_cut_after, cut_before);  // keep-best adoption
  EXPECT_LE(r.migration_fraction, options.max_migration_fraction + 1e-12);
  ASSERT_FALSE(r.passes.empty());
  for (const RestreamPassStats& pass : r.passes) {
    EXPECT_EQ(pass.num_shards, 4u);
    EXPECT_EQ(pass.shard_seconds.size(), 4u);
    EXPECT_EQ(pass.forced_placements, 0u);
    EXPECT_EQ(pass.assign_errors, 0u);
  }
  EXPECT_GT(r.critical_path_seconds, 0.0);
  EXPECT_TRUE(AllAssigned(g, r.assignment));

  // The same reaction at reaction_shards = 1 on the same live assignment
  // defines the serial bracket the sharded one must stay close to; both
  // must respect the budget (asserted above for sharded).
  LdgPartitioner serial_ldg(popts);
  serial_ldg.Run(stream);
  DriftControllerOptions serial_options = options;
  serial_options.reaction_shards = 1;
  DriftController serial_controller(serial_options);
  serial_controller.SetReference(Dist({{1, 1.0}}), cut_before);
  const DriftReaction rs = serial_controller.MaybeRepartition(
      Dist({{2, 1.0}}), stream, &serial_ldg);
  ASSERT_TRUE(rs.reacted);
  EXPECT_LE(rs.migration_fraction, options.max_migration_fraction + 1e-12);
  // Close to the serial reaction. Shard isolation costs a little quality
  // (cross-shard neighbours score at their prior homes and freed slots are
  // not shared), so this synthetic worst-case allows 3 points; the bench
  // families' 1-point contract lives in the parallel_restream section of
  // BENCH_edge_cut.json.
  EXPECT_NEAR(r.edge_cut_after, rs.edge_cut_after, 0.03);
}

}  // namespace
}  // namespace loom
