// Round-trip and robustness tests for workload and assignment serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "partition/partition_io.h"
#include "workload/query_builders.h"
#include "workload/workload_io.h"

namespace loom {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(WorkloadIoTest, RoundTrip) {
  Workload w;
  ASSERT_TRUE(w.Add("fof", PathQuery({0, 0, 0}), 4.0).ok());
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 2.0).ok());
  ASSERT_TRUE(w.Add("star", StarQuery(1, {2, 3}), 1.0).ok());

  const std::string path = TempPath("loom_workload_test.loom");
  ASSERT_TRUE(SaveWorkload(w, path).ok());
  auto loaded = LoadWorkload(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->NumQueries(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const QuerySpec& a = w.queries()[i];
    const QuerySpec& b = loaded->queries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.frequency, b.frequency);
    EXPECT_EQ(a.pattern.NumVertices(), b.pattern.NumVertices());
    EXPECT_EQ(a.pattern.NumEdges(), b.pattern.NumEdges());
    for (VertexId v = 0; v < a.pattern.NumVertices(); ++v) {
      EXPECT_EQ(a.pattern.LabelOf(v), b.pattern.LabelOf(v));
    }
  }
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, MissingFile) {
  EXPECT_EQ(LoadWorkload("/nonexistent/w.loom").status().code(),
            StatusCode::kIOError);
}

TEST(WorkloadIoTest, BadHeader) {
  const std::string path = TempPath("loom_workload_bad.loom");
  {
    std::ofstream out(path);
    out << "not-a-workload\n";
  }
  EXPECT_EQ(LoadWorkload(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, UnterminatedQueryBlock) {
  const std::string path = TempPath("loom_workload_trunc.loom");
  {
    std::ofstream out(path);
    out << "loom-workload 1\nquery q 1.0 2\nl 0 0\nl 1 1\ne 0 1\n";
  }
  EXPECT_FALSE(LoadWorkload(path).ok());
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, DisconnectedPatternRejectedOnLoad) {
  const std::string path = TempPath("loom_workload_disc.loom");
  {
    std::ofstream out(path);
    out << "loom-workload 1\nquery q 1.0 2\nl 0 0\nl 1 1\nend\n";
  }
  EXPECT_FALSE(LoadWorkload(path).ok());
  std::remove(path.c_str());
}

TEST(AssignmentIoTest, RoundTrip) {
  PartitionAssignment a(4, 100);
  ASSERT_TRUE(a.Assign(0, 1).ok());
  ASSERT_TRUE(a.Assign(5, 3).ok());
  ASSERT_TRUE(a.Assign(2, 0).ok());

  const std::string path = TempPath("loom_assignment_test.loom");
  ASSERT_TRUE(SaveAssignment(a, path).ok());
  auto loaded = LoadAssignment(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->k(), 4u);
  EXPECT_EQ(loaded->capacity(), 100u);
  EXPECT_EQ(loaded->NumAssigned(), 3u);
  EXPECT_EQ(loaded->PartOf(0), 1);
  EXPECT_EQ(loaded->PartOf(5), 3);
  EXPECT_EQ(loaded->PartOf(2), 0);
  EXPECT_EQ(loaded->PartOf(1), -1);
  std::remove(path.c_str());
}

TEST(AssignmentIoTest, RejectsInvalidPartition) {
  const std::string path = TempPath("loom_assignment_bad.loom");
  {
    std::ofstream out(path);
    out << "loom-assignment 1\nk 2 capacity 0\n0 7\n";
  }
  EXPECT_FALSE(LoadAssignment(path).ok());
  std::remove(path.c_str());
}

TEST(AssignmentIoTest, MissingHeader) {
  const std::string path = TempPath("loom_assignment_hdr.loom");
  {
    std::ofstream out(path);
    out << "garbage\n";
  }
  EXPECT_EQ(LoadAssignment(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace loom
