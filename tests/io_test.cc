// Round-trip and robustness tests for workload and assignment serialization,
// plus the loom-stream binary format (graph/io.h): GraphStream round-trips,
// malformed-file rejection, and endianness-pinned golden bytes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "partition/partition_io.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/workload_io.h"

namespace loom {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(WorkloadIoTest, RoundTrip) {
  Workload w;
  ASSERT_TRUE(w.Add("fof", PathQuery({0, 0, 0}), 4.0).ok());
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 2.0).ok());
  ASSERT_TRUE(w.Add("star", StarQuery(1, {2, 3}), 1.0).ok());

  const std::string path = TempPath("loom_workload_test.loom");
  ASSERT_TRUE(SaveWorkload(w, path).ok());
  auto loaded = LoadWorkload(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->NumQueries(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const QuerySpec& a = w.queries()[i];
    const QuerySpec& b = loaded->queries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.frequency, b.frequency);
    EXPECT_EQ(a.pattern.NumVertices(), b.pattern.NumVertices());
    EXPECT_EQ(a.pattern.NumEdges(), b.pattern.NumEdges());
    for (VertexId v = 0; v < a.pattern.NumVertices(); ++v) {
      EXPECT_EQ(a.pattern.LabelOf(v), b.pattern.LabelOf(v));
    }
  }
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, MissingFile) {
  EXPECT_EQ(LoadWorkload("/nonexistent/w.loom").status().code(),
            StatusCode::kIOError);
}

TEST(WorkloadIoTest, BadHeader) {
  const std::string path = TempPath("loom_workload_bad.loom");
  {
    std::ofstream out(path);
    out << "not-a-workload\n";
  }
  EXPECT_EQ(LoadWorkload(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, UnterminatedQueryBlock) {
  const std::string path = TempPath("loom_workload_trunc.loom");
  {
    std::ofstream out(path);
    out << "loom-workload 1\nquery q 1.0 2\nl 0 0\nl 1 1\ne 0 1\n";
  }
  EXPECT_FALSE(LoadWorkload(path).ok());
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, DisconnectedPatternRejectedOnLoad) {
  const std::string path = TempPath("loom_workload_disc.loom");
  {
    std::ofstream out(path);
    out << "loom-workload 1\nquery q 1.0 2\nl 0 0\nl 1 1\nend\n";
  }
  EXPECT_FALSE(LoadWorkload(path).ok());
  std::remove(path.c_str());
}

TEST(AssignmentIoTest, RoundTrip) {
  PartitionAssignment a(4, 100);
  ASSERT_TRUE(a.Assign(0, 1).ok());
  ASSERT_TRUE(a.Assign(5, 3).ok());
  ASSERT_TRUE(a.Assign(2, 0).ok());

  const std::string path = TempPath("loom_assignment_test.loom");
  ASSERT_TRUE(SaveAssignment(a, path).ok());
  auto loaded = LoadAssignment(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->k(), 4u);
  EXPECT_EQ(loaded->capacity(), 100u);
  EXPECT_EQ(loaded->NumAssigned(), 3u);
  EXPECT_EQ(loaded->PartOf(0), 1);
  EXPECT_EQ(loaded->PartOf(5), 3);
  EXPECT_EQ(loaded->PartOf(2), 0);
  EXPECT_EQ(loaded->PartOf(1), -1);
  std::remove(path.c_str());
}

TEST(AssignmentIoTest, RejectsInvalidPartition) {
  const std::string path = TempPath("loom_assignment_bad.loom");
  {
    std::ofstream out(path);
    out << "loom-assignment 1\nk 2 capacity 0\n0 7\n";
  }
  EXPECT_FALSE(LoadAssignment(path).ok());
  std::remove(path.c_str());
}

TEST(AssignmentIoTest, MissingHeader) {
  const std::string path = TempPath("loom_assignment_hdr.loom");
  {
    std::ofstream out(path);
    out << "garbage\n";
  }
  EXPECT_EQ(LoadAssignment(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// loom-stream binary format
// ---------------------------------------------------------------------------

GraphStream MakeTestStream(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  LabeledGraph g = BarabasiAlbert(n, 3, LabelConfig{4, 0.3}, rng);
  return MakeStream(g, StreamOrder::kRandom, rng);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(StreamFileTest, RoundTripMatchesGraphStream) {
  const GraphStream stream = MakeTestStream(300, 11);
  const std::string path = TempPath("loom_stream_roundtrip.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());

  auto opened = FileArrivalSource::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  FileArrivalSource& file = **opened;
  EXPECT_EQ(file.NumVertices(), stream.NumVertices());
  EXPECT_EQ(file.NumEdges(), stream.NumEdges());
  EXPECT_TRUE(file.info().has_full_neighborhoods);

  // Two full drains (Reset between) both reproduce the recorded stream
  // exactly: same arrival order, labels and back-edge order.
  for (int pass = 0; pass < 2; ++pass) {
    file.Reset();
    ArrivalView view;
    for (const VertexArrival& expected : stream.arrivals()) {
      ASSERT_TRUE(file.Next(&view));
      EXPECT_EQ(view.vertex, expected.vertex);
      EXPECT_EQ(view.label, expected.label);
      ASSERT_EQ(view.back_edges.size(), expected.back_edges.size());
      for (size_t i = 0; i < expected.back_edges.size(); ++i) {
        EXPECT_EQ(view.back_edges[i], expected.back_edges[i]);
      }
    }
    EXPECT_FALSE(file.Next(&view));
  }
  std::remove(path.c_str());
}

TEST(StreamFileTest, FullViewMatchesMaterializedAdjacency) {
  const GraphStream stream = MakeTestStream(300, 12);
  const std::string path = TempPath("loom_stream_fullview.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());

  auto opened = FileArrivalSource::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const FileArrivalSource& file = **opened;

  // The cornerstone of out-of-core replay: each arrival's full slice (back
  // edges, then forward neighbours in their arrival order) is exactly the
  // adjacency order GraphFromStream materialises — so replaying from the
  // file is bit-identical to replaying from the rebuilt graph.
  const LabeledGraph g = GraphFromStream(stream);
  for (uint64_t i = 0; i < file.NumVertices(); ++i) {
    const FileArrivalSource::Record record = file.At(i);
    const std::vector<VertexId>& expected = g.Neighbors(record.vertex);
    ASSERT_EQ(record.full_edges.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(record.full_edges[j], expected[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(StreamFileTest, IncrementalWriterMatchesOneShot) {
  const GraphStream stream = MakeTestStream(200, 13);
  const std::string one_shot = TempPath("loom_stream_oneshot.loomstrm");
  const std::string incremental = TempPath("loom_stream_incr.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, one_shot).ok());

  auto writer = StreamFileWriter::Create(incremental);
  ASSERT_TRUE(writer.ok());
  for (const VertexArrival& a : stream.arrivals()) {
    ASSERT_TRUE((*writer)->Append(a.vertex, a.label, a.back_edges).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  EXPECT_EQ(ReadFileBytes(one_shot), ReadFileBytes(incremental));
  std::remove(one_shot.c_str());
  std::remove(incremental.c_str());
}

// The byte-exact layout of a tiny stream, pinned against docs/FORMATS.md.
// Written on any host, the file must equal these little-endian bytes; a
// big-endian writer that forgot to swap would fail here.
TEST(StreamFileTest, GoldenBytes) {
  GraphStream stream;
  stream.Append(VertexArrival{0, 7, {}});
  stream.Append(VertexArrival{1, 3, {0}});
  stream.Append(VertexArrival{2, 0, {0, 1}});
  const std::string path = TempPath("loom_stream_golden.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());

  std::string expected;
  const auto u32 = [&](uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      expected.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  };
  const auto u64 = [&](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      expected.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  };
  // Header (64 bytes).
  expected += "LOOMSTRM";  // magic, reads as little-endian 0x4D5254534D4F4F4C
  u32(1);                  // version
  u32(1);                  // flags: full neighbourhoods
  u64(3);                  // num_vertices
  u64(3);                  // id_bound
  u64(3);                  // num_edges
  u64(6);                  // edge_slots (2 per edge with full neighbourhoods)
  u64(0);                  // reserved
  u64(0);
  // Directory (24 bytes per arrival: vertex, label, back, full, offset).
  u32(0); u32(7); u32(0); u32(2); u64(0);
  u32(1); u32(3); u32(1); u32(2); u64(2);
  u32(2); u32(0); u32(2); u32(2); u64(4);
  // Edge array: per arrival back edges then forward neighbours in their
  // arrival order.
  u32(1); u32(2);  // arrival 0: forward to 1 and 2
  u32(0); u32(2);  // arrival 1: back 0, forward to 2
  u32(0); u32(1);  // arrival 2: back 0, 1

  EXPECT_EQ(ReadFileBytes(path), expected);
  std::remove(path.c_str());
}

TEST(StreamFileTest, RejectsMalformedFiles) {
  const GraphStream stream = MakeTestStream(50, 14);
  const std::string path = TempPath("loom_stream_malformed.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());
  const std::string good = ReadFileBytes(path);

  const auto expect_rejected = [&](std::string bytes, StatusCode code,
                                   const char* what) {
    WriteFileBytes(path, bytes);
    const auto opened = FileArrivalSource::Open(path);
    ASSERT_FALSE(opened.ok()) << what;
    EXPECT_EQ(opened.status().code(), code) << what;
  };

  std::string bad = good;
  bad[0] = 'X';
  expect_rejected(bad, StatusCode::kInvalidArgument, "wrong magic");

  bad = good;
  bad[8] = 99;  // version field
  expect_rejected(bad, StatusCode::kInvalidArgument, "wrong version");

  bad = good;
  bad[12] = static_cast<char>(0xfe);  // flags field: unknown bits
  expect_rejected(bad, StatusCode::kInvalidArgument, "unknown flags");

  expect_rejected(good.substr(0, good.size() - 4),
                  StatusCode::kInvalidArgument, "truncated edge array");
  expect_rejected(good.substr(0, 32), StatusCode::kInvalidArgument,
                  "truncated header");

  bad = good;
  bad[kStreamFileHeaderBytes + 8] ^= 1;  // first record's back_degree
  expect_rejected(bad, StatusCode::kInvalidArgument, "corrupt directory");

  std::remove(path.c_str());
}

// Open() validates edge *values*, not just directory geometry: a corrupt
// edge slot could otherwise make consumers size O(4G) id-indexed tables (an
// endpoint past the id bound) or silently violate the no-self-loop stream
// invariant. Mutations target the flat edge array of the GoldenBytes layout
// (3 arrivals, edge words start at byte 136), so the directory stays
// perfectly consistent and only the value sweep can catch them.
TEST(StreamFileTest, RejectsCorruptEdgeValues) {
  GraphStream stream;
  stream.Append(VertexArrival{0, 7, {}});
  stream.Append(VertexArrival{1, 3, {0}});
  stream.Append(VertexArrival{2, 0, {0, 1}});
  const std::string path = TempPath("loom_stream_badedges.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());
  const std::string good = ReadFileBytes(path);

  const size_t edge_base = kStreamFileHeaderBytes + 3 * kStreamFileRecordBytes;
  const auto poke_edge_word = [&](size_t word, uint32_t value) {
    std::string bytes = good;
    for (int b = 0; b < 4; ++b) {
      bytes[edge_base + 4 * word + b] =
          static_cast<char>((value >> (8 * b)) & 0xff);
    }
    return bytes;
  };
  const auto expect_rejected = [&](const std::string& bytes,
                                   const char* what) {
    WriteFileBytes(path, bytes);
    const auto opened = FileArrivalSource::Open(path);
    ASSERT_FALSE(opened.ok()) << what;
    EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument) << what;
  };

  // Edge words: [1, 2, 0, 2, 0, 1] (see GoldenBytes); id_bound is 3.
  expect_rejected(poke_edge_word(0, 3), "endpoint == id_bound");
  expect_rejected(poke_edge_word(5, 0xffffffffu), "endpoint huge");
  // Word 2 is arrival 1's (vertex 1) back edge: 0 -> 1 is a self-loop.
  expect_rejected(poke_edge_word(2, 1), "self-loop edge record");
  // Word 4 is arrival 2's (vertex 2) first back edge.
  expect_rejected(poke_edge_word(4, 2), "self-loop in back edges");

  // The unmutated file still opens (the sweep has no false positives), and
  // so does a file whose validation ran under a tiny residency budget.
  WriteFileBytes(path, good);
  EXPECT_TRUE(FileArrivalSource::Open(path).ok());
  StreamOpenOptions tiny;
  tiny.residency_budget_bytes = 4096;
  EXPECT_TRUE(FileArrivalSource::Open(path, tiny).ok());
  std::remove(path.c_str());
}

TEST(StreamFileTest, WriterRejectsStreamInvariantViolations) {
  const std::string path = TempPath("loom_stream_invariants.loomstrm");
  const std::vector<VertexId> none;
  const auto reject = [&](VertexId vertex, const std::vector<VertexId>& backs,
                          const char* what) {
    auto writer = StreamFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(0, 0, none).ok());
    EXPECT_EQ((*writer)->Append(vertex, 0, backs).code(),
              StatusCode::kInvalidArgument)
        << what;
  };
  reject(1, {1}, "self-loop");
  reject(0, {}, "repeat arrival");
  reject(1, {2}, "forward edge");
  reject(1, {0, 0}, "duplicate edge");
  // No finished file may be left behind by failed writers.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(StreamFileTest, BackEdgeOnlyFiles) {
  const GraphStream stream = MakeTestStream(100, 15);
  const std::string path = TempPath("loom_stream_backonly.loomstrm");
  StreamFileOptions options;
  options.full_neighborhoods = false;
  ASSERT_TRUE(WriteStreamFile(stream, path, options).ok());

  // Full-neighbourhood view is refused; the back-edge view works and At()
  // aliases both spans to the same slice.
  StreamOpenOptions full_view;
  full_view.view = StreamView::kFullNeighborhoods;
  EXPECT_EQ(FileArrivalSource::Open(path, full_view).status().code(),
            StatusCode::kFailedPrecondition);

  auto opened = FileArrivalSource::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE((*opened)->info().has_full_neighborhoods);
  const FileArrivalSource::Record record = (*opened)->At(50);
  EXPECT_EQ(record.full_edges.data(), record.back_edges.data());
  EXPECT_EQ(record.full_edges.size(), record.back_edges.size());
  std::remove(path.c_str());
}

TEST(StreamFileTest, TinyResidencyBudgetStaysCorrect) {
  const GraphStream stream = MakeTestStream(200, 16);
  const std::string path = TempPath("loom_stream_residency.loomstrm");
  ASSERT_TRUE(WriteStreamFile(stream, path).ok());

  StreamOpenOptions options;
  options.residency_budget_bytes = 4096;  // drop pages constantly
  auto opened = FileArrivalSource::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  uint64_t edges = 0;
  ArrivalView view;
  for (int pass = 0; pass < 2; ++pass) {
    (*opened)->Reset();
    edges = 0;
    uint64_t vertices = 0;
    while ((*opened)->Next(&view)) {
      ++vertices;
      edges += view.back_edges.size();
    }
    EXPECT_EQ(vertices, stream.NumVertices());
    EXPECT_EQ(edges, stream.NumEdges());
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Edge-list ingestion (graph/edge_list.h) — the loom_convert front door.
// Fuzz-style negative tests: malformed input must reject with a line-anchored
// error or normalize with accounting, never crash or mis-parse.
// ---------------------------------------------------------------------------

std::string WriteEdgeListFile(const std::string& name,
                              const std::string& text) {
  const std::string path = TempPath(name);
  WriteFileBytes(path, text);
  return path;
}

TEST(EdgeListTest, LoadsPlainEdgesWithCommentsAndTrailingColumns) {
  const std::string path = WriteEdgeListFile("loom_el_ok.txt",
                                             "# SNAP-style comment\n"
                                             "% matrix-market comment\n"
                                             "\n"
                                             "   \t  \n"
                                             "0 1 1234567890\n"
                                             "1 2\n"
                                             "2\t0\textra\tcolumns\n");
  EdgeListStats stats;
  auto loaded = LoadEdgeListGraph(path, EdgeListOptions{}, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_EQ(stats.self_loops, 0u);
  EXPECT_EQ(stats.duplicate_edges, 0u);
  std::remove(path.c_str());
}

TEST(EdgeListTest, NormalizesSelfLoopsAndDuplicates) {
  // Duplicates in both orientations and repeated self-loops collapse to one
  // clean undirected edge, with the drops accounted — loom_convert surfaces
  // these counts so silent corpus damage is visible.
  const std::string path = WriteEdgeListFile("loom_el_norm.txt",
                                             "5 5\n"
                                             "0 1\n"
                                             "1 0\n"
                                             "0 1\n"
                                             "7 7\n");
  EdgeListStats stats;
  auto loaded = LoadEdgeListGraph(path, EdgeListOptions{}, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumEdges(), 1u);
  EXPECT_EQ(stats.self_loops, 2u);
  EXPECT_EQ(stats.duplicate_edges, 2u);
  std::remove(path.c_str());
}

TEST(EdgeListTest, RemapsSparseIdsDensely) {
  // Raw ids map to dense first-appearance order, so a 3-line file with
  // billion-scale ids builds a 4-vertex graph, not a 4G-entry table.
  const std::string path = WriteEdgeListFile("loom_el_sparse.txt",
                                             "1000000000 7\n"
                                             "7 18446744073709551615\n"
                                             "1000000000 3\n");
  auto loaded = LoadEdgeListGraph(path, EdgeListOptions{}, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), 4u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  // First-appearance interning is deterministic: 1000000000 -> 0, 7 -> 1.
  EXPECT_TRUE(loaded->HasEdge(0, 1));
  std::remove(path.c_str());
}

TEST(EdgeListTest, RejectsMalformedLines) {
  const auto expect_rejected = [](const std::string& text, const char* what,
                                  const char* line_tag) {
    const std::string path = WriteEdgeListFile("loom_el_bad.txt", text);
    const auto loaded = LoadEdgeListGraph(path, EdgeListOptions{}, nullptr);
    ASSERT_FALSE(loaded.ok()) << what;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << what;
    // Errors are anchored to the offending line number for triage.
    EXPECT_NE(loaded.status().ToString().find(line_tag), std::string::npos)
        << what << ": " << loaded.status().ToString();
    std::remove(path.c_str());
  };

  expect_rejected("0 1\n42\n", "single-token line", ":2");
  expect_rejected("-1 2\n", "negative id", ":1");
  expect_rejected("0 1\n1e5 2\n", "scientific notation", ":2");
  expect_rejected("0 12abc\n", "digits then garbage", ":1");
  expect_rejected("18446744073709551616 0\n", "uint64 overflow", ":1");
  expect_rejected("0x10 1\n", "hex id", ":1");
}

TEST(EdgeListTest, MissingFileIsRejected) {
  EXPECT_EQ(LoadEdgeListGraph("/nonexistent/edges.txt", EdgeListOptions{},
                              nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace loom
