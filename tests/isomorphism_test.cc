// Tests for the exact sub-graph isomorphism matcher (the §2 query
// semantics), validated against hand-counted fixtures and brute force.

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "motif/isomorphism.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

TEST(IsomorphismTest, SingleVertexMatchesByLabel) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(0);
  LabeledGraph q;
  q.AddVertex(0);
  EXPECT_EQ(CountEmbeddings(q, g), 2u);
}

TEST(IsomorphismTest, EdgeMatchRespectsLabels) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(1);
  const VertexId c = g.AddVertex(2);
  g.AddEdgeUnchecked(a, b);
  g.AddEdgeUnchecked(b, c);
  // Pattern a-b: one match, two injective maps? No: labels fix the map.
  EXPECT_EQ(CountEmbeddings(PathQuery({0, 1}), g), 1u);
  EXPECT_EQ(CountEmbeddings(PathQuery({1, 2}), g), 1u);
  EXPECT_EQ(CountEmbeddings(PathQuery({0, 2}), g), 0u);
}

TEST(IsomorphismTest, AutomorphismsCountedAsDistinctEmbeddings) {
  // Pattern a-a on edge a-a: both orientations.
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  g.AddEdgeUnchecked(a, b);
  EXPECT_EQ(CountEmbeddings(PathQuery({0, 0}), g), 2u);
}

TEST(IsomorphismTest, PaperFigure1Q1HasExactlyOneMatchSet) {
  const LabeledGraph g = PaperFigure1Graph();
  std::set<std::set<VertexId>> match_sets;
  ForEachEmbedding(PaperQ1(), g, [&](const std::vector<VertexId>& m) {
    match_sets.insert(std::set<VertexId>(m.begin(), m.end()));
    return true;
  });
  // The paper: "the answer to q1 would be the sub-graph of G containing the
  // vertices 1, 2, 5, 6" (our ids 0, 1, 4, 5).
  ASSERT_EQ(match_sets.size(), 1u);
  EXPECT_EQ(*match_sets.begin(), (std::set<VertexId>{0, 1, 4, 5}));
}

TEST(IsomorphismTest, PaperFigure1Q2Q3HaveMatches) {
  const LabeledGraph g = PaperFigure1Graph();
  EXPECT_TRUE(ContainsEmbedding(PaperQ2(), g));
  EXPECT_TRUE(ContainsEmbedding(PaperQ3(), g));
  // q3 = a-b-c-d matches the bottom row 1-2-3-4 (ids 0-1-2-3), among others
  // (the paper pins down only q1's answer).
  std::set<std::set<VertexId>> q3_sets;
  ForEachEmbedding(PaperQ3(), g, [&](const std::vector<VertexId>& m) {
    q3_sets.insert(std::set<VertexId>(m.begin(), m.end()));
    return true;
  });
  EXPECT_TRUE(q3_sets.count(std::set<VertexId>{0, 1, 2, 3}));
}

TEST(IsomorphismTest, TriangleInTriangleHasSixAutomorphicEmbeddings) {
  Rng rng(1);
  const LabeledGraph tri = Complete(3, LabelConfig{1, 0.0}, rng);
  EXPECT_EQ(CountEmbeddings(tri, tri), 6u);
}

TEST(IsomorphismTest, NonInducedSemantics) {
  // Pattern path a-b-c embeds into a labelled triangle {a,b,c}: the extra
  // triangle edge does not disqualify the match (§2: pattern edges must map
  // to data edges; nothing is said about extra data edges).
  const LabeledGraph tri = TriangleQuery(0, 1, 2);
  EXPECT_EQ(CountEmbeddings(PathQuery({0, 1, 2}), tri), 1u);
}

TEST(IsomorphismTest, PatternLargerThanTargetFails) {
  LabeledGraph small;
  small.AddVertex(0);
  EXPECT_EQ(CountEmbeddings(PathQuery({0, 0}), small), 0u);
}

TEST(IsomorphismTest, LimitStopsEnumeration) {
  Rng rng(2);
  const LabeledGraph g = Complete(8, LabelConfig{1, 0.0}, rng);
  EXPECT_EQ(CountEmbeddings(PathQuery({0, 0}), g, 5), 5u);
}

TEST(IsomorphismTest, EmbeddingsAreValid) {
  Rng rng(3);
  LabeledGraph g = ErdosRenyiGnm(60, 180, LabelConfig{3, 0.0}, rng);
  const LabeledGraph q = TriangleQuery(0, 1, 2);
  size_t checked = 0;
  ForEachEmbedding(q, g, [&](const std::vector<VertexId>& m) {
    ++checked;
    // Injective.
    std::set<VertexId> distinct(m.begin(), m.end());
    EXPECT_EQ(distinct.size(), m.size());
    // Label preserving and edge preserving.
    for (VertexId pv = 0; pv < q.NumVertices(); ++pv) {
      EXPECT_EQ(q.LabelOf(pv), g.LabelOf(m[pv]));
    }
    bool ok = true;
    q.ForEachEdge([&](VertexId pu, VertexId pv) {
      ok = ok && g.HasEdge(m[pu], m[pv]);
    });
    EXPECT_TRUE(ok);
    return true;
  });
  SUCCEED() << checked << " embeddings validated";
}

TEST(MatchingOrderTest, ConnectedExpansion) {
  const LabeledGraph q = PaperQ3();
  const std::vector<VertexId> order = MatchingOrder(q);
  ASSERT_EQ(order.size(), q.NumVertices());
  // Every vertex after the first must neighbour an earlier one.
  for (size_t i = 1; i < order.size(); ++i) {
    bool connected = false;
    for (size_t j = 0; j < i; ++j) {
      connected = connected || q.HasEdge(order[i], order[j]);
    }
    EXPECT_TRUE(connected) << "order position " << i;
  }
}

// Property: CountEmbeddings of planted motifs is at least the planted count
// times the motif's automorphism count (1 for these label-distinct motifs).
class PlantedCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlantedCountProperty, FindsAllPlanted) {
  Rng rng(GetParam());
  LabeledGraph g = ErdosRenyiGnm(400, 700, LabelConfig{5, 0.0}, rng);
  const LabeledGraph motif = PathQuery({0, 1, 2, 3});
  const auto planted = PlantMotifs(&g, motif, 12, rng);
  ASSERT_EQ(planted.size(), 12u);
  EXPECT_GE(CountEmbeddings(motif, g, 100000), 12u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedCountProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace loom
