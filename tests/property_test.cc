// Cross-cutting property suites (TEST_P sweeps) over randomized inputs:
// stream-matcher completeness against the exact matcher, LOOM invariants
// under every ordering, and signature soundness at scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/loom.h"
#include "graph/generators.h"
#include "matching/stream_matcher.h"
#include "metrics/metrics.h"
#include "motif/isomorphism.h"
#include "stream/stream.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

// ---------------------------------------------------------------------------
// Stream-matcher recall and soundness. The paper's matching heuristic keeps
// one evolving sub-graph per region ("previous signatures discarded", §4.3)
// and its re-grow pass recovers overlaps greedily, so it is deliberately
// NOT complete — §4.3 admits the recovered match "may be none". Measured
// recall on window-contained abc paths in G(n,m) streams is ~85% (see
// EXPERIMENTS.md); we assert a conservative 60% floor per seed, plus exact
// soundness: every reported match must be a real embedding (oracle: VF2).
// ---------------------------------------------------------------------------

class MatcherCompleteness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherCompleteness, FindsAllWindowContainedPathMatches) {
  Rng rng(GetParam());
  // Small graph, all in one window.
  LabeledGraph g = ErdosRenyiGnm(40, 70, LabelConfig{3, 0.0}, rng);
  const LabeledGraph motif = PathQuery({0, 1, 2});

  Workload w;
  ASSERT_TRUE(w.Add("abc", motif, 1.0).ok());
  w.Normalize();
  auto trie = BuildTrie(w);
  ASSERT_TRUE(trie.ok());

  StreamMatcherOptions mopts;
  mopts.frequency_threshold = 0.5;
  mopts.verify_exact = true;
  mopts.max_tracked_per_vertex = 1u << 20;  // no caps: completeness check
  StreamMatcher matcher(trie->get(), mopts);

  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  for (const VertexArrival& a : stream.arrivals()) {
    matcher.OnVertex(a.vertex, a.label, a.back_edges);
  }

  // Oracle: every abc path embedding's vertex set must be a frequent match.
  std::set<std::vector<VertexId>> expected;
  ForEachEmbedding(motif, g, [&](const std::vector<VertexId>& m) {
    std::vector<VertexId> sorted = m;
    std::sort(sorted.begin(), sorted.end());
    expected.insert(sorted);
    return true;
  });
  const auto found_list = matcher.FrequentMatchVertexSets();
  const std::set<std::vector<VertexId>> found(found_list.begin(),
                                              found_list.end());
  size_t hits = 0;
  for (const auto& e : expected) hits += found.count(e);
  if (!expected.empty()) {
    EXPECT_GE(static_cast<double>(hits) / expected.size(), 0.6)
        << "recall collapsed: " << hits << "/" << expected.size() << " (seed "
        << GetParam() << ")";
  }
  // Soundness is exact: no spurious full-path matches in verify_exact mode.
  for (const auto& f : found) {
    if (f.size() == 3) {
      EXPECT_TRUE(expected.count(f)) << "spurious match reported";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherCompleteness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// LOOM invariants across orderings, window sizes and k.
// ---------------------------------------------------------------------------

class LoomInvariants
    : public ::testing::TestWithParam<
          std::tuple<StreamOrder, size_t, uint32_t>> {};

TEST_P(LoomInvariants, CompleteBalancedDeterministic) {
  const auto [order, window, k] = GetParam();
  Rng rng(7);
  LabeledGraph g = BarabasiAlbert(800, 3, LabelConfig{3, 0.2}, rng);
  PlantMotifs(&g, TriangleQuery(0, 1, 2), 40, rng, /*locality_span=*/16);
  const GraphStream stream = MakeStream(g, order, rng);

  Workload w;
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();

  LoomOptions o;
  o.partitioner.k = k;
  o.partitioner.num_vertices_hint = g.NumVertices();
  o.partitioner.window_size = window;
  o.matcher.frequency_threshold = 0.4;
  auto loom = Loom::Create(w, o);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);

  const auto& a = (*loom)->Partitioner().assignment();
  EXPECT_TRUE(AllAssigned(g, a));
  const size_t cap = ComputeCapacity(k, g.NumVertices(), 1.1);
  for (const uint32_t size : a.Sizes()) EXPECT_LE(size, cap);
  const LoomStats& stats = (*loom)->Partitioner().loom_stats();
  EXPECT_EQ(stats.cluster_vertices + stats.single_vertices, g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoomInvariants,
    ::testing::Combine(
        ::testing::Values(StreamOrder::kRandom, StreamOrder::kBfs,
                          StreamOrder::kAdversarial, StreamOrder::kStochastic,
                          StreamOrder::kNatural),
        ::testing::Values(4u, 64u, 512u), ::testing::Values(2u, 8u)));

// ---------------------------------------------------------------------------
// Capacity exhaustion under LOOM's cluster paths. The stream carries twice
// the hinted vertex count, so every partition fills mid-stream and cluster
// assignment, connectivity-aware splitting and single-vertex eviction all
// hit the overflow fallback. The seed code assert-crashed here in Debug and
// silently dropped vertices under NDEBUG; the repaired contract is complete
// assignment with the overflow reported in stats.
// ---------------------------------------------------------------------------

class LoomCapacityExhaustion
    : public ::testing::TestWithParam<
          std::tuple<StreamOrder, size_t, uint32_t>> {};

TEST_P(LoomCapacityExhaustion, OverfullStreamNeverDropsVertices) {
  const auto [order, window, k] = GetParam();
  Rng rng(17);
  LabeledGraph g = BarabasiAlbert(600, 3, LabelConfig{3, 0.2}, rng);
  PlantMotifs(&g, TriangleQuery(0, 1, 2), 30, rng, /*locality_span=*/16);
  const GraphStream stream = MakeStream(g, order, rng);

  Workload w;
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  ASSERT_TRUE(w.Add("ab", PathQuery({0, 1}), 1.0).ok());
  w.Normalize();

  LoomOptions o;
  o.partitioner.k = k;
  o.partitioner.num_vertices_hint = g.NumVertices() / 2;  // k*C < n
  o.partitioner.capacity_slack = 1.0;
  o.partitioner.window_size = window;
  o.matcher.frequency_threshold = 0.4;
  auto loom = Loom::Create(w, o);
  ASSERT_TRUE(loom.ok());
  (*loom)->Partitioner().Run(stream);

  const auto& a = (*loom)->Partitioner().assignment();
  const size_t cap = ComputeCapacity(k, g.NumVertices() / 2, 1.0);
  ASSERT_LT(cap * k, g.NumVertices());
  EXPECT_EQ(a.NumAssigned(), g.NumVertices());
  EXPECT_TRUE(AllAssigned(g, a));
  const auto& pstats = (*loom)->Partitioner().stats();
  EXPECT_EQ(pstats.assign_errors, 0u);
  EXPECT_GE(pstats.forced_placements, g.NumVertices() - cap * k);
  const LoomStats& stats = (*loom)->Partitioner().loom_stats();
  EXPECT_EQ(stats.cluster_vertices + stats.single_vertices, g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoomCapacityExhaustion,
    ::testing::Combine(
        ::testing::Values(StreamOrder::kRandom, StreamOrder::kStochastic,
                          StreamOrder::kNatural),
        ::testing::Values(4u, 64u, 256u), ::testing::Values(2u, 8u)));

// ---------------------------------------------------------------------------
// Signature soundness at scale: streamed growth never loses divisibility.
// For random streams, every tracked sub-graph's signature must equal the
// batch signature of its edge set.
// ---------------------------------------------------------------------------

class SignatureConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SignatureConsistency, TrackedMatchesAreRealUnderExactMode) {
  Rng rng(GetParam() * 31 + 5);
  LabeledGraph g = WattsStrogatz(60, 3, 0.2, LabelConfig{3, 0.0}, rng);

  Workload w;
  ASSERT_TRUE(w.Add("tri", TriangleQuery(0, 1, 2), 2.0).ok());
  ASSERT_TRUE(w.Add("path", PathQuery({0, 1, 2}), 1.0).ok());
  w.Normalize();
  auto trie = BuildTrie(w);
  ASSERT_TRUE(trie.ok());

  StreamMatcherOptions mopts;
  mopts.frequency_threshold = 0.1;
  mopts.verify_exact = true;
  StreamMatcher matcher(trie->get(), mopts);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  for (const VertexArrival& a : stream.arrivals()) {
    matcher.OnVertex(a.vertex, a.label, a.back_edges);
  }
  // Every reported frequent match must embed one of the workload motifs on
  // exactly that vertex set.
  for (const auto& vertices : matcher.FrequentMatchVertexSets()) {
    const LabeledGraph sub = InducedSubgraph(g, vertices);
    bool embeds_any = false;
    for (const QuerySpec& q : w.queries()) {
      // Match vertex-set size first: a frequent match may be any frequent
      // motif, incl. sub-motifs; check against all trie motifs instead.
      (void)q;
    }
    for (TpstryNodeId id = 0; id < (*trie)->NumNodes(); ++id) {
      const TpstryNode& node = (*trie)->node(id);
      if (node.num_vertices != vertices.size()) continue;
      if (ContainsEmbedding(node.motif, sub)) {
        embeds_any = true;
        break;
      }
    }
    EXPECT_TRUE(embeds_any) << "reported match embeds no trie motif";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureConsistency,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace loom
