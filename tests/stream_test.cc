// Tests for graph-stream construction and the §3.1 orderings.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "graph/generators.h"
#include "stream/stream.h"

namespace loom {
namespace {

LabeledGraph TestGraph(uint32_t n = 200, uint64_t seed = 1) {
  Rng rng(seed);
  return BarabasiAlbert(n, 3, LabelConfig{4, 0.0}, rng);
}

/// Every vertex exactly once; every edge carried exactly once by its later
/// endpoint.
void CheckStreamInvariants(const LabeledGraph& g, const GraphStream& stream) {
  ASSERT_EQ(stream.NumVertices(), g.NumVertices());
  std::unordered_set<VertexId> arrived;
  size_t edges = 0;
  for (const VertexArrival& a : stream.arrivals()) {
    EXPECT_TRUE(arrived.insert(a.vertex).second)
        << "vertex " << a.vertex << " arrived twice";
    EXPECT_EQ(a.label, g.LabelOf(a.vertex));
    for (const VertexId w : a.back_edges) {
      EXPECT_TRUE(arrived.count(w)) << "back edge to future vertex";
      EXPECT_TRUE(g.HasEdge(a.vertex, w));
      ++edges;
    }
  }
  EXPECT_EQ(edges, g.NumEdges());
  EXPECT_EQ(stream.NumEdges(), g.NumEdges());
}

class StreamOrderTest : public ::testing::TestWithParam<StreamOrder> {};

TEST_P(StreamOrderTest, InvariantsHold) {
  const LabeledGraph g = TestGraph();
  Rng rng(42);
  const GraphStream stream = MakeStream(g, GetParam(), rng);
  CheckStreamInvariants(g, stream);
}

TEST_P(StreamOrderTest, DeterministicGivenSeed) {
  const LabeledGraph g = TestGraph();
  Rng rng1(7);
  Rng rng2(7);
  const GraphStream s1 = MakeStream(g, GetParam(), rng1);
  const GraphStream s2 = MakeStream(g, GetParam(), rng2);
  ASSERT_EQ(s1.NumVertices(), s2.NumVertices());
  for (size_t i = 0; i < s1.arrivals().size(); ++i) {
    EXPECT_EQ(s1.arrivals()[i].vertex, s2.arrivals()[i].vertex);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, StreamOrderTest,
    ::testing::Values(StreamOrder::kRandom, StreamOrder::kBfs,
                      StreamOrder::kDfs, StreamOrder::kAdversarial,
                      StreamOrder::kStochastic, StreamOrder::kNatural),
    [](const ::testing::TestParamInfo<StreamOrder>& info) {
      return StreamOrderName(info.param);
    });

TEST(StreamTest, NaturalOrderIsIdOrder) {
  const LabeledGraph g = TestGraph(50);
  Rng rng(1);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);
  for (uint32_t i = 0; i < stream.NumVertices(); ++i) {
    EXPECT_EQ(stream.arrivals()[i].vertex, i);
  }
}

TEST(StreamTest, BfsVisitsNeighborhoodsContiguously) {
  // On a path graph, BFS from any start yields arrivals whose back edges are
  // never empty after the first vertex of each component (single component
  // here: only the very first arrival has none).
  LabeledGraph path;
  for (int i = 0; i < 50; ++i) path.AddVertex(0);
  for (VertexId v = 0; v + 1 < 50; ++v) path.AddEdgeUnchecked(v, v + 1);
  Rng rng(3);
  const GraphStream stream = MakeStream(path, StreamOrder::kBfs, rng);
  for (size_t i = 1; i < stream.arrivals().size(); ++i) {
    EXPECT_FALSE(stream.arrivals()[i].back_edges.empty())
        << "BFS arrival " << i << " disconnected from prefix";
  }
}

TEST(StreamTest, AdversarialFrontLoadsIndependentSet) {
  const LabeledGraph g = TestGraph(300);
  Rng rng(5);
  const GraphStream stream = MakeStream(g, StreamOrder::kAdversarial, rng);
  // Count the prefix of arrivals with no back edges: the greedy MIS.
  size_t prefix = 0;
  for (const auto& a : stream.arrivals()) {
    if (!a.back_edges.empty()) break;
    ++prefix;
  }
  // A maximal independent set of a sparse graph is a sizable fraction of V.
  EXPECT_GT(prefix, g.NumVertices() / 10);
}

TEST(StreamTest, StochasticGrowsConnectedRegionOnConnectedGraph) {
  const LabeledGraph g = TestGraph(300);
  ASSERT_TRUE(IsConnected(g));
  Rng rng(6);
  const GraphStream stream = MakeStream(g, StreamOrder::kStochastic, rng);
  // After the first arrival, most vertices should connect to the arrived
  // region (the process prefers attached vertices; base tickets keep a small
  // jump probability).
  size_t attached = 0;
  for (size_t i = 1; i < stream.arrivals().size(); ++i) {
    if (!stream.arrivals()[i].back_edges.empty()) ++attached;
  }
  EXPECT_GT(attached, stream.NumVertices() * 3 / 4);
}

TEST(StreamTest, FromExplicitOrder) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddEdgeUnchecked(0, 1);
  g.AddEdgeUnchecked(1, 2);
  const GraphStream stream = MakeStreamFromOrder(g, {2, 0, 1});
  ASSERT_EQ(stream.NumVertices(), 3u);
  EXPECT_EQ(stream.arrivals()[0].vertex, 2u);
  EXPECT_TRUE(stream.arrivals()[0].back_edges.empty());
  EXPECT_TRUE(stream.arrivals()[1].back_edges.empty());
  // Vertex 1 arrives last and carries both edges.
  EXPECT_EQ(stream.arrivals()[2].vertex, 1u);
  EXPECT_EQ(stream.arrivals()[2].back_edges.size(), 2u);
}

TEST(StreamTest, OrderNamesAreStable) {
  EXPECT_EQ(StreamOrderName(StreamOrder::kRandom), "random");
  EXPECT_EQ(StreamOrderName(StreamOrder::kAdversarial), "adversarial");
  EXPECT_EQ(StreamOrderName(StreamOrder::kStochastic), "stochastic");
}

}  // namespace
}  // namespace loom
