// Tests for the offline multilevel (METIS-like) baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/offline_partitioner.h"

namespace loom {
namespace {

TEST(OfflineTest, EmptyGraph) {
  OfflineOptions o;
  o.k = 4;
  const auto a = OfflineMultilevelPartition(LabeledGraph(), o);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->NumAssigned(), 0u);
}

TEST(OfflineTest, RejectsZeroK) {
  OfflineOptions o;
  o.k = 0;
  EXPECT_FALSE(OfflineMultilevelPartition(LabeledGraph(), o).ok());
}

TEST(OfflineTest, CompleteAssignmentAndBalance) {
  Rng rng(1);
  const LabeledGraph g = BarabasiAlbert(2000, 4, LabelConfig{3, 0.0}, rng);
  OfflineOptions o;
  o.k = 8;
  o.balance_slack = 1.1;
  const auto a = OfflineMultilevelPartition(g, o);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(AllAssigned(g, *a));
  EXPECT_LE(BalanceMaxOverAvg(*a), 1.1 + 1e-9);
}

TEST(OfflineTest, SplitsTwoCliquesPerfectly) {
  // Two 50-cliques joined by a single edge: the optimal 2-cut is 1.
  LabeledGraph g;
  for (int i = 0; i < 100; ++i) g.AddVertex(0);
  for (VertexId u = 0; u < 50; ++u) {
    for (VertexId v = u + 1; v < 50; ++v) g.AddEdgeUnchecked(u, v);
  }
  for (VertexId u = 50; u < 100; ++u) {
    for (VertexId v = u + 1; v < 100; ++v) g.AddEdgeUnchecked(u, v);
  }
  g.AddEdgeUnchecked(49, 50);
  OfflineOptions o;
  o.k = 2;
  o.seed = 3;
  const auto a = OfflineMultilevelPartition(g, o);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(NumCutEdges(g, *a), 1u);
}

TEST(OfflineTest, GridCutNearOptimal) {
  // 32x32 grid, k=2: optimal bisection cuts 32 edges; multilevel + FM should
  // land within a small factor.
  Rng rng(2);
  const LabeledGraph g = Grid2D(32, 32, LabelConfig{2, 0.0}, rng);
  OfflineOptions o;
  o.k = 2;
  o.seed = 5;
  const auto a = OfflineMultilevelPartition(g, o);
  ASSERT_TRUE(a.ok());
  EXPECT_LE(NumCutEdges(g, *a), 96u);  // within 3x of optimal
}

TEST(OfflineTest, RefinementImprovesInitialCut) {
  Rng rng(3);
  const LabeledGraph g = WattsStrogatz(1500, 4, 0.05, LabelConfig{2, 0.0}, rng);
  OfflineOptions o;
  o.k = 4;
  OfflineStats stats;
  const auto a = OfflineMultilevelPartition(g, o, &stats);
  ASSERT_TRUE(a.ok());
  EXPECT_GT(stats.levels, 1u);
  EXPECT_LT(stats.coarsest_vertices, g.NumVertices());
  // Final cut (after refinement across levels) no worse than the coarsest
  // initial cut.
  EXPECT_LE(stats.final_cut, stats.initial_cut);
}

TEST(OfflineTest, BeatsStreamingCutOnStructuredGraphs) {
  Rng rng(4);
  const LabeledGraph g = Grid2D(40, 40, LabelConfig{2, 0.0}, rng);
  OfflineOptions o;
  o.k = 4;
  const auto a = OfflineMultilevelPartition(g, o);
  ASSERT_TRUE(a.ok());
  // The paper's framing: offline multilevel is the cut-quality reference.
  // On a grid, 4-way cut should be well under 10% of edges.
  EXPECT_LT(EdgeCutFraction(g, *a), 0.10);
}

TEST(OfflineTest, DeterministicGivenSeed) {
  Rng rng(5);
  const LabeledGraph g = BarabasiAlbert(800, 3, LabelConfig{2, 0.0}, rng);
  OfflineOptions o;
  o.k = 4;
  o.seed = 1234;
  const auto a1 = OfflineMultilevelPartition(g, o);
  const auto a2 = OfflineMultilevelPartition(g, o);
  ASSERT_TRUE(a1.ok() && a2.ok());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(a1->PartOf(v), a2->PartOf(v));
  }
}

class OfflineKSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OfflineKSweep, BalanceHeldAcrossK) {
  const uint32_t k = GetParam();
  Rng rng(6);
  const LabeledGraph g = ErdosRenyiGnm(3000, 9000, LabelConfig{2, 0.0}, rng);
  OfflineOptions o;
  o.k = k;
  o.balance_slack = 1.15;
  const auto a = OfflineMultilevelPartition(g, o);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(AllAssigned(g, *a));
  // The bound is integral: max load <= ceil(slack * n / k).
  const auto cap = static_cast<uint32_t>(
      std::ceil(1.15 * g.NumVertices() / static_cast<double>(k)));
  for (const uint32_t size : a->Sizes()) EXPECT_LE(size, cap);
}

INSTANTIATE_TEST_SUITE_P(Ks, OfflineKSweep, ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace loom
