// The partitioner factory is the one supported construction path for every
// streaming partitioner; these tests pin its registry, its error contract,
// and the name round-trip that keeps bench tables and CLI flags honest.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/loom.h"
#include "core/partitioner_factory.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

Workload TinyWorkload() {
  Workload w;
  (void)w.Add("path", PathQuery({0, 1}), 1.0);
  w.Normalize();
  return w;
}

TEST(PartitionerFactoryTest, RegistryListsTheCanonicalNames) {
  const std::vector<std::string>& names = KnownPartitioners();
  const std::vector<std::string> want = {"hash", "ldg", "fennel",
                                         "ldg-buffered", "loom"};
  EXPECT_EQ(names, want);
  for (const std::string& name : names) {
    EXPECT_TRUE(IsKnownPartitioner(name)) << name;
  }
  EXPECT_FALSE(IsKnownPartitioner("metis"));
  EXPECT_FALSE(IsKnownPartitioner(""));
  EXPECT_FALSE(IsKnownPartitioner("LDG"));  // names are case-sensitive
}

TEST(PartitionerFactoryTest, NamesRoundTripThroughConstruction) {
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = 100;
  LoomOptions lopts;
  lopts.partitioner = popts;
  const Workload workload = TinyWorkload();
  auto trie = BuildTrie(workload, lopts.paths_only);
  ASSERT_TRUE(trie.ok());

  for (const std::string& name : KnownPartitioners()) {
    auto made = MakePartitioner(name, lopts, trie->get());
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ((*made)->Name(), name);
  }
}

TEST(PartitionerFactoryTest, UnknownNameIsInvalidArgument) {
  PartitionerOptions popts;
  auto plain = MakePartitioner("metis", popts);
  EXPECT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kInvalidArgument);

  LoomOptions lopts;
  auto full = MakePartitioner("metis", lopts, nullptr);
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionerFactoryTest, LoomRequiresTheTrieOverload) {
  // The plain overload cannot build LOOM (no trie to give it).
  PartitionerOptions popts;
  auto plain = MakePartitioner("loom", popts);
  EXPECT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kInvalidArgument);

  // And the full overload still demands a non-null trie.
  LoomOptions lopts;
  auto no_trie = MakePartitioner("loom", lopts, nullptr);
  EXPECT_FALSE(no_trie.ok());
  EXPECT_EQ(no_trie.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionerFactoryTest, ObliviousNamesIgnoreTheTrie) {
  // Workload-oblivious partitioners construct fine with or without a trie.
  LoomOptions lopts;
  lopts.partitioner.k = 3;
  for (const std::string& name : KnownPartitioners()) {
    if (name == "loom") continue;
    auto made = MakePartitioner(name, lopts, nullptr);
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ((*made)->Name(), name);
  }
}

}  // namespace
}  // namespace loom
