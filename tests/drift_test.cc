// Drift subsystem contract tests: detector thresholds + hysteresis, the
// strict migration budget of incremental restream passes, and the
// end-to-end piecewise-stationary scenario (shared with bench_drift and
// run_benchmarks' `drift` JSON section).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <memory>

#include "core/partitioner_factory.h"
#include "drift/drift_controller.h"
#include "drift/drift_detector.h"
#include "drift_scenario.h"
#include "metrics/metrics.h"
#include "restream/restreamer.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

using bench::DriftScenarioConfig;
using bench::DriftScenarioResult;
using bench::GraphKind;
using bench::MakeGraph;
using bench::RunDriftScenario;

MotifDistribution Dist(std::initializer_list<MotifSupport> entries) {
  MotifDistribution d(entries);
  std::sort(d.begin(), d.end(),
            [](const MotifSupport& a, const MotifSupport& b) {
              return a.canonical_hash < b.canonical_hash;
            });
  return d;
}

// Partitioners come through the factory — the same construction path the
// benches and tools use.
std::unique_ptr<StreamingPartitioner> MakeLdg(
    const PartitionerOptions& popts) {
  auto made = MakePartitioner("ldg", popts);
  EXPECT_TRUE(made.ok());
  return std::move(made).value();
}

// ------------------------------------------------------------- distances

TEST(DriftDistanceTest, IdenticalDistributionsAreAtZero) {
  const MotifDistribution d = Dist({{1, 0.5}, {2, 0.3}, {3, 0.2}});
  EXPECT_DOUBLE_EQ(L1Distance(d, d), 0.0);
  EXPECT_DOUBLE_EQ(JensenShannonDistance(d, d), 0.0);
}

TEST(DriftDistanceTest, DisjointSupportsAreAtOne) {
  const MotifDistribution p = Dist({{1, 0.6}, {2, 0.4}});
  const MotifDistribution q = Dist({{3, 0.7}, {4, 0.3}});
  EXPECT_DOUBLE_EQ(L1Distance(p, q), 1.0);
  EXPECT_DOUBLE_EQ(JensenShannonDistance(p, q), 1.0);
}

TEST(DriftDistanceTest, PartialOverlapIsBetweenAndSymmetric) {
  const MotifDistribution p = Dist({{1, 0.5}, {2, 0.5}});
  const MotifDistribution q = Dist({{2, 0.5}, {3, 0.5}});
  const double l1 = L1Distance(p, q);
  const double js = JensenShannonDistance(p, q);
  EXPECT_GT(l1, 0.0);
  EXPECT_LT(l1, 1.0);
  EXPECT_GT(js, 0.0);
  EXPECT_LT(js, 1.0);
  EXPECT_DOUBLE_EQ(l1, L1Distance(q, p));
  EXPECT_DOUBLE_EQ(js, JensenShannonDistance(q, p));
  // Exactly half the mass moved: total variation is 0.5.
  EXPECT_NEAR(l1, 0.5, 1e-12);
}

TEST(DriftDistanceTest, EmptySides) {
  const MotifDistribution d = Dist({{1, 1.0}});
  EXPECT_DOUBLE_EQ(L1Distance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JensenShannonDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(L1Distance(d, {}), 1.0);
  EXPECT_DOUBLE_EQ(JensenShannonDistance({}, d), 1.0);
}

// -------------------------------------------------------------- detector

TEST(DriftDetectorTest, FiresOnMotifMixSwitchAfterConsecutiveStreak) {
  DriftDetectorOptions options;
  options.fire_threshold = 0.15;
  options.clear_threshold = 0.05;
  options.min_consecutive = 2;
  DriftDetector detector(options);

  const MotifDistribution a = Dist({{1, 0.6}, {2, 0.4}});
  const MotifDistribution b = Dist({{3, 0.7}, {4, 0.3}});
  detector.SetReference(a);

  // Stationary: never fires.
  for (int i = 0; i < 10; ++i) {
    const DriftSignal s = detector.Observe(a);
    EXPECT_FALSE(s.workload_drifted);
    EXPECT_FALSE(s.fired);
  }
  EXPECT_EQ(detector.NumFired(), 0u);

  // Switch: over threshold immediately, but the streak debounces — fires on
  // the second consecutive observation, not the first.
  DriftSignal s1 = detector.Observe(b);
  EXPECT_TRUE(s1.workload_drifted);
  EXPECT_FALSE(s1.fired);
  DriftSignal s2 = detector.Observe(b);
  EXPECT_TRUE(s2.fired);
  EXPECT_EQ(detector.NumFired(), 1u);
  EXPECT_FALSE(detector.Armed());
}

TEST(DriftDetectorTest, NoiseBelowThresholdResetsTheStreak) {
  DriftDetectorOptions options;
  options.metric = DriftMetric::kL1;
  options.fire_threshold = 0.3;
  options.min_consecutive = 2;
  DriftDetector detector(options);
  const MotifDistribution a = Dist({{1, 0.5}, {2, 0.5}});
  // 0.4 of the mass moved: over the 0.3 threshold.
  const MotifDistribution spike = Dist({{1, 0.1}, {2, 0.5}, {3, 0.4}});
  detector.SetReference(a);

  // spike, calm, spike, calm, ...: the streak never reaches 2.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(detector.Observe(spike).fired);
    EXPECT_FALSE(detector.Observe(a).fired);
  }
  EXPECT_EQ(detector.NumFired(), 0u);
}

TEST(DriftDetectorTest, HysteresisBlocksRefireUntilClear) {
  DriftDetectorOptions options;
  options.fire_threshold = 0.15;
  options.clear_threshold = 0.05;
  options.min_consecutive = 1;
  DriftDetector detector(options);
  const MotifDistribution a = Dist({{1, 0.6}, {2, 0.4}});
  const MotifDistribution b = Dist({{3, 0.7}, {4, 0.3}});
  detector.SetReference(a);

  EXPECT_TRUE(detector.Observe(b).fired);
  // Still drifted, but disarmed: an oscillating workload hovering over the
  // threshold cannot thrash the re-partitioner.
  for (int i = 0; i < 10; ++i) {
    const DriftSignal s = detector.Observe(b);
    EXPECT_TRUE(s.workload_drifted);
    EXPECT_FALSE(s.fired);
  }
  EXPECT_EQ(detector.NumFired(), 1u);

  // Clearing re-arms; a fresh switch fires again.
  EXPECT_FALSE(detector.Observe(a).fired);
  EXPECT_TRUE(detector.Armed());
  EXPECT_TRUE(detector.Observe(b).fired);
  EXPECT_EQ(detector.NumFired(), 2u);
}

TEST(DriftDetectorTest, RebaseAdoptsTheDriftedDistributionAndRearms) {
  DriftDetectorOptions options;
  options.min_consecutive = 1;
  DriftDetector detector(options);
  const MotifDistribution a = Dist({{1, 1.0}});
  const MotifDistribution b = Dist({{2, 1.0}});
  detector.SetReference(a);
  EXPECT_TRUE(detector.Observe(b).fired);

  detector.Rebase(b);
  EXPECT_TRUE(detector.Armed());
  // b is the new normal: quiet.
  EXPECT_FALSE(detector.Observe(b).workload_drifted);
  // ...and drifting *back* to a is a new drift.
  EXPECT_TRUE(detector.Observe(a).fired);
}

TEST(DriftDetectorTest, CutDegradationTriggersWithoutWorkloadDrift) {
  DriftDetectorOptions options;
  options.min_consecutive = 1;
  options.cut_degradation_factor = 1.25;
  DriftDetector detector(options);
  const MotifDistribution a = Dist({{1, 1.0}});
  detector.SetReference(a);
  detector.SetBaselineEdgeCut(0.40);

  EXPECT_FALSE(detector.Observe(a, 0.45).fired);  // ratio 1.125 < 1.25
  const DriftSignal s = detector.Observe(a, 0.52);  // ratio 1.3
  EXPECT_FALSE(s.workload_drifted);
  EXPECT_TRUE(s.cut_degraded);
  EXPECT_TRUE(s.fired);
}

// ------------------------------------------------------- migration budget

TEST(MigrationBudgetTest, BudgetedPassNeverExceedsTheBudget) {
  Rng rng(7);
  LabeledGraph g = MakeGraph(GraphKind::kErdosRenyi, 1500, 8,
                             LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

  PartitionerOptions popts;
  popts.k = 6;
  popts.num_vertices_hint = g.NumVertices();
  popts.num_edges_hint = g.NumEdges();

  for (const double fraction : {0.0, 0.05, 0.15, 0.30}) {
    auto ldg = MakeLdg(popts);
    ldg->Run(stream);
    const PartitionAssignment prior = ldg->assignment();

    RestreamOptions ropts;
    ropts.order = RestreamOrder::kDecisive;
    ropts.max_migration_fraction = fraction;
    const Restreamer restreamer(stream, ropts);
    const RestreamPassStats stats = restreamer.RunIncrementalPass(
        ldg.get(), prior, MigrationBudgetMoves(prior, fraction));

    const MigrationStats moved = ComputeMigration(prior, ldg->assignment());
    EXPECT_LE(moved.moved, MigrationBudgetMoves(prior, fraction))
        << "fraction " << fraction;
    EXPECT_LE(stats.migration_fraction, fraction + 1e-12);
    // Strictness is backed by home-slot reservation, not by overflow: the
    // budgeted pass must show no capacity pressure at all.
    EXPECT_EQ(stats.forced_placements, 0u);
    EXPECT_EQ(stats.assign_errors, 0u);
    EXPECT_TRUE(AllAssigned(g, ldg->assignment()));
    if (fraction == 0.0) {
      // A zero budget is a pure re-affirmation pass: nothing moves.
      EXPECT_EQ(moved.moved, 0u);
      EXPECT_EQ(stats.migration_fraction, 0.0);
    }
  }
}

TEST(MigrationBudgetTest, LoomBudgetedPassRespectsBudgetAndAssignsAll) {
  Workload workload;
  ASSERT_TRUE(workload.Add("path", PathQuery({0, 1, 0}), 1.0).ok());
  workload.Normalize();

  Rng rng(11);
  LabeledGraph g = MakeGraph(GraphKind::kBarabasiAlbert, 1500, 6,
                             LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

  LoomOptions lopts;
  lopts.partitioner.k = 6;
  lopts.partitioner.num_vertices_hint = g.NumVertices();
  lopts.partitioner.num_edges_hint = g.NumEdges();
  lopts.partitioner.window_size = 128;
  lopts.matcher.frequency_threshold = 0.2;
  auto created = Loom::Create(workload, lopts);
  ASSERT_TRUE(created.ok());
  auto loom = std::move(created).value();
  loom->Partitioner().Run(stream);
  const PartitionAssignment prior = loom->Partitioner().assignment();

  const double fraction = 0.10;
  RestreamOptions ropts;
  ropts.order = RestreamOrder::kDecisive;
  ropts.max_migration_fraction = fraction;
  const Restreamer restreamer(stream, ropts);
  const RestreamPassStats stats = restreamer.RunIncrementalPass(
      &loom->Partitioner(), prior, MigrationBudgetMoves(prior, fraction));

  EXPECT_LE(stats.migration_fraction, fraction + 1e-12);
  EXPECT_EQ(stats.forced_placements, 0u);
  EXPECT_EQ(stats.assign_errors, 0u);
  EXPECT_TRUE(AllAssigned(g, loom->Partitioner().assignment()));
}

TEST(MigrationBudgetTest, UnlimitedBudgetPreservesPlainRestreamSemantics) {
  Rng rng(13);
  LabeledGraph g = MakeGraph(GraphKind::kErdosRenyi, 1000, 8,
                             LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  popts.num_edges_hint = g.NumEdges();

  // A 3-pass run with max_migration_fraction = 1.0 must match the default
  // options bit for bit (the budget machinery must be inert when disabled).
  RestreamOptions plain;
  plain.num_passes = 3;
  RestreamOptions unlimited = plain;
  unlimited.max_migration_fraction = 1.0;

  auto a = MakeLdg(popts);
  auto b = MakeLdg(popts);
  const RestreamResult ra = Restreamer(stream, plain).Run(a.get());
  const RestreamResult rb = Restreamer(stream, unlimited).Run(b.get());
  ASSERT_EQ(ra.passes.size(), rb.passes.size());
  EXPECT_EQ(ra.edge_cut_fraction, rb.edge_cut_fraction);
  for (size_t i = 0; i < ra.passes.size(); ++i) {
    EXPECT_EQ(ra.passes[i].edge_cut_fraction, rb.passes[i].edge_cut_fraction);
    EXPECT_EQ(ra.passes[i].migration_fraction,
              rb.passes[i].migration_fraction);
    EXPECT_EQ(rb.passes[i].budget_denied_moves, 0u);
  }
}

TEST(MigrationBudgetTest, DecisiveReplayIsAPermutationOfAllVertices) {
  Rng rng(17);
  LabeledGraph g = MakeGraph(GraphKind::kErdosRenyi, 500, 6,
                             LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  auto ldg = MakeLdg(popts);
  ldg->Run(stream);

  RestreamOptions ropts;
  const Restreamer restreamer(stream, ropts);
  Rng rng2(1);
  const GraphStream replay = restreamer.ReplayStream(
      RestreamOrder::kDecisive, ldg->assignment(), rng2);
  ASSERT_EQ(replay.NumVertices(), g.NumVertices());
  std::vector<VertexId> ids;
  for (const VertexArrival& a : replay.arrivals()) ids.push_back(a.vertex);
  std::sort(ids.begin(), ids.end());
  for (VertexId v = 0; v < g.NumVertices(); ++v) EXPECT_EQ(ids[v], v);
}

// ------------------------------------------------------------ controller

TEST(DriftControllerTest, NoReactionWithoutAConfirmedDrift) {
  Rng rng(23);
  LabeledGraph g = MakeGraph(GraphKind::kErdosRenyi, 800, 6,
                             LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  PartitionerOptions popts;
  popts.k = 4;
  popts.num_vertices_hint = g.NumVertices();
  auto ldg = MakeLdg(popts);
  ldg->Run(stream);
  const PartitionAssignment before = ldg->assignment();

  DriftControllerOptions options;
  DriftController controller(options);
  const MotifDistribution reference = Dist({{1, 0.5}, {2, 0.5}});
  controller.SetReference(reference);

  const DriftReaction r =
      controller.MaybeRepartition(reference, stream, ldg.get());
  EXPECT_FALSE(r.reacted);
  EXPECT_FALSE(r.signal.fired);
  EXPECT_EQ(controller.NumReactions(), 0u);
  // The live assignment is untouched.
  EXPECT_EQ(ComputeMigration(before, ldg->assignment()).moved, 0u);
}

TEST(DriftControllerTest, ReactionStaysUnderBudgetAndNeverPublishesWorse) {
  Rng rng(29);
  LabeledGraph g = MakeGraph(GraphKind::kBarabasiAlbert, 1200, 6,
                             LabelConfig{4, 0.3}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kDfs, rng);
  PartitionerOptions popts;
  popts.k = 6;
  popts.num_vertices_hint = g.NumVertices();
  popts.num_edges_hint = g.NumEdges();
  auto ldg = MakeLdg(popts);
  ldg->Run(stream);
  const PartitionAssignment before = ldg->assignment();
  const double cut_before = EdgeCutFraction(g, before);

  DriftControllerOptions options;
  options.detector.min_consecutive = 1;
  options.max_migration_fraction = 0.2;
  DriftController controller(options);
  controller.SetReference(Dist({{1, 1.0}}), cut_before);

  const MotifDistribution drifted = Dist({{2, 1.0}});
  const DriftReaction r =
      controller.MaybeRepartition(drifted, stream, ldg.get());
  ASSERT_TRUE(r.reacted);
  EXPECT_TRUE(r.signal.fired);
  EXPECT_EQ(controller.NumReactions(), 1u);
  EXPECT_DOUBLE_EQ(r.edge_cut_before, cut_before);
  EXPECT_LE(r.edge_cut_after, cut_before);  // keep-best adoption
  EXPECT_LE(r.migration_fraction, options.max_migration_fraction + 1e-12);
  EXPECT_FALSE(r.passes.empty());
  // Rebase re-armed the detector on the drifted distribution.
  EXPECT_TRUE(controller.detector().Armed());
  EXPECT_FALSE(controller.Check(drifted).workload_drifted);
}

// ------------------------------------------------------------- scenario

TEST(DriftScenarioTest, ReactionContractOnThePiecewiseStationaryScenario) {
  DriftScenarioConfig config;  // the recorded fast-mode configuration
  const DriftScenarioResult r = RunDriftScenario(config);

  // Detection: quiet while stationary, fires on the switch, no thrash.
  EXPECT_EQ(r.stationary_fires, 0u);
  ASSERT_TRUE(r.fired);
  EXPECT_GE(r.fire_tick, 1u);
  EXPECT_EQ(r.post_reaction_fires, 0u);
  EXPECT_GE(r.fire_signal.distance, 0.15);

  // Reaction: strictly improves on doing nothing, lands within 2 edge-cut
  // points of the cold 3-pass restream, and stays under the budget.
  EXPECT_LT(r.cut_reaction, r.cut_no_reaction);
  EXPECT_LE(r.cut_reaction, r.cut_cold + 0.02);
  EXPECT_LE(r.migration_reaction, r.max_migration_fraction + 1e-12);
  // Cold pays for its extra edge-cut points with several times the
  // migration volume.
  EXPECT_GT(r.migration_cold, r.migration_reaction);

  // No silent capacity pressure during budgeted migration.
  EXPECT_EQ(r.reaction_overflow_fallbacks, 0u);
  EXPECT_EQ(r.reaction_forced_placements, 0u);
  EXPECT_EQ(r.reaction_assign_errors, 0u);
}

}  // namespace
}  // namespace loom
