// Tests for the TPSTry++ DAG (paper §4.2, Algorithm 1), including the
// reproduction of Figure 2: the TPSTry++ for the workload Q of Figure 1.

#include <gtest/gtest.h>

#include <set>

#include "motif/canonical.h"
#include "tpstry/tpstry_pp.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

TEST(TpstryPPTest, SingleEdgeQuery) {
  TpstryPP trie(2);
  ASSERT_TRUE(trie.AddQuery(PathQuery({0, 1}), 1.0).ok());
  trie.Normalize();
  // Nodes: root a, root b, edge ab.
  EXPECT_EQ(trie.NumNodes(), 3u);
  ASSERT_TRUE(trie.RootFor(0).has_value());
  ASSERT_TRUE(trie.RootFor(1).has_value());
  // The edge node is a child of both roots.
  const TpstryNode& ra = trie.node(*trie.RootFor(0));
  const TpstryNode& rb = trie.node(*trie.RootFor(1));
  ASSERT_EQ(ra.children.size(), 1u);
  ASSERT_EQ(rb.children.size(), 1u);
  EXPECT_EQ(ra.children[0], rb.children[0]);
  const TpstryNode& edge = trie.node(ra.children[0]);
  EXPECT_EQ(edge.num_edges, 1u);
  EXPECT_DOUBLE_EQ(edge.support, 1.0);
}

TEST(TpstryPPTest, ParentsHaveOneFewerEdge) {
  TpstryPP trie(4);
  ASSERT_TRUE(trie.AddQuery(PaperQ1(), 1.0).ok());
  ASSERT_TRUE(trie.AddQuery(PaperQ3(), 1.0).ok());
  trie.Normalize();
  for (TpstryNodeId id = 0; id < trie.NumNodes(); ++id) {
    const TpstryNode& n = trie.node(id);
    for (const TpstryNodeId child : n.children) {
      const TpstryNode& c = trie.node(child);
      if (n.num_edges == 0) {
        EXPECT_EQ(c.num_edges, 1u);
      } else {
        EXPECT_EQ(c.num_edges, n.num_edges + 1);
      }
    }
    for (const TpstryNodeId parent : n.parents) {
      EXPECT_LT(trie.node(parent).num_edges, n.num_edges);
    }
  }
}

TEST(TpstryPPTest, MotifsDeduplicatedByIsomorphism) {
  TpstryPP trie(2);
  // Two queries that are the same path written in opposite directions.
  ASSERT_TRUE(trie.AddQuery(PathQuery({0, 1}), 1.0).ok());
  ASSERT_TRUE(trie.AddQuery(PathQuery({1, 0}), 1.0).ok());
  trie.Normalize();
  EXPECT_EQ(trie.NumNodes(), 3u);  // a, b, ab — not duplicated
  const TpstryNode& edge = trie.node(trie.node(*trie.RootFor(0)).children[0]);
  EXPECT_DOUBLE_EQ(edge.support, 1.0);  // both queries contain it
}

TEST(TpstryPPTest, SupportCountedOncePerQuery) {
  TpstryPP trie(2);
  // The star a-(b,b) contains the ab edge twice; support must count once.
  ASSERT_TRUE(trie.AddQuery(StarQuery(0, {1, 1}), 1.0).ok());
  trie.Normalize();
  const auto edge_node = trie.node(*trie.RootFor(0)).children;
  ASSERT_FALSE(edge_node.empty());
  EXPECT_DOUBLE_EQ(trie.node(edge_node[0]).support, 1.0);
}

TEST(TpstryPPTest, SupportsAreQueryFrequencySums) {
  TpstryPP trie(4);
  ASSERT_TRUE(trie.AddQuery(PaperQ2(), 3.0).ok());  // a-b-c
  ASSERT_TRUE(trie.AddQuery(PaperQ3(), 1.0).ok());  // a-b-c-d
  trie.Normalize();
  // The ab edge occurs in both: support 1. The abc path occurs in both: 1.
  // The abcd path occurs only in q3: 0.25.
  const SignatureScheme& scheme = trie.scheme();
  const auto ab = trie.FindBySignature(scheme.SignatureOf(PathQuery({0, 1})));
  ASSERT_TRUE(ab.has_value());
  EXPECT_DOUBLE_EQ(trie.node(*ab).support, 1.0);
  const auto abc = trie.FindBySignature(scheme.SignatureOf(PaperQ2()));
  ASSERT_TRUE(abc.has_value());
  EXPECT_DOUBLE_EQ(trie.node(*abc).support, 1.0);
  const auto abcd = trie.FindBySignature(scheme.SignatureOf(PaperQ3()));
  ASSERT_TRUE(abcd.has_value());
  EXPECT_DOUBLE_EQ(trie.node(*abcd).support, 0.25);
}

TEST(TpstryPPTest, FrequentNodesRespectThreshold) {
  TpstryPP trie(4);
  ASSERT_TRUE(trie.AddQuery(PaperQ2(), 3.0).ok());
  ASSERT_TRUE(trie.AddQuery(PaperQ3(), 1.0).ok());
  trie.Normalize();
  for (const TpstryNodeId id : trie.FrequentNodes(0.5)) {
    EXPECT_GE(trie.node(id).support, 0.5);
  }
  const auto bitmap = trie.FrequentBitmap(0.5);
  size_t count = 0;
  for (const bool b : bitmap) count += b ? 1 : 0;
  EXPECT_EQ(count, trie.FrequentNodes(0.5).size());
}

TEST(TpstryPPTest, UsefulBitmapCoversAncestorsOfFrequent) {
  TpstryPP trie(4);
  ASSERT_TRUE(trie.AddQuery(PaperQ3(), 1.0).ok());  // all supports equal 1
  ASSERT_TRUE(trie.AddQuery(PaperQ2(), 3.0).ok());
  trie.Normalize();
  const auto frequent = trie.FrequentBitmap(0.9);
  const auto useful = trie.UsefulBitmap(0.9);
  // Useful ⊇ frequent.
  for (TpstryNodeId id = 0; id < trie.NumNodes(); ++id) {
    if (frequent[id]) {
      EXPECT_TRUE(useful[id]);
    }
    // And every useful node reaches a frequent one via children.
    if (useful[id] && !frequent[id]) {
      bool reaches = false;
      std::vector<TpstryNodeId> stack = {id};
      std::set<TpstryNodeId> seen;
      while (!stack.empty() && !reaches) {
        const TpstryNodeId cur = stack.back();
        stack.pop_back();
        for (const TpstryNodeId c : trie.node(cur).children) {
          if (!seen.insert(c).second) continue;
          if (frequent[c]) reaches = true;
          stack.push_back(c);
        }
      }
      EXPECT_TRUE(reaches) << "node " << id << " useful but leads nowhere";
    }
  }
}

TEST(TpstryPPTest, PathsOnlyModeSkipsBranchesAndCycles) {
  TpstryPP full(4);
  TpstryPP paths(4);
  ASSERT_TRUE(full.AddQuery(PaperQ1(), 1.0).ok());  // abab cycle
  ASSERT_TRUE(paths.AddQuery(PaperQ1(), 1.0, /*paths_only=*/true).ok());
  // The cycle node itself only exists in the full trie.
  const auto cycle_sig = full.scheme().SignatureOf(PaperQ1());
  EXPECT_TRUE(full.FindBySignature(cycle_sig).has_value());
  EXPECT_FALSE(paths.FindBySignature(cycle_sig).has_value());
  EXPECT_LT(paths.NumNodes(), full.NumNodes());
}

TEST(TpstryPPTest, RejectsLabelOutsideAlphabet) {
  TpstryPP trie(2);
  EXPECT_FALSE(trie.AddQuery(PathQuery({0, 3}), 1.0).ok());
}

TEST(TpstryPPTest, RejectsNonPositiveFrequency) {
  TpstryPP trie(2);
  EXPECT_FALSE(trie.AddQuery(PathQuery({0, 1}), 0.0).ok());
  EXPECT_FALSE(trie.AddQuery(LabeledGraph(), 1.0).ok());
}

// ---------------------------------------------------------------- Figure 2

// The TPSTry++ for Q = {q1: abab-cycle, q2: abc-path, q3: abcd-path} as
// drawn in Figure 2, level by level:
//   roots:    a, b, c, d
//   1 edge:   ab, bc, cd
//   2 edges:  aba, bab, abc, bcd
//   3 edges:  abab (open path), abcd
//   4 edges:  abab cycle
// = 14 isomorphism-distinct motifs.
TEST(TpstryPPTest, Figure2NodeInventory) {
  TpstryPP trie(4);
  const Workload w = PaperFigure1Workload();
  for (const QuerySpec& q : w.queries()) {
    ASSERT_TRUE(trie.AddQuery(q.pattern, q.frequency).ok());
  }
  trie.Normalize();

  const SignatureScheme& s = trie.scheme();
  auto has = [&](const LabeledGraph& motif) {
    return trie.FindBySignature(s.SignatureOf(motif)).has_value();
  };
  // Roots.
  EXPECT_TRUE(trie.RootFor(kLabelA).has_value());
  EXPECT_TRUE(trie.RootFor(kLabelB).has_value());
  EXPECT_TRUE(trie.RootFor(kLabelC).has_value());
  EXPECT_TRUE(trie.RootFor(kLabelD).has_value());
  // Single edges.
  EXPECT_TRUE(has(PathQuery({0, 1})));  // ab
  EXPECT_TRUE(has(PathQuery({1, 2})));  // bc
  EXPECT_TRUE(has(PathQuery({2, 3})));  // cd
  EXPECT_FALSE(has(PathQuery({0, 2})));  // ac never occurs
  // Two-edge paths.
  EXPECT_TRUE(has(PathQuery({0, 1, 0})));  // aba (from q1)
  EXPECT_TRUE(has(PathQuery({1, 0, 1})));  // bab (from q1)
  EXPECT_TRUE(has(PathQuery({0, 1, 2})));  // abc (q2, q3)
  EXPECT_TRUE(has(PathQuery({1, 2, 3})));  // bcd (q3)
  // Three-edge motifs.
  EXPECT_TRUE(has(PathQuery({1, 0, 1, 0})));  // abab open path (from q1)
  EXPECT_TRUE(has(PaperQ3()));                // abcd
  // The q1 cycle itself.
  EXPECT_TRUE(has(PaperQ1()));
  // Exactly the 14 motifs of Figure 2.
  EXPECT_EQ(trie.NumNodes(), 14u);
}

TEST(TpstryPPTest, Figure2SupportValues) {
  TpstryPP trie(4);
  const Workload w = PaperFigure1Workload();  // equal frequencies 1/3
  for (const QuerySpec& q : w.queries()) {
    ASSERT_TRUE(trie.AddQuery(q.pattern, q.frequency).ok());
  }
  trie.Normalize();
  const SignatureScheme& s = trie.scheme();
  auto support = [&](const LabeledGraph& motif) {
    const auto id = trie.FindBySignature(s.SignatureOf(motif));
    return id.has_value() ? trie.node(*id).support : -1.0;
  };
  // ab occurs in all three queries; bc in q2 and q3; cd only in q3.
  EXPECT_NEAR(support(PathQuery({0, 1})), 1.0, 1e-9);
  EXPECT_NEAR(support(PathQuery({1, 2})), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(support(PathQuery({2, 3})), 1.0 / 3.0, 1e-9);
  // aba only from q1; abc from q2+q3; the cycle only from q1.
  EXPECT_NEAR(support(PathQuery({0, 1, 0})), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(support(PathQuery({0, 1, 2})), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(support(PaperQ1()), 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace loom
