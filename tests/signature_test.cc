// Tests for the number-theoretic graph signatures (§4.3): incremental
// multiplicativity, the no-false-negative divisibility guarantee (validated
// against the exact VF2 matcher as oracle), and measured collision behaviour.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "motif/canonical.h"
#include "motif/isomorphism.h"
#include "motif/signature.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

TEST(SignatureSchemeTest, FactorIndicesDisjoint) {
  const SignatureScheme scheme(4);
  // Vertex factors occupy [0, 4); edge factors [4, 4 + 10).
  std::set<uint32_t> seen;
  for (Label l = 0; l < 4; ++l) {
    EXPECT_TRUE(seen.insert(scheme.VertexFactor(l)).second);
  }
  for (Label a = 0; a < 4; ++a) {
    for (Label b = a; b < 4; ++b) {
      EXPECT_TRUE(seen.insert(scheme.EdgeFactor(a, b)).second)
          << "pair " << a << "," << b;
    }
  }
  EXPECT_EQ(seen.size(), 4u + 10u);
}

TEST(SignatureSchemeTest, EdgeFactorOrderFree) {
  const SignatureScheme scheme(5);
  for (Label a = 0; a < 5; ++a) {
    for (Label b = 0; b < 5; ++b) {
      EXPECT_EQ(scheme.EdgeFactor(a, b), scheme.EdgeFactor(b, a));
    }
  }
}

TEST(SignatureTest, IsomorphicGraphsShareSignature) {
  const SignatureScheme scheme(4);
  EXPECT_EQ(scheme.SignatureOf(PathQuery({0, 1, 2})),
            scheme.SignatureOf(PathQuery({2, 1, 0})));
  EXPECT_EQ(scheme.SignatureOf(PaperQ1()),
            scheme.SignatureOf(CycleQuery({1, 0, 1, 0})));
}

TEST(SignatureTest, IncrementalEqualsBatch) {
  const SignatureScheme scheme(4);
  const LabeledGraph q = PaperQ3();
  // Rebuild the signature edge by edge, vertices as first touched.
  GraphSignature inc;
  std::vector<bool> seen(q.NumVertices(), false);
  q.ForEachEdge([&](VertexId u, VertexId v) {
    if (!seen[u]) {
      scheme.MultiplyVertex(&inc, q.LabelOf(u));
      seen[u] = true;
    }
    if (!seen[v]) {
      scheme.MultiplyVertex(&inc, q.LabelOf(v));
      seen[v] = true;
    }
    scheme.MultiplyEdge(&inc, q.LabelOf(u), q.LabelOf(v));
  });
  EXPECT_EQ(inc, scheme.SignatureOf(q));
}

TEST(SignatureTest, SubgraphSignatureDividesSupergraph) {
  const SignatureScheme scheme(4);
  // q2 (a-b-c) is a sub-path of q3 (a-b-c-d).
  EXPECT_TRUE(scheme.SignatureOf(PaperQ2())
                  .Divides(scheme.SignatureOf(PaperQ3())));
  EXPECT_FALSE(scheme.SignatureOf(PaperQ3())
                   .Divides(scheme.SignatureOf(PaperQ2())));
}

TEST(SignatureTest, MatchImpliesDivisibility_PaperFixture) {
  const LabeledGraph g = PaperFigure1Graph();
  const SignatureScheme scheme(4);
  const GraphSignature sig_g = scheme.SignatureOf(g);
  for (const LabeledGraph& q : {PaperQ1(), PaperQ2(), PaperQ3()}) {
    ASSERT_TRUE(ContainsEmbedding(q, g));
    EXPECT_TRUE(scheme.SignatureOf(q).Divides(sig_g));
  }
}

// The load-bearing property (§4.3, "if a graph does not have a signature
// [dividing] that of a given query graph then it cannot be a match"):
// whenever the exact matcher finds an embedding of q in g, sig(q) | sig(g).
// Sweep random graphs and patterns with VF2 as oracle.
class NoFalseNegatives : public ::testing::TestWithParam<int> {};

TEST_P(NoFalseNegatives, EmbeddingImpliesDivisibility) {
  Rng rng(GetParam() * 7919 + 13);
  const uint32_t num_labels = 3;
  const SignatureScheme scheme(num_labels);
  for (int trial = 0; trial < 50; ++trial) {
    const LabeledGraph g = ErdosRenyiGnm(
        12, static_cast<uint64_t>(rng.UniformInt(8, 22)),
        LabelConfig{num_labels, 0.0}, rng);
    const LabeledGraph q = RandomConnectedQuery(
        static_cast<uint32_t>(rng.UniformInt(2, 4)),
        static_cast<uint32_t>(rng.UniformInt(0, 2)), num_labels, rng);
    if (ContainsEmbedding(q, g)) {
      EXPECT_TRUE(scheme.SignatureOf(q).Divides(scheme.SignatureOf(g)))
          << "false negative:\nquery " << q.ToString() << "graph "
          << g.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoFalseNegatives,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SignatureTest, CollisionsExistButAreDetectable) {
  // The documented false-positive case: equal factor multisets for distinct
  // topologies. A 4-cycle abab and two disjoint... must be connected; use
  // path a-b-a-b plus edge (a,b) chord forming a different shape with the
  // same factor counts where possible. Construct the classic: signatures
  // capture edge label pairs, so the path b-a-b-a-b and the star with centre
  // a and three b leaves plus... — verify instead that divisibility is
  // weaker than embedding: sig(q) | sig(g) does NOT imply a match.
  const SignatureScheme scheme(2);
  // g: star centre a with 2 b-leaves, plus a tail making 3 a-b edges total.
  LabeledGraph star = StarQuery(0, {1, 1, 1});
  // q: path b-a-b uses 2 a-b edges; star contains it (true match).
  EXPECT_TRUE(scheme.SignatureOf(PathQuery({1, 0, 1})).Divides(
      scheme.SignatureOf(star)));
  // q2: path a-b-a-b (3 vertices labelled a? no: labels a,b,a,b) needs two
  // 'a' vertices; the star has one. Signature-wise: q2 factors = 2 va, 2 vb,
  // 3 eab; star = 1 va, 3 vb, 3 eab -> vertex factors do not divide. Good.
  EXPECT_FALSE(scheme.SignatureOf(PathQuery({0, 1, 0, 1})).Divides(
      scheme.SignatureOf(star)));
  // A genuine false positive: triangle aab vs path a-a-b + edge? The path
  // a-b-a (2 eab edges, 2 va, 1 vb) divides the 4-cycle abab signature
  // (2 va, 2 vb, 4 eab) — and indeed abab contains a-b-a, a true positive.
  // The known collision shape: cycle abab vs two shapes sharing the factor
  // multiset {2 va, 2 vb, 4 eab} — e.g. the multigraph-free "theta" is not
  // constructible on 4 vertices; so equality collisions require >= 5
  // vertices: cycle ababab vs two triangles? Documented and measured in
  // bench_signature instead; here we assert the fingerprint hash agrees
  // with multiset equality on the fixtures.
  EXPECT_EQ(scheme.SignatureOf(PaperQ1()).Hash(),
            scheme.SignatureOf(CycleQuery({1, 0, 1, 0})).Hash());
}

TEST(SignatureTest, EqualSignatureDistinctTopologyExample) {
  // Constructive collision: both graphs have vertices {a, a, b, b} and edge
  // label multiset {aa, bb, ab, ab} but different shapes:
  //   g1: path a-a-b-b plus edge (a0, b1)? that adds an extra ab edge.
  // Use: g1 = cycle a-a-b-b (edges aa, ab, bb, ba) vs
  //      g2 = path b-a-a-b with an extra b-b edge between the two b's —
  //      same 4 edges {aa, ab, ab, bb}, different topology (cycle vs theta-
  //      like tree+chord = also a cycle? path b-a-a-b + bb edge closes a
  //      4-cycle b-a-a-b-b... that IS the same cycle).
  // Simplest true collision: star a<-(b,b) + pendant a-a edge on the centre
  //   vs path b-a-a-b rearranged: both have edges {ab, ab, aa}, vertices
  //   {a, a, b, b}:
  LabeledGraph g1;  // centre a bonded to b, b, and a.
  {
    const VertexId c = g1.AddVertex(0);
    g1.AddEdgeUnchecked(c, g1.AddVertex(1));
    g1.AddEdgeUnchecked(c, g1.AddVertex(1));
    g1.AddEdgeUnchecked(c, g1.AddVertex(0));
  }
  const LabeledGraph g2 = PathQuery({1, 0, 0, 1});
  const SignatureScheme scheme(2);
  EXPECT_EQ(scheme.SignatureOf(g1), scheme.SignatureOf(g2));
  EXPECT_FALSE(AreIsomorphic(g1, g2));  // the documented collision mode
}

}  // namespace
}  // namespace loom
