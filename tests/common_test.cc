// Unit tests for the common substrate: Status/Result, RNG, primes, factor
// multisets, hashing and table rendering.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

#include "common/hash.h"
#include "common/primes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

namespace loom {
namespace {

// --------------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::AlreadyExists("x").code(),   Status::OutOfRange("x").code(),
      Status::CapacityExceeded("x").code(), Status::FailedPrecondition("x").code(),
      Status::IOError("x").code(),         Status::Internal("x").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    LOOM_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<int> { return 7; };
  auto consume = [&]() -> Result<int> {
    LOOM_ASSIGN_OR_RETURN(const int x, produce());
    return x * 2;
  };
  ASSERT_TRUE(consume().ok());
  EXPECT_EQ(consume().value(), 14);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto produce = []() -> Result<int> { return Status::NotFound("nope"); };
  auto consume = [&]() -> Result<int> {
    LOOM_ASSIGN_OR_RETURN(const int x, produce());
    return x;
  };
  EXPECT_EQ(consume().status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.UniformInt(5, 10);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 10u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfSamplerTest, Skew0IsUniform) {
  const ZipfSampler z(4, 0.0);
  for (size_t r = 0; r < 4; ++r) EXPECT_NEAR(z.Probability(r), 0.25, 1e-12);
}

TEST(ZipfSamplerTest, PositiveSkewFavorsLowRanks) {
  const ZipfSampler z(10, 1.5);
  EXPECT_GT(z.Probability(0), z.Probability(1));
  EXPECT_GT(z.Probability(1), z.Probability(5));
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  const ZipfSampler z(17, 0.8);
  double total = 0.0;
  for (size_t r = 0; r < 17; ++r) total += z.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalMatchesTheoretical) {
  const ZipfSampler z(5, 1.0);
  Rng rng(3);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[z.Sample(rng)];
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / trials, z.Probability(r),
                0.015);
  }
}

// --------------------------------------------------------------------- Primes

TEST(PrimeTableTest, FirstPrimes) {
  EXPECT_EQ(PrimeTable::Get(0), 2u);
  EXPECT_EQ(PrimeTable::Get(1), 3u);
  EXPECT_EQ(PrimeTable::Get(4), 11u);
  EXPECT_EQ(PrimeTable::Get(9), 29u);
  EXPECT_EQ(PrimeTable::Get(24), 97u);   // 25th prime
  EXPECT_EQ(PrimeTable::Get(99), 541u);  // 100th prime
}

TEST(PrimeTableTest, GrowsOnDemand) {
  const uint64_t p = PrimeTable::Get(999);
  EXPECT_EQ(p, 7919u);  // 1000th prime
  EXPECT_GE(PrimeTable::CachedCount(), 1000u);
}

TEST(FactorMultisetTest, EmptyDividesEverything) {
  FactorMultiset empty;
  FactorMultiset other({1, 2, 3});
  EXPECT_TRUE(empty.Divides(other));
  EXPECT_TRUE(empty.Divides(empty));
  EXPECT_FALSE(other.Divides(empty));
}

TEST(FactorMultisetTest, MultiplyKeepsSorted) {
  FactorMultiset m;
  m.MultiplyFactor(5);
  m.MultiplyFactor(1);
  m.MultiplyFactor(3);
  m.MultiplyFactor(1);
  EXPECT_EQ(m.factors(), (std::vector<uint32_t>{1, 1, 3, 5}));
}

TEST(FactorMultisetTest, DividesRespectsMultiplicity) {
  FactorMultiset twice({2, 2});
  FactorMultiset once({2});
  FactorMultiset thrice({2, 2, 2});
  EXPECT_TRUE(once.Divides(twice));
  EXPECT_TRUE(twice.Divides(thrice));
  EXPECT_FALSE(twice.Divides(once));
  EXPECT_FALSE(thrice.Divides(twice));
}

TEST(FactorMultisetTest, DividesMirrorsIntegerDivisibility) {
  // 12 = 2^2 * 3 -> indices {0,0,1}; 60 = 2^2*3*5 -> {0,0,1,2}.
  FactorMultiset twelve({0, 0, 1});
  FactorMultiset sixty({0, 0, 1, 2});
  EXPECT_TRUE(twelve.Divides(sixty));
  EXPECT_FALSE(sixty.Divides(twelve));
  EXPECT_EQ(twelve.ProductMod64(), 12u);
  EXPECT_EQ(sixty.ProductMod64(), 60u);
}

TEST(FactorMultisetTest, MultiplyIsMultisetUnion) {
  FactorMultiset a({1, 3});
  FactorMultiset b({2, 3});
  a.Multiply(b);
  EXPECT_EQ(a.factors(), (std::vector<uint32_t>{1, 2, 3, 3}));
  EXPECT_TRUE(b.Divides(a));
}

TEST(FactorMultisetTest, DivideFactorRemovesOneOccurrence) {
  FactorMultiset m({4, 4, 7});
  EXPECT_TRUE(m.DivideFactor(4));
  EXPECT_EQ(m.factors(), (std::vector<uint32_t>{4, 7}));
  EXPECT_FALSE(m.DivideFactor(9));
}

TEST(FactorMultisetTest, HashEqualForEqualMultisets) {
  FactorMultiset a({5, 2, 2});
  FactorMultiset b({2, 5, 2});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(FactorMultisetTest, HashesSpread) {
  std::unordered_set<uint64_t> hashes;
  for (uint32_t i = 0; i < 200; ++i) {
    for (uint32_t j = i; j < i + 3; ++j) {
      hashes.insert(FactorMultiset({i, j}).Hash());
    }
  }
  EXPECT_EQ(hashes.size(), 600u);
}

TEST(FactorMultisetTest, ToStringShowsPrimePowers) {
  FactorMultiset m({0, 0, 2});
  EXPECT_EQ(m.ToString(), "{2^2 * 5}");
}

// ----------------------------------------------------------------------- Hash

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, MixBitsChangesValue) {
  EXPECT_NE(MixBits(1), 1u);
  EXPECT_NE(MixBits(1), MixBits(2));
}

// ---------------------------------------------------------------------- Table

TEST(TableTest, PrintsAlignedColumns) {
  TablePrinter t("demo", {"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatPercent(0.128, 1), "12.8%");
}

}  // namespace
}  // namespace loom
