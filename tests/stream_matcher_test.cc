// Tests for windowed graph-stream pattern matching (§4.3), including the
// Figure 3 overlapping-motif scenario and the re-grow procedure.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/loom.h"
#include "matching/stream_matcher.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

std::unique_ptr<TpstryPP> AbcTrie() {
  // Workload: the path a-b-c with frequency 1 -> every sub-motif frequent.
  Workload w;
  EXPECT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 1.0).ok());
  w.Normalize();
  auto trie = BuildTrie(w);
  EXPECT_TRUE(trie.ok());
  return std::move(trie).value();
}

StreamMatcherOptions ExactOpts(double threshold = 0.5) {
  StreamMatcherOptions o;
  o.frequency_threshold = threshold;
  o.verify_exact = true;
  return o;
}

TEST(StreamMatcherTest, SingleEdgeMotifTracked) {
  auto trie = AbcTrie();
  StreamMatcher m(trie.get(), ExactOpts());
  m.OnVertex(10, 0, {});
  m.OnVertex(11, 1, {10});
  // The ab edge is a frequent motif (support 1.0 >= 0.5).
  EXPECT_GE(m.NumFrequentMatches(), 1u);
  const auto closure = m.MatchClosureFor(10);
  ASSERT_EQ(closure.size(), 1u);
  EXPECT_EQ(closure[0], 11u);
}

TEST(StreamMatcherTest, FullPathMotifDetected) {
  auto trie = AbcTrie();
  StreamMatcher m(trie.get(), ExactOpts());
  m.OnVertex(1, 0, {});
  m.OnVertex(2, 1, {1});
  m.OnVertex(3, 2, {2});
  // Tracked: ab, bc, abc (all frequent).
  const auto sets = m.FrequentMatchVertexSets();
  EXPECT_TRUE(std::find(sets.begin(), sets.end(),
                        std::vector<VertexId>{1, 2, 3}) != sets.end())
      << "full abc match missing";
  // Closure of vertex 1 spans the whole path via the abc match.
  EXPECT_EQ(m.MatchClosureFor(1), (std::vector<VertexId>{2, 3}));
}

TEST(StreamMatcherTest, LabelMismatchNotTracked) {
  auto trie = AbcTrie();
  StreamMatcher m(trie.get(), ExactOpts());
  m.OnVertex(1, 2, {});
  m.OnVertex(2, 2, {1});  // c-c edge: not a motif
  EXPECT_EQ(m.NumTracked(), 0u);
  EXPECT_TRUE(m.MatchClosureFor(1).empty());
}

TEST(StreamMatcherTest, RemoveVertexPurgesMatches) {
  auto trie = AbcTrie();
  StreamMatcher m(trie.get(), ExactOpts());
  m.OnVertex(1, 0, {});
  m.OnVertex(2, 1, {1});
  m.OnVertex(3, 2, {2});
  EXPECT_GT(m.NumTracked(), 0u);
  m.RemoveVertex(2);
  // Every tracked sub-graph contained vertex 2 (it is the path's middle).
  EXPECT_TRUE(m.MatchClosureFor(1).empty());
  EXPECT_TRUE(m.MatchClosureFor(3).empty());
}

TEST(StreamMatcherTest, ThresholdGatesMatchesButNotTracking) {
  // Workload: abc twice as frequent as cd. Threshold 0.5 keeps abc motifs
  // frequent, cd infrequent.
  Workload w;
  ASSERT_TRUE(w.Add("abc", PathQuery({0, 1, 2}), 2.0).ok());
  ASSERT_TRUE(w.Add("cd", PathQuery({2, 3}), 1.0).ok());
  w.Normalize();
  auto trie = BuildTrie(w);
  ASSERT_TRUE(trie.ok());
  StreamMatcher m(trie->get(), ExactOpts(0.5));
  m.OnVertex(1, 2, {});
  m.OnVertex(2, 3, {1});  // cd edge: known motif, support 1/3 < 0.5
  EXPECT_TRUE(m.MatchClosureFor(1).empty());
}

TEST(StreamMatcherTest, Figure3OverlappingMotifsViaRegrow) {
  // Fig. 3: the window holds a-b-c (S, a motif match). A second c attaches
  // to b, forming S' = abc+c which is NOT a motif; without re-grow the
  // second abc instance (a, b, c2) would be missed.
  auto trie = AbcTrie();
  StreamMatcherOptions with_regrow = ExactOpts();
  StreamMatcher m(trie.get(), with_regrow);
  m.OnVertex(1, 0, {});        // a
  m.OnVertex(2, 1, {1});       // b: S = ab
  m.OnVertex(3, 2, {2});       // c1: S = abc  (match)
  m.OnVertex(4, 2, {2});       // c2 attaches to b
  const auto sets = m.FrequentMatchVertexSets();
  const bool first_abc =
      std::find(sets.begin(), sets.end(), std::vector<VertexId>{1, 2, 3}) !=
      sets.end();
  const bool second_abc =
      std::find(sets.begin(), sets.end(), std::vector<VertexId>{1, 2, 4}) !=
      sets.end();
  EXPECT_TRUE(first_abc) << "original abc lost";
  EXPECT_TRUE(second_abc) << "Fig. 3: overlapping abc not recovered";
  EXPECT_GE(m.stats().regrow_matches, 1u);
}

TEST(StreamMatcherTest, Figure3MissedWithoutRegrow) {
  auto trie = AbcTrie();
  StreamMatcherOptions no_regrow = ExactOpts();
  no_regrow.use_regrow = false;
  StreamMatcher m(trie.get(), no_regrow);
  m.OnVertex(1, 0, {});
  m.OnVertex(2, 1, {1});
  m.OnVertex(3, 2, {2});
  m.OnVertex(4, 2, {2});
  const auto sets = m.FrequentMatchVertexSets();
  const bool second_abc =
      std::find(sets.begin(), sets.end(), std::vector<VertexId>{1, 2, 4}) !=
      sets.end();
  // bc (4,2) still matches as an edge motif, but the full second abc is
  // unreachable without re-grow: growing S=abc by edge (2,4) leaves the trie.
  EXPECT_FALSE(second_abc)
      << "ablation expectation violated: regrow off but match found";
}

TEST(StreamMatcherTest, TransitiveVsDirectClosure) {
  auto trie = AbcTrie();
  StreamMatcher m(trie.get(), ExactOpts());
  // Two abc paths sharing only the a vertex: 2-1-3 and 2-4-5 (labels b,a,c
  // arranged so both contain vertex 1).
  m.OnVertex(1, 0, {});        // a
  m.OnVertex(2, 1, {1});       // b1
  m.OnVertex(3, 2, {2});       // c1 -> match {1,2,3}
  m.OnVertex(4, 1, {1});       // b2
  m.OnVertex(5, 2, {4});       // c2 -> match {1,4,5}
  // Transitive closure from 3 reaches the second path through vertex 1.
  const auto transitive = m.MatchClosureFor(3, /*transitive=*/true);
  EXPECT_EQ(transitive, (std::vector<VertexId>{1, 2, 4, 5}));
  // Direct closure from 3 stays within its own match.
  const auto direct = m.MatchClosureFor(3, /*transitive=*/false);
  EXPECT_EQ(direct, (std::vector<VertexId>{1, 2}));
}

TEST(StreamMatcherTest, SignatureOnlyModeMatchesExactOnCleanData) {
  // On a stream without collision-shaped structures, verify_exact=false
  // (the paper's mode) finds the same matches.
  auto trie = AbcTrie();
  StreamMatcherOptions fast = ExactOpts();
  fast.verify_exact = false;
  StreamMatcher exact(trie.get(), ExactOpts());
  StreamMatcher approx(trie.get(), fast);
  for (StreamMatcher* m : {&exact, &approx}) {
    m->OnVertex(1, 0, {});
    m->OnVertex(2, 1, {1});
    m->OnVertex(3, 2, {2});
  }
  EXPECT_EQ(exact.FrequentMatchVertexSets(), approx.FrequentMatchVertexSets());
}

TEST(StreamMatcherTest, StatsAccumulate) {
  auto trie = AbcTrie();
  StreamMatcher m(trie.get(), ExactOpts());
  m.OnVertex(1, 0, {});
  m.OnVertex(2, 1, {1});
  m.OnVertex(3, 2, {2});
  const auto& s = m.stats();
  EXPECT_EQ(s.edges_processed, 2u);
  EXPECT_GT(s.growths_accepted, 0u);
  EXPECT_GT(s.max_tracked_live, 0u);
}

TEST(StreamMatcherTest, MaxTrackedPerVertexCapsGrowth) {
  // A hub with many b-neighbours under a tiny per-vertex cap.
  auto trie = AbcTrie();
  StreamMatcherOptions capped = ExactOpts();
  capped.max_tracked_per_vertex = 2;
  StreamMatcher m(trie.get(), capped);
  m.OnVertex(0, 0, {});  // a hub
  for (VertexId v = 1; v <= 20; ++v) {
    m.OnVertex(v, 1, {0});  // b leaves -> ab matches
  }
  EXPECT_GT(m.stats().tracked_dropped, 0u);
  const auto idx = m.MatchClosureFor(0);
  EXPECT_LE(idx.size(), 4u);  // bounded by the cap, not 20
}

}  // namespace
}  // namespace loom
